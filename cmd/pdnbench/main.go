// Command pdnbench runs the benchmark-interchange and differential-solver
// corpus: it expands the committed synthetic corpus (internal/bench/gen),
// batters every registered solver against the dense-Cholesky oracle or
// the cross-check reference (internal/bench/diff), verifies the SPICE
// netlist round trip, and writes the machine-readable BENCH_diff.json
// snapshot CI tracks.
//
// Usage:
//
//	pdnbench                 run the committed corpus, print a report
//	pdnbench -long           also run the on-the-fly sized meshes
//	pdnbench -out F.json     write the JSON snapshot to F.json
//	pdnbench -list           print the corpus without running it
//	pdnbench -regen          rewrite the committed corpus goldens
//	pdnbench -export DIR     write each corpus mesh as a SPICE deck
//	pdnbench -import GLOB    run external SPICE decks through the harness
//	pdnbench -convergence    add the per-family iteration/κ table and
//	                         snapshot section (solve flight recorder)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"pdn3d/internal/bench/diff"
	"pdn3d/internal/bench/gen"
	"pdn3d/internal/solve"
	"pdn3d/internal/spice"
)

func main() {
	var (
		list     = flag.Bool("list", false, "print the corpus entries and exit")
		regen    = flag.Bool("regen", false, "rewrite the committed corpus goldens and exit")
		dir      = flag.String("dir", "internal/bench/gen/corpus", "corpus directory for -regen")
		exportTo = flag.String("export", "", "write each corpus mesh as a SPICE deck into this directory and exit")
		importGl = flag.String("import", "", "run external SPICE decks matching this glob through the differential harness and exit")
		out      = flag.String("out", "", "write the BENCH_diff.json snapshot to this path")
		long     = flag.Bool("long", false, "also run the on-the-fly sized meshes (cross-check regime)")
		solvers  = flag.String("solvers", "", "comma-separated solver methods (default: every registered method)")
		maxN     = flag.Int("max-nodes", diff.DefaultOracleMaxN, "largest system the dense Cholesky oracle factorizes")
		workers  = flag.Int("workers", 0, "solver worker pool bound (0: GOMAXPROCS)")
		conv     = flag.Bool("convergence", false, "print the per-family convergence table and commit it into the snapshot")
	)
	flag.Parse()
	if *importGl != "" {
		opt := diff.Options{OracleMaxN: *maxN, Workers: *workers}
		if *solvers != "" {
			opt.Methods = strings.Split(*solvers, ",")
		}
		if err := importDecks(*importGl, opt); err != nil {
			fmt.Fprintln(os.Stderr, "pdnbench:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(*list, *regen, *dir, *exportTo, *out, *long, *conv, *solvers, *maxN, *workers); err != nil {
		fmt.Fprintln(os.Stderr, "pdnbench:", err)
		os.Exit(1)
	}
}

func run(list, regen bool, dir, exportTo, out string, long, conv bool, solvers string, maxN, workers int) error {
	if regen {
		if err := gen.WriteCorpus(dir); err != nil {
			return err
		}
		fmt.Printf("regenerated %d corpus goldens in %s\n", len(gen.Canonical()), dir)
		return nil
	}
	specs, err := gen.Corpus()
	if err != nil {
		return err
	}
	if long {
		for _, base := range []string{"ddr3-off", "hmc"} {
			for level := 0; level < gen.SizedLevels(); level++ {
				s, err := gen.Sized(base, level)
				if err != nil {
					return err
				}
				specs = append(specs, s)
			}
		}
	}
	if list {
		for _, s := range specs {
			fmt.Printf("%-18s base=%-8s pitch=%-4g tsv=%s/%d fail=%g rails=%d seed=%d\n",
				s.Name, s.Base, s.Pitch, s.TSVStyle, s.TSVCount, s.FailRate, s.Rails, s.Seed)
		}
		return nil
	}
	if exportTo != "" {
		return exportDecks(specs, exportTo)
	}

	opt := diff.Options{OracleMaxN: maxN, Workers: workers}
	if solvers != "" {
		opt.Methods = strings.Split(solvers, ",")
	}
	snap := &Snapshot{Solvers: opt.Methods, CorpusSize: len(specs)}
	if len(snap.Solvers) == 0 {
		snap.Solvers = solve.Methods()
	}
	start := time.Now()
	for _, s := range specs {
		rep, err := diff.Check(s, opt)
		if err != nil {
			return fmt.Errorf("%s: %w", s.Name, err)
		}
		snap.add(rep)
		status := "cross"
		if rep.Oracle == solve.MethodCholesky {
			status = "oracle"
		}
		fmt.Printf("%-18s %6d nodes %8d nnz  %s  runs=%d  max_rel_err=%.3e  restamp_exact=%v  roundtrip=%.3e\n",
			rep.Name, rep.Nodes, rep.NNZ, status, len(rep.Runs), rep.MaxRelErr, rep.RestampExact, rep.RoundTrip.VoltRelErr)
	}
	fmt.Printf("checked %d meshes (%d oracle, %d cross) × %d solvers in %v: max_rel_err=%.3e max_roundtrip=%.3e\n",
		snap.Meshes, snap.OracleMeshes, snap.Meshes-snap.OracleMeshes, len(snap.Solvers),
		time.Since(start).Round(time.Millisecond), snap.MaxRelErr, snap.MaxRoundTripRelErr)
	if !snap.AllRestampExact {
		return fmt.Errorf("restamp bit-exactness violated (see report)")
	}
	if !snap.AllStructEqual {
		return fmt.Errorf("netlist round-trip structure mismatch (see report)")
	}
	if snap.MaxRelErr > diff.OracleRelTol && snap.OracleMeshes == snap.Meshes {
		return fmt.Errorf("solver disagreement %.3e above the %.0e oracle bound", snap.MaxRelErr, diff.OracleRelTol)
	}
	if conv {
		snap.Convergence = convergenceRows(snap.Reports)
		fmt.Printf("\n%-8s %-12s %5s %10s %12s\n", "family", "method", "runs", "max_iters", "max_cond_est")
		for _, row := range snap.Convergence {
			fmt.Printf("%-8s %-12s %5d %10d %12.4g\n",
				row.Family, row.Method, row.Runs, row.MaxIters, row.MaxCondEst)
		}
	}

	if out != "" {
		data, err := json.MarshalIndent(snap, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Println("wrote", out)
	}
	return nil
}

// Snapshot is the BENCH_diff.json schema: the differential-coverage
// trajectory (how much of the solver registry × corpus matrix is checked
// and how well it agrees) that solver-optimization PRs push against.
// It carries no timestamps or host data; error magnitudes can wiggle in
// the last digits with the worker count's reduction order.
type Snapshot struct {
	CorpusSize         int      `json:"corpus_size"`
	Meshes             int      `json:"meshes_checked"`
	OracleMeshes       int      `json:"oracle_meshes"`
	Solvers            []string `json:"solvers"`
	SolverRuns         int      `json:"solver_runs"`
	MaxRelErr          float64  `json:"max_rel_err"`
	MaxResidual        float64  `json:"max_residual"`
	MaxRoundTripRelErr float64  `json:"max_roundtrip_rel_err"`
	AllRestampExact    bool     `json:"all_restamp_exact"`
	AllStructEqual     bool     `json:"all_roundtrip_struct_equal"`
	// Convergence is the per-family × per-method envelope of the solve
	// flight recorder's columns (-convergence mode only): the worst cold
	// iteration count and condition estimate per corpus family, so a
	// conditioning regression in one design family diffs as its own row.
	Convergence []FamilyConvergence `json:"convergence,omitempty"`
	Reports     []*diff.MeshReport  `json:"meshes"`
}

// FamilyConvergence is one convergence-section row. Cold runs only: warm
// iteration counts depend on the seeding scenario, not the operator.
type FamilyConvergence struct {
	Family     string  `json:"family"`
	Method     string  `json:"method"`
	Runs       int     `json:"runs"`
	MaxIters   int     `json:"max_iterations"`
	MaxCondEst float64 `json:"max_cond_est"`
}

// convergenceRows aggregates the reports' cold runs by corpus family and
// solver method, sorted for a stable committed snapshot.
func convergenceRows(reports []*diff.MeshReport) []FamilyConvergence {
	type key struct{ family, method string }
	rows := map[key]*FamilyConvergence{}
	for _, rep := range reports {
		fam := familyOf(rep.Name)
		for _, r := range rep.Runs {
			if r.Warm {
				continue
			}
			k := key{fam, r.Method}
			row := rows[k]
			if row == nil {
				row = &FamilyConvergence{Family: fam, Method: r.Method}
				rows[k] = row
			}
			row.Runs++
			if r.Iterations > row.MaxIters {
				row.MaxIters = r.Iterations
			}
			if r.CondEst > row.MaxCondEst {
				row.MaxCondEst = r.CondEst
			}
		}
	}
	out := make([]FamilyConvergence, 0, len(rows))
	for _, row := range rows {
		out = append(out, *row)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Family != out[j].Family {
			return out[i].Family < out[j].Family
		}
		return out[i].Method < out[j].Method
	})
	return out
}

// familyOf maps a mesh name to its corpus family: the leading alphabetic
// run of the name ("grid0-ddr3" → "grid", "tsv1-hmc-edge" → "tsv").
func familyOf(name string) string {
	for i, r := range name {
		if r < 'a' || r > 'z' {
			if i == 0 {
				return name
			}
			return name[:i]
		}
	}
	return name
}

func (s *Snapshot) add(rep *diff.MeshReport) {
	if s.Meshes == 0 {
		s.AllRestampExact, s.AllStructEqual = true, true
	}
	s.Meshes++
	if rep.Oracle == solve.MethodCholesky {
		s.OracleMeshes++
	}
	s.SolverRuns += len(rep.Runs)
	if rep.MaxRelErr > s.MaxRelErr {
		s.MaxRelErr = rep.MaxRelErr
	}
	for _, r := range rep.Runs {
		if r.Residual > s.MaxResidual {
			s.MaxResidual = r.Residual
		}
	}
	s.AllRestampExact = s.AllRestampExact && rep.RestampExact
	if rep.RoundTrip != nil {
		s.AllStructEqual = s.AllStructEqual && rep.RoundTrip.StructEqual
		if rep.RoundTrip.VoltRelErr > s.MaxRoundTripRelErr {
			s.MaxRoundTripRelErr = rep.RoundTrip.VoltRelErr
		}
	}
	s.Reports = append(s.Reports, rep)
}

// importDecks runs every deck matching the glob through the differential
// harness and prints one line per deck plus a typed per-file error report.
// Any failing deck makes the whole import fail so a CI invocation over a
// deck directory cannot silently skip a corrupt file.
func importDecks(pattern string, opt diff.Options) error {
	reps, fails, err := diff.CheckDecks(pattern, opt)
	if err != nil {
		return err
	}
	for _, rep := range reps {
		fmt.Printf("%-30s %6d nodes %8d nnz  oracle=%-14s runs=%d  max_rel_err=%.3e\n",
			filepath.Base(rep.File), rep.Nodes, rep.NNZ, rep.Oracle, len(rep.Runs), rep.MaxRelErr)
	}
	for _, fe := range fails {
		fmt.Fprintf(os.Stderr, "FAIL %-25s stage=%-7s %v\n", filepath.Base(fe.File), fe.Stage, fe.Err)
	}
	fmt.Printf("imported %d decks: %d ok, %d failed\n", len(reps)+len(fails), len(reps), len(fails))
	if len(fails) > 0 {
		return fmt.Errorf("%d of %d decks failed to import (see report above)", len(fails), len(reps)+len(fails))
	}
	return nil
}

// exportDecks writes each corpus mesh as a standalone SPICE deck — the
// interchange artifact an external simulator (or another PDN tool)
// consumes.
func exportDecks(specs []*gen.Spec, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, s := range specs {
		inst, err := s.Build()
		if err != nil {
			return err
		}
		m, rhs, err := diff.Assemble(inst)
		if err != nil {
			return err
		}
		path := filepath.Join(dir, s.Name+".sp")
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := spice.WriteNetlist(f, m, rhs, s.Name); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d nodes)\n", path, m.N())
	}
	return nil
}
