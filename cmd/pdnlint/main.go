// Command pdnlint runs the project's static-analysis suite: the
// analyzers that machine-check the determinism, numerical-safety,
// concurrency, and immutability invariants the solver stack relies on
// (see DESIGN.md, "Static analysis layer").
//
// Usage:
//
//	go run ./cmd/pdnlint ./...
//
// Findings print one per line as file:line:col: message (analyzer); the
// exit status is 1 if any error-severity finding remains, so CI can
// gate on it. With -json the findings are emitted as a JSON array
// instead (fields analyzer, file, line, col, severity, message; paths
// relative to the working directory).
//
// A finding that is a deliberate, justified exception can be waived in
// place:
//
//	//pdnlint:ignore <analyzer> <reason>
//
// Stale or malformed waivers are themselves findings (unusedsuppress).
// For gradual adoption of a new analyzer, pre-existing findings can be
// parked in a lint.baseline file (-baseline; tab-separated analyzer,
// path, message per line) — baselined findings do not gate, and stale
// baseline entries are reported so the file only shrinks. -severity
// downgrades or disables whole analyzers, e.g.
//
//	pdnlint -severity ctxflow=warn,walltime=off ./...
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"pdn3d/internal/lint"
	"pdn3d/internal/lint/baseline"
)

var (
	jsonFlag     = flag.Bool("json", false, "emit findings as a JSON array instead of plain lines")
	baselineFlag = flag.String("baseline", "lint.baseline", "baseline file of allowlisted findings (missing file = empty baseline)")
	severityFlag = flag.String("severity", "", "comma-separated per-analyzer overrides, e.g. ctxflow=warn,walltime=off")
)

func main() {
	flag.Usage = usage
	flag.Parse()
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	if err := run(patterns); err != nil {
		fmt.Fprintln(os.Stderr, "pdnlint:", err)
		os.Exit(2)
	}
}

func parseSeverity(spec string) (map[string]lint.Severity, error) {
	if spec == "" {
		return nil, nil
	}
	out := map[string]lint.Severity{}
	for _, part := range strings.Split(spec, ",") {
		name, level, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok || name == "" {
			return nil, fmt.Errorf("bad -severity element %q (want analyzer=level)", part)
		}
		sev, err := lint.ParseSeverity(level)
		if err != nil {
			return nil, fmt.Errorf("-severity %s: %v", name, err)
		}
		out[name] = sev
	}
	return out, nil
}

func run(patterns []string) error {
	severity, err := parseSeverity(*severityFlag)
	if err != nil {
		return err
	}
	base, err := baseline.LoadFile(*baselineFlag)
	if err != nil {
		return err
	}
	root, err := filepath.Abs(".")
	if err != nil {
		return err
	}
	prog, err := lint.Load(".", patterns...)
	if err != nil {
		return err
	}
	findings, err := lint.RunWith(prog, lint.Suite(), lint.Options{
		Severity:     severity,
		Baseline:     base,
		BaselinePath: *baselineFlag,
		Root:         root,
	})
	if err != nil {
		return err
	}
	if *jsonFlag {
		if err := lint.WriteJSON(os.Stdout, findings, root); err != nil {
			return err
		}
	} else {
		for _, f := range findings {
			if f.Severity == lint.SeverityWarn {
				fmt.Printf("%s [warn]\n", f)
			} else {
				fmt.Println(f)
			}
		}
	}
	if lint.ErrorCount(findings) > 0 {
		os.Exit(1)
	}
	return nil
}

func usage() {
	fmt.Fprintf(os.Stderr, "usage: pdnlint [flags] [packages]\n\nAnalyzers:\n")
	for _, a := range lint.Suite() {
		fmt.Fprintf(os.Stderr, "  %-15s %s\n", a.Name, a.Doc)
	}
	fmt.Fprintf(os.Stderr, "\nSuppress a finding with //pdnlint:ignore <analyzer> <reason>.\n\nFlags:\n")
	flag.PrintDefaults()
}
