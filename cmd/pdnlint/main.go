// Command pdnlint runs the project's static-analysis suite: six
// analyzers that machine-check the determinism, numerical-safety, and
// concurrency invariants the solver stack relies on (see DESIGN.md,
// "Static analysis layer").
//
// Usage:
//
//	go run ./cmd/pdnlint ./...
//
// Findings print one per line as file:line:col: message (analyzer); the
// exit status is 1 if there are any, so CI can gate on it. A finding
// that is a deliberate, justified exception can be waived in place:
//
//	//pdnlint:ignore <analyzer> <reason>
//
// Stale or malformed waivers are themselves findings (unusedsuppress).
package main

import (
	"flag"
	"fmt"
	"os"

	"pdn3d/internal/lint"
)

func main() {
	flag.Usage = usage
	flag.Parse()
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	if err := run(patterns); err != nil {
		fmt.Fprintln(os.Stderr, "pdnlint:", err)
		os.Exit(2)
	}
}

func run(patterns []string) error {
	prog, err := lint.Load(".", patterns...)
	if err != nil {
		return err
	}
	findings, err := lint.Run(prog, lint.Suite())
	if err != nil {
		return err
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		os.Exit(1)
	}
	return nil
}

func usage() {
	fmt.Fprintf(os.Stderr, "usage: pdnlint [packages]\n\nAnalyzers:\n")
	for _, a := range lint.Suite() {
		fmt.Fprintf(os.Stderr, "  %-15s %s\n", a.Name, a.Doc)
	}
	fmt.Fprintf(os.Stderr, "\nSuppress a finding with //pdnlint:ignore <analyzer> <reason>.\n")
	flag.PrintDefaults()
}
