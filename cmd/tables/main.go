// Command tables regenerates every table and figure of the paper's
// evaluation section and prints them to stdout.
//
// Usage:
//
//	tables [-pitch mm] [-requests n] [-only id[,id...]] [-benchmarks names]
//	       [-workers n] [-solver cg-ic0|cg-jacobi|cholesky]
//
// Experiment ids: table1 metal mounting table2 table3 table4 table5 table6
// table7 table8 table9 fig4 fig5 fig9 regression crowding failure policyall ac. The default runs all of
// them at full fidelity; -pitch 0.4 gives a quick pass.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"pdn3d/internal/exp"
	"pdn3d/internal/solve"
)

func main() {
	pitch := flag.Float64("pitch", 0, "R-Mesh pitch override in mm (0 = full fidelity 0.2)")
	requests := flag.Int("requests", 0, "controller workload length (0 = 10000)")
	only := flag.String("only", "", "comma-separated experiment ids to run (default: all)")
	benches := flag.String("benchmarks", "ddr3-off,ddr3-on,wideio,hmc", "benchmarks for table9/regression")
	workers := flag.Int("workers", 0, "worker pool size for sweeps and solver kernels (0 = GOMAXPROCS)")
	solver := flag.String("solver", "", "nodal solver: "+strings.Join(solve.Methods(), ", ")+" (default "+solve.DefaultMethod+")")
	flag.Parse()

	r := exp.NewRunner(exp.Config{MeshPitch: *pitch, Requests: *requests, Workers: *workers, Solver: *solver})
	sel := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			sel[strings.TrimSpace(id)] = true
		}
	}
	want := func(id string) bool { return len(sel) == 0 || sel[id] }

	type stringer interface{ String() string }
	run := func(id string, f func() (stringer, error)) {
		if !want(id) {
			return
		}
		start := time.Now()
		out, err := f()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Printf("== %s (%.1fs) ==\n%s\n", id, time.Since(start).Seconds(), out)
	}

	run("table1", func() (stringer, error) { return r.Table1() })
	run("fig4", func() (stringer, error) { t, _, err := r.Figure4(); return t, err })
	run("metal", func() (stringer, error) { return r.MetalUsageStudy() })
	run("mounting", func() (stringer, error) { return r.MountingStudy() })
	run("fig5", func() (stringer, error) { return r.Figure5() })
	run("table2", func() (stringer, error) { return r.Table2() })
	run("table3", func() (stringer, error) { return r.Table3() })
	run("table4", func() (stringer, error) { return r.Table4() })
	run("table5", func() (stringer, error) { return r.Table5() })
	run("table6", func() (stringer, error) { t, _, err := r.Table6(); return t, err })
	run("table7", func() (stringer, error) { return r.Table7() })
	run("fig9", func() (stringer, error) { return r.Figure9(nil) })
	run("table8", func() (stringer, error) { return r.Table8() })
	run("crowding", func() (stringer, error) { return r.CrowdingStudy() })
	run("failure", func() (stringer, error) { return r.TSVFailureStudy() })
	run("policyall", func() (stringer, error) { return r.PolicyStudyAll() })
	run("ac", func() (stringer, error) { return r.ACStudy() })
	for _, b := range strings.Split(*benches, ",") {
		b := strings.TrimSpace(b)
		run("table9", func() (stringer, error) { return r.Table9(b) })
		run("regression", func() (stringer, error) { return r.RegressionStudy(b) })
	}
}
