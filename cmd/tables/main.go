// Command tables regenerates every table and figure of the paper's
// evaluation section and prints them to stdout.
//
// Usage:
//
//	tables [-pitch mm] [-requests n] [-only id[,id...]] [-benchmarks names]
//	       [-workers n] [-solver cg-ic0|cg-amg|cg-jacobi|cholesky]
//	       [-stats] [-metrics-out file] [-pprof addr]
//
// Experiment ids: table1 metal mounting table2 table3 table4 table5 table6
// table7 table8 table9 fig4 fig5 fig9 regression crowding failure policyall ac. The default runs all of
// them at full fidelity; -pitch 0.4 gives a quick pass.
//
// An experiment that fails still prints whatever it produced (resilient
// tables render failed cells as ERR), the error goes to stderr, the
// remaining experiments run, and the process exits non-zero.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"pdn3d/internal/exp"
	"pdn3d/internal/obs"
	"pdn3d/internal/report"
	"pdn3d/internal/solve"
)

func main() {
	pitch := flag.Float64("pitch", 0, "R-Mesh pitch override in mm (0 = full fidelity 0.2)")
	requests := flag.Int("requests", 0, "controller workload length (0 = 10000)")
	only := flag.String("only", "", "comma-separated experiment ids to run (default: all)")
	benches := flag.String("benchmarks", "ddr3-off,ddr3-on,wideio,hmc", "benchmarks for table9/regression")
	workers := flag.Int("workers", 0, "worker pool size for sweeps and solver kernels (0 = GOMAXPROCS)")
	solver := flag.String("solver", "", "nodal solver: "+strings.Join(solve.Methods(), ", ")+" (default "+solve.DefaultMethod+")")
	obsFlags := obs.BindFlags(flag.CommandLine)
	flag.Parse()

	errlog := func(format string, args ...interface{}) { fmt.Fprintf(os.Stderr, format+"\n", args...) }
	reg := obsFlags.Setup(errlog)
	r := exp.NewRunner(exp.Config{MeshPitch: *pitch, Requests: *requests, Workers: *workers, Solver: *solver, Obs: reg})
	sel := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			sel[strings.TrimSpace(id)] = true
		}
	}
	want := func(id string) bool { return len(sel) == 0 || sel[id] }

	exitCode := 0
	run := func(id string, f func() (string, error)) {
		if !want(id) {
			return
		}
		start := time.Now()
		out, err := f()
		if out != "" {
			fmt.Printf("== %s (%.1fs) ==\n%s\n", id, time.Since(start).Seconds(), out)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", id, err)
			exitCode = 1
		}
	}

	run("table1", func() (string, error) { return renderT(r.Table1()) })
	run("fig4", func() (string, error) { t, _, err := r.Figure4(); return renderT(t, err) })
	run("metal", func() (string, error) { return renderT(r.MetalUsageStudy()) })
	run("mounting", func() (string, error) { return renderT(r.MountingStudy()) })
	run("fig5", func() (string, error) { return renderS(r.Figure5()) })
	run("table2", func() (string, error) { return renderT(r.Table2()) })
	run("table3", func() (string, error) { return renderT(r.Table3()) })
	run("table4", func() (string, error) { return renderT(r.Table4()) })
	run("table5", func() (string, error) { return renderT(r.Table5()) })
	run("table6", func() (string, error) { t, _, err := r.Table6(); return renderT(t, err) })
	run("table7", func() (string, error) { return renderT(r.Table7()) })
	run("fig9", func() (string, error) { return renderS(r.Figure9(nil)) })
	run("table8", func() (string, error) { return renderT(r.Table8()) })
	run("crowding", func() (string, error) { return renderT(r.CrowdingStudy()) })
	run("failure", func() (string, error) { return renderT(r.TSVFailureStudy()) })
	run("policyall", func() (string, error) { return renderT(r.PolicyStudyAll()) })
	run("ac", func() (string, error) { return renderT(r.ACStudy()) })
	for _, b := range strings.Split(*benches, ",") {
		b := strings.TrimSpace(b)
		run("table9", func() (string, error) { return renderT(r.Table9(b)) })
		run("regression", func() (string, error) { return renderT(r.RegressionStudy(b)) })
	}

	if err := obsFlags.Finish(reg); err != nil {
		fmt.Fprintln(os.Stderr, err)
		exitCode = 1
	}
	os.Exit(exitCode)
}

// renderT renders a table result, passing the error through. A nil table
// renders empty — returning (*report.Table)(nil) through an interface
// would dodge the nil check, so the concrete types stay explicit here.
func renderT(t *report.Table, err error) (string, error) {
	if t == nil {
		return "", err
	}
	return t.String(), err
}

// renderS is renderT for series results.
func renderS(s *report.Series, err error) (string, error) {
	if s == nil {
		return "", err
	}
	return s.String(), err
}
