// Command pdn3d runs the cross-domain co-optimization (paper §6) for one
// benchmark: it fits the regression IR-drop model from R-Mesh samples,
// searches the design space for the minimum IR-cost at each requested
// alpha, verifies winners on the R-Mesh, and prints a Table 9-style
// summary.
//
// Usage:
//
//	pdn3d -bench ddr3-off [-alpha 0,0.3,1] [-pitch 0.2] [-samples 3] [-grid 9]
//	      [-workers n] [-solver cg-ic0|cg-amg|cg-jacobi|cholesky]
//	      [-stats] [-metrics-out file] [-pprof addr]
package main

import (
	"flag"
	"fmt"
	"log"
	"strconv"
	"strings"
	"time"

	"pdn3d/internal/bench3d"
	"pdn3d/internal/obs"
	"pdn3d/internal/opt"
	"pdn3d/internal/report"
	"pdn3d/internal/solve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pdn3d: ")
	benchName := flag.String("bench", "ddr3-off", "benchmark: ddr3-off, ddr3-on, wideio, hmc")
	alphas := flag.String("alpha", "0,0.3,1", "comma-separated IR-cost exponents in [0,1]")
	pitch := flag.Float64("pitch", 0, "R-Mesh pitch override in mm")
	samples := flag.Int("samples", 0, "regression samples per continuous axis (0 = 3)")
	grid := flag.Int("grid", 0, "search grid steps per axis (0 = 9)")
	workers := flag.Int("workers", 0, "worker pool size for sampling sweeps (0 = GOMAXPROCS)")
	solver := flag.String("solver", "", "nodal solver: "+strings.Join(solve.Methods(), ", ")+" (default "+solve.DefaultMethod+")")
	obsFlags := obs.BindFlags(flag.CommandLine)
	flag.Parse()
	reg := obsFlags.Setup(log.Printf)

	b, err := bench3d.ByName(*benchName)
	if err != nil {
		log.Fatal(err)
	}
	o := &opt.Optimizer{
		Bench:             b,
		MeshPitch:         *pitch,
		ContinuousSamples: *samples,
		GridSteps:         *grid,
		Workers:           *workers,
		Solver:            *solver,
		Obs:               reg,
	}
	start := time.Now()
	if err := o.FitModels(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fitted regression models from %d R-Mesh samples in %.1fs (worst RMSE %.4f log-mV, worst R^2 %.5f)\n",
		o.SolveCount(), time.Since(start).Seconds(), o.FitRMSE, o.FitR2)

	t := &report.Table{
		Title:  fmt.Sprintf("best options for %s (IR-cost = IR^a x Cost^(1-a))", b.Name),
		Header: []string{"alpha", "configuration", "IR model (mV)", "IR R-Mesh (mV)", "cost"},
	}
	for _, s := range strings.Split(*alphas, ",") {
		a, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
		if err != nil {
			log.Fatalf("bad alpha %q: %v", s, err)
		}
		res, err := o.Best(a)
		if err != nil {
			log.Fatal(err)
		}
		t.AddRow(fmt.Sprintf("%.2f", a), res.Cand.String(), res.PredIRmV, res.MeasIRmV,
			fmt.Sprintf("%.2f", res.Cost))
	}
	base, err := o.Baseline()
	if err != nil {
		log.Fatal(err)
	}
	t.AddRow("baseline", base.Cand.String(), base.PredIRmV, base.MeasIRmV, fmt.Sprintf("%.2f", base.Cost))
	fmt.Print(t)
	if err := obsFlags.Finish(reg); err != nil {
		log.Fatal(err)
	}
}
