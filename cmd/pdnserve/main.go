// Command pdnserve serves the IR-drop analysis stack over HTTP/JSON:
// POST /v1/analyze (one query), POST /v1/batch (fan-out), POST /v1/lut
// (look-up-table build/probe), GET /healthz, GET /metrics. See
// internal/serve for the request schema and the caching, admission, and
// determinism contracts.
//
// On SIGINT/SIGTERM the server stops admitting (new requests get 503),
// drains in-flight work up to -drain-timeout, then shuts the listener
// down.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"pdn3d/internal/serve"
	"pdn3d/internal/solve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pdnserve: ")

	addr := flag.String("addr", "127.0.0.1:8080", "listen address")
	workers := flag.Int("workers", 0, "solver/batch worker pool size (<= 0: GOMAXPROCS)")
	solver := flag.String("solver", "", fmt.Sprintf("solve method (%s; empty: %s)",
		strings.Join(solve.Methods(), ", "), solve.DefaultMethod))
	pitch := flag.Float64("pitch", 0, "mesh pitch in mm applied to queries without their own override (0: benchmark defaults)")
	maxInflight := flag.Int("max-inflight", 0, "max concurrently admitted requests (<= 0: 2 x GOMAXPROCS)")
	queueWait := flag.Duration("queue-wait", time.Second, "max wait for an admission slot before 429")
	cacheSize := flag.Int("cache", 1024, "analyze result cache entries")
	maxBatch := flag.Int("max-batch", 256, "max queries per /v1/batch request")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "max wait for in-flight work on shutdown")
	flag.Parse()
	if *pitch < 0 {
		log.Fatalf("-pitch %g must be >= 0", *pitch)
	}

	s := serve.New(serve.Config{
		Workers:     *workers,
		Solver:      *solver,
		MeshPitch:   *pitch,
		MaxInFlight: *maxInflight,
		QueueWait:   *queueWait,
		CacheSize:   *cacheSize,
		MaxBatch:    *maxBatch,
	})
	httpSrv := &http.Server{Addr: *addr, Handler: s, ReadHeaderTimeout: 5 * time.Second}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	//pdnlint:ignore rawgo the listener is process-lifetime background I/O like the obs debug server; internal/par pools are for bounded analysis work
	go func() { errc <- httpSrv.ListenAndServe() }()
	log.Printf("listening on %s", *addr)

	select {
	case err := <-errc:
		log.Fatalf("%v", err)
	case <-ctx.Done():
	}

	log.Printf("signal received, draining (timeout %s)", *drainTimeout)
	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := s.Drain(dctx); err != nil {
		log.Printf("%v", err)
	}
	if err := httpSrv.Shutdown(dctx); err != nil {
		log.Printf("shutdown: %v", err)
	}
	log.Printf("drained, exiting")
}
