// Command pdnserve serves the IR-drop analysis stack over HTTP/JSON:
// POST /v1/analyze (one query), POST /v1/batch (fan-out), POST /v1/lut
// (look-up-table build/probe), GET /healthz, GET /metrics, GET
// /debug/requests (recent and slowest request traces), and GET
// /debug/solves (recent and worst-by-iterations solve flight records).
// See internal/serve for the request schema and the caching, admission,
// tracing, and determinism contracts.
//
// All process output is structured log events on stderr — one line per
// event, logfmt by default or JSON lines with -log-format=json — and
// every served request emits a "request" event carrying its trace ID,
// status, and phase timings.
//
// On SIGINT/SIGTERM the server stops admitting (new requests get 503),
// drains in-flight work up to -drain-timeout, then shuts the listener
// down.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"pdn3d/internal/obs"
	"pdn3d/internal/serve"
	"pdn3d/internal/solve"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address")
	workers := flag.Int("workers", 0, "solver/batch worker pool size (<= 0: GOMAXPROCS)")
	solver := flag.String("solver", "", fmt.Sprintf("solve method (%s; empty: %s)",
		strings.Join(solve.Methods(), ", "), solve.DefaultMethod))
	pitch := flag.Float64("pitch", 0, "mesh pitch in mm applied to queries without their own override (0: benchmark defaults)")
	maxInflight := flag.Int("max-inflight", 0, "max concurrently admitted requests (<= 0: 2 x GOMAXPROCS)")
	queueWait := flag.Duration("queue-wait", time.Second, "max wait for an admission slot before 429")
	cacheSize := flag.Int("cache", 1024, "analyze result cache entries")
	topoCache := flag.Int("topo-cache", 0, "frozen mesh-topology cache entries (<= 0: design cache size)")
	warmStart := flag.Bool("warm-start", false, "seed solves with the last solution for the same topology (faster sweeps; results converge to tolerance instead of being byte-identical)")
	maxBatch := flag.Int("max-batch", 256, "max queries per /v1/batch request")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "max wait for in-flight work on shutdown")
	logFormat := flag.String("log-format", obs.LogText, "log output format: text or json")
	traceBuf := flag.Int("trace-buf", 0, "request traces retained for /debug/requests, per recent/slowest buffer (<= 0: default)")
	noTrace := flag.Bool("no-trace", false, "disable request tracing (X-Trace-Id is still issued; /debug/requests stays empty)")
	solveBuf := flag.Int("solve-buf", 0, "solve records retained for /debug/solves, per recent/worst buffer (<= 0: default)")
	noSolveRec := flag.Bool("no-solve-rec", false, "disable the solve flight recorder (/debug/solves stays empty; solve histograms are not registered)")
	healthInterval := flag.Duration("health-interval", obs.DefaultHealthInterval, "runtime-health gauge sampling period (0: disable the sampler)")
	flag.Parse()

	logger, err := obs.NewLogger(os.Stderr, *logFormat)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pdnserve: %v\n", err)
		os.Exit(1)
	}
	fatal := func(fields ...obs.Field) {
		logger.Event("fatal", fields...)
		os.Exit(1)
	}
	if *pitch < 0 {
		fatal(obs.F("error", fmt.Sprintf("-pitch %g must be >= 0", *pitch)))
	}

	s := serve.New(serve.Config{
		Workers:             *workers,
		Solver:              *solver,
		MeshPitch:           *pitch,
		MaxInFlight:         *maxInflight,
		QueueWait:           *queueWait,
		CacheSize:           *cacheSize,
		TopoCacheSize:       *topoCache,
		WarmStart:           *warmStart,
		MaxBatch:            *maxBatch,
		TraceBufSize:        *traceBuf,
		DisableTracing:      *noTrace,
		SolveBufSize:        *solveBuf,
		DisableSolveRecords: *noSolveRec,
		Log:                 logger,
	})
	if *healthInterval > 0 {
		// Runtime-health gauges (heap, goroutines, GC/scheduler pause p99s)
		// are info metrics on the server registry; the sampler runs for the
		// process lifetime and stops when drain completes.
		stopHealth := s.Registry().StartHealthSampler(*healthInterval)
		defer stopHealth()
	}
	httpSrv := &http.Server{Addr: *addr, Handler: s, ReadHeaderTimeout: 5 * time.Second}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	//pdnlint:ignore rawgo the listener is process-lifetime background I/O like the obs debug server; internal/par pools are for bounded analysis work
	go func() { errc <- httpSrv.ListenAndServe() }()
	logger.Event("start",
		obs.F("addr", *addr),
		obs.F("log_format", *logFormat),
		obs.F("tracing", !*noTrace))

	select {
	case err := <-errc:
		fatal(obs.F("error", err.Error()))
	case <-ctx.Done():
	}

	logger.Event("draining", obs.F("timeout", drainTimeout.String()))
	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := s.Drain(dctx); err != nil {
		logger.Event("drain_error", obs.F("error", err.Error()))
	}
	if err := httpSrv.Shutdown(dctx); err != nil {
		logger.Event("shutdown_error", obs.F("error", err.Error()))
	}
	logger.Event("drained")
}
