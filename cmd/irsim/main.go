// Command irsim runs one DC IR-drop analysis on a benchmark design and
// prints per-die results, optionally dumping an ASCII IR map per layer or
// an HSPICE-style netlist of the R-Mesh.
//
// Usage:
//
//	irsim -bench ddr3-off [-state 0-0-0-2] [-io 1.0] [-bonding F2F]
//	      [-tsv 33] [-style E|C|D] [-wirebond] [-dedicated] [-rdl none|interface|all]
//	      [-align] [-pitch 0.2] [-solver cg-ic0|cg-amg|cg-jacobi|cholesky] [-workers n]
//	      [-map] [-spice out.sp] [-stats] [-metrics-out file] [-pprof addr]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"pdn3d/internal/irdrop"
	"pdn3d/internal/layout"
	"pdn3d/internal/obs"
	"pdn3d/internal/query"
	"pdn3d/internal/rmesh"
	"pdn3d/internal/solve"
	"pdn3d/internal/spice"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("irsim: ")
	benchName := flag.String("bench", "ddr3-off", "benchmark: ddr3-off, ddr3-on, wideio, hmc")
	stateStr := flag.String("state", "0-0-0-2", "memory state R1-R2-R3-R4")
	io := flag.Float64("io", 1.0, "per-die I/O activity (0,1]")
	bonding := flag.String("bonding", "", "override bonding: F2B or F2F")
	tsv := flag.Int("tsv", 0, "override PG TSV count")
	style := flag.String("style", "", "override TSV style: C, E, or D")
	wirebond := flag.Bool("wirebond", false, "add backside wire bonding")
	dedicated := flag.Bool("dedicated", false, "add dedicated TSVs (on-chip)")
	rdl := flag.String("rdl", "", "override RDL: none, interface, all")
	align := flag.Bool("align", false, "align TSVs to C4 bumps (on-chip)")
	pitch := flag.Float64("pitch", 0, "R-Mesh pitch in mm (0 = default)")
	solver := flag.String("solver", "", "nodal solver: "+strings.Join(solve.Methods(), ", ")+" (default "+solve.DefaultMethod+")")
	workers := flag.Int("workers", 0, "worker pool size for solver kernels (0 = GOMAXPROCS)")
	dumpMap := flag.Bool("map", false, "print an ASCII IR map per layer")
	spiceOut := flag.String("spice", "", "write an HSPICE-style netlist to this file")
	svgOut := flag.String("svg", "", "write an SVG layout view (top DRAM die, IR overlay) to this file")
	obsFlags := obs.BindFlags(flag.CommandLine)
	flag.Parse()
	reg := obsFlags.Setup(log.Printf)

	// The shared query validator rejects out-of-range inputs (-io outside
	// (0,1], negative -pitch/-tsv, malformed -state) at flag-parse time
	// with the same errors the analysis server reports.
	q := query.Query{
		Bench:     *benchName,
		State:     *stateStr,
		IO:        *io,
		Bonding:   *bonding,
		TSV:       *tsv,
		Style:     *style,
		RDL:       *rdl,
		Wirebond:  *wirebond,
		Dedicated: *dedicated,
		Align:     *align,
		Pitch:     *pitch,
	}
	r, err := q.Resolve()
	if err != nil {
		log.Fatal(err)
	}
	spec, state := r.Spec, r.State
	a, err := irdrop.NewObs(spec, r.Bench.DRAMPower, r.Logic, reg)
	if err != nil {
		log.Fatal(err)
	}
	a.Opts.Method = *solver
	a.Opts.Workers = *workers
	res, err := a.Analyze(state, *io)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("design:        %s (%s, %s TSVs x%d, RDL %s, wirebond %v)\n",
		spec.Name, spec.Bonding, spec.TSVStyle, spec.TSVCount, spec.RDL, spec.WireBond)
	fmt.Printf("mesh:          %d nodes, %d resistors\n", a.Model.N(), a.Model.Resistors)
	fmt.Printf("state:         %s @ %.0f%% I/O, stack power %.1f mW\n", state, *io*100, res.TotalPower)
	fmt.Printf("solve:         %d CG iterations, residual %.2e\n", res.Stats.Iterations, res.Stats.Residual)
	fmt.Printf("max IR drop:   %.2f mV\n", res.MaxIRmV())
	for d, v := range res.PerDie {
		fmt.Printf("  DRAM%d:       %.2f mV\n", d+1, v*1000)
	}
	if spec.OnLogic {
		fmt.Printf("  logic die:   %.2f mV\n", res.LogicIRmV())
	}

	if *dumpMap {
		for _, l := range a.Model.Layers {
			fmt.Printf("\nIR map %s (mV):\n%s", l.Key, asciiMap(a.Model, l, res.IR))
		}
	}
	if *svgOut != "" {
		f, err := os.Create(*svgOut)
		if err != nil {
			log.Fatal(err)
		}
		top := spec.NumDRAM - 1
		l, ok := a.Model.Layer(fmt.Sprintf("dram%d/M2", top))
		if !ok {
			log.Fatalf("no load layer for die %d", top)
		}
		err = layout.WriteSVG(f, spec, spec.DRAM, layout.Options{
			Title:     fmt.Sprintf("%s DRAM%d, state %s", spec.Name, top+1, state),
			ShowTSVs:  true,
			ShowWires: true,
			IR:        res.IR,
			Layer:     l,
		})
		cerr := f.Close()
		if err != nil {
			log.Fatal(err)
		}
		if cerr != nil {
			log.Fatal(cerr)
		}
		fmt.Printf("\nlayout view written to %s\n", *svgOut)
	}
	if *spiceOut != "" {
		f, err := os.Create(*spiceOut)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		rhs, err := a.LoadedRHS(state, *io)
		if err != nil {
			log.Fatal(err)
		}
		if err := spice.WriteNetlist(f, a.Model, rhs, "pdn3d "+spec.Name); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nnetlist written to %s\n", *spiceOut)
	}
	if err := obsFlags.Finish(reg); err != nil {
		log.Fatal(err)
	}
}

// asciiMap renders a layer's IR drop as a coarse character map
// (space < 25% of layer max ... '#' > 75%).
func asciiMap(m *rmesh.Model, l *rmesh.Layer, ir []float64) string {
	var mx float64
	for n := l.Offset; n < l.Offset+l.Grid.N(); n++ {
		if ir[n] > mx {
			mx = ir[n]
		}
	}
	if mx == 0 {
		mx = 1
	}
	ramp := []byte(" .:-=+*#")
	var sb strings.Builder
	// Limit the map to ~60 columns by striding.
	stride := (l.Grid.NX + 59) / 60
	for j := l.Grid.NY - 1; j >= 0; j -= stride {
		for i := 0; i < l.Grid.NX; i += stride {
			v := ir[l.Offset+l.Grid.Index(i, j)] / mx
			idx := int(v * float64(len(ramp)-1))
			if idx < 0 {
				idx = 0
			}
			if idx >= len(ramp) {
				idx = len(ramp) - 1
			}
			sb.WriteByte(ramp[idx])
		}
		sb.WriteByte('\n')
	}
	fmt.Fprintf(&sb, "(max %.2f mV)\n", mx*1000)
	return sb.String()
}
