#!/usr/bin/env bash
# CI guard for the cg-amg convergence trajectory: re-runs the CG
# benchmarks and fails if any cg-amg iteration count exceeds the count
# committed in BENCH_solver.json. Iteration counts are exact integers from
# deterministic kernels (unlike wall time), so the comparison is strict:
# a numerical change to the aggregation, the smoother, or the underlying
# sparse layer that costs even one extra iteration turns the job red and
# must be acknowledged by refreshing the snapshot.
#
# Usage: scripts/check_amg_iters.sh [snapshot.json]
set -euo pipefail

cd "$(dirname "$0")/.."

SNAPSHOT="${1:-BENCH_solver.json}"
[ -f "$SNAPSHOT" ] || { echo "check_amg_iters: no snapshot at $SNAPSHOT" >&2; exit 1; }

out="$(go test ./internal/solve -run '^$' -bench 'BenchmarkCG_AMG' -benchtime 1x)"
echo "$out"

status=0
while read -r name iters; do
  committed=$(awk -v n="$name" -F'[,{}]' '
    $0 ~ "\"name\": \"" n "\"" {
      for (i = 1; i <= NF; i++)
        if ($i ~ /"iters_per_solve":/) { split($i, kv, ":"); gsub(/ /, "", kv[2]); print kv[2] }
    }' "$SNAPSHOT")
  if [ -z "$committed" ] || [ "$committed" = "null" ]; then
    echo "check_amg_iters: $name has no committed iters_per_solve in $SNAPSHOT" >&2
    status=1
    continue
  fi
  if [ "$iters" -gt "$committed" ]; then
    echo "check_amg_iters: $name regressed: $iters iterations vs committed $committed" >&2
    status=1
  else
    echo "check_amg_iters: $name ok: $iters iterations (committed $committed)"
  fi
done < <(echo "$out" | awk '$1 ~ /^BenchmarkCG_AMG/ {
  name = $1; sub(/-[0-9]+$/, "", name)
  for (i = 3; i <= NF; i++) if ($(i) == "iters/solve") print name, int($(i - 1))
}')

exit $status
