#!/usr/bin/env bash
# CI regression gate for the committed BENCH_solver.json: re-runs the
# solver-side benchmark suite once and compares every fresh line against
# the committed snapshot.
#
#   - iters_per_solve: deterministic integers from the sharded kernels,
#     compared exactly. Any drift — a regression or an improvement —
#     must be acknowledged by refreshing the snapshot
#     (scripts/bench_snapshot.sh), so the committed convergence story
#     never goes stale.
#   - ns_per_op: compared within a multiplicative band (NSOP_BAND,
#     default 4.0). Wall time at -benchtime 1x on shared CI hardware is
#     noisy and host-dependent, so the band only catches
#     order-of-magnitude blowups (an accidental dense fallback, a
#     reallocating restamp), not small drifts.
#
# Generalizes the former check_amg_iters.sh (cg-amg iterations only) to
# every benchmark in the snapshot.
#
# Usage: scripts/bench_check.sh [snapshot.json]
#   NSOP_BAND  ns/op tolerance multiplier (default 4.0)
set -euo pipefail

cd "$(dirname "$0")/.."

SNAPSHOT="${1:-BENCH_solver.json}"
NSOP_BAND="${NSOP_BAND:-4.0}"
[ -f "$SNAPSHOT" ] || { echo "bench_check: no snapshot at $SNAPSHOT" >&2; exit 1; }

# Same packages and pattern as bench_snapshot.sh, so every committed
# line gets a fresh counterpart.
out="$(go test ./internal/solve ./internal/rmesh -run '^$' \
  -bench 'BenchmarkCG_IC0|BenchmarkCG_AMG|BenchmarkAMGSetup|BenchmarkValueSweep|BenchmarkRestamp$|BenchmarkBuildTopology' \
  -benchtime 1x)"
echo "$out"

# lookup NAME KEY: extract one numeric field of the named benchmark from
# the snapshot (the generator writes one benchmark object per line).
lookup() {
  awk -v n="$1" -v k="$2" -F'[,{}]' '
    $0 ~ "\"name\": \"" n "\"" {
      for (i = 1; i <= NF; i++)
        if ($i ~ "\"" k "\":") { split($i, kv, ":"); gsub(/ /, "", kv[2]); print kv[2] }
    }' "$SNAPSHOT"
}

status=0
checked=0
while read -r name nsop iters; do
  committed_ns=$(lookup "$name" ns_per_op)
  if [ -z "$committed_ns" ]; then
    echo "bench_check: $name is not in $SNAPSHOT — refresh it with scripts/bench_snapshot.sh" >&2
    status=1
    continue
  fi
  checked=$((checked + 1))
  committed_iters=$(lookup "$name" iters_per_solve)
  if [ "$iters" != "null" ] && [ -n "$committed_iters" ] && [ "$committed_iters" != "null" ]; then
    if [ "$iters" -ne "$committed_iters" ]; then
      echo "bench_check: $name iteration drift: $iters iterations vs committed $committed_iters — deterministic kernels, so this is a numerical change; refresh the snapshot to acknowledge it" >&2
      status=1
    else
      echo "bench_check: $name ok: $iters iterations (committed $committed_iters)"
    fi
  fi
  if awk -v f="$nsop" -v c="$committed_ns" -v band="$NSOP_BAND" \
      'BEGIN { exit !(f > c * band) }'; then
    echo "bench_check: $name wall-time blowup: $nsop ns/op vs committed $committed_ns (band ${NSOP_BAND}x)" >&2
    status=1
  fi
done < <(echo "$out" | awk '$1 ~ /^Benchmark/ && / ns\/op/ {
  name = $1; sub(/-[0-9]+$/, "", name)
  nsop = "null"; iters = "null"
  for (i = 3; i <= NF; i++) {
    if ($(i) == "ns/op")       nsop = $(i - 1)
    if ($(i) == "iters/solve") iters = int($(i - 1))
  }
  print name, nsop, iters
}')

if [ "$checked" -eq 0 ]; then
  echo "bench_check: no fresh benchmark matched the snapshot" >&2
  exit 1
fi
echo "bench_check: $checked benchmarks within bands"
exit $status
