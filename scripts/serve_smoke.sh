#!/usr/bin/env bash
# Boots pdnserve on a local port, drives one request through every
# endpoint (analyze, batch, lut, healthz, metrics), and fails on any
# non-2xx response or a batch item error. Finishes with a SIGTERM to
# check the graceful drain path exits cleanly.
set -euo pipefail

cd "$(dirname "$0")/.."

BIN="$(mktemp -d)/pdnserve"
go build -o "$BIN" ./cmd/pdnserve

ADDR="127.0.0.1:18080"
# Coarse mesh pitch keeps smoke solves fast; determinism is unaffected.
"$BIN" -addr "$ADDR" -pitch 0.5 &
PID=$!
trap 'kill "$PID" 2>/dev/null || true' EXIT

up=0
for _ in $(seq 1 100); do
  if curl -sf "http://$ADDR/healthz" >/dev/null 2>&1; then up=1; break; fi
  sleep 0.1
done
if [ "$up" != 1 ]; then
  echo "pdnserve did not come up on $ADDR" >&2
  exit 1
fi

check() {
  # check <name> <path> [json-body]; curl -f fails the script on non-2xx.
  local name="$1" path="$2" data="${3:-}" out
  if [ -n "$data" ]; then
    out=$(curl -sf -X POST -H 'Content-Type: application/json' -d "$data" "http://$ADDR$path")
  else
    out=$(curl -sf "http://$ADDR$path")
  fi
  echo "ok: $name -> $(echo "$out" | head -c 120)"
  LAST="$out"
}

check healthz /healthz
check analyze /v1/analyze '{"bench":"ddr3-off","state":"0-0-0-2","io":1.0}'
echo "$LAST" | grep -q '"max_ir_mv"' || { echo "analyze response missing max_ir_mv" >&2; exit 1; }

check batch /v1/batch '{"queries":[{"bench":"ddr3-off","state":"0-0-0-2","io":1.0},{"bench":"ddr3-off","state":"1-0-1-2","io":0.5}]}'
echo "$LAST" | grep -q '"failed":0' || { echo "batch reported item failures: $LAST" >&2; exit 1; }

check lut /v1/lut '{"bench":"ddr3-off","max_per_die":1,"io_levels":[1.0],"probe":{"state":"0-0-0-1","io":1.0}}'
echo "$LAST" | grep -q '"probe_max_ir_mv"' || { echo "lut response missing probe result" >&2; exit 1; }

check metrics /metrics
echo "$LAST" | grep -q 'serve.cache' || { echo "metrics missing serve counters" >&2; exit 1; }

kill -TERM "$PID"
wait "$PID"
trap - EXIT
echo "serve smoke passed"
