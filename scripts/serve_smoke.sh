#!/usr/bin/env bash
# Boots pdnserve on a local port, drives one request through every
# endpoint (analyze, batch, lut, healthz, metrics, debug/requests,
# debug/solves), and fails on any non-2xx response, a batch item error, a missing
# X-Trace-Id, an unretrievable trace, malformed Prometheus exposition,
# or a missing structured-log start event. Finishes with a SIGTERM to
# check the graceful drain path exits cleanly.
set -euo pipefail

cd "$(dirname "$0")/.."

BIN="$(mktemp -d)/pdnserve"
go build -o "$BIN" ./cmd/pdnserve

ADDR="127.0.0.1:18080"
LOG="$(mktemp)"
# Coarse mesh pitch keeps smoke solves fast; determinism is unaffected.
"$BIN" -addr "$ADDR" -pitch 0.5 -log-format=json 2>"$LOG" &
PID=$!
trap 'kill "$PID" 2>/dev/null || true' EXIT

up=0
for _ in $(seq 1 100); do
  if curl -sf "http://$ADDR/healthz" >/dev/null 2>&1; then up=1; break; fi
  sleep 0.1
done
if [ "$up" != 1 ]; then
  echo "pdnserve did not come up on $ADDR" >&2
  exit 1
fi

check() {
  # check <name> <path> [json-body]; curl -f fails the script on non-2xx.
  local name="$1" path="$2" data="${3:-}" out
  if [ -n "$data" ]; then
    out=$(curl -sf -X POST -H 'Content-Type: application/json' -d "$data" "http://$ADDR$path")
  else
    out=$(curl -sf "http://$ADDR$path")
  fi
  echo "ok: $name -> $(echo "$out" | head -c 120)"
  LAST="$out"
}

check healthz /healthz
check analyze /v1/analyze '{"bench":"ddr3-off","state":"0-0-0-2","io":1.0}'
echo "$LAST" | grep -q '"max_ir_mv"' || { echo "analyze response missing max_ir_mv" >&2; exit 1; }

check batch /v1/batch '{"queries":[{"bench":"ddr3-off","state":"0-0-0-2","io":1.0},{"bench":"ddr3-off","state":"1-0-1-2","io":0.5}]}'
echo "$LAST" | grep -q '"failed":0' || { echo "batch reported item failures: $LAST" >&2; exit 1; }

check lut /v1/lut '{"bench":"ddr3-off","max_per_die":1,"io_levels":[1.0],"probe":{"state":"0-0-0-1","io":1.0}}'
echo "$LAST" | grep -q '"probe_max_ir_mv"' || { echo "lut response missing probe result" >&2; exit 1; }

check metrics /metrics
echo "$LAST" | grep -q 'serve.cache' || { echo "metrics missing serve counters" >&2; exit 1; }
echo "$LAST" | grep -q 'health.goroutines' || { echo "metrics missing runtime-health gauges" >&2; exit 1; }

# Every response carries X-Trace-Id, and /debug/requests can return the
# trace it names while it is still retained. A state no earlier request
# used keeps this analyze off the result cache, so its trace links to a
# real solve record below.
TRACE_ID=$(curl -sf -D - -o /dev/null -X POST -H 'Content-Type: application/json' \
  -d '{"bench":"ddr3-off","state":"2-0-0-2","io":1.0}' "http://$ADDR/v1/analyze" \
  | tr -d '\r' | awk 'tolower($1)=="x-trace-id:"{print $2}')
if [ -z "$TRACE_ID" ]; then
  echo "analyze response missing X-Trace-Id header" >&2
  exit 1
fi
echo "ok: trace id -> $TRACE_ID"

check debug_requests "/debug/requests?id=$TRACE_ID"
echo "$LAST" | grep -q "\"trace_id\":\"$TRACE_ID\"" || { echo "/debug/requests did not return trace $TRACE_ID: $LAST" >&2; exit 1; }
echo "$LAST" | grep -q '"name":"request"' || { echo "trace $TRACE_ID has no request span: $LAST" >&2; exit 1; }

# The solve flight recorder: /debug/solves retains the analyze solves,
# round-trips one record by its solve id, and resolves the trace id to
# the solve that request ran.
check debug_solves /debug/solves
echo "$LAST" | grep -q '"solve_id":"s-' || { echo "/debug/solves retained no solve records: $LAST" >&2; exit 1; }
SOLVE_ID=$(echo "$LAST" | grep -o '"solve_id":"s-[0-9]*"' | head -1 | cut -d'"' -f4)
check debug_solve_by_id "/debug/solves?id=$SOLVE_ID"
echo "$LAST" | grep -q "\"solve_id\":\"$SOLVE_ID\"" || { echo "/debug/solves did not round-trip $SOLVE_ID: $LAST" >&2; exit 1; }
echo "$LAST" | grep -q '"cond_est":' || { echo "solve record $SOLVE_ID missing cond_est: $LAST" >&2; exit 1; }
check debug_solve_by_trace "/debug/solves?id=$TRACE_ID"
echo "$LAST" | grep -q "\"trace_id\":\"$TRACE_ID\"" || { echo "/debug/solves did not resolve trace $TRACE_ID: $LAST" >&2; exit 1; }

# Content-negotiated Prometheus exposition: typed, and every line is a
# valid v0.0.4 comment, sample, or blank.
PROM=$(curl -sf "http://$ADDR/metrics?format=prometheus")
echo "$PROM" | grep -q '^# TYPE serve_analyze_requests counter$' || { echo "prom exposition missing TYPE line" >&2; exit 1; }
echo "$PROM" | grep -q '^serve_analyze_latency_ms_bucket{le="+Inf"} ' || { echo "prom exposition missing histogram buckets" >&2; exit 1; }
echo "$PROM" | grep -q '^# TYPE serve_solve_iterations histogram$' || { echo "prom exposition missing solve iterations histogram" >&2; exit 1; }
echo "$PROM" | grep -q '^serve_solve_iterations_bucket{le="+Inf"} ' || { echo "prom exposition missing solve iteration buckets" >&2; exit 1; }
echo "$PROM" | grep -q '^# TYPE serve_solve_cond_est histogram$' || { echo "prom exposition missing cond_est histogram" >&2; exit 1; }
BAD=$(echo "$PROM" | grep -Ev '^(# (TYPE|HELP) [a-zA-Z_:][a-zA-Z0-9_:]* .*|[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? [+-]?([0-9.eE+-]+|Inf)|[[:space:]]*)$' || true)
if [ -n "$BAD" ]; then
  echo "invalid Prometheus exposition lines:" >&2
  echo "$BAD" >&2
  exit 1
fi
echo "ok: prometheus exposition lints clean"

# The structured JSON log carries the lifecycle start event and one
# record per request.
grep -q '"event":"start"' "$LOG" || { echo "JSON log missing start event:" >&2; cat "$LOG" >&2; exit 1; }
grep -q "\"event\":\"request\".*\"trace_id\":\"$TRACE_ID\"" "$LOG" || { echo "JSON log missing request record for $TRACE_ID" >&2; cat "$LOG" >&2; exit 1; }
echo "ok: structured log"

kill -TERM "$PID"
wait "$PID"
trap - EXIT
echo "serve smoke passed"
