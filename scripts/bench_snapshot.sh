#!/usr/bin/env bash
# Runs the solver-side and serving-side benchmark suites and writes the
# machine-readable perf snapshots BENCH_solver.json and BENCH_serve.json
# at the repo root. These are the tracked baselines a perf-sensitive PR
# refreshes (and CI uploads as artifacts); compare against the committed
# copies before accepting a regression.
#
# Usage: scripts/bench_snapshot.sh [benchtime]
#   benchtime  go test -benchtime value (default 10x; CI smoke uses 1x)
set -euo pipefail

cd "$(dirname "$0")/.."

BENCHTIME="${1:-10x}"

# bench_json PKGS PATTERN OUT
# Runs the benchmarks and converts `go test -bench` lines to JSON.
bench_json() {
  local pkgs="$1" pattern="$2" out="$3"
  local raw
  raw="$(go test $pkgs -run '^$' -bench "$pattern" -benchtime "$BENCHTIME" -benchmem)"
  echo "$raw"
  awk -v benchtime="$BENCHTIME" '
    BEGIN {
      printf "{\n  \"benchtime\": \"%s\",\n", benchtime
      n = 0
    }
    $1 == "goos:"   { goos = $2 }
    $1 == "goarch:" { goarch = $2 }
    $1 == "pkg:"    { pkg = $2 }
    $1 ~ /^Benchmark/ && $0 ~ / ns\/op/ {
      name = $1
      sub(/-[0-9]+$/, "", name)
      iters = $2
      nsop = bytesop = allocsop = solveiters = "null"
      for (i = 3; i <= NF; i++) {
        if ($(i) == "ns/op")       nsop = $(i - 1)
        if ($(i) == "B/op")        bytesop = $(i - 1)
        if ($(i) == "allocs/op")   allocsop = $(i - 1)
        # CG benchmarks report their convergence story; committing it
        # lets CI gate on iteration-count regressions (exact integers,
        # deterministic kernels) rather than on noisy wall time.
        if ($(i) == "iters/solve") solveiters = int($(i - 1))
      }
      line = sprintf("    {\"pkg\": \"%s\", \"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s, \"iters_per_solve\": %s}",
                     pkg, name, iters, nsop, bytesop, allocsop, solveiters)
      bench[n++] = line
    }
    END {
      printf "  \"goos\": \"%s\",\n  \"goarch\": \"%s\",\n  \"benchmarks\": [\n", goos, goarch
      for (i = 0; i < n; i++) printf "%s%s\n", bench[i], (i < n - 1 ? "," : "")
      print "  ]\n}"
    }
  ' <<<"$raw" >"$out"
  echo "wrote $out"
}

bench_json "./internal/solve ./internal/rmesh" \
  'BenchmarkCG_IC0|BenchmarkCG_AMG|BenchmarkAMGSetup|BenchmarkValueSweep|BenchmarkRestamp$|BenchmarkBuildTopology' \
  BENCH_solver.json

bench_json "./internal/serve" 'BenchmarkAnalyze' BENCH_serve.json

# pdnlint wall time: the lint suite gates every CI run, so its latency
# is a tracked perf surface like the solver and serving suites. Build
# once so the snapshot times analysis, not compilation.
lint_bin="$(mktemp -d)/pdnlint"
go build -o "$lint_bin" ./cmd/pdnlint
lint_out="$(mktemp)"
lint_status=0
lint_start=$(date +%s%N)
"$lint_bin" -json ./... >"$lint_out" || lint_status=$?
lint_end=$(date +%s%N)
lint_ms=$(( (lint_end - lint_start) / 1000000 ))
lint_findings=$(grep -c '"analyzer"' "$lint_out" || true)
printf '{\n  "target": "pdnlint ./...",\n  "wall_ms": %s,\n  "findings": %s,\n  "exit_status": %s\n}\n' \
  "$lint_ms" "$lint_findings" "$lint_status" >BENCH_lint.json
echo "wrote BENCH_lint.json (pdnlint ./... in ${lint_ms} ms, ${lint_findings} findings)"

# Differential-coverage snapshot: how much of the solver registry × corpus
# matrix the differential harness checks and how tightly it agrees
# (corpus size, per-mesh solver runs, max observed relative error), plus
# the -convergence section: per-run condition estimates / terminations
# from the solve flight recorder and the per-family iteration/κ envelope.
# No timestamps or host data — the numbers move only when the corpus, the
# solver registry, or solver numerics change (error magnitudes can wiggle
# at the last digits with the worker count's reduction order).
go run ./cmd/pdnbench -convergence -out BENCH_diff.json >/dev/null
echo "wrote BENCH_diff.json ($(go run ./cmd/pdnbench -list | wc -l) corpus entries)"
