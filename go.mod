module pdn3d

go 1.22
