package pdn3d

// The benchmark harness: one testing.B benchmark per table and figure of
// the paper's evaluation section. Each benchmark regenerates its
// table/series through internal/exp and logs it once, so
//
//	go test -bench=. -benchmem
//
// reproduces every reported row. Benchmarks run at a coarsened mesh pitch
// and a shortened workload to keep the full sweep in minutes; cmd/tables
// regenerates everything at full fidelity.

import (
	"sync"
	"testing"

	"pdn3d/internal/exp"
)

// benchRunner shares analyzers and look-up tables across benchmarks.
var (
	benchRunnerOnce sync.Once
	benchRunnerInst *exp.Runner
)

func benchRunner() *exp.Runner {
	benchRunnerOnce.Do(func() {
		benchRunnerInst = exp.NewRunner(exp.Config{MeshPitch: 0.4, Requests: 4000})
	})
	return benchRunnerInst
}

type stringer interface{ String() string }

func runTableBench(b *testing.B, f func() (stringer, error)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		out, err := f()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", out)
		}
	}
}

func BenchmarkTable1(b *testing.B) {
	r := benchRunner()
	runTableBench(b, func() (stringer, error) { return r.Table1() })
}

func BenchmarkFigure4Validation(b *testing.B) {
	r := benchRunner()
	runTableBench(b, func() (stringer, error) { t, _, err := r.Figure4(); return t, err })
}

func BenchmarkSec3MetalUsage(b *testing.B) {
	r := benchRunner()
	runTableBench(b, func() (stringer, error) { return r.MetalUsageStudy() })
}

func BenchmarkSec31Mounting(b *testing.B) {
	r := benchRunner()
	runTableBench(b, func() (stringer, error) { return r.MountingStudy() })
}

func BenchmarkFigure5TSVSweep(b *testing.B) {
	r := benchRunner()
	runTableBench(b, func() (stringer, error) { return r.Figure5() })
}

func BenchmarkTable2TSVRDLOptions(b *testing.B) {
	r := benchRunner()
	runTableBench(b, func() (stringer, error) { return r.Table2() })
}

func BenchmarkTable3DedicatedWireBond(b *testing.B) {
	r := benchRunner()
	runTableBench(b, func() (stringer, error) { return r.Table3() })
}

func BenchmarkTable4IntraPairOverlap(b *testing.B) {
	r := benchRunner()
	runTableBench(b, func() (stringer, error) { return r.Table4() })
}

func BenchmarkTable5MemoryStateIO(b *testing.B) {
	r := benchRunner()
	runTableBench(b, func() (stringer, error) { return r.Table5() })
}

func BenchmarkTable6Policies(b *testing.B) {
	r := benchRunner()
	runTableBench(b, func() (stringer, error) { t, _, err := r.Table6(); return t, err })
}

func BenchmarkTable7Cases(b *testing.B) {
	r := benchRunner()
	runTableBench(b, func() (stringer, error) { return r.Table7() })
}

func BenchmarkFigure9ConstraintSweep(b *testing.B) {
	r := benchRunner()
	// A reduced constraint set keeps one iteration around a minute.
	runTableBench(b, func() (stringer, error) { return r.Figure9([]float64{16, 20, 24, 28}) })
}

func BenchmarkTable8CostModel(b *testing.B) {
	r := benchRunner()
	runTableBench(b, func() (stringer, error) { return r.Table8() })
}

func BenchmarkTable9StackedDDR3Off(b *testing.B) {
	benchTable9(b, "ddr3-off")
}

func BenchmarkTable9StackedDDR3On(b *testing.B) {
	benchTable9(b, "ddr3-on")
}

func BenchmarkTable9WideIO(b *testing.B) {
	benchTable9(b, "wideio")
}

func BenchmarkTable9HMC(b *testing.B) {
	benchTable9(b, "hmc")
}

func benchTable9(b *testing.B, name string) {
	b.Helper()
	// Table 9 re-fits regressions each iteration; use a coarser pitch
	// than the shared runner to keep the sampling pass quick.
	r := exp.NewRunner(exp.Config{MeshPitch: 0.5})
	runTableBench(b, func() (stringer, error) { return r.Table9(name) })
}

func BenchmarkRegressionStudy(b *testing.B) {
	r := exp.NewRunner(exp.Config{MeshPitch: 0.5})
	runTableBench(b, func() (stringer, error) { return r.RegressionStudy("ddr3-off") })
}

// BenchmarkSolveOffChipBaseline times one raw R-Mesh build+solve — the
// platform's inner loop (the paper quotes 5 s per R-Mesh run vs 517 s EPS).
func BenchmarkSolveOffChipBaseline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench, err := LoadBenchmark("ddr3-off")
		if err != nil {
			b.Fatal(err)
		}
		a, err := NewAnalyzer(bench.Spec, bench.DRAMPower, nil)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := a.AnalyzeCounts([]int{0, 0, 0, 2}, 1.0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExtensionCrowding(b *testing.B) {
	r := benchRunner()
	runTableBench(b, func() (stringer, error) { return r.CrowdingStudy() })
}

func BenchmarkExtensionTSVFailure(b *testing.B) {
	r := benchRunner()
	runTableBench(b, func() (stringer, error) { return r.TSVFailureStudy() })
}

func BenchmarkExtensionPolicyAllBenchmarks(b *testing.B) {
	r := benchRunner()
	runTableBench(b, func() (stringer, error) { return r.PolicyStudyAll() })
}

func BenchmarkExtensionACDroop(b *testing.B) {
	r := benchRunner()
	runTableBench(b, func() (stringer, error) { return r.ACStudy() })
}
