// Package pdn3d is a design, packaging, and architectural-policy
// co-optimization platform for DC power integrity in 3D DRAM — a
// from-scratch reproduction of Peng et al., "Design, Packaging, and
// Architectural Policy Co-optimization for DC Power Integrity in 3D DRAM"
// (DAC 2015).
//
// The platform models complete 3D DRAM power-delivery networks (stacked
// DDR3 on/off-chip, Wide I/O, HMC) as resistive meshes, solves them for
// DC IR drop, simulates a cycle-accurate memory controller with
// IR-drop-aware read policies, and co-optimizes design/packaging/policy
// options under IR-drop / cost / performance tradeoffs.
//
// This file is the public facade: it re-exports the load-bearing types and
// constructors from the internal packages so applications can be written
// against one import. The examples/ directory holds runnable entry points;
// cmd/tables regenerates every table and figure of the paper.
package pdn3d

import (
	"pdn3d/internal/bench3d"
	"pdn3d/internal/cost"
	"pdn3d/internal/exp"
	"pdn3d/internal/irdrop"
	"pdn3d/internal/lut"
	"pdn3d/internal/memctrl"
	"pdn3d/internal/memstate"
	"pdn3d/internal/opt"
	"pdn3d/internal/pdn"
	"pdn3d/internal/powermap"
	"pdn3d/internal/report"
	"pdn3d/internal/transient"
)

// Core design and analysis types.
type (
	// Spec is a complete 3D DRAM PDN design specification.
	Spec = pdn.Spec
	// Benchmark is one of the four Table 1 benchmark designs.
	Benchmark = bench3d.Benchmark
	// Analyzer runs IR-drop analyses on a design.
	Analyzer = irdrop.Analyzer
	// AnalysisResult is one IR-drop analysis outcome.
	AnalysisResult = irdrop.Result
	// MemState is a memory state (active banks per die).
	MemState = memstate.State
	// LUT is the IR-drop look-up table driving the IR-aware policies.
	LUT = lut.Table
	// ControllerConfig parameterizes the memory controller simulator.
	ControllerConfig = memctrl.Config
	// ControllerResult reports one controller simulation.
	ControllerResult = memctrl.Result
	// Request is one read request.
	Request = memctrl.Request
	// CostModel is the Table 8 cost model.
	CostModel = cost.Model
	// Optimizer runs the cross-domain co-optimization.
	Optimizer = opt.Optimizer
	// Candidate is one point in the co-optimization design space.
	Candidate = opt.Candidate
	// OptResult is one optimized design point.
	OptResult = opt.Result
	// ExperimentRunner regenerates the paper's tables and figures.
	ExperimentRunner = exp.Runner
	// ExperimentConfig tunes experiment fidelity.
	ExperimentConfig = exp.Config
	// Table is a rendered result table.
	Table = report.Table
	// Series is a rendered result curve set.
	Series = report.Series
	// DRAMPowerModel maps memory states to spatial power.
	DRAMPowerModel = powermap.DRAMModel
	// LogicPowerModel models the host logic die's power.
	LogicPowerModel = powermap.LogicModel
)

// Design/packaging option enums.
const (
	// F2B is conventional face-to-back stacking.
	F2B = pdn.F2B
	// F2F is face-to-face stacking of die pairs with B2B between pairs.
	F2F = pdn.F2F
	// CenterTSV groups PG TSVs in the die center.
	CenterTSV = pdn.CenterTSV
	// EdgeTSV places PG TSVs along the die edges.
	EdgeTSV = pdn.EdgeTSV
	// DistributedTSV spreads PG TSVs between banks (HMC style).
	DistributedTSV = pdn.DistributedTSV
	// RDLNone, RDLInterface, RDLAll select redistribution layers.
	RDLNone      = pdn.RDLNone
	RDLInterface = pdn.RDLInterface
	RDLAll       = pdn.RDLAll
)

// Controller policy enums.
const (
	// PolicyStandard is the JEDEC tRRD/tFAW policy.
	PolicyStandard = memctrl.PolicyStandard
	// PolicyIRAware is the look-up-table IR-drop-aware policy.
	PolicyIRAware = memctrl.PolicyIRAware
	// FCFS schedules oldest-first.
	FCFS = memctrl.FCFS
	// DistR balances reads across dies.
	DistR = memctrl.DistR
)

// LoadBenchmark returns a named benchmark: "ddr3-off", "ddr3-on",
// "wideio", or "hmc".
func LoadBenchmark(name string) (*Benchmark, error) { return bench3d.ByName(name) }

// AllBenchmarks returns the four Table 1 benchmarks.
func AllBenchmarks() ([]*Benchmark, error) { return bench3d.All() }

// NewAnalyzer builds the R-Mesh analyzer for a design. logicPower may be
// nil for off-chip designs or to leave the host die unloaded.
func NewAnalyzer(spec *Spec, dramPower *DRAMPowerModel, logicPower *LogicPowerModel) (*Analyzer, error) {
	return irdrop.New(spec, dramPower, logicPower)
}

// BuildLUT precomputes the IR-drop look-up table for the IR-aware read
// policies (≤ maxBanksPerDie open banks per die, the default I/O levels).
func BuildLUT(a *Analyzer, maxBanksPerDie int) (*LUT, error) {
	return lut.Build(a, maxBanksPerDie, lut.DefaultIOLevels())
}

// NewControllerConfig returns the paper's controller setup for the given
// policy and scheduler.
func NewControllerConfig(policy memctrl.IRPolicy, sched memctrl.Scheduler, table *LUT, irLimitV float64) ControllerConfig {
	return memctrl.DefaultConfig(policy, sched, table, irLimitV)
}

// GenerateReads produces the paper's synthetic workload (10 000 reads,
// 80 % row locality) for the given stack geometry.
func GenerateReads(dies, banksPerDie, n int, seed int64) ([]Request, error) {
	cfg := memctrl.DefaultWorkload(dies, banksPerDie)
	if n > 0 {
		cfg.Requests = n
	}
	cfg.Seed = seed
	return memctrl.Generate(cfg)
}

// SimulateController runs a read stream through the controller.
func SimulateController(cfg ControllerConfig, reqs []Request) (*ControllerResult, error) {
	return memctrl.Simulate(cfg, reqs)
}

// StateFromCounts builds a memory state "R1-R2-...-Rn" with the paper's
// worst-case edge bank placement.
func StateFromCounts(counts []int, banksPerDie int) (MemState, error) {
	return memstate.FromCounts(counts, memstate.WorstCaseEdge(banksPerDie))
}

// ParseState parses "0-0-0-2" into per-die counts.
func ParseState(s string) ([]int, error) { return memstate.ParseCounts(s) }

// DefaultCostModel returns the Table 8 cost model.
func DefaultCostModel() *CostModel { return cost.Default() }

// NewExperimentRunner returns a runner that regenerates the paper's tables
// and figures at the given fidelity.
func NewExperimentRunner(cfg ExperimentConfig) *ExperimentRunner { return exp.NewRunner(cfg) }

// Transient (AC) extension re-exports: RLC droop analysis with off-chip
// decaps (internal/transient; the paper's §4.1 AC remark).
type (
	// TransientConfig parameterizes the RLC transient model.
	TransientConfig = transient.Config
	// TransientSim steps C·dv/dt + G·v = i(t) with backward Euler.
	TransientSim = transient.Sim
	// Decap is a series-RC decoupling branch to the ideal supply.
	Decap = transient.Decap
)

// DefaultTransientConfig returns plausible transient constants.
func DefaultTransientConfig() TransientConfig { return transient.DefaultConfig() }

// NewTransient prepares a droop simulation on an analyzer's model starting
// from the DC solution of rhsInit (see Analyzer.LoadedRHS).
func NewTransient(a *Analyzer, cfg TransientConfig, rhsInit []float64) (*TransientSim, error) {
	return transient.New(a.Model, cfg, rhsInit)
}
