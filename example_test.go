package pdn3d_test

import (
	"fmt"
	"log"

	"pdn3d"
)

// ExampleLoadBenchmark analyzes the off-chip stacked DDR3 under the
// default zero-bubble interleaving-read state.
func ExampleLoadBenchmark() {
	bench, err := pdn3d.LoadBenchmark("ddr3-off")
	if err != nil {
		log.Fatal(err)
	}
	spec := bench.Spec.Clone()
	spec.MeshPitch = 0.4 // coarse mesh keeps the example fast
	analyzer, err := pdn3d.NewAnalyzer(spec, bench.DRAMPower, nil)
	if err != nil {
		log.Fatal(err)
	}
	state, err := pdn3d.StateFromCounts([]int{0, 0, 0, 2}, spec.DRAM.NumBanks)
	if err != nil {
		log.Fatal(err)
	}
	res, err := analyzer.Analyze(state, 1.0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("state %s draws %.1f mW\n", state, res.TotalPower)
	fmt.Printf("max IR within 25-35 mV: %v\n", res.MaxIRmV() > 25 && res.MaxIRmV() < 35)
	// Output:
	// state 0-0-0-2 draws 310.5 mW
	// max IR within 25-35 mV: true
}

// ExampleParseState shows the paper's memory-state notation.
func ExampleParseState() {
	counts, err := pdn3d.ParseState("0-0-2-2")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(counts)
	// Output:
	// [0 0 2 2]
}

// ExampleDefaultCostModel prices a design with the Table 8 cost model.
func ExampleDefaultCostModel() {
	bench, err := pdn3d.LoadBenchmark("ddr3-off")
	if err != nil {
		log.Fatal(err)
	}
	cm := pdn3d.DefaultCostModel()
	base, err := cm.Total(bench.Spec)
	if err != nil {
		log.Fatal(err)
	}
	f2f := bench.Spec.Clone()
	f2f.Bonding = pdn3d.F2F
	withF2F, err := cm.Total(f2f)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("baseline %.2f, F2F premium %.3f\n", base, withF2F-base)
	// Output:
	// baseline 0.35, F2F premium 0.015
}
