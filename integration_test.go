package pdn3d

// End-to-end integration tests through the public facade: the full flow a
// downstream user would run — load a benchmark, analyze states, build the
// LUT, drive the controller, co-optimize — at coarse fidelity.

import (
	"math"
	"testing"
)

func TestEndToEndAnalysisFlow(t *testing.T) {
	bench, err := LoadBenchmark("ddr3-off")
	if err != nil {
		t.Fatal(err)
	}
	spec := bench.Spec.Clone()
	spec.MeshPitch = 0.4
	a, err := NewAnalyzer(spec, bench.DRAMPower, nil)
	if err != nil {
		t.Fatal(err)
	}
	counts, err := ParseState("0-0-0-2")
	if err != nil {
		t.Fatal(err)
	}
	st, err := StateFromCounts(counts, spec.DRAM.NumBanks)
	if err != nil {
		t.Fatal(err)
	}
	res, err := a.Analyze(st, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	// Coarse-mesh baseline should still land near the paper's 30 mV.
	if res.MaxIRmV() < 24 || res.MaxIRmV() > 40 {
		t.Errorf("baseline = %.2f mV, expected ~30 mV", res.MaxIRmV())
	}
}

func TestEndToEndPolicyFlow(t *testing.T) {
	if testing.Short() {
		t.Skip("controller flow is slow")
	}
	bench, err := LoadBenchmark("ddr3-off")
	if err != nil {
		t.Fatal(err)
	}
	spec := bench.Spec.Clone()
	spec.MeshPitch = 0.5
	a, err := NewAnalyzer(spec, bench.DRAMPower, nil)
	if err != nil {
		t.Fatal(err)
	}
	table, err := BuildLUT(a, 2)
	if err != nil {
		t.Fatal(err)
	}
	reqs, err := GenerateReads(4, 8, 3000, 7)
	if err != nil {
		t.Fatal(err)
	}
	cfg := NewControllerConfig(PolicyIRAware, DistR, table, 0.024)
	res, err := SimulateController(cfg, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxIR > 0.024 {
		t.Errorf("policy violated its own constraint: %.2f mV", res.MaxIR*1000)
	}
	if res.Bandwidth <= 0 {
		t.Error("no throughput")
	}
}

func TestEndToEndCostFlow(t *testing.T) {
	bench, err := LoadBenchmark("wideio")
	if err != nil {
		t.Fatal(err)
	}
	cm := DefaultCostModel()
	baseCost, err := cm.Total(bench.Spec)
	if err != nil {
		t.Fatal(err)
	}
	if baseCost <= 0 || baseCost > 2 {
		t.Errorf("Wide I/O baseline cost %.3f implausible", baseCost)
	}
	// Paper Table 9: Wide I/O baseline cost 0.62.
	if math.Abs(baseCost-0.62) > 0.12 {
		t.Errorf("Wide I/O baseline cost %.3f, paper 0.62", baseCost)
	}
}

func TestAllBenchmarksAnalyzeCoarse(t *testing.T) {
	benches, err := AllBenchmarks()
	if err != nil {
		t.Fatal(err)
	}
	// Paper Table 9 baseline IR drops per benchmark.
	want := map[string]float64{"ddr3-off": 30.03, "ddr3-on": 31.18, "wideio": 13.62, "hmc": 47.90}
	for _, b := range benches {
		spec := b.Spec.Clone()
		spec.MeshPitch = 0.4
		var logic *LogicPowerModel
		if spec.OnLogic {
			logic = b.LogicPower
		}
		a, err := NewAnalyzer(spec, b.DRAMPower, logic)
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		res, err := a.AnalyzeCounts(b.DefaultCounts, b.DefaultIO)
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		w := want[b.Name]
		if res.MaxIRmV() < w*0.7 || res.MaxIRmV() > w*1.4 {
			t.Errorf("%s baseline = %.2f mV, paper %.2f (coarse-mesh band +/-30%%)",
				b.Name, res.MaxIRmV(), w)
		}
	}
}
