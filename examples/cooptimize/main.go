// Co-optimization: the paper's §6 flow as an application. Fits the
// regression IR-drop model for the off-chip stacked DDR3 from R-Mesh
// samples, then walks the alpha tradeoff from pure-cost to pure-IR and
// prints the winning configuration at each point.
package main

import (
	"fmt"
	"log"

	"pdn3d"
	"pdn3d/internal/opt"
)

func main() {
	log.SetFlags(0)

	bench, err := pdn3d.LoadBenchmark("ddr3-off")
	if err != nil {
		log.Fatal(err)
	}
	o := &opt.Optimizer{
		Bench:     bench,
		MeshPitch: 0.4, // coarse mesh keeps the sampling pass interactive
	}
	fmt.Println("sampling the design space with the R-Mesh and fitting regressions...")
	if err := o.FitModels(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d R-Mesh solves; worst fit: RMSE %.4f (log-mV), R^2 %.5f\n\n",
		o.SolveCount(), o.FitRMSE, o.FitR2)

	fmt.Printf("%-6s %-52s %10s %10s %6s\n", "alpha", "best configuration", "model(mV)", "rmesh(mV)", "cost")
	for _, alpha := range []float64{0, 0.1, 0.3, 0.5, 0.7, 1.0} {
		res, err := o.Best(alpha)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-6.1f %-52s %10.2f %10.2f %6.2f\n",
			alpha, res.Cand.String(), res.PredIRmV, res.MeasIRmV, res.Cost)
	}
	base, err := o.Baseline()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-6s %-52s %10.2f %10.2f %6.2f\n", "base", base.Cand.String(),
		base.PredIRmV, base.MeasIRmV, base.Cost)
	fmt.Println("\npaper (Table 9, off-chip): alpha 0.3 picks edge TSVs + F2F at ~23 mV / 0.37 cost;")
	fmt.Println("packaging options (F2F, wire bonding) buy IR reduction cheaply, extra TSVs do not.")
}
