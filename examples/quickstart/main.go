// Quickstart: load the off-chip stacked DDR3 benchmark, analyze the
// default zero-bubble interleaving-read state, and compare F2B against F2F
// bonding — the platform's headline packaging result.
package main

import (
	"fmt"
	"log"

	"pdn3d"
)

func main() {
	log.SetFlags(0)

	// 1. Load a benchmark design (Table 1 of the paper).
	bench, err := pdn3d.LoadBenchmark("ddr3-off")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("benchmark: %s, %d DRAM dies, %d banks/die, VDD %.1f V\n",
		bench.Name, bench.Spec.NumDRAM, bench.Spec.DRAM.NumBanks, bench.Spec.DRAMTech.VDD)

	// 2. Build the R-Mesh analyzer and solve the default memory state
	//    0-0-0-2 (two banks interleaving on the top die, 100 % I/O).
	analyzer, err := pdn3d.NewAnalyzer(bench.Spec, bench.DRAMPower, nil)
	if err != nil {
		log.Fatal(err)
	}
	state, err := pdn3d.StateFromCounts([]int{0, 0, 0, 2}, bench.Spec.DRAM.NumBanks)
	if err != nil {
		log.Fatal(err)
	}
	res, err := analyzer.Analyze(state, 1.0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("F2B bonding:  max IR %.2f mV (stack power %.1f mW, %d mesh nodes)\n",
		res.MaxIRmV(), res.TotalPower, analyzer.Model.N())

	// 3. Flip to face-to-face bonding: die pairs share their PDNs and the
	//    worst drop collapses (paper: 30.03 -> 17.18 mV, -42.8 %).
	f2f := bench.Spec.Clone()
	f2f.Bonding = pdn3d.F2F
	analyzerF2F, err := pdn3d.NewAnalyzer(f2f, bench.DRAMPower, nil)
	if err != nil {
		log.Fatal(err)
	}
	resF2F, err := analyzerF2F.Analyze(state, 1.0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("F2F bonding:  max IR %.2f mV (%.1f%% vs F2B)\n",
		resF2F.MaxIRmV(), (resF2F.MaxIR-res.MaxIR)/res.MaxIR*100)

	// 4. Per-die breakdown: the top die pays the longest supply path.
	for d, v := range res.PerDie {
		fmt.Printf("  F2B DRAM%d: %.2f mV\n", d+1, v*1000)
	}
}
