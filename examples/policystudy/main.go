// Policy study: the paper's Table 6 flow as an application. Builds the
// IR-drop look-up table for the off-chip stacked DDR3 with the R-Mesh,
// then runs 10 000 reads under the three read policies and compares
// runtime, bandwidth, and worst IR drop.
package main

import (
	"fmt"
	"log"

	"pdn3d"
	"pdn3d/internal/memctrl"
)

func main() {
	log.SetFlags(0)

	bench, err := pdn3d.LoadBenchmark("ddr3-off")
	if err != nil {
		log.Fatal(err)
	}
	// Coarser mesh for a fast LUT build (81 states x 3 I/O levels).
	spec := bench.Spec.Clone()
	spec.MeshPitch = 0.4
	analyzer, err := pdn3d.NewAnalyzer(spec, bench.DRAMPower, nil)
	if err != nil {
		log.Fatal(err)
	}
	table, err := pdn3d.BuildLUT(analyzer, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("IR-drop LUT: %d entries, worst state %.2f mV\n", table.Entries(), table.WorstIR()*1000)

	// The paper's 24 mV constraint is 80% of its 30 mV worst single-die
	// state; derive the equivalent from this LUT (the coarse mesh shifts
	// absolute values slightly) and keep it feasible: a lone single-bank
	// activation must fit or nothing can ever issue.
	worst, err := table.MaxIR([]int{0, 0, 0, 2}, 1.0)
	if err != nil {
		log.Fatal(err)
	}
	floor, err := table.MaxIR([]int{0, 0, 0, 1}, 1.0)
	if err != nil {
		log.Fatal(err)
	}
	irLimit := 0.8 * worst
	if irLimit < floor*1.02 {
		irLimit = floor * 1.02
	}
	fmt.Printf("IR-drop constraint: %.2f mV (80%% of the worst single-die state)\n", irLimit*1000)
	runs := []struct {
		name   string
		policy memctrl.IRPolicy
		sched  memctrl.Scheduler
		limit  float64
	}{
		{"Standard/FCFS", pdn3d.PolicyStandard, pdn3d.FCFS, 0},
		{"IR-aware/FCFS", pdn3d.PolicyIRAware, pdn3d.FCFS, irLimit},
		{"IR-aware/DistR", pdn3d.PolicyIRAware, pdn3d.DistR, irLimit},
	}
	fmt.Printf("\n%-15s %12s %12s %10s %8s\n", "policy", "runtime(us)", "BW(rd/clk)", "maxIR(mV)", "ACTs")
	var base float64
	for i, run := range runs {
		reqs, err := pdn3d.GenerateReads(4, 8, 10000, 1)
		if err != nil {
			log.Fatal(err)
		}
		cfg := pdn3d.NewControllerConfig(run.policy, run.sched, table, run.limit)
		res, err := pdn3d.SimulateController(cfg, reqs)
		if err != nil {
			log.Fatal(err)
		}
		if i == 0 {
			base = res.RuntimeUS
		}
		fmt.Printf("%-15s %12.2f %12.3f %10.2f %8d", run.name, res.RuntimeUS, res.Bandwidth,
			res.MaxIR*1000, res.Activations)
		if i > 0 {
			fmt.Printf("   (%+.1f%% runtime)", (res.RuntimeUS-base)/base*100)
		}
		fmt.Println()
	}
	fmt.Println("\npaper: 109.3 / 84.68 (-22.6%) / 75.85 (-30.6%) us; max IR 30.03 / 23.98 / 23.98 mV")
}
