// TSV sweep: the paper's Figure 5 study as an application. Sweeps the PG
// TSV count for the on-chip stacked DDR3 with and without C4 alignment and
// shows the saturation and misalignment effects (§3.2).
package main

import (
	"fmt"
	"log"

	"pdn3d"
)

func main() {
	log.SetFlags(0)

	bench, err := pdn3d.LoadBenchmark("ddr3-on")
	if err != nil {
		log.Fatal(err)
	}
	state, err := pdn3d.StateFromCounts([]int{0, 0, 0, 2}, bench.Spec.DRAM.NumBanks)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("on-chip stacked DDR3, 0-0-0-2 @ 100% I/O (power rises through the host logic die)")
	fmt.Printf("%8s  %14s  %12s  %9s\n", "TSVs", "misaligned(mV)", "aligned(mV)", "saved")
	for _, tc := range []int{15, 33, 60, 120, 240, 480} {
		var ir [2]float64
		for i, aligned := range []bool{false, true} {
			spec := bench.Spec.Clone()
			spec.DedicatedTSV = false // coupled supply path, the §3.2 setting
			spec.TSVCount = tc
			spec.AlignTSV = aligned
			// A coarser mesh keeps the sweep fast; the trend is identical.
			spec.MeshPitch = 0.3
			a, err := pdn3d.NewAnalyzer(spec, bench.DRAMPower, bench.LogicPower)
			if err != nil {
				log.Fatal(err)
			}
			res, err := a.Analyze(state, 1.0)
			if err != nil {
				log.Fatal(err)
			}
			ir[i] = res.MaxIRmV()
		}
		fmt.Printf("%8d  %14.2f  %12.2f  %8.1f%%\n", tc, ir[0], ir[1], (ir[0]-ir[1])/ir[0]*100)
	}
	fmt.Println("\npaper: alignment saves up to 51.5% on-chip; gains saturate with many TSVs")
}
