package serve

// Request-scoped observability for the serving path: per-endpoint
// latency/status/in-flight telemetry, the X-Trace-Id contract, the
// /debug/requests trace buffer, and the structured access log. The
// phase vocabulary — queue, cache, flight, item, stamp, solve,
// serialize — and the log field names are a compatibility contract
// documented in DESIGN.md §5e.

import (
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"pdn3d/internal/obs"
)

// latencyBoundsMS are the fixed bucket bounds (milliseconds) shared by
// every per-endpoint latency and queue-wait histogram. Fixed bounds are
// what keep scrape series stable across deploys.
var latencyBoundsMS = []float64{0.5, 1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000, 10000}

// solveIterBounds and solveCondBounds are the fixed bucket bounds of the
// per-solve iteration-count and condition-estimate histograms
// ("serve.solve.iterations" / "serve.solve.cond_est"). Iterations span
// warm-start zero-iteration hits through stalled runs; condition
// estimates are log-spaced across the well-conditioned-to-pathological
// range the corpus produces.
var (
	solveIterBounds = []float64{1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000}
	solveCondBounds = []float64{1, 3, 10, 30, 100, 300, 1e3, 3e3, 1e4, 3e4, 1e5, 1e6}
)

// trackedStatuses are the response codes carrying their own counter;
// anything else lands in status_other.
var trackedStatuses = []int{200, 400, 405, 413, 422, 429, 500, 503}

// epMetrics is one endpoint's telemetry: request/status counters, an
// in-flight gauge, and latency plus queue-wait histograms. Latency data
// is wall-clock and therefore registered as info metrics, excluded from
// the deterministic snapshot contract.
type epMetrics struct {
	requests     *obs.Counter
	inflight     *obs.Gauge
	latencyMS    *obs.Histogram
	queueWaitMS  *obs.Histogram
	handlerMS    *obs.Histogram
	rejectedBusy *obs.Counter
	status       map[int]*obs.Counter
	statusOther  *obs.Counter
}

func newEPMetrics(reg *obs.Registry, name string) *epMetrics {
	p := "serve." + name + "."
	m := &epMetrics{
		requests:     reg.Counter(p + "requests"),
		inflight:     reg.InfoGauge(p + "inflight"),
		latencyMS:    reg.InfoHistogram(p+"latency_ms", latencyBoundsMS),
		queueWaitMS:  reg.InfoHistogram(p+"queue_wait_ms", latencyBoundsMS),
		handlerMS:    reg.InfoHistogram(p+"handler_ms", latencyBoundsMS),
		rejectedBusy: reg.Counter(p + "rejected_busy"),
		status:       map[int]*obs.Counter{},
		statusOther:  reg.Counter(p + "status.other"),
	}
	for _, code := range trackedStatuses {
		m.status[code] = reg.Counter(p + "status." + strconv.Itoa(code))
	}
	return m
}

// observe records one finished request: its status class, total
// latency, and the queue-wait/handler split — the split that separates
// "slow solves" from "too many clients" when diagnosing saturation.
func (m *epMetrics) observe(status int, queueWait, total time.Duration) {
	if m == nil {
		return
	}
	if c, ok := m.status[status]; ok {
		c.Add(1)
	} else {
		m.statusOther.Add(1)
	}
	m.latencyMS.Observe(float64(total) / 1e6)
	m.queueWaitMS.Observe(float64(queueWait) / 1e6)
	handler := total - queueWait
	if handler < 0 {
		handler = 0
	}
	m.handlerMS.Observe(float64(handler) / 1e6)
}

// statusWriter captures the response status and body size for metrics
// and the access log.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int
}

func (w *statusWriter) WriteHeader(status int) {
	if w.status == 0 {
		w.status = status
	}
	w.ResponseWriter.WriteHeader(status)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(b)
	w.bytes += n
	return n, err
}

// requestTraceID resolves the trace ID for a request: a valid inbound
// X-Trace-Id is honored (cross-service correlation), anything else gets
// a fresh ID.
func requestTraceID(req *http.Request) string {
	if id := req.Header.Get("X-Trace-Id"); obs.ValidTraceID(id) {
		return id
	}
	return obs.NewTraceID()
}

// traceLogFields summarizes a finished trace for its access-log record:
// total per-phase milliseconds, cache outcomes, and summed solver
// iterations. Field order is fixed — it is part of the log schema.
func traceLogFields(ts obs.TraceSnapshot) []obs.Field {
	var (
		phaseMS              = map[string]float64{}
		hits, solved, shared int
		iterations           int
	)
	for _, sp := range ts.Spans {
		phaseMS[sp.Name] += sp.DurMS
		switch sp.Attrs["outcome"] {
		case "hit":
			hits++
		case "solve":
			solved++
		case "shared":
			shared++
		}
		if it, err := strconv.Atoi(sp.Attrs["iterations"]); err == nil {
			iterations += it
		}
	}
	fields := make([]obs.Field, 0, 8)
	for _, name := range []string{"cache", "stamp", "solve", "serialize"} {
		if ms, ok := phaseMS[name]; ok {
			fields = append(fields, obs.F(name+"_ms", round3(ms)))
		}
	}
	if hits+solved+shared > 0 {
		fields = append(fields,
			obs.F("cache_hits", hits),
			obs.F("cache_solved", solved),
			obs.F("cache_shared", shared))
	}
	if iterations > 0 {
		fields = append(fields, obs.F("iterations", iterations))
	}
	return fields
}

// round3 trims a millisecond value to microsecond resolution so log
// lines stay readable.
func round3(ms float64) float64 {
	return float64(int64(ms*1000+0.5)) / 1000
}

// Shared plumbing for the /debug/* endpoints. Both endpoints speak the
// same dialect: GET only (405 otherwise), ?id= for a single record (404
// with the /v1/* JSON error envelope when not retained), ?limit=N to
// truncate each retention list — N must be a positive integer: a
// non-integer is a 400, a non-positive integer a 422 (it parsed fine but
// asks for an empty or negative view, which is never what a debugging
// client wants). The contract is pinned by TestDebugLimitContract.

// requireDebugGet rejects non-GET debug requests with the shared
// envelope; it reports whether the handler may proceed.
func requireDebugGet(w http.ResponseWriter, req *http.Request) bool {
	if req.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, fmt.Errorf("serve: %s requires GET", req.URL.Path))
		return false
	}
	return true
}

// debugLimit parses the shared ?limit= parameter: -1 (no truncation)
// when absent, the value when a positive integer, and ok=false after
// writing the 400/422 envelope otherwise.
func debugLimit(w http.ResponseWriter, req *http.Request) (limit int, ok bool) {
	raw := req.URL.Query().Get("limit")
	if raw == "" {
		return -1, true
	}
	n, err := strconv.Atoi(raw)
	if err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("serve: limit %q must be an integer", raw))
		return 0, false
	}
	if n <= 0 {
		writeErr(w, http.StatusUnprocessableEntity, fmt.Errorf("serve: limit %d must be positive", n))
		return 0, false
	}
	return n, true
}

// debugNotFound writes the shared 404 envelope for an id that is not
// retained. what names the record kind ("trace", "solve record").
func debugNotFound(w http.ResponseWriter, what, id string) {
	writeErr(w, http.StatusNotFound, fmt.Errorf("serve: %s %s not retained (aged out or unknown)", what, id))
}

// truncate caps a retention list at limit entries; limit < 0 keeps all.
// Lists are ordered most-interesting first (newest / slowest / worst),
// so truncation keeps the entries a capped client wants.
func truncate[T any](list []T, limit int) []T {
	if list == nil {
		list = []T{}
	}
	if limit >= 0 && limit < len(list) {
		list = list[:limit]
	}
	return list
}

// debugRequestsBody is the /debug/requests response shape.
type debugRequestsBody struct {
	// Added counts every trace ever offered to the buffer; Added minus
	// the retained count is how many have aged out.
	Added int64 `json:"added"`
	// Recent holds the newest traces, newest first.
	Recent []obs.TraceSnapshot `json:"recent"`
	// Slowest holds the slowest traces seen, slowest first.
	Slowest []obs.TraceSnapshot `json:"slowest"`
}

// handleDebugRequests serves the retained request traces: the
// recent+slowest buffers (?limit=N truncates each list to its N newest /
// slowest entries), or one trace with ?id=<trace-id> (404 when it has
// aged out or never existed). Errors use the same JSON envelope as the
// /v1/* endpoints.
func (s *Server) handleDebugRequests(w http.ResponseWriter, req *http.Request) {
	if !requireDebugGet(w, req) {
		return
	}
	if id := req.URL.Query().Get("id"); id != "" {
		ts, ok := s.traces.Find(id)
		if !ok {
			debugNotFound(w, "trace", id)
			return
		}
		writeJSON(w, http.StatusOK, &ts)
		return
	}
	limit, ok := debugLimit(w, req)
	if !ok {
		return
	}
	recent, slowest, added := s.traces.Snapshot()
	writeJSON(w, http.StatusOK, &debugRequestsBody{
		Added:   added,
		Recent:  truncate(recent, limit),
		Slowest: truncate(slowest, limit),
	})
}

// debugSolvesBody is the /debug/solves response shape.
type debugSolvesBody struct {
	// Added counts every solve record ever committed to the buffer; Added
	// minus the retained count is how many have aged out.
	Added int64 `json:"added"`
	// Recent holds the newest solve records, newest first.
	Recent []obs.SolveRecord `json:"recent"`
	// Worst holds the records with the highest iteration counts seen,
	// worst first.
	Worst []obs.SolveRecord `json:"worst"`
}

// handleDebugSolves serves the retained solve flight records: the
// recent+worst-by-iterations buffers (?limit=N truncates each list), or
// one record with ?id=. The id accepts either a solve ID ("s-12") or a
// trace ID — the latter returns the most recent solve that request ran,
// so a trace from /debug/requests leads straight to its solve. With
// recording disabled the endpoint stays up and serves empty lists.
func (s *Server) handleDebugSolves(w http.ResponseWriter, req *http.Request) {
	if !requireDebugGet(w, req) {
		return
	}
	if id := req.URL.Query().Get("id"); id != "" {
		rec, ok := s.solves.Find(id)
		if !ok {
			debugNotFound(w, "solve record", id)
			return
		}
		writeJSON(w, http.StatusOK, &rec)
		return
	}
	limit, ok := debugLimit(w, req)
	if !ok {
		return
	}
	recent, worst, added := s.solves.Snapshot()
	writeJSON(w, http.StatusOK, &debugSolvesBody{
		Added:  added,
		Recent: truncate(recent, limit),
		Worst:  truncate(worst, limit),
	})
}

// wantsProm decides the /metrics representation: explicit ?format= wins,
// then an Accept header naming a Prometheus text type; the default stays
// the JSON snapshot for backward compatibility with existing scrapers.
func wantsProm(req *http.Request) bool {
	switch req.URL.Query().Get("format") {
	case "prometheus", "prom":
		return true
	case "json":
		return false
	}
	accept := req.Header.Get("Accept")
	return strings.Contains(accept, "text/plain") || strings.Contains(accept, "openmetrics")
}
