// Package serve is the long-running HTTP/JSON surface over the IR-drop
// analysis stack: pdnserve exposes single analyses (/v1/analyze), batched
// fan-out (/v1/batch), look-up-table builds (/v1/lut), liveness
// (/healthz), and metrics (/metrics) over the same query.Query schema the
// irsim CLI validates, so the two entry points cannot drift.
//
// The serving layers, outermost first:
//
//   - Admission control: a semaphore caps in-flight requests; a request
//     that cannot get a slot within the queue-wait budget is rejected
//     with 429, and every request is rejected with 503 once draining
//     starts.
//   - Result cache: a bounded LRU keyed by the canonical speckey-framed
//     cache key (design fingerprint, explicit state, I/O activity), so
//     equivalent spellings of one query share a single entry and repeat
//     queries never re-solve.
//   - Singleflight: concurrent misses on one cache key collapse to a
//     single solve via par.Group; the group is Forgotten after the value
//     moves into the LRU, so only in-flight work lives in it.
//   - Topology tier: analyzer builds go through a second bounded LRU
//     keyed by the topology half of the spec key (the mesh shape). A
//     full-key near-miss that shares a shape — a value-only variation of
//     a cached design — skips geometry and symbolic work and restamps
//     conductances over the frozen pattern, bit-identical to a cold
//     build. With Config.WarmStart on, designs sharing a topology also
//     seed each other's solves.
//   - Cancellation: each solve runs under the request context through
//     irdrop.AnalyzeCtx, so an abandoned connection stops burning CPU at
//     the next solver-iteration boundary.
//
// Responses carry only deterministic fields (no timings, no timestamps):
// for a given request the body is byte-identical across runs and across
// worker counts, which is what makes the cache sound and the service
// regression-testable. (Config.WarmStart trades this byte-stability for
// throughput; it is off by default.)
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"pdn3d/internal/irdrop"
	"pdn3d/internal/lut"
	"pdn3d/internal/memstate"
	"pdn3d/internal/obs"
	"pdn3d/internal/par"
	"pdn3d/internal/query"
	"pdn3d/internal/rmesh"
	"pdn3d/internal/speckey"
)

// Config tunes a Server. The zero value selects sensible defaults.
type Config struct {
	// Workers bounds the solver kernels and the batch fan-out pool.
	// <= 0 selects GOMAXPROCS. Results are identical for every value.
	Workers int
	// Solver names the solve method (empty selects the default).
	Solver string
	// MeshPitch, when > 0, is the mesh pitch (mm) applied to queries that
	// do not override the pitch themselves — the server-wide
	// fidelity/latency knob.
	MeshPitch float64

	// MaxInFlight caps concurrently admitted requests; <= 0 selects
	// 2 x GOMAXPROCS.
	MaxInFlight int
	// QueueWait bounds how long a request may wait for an admission slot
	// before a 429; <= 0 selects 1s.
	QueueWait time.Duration
	// CacheSize bounds the analyze result LRU (entries); <= 0 selects 1024.
	CacheSize int
	// DesignCacheSize bounds the analyzer and LUT LRUs (distinct designs
	// held in memory); <= 0 selects 64.
	DesignCacheSize int
	// TopoCacheSize bounds the frozen mesh-topology LRU (distinct design
	// shapes); <= 0 selects DesignCacheSize. A full-key near-miss that
	// hits here skips geometry and symbolic work and only restamps values.
	TopoCacheSize int
	// WarmStart seeds each design's solves with the latest solution
	// published for its topology. Warm solves converge to the same
	// tolerance but are NOT byte-identical to cold ones, so this breaks
	// the byte-determinism contract on response bodies — off by default,
	// opt in when throughput matters more than bit-stability.
	WarmStart bool
	// MaxBatch caps queries per /v1/batch request; <= 0 selects 256.
	MaxBatch int
	// TraceBufSize bounds each /debug/requests retention class (the N
	// most recent and N slowest request traces); <= 0 selects
	// obs.DefaultTraceBufferCap.
	TraceBufSize int
	// DisableTracing turns off request-scoped trace recording: responses
	// still carry X-Trace-Id and latency telemetry still flows, but no
	// phase spans are recorded, nothing reaches /debug/requests, and the
	// solver layers see nil spans (their no-op path).
	DisableTracing bool
	// SolveBufSize bounds each /debug/solves retention class (the N most
	// recent and N worst-by-iterations solve records); <= 0 selects
	// obs.DefaultSolveBufferCap.
	SolveBufSize int
	// DisableSolveRecords turns off the solve flight recorder: solves run
	// with a nil recorder (their no-op path), /debug/solves serves empty
	// lists, and the iterations/condition histograms stay at zero.
	DisableSolveRecords bool

	// Log receives one structured access record per request; nil
	// disables access logging.
	Log *obs.Logger

	// Reg receives serving metrics; nil allocates a private registry (the
	// /metrics endpoint works either way).
	Reg *obs.Registry
}

// Server is the HTTP handler. Create with New; it is safe for concurrent
// use and implements http.Handler.
type Server struct {
	cfg Config
	reg *obs.Registry
	mux *http.ServeMux

	sem      chan struct{}
	draining atomic.Bool

	// Analyze results: bounded LRU of marshaled bodies over a
	// singleflight group (see lru doc).
	results *lru[[]byte]
	flights par.Group[[]byte]

	// Per-design caches: analyzers (conductance matrix + solver) and
	// built LUTs, same LRU-over-group layering.
	analyzers *lru[*irdrop.Analyzer]
	aflights  par.Group[*irdrop.Analyzer]
	luts      *lru[*lut.Table]
	lflights  par.Group[*lut.Table]

	// Topology tier: frozen mesh shapes keyed by the topology half of the
	// spec key. A query whose full spec key misses but whose topology key
	// hits restamps values over the cached shape instead of rebuilding
	// geometry and re-sorting the pattern; the entry also carries the
	// per-topology warm-start cell.
	topos    *lru[*topoEntry]
	tflights par.Group[*topoEntry]

	cacheHits, cacheMisses *obs.Counter
	topoHits, topoMisses   *obs.Counter
	admitted               *obs.Counter
	rejectedBusy           *obs.Counter
	rejectedDraining       *obs.Counter

	// Request-scoped observability: per-endpoint telemetry, the bounded
	// trace retention behind /debug/requests, the solve flight-record
	// retention behind /debug/solves, and the access log.
	ep     map[string]*epMetrics
	traces *obs.TraceBuffer
	solves *obs.SolveBuffer
	log    *obs.Logger
}

// New builds a Server from cfg, filling defaults.
func New(cfg Config) *Server {
	if cfg.Reg == nil {
		cfg.Reg = obs.NewRegistry()
	}
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = 2 * runtime.GOMAXPROCS(0)
	}
	if cfg.QueueWait <= 0 {
		cfg.QueueWait = time.Second
	}
	if cfg.CacheSize <= 0 {
		cfg.CacheSize = 1024
	}
	if cfg.DesignCacheSize <= 0 {
		cfg.DesignCacheSize = 64
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 256
	}
	if cfg.TopoCacheSize <= 0 {
		cfg.TopoCacheSize = cfg.DesignCacheSize
	}
	s := &Server{
		cfg:       cfg,
		reg:       cfg.Reg,
		mux:       http.NewServeMux(),
		sem:       make(chan struct{}, cfg.MaxInFlight),
		results:   newLRU[[]byte](cfg.CacheSize),
		analyzers: newLRU[*irdrop.Analyzer](cfg.DesignCacheSize),
		luts:      newLRU[*lut.Table](cfg.DesignCacheSize),
		topos:     newLRU[*topoEntry](cfg.TopoCacheSize),
	}
	s.flights.Hits = s.reg.Counter("serve.flight.hits")
	s.flights.Misses = s.reg.Counter("serve.flight.misses")
	s.cacheHits = s.reg.Counter("serve.cache.hits")
	s.cacheMisses = s.reg.Counter("serve.cache.misses")
	s.topoHits = s.reg.Counter("serve.topo_cache.hits")
	s.topoMisses = s.reg.Counter("serve.topo_cache.misses")
	s.admitted = s.reg.Counter("serve.admission.admitted")
	s.rejectedBusy = s.reg.Counter("serve.admission.rejected_busy")
	s.rejectedDraining = s.reg.Counter("serve.admission.rejected_draining")

	s.traces = obs.NewTraceBuffer(cfg.TraceBufSize)
	if !cfg.DisableSolveRecords {
		// Solve iteration counts and condition estimates are deterministic
		// for one workload (the recorded shapes are worker-count-
		// independent by the solver contract), so these histograms join
		// the deterministic snapshot — unlike the wall-clock latency ones.
		s.solves = obs.NewSolveBuffer(cfg.SolveBufSize)
		s.solves.IterHist = s.reg.Histogram("serve.solve.iterations", solveIterBounds)
		s.solves.CondHist = s.reg.Histogram("serve.solve.cond_est", solveCondBounds)
	}
	s.log = cfg.Log
	s.ep = map[string]*epMetrics{
		"analyze": newEPMetrics(s.reg, "analyze"),
		"batch":   newEPMetrics(s.reg, "batch"),
		"lut":     newEPMetrics(s.reg, "lut"),
	}

	s.mux.HandleFunc("/v1/analyze", s.throttled("analyze", s.handleAnalyze))
	s.mux.HandleFunc("/v1/batch", s.throttled("batch", s.handleBatch))
	s.mux.HandleFunc("/v1/lut", s.throttled("lut", s.handleLUT))
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/debug/requests", s.handleDebugRequests)
	s.mux.HandleFunc("/debug/solves", s.handleDebugSolves)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	s.mux.ServeHTTP(w, req)
}

// Registry returns the metrics registry the server reports into.
func (s *Server) Registry() *obs.Registry { return s.reg }

// Drain stops admitting new work (requests get 503, /healthz flips to
// 503) and waits for every in-flight request to finish, by acquiring all
// admission slots. It returns ctx's error if the deadline passes with
// work still in flight. Drain is terminal: the server never admits again.
func (s *Server) Drain(ctx context.Context) error {
	s.draining.Store(true)
	for i := 0; i < cap(s.sem); i++ {
		select {
		case s.sem <- struct{}{}:
		case <-ctx.Done():
			return fmt.Errorf("serve: drain: %d of %d slots still busy: %w",
				cap(s.sem)-i, cap(s.sem), ctx.Err())
		}
	}
	return nil
}

// acquire claims an admission slot within the queue-wait budget. It
// returns a release func on success, or the HTTP status to reject with.
func (s *Server) acquire(ctx context.Context) (func(), int) {
	if s.draining.Load() {
		s.rejectedDraining.Add(1)
		return nil, http.StatusServiceUnavailable
	}
	stop := s.reg.Timer("serve.admission.queue_wait").Start()
	defer stop()
	wctx, cancel := context.WithTimeout(ctx, s.cfg.QueueWait)
	defer cancel()
	select {
	case s.sem <- struct{}{}:
		// Re-check: a drain that started while we queued owns the server
		// now; hand the slot straight to it.
		if s.draining.Load() {
			<-s.sem
			s.rejectedDraining.Add(1)
			return nil, http.StatusServiceUnavailable
		}
		s.admitted.Add(1)
		return func() { <-s.sem }, 0
	case <-wctx.Done():
		s.rejectedBusy.Add(1)
		return nil, http.StatusTooManyRequests
	}
}

// throttled wraps a POST handler with method check, admission control,
// and request-scoped observability. A whole batch holds one slot:
// MaxInFlight bounds admitted HTTP requests, Workers bounds solver
// parallelism within them. Every request gets a Trace whose ID is
// echoed in X-Trace-Id (a valid inbound header is honored for
// correlation); the queue-wait is its first span, recorded separately
// from handler time so saturation diagnosis can tell slow solves from
// too many clients. On completion the endpoint telemetry, the trace
// buffer, and the access log each receive their record.
func (s *Server) throttled(name string, h http.HandlerFunc) http.HandlerFunc {
	ep := s.ep[name]
	return func(w http.ResponseWriter, req *http.Request) {
		ep.requests.Add(1)
		tr := obs.NewTrace(requestTraceID(req))
		sw := &statusWriter{ResponseWriter: w}
		sw.Header().Set("X-Trace-Id", tr.ID())
		root := tr.Span("request", obs.A("endpoint", req.URL.Path))
		ep.inflight.Add(1)
		var queueWait time.Duration
		func() {
			if req.Method != http.MethodPost {
				writeErr(sw, http.StatusMethodNotAllowed, fmt.Errorf("serve: %s requires POST", req.URL.Path))
				return
			}
			qs := root.Child("queue")
			release, status := s.acquire(req.Context())
			qs.End()
			queueWait = qs.Dur()
			if status != 0 {
				if status == http.StatusTooManyRequests {
					ep.rejectedBusy.Add(1)
				}
				writeErr(sw, status, errors.New("serve: over capacity"))
				return
			}
			defer release()
			ctx := req.Context()
			if !s.cfg.DisableTracing {
				ctx = obs.WithSpan(obs.WithTrace(ctx, tr), root)
			}
			h(sw, req.WithContext(ctx))
		}()
		ep.inflight.Add(-1)
		root.End()
		tr.Finish()
		snap := tr.Snapshot()
		ep.observe(sw.status, queueWait, tr.Dur())
		if !s.cfg.DisableTracing {
			s.traces.Add(snap)
		}
		s.logRequest(name, req, sw, snap, queueWait)
	}
}

// logRequest emits the per-request access record. The leading fields —
// trace_id, endpoint, path, method, status, bytes, dur_ms, queue_ms,
// handler_ms — appear on every record in this order; phase and cache
// fields follow when the trace recorded them. Field names are part of
// the log schema (DESIGN.md §5e).
func (s *Server) logRequest(name string, req *http.Request, sw *statusWriter, ts obs.TraceSnapshot, queueWait time.Duration) {
	if s.log == nil {
		return
	}
	queueMS := float64(queueWait) / 1e6
	handlerMS := ts.DurMS - queueMS
	if handlerMS < 0 {
		handlerMS = 0
	}
	fields := []obs.Field{
		obs.F("trace_id", ts.ID),
		obs.F("endpoint", name),
		obs.F("path", req.URL.Path),
		obs.F("method", req.Method),
		obs.F("status", sw.status),
		obs.F("bytes", sw.bytes),
		obs.F("dur_ms", round3(ts.DurMS)),
		obs.F("queue_ms", round3(queueMS)),
		obs.F("handler_ms", round3(handlerMS)),
	}
	fields = append(fields, traceLogFields(ts)...)
	s.log.Event("request", fields...)
}

// AnalyzeResponse is the /v1/analyze result body. Every field is
// deterministic — no timings or timestamps — so a given query marshals to
// byte-identical bodies across runs and worker counts.
type AnalyzeResponse struct {
	// Design is the resolved spec name.
	Design string `json:"design"`
	// Bench echoes the requested benchmark.
	Bench string `json:"bench"`
	// State is the canonical "R1-R2-...-Rn" per-die active-bank state.
	State string `json:"state"`
	// IO is the per-die I/O activity analyzed.
	IO float64 `json:"io"`
	// MaxIRmV is the stack maximum IR drop in millivolts.
	MaxIRmV float64 `json:"max_ir_mv"`
	// PerDieMV is the per-DRAM-die maximum IR drop in millivolts.
	PerDieMV []float64 `json:"per_die_mv"`
	// LogicIRmV is the logic die maximum IR drop (omitted off-chip).
	LogicIRmV float64 `json:"logic_ir_mv,omitempty"`
	// TotalPowerMW is the summed DRAM stack power in milliwatts.
	TotalPowerMW float64 `json:"total_power_mw"`
	// Iterations reports the solver iteration count.
	Iterations int `json:"iterations"`
	// Converged reports solver convergence.
	Converged bool `json:"converged"`
}

func (s *Server) handleAnalyze(w http.ResponseWriter, req *http.Request) {
	var q query.Query
	if err := decodeJSON(req, &q); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	body, status, err := s.analyzeOne(req.Context(), q)
	if err != nil {
		writeErr(w, status, err)
		return
	}
	writeBody(w, http.StatusOK, body)
}

// analyzeOne runs one query through resolve -> LRU -> singleflight ->
// solve and returns the marshaled response body. On error the returned
// status is the HTTP status the error maps to.
//
// Trace phases: "cache" covers resolve plus the LRU lookup (outcome
// hit|miss|invalid); on a miss, "flight" covers the singleflight call —
// outcome "solve" when this request executed the work (with stamp,
// solve, and serialize children recorded under it) or "shared" when it
// waited on a concurrent caller's solve of the same key.
func (s *Server) analyzeOne(ctx context.Context, q query.Query) ([]byte, int, error) {
	parent := obs.SpanFrom(ctx)
	cs := parent.Child("cache")
	r, err := q.Resolve()
	if err != nil {
		cs.Annotate(obs.A("outcome", "invalid"))
		cs.End()
		return nil, statusFor(err), err
	}
	if s.cfg.MeshPitch > 0 && q.Pitch == 0 {
		r.Spec.MeshPitch = s.cfg.MeshPitch
	}
	key := r.CacheKey()
	if body, ok := s.results.get(key); ok {
		s.cacheHits.Add(1)
		cs.Annotate(obs.A("outcome", "hit"))
		cs.End()
		return body, http.StatusOK, nil
	}
	s.cacheMisses.Add(1)
	cs.Annotate(obs.A("outcome", "miss"))
	cs.End()
	fs := parent.Child("flight")
	ran := false
	body, err := s.flights.Do(key, func() ([]byte, error) {
		// ran is only written here and read after Do: the Group runs fn
		// in this goroutine or not at all.
		ran = true
		fctx := obs.WithSpan(ctx, fs)
		a, err := s.analyzerFor(fctx, r)
		if err != nil {
			return nil, err
		}
		res, err := a.AnalyzeCtx(fctx, r.State, r.Query.IO)
		if err != nil {
			return nil, err
		}
		ss := fs.Child("serialize")
		b, err := marshalAnalyze(r, res)
		ss.End()
		return b, err
	})
	if ran {
		fs.Annotate(obs.A("outcome", "solve"))
	} else {
		fs.Annotate(obs.A("outcome", "shared"))
	}
	fs.End()
	if err != nil {
		// Not cached (Group drops failed calls), so a retry after a
		// transient failure — e.g. a canceled first caller — re-solves.
		return nil, statusFor(err), err
	}
	s.results.put(key, body)
	s.flights.Forget(key)
	return body, http.StatusOK, nil
}

func marshalAnalyze(r *query.Resolved, res *irdrop.Result) ([]byte, error) {
	perDie := make([]float64, len(res.PerDie))
	for i, v := range res.PerDie {
		perDie[i] = v * 1000
	}
	return json.Marshal(&AnalyzeResponse{
		Design:       r.Spec.Name,
		Bench:        r.Query.Bench,
		State:        countsString(r.Counts),
		IO:           r.Query.IO,
		MaxIRmV:      res.MaxIRmV(),
		PerDieMV:     perDie,
		LogicIRmV:    res.LogicIRmV(),
		TotalPowerMW: res.TotalPower,
		Iterations:   res.Stats.Iterations,
		Converged:    res.Stats.Converged,
	})
}

// topoEntry is one cached mesh shape plus its warm-start cell: every
// analyzer sharing the topology also shares the latest published solution
// (when Config.WarmStart is on).
type topoEntry struct {
	topo *rmesh.Topology
	warm *irdrop.WarmStart
}

// topologyFor returns the frozen topology for the resolved design's shape,
// building at most one per topology key under singleflight. outcome is
// "full" when this call executed the build and "restamp" when the shape
// was already frozen (cache hit or shared flight) — the label the mesh
// span and cache metrics carry.
func (s *Server) topologyFor(r *query.Resolved) (te *topoEntry, outcome string, err error) {
	key := r.TopoKey()
	if te, ok := s.topos.get(key); ok {
		s.topoHits.Add(1)
		return te, "restamp", nil
	}
	s.topoMisses.Add(1)
	built := false
	te, err = s.tflights.Do(key, func() (*topoEntry, error) {
		// built is only written here and read after Do: the Group runs fn
		// in this goroutine or not at all.
		built = true
		t, err := rmesh.BuildTopologyObs(r.Spec, s.reg)
		if err != nil {
			return nil, err
		}
		return &topoEntry{topo: t, warm: &irdrop.WarmStart{}}, nil
	})
	if err != nil {
		return nil, "", err
	}
	s.topos.put(key, te)
	s.tflights.Forget(key)
	if built {
		return te, "full", nil
	}
	return te, "restamp", nil
}

// analyzerFor returns the analyzer for the resolved design, building at
// most one per design key under singleflight. Builds go topology-first:
// the mesh shape comes from the topology tier (frozen once per shape) and
// the analyzer restamps its values over it — a full-key near-miss that
// shares a shape skips geometry and symbolic work. The goroutine that
// executes the build records a "mesh" child span of ctx's active span,
// annotated outcome="full" (this call also froze the topology) or
// "restamp" (the shape was already cached).
func (s *Server) analyzerFor(ctx context.Context, r *query.Resolved) (*irdrop.Analyzer, error) {
	key := r.SpecKey()
	if a, ok := s.analyzers.get(key); ok {
		return a, nil
	}
	a, err := s.aflights.Do(key, func() (*irdrop.Analyzer, error) {
		te, outcome, err := s.topologyFor(r)
		if err != nil {
			return nil, err
		}
		ms := obs.SpanFrom(ctx).Child("mesh", obs.A("outcome", outcome))
		defer ms.End()
		a, err := irdrop.NewFromTopologyObs(te.topo, r.Spec, r.Bench.DRAMPower, r.Logic, s.reg)
		if err != nil {
			return nil, err
		}
		a.Opts.Method = s.cfg.Solver
		a.Opts.Workers = s.cfg.Workers
		if s.cfg.WarmStart {
			a.Warm = te.warm
		}
		// All designs share the server's one solve buffer (nil when
		// recording is disabled — the analyzer's no-op path).
		a.SolveRecords = s.solves
		return a, nil
	})
	if err != nil {
		return nil, err
	}
	s.analyzers.put(key, a)
	s.aflights.Forget(key)
	return a, nil
}

// BatchRequest is the /v1/batch body: independent queries fanned out over
// the worker pool.
type BatchRequest struct {
	// Queries are the analyses to run.
	Queries []query.Query `json:"queries"`
	// TimeoutMS, when > 0, bounds the whole batch; items not finished in
	// time fail individually with status 503.
	TimeoutMS int `json:"timeout_ms,omitempty"`
}

// BatchItem is one per-query outcome. The batch never aborts as a whole:
// each item carries its own result or error in its input position.
type BatchItem struct {
	// OK reports whether the query succeeded.
	OK bool `json:"ok"`
	// Status is the HTTP status the item would have had standalone.
	Status int `json:"status"`
	// Result is the AnalyzeResponse body (present when OK).
	Result json.RawMessage `json:"result,omitempty"`
	// Error describes the failure (present when !OK).
	Error string `json:"error,omitempty"`
}

// BatchResponse is the /v1/batch result body.
type BatchResponse struct {
	// Results holds one item per input query, in input order.
	Results []BatchItem `json:"results"`
	// Failed counts items with OK == false.
	Failed int `json:"failed"`
}

func (s *Server) handleBatch(w http.ResponseWriter, req *http.Request) {
	var breq BatchRequest
	if err := decodeJSON(req, &breq); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if len(breq.Queries) == 0 {
		writeErr(w, http.StatusBadRequest, errors.New("serve: batch has no queries"))
		return
	}
	if len(breq.Queries) > s.cfg.MaxBatch {
		writeErr(w, http.StatusRequestEntityTooLarge,
			fmt.Errorf("serve: batch of %d exceeds limit %d", len(breq.Queries), s.cfg.MaxBatch))
		return
	}
	s.reg.Counter("serve.batch.items").Add(int64(len(breq.Queries)))
	ctx := req.Context()
	if breq.TimeoutMS > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(breq.TimeoutMS)*time.Millisecond)
		defer cancel()
	}
	resp := BatchResponse{Results: make([]BatchItem, len(breq.Queries))}
	// Never-abort fan-out: fn always returns nil so one bad query cannot
	// cancel its siblings; each failure lands in its item's slot. Each
	// item runs under its own "item" child span of the request trace, so
	// a slow batch attributes its latency to the individual queries.
	_ = par.SweepCtx(ctx, s.cfg.Workers, len(breq.Queries), s.reg.SweepMetrics("serve.batch.sweep"), "item", func(ctx context.Context, i int) error {
		body, status, err := s.analyzeOne(ctx, breq.Queries[i])
		if err != nil {
			resp.Results[i] = BatchItem{Status: status, Error: err.Error()}
			return nil
		}
		resp.Results[i] = BatchItem{OK: true, Status: http.StatusOK, Result: body}
		return nil
	})
	for _, it := range resp.Results {
		if !it.OK {
			resp.Failed++
		}
	}
	s.reg.Counter("serve.batch.item_errors").Add(int64(resp.Failed))
	writeJSON(w, http.StatusOK, &resp)
}

// LUTRequest is the /v1/lut body: the design-selecting query fields (state
// and io are ignored), the table grid, and an optional probe.
type LUTRequest struct {
	query.Query
	// MaxPerDie bounds per-die active banks in the grid; <= 0 selects the
	// interleaving cap.
	MaxPerDie int `json:"max_per_die,omitempty"`
	// IOLevels are the covered activity levels; empty selects the default
	// grid.
	IOLevels []float64 `json:"io_levels,omitempty"`
	// Full includes every grid point in the response.
	Full bool `json:"full,omitempty"`
	// Probe, when set, looks one (state, io) up in the table; a point
	// outside the grid fails the request with 422.
	Probe *LUTProbe `json:"probe,omitempty"`
}

// LUTProbe is one table lookup.
type LUTProbe struct {
	// State is the per-die count state "R1-R2-...-Rn".
	State string `json:"state"`
	// IO is the activity level (rounded up to the nearest covered level).
	IO float64 `json:"io"`
}

// LUTPoint is one grid point in a full LUT response.
type LUTPoint struct {
	Counts  []int   `json:"counts"`
	IO      float64 `json:"io"`
	MaxIRmV float64 `json:"max_ir_mv"`
}

// LUTResponse is the /v1/lut result body.
type LUTResponse struct {
	Design    string    `json:"design"`
	Bench     string    `json:"bench"`
	Dies      int       `json:"dies"`
	MaxPerDie int       `json:"max_per_die"`
	IOLevels  []float64 `json:"io_levels"`
	Entries   int       `json:"entries"`
	WorstIRmV float64   `json:"worst_ir_mv"`
	// Points holds the full grid in deterministic order (Full only).
	Points []LUTPoint `json:"points,omitempty"`
	// ProbeMaxIRmV is the probed lookup result (Probe only).
	ProbeMaxIRmV *float64 `json:"probe_max_ir_mv,omitempty"`
}

func (s *Server) handleLUT(w http.ResponseWriter, req *http.Request) {
	var lreq LUTRequest
	if err := decodeJSON(req, &lreq); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	r, err := lreq.Query.ResolveDesign()
	if err != nil {
		writeErr(w, statusFor(err), err)
		return
	}
	if s.cfg.MeshPitch > 0 && lreq.Pitch == 0 {
		r.Spec.MeshPitch = s.cfg.MeshPitch
	}
	maxPerDie := lreq.MaxPerDie
	if maxPerDie <= 0 {
		maxPerDie = memstate.MaxInterleavedBanks
	}
	levels := lreq.IOLevels
	if len(levels) == 0 {
		levels = lut.DefaultIOLevels()
	}
	t, err := s.lutFor(req.Context(), r, maxPerDie, levels)
	if err != nil {
		writeErr(w, statusFor(err), err)
		return
	}
	resp := LUTResponse{
		Design:    r.Spec.Name,
		Bench:     r.Query.Bench,
		Dies:      t.Dies,
		MaxPerDie: t.MaxPerDie,
		IOLevels:  t.IOLevels,
		Entries:   t.Entries(),
		WorstIRmV: t.WorstIR() * 1000,
	}
	if lreq.Full {
		for _, p := range t.Points() {
			resp.Points = append(resp.Points, LUTPoint{Counts: p.Counts, IO: p.IO, MaxIRmV: p.MaxIR * 1000})
		}
	}
	if lreq.Probe != nil {
		counts, err := memstate.ParseCountsFor(lreq.Probe.State, r.Spec.NumDRAM, r.Spec.DRAM.NumBanks)
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		ir, err := t.MaxIR(counts, lreq.Probe.IO)
		if err != nil {
			// lut.ErrNotCovered maps to 422: the request parsed fine but
			// asks for a point outside the covered grid.
			writeErr(w, statusFor(err), err)
			return
		}
		mv := ir * 1000
		resp.ProbeMaxIRmV = &mv
	}
	writeJSON(w, http.StatusOK, &resp)
}

// lutFor returns the cached table for the design grid, building at most
// one per key under singleflight.
func (s *Server) lutFor(ctx context.Context, r *query.Resolved, maxPerDie int, levels []float64) (*lut.Table, error) {
	var kb speckey.Builder
	kb.Str(r.SpecKey())
	kb.Int(maxPerDie)
	for _, io := range levels {
		kb.Float(io)
	}
	key := kb.String()
	if t, ok := s.luts.get(key); ok {
		return t, nil
	}
	t, err := s.lflights.Do(key, func() (*lut.Table, error) {
		a, err := s.analyzerFor(ctx, r)
		if err != nil {
			return nil, err
		}
		return lut.BuildWith(a, maxPerDie, levels, s.cfg.Workers)
	})
	if err != nil {
		return nil, err
	}
	s.luts.put(key, t)
	s.lflights.Forget(key)
	return t, nil
}

type healthBody struct {
	Status string `json:"status"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, req *http.Request) {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, &healthBody{Status: "draining"})
		return
	}
	writeJSON(w, http.StatusOK, &healthBody{Status: "ok"})
}

// handleMetrics serves the registry in two representations: the
// expvar-style JSON snapshot (default, backward compatible) and the
// Prometheus text exposition when the scraper asks for it — via an
// Accept header naming text/plain or openmetrics, or explicitly with
// ?format=prometheus.
func (s *Server) handleMetrics(w http.ResponseWriter, req *http.Request) {
	if wantsProm(req) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		w.WriteHeader(http.StatusOK)
		w.Write(s.reg.PromText())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(s.reg.JSON())
}

// statusFor maps an error to its HTTP status: validation failures are
// 400, LUT coverage misses 422, cancellations 503, everything else 500.
func statusFor(err error) int {
	var fe *query.FieldError
	switch {
	case errors.As(err, &fe):
		return http.StatusBadRequest
	case errors.Is(err, lut.ErrNotCovered):
		return http.StatusUnprocessableEntity
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

func decodeJSON(req *http.Request, v interface{}) error {
	dec := json.NewDecoder(req.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("serve: bad request body: %w", err)
	}
	return nil
}

type errBody struct {
	Error string `json:"error"`
}

func writeErr(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, &errBody{Error: err.Error()})
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	b, err := json.Marshal(v)
	if err != nil {
		http.Error(w, `{"error":"serve: response marshal failed"}`, http.StatusInternalServerError)
		return
	}
	writeBody(w, status, b)
}

func writeBody(w http.ResponseWriter, status int, b []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(b)
	w.Write([]byte("\n"))
}

// countsString renders a count vector in the paper's "R1-R2-...-Rn"
// notation — the canonical state spelling echoed in responses.
func countsString(counts []int) string {
	var sb strings.Builder
	for i, c := range counts {
		if i > 0 {
			sb.WriteByte('-')
		}
		sb.WriteString(strconv.Itoa(c))
	}
	return sb.String()
}
