package serve

import (
	"container/list"
	"sync"
)

// lru is a mutex-guarded bounded cache with least-recently-used eviction.
// It layers on top of par.Group per the Group.Forget contract: callers
// check the lru, Do on the group on miss, then put the value here and
// Forget it from the group — the group holds only in-flight work while the
// lru enforces the size bound.
type lru[V any] struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recently used
	items map[string]*list.Element
}

type lruEntry[V any] struct {
	key string
	val V
}

func newLRU[V any](capacity int) *lru[V] {
	if capacity < 1 {
		capacity = 1
	}
	return &lru[V]{
		cap:   capacity,
		ll:    list.New(),
		items: make(map[string]*list.Element, capacity),
	}
}

func (c *lru[V]) get(key string) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.items[key]; ok {
		c.ll.MoveToFront(e)
		return e.Value.(*lruEntry[V]).val, true
	}
	var zero V
	return zero, false
}

func (c *lru[V]) put(key string, v V) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.items[key]; ok {
		e.Value.(*lruEntry[V]).val = v
		c.ll.MoveToFront(e)
		return
	}
	c.items[key] = c.ll.PushFront(&lruEntry[V]{key: key, val: v})
	if c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*lruEntry[V]).key)
	}
}

func (c *lru[V]) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
