package serve

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"testing"

	"pdn3d/internal/obs"
)

// TestTopologyCacheSurvivesAnalyzerEviction: with a one-entry analyzer
// cache and a roomier topology cache, re-querying an evicted design must
// rebuild its analyzer by restamping over the retained shape — a "mesh"
// span with outcome=restamp and a topology-cache hit — instead of paying
// the full geometry + symbolic build again.
func TestTopologyCacheSurvivesAnalyzerEviction(t *testing.T) {
	s, ts := newTestServer(t, Config{DesignCacheSize: 1, TopoCacheSize: 8})

	// Design A: full build (cold everything).
	post(t, ts.URL+"/v1/analyze", goodQuery)
	// Design B (different TSV count → different shape): evicts A's analyzer.
	post(t, ts.URL+"/v1/analyze", `{"bench":"ddr3-off","state":"0-0-0-2","io":1.0,"tsv":64}`)
	// Design A again, new state so the result cache misses: the analyzer
	// was evicted but its topology was not.
	resp, body := post(t, ts.URL+"/v1/analyze", `{"bench":"ddr3-off","state":"1-0-0-2","io":1.0}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}

	snap := s.reg.Snapshot()
	if got := snap.Counters["serve.topo_cache.hits"]; got != 1 {
		t.Errorf("topo_cache.hits = %d, want 1 (third request reuses A's shape)", got)
	}
	if got := snap.Counters["serve.topo_cache.misses"]; got != 2 {
		t.Errorf("topo_cache.misses = %d, want 2 (two cold shapes)", got)
	}
	if got := snap.Counters["rmesh.builds"]; got != 2 {
		t.Errorf("rmesh.builds = %d, want 2 (the restamp path must not rebuild)", got)
	}
	if got := snap.Counters["rmesh.restamps"]; got != 3 {
		t.Errorf("rmesh.restamps = %d, want 3 (every analyzer mints its model by restamp)", got)
	}

	// The third request's trace must carry a mesh span labeled restamp.
	id := resp.Header.Get("X-Trace-Id")
	_, dbody := getBody(t, ts.URL+"/debug/requests?id="+id)
	var trace obs.TraceSnapshot
	if err := json.Unmarshal(dbody, &trace); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, sp := range trace.Spans {
		if sp.Name == "mesh" {
			found = true
			if sp.Attrs["outcome"] != "restamp" {
				t.Errorf("mesh span outcome = %q, want restamp", sp.Attrs["outcome"])
			}
		}
	}
	if !found {
		t.Error("third request recorded no mesh span")
	}
}

// TestWarmStartOptIn: with Config.WarmStart on, solves for one design seed
// each other. The answers are no longer byte-guaranteed — the documented
// trade — but must stay within solver tolerance of a cold server's.
func TestWarmStartOptIn(t *testing.T) {
	warmS, warmTS := newTestServer(t, Config{WarmStart: true})
	_, coldTS := newTestServer(t, Config{})

	queries := []string{
		goodQuery,
		`{"bench":"ddr3-off","state":"1-0-0-2","io":1.0}`,
		`{"bench":"ddr3-off","state":"2-0-0-2","io":1.0}`,
	}
	for _, q := range queries {
		_, warmBody := post(t, warmTS.URL+"/v1/analyze", q)
		_, coldBody := post(t, coldTS.URL+"/v1/analyze", q)
		var warm, cold AnalyzeResponse
		if err := json.Unmarshal(warmBody, &warm); err != nil {
			t.Fatalf("warm body: %v\n%s", err, warmBody)
		}
		if err := json.Unmarshal(coldBody, &cold); err != nil {
			t.Fatal(err)
		}
		if !warm.Converged {
			t.Fatalf("warm solve did not converge: %s", warmBody)
		}
		// The analyzer solves at Tol=1e-8 relative residual, which admits
		// a few µV of trajectory-dependent drift on a ~30 mV answer; 10 µV
		// bounds that while still catching a genuinely wrong solve.
		if math.Abs(warm.MaxIRmV-cold.MaxIRmV) > 1e-2 {
			t.Errorf("state %s: warm MaxIR %.6f mV vs cold %.6f mV beyond tolerance",
				warm.State, warm.MaxIRmV, cold.MaxIRmV)
		}
	}
	snap := warmS.reg.Snapshot()
	var warmStarts int64
	for name, v := range snap.Counters {
		if name == "solve.cg-ic0.warm_starts" || name == "solve.cg-jacobi.warm_starts" {
			warmStarts += v
		}
	}
	if warmStarts < 2 {
		t.Errorf("warm_starts = %d, want >= 2 (second and third solves seeded)", warmStarts)
	}
}

// TestWarmStartDefaultOff: the byte-determinism contract holds by default,
// so no solve may be seeded unless the operator opts in.
func TestWarmStartDefaultOff(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	post(t, ts.URL+"/v1/analyze", goodQuery)
	post(t, ts.URL+"/v1/analyze", `{"bench":"ddr3-off","state":"1-0-0-2","io":1.0}`)
	for name, v := range s.reg.Snapshot().Counters {
		if v != 0 && (name == "solve.cg-ic0.warm_starts" || name == "solve.cg-jacobi.warm_starts") {
			t.Errorf("%s = %d with WarmStart off, want 0", name, v)
		}
	}
}

// TestDebugLimitContract pins the ?limit= contract shared by both debug
// endpoints: a positive integer truncates each retention list (never the
// added total), a non-integer is a 400, and a non-positive integer a 422
// — identically on /debug/requests and /debug/solves, both in the /v1/*
// JSON error envelope.
func TestDebugLimitContract(t *testing.T) {
	_, ts := newTestServer(t, Config{TraceBufSize: 8, SolveBufSize: 8})
	for i := 0; i < 3; i++ {
		post(t, ts.URL+"/v1/analyze", fmt.Sprintf(`{"bench":"ddr3-off","state":"0-0-0-2","io":0.%d}`, i+1))
	}
	// lists returns the two retention-list lengths and the added total of
	// either debug body (the field names coincide except slowest/worst).
	lists := func(body []byte) (a, b int, added int64) {
		var parsed struct {
			Added   int64             `json:"added"`
			Recent  []json.RawMessage `json:"recent"`
			Slowest []json.RawMessage `json:"slowest"`
			Worst   []json.RawMessage `json:"worst"`
		}
		if err := json.Unmarshal(body, &parsed); err != nil {
			t.Fatal(err)
		}
		return len(parsed.Recent), len(parsed.Slowest) + len(parsed.Worst), parsed.Added
	}
	for _, endpoint := range []string{"/debug/requests", "/debug/solves"} {
		for _, tc := range []struct{ limit, want int }{{1, 1}, {2, 2}, {100, 3}} {
			resp, body := getBody(t, fmt.Sprintf("%s%s?limit=%d", ts.URL, endpoint, tc.limit))
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("%s limit=%d status = %d: %s", endpoint, tc.limit, resp.StatusCode, body)
			}
			recent, second, added := lists(body)
			if recent != tc.want || second != tc.want {
				t.Errorf("%s limit=%d: recent=%d second=%d, want %d each", endpoint, tc.limit, recent, second, tc.want)
			}
			if added != 3 {
				t.Errorf("%s limit=%d: added = %d, want 3 (limit must not hide the total)", endpoint, tc.limit, added)
			}
		}
		for _, tc := range []struct {
			raw  string
			want int
		}{
			{"abc", http.StatusBadRequest},
			{"1.5", http.StatusBadRequest},
			{"0", http.StatusUnprocessableEntity},
			{"-1", http.StatusUnprocessableEntity},
		} {
			resp, body := getBody(t, ts.URL+endpoint+"?limit="+tc.raw)
			if resp.StatusCode != tc.want {
				t.Errorf("%s limit=%q status = %d, want %d", endpoint, tc.raw, resp.StatusCode, tc.want)
			}
			var eb struct {
				Error string `json:"error"`
			}
			if err := json.Unmarshal(body, &eb); err != nil || eb.Error == "" {
				t.Errorf("%s limit=%q error not in the JSON envelope: %s", endpoint, tc.raw, body)
			}
		}
	}
}
