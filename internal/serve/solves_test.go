package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"

	"pdn3d/internal/obs"
)

func TestDebugSolvesEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{SolveBufSize: 8})
	resp, _ := post(t, ts.URL+"/v1/analyze", goodQuery)
	traceID := resp.Header.Get("X-Trace-Id")
	if traceID == "" {
		t.Fatal("analyze response missing X-Trace-Id")
	}

	_, body := getBody(t, ts.URL+"/debug/solves")
	var b debugSolvesBody
	if err := json.Unmarshal(body, &b); err != nil {
		t.Fatalf("unmarshal: %v (%s)", err, body)
	}
	if b.Added < 1 || len(b.Recent) < 1 || len(b.Worst) < 1 {
		t.Fatalf("no solve records after an analyze: %s", body)
	}
	rec := b.Recent[0]
	if rec.ID == "" || rec.Method == "" || rec.N == 0 || rec.Iterations == 0 {
		t.Fatalf("record missing identity/stats: %+v", rec)
	}
	if rec.TraceID != traceID {
		t.Fatalf("record trace_id = %q, want the request's %q", rec.TraceID, traceID)
	}
	if rec.Termination != obs.TermConverged || !rec.Converged {
		t.Fatalf("healthy solve record: %+v, want converged", rec)
	}
	if rec.CondEst <= 1 {
		t.Fatalf("cond_est = %g, want > 1", rec.CondEst)
	}
	if len(rec.Alphas) != rec.Iterations || len(rec.Residuals) == 0 {
		t.Fatalf("trajectory missing: %d alphas, %d residuals for %d iterations",
			len(rec.Alphas), len(rec.Residuals), rec.Iterations)
	}

	// ?id= accepts the solve ID and the trace ID, returning the same record.
	for _, id := range []string{rec.ID, traceID} {
		resp, body := getBody(t, ts.URL+"/debug/solves?id="+id)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("id=%q status = %d: %s", id, resp.StatusCode, body)
		}
		var one obs.SolveRecord
		if err := json.Unmarshal(body, &one); err != nil {
			t.Fatal(err)
		}
		if one.ID != rec.ID {
			t.Fatalf("id=%q returned record %q, want %q", id, one.ID, rec.ID)
		}
	}
	if resp, body := getBody(t, ts.URL+"/debug/solves?id=s-99999"); resp.StatusCode != http.StatusNotFound || !strings.Contains(string(body), "error") {
		t.Fatalf("unknown id: status %d body %s, want 404 envelope", resp.StatusCode, body)
	}
	if resp, _ := post(t, ts.URL+"/debug/solves", "{}"); resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST status = %d, want 405", resp.StatusCode)
	}
}

func TestDebugSolvesDisabled(t *testing.T) {
	s, ts := newTestServer(t, Config{DisableSolveRecords: true})
	post(t, ts.URL+"/v1/analyze", goodQuery)
	resp, body := getBody(t, ts.URL+"/debug/solves")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200 with recording disabled", resp.StatusCode)
	}
	var b debugSolvesBody
	if err := json.Unmarshal(body, &b); err != nil {
		t.Fatal(err)
	}
	if b.Added != 0 || len(b.Recent) != 0 || len(b.Worst) != 0 {
		t.Fatalf("records retained with recording disabled: %s", body)
	}
	if _, ok := s.reg.Snapshot().Histograms["serve.solve.iterations"]; ok {
		t.Error("solve histograms registered with recording disabled")
	}
}

// paperBenches are the four packaging configurations of the source paper
// — the workload the worker-count determinism contract is pinned on.
var paperBenches = []string{"ddr3-off", "ddr3-on", "wideio", "hmc"}

// solveShapes fetches /debug/solves and returns the retained records
// newest-first with the run-local identifiers (solve and trace IDs)
// cleared, marshaled for byte comparison.
func solveShapes(t *testing.T, base string) []byte {
	t.Helper()
	_, body := getBody(t, base+"/debug/solves")
	var b debugSolvesBody
	if err := json.Unmarshal(body, &b); err != nil {
		t.Fatal(err)
	}
	for i := range b.Recent {
		b.Recent[i].ID = ""
		b.Recent[i].TraceID = ""
	}
	out, err := json.Marshal(b.Recent)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestSolveRecordShapeWorkerDeterminism: the sharded kernels are
// bit-identical for any worker count, so the recorded solve shapes —
// residual histories, coefficients, condition estimates, terminations —
// must be byte-identical between a 1-worker and an 8-worker server on
// the paper's four packaging designs.
func TestSolveRecordShapeWorkerDeterminism(t *testing.T) {
	run := func(workers int) []byte {
		_, ts := newTestServer(t, Config{Workers: workers, SolveBufSize: 16})
		for _, bench := range paperBenches {
			q := fmt.Sprintf(`{"bench":%q,"state":"0-0-0-2","io":1.0}`, bench)
			if resp, body := post(t, ts.URL+"/v1/analyze", q); resp.StatusCode != http.StatusOK {
				t.Fatalf("bench %s status = %d: %s", bench, resp.StatusCode, body)
			}
		}
		return solveShapes(t, ts.URL)
	}
	w1, w8 := run(1), run(8)
	if string(w1) != string(w8) {
		t.Fatalf("solve-record shapes differ between workers 1 and 8:\n1: %s\n8: %s", w1, w8)
	}
}

// TestSolveHistogramsDeterministic: the iteration and condition-estimate
// histograms carry worker-count-independent values, so they must survive
// Deterministic() (unlike the wall-clock latency histograms) and reach
// the Prometheus exposition.
func TestSolveHistogramsDeterministic(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	post(t, ts.URL+"/v1/analyze", goodQuery)
	det := s.reg.Snapshot().Deterministic()
	for _, name := range []string{"serve.solve.iterations", "serve.solve.cond_est"} {
		h, ok := det.Histograms[name]
		if !ok {
			t.Fatalf("deterministic snapshot missing %q", name)
		}
		if h.Count < 1 {
			t.Errorf("%s count = %d, want >= 1", name, h.Count)
		}
	}
	prom := string(s.reg.PromText())
	for _, want := range []string{
		"# TYPE serve_solve_iterations histogram",
		"serve_solve_iterations_bucket",
		"# TYPE serve_solve_cond_est histogram",
		"serve_solve_cond_est_bucket",
	} {
		if !strings.Contains(prom, want) {
			t.Errorf("prometheus exposition missing %q", want)
		}
	}
}
