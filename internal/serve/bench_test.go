package serve

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func newBenchServer(b *testing.B, cfg Config) *httptest.Server {
	b.Helper()
	if cfg.MeshPitch == 0 {
		cfg.MeshPitch = testPitch
	}
	ts := httptest.NewServer(New(cfg))
	b.Cleanup(ts.Close)
	return ts
}

func benchPost(b *testing.B, url, body string) {
	b.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		b.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		b.Fatalf("status %d", resp.StatusCode)
	}
	resp.Body.Close()
}

// BenchmarkAnalyzeCacheHit is the fully-cached serving cost: result LRU
// hit, no solver work. The floor of the serving path.
func BenchmarkAnalyzeCacheHit(b *testing.B) {
	ts := newBenchServer(b, Config{})
	benchPost(b, ts.URL+"/v1/analyze", goodQuery)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchPost(b, ts.URL+"/v1/analyze", goodQuery)
	}
}

// BenchmarkAnalyzeColdState exercises the solve path with a warm analyzer:
// every request is a new (state, io) on a cached design, so each pays RHS
// assembly plus one CG solve but no mesh work.
func BenchmarkAnalyzeColdState(b *testing.B) {
	ts := newBenchServer(b, Config{CacheSize: 1})
	benchPost(b, ts.URL+"/v1/analyze", goodQuery)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		io := 0.5 + 0.4*float64(i%1000)/1000
		benchPost(b, ts.URL+"/v1/analyze",
			fmt.Sprintf(`{"bench":"ddr3-off","state":"0-0-0-2","io":%.4f}`, io))
	}
}

// BenchmarkAnalyzeWarmStart is BenchmarkAnalyzeColdState with the
// warm-start opt-in: consecutive solves on the design seed each other.
func BenchmarkAnalyzeWarmStart(b *testing.B) {
	ts := newBenchServer(b, Config{CacheSize: 1, WarmStart: true})
	benchPost(b, ts.URL+"/v1/analyze", goodQuery)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		io := 0.5 + 0.4*float64(i%1000)/1000
		benchPost(b, ts.URL+"/v1/analyze",
			fmt.Sprintf(`{"bench":"ddr3-off","state":"0-0-0-2","io":%.4f}`, io))
	}
}
