package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// testPitch keeps meshes tiny so solves finish in milliseconds; results
// stay deterministic, just coarse.
const testPitch = 0.5

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.MeshPitch == 0 {
		cfg.MeshPitch = testPitch
	}
	s := New(cfg)
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return s, ts
}

func post(t *testing.T, url string, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp, buf.Bytes()
}

const goodQuery = `{"bench":"ddr3-off","state":"0-0-0-2","io":1.0}`

func TestAnalyzeEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, body := post(t, ts.URL+"/v1/analyze", goodQuery)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	var ar AnalyzeResponse
	if err := json.Unmarshal(body, &ar); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if ar.Bench != "ddr3-off" || ar.State != "0-0-0-2" {
		t.Errorf("echo = %q/%q, want ddr3-off/0-0-0-2", ar.Bench, ar.State)
	}
	if !(ar.MaxIRmV > 0) || len(ar.PerDieMV) != 4 || !ar.Converged {
		t.Errorf("implausible result: %+v", ar)
	}

	// The zero-padded spelling is the same analysis: same canonical
	// state, byte-identical body (served from cache).
	resp2, body2 := post(t, ts.URL+"/v1/analyze", `{"bench":"ddr3-off","state":"00-0-0-02","io":1.0}`)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("padded spelling status = %d, body %s", resp2.StatusCode, body2)
	}
	if !bytes.Equal(body, body2) {
		t.Errorf("equivalent spellings produced different bodies:\n%s\n%s", body, body2)
	}
}

func TestAnalyzeErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		name, body string
		status     int
	}{
		{"bad io", `{"bench":"ddr3-off","state":"0-0-0-2","io":1.5}`, 400},
		{"bad state", `{"bench":"ddr3-off","state":"0-0-2","io":1.0}`, 400},
		{"unknown bench", `{"bench":"nope","state":"0-0-0-2","io":1.0}`, 400},
		{"unknown field", `{"bench":"ddr3-off","state":"0-0-0-2","io":1.0,"bogus":1}`, 400},
		{"not json", `{{{`, 400},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			resp, body := post(t, ts.URL+"/v1/analyze", c.body)
			if resp.StatusCode != c.status {
				t.Fatalf("status = %d, want %d (body %s)", resp.StatusCode, c.status, body)
			}
			var eb errBody
			if err := json.Unmarshal(body, &eb); err != nil || eb.Error == "" {
				t.Errorf("error body %s not {error: ...}", body)
			}
		})
	}

	resp, err := http.Get(ts.URL + "/v1/analyze")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET status = %d, want 405", resp.StatusCode)
	}
}

func TestCacheMetrics(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	post(t, ts.URL+"/v1/analyze", goodQuery)
	if got := s.cacheMisses.Value(); got != 1 {
		t.Fatalf("after first request cache misses = %d, want 1", got)
	}
	if got := s.cacheHits.Value(); got != 0 {
		t.Fatalf("after first request cache hits = %d, want 0", got)
	}
	post(t, ts.URL+"/v1/analyze", goodQuery)
	if got := s.cacheHits.Value(); got != 1 {
		t.Errorf("after repeat request cache hits = %d, want 1", got)
	}
	if got := s.cacheMisses.Value(); got != 1 {
		t.Errorf("after repeat request cache misses = %d, want 1", got)
	}

	// /metrics exposes the counters as JSON.
	resp, body := post(t, ts.URL+"/v1/analyze", goodQuery)
	resp.Body.Close()
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(mresp.Body)
	var m struct {
		Counters map[string]int64 `json:"counters"`
	}
	if err := json.Unmarshal(buf.Bytes(), &m); err != nil {
		t.Fatalf("/metrics not JSON: %v", err)
	}
	if got := m.Counters["serve.cache.hits"]; got != 2 {
		t.Errorf("/metrics serve.cache.hits = %d, want 2", got)
	}
	if got := m.Counters["serve.admission.admitted"]; got != 3 {
		t.Errorf("/metrics serve.admission.admitted = %d, want 3", got)
	}
	_ = body
}

func TestByteIdenticalAcrossWorkers(t *testing.T) {
	_, ts1 := newTestServer(t, Config{Workers: 1})
	_, ts8 := newTestServer(t, Config{Workers: 8})
	queries := []string{
		goodQuery,
		`{"bench":"ddr3-off","state":"1-0-1-2","io":0.5}`,
		`{"bench":"ddr3-on","state":"0-0-0-1","io":1.0}`,
	}
	for _, q := range queries {
		_, b1 := post(t, ts1.URL+"/v1/analyze", q)
		_, b8 := post(t, ts8.URL+"/v1/analyze", q)
		if !bytes.Equal(b1, b8) {
			t.Errorf("workers=1 vs 8 bodies differ for %s:\n%s\n%s", q, b1, b8)
		}
	}
}

func TestBatchPartialFailure(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req := `{"queries":[
		{"bench":"ddr3-off","state":"0-0-0-2","io":1.0},
		{"bench":"ddr3-off","state":"0-0-0-2","io":7},
		{"bench":"nope","state":"0-0-0-2","io":1.0},
		{"bench":"ddr3-off","state":"0-0-0-9","io":1.0}
	]}`
	resp, body := post(t, ts.URL+"/v1/batch", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status = %d, body %s", resp.StatusCode, body)
	}
	var br BatchResponse
	if err := json.Unmarshal(body, &br); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if len(br.Results) != 4 || br.Failed != 3 {
		t.Fatalf("results = %d, failed = %d, want 4 and 3: %s", len(br.Results), br.Failed, body)
	}
	if !br.Results[0].OK || br.Results[0].Status != 200 {
		t.Errorf("item 0 = %+v, want OK", br.Results[0])
	}
	for i := 1; i < 4; i++ {
		it := br.Results[i]
		if it.OK || it.Status != 400 || it.Error == "" {
			t.Errorf("item %d = %+v, want status 400 with error", i, it)
		}
	}

	// The good item's body matches a standalone analyze byte for byte.
	_, single := post(t, ts.URL+"/v1/analyze", goodQuery)
	if !bytes.Equal(bytes.TrimRight(single, "\n"), []byte(br.Results[0].Result)) {
		t.Errorf("batch item body differs from standalone analyze:\n%s\n%s", single, br.Results[0].Result)
	}
}

func TestBatchRejectsEmptyAndOversized(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxBatch: 2})
	resp, _ := post(t, ts.URL+"/v1/batch", `{"queries":[]}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty batch status = %d, want 400", resp.StatusCode)
	}
	resp, _ = post(t, ts.URL+"/v1/batch", `{"queries":[`+goodQuery+`,`+goodQuery+`,`+goodQuery+`]}`)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized batch status = %d, want 413", resp.StatusCode)
	}
}

func TestLUTEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req := `{"bench":"ddr3-off","max_per_die":1,"io_levels":[1.0],"full":true,"probe":{"state":"0-0-0-1","io":1.0}}`
	resp, body := post(t, ts.URL+"/v1/lut", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("lut status = %d, body %s", resp.StatusCode, body)
	}
	var lr LUTResponse
	if err := json.Unmarshal(body, &lr); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if lr.Dies != 4 || lr.MaxPerDie != 1 || lr.Entries != 16 || len(lr.Points) != 16 {
		t.Errorf("grid = %d dies, %d max, %d entries, %d points; want 4/1/16/16", lr.Dies, lr.MaxPerDie, lr.Entries, len(lr.Points))
	}
	if lr.ProbeMaxIRmV == nil || !(*lr.ProbeMaxIRmV > 0) {
		t.Errorf("probe result missing or non-positive: %v", lr.ProbeMaxIRmV)
	}

	// A probe outside the covered grid is a typed coverage miss -> 422.
	miss := `{"bench":"ddr3-off","max_per_die":1,"io_levels":[1.0],"probe":{"state":"0-0-0-2","io":1.0}}`
	resp, body = post(t, ts.URL+"/v1/lut", miss)
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("uncovered probe status = %d, want 422 (body %s)", resp.StatusCode, body)
	}
	var eb errBody
	if err := json.Unmarshal(body, &eb); err != nil || !strings.Contains(eb.Error, "not covered") {
		t.Errorf("422 body %s does not name the coverage miss", body)
	}
}

func Test429UnderSaturation(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxInFlight: 1, QueueWait: 20 * time.Millisecond})
	// Occupy the only slot, as an in-flight request would.
	s.sem <- struct{}{}
	defer func() { <-s.sem }()
	resp, body := post(t, ts.URL+"/v1/analyze", goodQuery)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated status = %d, want 429 (body %s)", resp.StatusCode, body)
	}
	if got := s.rejectedBusy.Value(); got != 1 {
		t.Errorf("rejected_busy = %d, want 1", got)
	}
}

func TestDrain(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxInFlight: 2, QueueWait: 20 * time.Millisecond})
	// One slot held: an in-flight request the drain must wait for.
	s.sem <- struct{}{}

	drained := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		drained <- s.Drain(ctx)
	}()

	// Drain must not complete while work is in flight.
	select {
	case err := <-drained:
		t.Fatalf("drain completed with a request in flight: %v", err)
	case <-time.After(50 * time.Millisecond):
	}

	// New work is refused while draining.
	resp, _ := post(t, ts.URL+"/v1/analyze", goodQuery)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("analyze during drain status = %d, want 503", resp.StatusCode)
	}
	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("healthz during drain status = %d, want 503", hresp.StatusCode)
	}

	// The in-flight request finishes; drain completes.
	<-s.sem
	if err := <-drained; err != nil {
		t.Fatalf("drain after release: %v", err)
	}
}

func TestDrainTimesOutOnStuckWork(t *testing.T) {
	s, _ := newTestServer(t, Config{MaxInFlight: 1})
	s.sem <- struct{}{}
	defer func() { <-s.sem }()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	err := s.Drain(ctx)
	if err == nil || !strings.Contains(err.Error(), "still busy") {
		t.Fatalf("drain error = %v, want 'still busy'", err)
	}
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz status = %d, want 200", resp.StatusCode)
	}
}

// TestMixedLoad64 drives the server with 64 concurrent clients mixing
// every endpoint; run under -race this is the acceptance check for the
// serving layer's concurrency. All requests must succeed (the in-flight
// cap is set above the client count) and every analyze response for one
// query must be byte-identical.
func TestMixedLoad64(t *testing.T) {
	if testing.Short() {
		t.Skip("load test")
	}
	_, ts := newTestServer(t, Config{MaxInFlight: 128, QueueWait: 10 * time.Second, Workers: 2})
	queries := []string{
		`{"bench":"ddr3-off","state":"0-0-0-2","io":1.0}`,
		`{"bench":"ddr3-off","state":"1-0-1-2","io":0.5}`,
		`{"bench":"ddr3-off","state":"0-0-0-2","io":0.25}`,
		`{"bench":"ddr3-on","state":"0-0-0-1","io":1.0}`,
	}
	var (
		mu     sync.Mutex
		bodies = map[string][]byte{}
	)
	var wg sync.WaitGroup
	errs := make(chan error, 64*4)
	for g := 0; g < 64; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			q := queries[g%len(queries)]
			for rep := 0; rep < 3; rep++ {
				resp, err := http.Post(ts.URL+"/v1/analyze", "application/json", strings.NewReader(q))
				if err != nil {
					errs <- err
					return
				}
				var buf bytes.Buffer
				buf.ReadFrom(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("analyze %s: status %d body %s", q, resp.StatusCode, buf.String())
					return
				}
				mu.Lock()
				if prev, ok := bodies[q]; ok && !bytes.Equal(prev, buf.Bytes()) {
					errs <- fmt.Errorf("nondeterministic body for %s", q)
				} else {
					bodies[q] = buf.Bytes()
				}
				mu.Unlock()
			}
			// One batch and one metrics scrape per client round out the mix.
			resp, err := http.Post(ts.URL+"/v1/batch", "application/json",
				strings.NewReader(`{"queries":[`+q+`]}`))
			if err != nil {
				errs <- err
				return
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("batch status %d", resp.StatusCode)
			}
			if mresp, err := http.Get(ts.URL + "/metrics"); err == nil {
				mresp.Body.Close()
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestResultCacheIsBounded(t *testing.T) {
	s, ts := newTestServer(t, Config{CacheSize: 2})
	for _, io := range []string{"1.0", "0.5", "0.25"} {
		post(t, ts.URL+"/v1/analyze", `{"bench":"ddr3-off","state":"0-0-0-1","io":`+io+`}`)
	}
	if got := s.results.len(); got != 2 {
		t.Errorf("result cache holds %d entries, want the bound 2", got)
	}
	// The singleflight group must not retain completed results.
	if got := s.flights.Len(); got != 0 {
		t.Errorf("flight group retains %d completed results, want 0", got)
	}
}
