package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"pdn3d/internal/obs"
)

const batchQueries = `{"queries":[
	{"bench":"ddr3-off","state":"0-0-0-2","io":1.0},
	{"bench":"ddr3-off","state":"1-0-1-2","io":0.5},
	{"bench":"ddr3-on","state":"0-0-0-1","io":1.0}
]}`

func getBody(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp, buf.Bytes()
}

func TestTraceIDHeader(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, _ := post(t, ts.URL+"/v1/analyze", goodQuery)
	fresh := resp.Header.Get("X-Trace-Id")
	if !obs.ValidTraceID(fresh) || len(fresh) != 16 {
		t.Fatalf("issued X-Trace-Id %q is not a fresh 16-hex ID", fresh)
	}

	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/analyze", strings.NewReader(goodQuery))
	req.Header.Set("X-Trace-Id", "client-supplied_01")
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if got := resp2.Header.Get("X-Trace-Id"); got != "client-supplied_01" {
		t.Fatalf("valid inbound trace ID not echoed: got %q", got)
	}

	req, _ = http.NewRequest(http.MethodPost, ts.URL+"/v1/analyze", strings.NewReader(goodQuery))
	req.Header.Set("X-Trace-Id", "bad id with spaces")
	resp3, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	got := resp3.Header.Get("X-Trace-Id")
	if got == "bad id with spaces" || !obs.ValidTraceID(got) {
		t.Fatalf("invalid inbound trace ID not replaced: got %q", got)
	}
}

// spanShape is a span's deterministic projection: its name, its parent's
// name, and its attributes. Span IDs and timings are scheduling- and
// clock-dependent and excluded on purpose.
func spanShape(ts obs.TraceSnapshot) []string {
	names := map[int]string{}
	for _, sp := range ts.Spans {
		names[sp.ID] = sp.Name
	}
	var out []string
	for _, sp := range ts.Spans {
		keys := make([]string, 0, len(sp.Attrs))
		for k := range sp.Attrs {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		var attrs strings.Builder
		for _, k := range keys {
			fmt.Fprintf(&attrs, " %s=%s", k, sp.Attrs[k])
		}
		out = append(out, names[sp.Parent]+"/"+sp.Name+attrs.String())
	}
	sort.Strings(out)
	return out
}

// batchTrace posts one batch and fetches its full trace back through
// /debug/requests?id= using the X-Trace-Id the response carried.
func batchTrace(t *testing.T, workers int) obs.TraceSnapshot {
	t.Helper()
	_, ts := newTestServer(t, Config{Workers: workers})
	resp, body := post(t, ts.URL+"/v1/batch", batchQueries)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status = %d, body %s", resp.StatusCode, body)
	}
	id := resp.Header.Get("X-Trace-Id")
	if id == "" {
		t.Fatal("batch response carried no X-Trace-Id")
	}
	dresp, dbody := getBody(t, ts.URL+"/debug/requests?id="+id)
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/requests?id=%s status = %d, body %s", id, dresp.StatusCode, dbody)
	}
	var snap obs.TraceSnapshot
	if err := json.Unmarshal(dbody, &snap); err != nil {
		t.Fatalf("trace not JSON: %v\n%s", err, dbody)
	}
	if snap.ID != id {
		t.Fatalf("trace ID = %q, want %q", snap.ID, id)
	}
	return snap
}

func TestBatchTracePropagation(t *testing.T) {
	snap := batchTrace(t, 4)
	count := map[string]int{}
	names := map[int]string{}
	for _, sp := range snap.Spans {
		names[sp.ID] = sp.Name
	}
	for _, sp := range snap.Spans {
		count[sp.Name]++
		switch sp.Name {
		case "request":
			if sp.Parent != 0 {
				t.Errorf("request span has parent %d", sp.Parent)
			}
			if sp.Attrs["endpoint"] != "/v1/batch" {
				t.Errorf("request attrs = %v", sp.Attrs)
			}
		case "queue", "item":
			if names[sp.Parent] != "request" {
				t.Errorf("%s span parent is %q, want request", sp.Name, names[sp.Parent])
			}
		case "cache", "flight":
			if names[sp.Parent] != "item" {
				t.Errorf("%s span parent is %q, want item", sp.Name, names[sp.Parent])
			}
		case "mesh", "stamp", "solve", "serialize":
			if names[sp.Parent] != "flight" {
				t.Errorf("%s span parent is %q, want flight", sp.Name, names[sp.Parent])
			}
		default:
			t.Errorf("unexpected span %q", sp.Name)
		}
	}
	// The batch holds three queries over two distinct designs, so the
	// analyzer singleflight runs two mesh builds; both are cold, hence
	// outcome=full.
	want := map[string]int{
		"request": 1, "queue": 1, "item": 3, "cache": 3,
		"flight": 3, "mesh": 2, "stamp": 3, "solve": 3, "serialize": 3,
	}
	for name, n := range want {
		if count[name] != n {
			t.Errorf("span %q count = %d, want %d (all: %v)", name, count[name], n, count)
		}
	}
	for _, sp := range snap.Spans {
		if sp.Name == "solve" && sp.Attrs["converged"] != "true" {
			t.Errorf("solve span attrs = %v, want converged=true", sp.Attrs)
		}
		if sp.Name == "cache" && sp.Attrs["outcome"] != "miss" {
			t.Errorf("cache span attrs = %v, want outcome=miss (distinct cold queries)", sp.Attrs)
		}
		if sp.Name == "flight" && sp.Attrs["outcome"] != "solve" {
			t.Errorf("flight span attrs = %v, want outcome=solve", sp.Attrs)
		}
		if sp.Name == "mesh" && sp.Attrs["outcome"] != "full" {
			t.Errorf("mesh span attrs = %v, want outcome=full (cold topology cache)", sp.Attrs)
		}
	}
}

func TestBatchTraceDeterministicAcrossWorkers(t *testing.T) {
	shape1 := spanShape(batchTrace(t, 1))
	shape8 := spanShape(batchTrace(t, 8))
	b1, _ := json.Marshal(shape1)
	b8, _ := json.Marshal(shape8)
	if !bytes.Equal(b1, b8) {
		t.Fatalf("deterministic span shape differs workers=1 vs 8:\n%s\n%s", b1, b8)
	}
}

func TestDisableTracing(t *testing.T) {
	_, ts := newTestServer(t, Config{DisableTracing: true})
	resp, _ := post(t, ts.URL+"/v1/analyze", goodQuery)
	if id := resp.Header.Get("X-Trace-Id"); !obs.ValidTraceID(id) {
		t.Fatalf("disabled tracing must still issue X-Trace-Id, got %q", id)
	}
	dresp, dbody := getBody(t, ts.URL+"/debug/requests")
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/requests status = %d", dresp.StatusCode)
	}
	var b debugRequestsBody
	if err := json.Unmarshal(dbody, &b); err != nil {
		t.Fatal(err)
	}
	if b.Added != 0 || len(b.Recent) != 0 || len(b.Slowest) != 0 {
		t.Fatalf("disabled tracing retained traces: %s", dbody)
	}
}

func TestDebugRequestsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{TraceBufSize: 2})
	var lastID string
	for i := 0; i < 5; i++ {
		q := fmt.Sprintf(`{"bench":"ddr3-off","state":"0-0-0-2","io":%d.0}`, i+1)
		resp, _ := post(t, ts.URL+"/v1/analyze", q)
		lastID = resp.Header.Get("X-Trace-Id")
	}
	_, dbody := getBody(t, ts.URL+"/debug/requests")
	var b debugRequestsBody
	if err := json.Unmarshal(dbody, &b); err != nil {
		t.Fatal(err)
	}
	if b.Added != 5 {
		t.Errorf("added = %d, want 5", b.Added)
	}
	if len(b.Recent) != 2 || len(b.Slowest) != 2 {
		t.Errorf("buffers not bounded at 2: recent=%d slowest=%d", len(b.Recent), len(b.Slowest))
	}
	if b.Recent[0].ID != lastID {
		t.Errorf("recent[0] = %q, want newest %q", b.Recent[0].ID, lastID)
	}

	resp, _ := getBody(t, ts.URL+"/debug/requests?id=nosuchtrace")
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown id status = %d, want 404", resp.StatusCode)
	}
	presp, _ := post(t, ts.URL+"/debug/requests", "{}")
	if presp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /debug/requests status = %d, want 405", presp.StatusCode)
	}
}

func TestMetricsPromNegotiation(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	post(t, ts.URL+"/v1/analyze", goodQuery)

	resp, body := getBody(t, ts.URL+"/metrics")
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("default /metrics Content-Type = %q, want JSON (back-compat)", ct)
	}
	if !json.Valid(body) {
		t.Fatalf("default /metrics not JSON: %s", body)
	}

	resp, body = getBody(t, ts.URL+"/metrics?format=prometheus")
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("prom /metrics Content-Type = %q", ct)
	}
	text := string(body)
	for _, want := range []string{
		"# TYPE serve_analyze_requests counter",
		"serve_analyze_requests 1",
		"# TYPE serve_analyze_latency_ms histogram",
		`serve_analyze_latency_ms_bucket{le="+Inf"} 1`,
		"serve_analyze_status_200 1",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("prom exposition missing %q:\n%s", want, text)
		}
	}

	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/metrics", nil)
	req.Header.Set("Accept", "text/plain")
	aresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	aresp.Body.Close()
	if ct := aresp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("Accept: text/plain Content-Type = %q", ct)
	}
}

func TestEndpointMetricsAnd429(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxInFlight: 1, QueueWait: 20 * time.Millisecond})
	post(t, ts.URL+"/v1/analyze", goodQuery)

	s.sem <- struct{}{} // saturate the only admission slot
	resp, _ := post(t, ts.URL+"/v1/analyze", goodQuery)
	<-s.sem
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated status = %d, want 429", resp.StatusCode)
	}

	snap := s.reg.Snapshot()
	for name, want := range map[string]int64{
		"serve.analyze.requests":      2,
		"serve.analyze.status.200":    1,
		"serve.analyze.status.429":    1,
		"serve.analyze.rejected_busy": 1,
	} {
		if got := snap.Counters[name]; got != want {
			t.Errorf("counter %s = %d, want %d", name, got, want)
		}
	}
	for _, name := range []string{
		"serve.analyze.latency_ms (info)",
		"serve.analyze.queue_wait_ms (info)",
		"serve.analyze.handler_ms (info)",
	} {
		h, ok := snap.Histograms[name]
		if !ok || h.Count != 2 {
			t.Errorf("histogram %s count = %d (ok=%v), want 2", name, h.Count, ok)
		}
	}
	// The rejected request waited the full 20ms QueueWait, so at most one
	// observation (the admitted request) can sit at or below the 5ms bound.
	qw := snap.Histograms["serve.analyze.queue_wait_ms (info)"]
	if low := qw.Buckets[0] + qw.Buckets[1] + qw.Buckets[2] + qw.Buckets[3]; low > 1 {
		t.Errorf("queue-wait buckets = %v: the 429 should have waited past 5ms", qw.Buckets)
	}
	if g := snap.Gauges["serve.analyze.inflight (info)"]; g != 0 {
		t.Errorf("inflight gauge = %g after requests finished, want 0", g)
	}
}

func TestRequestLogRecords(t *testing.T) {
	var sb strings.Builder
	logger, err := obs.NewLogger(&syncWriter{sb: &sb}, obs.LogJSON)
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Config{Log: logger})
	resp, _ := post(t, ts.URL+"/v1/analyze", goodQuery)
	post(t, ts.URL+"/v1/analyze", goodQuery) // cache hit

	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d log lines, want 2:\n%s", len(lines), sb.String())
	}
	var rec map[string]interface{}
	if err := json.Unmarshal([]byte(lines[0]), &rec); err != nil {
		t.Fatalf("log line not JSON: %v\n%s", err, lines[0])
	}
	if rec["event"] != "request" || rec["endpoint"] != "analyze" {
		t.Fatalf("record = %v", rec)
	}
	if rec["trace_id"] != resp.Header.Get("X-Trace-Id") {
		t.Fatalf("log trace_id %v != header %q", rec["trace_id"], resp.Header.Get("X-Trace-Id"))
	}
	if rec["status"] != float64(200) {
		t.Fatalf("log status = %v", rec["status"])
	}
	for _, key := range []string{"dur_ms", "queue_ms", "handler_ms", "solve_ms", "iterations"} {
		if _, ok := rec[key]; !ok {
			t.Errorf("first (cache-miss) record missing %q: %v", key, rec)
		}
	}
	var hit map[string]interface{}
	if err := json.Unmarshal([]byte(lines[1]), &hit); err != nil {
		t.Fatal(err)
	}
	if hit["cache_hits"] != float64(1) {
		t.Errorf("cache-hit record cache_hits = %v, want 1: %v", hit["cache_hits"], hit)
	}
}

// syncWriter serializes writes; the logger already locks, but tests read
// the buffer from the main goroutine while handlers may still flush.
type syncWriter struct {
	mu sync.Mutex
	sb *strings.Builder
}

func (w *syncWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.sb.Write(p)
}
