// Package tech describes the process and packaging technology parameters
// that the PDN layout generator and the R-Mesh builder consume: metal layer
// stacks with sheet resistances and preferred routing directions, and the
// electrical models of the vertical/packaging elements (PG TSVs, C4 bumps,
// F2F via carpets, RDL, backside bond wires).
//
// Values are representative of a 20nm-class DRAM process with aluminium
// interconnect and a 28nm logic process with copper interconnect, globally
// calibrated (see internal/bench3d) so that the off-chip stacked-DDR3
// baseline design reproduces the paper's ~30 mV maximum IR drop.
package tech

import "fmt"

// Direction is the preferred routing direction of a metal layer. The R-Mesh
// models a layer's PDN stripes as running in the preferred direction, with
// the orthogonal direction provided by the neighbouring layer through vias;
// a small orthogonal conductance accounts for ring/strap stitching.
type Direction uint8

const (
	// Horizontal layers route power stripes along the x axis.
	Horizontal Direction = iota
	// Vertical layers route power stripes along the y axis.
	Vertical
	// OmniDirectional layers (the RDL) allow arbitrary-direction routing,
	// including the paper's non-Manhattan RDL routes; the mesh gets full
	// conductance both ways plus diagonal branches.
	OmniDirectional
)

func (d Direction) String() string {
	switch d {
	case Horizontal:
		return "horizontal"
	case Vertical:
		return "vertical"
	case OmniDirectional:
		return "omni"
	default:
		return fmt.Sprintf("Direction(%d)", uint8(d))
	}
}

// MetalLayer is one routing layer available for PDN use.
type MetalLayer struct {
	// Name is the layer label (M1, M2, M3, M6, RDL...).
	Name string
	// SheetR is the sheet resistance in Ω/sq of solid metal on this layer.
	SheetR float64
	// Dir is the preferred routing direction.
	Dir Direction
	// MaxUsage caps the fraction of the layer area that may be given to
	// the VDD PDN (the rest is signal routing and the ground net).
	MaxUsage float64
}

// Via models the layer-to-layer via stack between two adjacent PDN layers
// at one mesh node.
type Via struct {
	// R is the effective resistance in Ω of the via array dropped at one
	// grid node (many parallel cuts).
	R float64
}

// TSV models a power/ground through-silicon via.
type TSV struct {
	// R is the per-TSV resistance in Ω, including landing pads.
	R float64
	// KOZ is the keep-out-zone halfwidth in mm around the TSV; used by the
	// cost model and by the floorplan legality checks.
	KOZ float64
	// Pitch is the minimum TSV-to-TSV pitch in mm.
	Pitch float64
}

// Bump models a C4 (package) or micro-bump (die-to-die) connection.
type Bump struct {
	// R is the per-bump resistance in Ω.
	R float64
	// Pitch is the bump array pitch in mm.
	Pitch float64
}

// BondWire models one backside bond wire from a die-edge pad down to the
// package VDD plane.
type BondWire struct {
	// RPerMM is the wire resistance per millimetre of length in Ω/mm.
	RPerMM float64
	// RContact is the fixed pad/stitch contact resistance in Ω.
	RContact float64
	// Loop is the extra wire length in mm beyond the vertical drop.
	Loop float64
}

// R returns the total resistance of a bond wire spanning length mm.
func (w BondWire) R(length float64) float64 {
	return w.RContact + w.RPerMM*(length+w.Loop)
}

// Technology aggregates everything the builders need for one die class.
type Technology struct {
	// Name identifies the process ("dram20", "logic28").
	Name string
	// Layers is the PDN-usable metal stack, bottom-most first.
	Layers []MetalLayer
	// ViaR is the node via-stack resistance between adjacent PDN layers.
	ViaR float64
	// PGTSV is the standard power/ground TSV (via-middle).
	PGTSV TSV
	// DedicatedTSV is the via-last dedicated power TSV, lower resistance.
	DedicatedTSV TSV
	// C4 is the package-attach bump.
	C4 Bump
	// MicroBump is the die-to-die bump used in B2B/F2B interfaces.
	MicroBump Bump
	// F2FVia is the face-to-face bond via; placed as a carpet, so the
	// per-node resistance is tiny.
	F2FVia Via
	// RDL is the backside redistribution layer, if the process offers one.
	RDL MetalLayer
	// Wire is the backside bond-wire model.
	Wire BondWire
	// VDD is the nominal supply voltage in V.
	VDD float64
}

// Layer returns the metal layer with the given name.
func (t *Technology) Layer(name string) (MetalLayer, error) {
	for _, l := range t.Layers {
		if l.Name == name {
			return l, nil
		}
	}
	return MetalLayer{}, fmt.Errorf("tech %s: no PDN layer %q", t.Name, name)
}

// Validate checks internal consistency of the technology description.
func (t *Technology) Validate() error {
	if t.Name == "" {
		return fmt.Errorf("tech: empty name")
	}
	if t.VDD <= 0 {
		return fmt.Errorf("tech %s: VDD %g must be positive", t.Name, t.VDD)
	}
	if len(t.Layers) == 0 {
		return fmt.Errorf("tech %s: no PDN layers", t.Name)
	}
	seen := map[string]bool{}
	for _, l := range t.Layers {
		if l.Name == "" {
			return fmt.Errorf("tech %s: unnamed layer", t.Name)
		}
		if seen[l.Name] {
			return fmt.Errorf("tech %s: duplicate layer %q", t.Name, l.Name)
		}
		seen[l.Name] = true
		if l.SheetR <= 0 {
			return fmt.Errorf("tech %s: layer %s sheet resistance %g must be positive", t.Name, l.Name, l.SheetR)
		}
		if l.MaxUsage <= 0 || l.MaxUsage > 1 {
			return fmt.Errorf("tech %s: layer %s max usage %g out of (0,1]", t.Name, l.Name, l.MaxUsage)
		}
	}
	if t.ViaR <= 0 {
		return fmt.Errorf("tech %s: via resistance must be positive", t.Name)
	}
	for _, e := range []struct {
		what string
		r    float64
	}{
		{"PG TSV", t.PGTSV.R},
		{"dedicated TSV", t.DedicatedTSV.R},
		{"C4", t.C4.R},
		{"micro bump", t.MicroBump.R},
		{"F2F via", t.F2FVia.R},
	} {
		if e.r <= 0 {
			return fmt.Errorf("tech %s: %s resistance must be positive", t.Name, e.what)
		}
	}
	return nil
}
