package tech

// DRAM20 returns the 20nm-class DRAM technology used by all DRAM dies in
// the four benchmarks. Traditional DRAM uses three metal layers (paper
// §4.2): M1 for signals (never PDN), M2 for mixed signal/power, M3 for
// power, so only M2/M3 appear in the PDN stack. vdd selects the supply
// (1.5 V stacked DDR3, 1.2 V Wide I/O and HMC).
func DRAM20(vdd float64) *Technology {
	return &Technology{
		Name: "dram20",
		Layers: []MetalLayer{
			{Name: "M2", SheetR: 0.1785, Dir: Horizontal, MaxUsage: 0.25},
			{Name: "M3", SheetR: 0.1125, Dir: Vertical, MaxUsage: 0.50},
		},
		ViaR:         2e-3,
		PGTSV:        TSV{R: 50e-3, KOZ: 0.010, Pitch: 0.040},
		DedicatedTSV: TSV{R: 25e-3, KOZ: 0.015, Pitch: 0.060},
		C4:           Bump{R: 10e-3, Pitch: 0.20},
		MicroBump:    Bump{R: 15e-3, Pitch: 0.050},
		F2FVia:       Via{R: 2e-3},
		RDL:          MetalLayer{Name: "RDL", SheetR: 0.150, Dir: OmniDirectional, MaxUsage: 0.70},
		Wire:         BondWire{RPerMM: 0.120, RContact: 0.080, Loop: 1.0},
		VDD:          vdd,
	}
}

// Logic28 returns the 28nm logic technology of the OpenSPARC-T2-like host
// die (and of the HMC controller die). The PDN is modelled with an M1-like
// local layer and an M6-like thick global layer; vdd must match the DRAM
// supply when the two PDNs are coupled (paper §3.1 assumes equal supplies).
func Logic28(vdd float64) *Technology {
	return &Technology{
		Name: "logic28",
		Layers: []MetalLayer{
			{Name: "M1", SheetR: 1.800, Dir: Horizontal, MaxUsage: 0.30},
			{Name: "M6", SheetR: 0.040, Dir: Vertical, MaxUsage: 0.60},
		},
		ViaR:         4.2,
		PGTSV:        TSV{R: 50e-3, KOZ: 0.010, Pitch: 0.040},
		DedicatedTSV: TSV{R: 25e-3, KOZ: 0.015, Pitch: 0.060},
		C4:           Bump{R: 20e-3, Pitch: 0.60},
		MicroBump:    Bump{R: 15e-3, Pitch: 0.050},
		F2FVia:       Via{R: 2e-3},
		RDL:          MetalLayer{Name: "RDL", SheetR: 0.150, Dir: OmniDirectional, MaxUsage: 0.70},
		Wire:         BondWire{RPerMM: 0.120, RContact: 0.080, Loop: 1.0},
		VDD:          vdd,
	}
}
