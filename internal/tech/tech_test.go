package tech

import (
	"strings"
	"testing"
)

func TestDefaultsValidate(t *testing.T) {
	for _, tc := range []*Technology{DRAM20(1.5), DRAM20(1.2), Logic28(1.5)} {
		if err := tc.Validate(); err != nil {
			t.Errorf("%s: Validate: %v", tc.Name, err)
		}
	}
}

func TestLayerLookup(t *testing.T) {
	d := DRAM20(1.5)
	m3, err := d.Layer("M3")
	if err != nil {
		t.Fatalf("Layer(M3): %v", err)
	}
	if m3.Dir != Vertical {
		t.Errorf("M3 direction = %v, want vertical", m3.Dir)
	}
	if _, err := d.Layer("M9"); err == nil {
		t.Error("Layer(M9): want error")
	}
}

func TestValidateCatchesBadTech(t *testing.T) {
	mk := func(mut func(*Technology)) *Technology {
		tc := DRAM20(1.5)
		mut(tc)
		return tc
	}
	cases := []struct {
		name string
		tc   *Technology
		want string
	}{
		{"empty name", mk(func(t *Technology) { t.Name = "" }), "empty name"},
		{"zero vdd", mk(func(t *Technology) { t.VDD = 0 }), "VDD"},
		{"no layers", mk(func(t *Technology) { t.Layers = nil }), "no PDN layers"},
		{"dup layer", mk(func(t *Technology) { t.Layers = append(t.Layers, t.Layers[0]) }), "duplicate"},
		{"bad sheetR", mk(func(t *Technology) { t.Layers[0].SheetR = -1 }), "sheet resistance"},
		{"bad usage", mk(func(t *Technology) { t.Layers[0].MaxUsage = 1.5 }), "max usage"},
		{"bad via", mk(func(t *Technology) { t.ViaR = 0 }), "via resistance"},
		{"bad tsv", mk(func(t *Technology) { t.PGTSV.R = 0 }), "PG TSV"},
		{"bad c4", mk(func(t *Technology) { t.C4.R = 0 }), "C4"},
	}
	for _, c := range cases {
		err := c.tc.Validate()
		if err == nil {
			t.Errorf("%s: want error", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}

func TestBondWireResistanceGrowsWithLength(t *testing.T) {
	w := DRAM20(1.5).Wire
	short, long := w.R(0.5), w.R(3.0)
	if short <= w.RContact {
		t.Errorf("short wire R = %g, must exceed contact R %g", short, w.RContact)
	}
	if long <= short {
		t.Errorf("R(3.0)=%g should exceed R(0.5)=%g", long, short)
	}
}

func TestDedicatedTSVBeatsPGTSV(t *testing.T) {
	d := DRAM20(1.5)
	if d.DedicatedTSV.R >= d.PGTSV.R {
		t.Errorf("dedicated (via-last) TSV R %g should be below PG TSV R %g (paper §3.1)",
			d.DedicatedTSV.R, d.PGTSV.R)
	}
}

func TestDirectionString(t *testing.T) {
	if Horizontal.String() != "horizontal" || Vertical.String() != "vertical" ||
		OmniDirectional.String() != "omni" {
		t.Error("Direction.String mismatch")
	}
	if got := Direction(9).String(); !strings.Contains(got, "9") {
		t.Errorf("unknown direction string = %q", got)
	}
}
