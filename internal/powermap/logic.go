package powermap

import (
	"fmt"

	"pdn3d/internal/floorplan"
)

// LogicModel distributes a logic die's power over its floorplan.
type LogicModel struct {
	// Total is the die power in mW.
	Total float64
	// CoreFrac, CacheFrac, UncoreFrac split Total across block kinds;
	// they must sum to 1 (within tolerance). Kinds missing from the
	// floorplan donate their share to the remaining kinds pro rata.
	CoreFrac, CacheFrac, UncoreFrac float64
}

// T2Power returns the OpenSPARC-T2-like host model. Total power is a
// calibration input chosen (see internal/bench3d) so the stand-alone logic
// die shows the paper's 50.05 mV supply noise.
func T2Power(total float64) *LogicModel {
	return &LogicModel{Total: total, CoreFrac: 0.62, CacheFrac: 0.22, UncoreFrac: 0.16}
}

// HMCLogicPower returns the HMC controller-die model: vault controllers
// dominate, SerDes strips take the uncore share.
func HMCLogicPower(total float64) *LogicModel {
	return &LogicModel{Total: total, CoreFrac: 0.70, CacheFrac: 0, UncoreFrac: 0.30}
}

// Validate checks the model's fractions.
func (m *LogicModel) Validate() error {
	if m.Total < 0 {
		return fmt.Errorf("powermap: negative logic power %g", m.Total)
	}
	s := m.CoreFrac + m.CacheFrac + m.UncoreFrac
	if s < 0.999 || s > 1.001 {
		return fmt.Errorf("powermap: logic fractions sum to %g, want 1", s)
	}
	return nil
}

// Loads distributes the logic power over the floorplan blocks.
func (m *LogicModel) Loads(fp *floorplan.Floorplan) ([]Load, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	shares := []struct {
		kind floorplan.BlockKind
		frac float64
	}{
		{floorplan.Core, m.CoreFrac},
		{floorplan.Cache, m.CacheFrac},
		{floorplan.Uncore, m.UncoreFrac},
	}
	// Redistribute shares of absent kinds.
	var present float64
	for _, s := range shares {
		if len(fp.KindBlocks(s.kind)) > 0 {
			present += s.frac
		}
	}
	if present == 0 {
		return nil, fmt.Errorf("powermap: floorplan %s has no logic blocks", fp.Name)
	}
	var loads []Load
	for _, s := range shares {
		blocks := fp.KindBlocks(s.kind)
		if len(blocks) == 0 || s.frac == 0 {
			continue
		}
		total := m.Total * s.frac / present
		var area float64
		for _, b := range blocks {
			area += b.Rect.Area()
		}
		for _, b := range blocks {
			loads = append(loads, Load{Rect: b.Rect, P: total * b.Rect.Area() / area})
		}
	}
	return loads, nil
}
