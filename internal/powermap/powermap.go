// Package powermap turns memory states into spatial power maps.
//
// The paper uses detailed DDR3 power maps measured by Samsung/Micron and
// scaled to 20nm-class technology; those are proprietary, so this package
// anchors a table-driven model on the aggregate numbers the paper itself
// publishes in Table 5 (active-die and total stack power versus I/O
// activity for the stacked DDR3) and distributes the power spatially over
// the floorplan blocks: active bank arrays and their row decoders take the
// bank share, the column path and center peripheral strip take the I/O
// share, and idle dies burn standby power in the periphery.
package powermap

import (
	"fmt"
	"sort"

	"pdn3d/internal/floorplan"
	"pdn3d/internal/geom"
)

// Load is one spatial power load: P milliwatts drawn uniformly over Rect.
type Load struct {
	Rect geom.Rect
	P    float64
}

// TotalPower sums the power of a load set.
func TotalPower(loads []Load) float64 {
	var s float64
	for _, l := range loads {
		s += l.P
	}
	return s
}

// Anchor is one measured operating point of a DRAM die running the
// two-bank interleaving read at the given I/O activity.
type Anchor struct {
	// IO is the I/O activity fraction in (0, 1].
	IO float64
	// ActiveDie is the active die's power in mW at this activity.
	ActiveDie float64
	// IdleDie is an idle die's standby power in mW at this activity.
	IdleDie float64
}

// DRAMModel computes per-die, per-block power for a DRAM die type.
//
// The active-die power splits into an I/O-insensitive bank component
// (activation/restore energy of the open banks, BankPower per bank) and an
// I/O-dependent transport component (column path, drivers, pads) carried by
// the anchors: at I/O activity io with n active banks,
//
//	P(n, io) = idle(io) + n·BankPower + V(io),
//	V(io)    = (active(io) − idle(io)) − RefBanks·BankPower.
//
// This decomposition is what lets the model reproduce the paper's §5.1
// observation that a 44.7 % die-power reduction (25 % I/O activity) only
// buys a ~24 % IR-drop reduction: the bank hotspot barely moves.
type DRAMModel struct {
	// Anchors hold measured (IO, power) points for a die with
	// RefBanks active banks; lookups interpolate linearly between them
	// and clamp outside the covered range. Must be sorted by IO.
	Anchors []Anchor
	// RefBanks is the active-bank count the anchors were measured at
	// (2 for the paper's interleaving read).
	RefBanks int
	// BankPower is the I/O-insensitive per-active-bank power in mW.
	BankPower float64
	// ArrayFrac splits each bank's power between cell array and its row
	// decoder (ArrayFrac to the array).
	ArrayFrac float64
	// PeriphFrac splits the I/O power between the center peripheral
	// strip (PeriphFrac) and the column-path strips.
	PeriphFrac float64
	// Scale multiplies all powers; 1.0 for stacked DDR3, below 1 for the
	// low-power Wide I/O, above 1 for the high-bandwidth HMC.
	Scale float64
}

// StackedDDR3Power returns the Table 5-anchored model for the stacked DDR3
// die (anchors at 25/50/100 % I/O activity, two-bank interleaving read).
func StackedDDR3Power() *DRAMModel {
	return &DRAMModel{
		Anchors: []Anchor{
			{IO: 0.25, ActiveDie: 126.0, IdleDie: 27.3},
			{IO: 0.50, ActiveDie: 175.5, IdleDie: 27.0},
			{IO: 1.00, ActiveDie: 220.5, IdleDie: 30.0},
		},
		RefBanks:   2,
		BankPower:  49.0,
		ArrayFrac:  0.90,
		PeriphFrac: 0.90,
		Scale:      1.0,
	}
}

// WideIOPower scales the DDR3 model to the Wide I/O die: a mobile part at
// 200 Mbps/pin whose 3D-IC benefit is low power (Table 1). The scale is
// calibrated so the Table 9 Wide I/O baseline lands at the paper's 13.6 mV.
func WideIOPower() *DRAMModel {
	m := StackedDDR3Power()
	m.Scale = 0.38
	return m
}

// HMCPower scales the DDR3 model to the HMC DRAM die: 2500 Mbps/pin over
// 512 data pins makes it the high-power benchmark (Table 1; the paper's
// Table 9 places even the optimized HMC well above the other designs). The
// scale is calibrated so the Table 9 HMC baseline lands at the paper's
// 47.9 mV.
func HMCPower() *DRAMModel {
	m := StackedDDR3Power()
	m.Scale = 2.05
	return m
}

// Validate checks model consistency.
func (m *DRAMModel) Validate() error {
	if len(m.Anchors) == 0 {
		return fmt.Errorf("powermap: no anchors")
	}
	if !sort.SliceIsSorted(m.Anchors, func(i, j int) bool { return m.Anchors[i].IO < m.Anchors[j].IO }) {
		return fmt.Errorf("powermap: anchors not sorted by IO")
	}
	for _, a := range m.Anchors {
		if a.IO <= 0 || a.IO > 1 {
			return fmt.Errorf("powermap: anchor IO %g out of (0,1]", a.IO)
		}
		if a.ActiveDie <= a.IdleDie {
			return fmt.Errorf("powermap: anchor at IO %g: active %g <= idle %g", a.IO, a.ActiveDie, a.IdleDie)
		}
	}
	if m.RefBanks <= 0 {
		return fmt.Errorf("powermap: RefBanks %d must be positive", m.RefBanks)
	}
	if m.ArrayFrac < 0 || m.ArrayFrac > 1 || m.PeriphFrac < 0 || m.PeriphFrac > 1 {
		return fmt.Errorf("powermap: share fractions out of [0,1]")
	}
	if m.BankPower <= 0 {
		return fmt.Errorf("powermap: bank power %g must be positive", m.BankPower)
	}
	// V(io) must stay non-negative over the covered activity range.
	for _, a := range m.Anchors {
		if a.ActiveDie-a.IdleDie < m.BankPower*float64(m.RefBanks) {
			return fmt.Errorf("powermap: bank power %g x %d exceeds increment %g at IO %g",
				m.BankPower, m.RefBanks, a.ActiveDie-a.IdleDie, a.IO)
		}
	}
	if m.Scale <= 0 {
		return fmt.Errorf("powermap: scale %g must be positive", m.Scale)
	}
	return nil
}

// interp returns the (active, idle) powers at I/O activity io by piecewise
// linear interpolation over the anchors, clamped at the ends.
func (m *DRAMModel) interp(io float64) (active, idle float64) {
	a := m.Anchors
	if io <= a[0].IO {
		return a[0].ActiveDie, a[0].IdleDie
	}
	last := a[len(a)-1]
	if io >= last.IO {
		return last.ActiveDie, last.IdleDie
	}
	for i := 1; i < len(a); i++ {
		if io <= a[i].IO {
			t := (io - a[i-1].IO) / (a[i].IO - a[i-1].IO)
			return a[i-1].ActiveDie + t*(a[i].ActiveDie-a[i-1].ActiveDie),
				a[i-1].IdleDie + t*(a[i].IdleDie-a[i-1].IdleDie)
		}
	}
	return last.ActiveDie, last.IdleDie
}

// DiePower returns the total power of one die with nActive active banks at
// the given I/O activity: standby + n·BankPower + V(io). The I/O component
// is bank-count independent (a die's I/O runs at the stated activity
// regardless of how many banks feed it).
func (m *DRAMModel) DiePower(nActive int, io float64) float64 {
	act, idle := m.interp(io)
	if nActive <= 0 {
		return m.Scale * idle
	}
	v := (act - idle) - m.BankPower*float64(m.RefBanks)
	if v < 0 {
		v = 0
	}
	return m.Scale * (idle + m.BankPower*float64(nActive) + v)
}

// IdlePower returns the standby power of an idle die.
func (m *DRAMModel) IdlePower() float64 { return m.DiePower(0, m.Anchors[0].IO) }

// Loads distributes one die's power over its floorplan blocks for the
// given set of active banks and I/O activity. Idle-die standby power goes
// 50 % to the peripheral strip, 25 % to column paths, 25 % uniformly over
// the bank arrays (retention/refresh background).
func (m *DRAMModel) Loads(fp *floorplan.Floorplan, active []int, io float64) ([]Load, error) {
	for _, b := range active {
		if b < 0 || b >= fp.NumBanks {
			return nil, fmt.Errorf("powermap: active bank %d out of range for %s (%d banks)", b, fp.Name, fp.NumBanks)
		}
	}
	act, idle := m.interp(io)
	act *= m.Scale
	idle *= m.Scale
	periph := fp.KindBlocks(floorplan.Peripheral)
	colpath := fp.KindBlocks(floorplan.ColumnPath)
	if len(colpath) == 0 {
		// HMC-style dies fold the column circuitry into the peripheral
		// strip.
		colpath = periph
	}
	if len(periph) == 0 {
		return nil, fmt.Errorf("powermap: floorplan %s has no peripheral strip", fp.Name)
	}

	var loads []Load
	spread := func(blocks []floorplan.Block, total float64) {
		if total <= 0 || len(blocks) == 0 {
			return
		}
		var area float64
		for _, b := range blocks {
			area += b.Rect.Area()
		}
		for _, b := range blocks {
			loads = append(loads, Load{Rect: b.Rect, P: total * b.Rect.Area() / area})
		}
	}

	// Standby power, drawn by every die.
	arrays := fp.KindBlocks(floorplan.BankArray)
	spread(periph, idle*0.50)
	spread(colpath, idle*0.25)
	spread(arrays, idle*0.25)

	if len(active) == 0 {
		return loads, nil
	}

	ioP := (act - idle) - m.BankPower*float64(m.RefBanks)*m.Scale
	if ioP < 0 {
		ioP = 0
	}
	perBank := m.BankPower * m.Scale
	for _, b := range active {
		var arr, dec []floorplan.Block
		for _, bl := range fp.BankBlocks(b) {
			switch bl.Kind {
			case floorplan.BankArray:
				arr = append(arr, bl)
			case floorplan.RowDecoder:
				dec = append(dec, bl)
			}
		}
		if len(dec) == 0 {
			// Dies without per-bank decoders put it all in the array.
			spread(arr, perBank)
			continue
		}
		spread(arr, perBank*m.ArrayFrac)
		spread(dec, perBank*(1-m.ArrayFrac))
	}
	spread(periph, ioP*m.PeriphFrac)
	spread(colpath, ioP*(1-m.PeriphFrac))
	return loads, nil
}
