package powermap

import (
	"math"
	"testing"
	"testing/quick"

	"pdn3d/internal/floorplan"
)

// mod1 squashes an arbitrary quick-generated float into (0.05, 1).
func mod1(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0.5
	}
	return 0.05 + math.Mod(math.Abs(v), 0.95)
}

func ddr3() *floorplan.Floorplan {
	f, err := floorplan.DDR3Die(floorplan.DefaultDDR3())
	if err != nil {
		panic(err)
	}
	return f
}

func TestModelsValidate(t *testing.T) {
	for _, m := range []*DRAMModel{StackedDDR3Power(), WideIOPower(), HMCPower()} {
		if err := m.Validate(); err != nil {
			t.Errorf("Validate: %v", err)
		}
	}
}

func TestDiePowerMatchesTable5Anchors(t *testing.T) {
	m := StackedDDR3Power()
	cases := []struct {
		io           float64
		active, idle float64
	}{
		{1.00, 220.5, 30.0},
		{0.50, 175.5, 27.0},
		{0.25, 126.0, 27.3},
	}
	for _, c := range cases {
		if got := m.DiePower(2, c.io); math.Abs(got-c.active) > 1e-9 {
			t.Errorf("DiePower(2, %g) = %g, want %g (Table 5)", c.io, got, c.active)
		}
		if got := m.DiePower(0, c.io); math.Abs(got-c.idle) > 1e-9 {
			t.Errorf("DiePower(0, %g) = %g, want %g (Table 5)", c.io, got, c.idle)
		}
	}
}

func TestStackTotalsMatchTable5(t *testing.T) {
	m := StackedDDR3Power()
	cases := []struct {
		counts []int
		io     float64
		total  float64
	}{
		{[]int{0, 0, 0, 2}, 1.00, 310.5},
		{[]int{0, 0, 0, 2}, 0.50, 256.5},
		{[]int{0, 0, 2, 2}, 0.50, 405.0},
		{[]int{2, 2, 2, 2}, 0.25, 507.6},
	}
	for _, c := range cases {
		var total float64
		for _, n := range c.counts {
			total += m.DiePower(n, c.io)
		}
		// The paper's Table 5 itself carries ~1 % internal noise (its
		// active-die power differs slightly between rows at the same
		// activity), so compare at 1 % relative tolerance.
		if math.Abs(total-c.total) > 0.01*c.total {
			t.Errorf("state %v @%g%%: total = %g, want %g (Table 5)", c.counts, c.io*100, total, c.total)
		}
	}
}

func TestDiePowerMonotoneInIOAndBanks(t *testing.T) {
	m := StackedDDR3Power()
	// Monotonicity is claimed for active dies only: the measured standby
	// anchors wobble by a few hundred µW across activities.
	f := func(ioRaw, io2Raw float64, n1, n2 uint8) bool {
		io1 := mod1(ioRaw)
		io2 := mod1(io2Raw)
		if io1 > io2 {
			io1, io2 = io2, io1
		}
		b1, b2 := 1+int(n1%2), 1+int(n2%2)
		if b1 > b2 {
			b1, b2 = b2, b1
		}
		return m.DiePower(b1, io1) <= m.DiePower(b2, io1)+1e-9 &&
			m.DiePower(b2, io1) <= m.DiePower(b2, io2)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestInterpClampsOutsideAnchors(t *testing.T) {
	m := StackedDDR3Power()
	if got := m.DiePower(2, 0.01); math.Abs(got-126.0) > 1e-9 {
		t.Errorf("below range: %g, want clamp to 126.0", got)
	}
	if got := m.DiePower(2, 2.0); math.Abs(got-220.5) > 1e-9 {
		t.Errorf("above range: %g, want clamp to 220.5", got)
	}
}

func TestLoadsConservePower(t *testing.T) {
	m := StackedDDR3Power()
	fp := ddr3()
	for _, tc := range []struct {
		active []int
		io     float64
	}{
		{nil, 1.0},
		{[]int{7, 5}, 1.0},
		{[]int{7}, 0.5},
		{[]int{0, 1}, 0.25},
	} {
		loads, err := m.Loads(fp, tc.active, tc.io)
		if err != nil {
			t.Fatalf("Loads(%v): %v", tc.active, err)
		}
		want := m.DiePower(len(tc.active), tc.io)
		if got := TotalPower(loads); math.Abs(got-want) > 1e-6 {
			t.Errorf("active=%v io=%g: loads sum %g, want %g", tc.active, tc.io, got, want)
		}
		for _, l := range loads {
			if l.P < 0 {
				t.Errorf("negative load %v", l)
			}
			if !fp.Outline.Intersect(l.Rect).Empty() == false {
				t.Errorf("load rect %v outside die", l.Rect)
			}
		}
	}
}

func TestLoadsActiveBankGetsThePower(t *testing.T) {
	m := StackedDDR3Power()
	fp := ddr3()
	loads, err := m.Loads(fp, []int{7}, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	bank7, _ := fp.BankArrayRect(7)
	bank0, _ := fp.BankArrayRect(0)
	var p7, p0 float64
	for _, l := range loads {
		if l.Rect == bank7 {
			p7 += l.P
		}
		if l.Rect == bank0 {
			p0 += l.P
		}
	}
	if p7 <= p0 {
		t.Errorf("active bank 7 power %g should exceed idle bank 0 power %g", p7, p0)
	}
	if p7 < 10 {
		t.Errorf("active bank power %g mW implausibly small", p7)
	}
}

func TestLoadsRejectsBadBank(t *testing.T) {
	m := StackedDDR3Power()
	if _, err := m.Loads(ddr3(), []int{99}, 1.0); err == nil {
		t.Error("want error for out-of-range bank")
	}
}

func TestWideIOBelowHMCPower(t *testing.T) {
	w, h, d := WideIOPower(), HMCPower(), StackedDDR3Power()
	if !(w.DiePower(2, 1) < d.DiePower(2, 1) && d.DiePower(2, 1) < h.DiePower(2, 1)) {
		t.Errorf("power ordering WideIO < DDR3 < HMC violated: %g %g %g",
			w.DiePower(2, 1), d.DiePower(2, 1), h.DiePower(2, 1))
	}
}

func TestHMCLoadsWithoutColumnPath(t *testing.T) {
	fp, err := floorplan.HMCDie(floorplan.DefaultHMC())
	if err != nil {
		t.Fatal(err)
	}
	m := HMCPower()
	loads, err := m.Loads(fp, []int{0, 4}, 1.0)
	if err != nil {
		t.Fatalf("Loads: %v", err)
	}
	want := m.DiePower(2, 1.0)
	if got := TotalPower(loads); math.Abs(got-want) > 1e-6 {
		t.Errorf("loads sum %g, want %g", got, want)
	}
}

func TestLogicModels(t *testing.T) {
	fp, err := floorplan.T2Die(floorplan.DefaultT2())
	if err != nil {
		t.Fatal(err)
	}
	m := T2Power(12000)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	loads, err := m.Loads(fp)
	if err != nil {
		t.Fatal(err)
	}
	if got := TotalPower(loads); math.Abs(got-12000) > 1e-6 {
		t.Errorf("logic loads sum %g, want 12000", got)
	}
}

func TestLogicModelRedistributesMissingKinds(t *testing.T) {
	fp, err := floorplan.HMCLogicDie(floorplan.DefaultHMCLogic())
	if err != nil {
		t.Fatal(err)
	}
	// T2 model on HMC logic floorplan: no Cache blocks exist, their share
	// must flow to the present kinds, conserving total power.
	m := T2Power(5000)
	loads, err := m.Loads(fp)
	if err != nil {
		t.Fatal(err)
	}
	if got := TotalPower(loads); math.Abs(got-5000) > 1e-6 {
		t.Errorf("loads sum %g, want 5000", got)
	}
}

func TestLogicModelValidate(t *testing.T) {
	bad := &LogicModel{Total: 100, CoreFrac: 0.5, CacheFrac: 0.1, UncoreFrac: 0.1}
	if err := bad.Validate(); err == nil {
		t.Error("fractions not summing to 1: want error")
	}
	neg := &LogicModel{Total: -5, CoreFrac: 1}
	if err := neg.Validate(); err == nil {
		t.Error("negative power: want error")
	}
}
