package exp

import (
	"fmt"

	"pdn3d/internal/bench3d"
	"pdn3d/internal/irdrop"
	"pdn3d/internal/report"
	"pdn3d/internal/rmesh"
)

// CrowdingStudy reports DC current crowding over the vertical supply
// branches — the per-TSV current imbalance behind the paper's §3.2
// discussion (its reference [6] models exactly this effect): few or badly
// placed TSVs concentrate the supply current in individual vias.
func (r *Runner) CrowdingStudy() (*report.Table, error) {
	defer r.span("exp/crowding")()
	b, err := bench3d.StackedDDR3Off()
	if err != nil {
		return nil, err
	}
	t := &report.Table{
		Title:  "TSV current crowding (off-chip stacked DDR3, 0-0-0-2)",
		Header: []string{"TSV count", "branch", "total (mA)", "peak (mA)", "mean (mA)", "crowding"},
	}
	tsvCounts := []int{15, 33, 120, 480}
	allStats, err := sweep(r, len(tsvCounts), func(i int) ([]irdrop.CrowdingStats, error) {
		spec := r.prepare(b.Spec)
		spec.TSVCount = tsvCounts[i]
		a, err := r.analyzer(spec, b.DRAMPower, nil)
		if err != nil {
			return nil, err
		}
		res, err := a.AnalyzeCounts(b.DefaultCounts, b.DefaultIO)
		if err != nil {
			return nil, err
		}
		return a.Crowding(res)
	})
	if err != nil {
		return nil, err
	}
	for i, tc := range tsvCounts {
		for _, s := range allStats[i] {
			if s.Kind != rmesh.LinkTSV && s.Kind != rmesh.LinkLanding {
				continue
			}
			t.AddRow(tc, s.Kind.String(),
				fmt.Sprintf("%.1f", s.TotalMA), fmt.Sprintf("%.2f", s.MaxMA),
				fmt.Sprintf("%.2f", s.MeanMA), fmt.Sprintf("%.2f", s.Crowding))
		}
	}
	t.Notes = append(t.Notes,
		"crowding = peak/mean branch current; 1.0 is perfectly balanced",
		"few TSVs concentrate the supply current in individual vias (paper sec 3.2 / ref [6])")
	return t, nil
}
