package exp

import (
	"flag"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"pdn3d/internal/report"
)

// update rewrites the golden tables instead of comparing against them:
//
//	go test ./internal/exp -run TestGoldenTables -update
var update = flag.Bool("update", false, "rewrite the golden tables under testdata/golden")

// Golden comparison tolerance (see EXPERIMENTS.md): numeric cells match
// within 0.5 % relative plus a small absolute floor that absorbs
// rounding of near-zero percentages; everything else must be identical.
const (
	goldenRelTol = 0.005
	goldenAbsTol = 0.02
)

type goldenCase struct {
	id   string
	slow bool // skipped under -short
	run  func(r *Runner) (*report.Table, error)
}

// goldenTableCases lists the paper tables locked down by golden files.
// All run on the shared coarse test runner (pitch 0.5 mm, 3000 requests),
// so the numbers differ from the paper's full-fidelity ones; the goldens
// lock the reproduction against regressions, not against the paper.
func goldenTableCases() []goldenCase {
	return []goldenCase{
		{id: "table2", run: func(r *Runner) (*report.Table, error) { return r.Table2() }},
		{id: "table3", run: func(r *Runner) (*report.Table, error) { return r.Table3() }},
		{id: "table4", run: func(r *Runner) (*report.Table, error) { return r.Table4() }},
		{id: "table5", run: func(r *Runner) (*report.Table, error) { return r.Table5() }},
		{id: "table6", slow: true, run: func(r *Runner) (*report.Table, error) {
			t, _, err := r.Table6()
			return t, err
		}},
		{id: "table8", run: func(r *Runner) (*report.Table, error) { return r.Table8() }},
		{id: "table9", slow: true, run: func(r *Runner) (*report.Table, error) { return r.Table9("ddr3-off") }},
	}
}

func TestGoldenTables(t *testing.T) {
	for _, tc := range goldenTableCases() {
		tc := tc
		t.Run(tc.id, func(t *testing.T) {
			if tc.slow && testing.Short() {
				t.Skip("slow experiment")
			}
			tab, err := tc.run(runner())
			if err != nil {
				t.Fatal(err)
			}
			got := tab.String()
			path := filepath.Join("testdata", "golden", tc.id+".txt")
			if *update {
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden table (regenerate with -update): %v", err)
			}
			diffTables(t, tc.id, string(want), got)
		})
	}
}

// diffTables compares two rendered tables token by token, reporting
// every mismatched cell with its line so a failure reads as a diff.
func diffTables(t *testing.T, id, want, got string) {
	t.Helper()
	wl := strings.Split(strings.TrimRight(want, "\n"), "\n")
	gl := strings.Split(strings.TrimRight(got, "\n"), "\n")
	if len(wl) != len(gl) {
		t.Fatalf("%s: table shape changed: golden has %d lines, got %d\n--- golden ---\n%s\n--- got ---\n%s",
			id, len(wl), len(gl), want, got)
	}
	for i := range wl {
		wf, gf := strings.Fields(wl[i]), strings.Fields(gl[i])
		if len(wf) != len(gf) {
			t.Errorf("%s line %d: cell layout changed\n  golden: %s\n  got:    %s", id, i+1, wl[i], gl[i])
			continue
		}
		for j := range wf {
			if tokensMatch(wf[j], gf[j]) {
				continue
			}
			t.Errorf("%s line %d, cell token %d: golden %q vs got %q (numeric tolerance %.1f%% rel + %.2g abs)\n  golden: %s\n  got:    %s",
				id, i+1, j+1, wf[j], gf[j], goldenRelTol*100, goldenAbsTol, wl[i], gl[i])
		}
	}
}

// tokensMatch accepts identical tokens, or two numeric tokens within the
// golden tolerance after stripping table decorations.
func tokensMatch(w, g string) bool {
	if w == g {
		return true
	}
	wv, wok := goldenNumber(w)
	gv, gok := goldenNumber(g)
	if !wok || !gok {
		return false
	}
	diff := math.Abs(wv - gv)
	scale := math.Max(math.Abs(wv), math.Abs(gv))
	return diff <= goldenRelTol*scale+goldenAbsTol
}

// goldenNumber parses a table cell token as a number, tolerating the
// decorations the renderers attach: parentheses, %, unit suffixes.
func goldenNumber(tok string) (float64, bool) {
	tok = strings.TrimPrefix(tok, "(")
	tok = strings.TrimSuffix(tok, ")")
	tok = strings.TrimSuffix(tok, "%")
	for _, unit := range []string{"mV", "mA", "us", "x"} {
		tok = strings.TrimSuffix(tok, unit)
	}
	v, err := strconv.ParseFloat(tok, 64)
	return v, err == nil
}
