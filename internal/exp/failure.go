package exp

import (
	"fmt"

	"pdn3d/internal/bench3d"
	"pdn3d/internal/report"
)

// TSVFailureStudy measures IR-drop resilience against PG TSV faults: a
// fraction of the via stacks is opened (manufacturing or wear-out faults)
// and the worst-case IR drop re-analyzed. A redundancy-style view of the
// §3.2 saturation result — designs past the saturation knee tolerate
// substantial TSV loss.
func (r *Runner) TSVFailureStudy() (*report.Table, error) {
	return r.TSVFailureStudyAt([]int{33, 120}, []int{0, 10, 25, 50})
}

// TSVFailureStudyAt is TSVFailureStudy over explicit TSV counts and
// failure percentages. Infeasible points (100 % failure severs the stack
// from its supply and the nodal system goes singular) render as ERR cells
// rather than dropping the table; the table is returned alongside the
// aggregated cell error so callers can print it and still fail the run.
func (r *Runner) TSVFailureStudyAt(tsvCounts, failPcts []int) (*report.Table, error) {
	defer r.span("exp/tsv-failure")()
	b, err := bench3d.StackedDDR3Off()
	if err != nil {
		return nil, err
	}
	t := &report.Table{
		Title:  "TSV failure resilience (off-chip stacked DDR3, 0-0-0-2)",
		Header: []string{"TSV count", "failed", "alive", "max IR (mV)", "vs healthy"},
	}
	type point struct {
		tc, failPct int
	}
	var points []point
	for _, tc := range tsvCounts {
		for _, failPct := range failPcts {
			points = append(points, point{tc, failPct})
		}
	}
	type outcome struct {
		maxIR float64
		alive int
	}
	results, cellErrs, sweepErr := sweepCells(r, len(points), func(i int) (outcome, error) {
		p := points[i]
		spec := r.prepare(b.Spec)
		spec.TSVCount = p.tc
		nFail := p.tc * p.failPct / 100
		if nFail > 0 {
			// Deterministic spread: fail every stride-th via stack.
			spec.FailedTSVs = map[int]bool{}
			stride := 1
			if nFail < p.tc {
				stride = p.tc / nFail
			}
			for i := 0; i < nFail; i++ {
				spec.FailedTSVs[(i*stride)%p.tc] = true
			}
		}
		a, err := r.analyzer(spec, b.DRAMPower, nil)
		if err != nil {
			return outcome{}, err
		}
		res, err := a.AnalyzeCounts(b.DefaultCounts, b.DefaultIO)
		if err != nil {
			return outcome{}, err
		}
		return outcome{maxIR: res.MaxIR, alive: p.tc - len(spec.FailedTSVs)}, nil
	})
	var healthy float64
	for i, p := range points {
		if cellErrs[i] != nil {
			t.AddRow(p.tc, fmt.Sprintf("%d%%", p.failPct), p.tc-p.tc*p.failPct/100, "ERR", "-")
			continue
		}
		rel := "-"
		if p.failPct == 0 {
			healthy = results[i].maxIR
		} else {
			rel = report.Pct(healthy, results[i].maxIR)
		}
		t.AddRow(p.tc, fmt.Sprintf("%d%%", p.failPct), results[i].alive,
			results[i].maxIR*1000, rel)
	}
	t.Notes = append(t.Notes,
		"failures open whole via stacks (landing included); deterministic spread pattern",
		"designs past the Figure 5 saturation knee tolerate substantial TSV loss")
	r.Cfg.Obs.Counter("exp.cells_failed").Add(int64(countErrs(cellErrs)))
	return t, sweepErr
}

func countErrs(errs []error) int {
	n := 0
	for _, e := range errs {
		if e != nil {
			n++
		}
	}
	return n
}
