package exp

import (
	"fmt"

	"pdn3d/internal/bench3d"
	"pdn3d/internal/report"
)

// TSVFailureStudy measures IR-drop resilience against PG TSV faults: a
// fraction of the via stacks is opened (manufacturing or wear-out faults)
// and the worst-case IR drop re-analyzed. A redundancy-style view of the
// §3.2 saturation result — designs past the saturation knee tolerate
// substantial TSV loss.
func (r *Runner) TSVFailureStudy() (*report.Table, error) {
	b, err := bench3d.StackedDDR3Off()
	if err != nil {
		return nil, err
	}
	t := &report.Table{
		Title:  "TSV failure resilience (off-chip stacked DDR3, 0-0-0-2)",
		Header: []string{"TSV count", "failed", "alive", "max IR (mV)", "vs healthy"},
	}
	for _, tc := range []int{33, 120} {
		var healthy float64
		for _, failPct := range []int{0, 10, 25, 50} {
			spec := r.prepare(b.Spec)
			spec.TSVCount = tc
			nFail := tc * failPct / 100
			if nFail > 0 {
				// Deterministic spread: fail every stride-th via stack.
				spec.FailedTSVs = map[int]bool{}
				stride := tc / nFail
				for i := 0; i < nFail; i++ {
					spec.FailedTSVs[(i*stride)%tc] = true
				}
			}
			a, err := r.analyzer(spec, b.DRAMPower, nil)
			if err != nil {
				return nil, err
			}
			res, err := a.AnalyzeCounts(b.DefaultCounts, b.DefaultIO)
			if err != nil {
				return nil, err
			}
			rel := "-"
			if failPct == 0 {
				healthy = res.MaxIR
			} else {
				rel = report.Pct(healthy, res.MaxIR)
			}
			t.AddRow(tc, fmt.Sprintf("%d%%", failPct), tc-len(spec.FailedTSVs),
				res.MaxIRmV(), rel)
		}
	}
	t.Notes = append(t.Notes,
		"failures open whole via stacks (landing included); deterministic spread pattern",
		"designs past the Figure 5 saturation knee tolerate substantial TSV loss")
	return t, nil
}
