package exp

import (
	"sync"
	"testing"

	"pdn3d/internal/bench3d"
	"pdn3d/internal/pdn"
)

func baseSpec(t testing.TB) *pdn.Spec {
	t.Helper()
	b, err := bench3d.StackedDDR3Off()
	if err != nil {
		t.Fatal(err)
	}
	return b.Spec.Clone()
}

// Distinct specs must never share a key. Each mutation below either changes
// a field the old "%v"-joined key dropped or formatted lossily, or shifts
// content between adjacent fields in a way delimiter-joined formatting can
// absorb.
func TestSpecKeyDistinguishesSpecs(t *testing.T) {
	base := baseSpec(t)
	muts := []struct {
		name string
		mut  func(*pdn.Spec)
	}{
		// Lost by the old key entirely.
		{"WiresPerDie", func(s *pdn.Spec) { s.WiresPerDie = 16 }},
		// Truncated by the old %.3f: both round to "0.200".
		{"MeshPitch tiny delta", func(s *pdn.Spec) { s.MeshPitch = base.EffMeshPitch() + 1e-4 }},
		// Field-content / delimiter ambiguity.
		{"Name with delimiter", func(s *pdn.Spec) { s.Name = s.Name + "|33" }},
		{"NumDRAM", func(s *pdn.Spec) { s.NumDRAM = 2 }},
		{"Usage", func(s *pdn.Spec) { s.Usage["M2"] *= 1.0001 }},
		{"TSVCount", func(s *pdn.Spec) { s.TSVCount = 34 }},
		{"TSVStyle", func(s *pdn.Spec) { s.TSVStyle = pdn.CenterTSV }},
		{"Bonding", func(s *pdn.Spec) { s.Bonding = pdn.F2F }},
		{"RDL", func(s *pdn.Spec) { s.RDL = pdn.RDLInterface }},
		{"WireBond", func(s *pdn.Spec) { s.WireBond = true }},
		{"AlignTSV", func(s *pdn.Spec) { s.AlignTSV = true }},
		{"FailedTSVs", func(s *pdn.Spec) { s.FailedTSVs = map[int]bool{3: true} }},
	}
	baseKey := specKey(base, false)
	seen := map[string]string{"base": baseKey}
	for _, m := range muts {
		s := base.Clone()
		m.mut(s)
		k := specKey(s, false)
		for prev, pk := range seen {
			if k == pk {
				t.Errorf("spec mutated by %q collides with %q:\n%s", m.name, prev, k)
			}
		}
		seen[m.name] = k
	}
	if k := specKey(base, true); k == baseKey {
		t.Error("withLogic must change the key")
	}
}

// Identical specs (independent clones) must share a key, or caching breaks.
func TestSpecKeyStableAcrossClones(t *testing.T) {
	base := baseSpec(t)
	base.FailedTSVs = map[int]bool{7: true, 2: true, 19: true}
	c1, c2 := base.Clone(), base.Clone()
	for i := 0; i < 20; i++ { // map iteration order must not leak in
		if specKey(c1, true) != specKey(c2, true) {
			t.Fatal("clones produced different keys")
		}
	}
}

// Hammer the Runner's caches from many goroutines: every distinct design
// must be built exactly once, and all callers must share the one analyzer.
// Run with -race.
func TestRunnerConcurrentExactlyOnce(t *testing.T) {
	b, err := bench3d.StackedDDR3Off()
	if err != nil {
		t.Fatal(err)
	}
	r := NewRunner(Config{MeshPitch: 0.5})
	specs := make([]*pdn.Spec, 3)
	for i, tc := range []int{15, 33, 120} {
		s := r.prepare(b.Spec)
		s.TSVCount = tc
		specs[i] = s
	}
	const goroutinesPerSpec = 12
	got := make([][]interface{}, len(specs))
	for i := range got {
		got[i] = make([]interface{}, goroutinesPerSpec)
	}
	var wg sync.WaitGroup
	for si, s := range specs {
		for g := 0; g < goroutinesPerSpec; g++ {
			wg.Add(1)
			go func(si, g int, s *pdn.Spec) {
				defer wg.Done()
				a, err := r.analyzer(s, b.DRAMPower, nil)
				if err != nil {
					t.Error(err)
					return
				}
				// Drive a real analysis through the shared analyzer too.
				if _, err := a.AnalyzeCounts(b.DefaultCounts, b.DefaultIO); err != nil {
					t.Error(err)
					return
				}
				got[si][g] = a
			}(si, g, s)
		}
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	for si := range got {
		for g := 1; g < goroutinesPerSpec; g++ {
			if got[si][g] != got[si][0] {
				t.Errorf("spec %d: goroutine %d got a different analyzer — built more than once", si, g)
			}
		}
	}
	if n := r.analyzers.Len(); n != len(specs) {
		t.Errorf("runner built %d analyzers for %d distinct designs", n, len(specs))
	}
	// Each design's (state, io) point must have been solved exactly once in
	// total, despite 12 concurrent callers.
	for si := range specs {
		a := got[si][0].(interface{ Solves() int })
		if n := a.Solves(); n != 1 {
			t.Errorf("spec %d: %d solves for one distinct (state, io) key", si, n)
		}
	}
}
