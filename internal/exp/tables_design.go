package exp

import (
	"fmt"

	"pdn3d/internal/bench3d"
	"pdn3d/internal/cost"
	"pdn3d/internal/irdrop"
	"pdn3d/internal/memstate"
	"pdn3d/internal/pdn"
	"pdn3d/internal/report"
)

// Table1 renders the benchmark specification summary (paper Table 1).
func (r *Runner) Table1() (*report.Table, error) {
	defer r.span("exp/table1")()
	t := &report.Table{
		Title:  "Table 1: benchmark specifications",
		Header: []string{"benchmark", "dies", "die (mm)", "banks/die", "stand-alone", "host die", "VDD (V)"},
	}
	bs, err := bench3d.All()
	if err != nil {
		return nil, err
	}
	for _, b := range bs {
		host := "-"
		standalone := "yes"
		if b.Spec.OnLogic {
			standalone = "no"
			host = fmt.Sprintf("%s %.1fx%.1f", b.Spec.Logic.Name, b.Spec.Logic.Outline.W(), b.Spec.Logic.Outline.H())
		}
		t.AddRow(b.Name, b.Spec.NumDRAM,
			fmt.Sprintf("%.1fx%.1f", b.Spec.DRAM.Outline.W(), b.Spec.DRAM.Outline.H()),
			b.Spec.DRAM.NumBanks, standalone, host, b.Spec.DRAMTech.VDD)
	}
	return t, nil
}

// MetalUsageStudy reproduces the §3 opening observation: doubling the PDN
// metal usage cuts the stacked-DDR3 IR drop by more than 40 %.
func (r *Runner) MetalUsageStudy() (*report.Table, error) {
	defer r.span("exp/metal-usage")()
	b, err := bench3d.StackedDDR3Off()
	if err != nil {
		return nil, err
	}
	base := r.prepare(b.Spec)
	dbl := base.Clone()
	dbl.Usage["M2"] = 2 * base.Usage["M2"]
	dbl.Usage["M3"] = 2 * base.Usage["M3"]

	t := &report.Table{
		Title:  "Sec. 3: PDN metal usage impact (off-chip stacked DDR3, 0-0-0-2)",
		Header: []string{"PDN metal", "M2/M3 usage", "max IR (mV)", "vs baseline"},
	}
	specs := []*pdn.Spec{base, dbl}
	results, err := sweep(r, len(specs), func(i int) (*irdrop.Result, error) {
		a, err := r.analyzer(specs[i], b.DRAMPower, nil)
		if err != nil {
			return nil, err
		}
		return a.AnalyzeCounts(b.DefaultCounts, b.DefaultIO)
	})
	if err != nil {
		return nil, err
	}
	for i, res := range results {
		label, rel := "1x", "-"
		if i > 0 {
			label = "2x"
			rel = report.Pct(results[0].MaxIR, res.MaxIR)
		}
		t.AddRow(label, fmt.Sprintf("%.0f%%/%.0f%%", specs[i].Usage["M2"]*100, specs[i].Usage["M3"]*100),
			res.MaxIRmV(), rel)
	}
	t.Notes = append(t.Notes, "paper: 2x PDN metal reduces IR drop by more than 40%")
	return t, nil
}

// MountingStudy reproduces §3.1: mounting the stack on the logic die
// couples the PDNs and raises the DRAM IR drop from ~30 to ~64 mV under a
// ~50 mV logic noise.
func (r *Runner) MountingStudy() (*report.Table, error) {
	defer r.span("exp/mounting")()
	off, err := bench3d.StackedDDR3Off()
	if err != nil {
		return nil, err
	}
	on, err := bench3d.StackedDDR3On()
	if err != nil {
		return nil, err
	}
	onSpec := r.prepare(on.Spec)
	onSpec.DedicatedTSV = false

	aOff, err := r.analyzer(r.prepare(off.Spec), off.DRAMPower, nil)
	if err != nil {
		return nil, err
	}
	rOff, err := aOff.AnalyzeCounts(off.DefaultCounts, off.DefaultIO)
	if err != nil {
		return nil, err
	}
	aOn, err := r.analyzer(onSpec, on.DRAMPower, on.LogicPower)
	if err != nil {
		return nil, err
	}
	rOn, err := aOn.AnalyzeCounts(on.DefaultCounts, on.DefaultIO)
	if err != nil {
		return nil, err
	}

	t := &report.Table{
		Title:  "Sec. 3.1: stand-alone vs. mounted on the logic die (stacked DDR3, 0-0-0-2)",
		Header: []string{"design", "DRAM max IR (mV)", "logic noise (mV)"},
	}
	t.AddRow("off-chip", rOff.MaxIRmV(), "-")
	t.AddRow("on-chip (coupled)", rOn.MaxIRmV(), rOn.LogicIRmV())
	t.Notes = append(t.Notes, "paper: 30.03 -> 64.41 mV with 50.05 mV logic noise")
	return t, nil
}

// Table2 compares the TSV-location and RDL options of Figure 6 on the
// off-chip stacked DDR3 (paper Table 2).
func (r *Runner) Table2() (*report.Table, error) {
	defer r.span("exp/table2")()
	b, err := bench3d.StackedDDR3Off()
	if err != nil {
		return nil, err
	}
	cm := cost.Default()
	options := []struct {
		name  string
		mut   func(*pdn.Spec)
		paper float64
	}{
		{"(a) edge TSV", func(s *pdn.Spec) {}, 30.03},
		{"(b) center TSV", func(s *pdn.Spec) { s.TSVStyle = pdn.CenterTSV }, 50.76},
		{"(c) edge TSV + RDL", func(s *pdn.Spec) { s.RDL = pdn.RDLInterface }, 38.46},
		{"(d) center TSV + RDL", func(s *pdn.Spec) { s.TSVStyle = pdn.CenterTSV; s.RDL = pdn.RDLInterface }, 49.36},
	}
	t := &report.Table{
		Title:  "Table 2: TSV location and RDL options (off-chip stacked DDR3)",
		Header: []string{"design option", "max IR (mV)", "paper (mV)", "cost"},
	}
	type row struct {
		ir   float64
		cost float64
	}
	rows, err := sweep(r, len(options), func(i int) (row, error) {
		spec := r.prepare(b.Spec)
		options[i].mut(spec)
		a, err := r.analyzer(spec, b.DRAMPower, nil)
		if err != nil {
			return row{}, err
		}
		res, err := a.AnalyzeCounts(b.DefaultCounts, b.DefaultIO)
		if err != nil {
			return row{}, err
		}
		c, err := cm.Total(spec)
		if err != nil {
			return row{}, err
		}
		return row{ir: res.MaxIRmV(), cost: c}, nil
	})
	if err != nil {
		return nil, err
	}
	for i, o := range options {
		t.AddRow(o.name, rows[i].ir, o.paper, fmt.Sprintf("%.3f", rows[i].cost))
	}
	return t, nil
}

// Table3 measures the impact of dedicated TSVs and backside wire bonding
// (paper Table 3).
func (r *Runner) Table3() (*report.Table, error) {
	defer r.span("exp/table3")()
	off, err := bench3d.StackedDDR3Off()
	if err != nil {
		return nil, err
	}
	on, err := bench3d.StackedDDR3On()
	if err != nil {
		return nil, err
	}
	rows := []struct {
		name      string
		bench     *bench3d.Benchmark
		dedicated bool
		paperBase float64
		paperWB   float64
	}{
		{"on-chip, no dedicated", on, false, 64.41, 30.04},
		{"on-chip, dedicated", on, true, 31.18, 27.18},
		{"off-chip", off, false, 30.03, 27.10},
	}
	t := &report.Table{
		Title:  "Table 3: impact of dedicated TSVs and wire bonding (stacked DDR3)",
		Header: []string{"design", "baseline (mV)", "wire-bonded (mV)", "delta", "paper"},
	}
	irs, err := sweep(r, len(rows), func(i int) ([2]float64, error) {
		row := rows[i]
		spec := r.prepare(row.bench.Spec)
		spec.DedicatedTSV = row.dedicated && spec.OnLogic
		wbSpec := spec.Clone()
		wbSpec.WireBond = true
		var logic = row.bench.LogicPower
		if !spec.OnLogic {
			logic = nil
		}
		var out [2]float64
		for j, s := range []*pdn.Spec{spec, wbSpec} {
			a, err := r.analyzer(s, row.bench.DRAMPower, logic)
			if err != nil {
				return out, err
			}
			res, err := a.AnalyzeCounts(row.bench.DefaultCounts, row.bench.DefaultIO)
			if err != nil {
				return out, err
			}
			out[j] = res.MaxIRmV()
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	for i, row := range rows {
		t.AddRow(row.name, irs[i][0], irs[i][1], report.Pct(irs[i][0], irs[i][1]),
			fmt.Sprintf("%.2f -> %.2f", row.paperBase, row.paperWB))
	}
	return t, nil
}

// Table4 studies intra-pair overlapping under F2F bonding for the Figure 8
// placement cases (paper Table 4). Two-die interleaving states share the
// bus, so each die runs at 50 % I/O activity.
func (r *Runner) Table4() (*report.Table, error) {
	defer r.span("exp/table4")()
	b, err := bench3d.StackedDDR3Off()
	if err != nil {
		return nil, err
	}
	f2b := r.prepare(b.Spec)
	f2f := f2b.Clone()
	f2f.Bonding = pdn.F2F

	cases := []struct {
		name    string
		state   memstate.State
		overlap string
		paper   [2]float64 // F2B, F2F+B2B
	}{
		{"0-0-2a-2a", memstate.MustPairState("", "", memstate.PairA, memstate.PairA), "yes", [2]float64{28.14, 27.21}},
		{"0-0-2b-2b", memstate.MustPairState("", "", memstate.PairB, memstate.PairB), "yes", [2]float64{18.06, 17.42}},
		{"0-2a-0-2a", memstate.MustPairState("", memstate.PairA, "", memstate.PairA), "no", [2]float64{27.32, 15.24}},
		{"2a-0-0-2a", memstate.MustPairState(memstate.PairA, "", "", memstate.PairA), "no", [2]float64{26.51, 15.24}},
		{"0-0-2b-2a", memstate.MustPairState("", "", memstate.PairB, memstate.PairA), "no", [2]float64{27.38, 17.98}},
		{"0-0-2c-2a", memstate.MustPairState("", "", memstate.PairC, memstate.PairA), "no", [2]float64{27.04, 17.10}},
		{"0-0-2d-2a", memstate.MustPairState("", "", memstate.PairD, memstate.PairA), "no", [2]float64{26.86, 15.27}},
	}
	t := &report.Table{
		Title:  "Table 4: intra-pair overlapping under F2F (stacked DDR3, two-bank interleaving)",
		Header: []string{"memory state", "overlap", "F2B (mV)", "F2F+B2B (mV)", "delta", "paper F2B/F2F"},
	}
	type pair struct{ b, f *irdrop.Result }
	results, err := sweep(r, len(cases), func(i int) (pair, error) {
		c := cases[i]
		if got := memstate.IntraPairOverlap(c.state); got != (c.overlap == "yes") {
			return pair{}, fmt.Errorf("exp: case %s overlap classification mismatch", c.name)
		}
		aB, err := r.analyzer(f2b, b.DRAMPower, nil)
		if err != nil {
			return pair{}, err
		}
		rB, err := aB.Analyze(c.state, 0.5)
		if err != nil {
			return pair{}, err
		}
		aF, err := r.analyzer(f2f, b.DRAMPower, nil)
		if err != nil {
			return pair{}, err
		}
		rF, err := aF.Analyze(c.state, 0.5)
		if err != nil {
			return pair{}, err
		}
		return pair{b: rB, f: rF}, nil
	})
	if err != nil {
		return nil, err
	}
	for i, c := range cases {
		rB, rF := results[i].b, results[i].f
		t.AddRow(c.name, c.overlap, rB.MaxIRmV(), rF.MaxIRmV(),
			report.Pct(rB.MaxIR, rF.MaxIR),
			fmt.Sprintf("%.2f/%.2f", c.paper[0], c.paper[1]))
	}
	return t, nil
}

// Table5 measures memory-state and I/O-activity impact on power and IR
// drop for F2B and F2F off-chip stacked DDR3 (paper Table 5).
func (r *Runner) Table5() (*report.Table, error) {
	defer r.span("exp/table5")()
	b, err := bench3d.StackedDDR3Off()
	if err != nil {
		return nil, err
	}
	f2b := r.prepare(b.Spec)
	f2f := f2b.Clone()
	f2f.Bonding = pdn.F2F

	rows := []struct {
		counts []int
		io     float64
		paper  [2]float64
	}{
		{[]int{0, 0, 0, 2}, 1.00, [2]float64{30.03, 17.18}},
		{[]int{2, 0, 0, 0}, 1.00, [2]float64{26.26, 14.61}},
		{[]int{0, 0, 0, 2}, 0.50, [2]float64{26.42, 15.15}},
		{[]int{0, 0, 2, 2}, 0.50, [2]float64{28.14, 27.21}},
		{[]int{0, 0, 0, 2}, 0.25, [2]float64{22.93, 13.23}},
		{[]int{2, 2, 2, 2}, 0.25, [2]float64{24.82, 23.57}},
	}
	t := &report.Table{
		Title:  "Table 5: memory state and I/O activity (off-chip stacked DDR3)",
		Header: []string{"state", "IO/die", "active die (mW)", "total (mW)", "F2B (mV)", "F2F+B2B (mV)", "paper F2B/F2F"},
	}
	type pair struct {
		st     memstate.State
		rB, rF *irdrop.Result
	}
	results, err := sweep(r, len(rows), func(i int) (pair, error) {
		row := rows[i]
		st, err := memstate.FromCounts(row.counts, memstate.WorstCaseEdge(b.Spec.DRAM.NumBanks))
		if err != nil {
			return pair{}, err
		}
		aB, err := r.analyzer(f2b, b.DRAMPower, nil)
		if err != nil {
			return pair{}, err
		}
		rB, err := aB.Analyze(st, row.io)
		if err != nil {
			return pair{}, err
		}
		aF, err := r.analyzer(f2f, b.DRAMPower, nil)
		if err != nil {
			return pair{}, err
		}
		rF, err := aF.Analyze(st, row.io)
		if err != nil {
			return pair{}, err
		}
		return pair{st: st, rB: rB, rF: rF}, nil
	})
	if err != nil {
		return nil, err
	}
	for i, row := range rows {
		res := results[i]
		t.AddRow(res.st.String(), fmt.Sprintf("%.0f%%", row.io*100),
			fmt.Sprintf("%.1f", res.rB.ActiveDiePower), fmt.Sprintf("%.1f", res.rB.TotalPower),
			res.rB.MaxIRmV(), res.rF.MaxIRmV(),
			fmt.Sprintf("%.2f/%.2f", row.paper[0], row.paper[1]))
	}
	return t, nil
}
