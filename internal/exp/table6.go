package exp

import (
	"fmt"

	"pdn3d/internal/bench3d"
	"pdn3d/internal/memctrl"
	"pdn3d/internal/report"
)

// Table6IRLimitV is the paper's IR-drop constraint for the IR-aware
// policies (24 mV).
const Table6IRLimitV = 0.024

// Table6Result carries the three policy runs behind Table 6.
type Table6Result struct {
	Standard, IRFCFS, IRDistR *memctrl.Result
	// EffLimitV is the constraint actually applied (24 mV, or the
	// coarse-mesh feasibility floor when higher).
	EffLimitV float64
}

// Table6 compares the three read policies on the F2B off-chip stacked DDR3
// (paper Table 6): the JEDEC standard policy, the IR-drop-aware FCFS
// policy, and the IR-drop-aware distributed-read policy, both at a 24 mV
// constraint.
func (r *Runner) Table6() (*report.Table, *Table6Result, error) {
	defer r.span("exp/table6")()
	b, err := bench3d.StackedDDR3Off()
	if err != nil {
		return nil, nil, err
	}
	b.Spec = r.prepare(b.Spec)
	table, err := r.lutFor(b.Spec, b.DRAMPower, nil)
	if err != nil {
		return nil, nil, err
	}

	// The paper's 24 mV constraint, kept feasible when a coarsened mesh
	// shifts the LUT upward: a lone single-bank activation must fit or no
	// request can ever issue. At full fidelity the limit is exactly 24 mV.
	limit := Table6IRLimitV
	single := make([]int, b.Spec.NumDRAM)
	single[len(single)-1] = 1
	floor, err := table.MaxIR(single, 1.0)
	if err != nil {
		return nil, nil, err
	}
	if limit < floor*1.02 {
		limit = floor * 1.02
	}

	runs := []struct {
		policy memctrl.IRPolicy
		sched  memctrl.Scheduler
		limit  float64
	}{
		{memctrl.PolicyStandard, memctrl.FCFS, 0},
		{memctrl.PolicyIRAware, memctrl.FCFS, limit},
		{memctrl.PolicyIRAware, memctrl.DistR, limit},
	}
	results, err := sweep(r, len(runs), func(i int) (*memctrl.Result, error) {
		return r.policyRun(b, table, runs[i].policy, runs[i].sched, runs[i].limit)
	})
	if err != nil {
		return nil, nil, err
	}
	std, fcfs, distr := results[0], results[1], results[2]

	t := &report.Table{
		Title:  "Table 6: impact of architectural policy in stacked DDR3 (off-chip, F2B)",
		Header: []string{"metric", "Standard/FCFS", "IR-aware/FCFS", "IR-aware/DistR"},
	}
	t.AddRow("IR-drop constraint", "none", fmt.Sprintf("%.1fmV", limit*1000), fmt.Sprintf("%.1fmV", limit*1000))
	t.AddRow("Runtime (us)",
		fmt.Sprintf("%.2f", std.RuntimeUS),
		fmt.Sprintf("%.2f (%s)", fcfs.RuntimeUS, report.Pct(std.RuntimeUS, fcfs.RuntimeUS)),
		fmt.Sprintf("%.2f (%s)", distr.RuntimeUS, report.Pct(std.RuntimeUS, distr.RuntimeUS)))
	t.AddRow("Bandwidth (read/clk)",
		fmt.Sprintf("%.3f", std.Bandwidth),
		fmt.Sprintf("%.3f (%s)", fcfs.Bandwidth, report.Pct(std.Bandwidth, fcfs.Bandwidth)),
		fmt.Sprintf("%.3f (%s)", distr.Bandwidth, report.Pct(std.Bandwidth, distr.Bandwidth)))
	t.AddRow("Max IR drop (mV)",
		fmt.Sprintf("%.2f", std.MaxIR*1000),
		fmt.Sprintf("%.2f (%s)", fcfs.MaxIR*1000, report.Pct(std.MaxIR, fcfs.MaxIR)),
		fmt.Sprintf("%.2f (%s)", distr.MaxIR*1000, report.Pct(std.MaxIR, distr.MaxIR)))
	t.Notes = append(t.Notes,
		"paper: runtime 109.3 / 84.68 (-22.6%) / 75.85 (-30.6%) us",
		"paper: bandwidth 0.114 / 0.148 (+29.2%) / 0.165 (+44.2%) read/clk",
		"paper: max IR 30.03 / 23.98 (-20.2%) / 23.98 (-20.2%) mV")
	return t, &Table6Result{Standard: std, IRFCFS: fcfs, IRDistR: distr, EffLimitV: limit}, nil
}
