package exp

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"pdn3d/internal/obs"
)

// TestMetricsDeterministicAcrossWorkers locks the obs determinism
// contract end to end: the same workload at -workers=1 and -workers=8
// must produce byte-identical metric snapshots once wall-clock-derived
// data (timers, spans, info gauges, histogram sums) is stripped.
func TestMetricsDeterministicAcrossWorkers(t *testing.T) {
	snap := func(workers int) []byte {
		reg := obs.NewRegistry()
		r := NewRunner(Config{MeshPitch: 0.5, Requests: 3000, Workers: workers, Obs: reg})
		if _, err := r.Table2(); err != nil {
			t.Fatal(err)
		}
		if _, err := r.Figure5(); err != nil {
			t.Fatal(err)
		}
		b, err := json.MarshalIndent(reg.Snapshot().Deterministic(), "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	serial := snap(1)
	pooled := snap(8)
	if !bytes.Equal(serial, pooled) {
		t.Errorf("deterministic snapshots differ across worker counts:\n--- workers=1 ---\n%s\n--- workers=8 ---\n%s",
			serial, pooled)
	}
	// The snapshot must actually cover the instrumented layers, or the
	// comparison above proves nothing.
	for _, name := range []string{"exp.sweep.tasks_completed", "rmesh.builds", "irdrop.result_cache.misses"} {
		if !bytes.Contains(serial, []byte(name)) {
			t.Errorf("snapshot is missing %q:\n%s", name, serial)
		}
	}
}

// TestTSVFailureStudySingularMesh forces a singular nodal system (every
// PG TSV failed severs the stack from its supply) and checks that the
// failed cell renders as ERR, the healthy cells survive, and the error
// still reaches the caller so the CLI exits non-zero.
func TestTSVFailureStudySingularMesh(t *testing.T) {
	tab, err := runner().TSVFailureStudyAt([]int{33}, []int{0, 100})
	if err == nil {
		t.Fatal("100% TSV failure should surface a solve error")
	}
	if !strings.Contains(err.Error(), "1 of 2 cells failed") {
		t.Errorf("aggregated error should count failed cells, got: %v", err)
	}
	if tab == nil {
		t.Fatal("the partial table should be returned alongside the error")
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d, want 2 (healthy + failed)", len(tab.Rows))
	}
	if tab.Rows[0][3] == "ERR" {
		t.Errorf("healthy cell rendered as ERR: %v", tab.Rows[0])
	}
	if tab.Rows[1][3] != "ERR" {
		t.Errorf("singular cell should render as ERR, got: %v", tab.Rows[1])
	}
}
