package exp

import (
	"fmt"

	"pdn3d/internal/bench3d"
	"pdn3d/internal/cost"
	"pdn3d/internal/obs"
	"pdn3d/internal/opt"
	"pdn3d/internal/report"
)

// Table8 renders the cost model summary (paper Table 8).
func (r *Runner) Table8() (*report.Table, error) {
	defer r.span("exp/table8")()
	m := cost.Default()
	t := &report.Table{
		Title:  "Table 8: cost model summary",
		Header: []string{"solution", "abbr", "input range", "cost range"},
	}
	t.AddRow("M2 VDD usage", "M2", "10%-20%", fmt.Sprintf("%.3f-%.3f", 0.10*m.M2PerUsage, 0.20*m.M2PerUsage))
	t.AddRow("M3 VDD usage", "M3", "10%-40%", fmt.Sprintf("%.3f-%.3f", 0.10*m.M3PerUsage, 0.40*m.M3PerUsage))
	t.AddRow("Power TSV #", "TC", "15-480", fmt.Sprintf("%.3f-%.3f (sqrt)", m.TSVSqrt*3.873, m.TSVSqrt*21.909))
	t.AddRow("Dedicated TSV", "TD", "yes/no", fmt.Sprintf("%.2f/0", m.Dedicated))
	t.AddRow("Bonding style", "BD", "F2B/F2F", fmt.Sprintf("%.3f/%.3f", m.BondF2B, m.BondF2F))
	t.AddRow("RDL layer", "RL", "yes/no", fmt.Sprintf("%.2f/0", m.RDLCost))
	t.AddRow("Wire bonding", "WB", "yes/no", fmt.Sprintf("%.2f/0", m.WireBond))
	t.AddRow("TSV location", "TL", "C / E / D", fmt.Sprintf("0 / %.1fxTC / %.1fxTC", m.EdgeTSVFactor, m.DistributedTSVFactor))
	return t, nil
}

// Table9Alphas are the IR-cost exponents the paper reports.
var Table9Alphas = []float64{0, 0.3, 1}

// Table9 runs the cross-domain co-optimization for the named benchmark and
// reports the best options at each alpha plus the baseline (paper Table 9).
// It also reports the regression quality of §6.1.
func (r *Runner) Table9(benchName string) (*report.Table, error) {
	defer r.span("exp/table9", obs.A("bench", benchName))()
	b, err := bench3d.ByName(benchName)
	if err != nil {
		return nil, err
	}
	o := &opt.Optimizer{Bench: b, MeshPitch: r.Cfg.MeshPitch, Workers: r.Cfg.Workers, Solver: r.Cfg.Solver, Obs: r.Cfg.Obs}
	if err := o.FitModels(); err != nil {
		return nil, err
	}
	t := &report.Table{
		Title:  fmt.Sprintf("Table 9: best options for %s", benchName),
		Header: []string{"alpha", "M2", "M3", "TC", "TL", "TD", "BD", "RL", "WB", "IR model (mV)", "IR R-Mesh (mV)", "cost"},
	}
	addRow := func(label string, res *opt.Result) {
		yn := func(v bool) string {
			if v {
				return "Y"
			}
			return "N"
		}
		c := res.Cand
		t.AddRow(label,
			fmt.Sprintf("%.0f%%", c.M2*100), fmt.Sprintf("%.0f%%", c.M3*100),
			c.TC, c.TL.String(), yn(c.TD), c.BD.String(), yn(c.RL), yn(c.WB),
			res.PredIRmV, res.MeasIRmV, fmt.Sprintf("%.2f", res.Cost))
	}
	for _, alpha := range Table9Alphas {
		res, err := o.Best(alpha)
		if err != nil {
			return nil, err
		}
		addRow(fmt.Sprintf("%.1f", alpha), res)
	}
	base, err := o.Baseline()
	if err != nil {
		return nil, err
	}
	addRow("baseline", base)
	t.Notes = append(t.Notes,
		fmt.Sprintf("regression: worst RMSE %.4f (log-mV), worst R^2 %.5f over %d R-Mesh samples",
			o.FitRMSE, o.FitR2, o.SolveCount()),
		"paper regression: RMSE < 0.135, R^2 > 0.999")
	return t, nil
}

// RegressionStudy reports the §6.1 regression quality and the
// sample-vs-brute-force reduction for one benchmark.
func (r *Runner) RegressionStudy(benchName string) (*report.Table, error) {
	defer r.span("exp/regression", obs.A("bench", benchName))()
	b, err := bench3d.ByName(benchName)
	if err != nil {
		return nil, err
	}
	o := &opt.Optimizer{Bench: b, MeshPitch: r.Cfg.MeshPitch, Workers: r.Cfg.Workers, Solver: r.Cfg.Solver, Obs: r.Cfg.Obs}
	if err := o.FitModels(); err != nil {
		return nil, err
	}
	// Brute-force equivalent: every grid point solved on the R-Mesh.
	grid := o.GridSize()
	t := &report.Table{
		Title:  fmt.Sprintf("Sec. 6.1: regression analysis for %s", benchName),
		Header: []string{"metric", "value"},
	}
	t.AddRow("R-Mesh samples solved", o.SolveCount())
	t.AddRow("design points covered by model", grid)
	t.AddRow("solve reduction", fmt.Sprintf("%.0fx", float64(grid)/float64(maxInt(o.SolveCount(), 1))))
	t.AddRow("worst-combo RMSE (log mV)", fmt.Sprintf("%.4f", o.FitRMSE))
	t.AddRow("worst-combo R^2", fmt.Sprintf("%.5f", o.FitR2))
	t.Notes = append(t.Notes, "paper: brute force 4637 h -> 10 h with regression; RMSE < 0.135, R^2 > 0.999")
	return t, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
