package exp

import (
	"fmt"

	"pdn3d/internal/bench3d"
	"pdn3d/internal/irdrop"
	"pdn3d/internal/memctrl"
	"pdn3d/internal/memstate"
	"pdn3d/internal/pdn"
	"pdn3d/internal/report"
)

// Figure4 validates the production R-Mesh against the refined-mesh golden
// reference on the 2D DDR3 design, in the spirit of the paper's R-Mesh vs.
// Cadence EPS comparison (max IR 32.2 vs. 32.6 mV, 1.3 % error, 517x
// speedup). The two left banks run the interleaving read.
func (r *Runner) Figure4() (*report.Table, *irdrop.Validation, error) {
	defer r.span("exp/figure4")()
	b, err := bench3d.StackedDDR3Off()
	if err != nil {
		return nil, nil, err
	}
	spec := irdrop.SingleDie2D(r.prepare(b.Spec))
	// Left two banks (column 0: banks 4 and 6 in the upper-left rows).
	state := memstate.State{Dies: [][]int{{4, 6}}}
	v, err := irdrop.Validate(spec, b.DRAMPower, nil, state, 1.0)
	if err != nil {
		return nil, nil, err
	}
	t := &report.Table{
		Title:  "Figure 4: R-Mesh validation against the refined-mesh reference (2D DDR3)",
		Header: []string{"model", "nodes", "max IR (mV)", "runtime"},
	}
	t.AddRow("reference (2x refined)", v.FineNodes, v.FineIR*1000, v.FineTime.Round(1e6).String())
	t.AddRow("R-Mesh", v.CoarseNodes, v.CoarseIR*1000, v.CoarseTime.Round(1e6).String())
	t.AddRow("error / speedup", "-", fmt.Sprintf("%.2f%%", v.ErrPct), fmt.Sprintf("%.0fx", v.Speedup))
	t.Notes = append(t.Notes, "paper: EPS 32.6 mV vs R-Mesh 32.2 mV, 1.3% error, 517x speedup")
	return t, v, nil
}

// Figure5 sweeps the PG TSV count for the off-chip and on-chip stacked
// DDR3, with and without C4 alignment (paper Figure 5(b)): more TSVs
// saturate, and aligning TSVs to C4 bumps removes the lateral detour
// through the logic die (up to ~51.5 % in the paper).
func (r *Runner) Figure5() (*report.Series, error) {
	defer r.span("exp/figure5")()
	off, err := bench3d.StackedDDR3Off()
	if err != nil {
		return nil, err
	}
	on, err := bench3d.StackedDDR3On()
	if err != nil {
		return nil, err
	}
	tsvCounts := []int{15, 33, 60, 120, 240, 480}
	s := &report.Series{
		Title:  "Figure 5: TSV count and alignment impact (stacked DDR3, 0-0-0-2, max IR mV)",
		XLabel: "TSV count",
		YLabel: "max IR drop (mV)",
		Names:  []string{"off-chip", "on-chip misaligned", "on-chip aligned"},
		Y:      make([][]float64, 3),
	}
	results, err := sweep(r, len(tsvCounts), func(i int) ([3]float64, error) {
		tc := tsvCounts[i]
		var out [3]float64

		offSpec := r.prepare(off.Spec)
		offSpec.TSVCount = tc
		aOff, err := r.analyzer(offSpec, off.DRAMPower, nil)
		if err != nil {
			return out, err
		}
		rOff, err := aOff.AnalyzeCounts(off.DefaultCounts, off.DefaultIO)
		if err != nil {
			return out, err
		}
		out[0] = rOff.MaxIRmV()

		for j, aligned := range []bool{false, true} {
			onSpec := r.prepare(on.Spec)
			onSpec.DedicatedTSV = false
			onSpec.TSVCount = tc
			onSpec.AlignTSV = aligned
			a, err := r.analyzer(onSpec, on.DRAMPower, on.LogicPower)
			if err != nil {
				return out, err
			}
			res, err := a.AnalyzeCounts(on.DefaultCounts, on.DefaultIO)
			if err != nil {
				return out, err
			}
			out[1+j] = res.MaxIRmV()
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	for i, tc := range tsvCounts {
		s.X = append(s.X, float64(tc))
		for k := 0; k < 3; k++ {
			s.Y[k] = append(s.Y[k], results[i][k])
		}
	}
	return s, nil
}

// Figure9Case is one of the Table 7 design cases driving Figure 9.
type Figure9Case struct {
	// Label is the case number and summary.
	Label string
	// Mut derives the case's spec from the benchmark baselines.
	OnChip   bool
	Bonding  pdn.Bonding
	Metal    float64 // PDN metal multiplier (1.0 or 1.5)
	WireBond bool
	// PaperIR is Table 7's max IR for the case.
	PaperIR float64
}

// Table7Cases returns the six design cases of Table 7.
func Table7Cases() []Figure9Case {
	return []Figure9Case{
		{Label: "1: off F2B 1x", OnChip: false, Bonding: pdn.F2B, Metal: 1.0, PaperIR: 30.03},
		{Label: "2: off F2B 1.5x", OnChip: false, Bonding: pdn.F2B, Metal: 1.5, PaperIR: 22.15},
		{Label: "3: off F2F 1x", OnChip: false, Bonding: pdn.F2F, Metal: 1.0, PaperIR: 17.18},
		{Label: "4: on F2B 1x", OnChip: true, Bonding: pdn.F2B, Metal: 1.0, PaperIR: 64.41},
		{Label: "5: on F2B 1x WB", OnChip: true, Bonding: pdn.F2B, Metal: 1.0, WireBond: true, PaperIR: 30.04},
		{Label: "6: on F2F 1x", OnChip: true, Bonding: pdn.F2F, Metal: 1.0, PaperIR: 65.43},
	}
}

// caseSpec builds the benchmark and spec for one Table 7 case.
func (r *Runner) caseSpec(c Figure9Case) (*bench3d.Benchmark, *pdn.Spec, error) {
	var b *bench3d.Benchmark
	var err error
	if c.OnChip {
		b, err = bench3d.StackedDDR3On()
	} else {
		b, err = bench3d.StackedDDR3Off()
	}
	if err != nil {
		return nil, nil, err
	}
	spec := r.prepare(b.Spec)
	spec.DedicatedTSV = false
	spec.Bonding = c.Bonding
	spec.WireBond = c.WireBond
	spec.Usage["M2"] *= c.Metal
	spec.Usage["M3"] *= c.Metal
	return b, spec, nil
}

// Table7 evaluates the six design cases' maximum IR drops. A case whose
// solve fails renders as an ERR cell; the partial table is returned
// alongside the aggregated error.
func (r *Runner) Table7() (*report.Table, error) {
	defer r.span("exp/table7")()
	t := &report.Table{
		Title:  "Table 7: design cases for the IR-drop vs. performance study",
		Header: []string{"case", "max IR (mV)", "paper (mV)"},
	}
	cases := Table7Cases()
	irs, cellErrs, sweepErr := sweepCells(r, len(cases), func(i int) (float64, error) {
		b, spec, err := r.caseSpec(cases[i])
		if err != nil {
			return 0, err
		}
		var logic = b.LogicPower
		if !spec.OnLogic {
			logic = nil
		}
		a, err := r.analyzer(spec, b.DRAMPower, logic)
		if err != nil {
			return 0, err
		}
		res, err := a.AnalyzeCounts(b.DefaultCounts, b.DefaultIO)
		if err != nil {
			return 0, err
		}
		return res.MaxIRmV(), nil
	})
	for i, c := range cases {
		if cellErrs[i] != nil {
			t.AddRow(c.Label, "ERR", c.PaperIR)
			continue
		}
		t.AddRow(c.Label, irs[i], c.PaperIR)
	}
	r.Cfg.Obs.Counter("exp.cells_failed").Add(int64(countErrs(cellErrs)))
	return t, sweepErr
}

// Figure9 sweeps the IR-drop constraint and reports the DistR runtime for
// every Table 7 case (paper Figure 9): tighter constraints forbid memory
// states and stretch runtime; designs with lower IR tolerate tighter
// constraints, and the F2F design crosses over the 1.5x-metal design below
// ~18 mV thanks to PDN sharing at low bank activities.
func (r *Runner) Figure9(constraintsMV []float64) (*report.Series, error) {
	defer r.span("exp/figure9")()
	if len(constraintsMV) == 0 {
		constraintsMV = []float64{14, 16, 18, 20, 22, 24, 26, 28, 30}
	}
	cases := Table7Cases()
	s := &report.Series{
		Title:  "Figure 9: runtime vs. IR-drop constraint (10k reads, DistR; 0 = no state allowed)",
		XLabel: "constraint (mV)",
		YLabel: "runtime (us)",
		Y:      make([][]float64, len(cases)),
	}
	for _, c := range cases {
		s.Names = append(s.Names, c.Label)
	}
	for _, mv := range constraintsMV {
		s.X = append(s.X, mv)
	}
	rows, err := sweep(r, len(cases), func(ci int) ([]float64, error) {
		b, spec, err := r.caseSpec(cases[ci])
		if err != nil {
			return nil, err
		}
		var logic = b.LogicPower
		if !spec.OnLogic {
			logic = nil
		}
		table, err := r.lutFor(spec, b.DRAMPower, logic)
		if err != nil {
			return nil, err
		}
		out := make([]float64, 0, len(constraintsMV))
		for _, mv := range constraintsMV {
			// Feasibility first: if even a lone single-bank activation
			// violates the constraint, no memory state is allowed and the
			// workload cannot run (paper: runtime -> infinity). Report 0.
			counts := make([]int, spec.NumDRAM)
			counts[len(counts)-1] = 1
			ir, err := table.MaxIR(counts, 1.0)
			if err != nil {
				return nil, err
			}
			if ir > mv/1000 {
				out = append(out, 0)
				continue
			}
			bb := *b
			bb.Spec = spec
			run, err := r.policyRun(&bb, table, memctrl.PolicyIRAware, memctrl.DistR, mv/1000)
			if err != nil {
				return nil, err
			}
			out = append(out, run.RuntimeUS)
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	copy(s.Y, rows)
	return s, nil
}
