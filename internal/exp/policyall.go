package exp

import (
	"fmt"

	"pdn3d/internal/bench3d"
	"pdn3d/internal/memctrl"
	"pdn3d/internal/report"
)

// PolicyStudyAll extends the paper's Table 6 study to every benchmark,
// using each design's own channel configuration (Table 1: one channel for
// stacked DDR3, four for Wide I/O, sixteen HMC vault channels) and an
// IR-drop constraint of 80 % of the design's worst single-die interleaving
// state — the proportional equivalent of the paper's 24 mV on the 30 mV
// DDR3 design.
func (r *Runner) PolicyStudyAll() (*report.Table, error) {
	defer r.span("exp/policy-all")()
	t := &report.Table{
		Title: "Extension: IR-drop-aware policies across all benchmarks",
		Header: []string{"benchmark", "channels", "limit (mV)",
			"Std BW", "IR-FCFS BW", "IR-DistR BW", "Std maxIR", "DistR maxIR"},
	}
	names := []string{"ddr3-off", "ddr3-on", "wideio", "hmc"}
	rows, err := sweep(r, len(names), func(i int) (*policyStudyResult, error) {
		return r.policyStudyOne(names[i])
	})
	if err != nil {
		return nil, err
	}
	for i, name := range names {
		std, fcfs, distr := rows[i].std, rows[i].fcfs, rows[i].distr
		t.AddRow(name, rows[i].channels, fmt.Sprintf("%.1f", rows[i].limit*1000),
			fmt.Sprintf("%.3f", std.Bandwidth),
			fmt.Sprintf("%.3f (%s)", fcfs.Bandwidth, report.Pct(std.Bandwidth, fcfs.Bandwidth)),
			fmt.Sprintf("%.3f (%s)", distr.Bandwidth, report.Pct(std.Bandwidth, distr.Bandwidth)),
			fmt.Sprintf("%.2f", std.MaxIR*1000),
			fmt.Sprintf("%.2f", distr.MaxIR*1000))
	}
	t.Notes = append(t.Notes,
		"limit = 80% of each design's worst single-die interleaving state (the paper's 24/30 ratio)",
		"multi-channel designs (Wide I/O, HMC) gain bus parallelism on top of the policy gains")
	return t, nil
}

// policyStudyOne runs the three-policy comparison for one benchmark.
type policyStudyResult struct {
	channels         int
	limit            float64
	std, fcfs, distr *memctrl.Result
}

func (r *Runner) policyStudyOne(name string) (*policyStudyResult, error) {
	b, err := bench3d.ByName(name)
	if err != nil {
		return nil, err
	}
	b.Spec = r.prepare(b.Spec)
	var logic = b.LogicPower
	if !b.Spec.OnLogic {
		logic = nil
	}
	table, err := r.lutFor(b.Spec, b.DRAMPower, logic)
	if err != nil {
		return nil, err
	}
	worst := make([]int, b.Spec.NumDRAM)
	worst[len(worst)-1] = 2
	ref, err := table.MaxIR(worst, 1.0)
	if err != nil {
		return nil, err
	}
	limit := 0.8 * ref
	// Keep the constraint feasible: a lone single-bank activation must
	// fit, or no request can ever issue.
	single := make([]int, b.Spec.NumDRAM)
	single[len(single)-1] = 1
	floor, err := table.MaxIR(single, 1.0)
	if err != nil {
		return nil, err
	}
	if limit < floor*1.02 {
		limit = floor * 1.02
	}

	run := func(policy memctrl.IRPolicy, sched memctrl.Scheduler, lim float64) (*memctrl.Result, error) {
		cfg := memctrl.DefaultConfig(policy, sched, table, lim)
		cfg.Dies = b.Spec.NumDRAM
		cfg.BanksPerDie = b.Spec.DRAM.NumBanks
		cfg.Channels = b.Channels
		cfg.ChannelOf = b.ChannelOf
		wl := memctrl.DefaultWorkload(cfg.Dies, cfg.BanksPerDie)
		wl.Requests = r.requests()
		reqs, err := memctrl.Generate(wl)
		if err != nil {
			return nil, err
		}
		return memctrl.Simulate(cfg, reqs)
	}
	std, err := run(memctrl.PolicyStandard, memctrl.FCFS, 0)
	if err != nil {
		return nil, err
	}
	fcfs, err := run(memctrl.PolicyIRAware, memctrl.FCFS, limit)
	if err != nil {
		return nil, err
	}
	distr, err := run(memctrl.PolicyIRAware, memctrl.DistR, limit)
	if err != nil {
		return nil, err
	}
	return &policyStudyResult{channels: b.Channels, limit: limit,
		std: std, fcfs: fcfs, distr: distr}, nil
}
