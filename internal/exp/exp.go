// Package exp regenerates every table and figure of the paper's
// evaluation: one function per experiment, returning report tables/series
// that cmd/tables prints and bench_test.go drives.
//
// The experiment index (paper table/figure -> function) lives in DESIGN.md;
// EXPERIMENTS.md records paper-vs-measured values.
package exp

import (
	"fmt"

	"pdn3d/internal/bench3d"
	"pdn3d/internal/irdrop"
	"pdn3d/internal/lut"
	"pdn3d/internal/memctrl"
	"pdn3d/internal/memstate"
	"pdn3d/internal/obs"
	"pdn3d/internal/par"
	"pdn3d/internal/pdn"
	"pdn3d/internal/powermap"
	"pdn3d/internal/rmesh"
	"pdn3d/internal/speckey"
)

// Config tunes experiment fidelity against runtime.
type Config struct {
	// MeshPitch overrides every design's R-Mesh pitch (mm). Zero keeps
	// the specs' defaults (0.2 mm). Benchmarks and smoke tests use a
	// coarser pitch for speed.
	MeshPitch float64
	// Requests overrides the controller workload length (0 = 10000).
	Requests int
	// Workers bounds the sweep worker pool (and each solver's kernel
	// pool). <= 0 selects GOMAXPROCS. Outputs are identical for every
	// value.
	Workers int
	// Solver selects the nodal solver method ("" = solve.DefaultMethod).
	Solver string
	// Obs, when non-nil, receives run metrics and a span per experiment:
	// mesh/solver instrumentation from the layers below, sweep pool
	// metrics under "exp.sweep.*", and analyzer/LUT cache hit rates.
	// Results are identical with or without it.
	Obs *obs.Registry
}

// Runner executes experiments, caching mesh topologies, analyzers, and
// look-up tables across experiments that share a design. It is safe for
// concurrent use: cache misses on the same design are deduplicated so each
// topology, analyzer, and table is built exactly once. Analyzers are built
// over the shared topology cache, so a value-only sweep (metal-usage
// studies, co-optimization candidates) freezes the mesh shape once and
// restamps conductances per design point.
type Runner struct {
	Cfg Config

	topos     par.Group[*rmesh.Topology]
	analyzers par.Group[*irdrop.Analyzer]
	luts      par.Group[*lut.Table]
	sweeps    *obs.SweepMetrics
}

// NewRunner returns a Runner with the given fidelity configuration.
func NewRunner(cfg Config) *Runner {
	r := &Runner{Cfg: cfg}
	reg := cfg.Obs
	r.sweeps = reg.SweepMetrics("exp.sweep")
	r.topos.Hits = reg.Counter("exp.topo_cache.hits")
	r.topos.Misses = reg.Counter("exp.topo_cache.misses")
	r.analyzers.Hits = reg.Counter("exp.analyzer_cache.hits")
	r.analyzers.Misses = reg.Counter("exp.analyzer_cache.misses")
	r.luts.Hits = reg.Counter("exp.lut_cache.hits")
	r.luts.Misses = reg.Counter("exp.lut_cache.misses")
	return r
}

// span opens one experiment-level trace span (no-op without a registry).
func (r *Runner) span(name string, attrs ...obs.Attr) func() {
	return r.Cfg.Obs.Span(name, attrs...)
}

// sweep fans fn over n independent design points on the runner's worker
// pool, collecting each point's result into a slice. It stops early on the
// first error and returns the lowest-indexed one.
func sweep[T any](r *Runner, n int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := par.SweepWith(r.Cfg.Workers, n, r.sweeps, func(i int) error {
		v, err := fn(i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// sweepCells fans fn over n independent table cells like sweep, but never
// aborts: every cell runs to completion, a failed cell keeps its zero
// value, and the per-cell errors come back positionally so callers can
// render failed cells as "ERR" instead of dropping the whole table. The
// third return aggregates the failures (nil when every cell succeeded).
func sweepCells[T any](r *Runner, n int, fn func(i int) (T, error)) ([]T, []error, error) {
	out := make([]T, n)
	errs := make([]error, n)
	// fn errors land in errs, not the sweep, so no cell cancels the rest.
	_ = par.SweepWith(r.Cfg.Workers, n, r.sweeps, func(i int) error {
		v, err := fn(i)
		if err != nil {
			errs[i] = err
			return nil
		}
		out[i] = v
		return nil
	})
	var first error
	failed := 0
	for _, e := range errs {
		if e != nil {
			failed++
			if first == nil {
				first = e
			}
		}
	}
	if first != nil {
		return out, errs, fmt.Errorf("exp: %d of %d cells failed, first: %w", failed, n, first)
	}
	return out, errs, nil
}

// requests returns the workload length.
func (r *Runner) requests() int {
	if r.Cfg.Requests > 0 {
		return r.Cfg.Requests
	}
	return 10000
}

// prepare applies the runner's fidelity overrides to a cloned spec.
func (r *Runner) prepare(spec *pdn.Spec) *pdn.Spec {
	s := spec.Clone()
	if r.Cfg.MeshPitch > 0 {
		s.MeshPitch = r.Cfg.MeshPitch
	}
	return s
}

// specKey fingerprints a design for the analyzer/LUT caches. The
// implementation lives in internal/speckey so the serving layer's result
// cache shares the exact same key contract.
func specKey(s *pdn.Spec, withLogic bool) string {
	return speckey.Spec(s, withLogic)
}

// topology returns the cached frozen mesh topology for the prepared spec,
// building it exactly once even under concurrent misses. Specs differing
// only in metal-usage magnitudes share one entry.
func (r *Runner) topology(spec *pdn.Spec) (*rmesh.Topology, error) {
	return r.topos.Do(speckey.Topology(spec), func() (*rmesh.Topology, error) {
		return rmesh.BuildTopologyObs(spec, r.Cfg.Obs)
	})
}

// analyzer returns a cached analyzer for the prepared spec, building it
// exactly once even under concurrent misses. The mesh is restamped over
// the shared topology cache — bit-identical to a full build, but value
// sweeps over one design shape skip the geometry and symbolic work.
func (r *Runner) analyzer(spec *pdn.Spec, dram *powermap.DRAMModel, logic *powermap.LogicModel) (*irdrop.Analyzer, error) {
	return r.analyzers.Do(specKey(spec, logic != nil), func() (*irdrop.Analyzer, error) {
		t, err := r.topology(spec)
		if err != nil {
			return nil, err
		}
		a, err := irdrop.NewFromTopologyObs(t, spec, dram, logic, r.Cfg.Obs)
		if err != nil {
			return nil, err
		}
		a.Opts.Method = r.Cfg.Solver
		a.Opts.Workers = r.Cfg.Workers
		return a, nil
	})
}

// lutFor returns a cached IR-drop look-up table for the prepared spec,
// building it exactly once even under concurrent misses.
func (r *Runner) lutFor(spec *pdn.Spec, dram *powermap.DRAMModel, logic *powermap.LogicModel) (*lut.Table, error) {
	return r.luts.Do(specKey(spec, logic != nil), func() (*lut.Table, error) {
		a, err := r.analyzer(spec, dram, logic)
		if err != nil {
			return nil, err
		}
		return lut.BuildWith(a, memstate.MaxInterleavedBanks, lut.DefaultIOLevels(), r.Cfg.Workers)
	})
}

// analyzeCounts is a convenience wrapper: analyze a count state at the
// paper's default worst-case placement.
func analyzeCounts(a *irdrop.Analyzer, counts []int, io float64) (*irdrop.Result, error) {
	return a.AnalyzeCounts(counts, io)
}

// policyRun simulates one (policy, scheduler) pair on a fresh workload.
func (r *Runner) policyRun(b *bench3d.Benchmark, table *lut.Table,
	policy memctrl.IRPolicy, sched memctrl.Scheduler, irLimitV float64) (*memctrl.Result, error) {

	cfg := memctrl.DefaultConfig(policy, sched, table, irLimitV)
	cfg.Dies = b.Spec.NumDRAM
	cfg.BanksPerDie = b.Spec.DRAM.NumBanks
	wl := memctrl.DefaultWorkload(cfg.Dies, cfg.BanksPerDie)
	wl.Requests = r.requests()
	reqs, err := memctrl.Generate(wl)
	if err != nil {
		return nil, err
	}
	return memctrl.Simulate(cfg, reqs)
}
