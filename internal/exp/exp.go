// Package exp regenerates every table and figure of the paper's
// evaluation: one function per experiment, returning report tables/series
// that cmd/tables prints and bench_test.go drives.
//
// The experiment index (paper table/figure -> function) lives in DESIGN.md;
// EXPERIMENTS.md records paper-vs-measured values.
package exp

import (
	"fmt"
	"sort"

	"pdn3d/internal/bench3d"
	"pdn3d/internal/irdrop"
	"pdn3d/internal/lut"
	"pdn3d/internal/memctrl"
	"pdn3d/internal/memstate"
	"pdn3d/internal/pdn"
	"pdn3d/internal/powermap"
)

// Config tunes experiment fidelity against runtime.
type Config struct {
	// MeshPitch overrides every design's R-Mesh pitch (mm). Zero keeps
	// the specs' defaults (0.2 mm). Benchmarks and smoke tests use a
	// coarser pitch for speed.
	MeshPitch float64
	// Requests overrides the controller workload length (0 = 10000).
	Requests int
}

// Runner executes experiments, caching analyzers and look-up tables across
// experiments that share a design.
type Runner struct {
	Cfg Config

	analyzers map[string]*irdrop.Analyzer
	luts      map[string]*lut.Table
}

// NewRunner returns a Runner with the given fidelity configuration.
func NewRunner(cfg Config) *Runner {
	return &Runner{
		Cfg:       cfg,
		analyzers: map[string]*irdrop.Analyzer{},
		luts:      map[string]*lut.Table{},
	}
}

// requests returns the workload length.
func (r *Runner) requests() int {
	if r.Cfg.Requests > 0 {
		return r.Cfg.Requests
	}
	return 10000
}

// prepare applies the runner's fidelity overrides to a cloned spec.
func (r *Runner) prepare(spec *pdn.Spec) *pdn.Spec {
	s := spec.Clone()
	if r.Cfg.MeshPitch > 0 {
		s.MeshPitch = r.Cfg.MeshPitch
	}
	return s
}

// specKey fingerprints a spec's option fields for caching.
func specKey(s *pdn.Spec, withLogic bool) string {
	failed := make([]int, 0, len(s.FailedTSVs))
	for k := range s.FailedTSVs {
		failed = append(failed, k)
	}
	sort.Ints(failed)
	return fmt.Sprintf("%s|%d|%v|%v|%d|%v|%v|%v|%v|%v|%v|%.3f|%v|%v|%v",
		s.Name, s.NumDRAM, s.Usage, s.LogicUsage, s.TSVCount, s.TSVStyle,
		s.Bonding, s.RDL, s.WireBond, s.DedicatedTSV, s.AlignTSV,
		s.EffMeshPitch(), s.OnLogic, withLogic, failed)
}

// analyzer returns a cached analyzer for the prepared spec.
func (r *Runner) analyzer(spec *pdn.Spec, dram *powermap.DRAMModel, logic *powermap.LogicModel) (*irdrop.Analyzer, error) {
	key := specKey(spec, logic != nil)
	if a, ok := r.analyzers[key]; ok {
		return a, nil
	}
	a, err := irdrop.New(spec, dram, logic)
	if err != nil {
		return nil, err
	}
	r.analyzers[key] = a
	return a, nil
}

// lutFor returns a cached IR-drop look-up table for the prepared spec.
func (r *Runner) lutFor(spec *pdn.Spec, dram *powermap.DRAMModel, logic *powermap.LogicModel) (*lut.Table, error) {
	key := "lut|" + specKey(spec, logic != nil)
	if t, ok := r.luts[key]; ok {
		return t, nil
	}
	a, err := r.analyzer(spec, dram, logic)
	if err != nil {
		return nil, err
	}
	t, err := lut.Build(a, memstate.MaxInterleavedBanks, lut.DefaultIOLevels())
	if err != nil {
		return nil, err
	}
	r.luts[key] = t
	return t, nil
}

// analyzeCounts is a convenience wrapper: analyze a count state at the
// paper's default worst-case placement.
func analyzeCounts(a *irdrop.Analyzer, counts []int, io float64) (*irdrop.Result, error) {
	return a.AnalyzeCounts(counts, io)
}

// policyRun simulates one (policy, scheduler) pair on a fresh workload.
func (r *Runner) policyRun(b *bench3d.Benchmark, table *lut.Table,
	policy memctrl.IRPolicy, sched memctrl.Scheduler, irLimitV float64) (*memctrl.Result, error) {

	cfg := memctrl.DefaultConfig(policy, sched, table, irLimitV)
	cfg.Dies = b.Spec.NumDRAM
	cfg.BanksPerDie = b.Spec.DRAM.NumBanks
	wl := memctrl.DefaultWorkload(cfg.Dies, cfg.BanksPerDie)
	wl.Requests = r.requests()
	reqs, err := memctrl.Generate(wl)
	if err != nil {
		return nil, err
	}
	return memctrl.Simulate(cfg, reqs)
}
