package exp

import (
	"strconv"
	"strings"
	"sync"
	"testing"
)

var (
	runnerOnce sync.Once
	testRunner *Runner
)

// runner shares cached analyzers/LUTs across this package's tests; all
// experiments here run on a coarse mesh with a shortened workload.
func runner() *Runner {
	runnerOnce.Do(func() {
		testRunner = NewRunner(Config{MeshPitch: 0.5, Requests: 3000})
	})
	return testRunner
}

// cell parses table cell (r, c) as a float, tolerating decorations.
func cell(t *testing.T, tab interface{ String() string }, rows [][]string, r, c int) float64 {
	t.Helper()
	f := strings.Fields(strings.ReplaceAll(rows[r][c], "(", " "))[0]
	v, err := strconv.ParseFloat(strings.TrimSuffix(f, "%"), 64)
	if err != nil {
		t.Fatalf("cell (%d,%d) = %q not numeric:\n%s", r, c, rows[r][c], tab)
	}
	return v
}

func TestTable1(t *testing.T) {
	tab, err := runner().Table1()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d, want 4 benchmarks", len(tab.Rows))
	}
}

func TestMetalUsageStudy(t *testing.T) {
	tab, err := runner().MetalUsageStudy()
	if err != nil {
		t.Fatal(err)
	}
	base := cell(t, tab, tab.Rows, 0, 2)
	dbl := cell(t, tab, tab.Rows, 1, 2)
	red := (base - dbl) / base
	if red < 0.40 {
		t.Errorf("2x metal reduces IR by %.1f%%, paper says > 40%%", red*100)
	}
}

func TestMountingStudy(t *testing.T) {
	tab, err := runner().MountingStudy()
	if err != nil {
		t.Fatal(err)
	}
	off := cell(t, tab, tab.Rows, 0, 1)
	on := cell(t, tab, tab.Rows, 1, 1)
	if on < 1.5*off {
		t.Errorf("on-chip coupling %.1f mV should dwarf off-chip %.1f mV (paper 64.41 vs 30.03)", on, off)
	}
}

func TestTable2Ordering(t *testing.T) {
	tab, err := runner().Table2()
	if err != nil {
		t.Fatal(err)
	}
	a := cell(t, tab, tab.Rows, 0, 1)
	b := cell(t, tab, tab.Rows, 1, 1)
	c := cell(t, tab, tab.Rows, 2, 1)
	d := cell(t, tab, tab.Rows, 3, 1)
	// Paper ordering: edge (a) best, center (b) worst; RDL variants in
	// between on their own sides.
	if !(a < c && c < b) {
		t.Errorf("ordering violated: a=%.1f c=%.1f b=%.1f (want a < c < b)", a, c, b)
	}
	if d > b*1.05 {
		t.Errorf("(d) center+RDL %.1f should not exceed (b) center %.1f by much", d, b)
	}
	// Cost ordering: (b) center cheapest (Table 2: Lowest).
	cb := cell(t, tab, tab.Rows, 1, 3)
	for r := 0; r < 4; r++ {
		if cr := cell(t, tab, tab.Rows, r, 3); cr < cb-1e-9 {
			t.Errorf("option %d cost %.3f below center option %.3f", r, cr, cb)
		}
	}
}

func TestTable3WireBondStory(t *testing.T) {
	tab, err := runner().Table3()
	if err != nil {
		t.Fatal(err)
	}
	// Row 0: on-chip without dedicated TSVs — wire bonding halves the IR.
	base := cell(t, tab, tab.Rows, 0, 1)
	wb := cell(t, tab, tab.Rows, 0, 2)
	if (base-wb)/base < 0.30 {
		t.Errorf("on-chip wire bonding saves %.0f%%, paper says ~53%%", (base-wb)/base*100)
	}
	// Rows 1/2: dedicated or off-chip designs gain only marginally
	// (paper: -12.8% / -9.8%; both small compared to row 0).
	for r := 1; r < 3; r++ {
		b2 := cell(t, tab, tab.Rows, r, 1)
		w2 := cell(t, tab, tab.Rows, r, 2)
		if (b2-w2)/b2 > 0.20 {
			t.Errorf("row %d: wire bonding saves %.0f%%, should be marginal", r, (b2-w2)/b2*100)
		}
		if w2 > b2*1.01 {
			t.Errorf("row %d: wire bonding made IR worse (%.2f -> %.2f)", r, b2, w2)
		}
	}
}

func TestTable4OverlapStory(t *testing.T) {
	tab, err := runner().Table4()
	if err != nil {
		t.Fatal(err)
	}
	get := func(r int) (f2b, f2f float64) {
		return cell(t, tab, tab.Rows, r, 2), cell(t, tab, tab.Rows, r, 3)
	}
	// Overlapping rows (0, 1): F2F gives no meaningful benefit.
	for r := 0; r < 2; r++ {
		b, f := get(r)
		if (b-f)/b > 0.05 {
			t.Errorf("overlap row %d: F2F gain %.1f%% should be tiny", r, (b-f)/b*100)
		}
	}
	// Inter-pair rows (2, 3): the idle partner's PDN buys ~40 %.
	for r := 2; r < 4; r++ {
		b, f := get(r)
		if (b-f)/b < 0.30 {
			t.Errorf("inter-pair row %d: F2F gain %.1f%% too small (paper ~43%%)", r, (b-f)/b*100)
		}
	}
	// Same-pair non-overlap rows (4-6): gain between the two extremes,
	// growing with separation (d >= b).
	gb, _ := get(4)
	fb := cell(t, tab, tab.Rows, 4, 3)
	gd, _ := get(6)
	fd := cell(t, tab, tab.Rows, 6, 3)
	gainB := (gb - fb) / gb
	gainD := (gd - fd) / gd
	if gainB <= 0.0 || gainB >= 0.40 {
		t.Errorf("same-pair gain %.1f%% outside (0, 40%%)", gainB*100)
	}
	if gainD < gainB-0.02 {
		t.Errorf("farther separation should gain at least as much: d %.1f%% vs b %.1f%%", gainD*100, gainB*100)
	}
}

func TestTable5Story(t *testing.T) {
	tab, err := runner().Table5()
	if err != nil {
		t.Fatal(err)
	}
	full := cell(t, tab, tab.Rows, 0, 4)    // 0-0-0-2 @100%, F2B
	quarter := cell(t, tab, tab.Rows, 4, 4) // 0-0-0-2 @25%, F2B
	powerDrop := 1 - 126.0/220.5            // -42.9% die power
	irDrop := 1 - quarter/full
	if irDrop >= powerDrop {
		t.Errorf("IR reduction %.1f%% should lag the %.1f%% power reduction (paper: 23.6%% vs 44.7%%)",
			irDrop*100, powerDrop*100)
	}
	// F2F worst case is the overlapping 0-0-2-2 row, not 0-0-0-2 (§5.1).
	f2fTop := cell(t, tab, tab.Rows, 0, 5)
	f2fOverlap := cell(t, tab, tab.Rows, 3, 5)
	if f2fOverlap <= f2fTop {
		t.Errorf("F2F worst case should be 0-0-2-2 (%.1f) not 0-0-0-2 (%.1f)", f2fOverlap, f2fTop)
	}
}

func TestTable6PolicyOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("controller study is slow")
	}
	_, res, err := runner().Table6()
	if err != nil {
		t.Fatal(err)
	}
	if !(res.Standard.Bandwidth < res.IRFCFS.Bandwidth && res.IRFCFS.Bandwidth < res.IRDistR.Bandwidth) {
		t.Errorf("bandwidth ordering violated: %.3f / %.3f / %.3f",
			res.Standard.Bandwidth, res.IRFCFS.Bandwidth, res.IRDistR.Bandwidth)
	}
	if res.IRFCFS.MaxIR > res.EffLimitV || res.IRDistR.MaxIR > res.EffLimitV {
		t.Errorf("IR-aware policies violated the %.1f mV constraint: %.2f / %.2f mV",
			res.EffLimitV*1000, res.IRFCFS.MaxIR*1000, res.IRDistR.MaxIR*1000)
	}
	if res.Standard.MaxIR <= res.EffLimitV {
		t.Errorf("standard policy should exceed the constraint (%.2f mV)", res.Standard.MaxIR*1000)
	}
}

func TestFigure4Validation(t *testing.T) {
	_, v, err := runner().Figure4()
	if err != nil {
		t.Fatal(err)
	}
	if v.ErrPct > 12 {
		t.Errorf("R-Mesh error %.1f%% vs refined reference too large", v.ErrPct)
	}
	if v.Speedup <= 1 {
		t.Errorf("speedup %.1fx should exceed 1", v.Speedup)
	}
}

func TestFigure5Shape(t *testing.T) {
	s, err := runner().Figure5()
	if err != nil {
		t.Fatal(err)
	}
	off, mis, al := s.Y[0], s.Y[1], s.Y[2]
	n := len(s.X)
	// Saturation: the last doubling buys far less than the first.
	firstGain := off[0] - off[1]
	lastGain := off[n-2] - off[n-1]
	if lastGain > firstGain {
		t.Errorf("off-chip TSV benefit should saturate: first %.2f, last %.2f", firstGain, lastGain)
	}
	for i := range s.X {
		if al[i] > mis[i] {
			t.Errorf("TC=%g: aligned %.1f must not exceed misaligned %.1f", s.X[i], al[i], mis[i])
		}
	}
	// Misalignment penalty is worst at low TSV counts (paper §3.2).
	if (mis[0]-al[0])/mis[0] < (mis[n-1]-al[n-1])/mis[n-1] {
		t.Error("alignment should matter most at small TSV counts")
	}
}

func TestFigure9Feasibility(t *testing.T) {
	if testing.Short() {
		t.Skip("constraint sweep is slow")
	}
	s, err := runner().Figure9([]float64{10, 24, 30})
	if err != nil {
		t.Fatal(err)
	}
	// Case 4 (on-chip F2B, ~64 mV design) cannot run at 10 mV.
	if s.Y[3][0] != 0 {
		t.Errorf("case 4 at 10 mV should be infeasible, got %.1f us", s.Y[3][0])
	}
	// Where feasible, a looser constraint never runs slower.
	for ci := range s.Y {
		for i := 1; i < len(s.X); i++ {
			if s.Y[ci][i-1] == 0 || s.Y[ci][i] == 0 {
				continue
			}
			if s.Y[ci][i] > s.Y[ci][i-1]*1.02 {
				t.Errorf("case %d: runtime rose from %.1f to %.1f us with a looser constraint",
					ci, s.Y[ci][i-1], s.Y[ci][i])
			}
		}
	}
}

func TestTable7CasesOrdering(t *testing.T) {
	tab, err := runner().Table7()
	if err != nil {
		t.Fatal(err)
	}
	ir := make([]float64, 6)
	for i := range ir {
		ir[i] = cell(t, tab, tab.Rows, i, 1)
	}
	// Paper: case3 (F2F) < case2 (1.5x metal) < case1 < case5 (WB) < case4/6.
	if !(ir[2] < ir[1] && ir[1] < ir[0]) {
		t.Errorf("off-chip ordering violated: F2F %.1f, 1.5x %.1f, base %.1f", ir[2], ir[1], ir[0])
	}
	if !(ir[4] < ir[3]) {
		t.Errorf("wire bonding should beat plain on-chip: %.1f vs %.1f", ir[4], ir[3])
	}
	if ir[3] < 1.5*ir[0] {
		t.Errorf("on-chip case %.1f should dwarf off-chip %.1f", ir[3], ir[0])
	}
}

func TestTable8Renders(t *testing.T) {
	tab, err := runner().Table8()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 8 {
		t.Errorf("rows = %d, want 8 cost terms", len(tab.Rows))
	}
}

func TestTable9QuickStructure(t *testing.T) {
	if testing.Short() {
		t.Skip("co-optimization is slow")
	}
	tab, err := runner().Table9("ddr3-off")
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d, want 3 alphas + baseline", len(tab.Rows))
	}
	// alpha=0 row must be the cheapest, alpha=1 the lowest measured IR.
	costA0 := cell(t, tab, tab.Rows, 0, 11)
	irA1 := cell(t, tab, tab.Rows, 2, 10)
	for r := 0; r < 4; r++ {
		if c := cell(t, tab, tab.Rows, r, 11); c < costA0-1e-9 {
			t.Errorf("row %d cost %.2f below alpha=0 cost %.2f", r, c, costA0)
		}
		if ir := cell(t, tab, tab.Rows, r, 10); ir < irA1-1e-9 {
			t.Errorf("row %d IR %.2f below alpha=1 IR %.2f", r, ir, irA1)
		}
	}
}

func TestCrowdingStudy(t *testing.T) {
	tab, err := runner().CrowdingStudy()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) < 8 {
		t.Fatalf("rows = %d, want >= 8 (4 TSV counts x 2 branch kinds)", len(tab.Rows))
	}
	// Peak TSV current must fall as the TSV count grows.
	var first, last float64
	for _, row := range tab.Rows {
		if row[1] != "TSV" {
			continue
		}
		v := cell(t, tab, [][]string{row}, 0, 3)
		if first == 0 {
			first = v
		}
		last = v
	}
	if last >= first {
		t.Errorf("peak TSV current should fall with more TSVs: %.2f -> %.2f mA", first, last)
	}
}

func TestTSVFailureStudy(t *testing.T) {
	tab, err := runner().TSVFailureStudy()
	if err != nil {
		t.Fatal(err)
	}
	// IR must be non-decreasing with the failed fraction within each
	// TSV-count block, and a 120-TSV design must tolerate 50% loss better
	// than a 33-TSV design (relative increase).
	var rel33, rel120 float64
	for blk := 0; blk < 2; blk++ {
		base := cell(t, tab, tab.Rows, blk*4, 3)
		prev := base
		for i := 1; i < 4; i++ {
			v := cell(t, tab, tab.Rows, blk*4+i, 3)
			if v < prev*0.999 {
				t.Errorf("block %d: IR fell from %.2f to %.2f with more failures", blk, prev, v)
			}
			prev = v
		}
		if blk == 0 {
			rel33 = prev / base
		} else {
			rel120 = prev / base
		}
	}
	if rel120 > rel33 {
		t.Errorf("120-TSV design degraded more (%.2fx) than 33-TSV (%.2fx) at 50%% loss", rel120, rel33)
	}
}

func TestACStudy(t *testing.T) {
	tab, err := runner().ACStudy()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d, want 3 designs", len(tab.Rows))
	}
	nCols := len(tab.Header)
	for r := 0; r < 3; r++ {
		// Droop grows monotonically toward the DC column.
		prev := 0.0
		for c := 1; c < nCols; c++ {
			v := cell(t, tab, tab.Rows, r, c)
			if v < prev-0.05 {
				t.Errorf("row %d: droop fell between columns %d and %d (%.2f -> %.2f)", r, c-1, c, prev, v)
			}
			prev = v
		}
	}
	// Decapped design never droops more than the undecapped wire-bonded one.
	for c := 1; c < nCols-1; c++ {
		wb := cell(t, tab, tab.Rows, 1, c)
		de := cell(t, tab, tab.Rows, 2, c)
		if de > wb+0.01 {
			t.Errorf("column %d: decaps increased droop (%.2f vs %.2f)", c, de, wb)
		}
	}
}

func TestPolicyStudyAll(t *testing.T) {
	if testing.Short() {
		t.Skip("four benchmark LUTs + simulations are slow")
	}
	tab, err := runner().PolicyStudyAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d, want 4 benchmarks", len(tab.Rows))
	}
	for r := 0; r < 4; r++ {
		std := cell(t, tab, tab.Rows, r, 3)
		fcfs := cell(t, tab, tab.Rows, r, 4)
		distr := cell(t, tab, tab.Rows, r, 5)
		if !(std < fcfs && fcfs <= distr+1e-9) {
			t.Errorf("row %d: policy BW ordering violated: %.3f / %.3f / %.3f", r, std, fcfs, distr)
		}
	}
}
