package exp

import (
	"fmt"

	"pdn3d/internal/bench3d"
	"pdn3d/internal/memstate"
	"pdn3d/internal/report"
	"pdn3d/internal/transient"
)

// ACStudy quantifies the paper's closing AC claim (§4.1): bond wires give
// the off-chip decoupling capacitors a direct path into the stack, so the
// supply droop after an activation step develops more slowly. The study
// steps an idle off-chip stacked DDR3 into the 0-0-0-2 full-rate state and
// tracks the worst droop over time for three designs: baseline, wire-bonded,
// and wire-bonded with 100 nF decaps behind every wire.
func (r *Runner) ACStudy() (*report.Table, error) {
	defer r.span("exp/ac-droop")()
	b, err := bench3d.StackedDDR3Off()
	if err != nil {
		return nil, err
	}
	type design struct {
		name     string
		wirebond bool
		decaps   bool
	}
	designs := []design{
		{"baseline", false, false},
		{"wire-bonded", true, false},
		{"wire-bonded + decaps", true, true},
	}
	cfg := transient.DefaultConfig()
	sampleSteps := []int{2, 4, 8, 16, 32, 80}
	t := &report.Table{
		Title:  "Extension (paper sec 4.1 AC claim): supply droop after an activation step",
		Header: []string{"design"},
	}
	for _, k := range sampleSteps {
		t.Header = append(t.Header, fmt.Sprintf("%.1f ns", float64(k)*cfg.Dt*1e9))
	}
	t.Header = append(t.Header, "DC (mV)")

	idleState := memstate.State{Dies: make([][]int, b.Spec.NumDRAM)}
	type outcome struct {
		curve []float64
		dcMV  float64
	}
	results, err := sweep(r, len(designs), func(i int) (outcome, error) {
		d := designs[i]
		spec := r.prepare(b.Spec)
		spec.WireBond = d.wirebond
		a, err := r.analyzer(spec, b.DRAMPower, nil)
		if err != nil {
			return outcome{}, err
		}
		idle, err := a.LoadedRHS(idleState, 0.25)
		if err != nil {
			return outcome{}, err
		}
		active, err := a.LoadedRHS(mustWorstState(b.Spec.DRAM.NumBanks), 1.0)
		if err != nil {
			return outcome{}, err
		}
		c := cfg
		if d.decaps {
			c.Decaps = transient.WireDecaps(a.Model, 100e-9, 0.05)
		}
		sim, err := transient.New(a.Model, c, idle)
		if err != nil {
			return outcome{}, err
		}
		curve, err := sim.Run(active, sampleSteps[len(sampleSteps)-1])
		if err != nil {
			return outcome{}, err
		}
		dc, err := a.AnalyzeCounts([]int{0, 0, 0, 2}, 1.0)
		if err != nil {
			return outcome{}, err
		}
		return outcome{curve: curve, dcMV: dc.MaxIRmV()}, nil
	})
	if err != nil {
		return nil, err
	}
	for i, d := range designs {
		row := []interface{}{d.name}
		for _, k := range sampleSteps {
			row = append(row, fmt.Sprintf("%.2f", results[i].curve[k-1]*1000))
		}
		row = append(row, fmt.Sprintf("%.2f", results[i].dcMV))
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes,
		"droop in mV after an idle -> 0-0-0-2@100% step; backward-Euler RC transient",
		"decaps: 100 nF behind every bond wire — the off-chip capacitors of the paper's AC remark")
	return t, nil
}

func mustWorstState(banks int) memstate.State {
	s, err := memstate.FromCounts([]int{0, 0, 0, 2}, memstate.WorstCaseEdge(banks))
	if err != nil {
		panic(err)
	}
	return s
}
