package memctrl

import "sort"

// schedule is the per-cycle scheduling pass: for each channel, the
// controller walks the priority queue and issues the first command
// (read, activate, or conflict precharge) whose conditions hold — timing
// met, no bus conflict, and the IR-drop constraint satisfied (§5.2).
func (s *sim) schedule() {
	if len(s.queue) == 0 {
		return
	}
	order := s.priorityOrder()
	if la := s.cfg.lookahead(len(order)); la < len(order) {
		order = order[:la]
	}
	// Resolve the priority order to request pointers up front: issuing a
	// read removes it from the queue, which would invalidate raw indices.
	cands := make([]*Request, len(order))
	for i, qi := range order {
		cands[i] = s.queue[qi]
	}
	issued := make([]bool, s.cfg.Channels)
	nIssued := 0
	for _, req := range cands {
		if nIssued == s.cfg.Channels {
			break
		}
		ch := s.channelOf(req)
		if issued[ch] {
			continue
		}
		if s.tryIssue(req, ch) {
			issued[ch] = true
			nIssued++
			if req.Done > 0 {
				s.removeFromQueue(req)
			}
		}
	}
}

// priorityOrder returns queue indices in scheduling priority. FCFS orders
// by arrival; DistR puts requests whose target die has the fewest open
// banks first (ties by arrival), balancing reads across dies.
func (s *sim) priorityOrder() []int {
	idx := make([]int, len(s.queue))
	for i := range idx {
		idx[i] = i
	}
	if s.cfg.Sched == DistR {
		sort.SliceStable(idx, func(a, b int) bool {
			ra, rb := s.queue[idx[a]], s.queue[idx[b]]
			oa, ob := s.openPerDie[ra.Die], s.openPerDie[rb.Die]
			if oa != ob {
				return oa < ob
			}
			return ra.Arrival < rb.Arrival
		})
	} else {
		sort.SliceStable(idx, func(a, b int) bool {
			return s.queue[idx[a]].Arrival < s.queue[idx[b]].Arrival
		})
	}
	return idx
}

// tryIssue attempts to make progress on one request; reports whether a
// command was issued this cycle.
func (s *sim) tryIssue(req *Request, ch int) bool {
	bk := &s.banks[req.Die][req.Bank]
	t := &s.cfg.Timing
	switch {
	case bk.state == bankActive && bk.row == req.Row:
		// Row hit: issue the read if the bank and data bus are ready.
		if s.now < bk.nextRD {
			return false
		}
		dataStart := s.now + int64(t.TCL)
		if s.busUntil[ch] > dataStart {
			return false
		}
		dataEnd := dataStart + int64(t.BurstCycles)
		s.busUntil[ch] = dataEnd + int64(t.BusGap)
		bk.nextRD = s.now + int64(t.TCCD)
		bk.lastUse = dataEnd
		req.Done = dataEnd
		s.latSum += dataEnd - req.Arrival
		s.done++
		s.res.RowHits++
		return true

	case bk.state == bankIdle && s.now >= bk.ready:
		// Row miss on a closed bank: activate.
		if !s.mayActivate(req.Die) {
			return false
		}
		bk.state = bankActivating
		bk.row = req.Row
		bk.ready = s.now + int64(t.TRCD)
		bk.rasEnd = s.now + int64(t.TRAS)
		bk.nextRD = s.now + int64(t.TRCD)
		bk.lastUse = s.now + int64(t.TRCD)
		s.openPerDie[req.Die]++
		s.lastACT = s.now
		s.actTimes = append(s.actTimes, s.now)
		s.res.Activations++
		s.res.RowMisses++
		s.trackOpenBanks()
		return true

	case bk.state == bankActive && bk.row != req.Row:
		// Conflict: precharge once tRAS allows and in-flight reads drain.
		if s.now < bk.rasEnd || s.now < bk.nextRD {
			return false
		}
		bk.state = bankPrecharging
		bk.ready = s.now + int64(t.TRP)
		s.openPerDie[req.Die]--
		return true
	}
	return false
}

// mayActivate applies the activation-limiting policy.
func (s *sim) mayActivate(die int) bool {
	if s.openPerDie[die] >= s.cfg.MaxBanksPerDie {
		return false // interleave cap (charge pump protection)
	}
	switch s.cfg.Policy {
	case PolicyStandard:
		// The standard policy is blind to 3D stacking (§5.2): the whole
		// stack presents as one DDR3 device, so the interleave limit
		// applies stack-wide, not per die.
		total := 0
		for _, n := range s.openPerDie {
			total += n
		}
		if total >= s.cfg.MaxBanksPerDie {
			s.res.Blocked++
			return false
		}
		t := &s.cfg.Timing
		if s.now-s.lastACT < int64(t.TRRD) {
			s.res.Blocked++
			return false
		}
		// tFAW: at most 4 activates in any tFAW window.
		window := s.now - int64(t.TFAW)
		n := 0
		for i := len(s.actTimes) - 1; i >= 0 && s.actTimes[i] > window; i-- {
			n++
		}
		if n >= 4 {
			s.res.Blocked++
			return false
		}
		return true
	default: // PolicyIRAware
		// Check the state the activation creates... An uncovered LUT
		// point (lut.ErrNotCovered) blocks like an over-limit state —
		// conservative — but is also counted as a miss so an undersized
		// table is visible in the result instead of silently throttling.
		counts, _ := s.countsAndActive(die, 1)
		ir, err := s.cfg.LUT.MaxIR(counts, perDieIO(counts, s.cfg.MaxBanksPerDie))
		if err != nil || ir > s.cfg.IRLimit {
			s.noteLUTMiss(err)
			s.res.Blocked++
			return false
		}
		// ...and the state it can decay into once other dies drain and
		// this die takes the whole bus (conservative against idle-close).
		alone := make([]int, s.cfg.Dies)
		alone[die] = s.openPerDie[die] + 1
		ir, err = s.cfg.LUT.MaxIR(alone, 1.0)
		if err != nil || ir > s.cfg.IRLimit {
			s.noteLUTMiss(err)
			s.res.Blocked++
			return false
		}
		return true
	}
}

// channelOf resolves a request's channel.
func (s *sim) channelOf(req *Request) int {
	if s.cfg.ChannelOf != nil {
		ch := s.cfg.ChannelOf(req.Die, req.Bank)
		if ch < 0 || ch >= s.cfg.Channels {
			return 0
		}
		return ch
	}
	return req.Bank % s.cfg.Channels
}

func (s *sim) trackOpenBanks() {
	open := 0
	for _, n := range s.openPerDie {
		open += n
	}
	if open > s.res.MaxOpenBanks {
		s.res.MaxOpenBanks = open
	}
}

func (s *sim) removeFromQueue(req *Request) {
	for i, r := range s.queue {
		if r == req {
			s.queue = append(s.queue[:i], s.queue[i+1:]...)
			return
		}
	}
}
