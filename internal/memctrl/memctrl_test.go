package memctrl

import (
	"math"
	"testing"
	"testing/quick"

	"pdn3d/internal/lut"
)

// tinyLUT builds a table via FromPoints covering per-die counts up to
// maxPerDie for a 2-die stack at IO levels {0.5, 1.0}, with every stored
// drop equal to irV.
func tinyLUT(t *testing.T, maxPerDie int, irV float64) *lut.Table {
	t.Helper()
	var pts []lut.Point
	for a := 0; a <= maxPerDie; a++ {
		for b := 0; b <= maxPerDie; b++ {
			for _, io := range []float64{0.5, 1.0} {
				pts = append(pts, lut.Point{Counts: []int{a, b}, IO: io, MaxIR: irV})
			}
		}
	}
	table, err := lut.FromPoints(2, maxPerDie, []float64{0.5, 1.0}, pts)
	if err != nil {
		t.Fatal(err)
	}
	return table
}

// An undersized LUT must not silently throttle: uncovered states are
// still treated conservatively (blocked / not recorded) but the misses
// are surfaced on the result.
func TestLUTMissesAreCounted(t *testing.T) {
	table := tinyLUT(t, 1, 0.010)
	s := &sim{cfg: DefaultConfig(PolicyIRAware, FCFS, table, 0.030)}
	s.cfg.Dies = 2
	s.cfg.BanksPerDie = 8
	s.openPerDie = []int{2, 0} // two open banks: outside the maxPerDie=1 grid

	s.observeIR()
	if s.res.LUTMisses != 1 {
		t.Fatalf("observeIR on uncovered state: LUTMisses = %d, want 1", s.res.LUTMisses)
	}
	if s.res.MaxIR != 0 {
		t.Errorf("uncovered state leaked an IR value: %g", s.res.MaxIR)
	}

	// mayActivate's IR check (one open bank plus the new activation = two,
	// outside the maxPerDie=1 grid) is blocked AND counted.
	s.openPerDie = []int{1, 0}
	blockedBefore := s.res.Blocked
	if s.mayActivate(0) {
		t.Error("activation into an uncovered state should be blocked")
	}
	if s.res.Blocked != blockedBefore+1 {
		t.Errorf("Blocked = %d, want %d", s.res.Blocked, blockedBefore+1)
	}
	if s.res.LUTMisses != 2 {
		t.Errorf("LUTMisses = %d, want 2", s.res.LUTMisses)
	}

	// A covered, under-limit state neither blocks nor counts a miss.
	s.openPerDie = []int{0, 0}
	if !s.mayActivate(1) {
		t.Error("covered under-limit activation should pass")
	}
	if s.res.LUTMisses != 2 {
		t.Errorf("covered lookup bumped LUTMisses to %d", s.res.LUTMisses)
	}
}

func TestTimingValidate(t *testing.T) {
	if err := DDR3_1600().Validate(); err != nil {
		t.Fatalf("default timing invalid: %v", err)
	}
	bad := DDR3_1600()
	bad.TCL = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero tCL: want error")
	}
	bad2 := DDR3_1600()
	bad2.TRAS = 5
	if err := bad2.Validate(); err == nil {
		t.Error("tRAS < tRCD: want error")
	}
}

func TestGenerateWorkload(t *testing.T) {
	cfg := DefaultWorkload(4, 8)
	cfg.Requests = 5000
	reqs, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(reqs) != 5000 {
		t.Fatalf("generated %d requests", len(reqs))
	}
	hits := 0
	for i, r := range reqs {
		if r.Die < 0 || r.Die >= 4 || r.Bank < 0 || r.Bank >= 8 || r.Row < 0 || r.Row >= cfg.Rows {
			t.Fatalf("request %d out of range: %+v", i, r)
		}
		if r.Arrival != int64(i*cfg.InterArrival) {
			t.Fatalf("request %d arrival %d, want %d", i, r.Arrival, i*cfg.InterArrival)
		}
		if i > 0 && r.Die == reqs[i-1].Die && r.Bank == reqs[i-1].Bank && r.Row == reqs[i-1].Row {
			hits++
		}
	}
	rate := float64(hits) / float64(len(reqs)-1)
	if math.Abs(rate-0.8) > 0.03 {
		t.Errorf("row-streak rate = %.3f, want ~0.80", rate)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, _ := Generate(DefaultWorkload(4, 8))
	b, _ := Generate(DefaultWorkload(4, 8))
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed must give identical streams")
		}
	}
	cfg := DefaultWorkload(4, 8)
	cfg.Seed = 2
	c, _ := Generate(cfg)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds should differ")
	}
}

func TestGenerateRejectsBadConfig(t *testing.T) {
	for _, mut := range []func(*WorkloadConfig){
		func(c *WorkloadConfig) { c.Requests = 0 },
		func(c *WorkloadConfig) { c.InterArrival = 0 },
		func(c *WorkloadConfig) { c.RowHitRate = 1.0 },
		func(c *WorkloadConfig) { c.Dies = 0 },
	} {
		cfg := DefaultWorkload(4, 8)
		mut(&cfg)
		if _, err := Generate(cfg); err == nil {
			t.Errorf("config %+v: want error", cfg)
		}
	}
}

func stdConfig() Config {
	return DefaultConfig(PolicyStandard, FCFS, nil, 0)
}

func TestSimulateStandardCompletes(t *testing.T) {
	cfg := stdConfig()
	wl := DefaultWorkload(cfg.Dies, cfg.BanksPerDie)
	wl.Requests = 2000
	reqs, err := Generate(wl)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Simulate(cfg, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if res.RowHits+res.RowMisses < len(reqs) {
		t.Errorf("hits %d + misses %d < %d requests", res.RowHits, res.RowMisses, len(reqs))
	}
	for i, r := range reqs {
		if r.Done <= r.Arrival {
			t.Fatalf("request %d done %d not after arrival %d", i, r.Done, r.Arrival)
		}
	}
	if res.Bandwidth <= 0 || res.Bandwidth > 0.25 {
		t.Errorf("bandwidth %.3f outside (0, bus limit 0.25]", res.Bandwidth)
	}
	if res.MaxOpenBanks > cfg.Dies*cfg.MaxBanksPerDie {
		t.Errorf("open banks %d exceed interleave cap", res.MaxOpenBanks)
	}
	t.Logf("standard: %.1f us, BW %.3f, ACTs %d, open<=%d, blocked %d",
		res.RuntimeUS, res.Bandwidth, res.Activations, res.MaxOpenBanks, res.Blocked)
}

func TestStandardRespectsTFAW(t *testing.T) {
	// All requests to distinct banks, same arrival burst: activations
	// must be spaced by tRRD and capped 4-per-tFAW.
	cfg := stdConfig()
	var reqs []Request
	for i := 0; i < 16; i++ {
		reqs = append(reqs, Request{ID: i, Arrival: 0, Die: i % 4, Bank: (i * 3) % 8, Row: i})
	}
	if _, err := Simulate(cfg, reqs); err != nil {
		t.Fatal(err)
	}
	// Reconstruct ACT times from the sim: re-run with instrumentation via
	// the result counters instead; here just assert it completed — the
	// detailed window check is in the whitebox test below.
}

func TestTFAWWindowWhitebox(t *testing.T) {
	s := &sim{cfg: stdConfig()}
	s.banks = make([][]bank, 4)
	for d := range s.banks {
		s.banks[d] = make([]bank, 8)
	}
	s.openPerDie = make([]int, 4)
	s.lastACT = -100
	// Four activates inside the window block the fifth.
	s.actTimes = []int64{10, 20, 28, 36}
	s.now = 40
	if s.mayActivate(0) {
		t.Error("fifth ACT inside tFAW window must be blocked")
	}
	s.now = 44 // window (12,44]: ACT@10 expired; tRRD 8 from 36 also met
	s.lastACT = 36
	if !s.mayActivate(0) {
		t.Error("ACT should be allowed once the window drains and tRRD passes")
	}
}

func TestInterleaveCapWhitebox(t *testing.T) {
	// The standard policy treats the stack as one DDR3 device: two open
	// banks anywhere exhaust the interleave budget.
	s := &sim{cfg: stdConfig()}
	s.openPerDie = []int{2, 0, 0, 0}
	s.lastACT = -100
	if s.mayActivate(0) {
		t.Error("third bank on the same die must be blocked")
	}
	if s.mayActivate(1) {
		t.Error("standard policy must block other dies too (stack-wide cap)")
	}
	s.openPerDie = []int{1, 0, 0, 0}
	if !s.mayActivate(1) {
		t.Error("second bank within the stack-wide budget should be allowed")
	}
}

func TestPerDieIO(t *testing.T) {
	// Active dies split the bus evenly; a single open bank already
	// sustains the full stream (tCCD = burst length).
	cases := []struct {
		counts []int
		want   float64
	}{
		{[]int{0, 0, 0, 2}, 1.0},
		{[]int{0, 0, 0, 1}, 1.0},
		{[]int{0, 0, 2, 2}, 0.5},
		{[]int{2, 2, 2, 2}, 0.25},
		{[]int{0, 0, 1, 1}, 0.5},
		{[]int{0, 0, 0, 0}, 0},
	}
	for _, c := range cases {
		if got := perDieIO(c.counts, 2); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("perDieIO(%v) = %g, want %g", c.counts, got, c.want)
		}
	}
}

func TestPerDieIOBounded(t *testing.T) {
	f := func(a, b, c, d uint8) bool {
		counts := []int{int(a % 3), int(b % 3), int(c % 3), int(d % 3)}
		io := perDieIO(counts, 2)
		return io >= 0 && io <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSimulateValidation(t *testing.T) {
	cfg := stdConfig()
	if _, err := Simulate(cfg, nil); err == nil {
		t.Error("empty stream: want error")
	}
	bad := []Request{{Die: 9, Bank: 0}}
	if _, err := Simulate(cfg, bad); err == nil {
		t.Error("out-of-range die: want error")
	}
	irCfg := DefaultConfig(PolicyIRAware, DistR, nil, 0.024)
	if _, err := Simulate(irCfg, []Request{{}}); err == nil {
		t.Error("IR-aware without LUT: want error")
	}
}

func TestRowHitsDominateWithLocality(t *testing.T) {
	cfg := stdConfig()
	wl := DefaultWorkload(cfg.Dies, cfg.BanksPerDie)
	wl.Requests = 3000
	reqs, _ := Generate(wl)
	res, err := Simulate(cfg, reqs)
	if err != nil {
		t.Fatal(err)
	}
	hitRate := float64(res.RowHits) / float64(res.RowHits+res.RowMisses)
	if hitRate < 0.5 {
		t.Errorf("row hit rate %.2f too low for an 80%%-locality stream", hitRate)
	}
	t.Logf("observed row hit rate %.2f", hitRate)
}

func TestStringers(t *testing.T) {
	if PolicyStandard.String() != "Standard" || PolicyIRAware.String() != "IR-aware" {
		t.Error("policy strings")
	}
	if FCFS.String() != "FCFS" || DistR.String() != "DistR" {
		t.Error("scheduler strings")
	}
}
