package memctrl

import (
	"testing"
)

// runOne drives a tiny request stream through the simulator and returns
// the result.
func runOne(t *testing.T, cfg Config, reqs []Request) *Result {
	t.Helper()
	res, err := Simulate(cfg, reqs)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestRowHitPipelines(t *testing.T) {
	// Three same-row reads: one activation, three hits.
	cfg := stdConfig()
	reqs := []Request{
		{ID: 0, Arrival: 0, Die: 0, Bank: 0, Row: 7},
		{ID: 1, Arrival: 1, Die: 0, Bank: 0, Row: 7},
		{ID: 2, Arrival: 2, Die: 0, Bank: 0, Row: 7},
	}
	res := runOne(t, cfg, reqs)
	if res.Activations != 1 {
		t.Errorf("activations = %d, want 1", res.Activations)
	}
	if res.RowHits != 3 {
		t.Errorf("row hits = %d, want 3", res.RowHits)
	}
	// Reads pipeline at tCCD on one bank.
	gap := reqs[2].Done - reqs[1].Done
	if gap != int64(cfg.Timing.TCCD) && gap != int64(cfg.Timing.BurstCycles+cfg.Timing.BusGap) {
		t.Errorf("read spacing = %d, want tCCD %d or bus slot %d",
			gap, cfg.Timing.TCCD, cfg.Timing.BurstCycles+cfg.Timing.BusGap)
	}
}

func TestRowConflictPrecharges(t *testing.T) {
	// Two reads to the same bank, different rows: ACT, read, PRE, ACT.
	cfg := stdConfig()
	reqs := []Request{
		{ID: 0, Arrival: 0, Die: 0, Bank: 0, Row: 1},
		{ID: 1, Arrival: 1, Die: 0, Bank: 0, Row: 2},
	}
	res := runOne(t, cfg, reqs)
	if res.Activations != 2 {
		t.Errorf("activations = %d, want 2", res.Activations)
	}
	// The second read cannot finish before tRAS + tRP + tRCD + tCL.
	tm := cfg.Timing
	minDone := int64(tm.TRAS + tm.TRP + tm.TRCD + tm.TCL + tm.BurstCycles)
	if reqs[1].Done < minDone {
		t.Errorf("conflicting read done at %d, min possible %d", reqs[1].Done, minDone)
	}
}

func TestFirstReadLatency(t *testing.T) {
	cfg := stdConfig()
	reqs := []Request{{ID: 0, Arrival: 0, Die: 2, Bank: 3, Row: 9}}
	runOne(t, cfg, reqs)
	tm := cfg.Timing
	// Command issues on cycle 1 (arrival admitted, then scheduled); the
	// data ends after tRCD + tCL + burst, give or take a cycle of
	// scheduling skew.
	want := int64(tm.TRCD + tm.TCL + tm.BurstCycles)
	if reqs[0].Done < want || reqs[0].Done > want+3 {
		t.Errorf("cold read done at %d, want ~%d", reqs[0].Done, want)
	}
}

func TestBusSerializesAcrossBanks(t *testing.T) {
	// Many same-cycle requests on different dies: data bursts must not
	// overlap on the single channel.
	cfg := stdConfig()
	cfg.Policy = PolicyStandard
	var reqs []Request
	for i := 0; i < 6; i++ {
		reqs = append(reqs, Request{ID: i, Arrival: 0, Die: i % 4, Bank: i, Row: 5})
	}
	runOne(t, cfg, reqs)
	seen := map[int64]bool{}
	for _, r := range reqs {
		for c := r.Done - int64(cfg.Timing.BurstCycles); c < r.Done; c++ {
			if seen[c] {
				t.Fatalf("bus cycle %d used twice", c)
			}
			seen[c] = true
		}
	}
}

func TestMultiChannelParallelism(t *testing.T) {
	// With 4 channels, 4 same-cycle reads on banks mapping to different
	// channels finish sooner than on one channel.
	mk := func(channels int) int64 {
		cfg := stdConfig()
		cfg.Channels = channels
		reqs := []Request{
			{ID: 0, Arrival: 0, Die: 0, Bank: 0, Row: 1},
			{ID: 1, Arrival: 0, Die: 1, Bank: 1, Row: 1},
			{ID: 2, Arrival: 0, Die: 2, Bank: 2, Row: 1},
			{ID: 3, Arrival: 0, Die: 3, Bank: 3, Row: 1},
		}
		res, err := Simulate(cfg, reqs)
		if err != nil {
			t.Fatal(err)
		}
		return res.Cycles
	}
	if c1, c4 := mk(1), mk(4); c4 > c1 {
		t.Errorf("4 channels (%d cycles) should not be slower than 1 (%d)", c4, c1)
	}
}

func TestQueueBackpressure(t *testing.T) {
	// A slow standard config with a tiny queue must still finish, with
	// arrivals held back by queue depth.
	cfg := stdConfig()
	cfg.QueueDepth = 4
	wl := DefaultWorkload(4, 8)
	wl.Requests = 500
	reqs, err := Generate(wl)
	if err != nil {
		t.Fatal(err)
	}
	res := runOne(t, cfg, reqs)
	if res.Cycles <= 0 {
		t.Fatal("no progress")
	}
	for i, r := range reqs {
		if r.Done == 0 {
			t.Fatalf("request %d never completed", i)
		}
	}
}

func TestDeterministicSimulation(t *testing.T) {
	cfg := stdConfig()
	wl := DefaultWorkload(4, 8)
	wl.Requests = 800
	r1, _ := Generate(wl)
	r2, _ := Generate(wl)
	a := runOne(t, cfg, r1)
	b := runOne(t, cfg, r2)
	if a.Cycles != b.Cycles || a.Activations != b.Activations || a.RowHits != b.RowHits {
		t.Errorf("simulation not deterministic: %+v vs %+v", a, b)
	}
}

func TestDistRPrefersIdleDies(t *testing.T) {
	s := &sim{cfg: DefaultConfig(PolicyStandard, DistR, nil, 0)}
	s.openPerDie = []int{2, 0, 1, 0}
	s.queue = []*Request{
		{ID: 0, Arrival: 0, Die: 0, Bank: 0},
		{ID: 1, Arrival: 1, Die: 1, Bank: 0},
		{ID: 2, Arrival: 2, Die: 2, Bank: 0},
		{ID: 3, Arrival: 3, Die: 3, Bank: 0},
	}
	order := s.priorityOrder()
	first := s.queue[order[0]]
	if first.Die != 1 {
		t.Errorf("DistR first pick die %d (ID %d), want die 1 (fewest open, earliest)", first.Die, first.ID)
	}
	last := s.queue[order[len(order)-1]]
	if last.Die != 0 {
		t.Errorf("DistR last pick die %d, want the busiest die 0", last.Die)
	}
}

func TestFCFSOrder(t *testing.T) {
	s := &sim{cfg: DefaultConfig(PolicyStandard, FCFS, nil, 0)}
	s.openPerDie = []int{0, 9, 0, 0}
	s.queue = []*Request{
		{ID: 0, Arrival: 5, Die: 1, Bank: 0},
		{ID: 1, Arrival: 2, Die: 1, Bank: 1},
		{ID: 2, Arrival: 9, Die: 0, Bank: 0},
	}
	order := s.priorityOrder()
	if s.queue[order[0]].ID != 1 || s.queue[order[1]].ID != 0 || s.queue[order[2]].ID != 2 {
		t.Errorf("FCFS order wrong: %v", order)
	}
}
