package memctrl

import (
	"errors"
	"fmt"

	"pdn3d/internal/lut"
)

// IRPolicy selects how the controller limits parallel activations.
type IRPolicy uint8

const (
	// PolicyStandard is the JEDEC DDR3 policy: global tRRD spacing and a
	// four-activate tFAW window, blind to 3D stacking (§5.2).
	PolicyStandard IRPolicy = iota
	// PolicyIRAware replaces tRRD/tFAW with a look-up-table check: an
	// activation issues only if the resulting memory state's maximum IR
	// drop stays under the configured constraint.
	PolicyIRAware
)

func (p IRPolicy) String() string {
	if p == PolicyIRAware {
		return "IR-aware"
	}
	return "Standard"
}

// Scheduler selects the queue priority order.
type Scheduler uint8

const (
	// FCFS gives the oldest request the highest priority.
	FCFS Scheduler = iota
	// DistR (distributed-read) gives requests targeting the die with the
	// fewest open banks the highest priority, balancing reads across dies
	// to raise parallelism under the IR constraint (§5.2).
	DistR
)

func (s Scheduler) String() string {
	if s == DistR {
		return "DistR"
	}
	return "FCFS"
}

// Config parameterizes one simulation.
type Config struct {
	// Timing is the DRAM timing set.
	Timing Timing
	// Dies and BanksPerDie define the stack geometry.
	Dies, BanksPerDie int
	// Channels is the independent channel count. Stacked DDR3 has one
	// channel; Wide I/O has four (one per quadrant); HMC has sixteen
	// vault channels.
	Channels int
	// ChannelOf maps a request's (die, bank) to its channel. Nil selects
	// the default bank%Channels interleaving.
	ChannelOf func(die, bank int) int
	// QueueDepth is the priority queue size (paper: 32).
	QueueDepth int
	// Policy selects standard vs. IR-drop-aware activation limiting.
	Policy IRPolicy
	// Sched selects FCFS vs. DistR priority.
	Sched Scheduler
	// IRLimit is the IR-drop constraint in volts for PolicyIRAware.
	IRLimit float64
	// LUT is the IR-drop look-up table; required for PolicyIRAware and
	// used in any mode to report the worst memory-state IR encountered.
	LUT *lut.Table
	// MaxBanksPerDie caps simultaneously open banks per die
	// (2: interleave limit protecting the charge pumps, §2.3).
	MaxBanksPerDie int
	// IdleClose closes a bank after this many cycles without reads
	// (§2.3). Zero selects 24.
	IdleClose int
	// Lookahead caps how deep into the priority order the scheduler
	// searches for an issuable command each cycle. FCFS keeps near-arrival
	// order with a small window; DistR re-sorts the whole queue, so depth
	// matters less there. Zero selects 6 for FCFS and the full queue for
	// DistR.
	Lookahead int
}

// DefaultConfig returns the paper's controller setup for a 4-die, 8-bank
// stacked DDR3 with the given policy and scheduler.
func DefaultConfig(policy IRPolicy, sched Scheduler, table *lut.Table, irLimitV float64) Config {
	return Config{
		Timing:         DDR3_1600(),
		Dies:           4,
		BanksPerDie:    8,
		Channels:       1,
		QueueDepth:     32,
		Policy:         policy,
		Sched:          sched,
		IRLimit:        irLimitV,
		LUT:            table,
		MaxBanksPerDie: 2,
		IdleClose:      0, // package default
	}
}

// Validate checks the configuration.
func (c *Config) Validate() error {
	if err := c.Timing.Validate(); err != nil {
		return err
	}
	if c.Dies <= 0 || c.BanksPerDie <= 0 {
		return fmt.Errorf("memctrl: empty stack geometry %dx%d", c.Dies, c.BanksPerDie)
	}
	if c.Channels <= 0 {
		return fmt.Errorf("memctrl: channels %d must be positive", c.Channels)
	}
	if c.QueueDepth <= 0 {
		return fmt.Errorf("memctrl: queue depth %d must be positive", c.QueueDepth)
	}
	if c.MaxBanksPerDie <= 0 {
		return fmt.Errorf("memctrl: max banks per die %d must be positive", c.MaxBanksPerDie)
	}
	if c.Policy == PolicyIRAware {
		if c.LUT == nil {
			return fmt.Errorf("memctrl: IR-aware policy needs a look-up table")
		}
		if c.IRLimit <= 0 {
			return fmt.Errorf("memctrl: IR-aware policy needs a positive IR limit")
		}
		if c.LUT.Dies != c.Dies {
			return fmt.Errorf("memctrl: LUT covers %d dies, stack has %d", c.LUT.Dies, c.Dies)
		}
	}
	return nil
}

func (c *Config) idleClose() int64 {
	if c.IdleClose > 0 {
		return int64(c.IdleClose)
	}
	return 28
}

func (c *Config) lookahead(queueLen int) int {
	if c.Lookahead > 0 {
		return c.Lookahead
	}
	if c.Sched == FCFS {
		return 16
	}
	return queueLen
}

// Result reports one simulation run.
type Result struct {
	// Cycles is the total runtime in memory clocks.
	Cycles int64
	// RuntimeUS is the runtime in microseconds.
	RuntimeUS float64
	// Bandwidth is reads per clock (the paper's Table 6 metric).
	Bandwidth float64
	// MaxIR is the worst memory-state IR drop encountered (V), from the
	// LUT; zero when no LUT was given.
	MaxIR float64
	// RowHits and RowMisses count read outcomes.
	RowHits, RowMisses int
	// Activations counts ACT commands.
	Activations int
	// AvgLatency is the mean arrival-to-data-end latency in cycles.
	AvgLatency float64
	// MaxOpenBanks is the peak number of simultaneously open banks.
	MaxOpenBanks int
	// Blocked counts scheduling attempts rejected by the IR constraint
	// or the standard policy's windows.
	Blocked int64
	// LUTMisses counts look-ups that fell outside the built LUT grid
	// (lut.ErrNotCovered). The policy stays conservative on a miss —
	// the state is treated as over-limit — but a non-zero count means
	// the table was built too small for the simulated configuration, so
	// it is surfaced instead of silently swallowed.
	LUTMisses int64
}

type bankState uint8

const (
	bankIdle bankState = iota
	bankActivating
	bankActive
	bankPrecharging
)

type bank struct {
	state   bankState
	row     int
	ready   int64 // cycle the current transition completes
	rasEnd  int64 // earliest precharge (ACT + tRAS)
	nextRD  int64 // earliest next read issue (tCCD)
	lastUse int64 // last read data-end (idle-close countdown)
}

// Simulate runs the request stream to completion and returns statistics.
// The input slice's Done fields are filled in place.
func Simulate(cfg Config, reqs []Request) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(reqs) == 0 {
		return nil, fmt.Errorf("memctrl: empty request stream")
	}
	s := &sim{cfg: cfg, reqs: reqs}
	return s.run()
}

type sim struct {
	cfg  Config
	reqs []Request

	now      int64
	banks    [][]bank // [die][bank]
	busUntil []int64  // per channel
	queue    []*Request
	nextArr  int
	done     int

	openPerDie []int
	lastACT    int64
	actTimes   []int64 // ACT history for tFAW
	res        Result
	latSum     int64
}

func (s *sim) run() (*Result, error) {
	cfg := &s.cfg
	s.banks = make([][]bank, cfg.Dies)
	for d := range s.banks {
		s.banks[d] = make([]bank, cfg.BanksPerDie)
	}
	s.busUntil = make([]int64, cfg.Channels)
	s.openPerDie = make([]int, cfg.Dies)
	s.lastACT = -int64(cfg.Timing.TRRD)

	for _, r := range s.reqs {
		if r.Die < 0 || r.Die >= cfg.Dies || r.Bank < 0 || r.Bank >= cfg.BanksPerDie {
			return nil, fmt.Errorf("memctrl: request %d targets die %d bank %d outside %dx%d stack",
				r.ID, r.Die, r.Bank, cfg.Dies, cfg.BanksPerDie)
		}
	}

	guard := int64(len(s.reqs))*int64(cfg.Timing.TRAS+cfg.Timing.TRP+cfg.Timing.TRCD+cfg.Timing.TCL+64) + 1_000_000
	for s.done < len(s.reqs) {
		if s.now > guard {
			return nil, fmt.Errorf("memctrl: simulation exceeded %d cycles (deadlock?)", guard)
		}
		s.tick()
		s.now++
	}
	s.res.Cycles = s.maxDone()
	s.res.RuntimeUS = float64(s.res.Cycles) * cfg.Timing.ClockNS / 1000
	s.res.Bandwidth = float64(len(s.reqs)) / float64(s.res.Cycles)
	s.res.AvgLatency = float64(s.latSum) / float64(len(s.reqs))
	return &s.res, nil
}

func (s *sim) maxDone() int64 {
	var mx int64
	for i := range s.reqs {
		if s.reqs[i].Done > mx {
			mx = s.reqs[i].Done
		}
	}
	return mx
}

func (s *sim) tick() {
	s.updateBanks()
	s.admitArrivals()
	s.schedule()
	s.observeIR()
}

// updateBanks advances bank state machines and applies the idle-close
// policy.
func (s *sim) updateBanks() {
	idle := s.cfg.idleClose()
	for d := range s.banks {
		for b := range s.banks[d] {
			bk := &s.banks[d][b]
			switch bk.state {
			case bankActivating:
				if s.now >= bk.ready {
					bk.state = bankActive
				}
			case bankPrecharging:
				if s.now >= bk.ready {
					bk.state = bankIdle
				}
			case bankActive:
				if s.now >= bk.rasEnd && s.now-bk.lastUse >= idle && s.now >= bk.nextRD {
					bk.state = bankPrecharging
					bk.ready = s.now + int64(s.cfg.Timing.TRP)
					s.openPerDie[d]--
				}
			}
		}
	}
}

func (s *sim) admitArrivals() {
	for s.nextArr < len(s.reqs) && len(s.queue) < s.cfg.QueueDepth &&
		s.reqs[s.nextArr].Arrival <= s.now {
		s.queue = append(s.queue, &s.reqs[s.nextArr])
		s.nextArr++
	}
}

// observeIR looks up the current memory state's IR drop and tracks the
// worst one seen (what the paper's Table 6 reports as "Max IR drop").
func (s *sim) observeIR() {
	if s.cfg.LUT == nil {
		return
	}
	counts, active := s.countsAndActive(-1, 0)
	if active == 0 {
		return
	}
	ir, err := s.cfg.LUT.MaxIR(counts, perDieIO(counts, s.cfg.MaxBanksPerDie))
	if err != nil {
		s.noteLUTMiss(err)
		return
	}
	if ir > s.res.MaxIR {
		s.res.MaxIR = ir
	}
}

// noteLUTMiss records an uncovered LUT point instead of silently ignoring
// it; other look-up failures cannot happen (MaxIR only fails with
// *NotCoveredError), but the errors.Is guard keeps that assumption checked.
func (s *sim) noteLUTMiss(err error) {
	if errors.Is(err, lut.ErrNotCovered) {
		s.res.LUTMisses++
	}
}

// countsAndActive returns the per-die open bank counts; when extraDie >= 0
// the hypothetical extra open banks are added to that die.
func (s *sim) countsAndActive(extraDie, extra int) ([]int, int) {
	counts := make([]int, s.cfg.Dies)
	active := 0
	for d, n := range s.openPerDie {
		counts[d] = n
		if extraDie == d {
			counts[d] += extra
		}
		if counts[d] > 0 {
			active++
		}
	}
	return counts, active
}

// perDieIO returns the per-die I/O activity of a memory state on the
// shared zero-bubble bus: active dies split the bus evenly. A single open
// bank already sustains the full stream (tCCD equals the burst length), so
// the bank count does not enter.
func perDieIO(counts []int, maxPerDie int) float64 {
	_ = maxPerDie
	active := 0
	for _, c := range counts {
		if c > 0 {
			active++
		}
	}
	if active == 0 {
		return 0
	}
	return 1 / float64(active)
}
