// Package memctrl is the cycle-accurate 3D DRAM memory controller
// simulator of the paper's Section 2.3 and 5: per-bank state machines with
// the major DDR3 read timing parameters, a 32-entry priority queue,
// a synthetic read workload with row locality, and the three read policies
// of Table 6 — the JEDEC standard policy (tRRD/tFAW), the IR-drop-aware
// first-come-first-served policy, and the IR-drop-aware distributed-read
// policy driven by the R-Mesh look-up table.
package memctrl

import "fmt"

// Timing holds the DRAM read timing parameters in memory-clock cycles
// (§2.3: tCL, tRCD, tRP, tRAS, tCCD are modelled; tRRD and tFAW implement
// the JEDEC standard policy).
type Timing struct {
	// TCL is the read (CAS) latency.
	TCL int
	// TRCD is the activate-to-read delay.
	TRCD int
	// TRP is the precharge time.
	TRP int
	// TRAS is the minimum activate-to-precharge time.
	TRAS int
	// TCCD is the minimum read-to-read spacing on one bank.
	TCCD int
	// TRRD is the standard policy's activate-to-activate spacing.
	TRRD int
	// TFAW is the standard policy's four-activate window.
	TFAW int
	// BurstCycles is the data-bus occupancy of one read burst
	// (BL8 on a DDR bus = 4 clocks).
	BurstCycles int
	// BusGap is the bus turnaround between consecutive bursts from
	// different sources (die-to-die switching on the shared TSV bus).
	BusGap int
	// ClockNS is the memory clock period in nanoseconds.
	ClockNS float64
}

// DDR3_1600 returns DDR3-1600K-class timing (800 MHz clock), with the
// paper's standard-policy tRRD = 8 and tFAW = 32.
func DDR3_1600() Timing {
	return Timing{
		TCL: 11, TRCD: 11, TRP: 11, TRAS: 28, TCCD: 4,
		TRRD: 8, TFAW: 32,
		BurstCycles: 4, BusGap: 2, ClockNS: 1.25,
	}
}

// Validate checks the parameters for consistency.
func (t Timing) Validate() error {
	type field struct {
		name string
		v    int
	}
	for _, f := range []field{
		{"tCL", t.TCL}, {"tRCD", t.TRCD}, {"tRP", t.TRP}, {"tRAS", t.TRAS},
		{"tCCD", t.TCCD}, {"tRRD", t.TRRD}, {"tFAW", t.TFAW},
		{"burst", t.BurstCycles},
	} {
		if f.v <= 0 {
			return fmt.Errorf("memctrl: %s = %d must be positive", f.name, f.v)
		}
	}
	if t.ClockNS <= 0 {
		return fmt.Errorf("memctrl: clock period %g must be positive", t.ClockNS)
	}
	if t.TRAS < t.TRCD {
		return fmt.Errorf("memctrl: tRAS %d below tRCD %d", t.TRAS, t.TRCD)
	}
	if t.TFAW < t.TRRD {
		return fmt.Errorf("memctrl: tFAW %d below tRRD %d", t.TFAW, t.TRRD)
	}
	return nil
}
