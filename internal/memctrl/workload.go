package memctrl

import (
	"fmt"
	"math/rand"
)

// Request is one read request.
type Request struct {
	// ID is the request's position in the generated stream.
	ID int
	// Arrival is the cycle the request reaches the controller.
	Arrival int64
	// Die, Bank, Row address the target.
	Die, Bank, Row int
	// Done is filled by the simulator: the cycle the last data beat
	// leaves the bus.
	Done int64
}

// WorkloadConfig parameterizes the synthetic read stream of §2.3: 10 000
// reads, one arrival every five cycles (a heavy load), and temporal/spatial
// locality yielding an 80 % row-hit rate.
type WorkloadConfig struct {
	// Requests is the stream length.
	Requests int
	// InterArrival is the cycles between consecutive arrivals.
	InterArrival int
	// RowHitRate is the probability that a request continues the current
	// row streak (same die/bank/row as its predecessor).
	RowHitRate float64
	// Dies, Banks, Rows bound the address space.
	Dies, Banks, Rows int
	// Seed makes the stream reproducible.
	Seed int64
}

// DefaultWorkload returns the paper's workload for a stack with the given
// geometry.
func DefaultWorkload(dies, banks int) WorkloadConfig {
	return WorkloadConfig{
		Requests:     10000,
		InterArrival: 5,
		RowHitRate:   0.8,
		Dies:         dies,
		Banks:        banks,
		Rows:         16384,
		Seed:         1,
	}
}

// Validate checks the configuration.
func (c WorkloadConfig) Validate() error {
	if c.Requests <= 0 {
		return fmt.Errorf("memctrl: workload needs requests, got %d", c.Requests)
	}
	if c.InterArrival <= 0 {
		return fmt.Errorf("memctrl: inter-arrival %d must be positive", c.InterArrival)
	}
	if c.RowHitRate < 0 || c.RowHitRate >= 1 {
		return fmt.Errorf("memctrl: row hit rate %g out of [0,1)", c.RowHitRate)
	}
	if c.Dies <= 0 || c.Banks <= 0 || c.Rows <= 0 {
		return fmt.Errorf("memctrl: empty address space %dx%dx%d", c.Dies, c.Banks, c.Rows)
	}
	return nil
}

// Generate produces the request stream: each request either continues the
// previous request's row streak (with probability RowHitRate) or jumps to a
// uniformly random (die, bank, row).
func Generate(c WorkloadConfig) ([]Request, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(c.Seed))
	out := make([]Request, c.Requests)
	die, bank, row := rng.Intn(c.Dies), rng.Intn(c.Banks), rng.Intn(c.Rows)
	for i := range out {
		if i > 0 && rng.Float64() >= c.RowHitRate {
			die, bank, row = rng.Intn(c.Dies), rng.Intn(c.Banks), rng.Intn(c.Rows)
		}
		out[i] = Request{
			ID:      i,
			Arrival: int64(i * c.InterArrival),
			Die:     die, Bank: bank, Row: row,
		}
	}
	return out, nil
}
