package solve

import (
	"fmt"
	"sync"

	"pdn3d/internal/sparse"
)

// This file implements an aggregation-based algebraic multigrid (AMG)
// preconditioner for the R-Mesh conductance systems. One V-cycle with
// weighted-Jacobi smoothing approximates A⁻¹ well enough that CG
// iteration counts stay nearly flat as the mesh grows, where single-level
// preconditioners (Jacobi, IC(0)) degrade with the mesh diameter.
//
// The hierarchy is built once at solver construction:
//   - greedy aggregation groups each fine node with its strong neighbors
//     (|a_ij| ≥ θ·√(a_ii·a_jj)), scanning nodes in index order so the
//     aggregates — and therefore every coarse operator — are fully
//     deterministic;
//   - the coarse operator is the Galerkin product Pᵀ·A·P with
//     piecewise-constant prolongation (P[i][agg(i)] = 1), assembled through
//     sparse.Builder whose duplicate-merge order is deterministic;
//   - coarsening repeats until the operator fits a dense Cholesky
//     factorization, which closes the V-cycle exactly.
//
// The V-cycle applies one pre- and one post-smoothing sweep of weighted
// Jacobi (ω = 2/3). Starting the pre-smooth from the zero vector makes the
// cycle a fixed symmetric positive-definite operator, which CG requires of
// its preconditioner.

const (
	// amgTheta is the strength-of-connection threshold θ: node j is a
	// strong neighbor of i when |a_ij| ≥ θ·√(a_ii·a_jj). The mesh's
	// conductance ratios are mild, so a small θ aggregates aggressively.
	amgTheta = 0.08
	// amgCoarseMax is the dimension at which coarsening stops and the
	// hierarchy bottoms out in a dense Cholesky factorization.
	amgCoarseMax = 400
	// amgMaxLevels bounds the hierarchy depth (a backstop; the ~3×
	// coarsening rate reaches amgCoarseMax long before this).
	amgMaxLevels = 24
	// amgOmega is the weighted-Jacobi damping factor.
	amgOmega = 2.0 / 3.0
)

// amgLevel is one fine level of the hierarchy.
type amgLevel struct {
	a    *sparse.CSR
	invD []float64 // 1/diag(a), validated positive at setup
	agg  []int32   // aggregate (coarse node) of each fine node
	nc   int       // coarse dimension
}

// AMG is the V-cycle preconditioner. Apply is safe for concurrent calls
// on distinct vectors: per-call scratch comes from a pool, and the
// hierarchy itself is immutable after construction.
type AMG struct {
	levels  []amgLevel
	coarse  *Cholesky
	coarseN int
	scratch sync.Pool // *amgScratch
}

// NewAMG builds the multigrid hierarchy for the SPD matrix a. A zero,
// negative, NaN, or missing diagonal anywhere in the hierarchy yields a
// typed *DegenerateDiagonalError (on the finest level the node index is
// the original node).
func NewAMG(a *sparse.CSR) (*AMG, error) {
	// Validate the finest diagonal up front, even when the system is small
	// enough to skip coarsening: a degenerate mesh must fail with the
	// typed error, not whatever the dense factorization hits first.
	if _, err := invDiag(a); err != nil {
		return nil, err
	}
	m := &AMG{}
	cur := a
	for len(m.levels) < amgMaxLevels && cur.N > amgCoarseMax {
		invD, err := invDiag(cur)
		if err != nil {
			return nil, fmt.Errorf("solve: AMG level %d: %w", len(m.levels), err)
		}
		agg, nc := aggregate(cur)
		if nc >= cur.N {
			// No coarsening progress (pathological graph); stop here and
			// let the dense bottom handle whatever is left, or fail below.
			break
		}
		m.levels = append(m.levels, amgLevel{a: cur, invD: invD, agg: agg, nc: nc})
		cur = galerkin(cur, agg, nc)
	}
	c, err := NewCholesky(cur)
	if err != nil {
		return nil, fmt.Errorf("solve: AMG coarse factorization (n=%d): %w", cur.N, err)
	}
	m.coarse = c
	m.coarseN = cur.N
	m.scratch.New = func() interface{} { return m.newScratch() }
	return m, nil
}

// Levels returns the number of fine levels above the dense coarse solve.
func (m *AMG) Levels() int { return len(m.levels) }

// CoarseN returns the dimension of the dense bottom level.
func (m *AMG) CoarseN() int { return m.coarseN }

// aggregate greedily partitions the nodes of a into aggregates along
// strong connections, returning the aggregate of each node and the
// aggregate count. Pass 1 seeds an aggregate at every node whose strong
// neighborhood is untouched (scanning in index order — deterministic);
// pass 2 attaches leftovers to the strongest adjacent aggregate; isolated
// leftovers become singletons.
func aggregate(a *sparse.CSR) ([]int32, int) {
	n := a.N
	diag := a.Diag()
	theta2 := amgTheta * amgTheta
	strong := func(i int, q int32) (int32, bool) {
		j := a.Col[q]
		if int(j) == i {
			return j, false
		}
		v := a.Val[q]
		return j, v*v >= theta2*diag[i]*diag[j]
	}
	agg := make([]int32, n)
	for i := range agg {
		agg[i] = -1
	}
	nc := int32(0)
	for i := 0; i < n; i++ {
		if agg[i] >= 0 {
			continue
		}
		free := true
		for q := a.RowPtr[i]; q < a.RowPtr[i+1]; q++ {
			if j, ok := strong(i, q); ok && agg[j] >= 0 {
				free = false
				break
			}
		}
		if !free {
			continue
		}
		agg[i] = nc
		for q := a.RowPtr[i]; q < a.RowPtr[i+1]; q++ {
			if j, ok := strong(i, q); ok {
				agg[j] = nc
			}
		}
		nc++
	}
	for i := 0; i < n; i++ {
		if agg[i] >= 0 {
			continue
		}
		best := int32(-1)
		var bestW float64
		for q := a.RowPtr[i]; q < a.RowPtr[i+1]; q++ {
			j := a.Col[q]
			if int(j) == i || agg[j] < 0 {
				continue
			}
			w := a.Val[q]
			if w < 0 {
				w = -w
			}
			// Strict > with ascending column scan: ties pick the
			// lowest-indexed neighbor, keeping the attachment deterministic.
			if w > bestW {
				bestW = w
				best = agg[j]
			}
		}
		if best >= 0 {
			agg[i] = best
		} else {
			agg[i] = nc
			nc++
		}
	}
	return agg, int(nc)
}

// galerkin assembles the coarse operator Ac = Pᵀ·A·P for the
// piecewise-constant prolongation defined by agg: every fine entry a_ij
// accumulates into Ac[agg(i)][agg(j)]. The Builder's stamp-order duplicate
// merge makes the float result deterministic.
func galerkin(a *sparse.CSR, agg []int32, nc int) *sparse.CSR {
	b := sparse.NewBuilder(nc)
	for i := 0; i < a.N; i++ {
		for q := a.RowPtr[i]; q < a.RowPtr[i+1]; q++ {
			b.Add(int(agg[i]), int(agg[a.Col[q]]), a.Val[q])
		}
	}
	return b.Compress()
}

// amgScratch is the per-Apply workspace: a residual buffer per fine level
// plus rhs/solution buffers per coarse level. Buffers are fully
// overwritten on every cycle, so pooled reuse cannot leak state between
// applications.
type amgScratch struct {
	res []([]float64) // residual at level l (dim of levels[l])
	rhs []([]float64) // restricted rhs entering level l+1
	sol []([]float64) // correction solved at level l+1
}

func (m *AMG) newScratch() *amgScratch {
	s := &amgScratch{}
	for l := range m.levels {
		lv := &m.levels[l]
		s.res = append(s.res, make([]float64, lv.a.N))
		s.rhs = append(s.rhs, make([]float64, lv.nc))
		s.sol = append(s.sol, make([]float64, lv.nc))
	}
	return s
}

// Apply computes z = M⁻¹·r with one V-cycle.
func (m *AMG) Apply(z, r []float64) {
	s := m.scratch.Get().(*amgScratch)
	m.cycle(0, z, r, s)
	m.scratch.Put(s)
}

func (m *AMG) cycle(l int, x, r []float64, s *amgScratch) {
	if l == len(m.levels) {
		// Coarsest level: exact dense solve. The factorization was
		// validated at setup, and Solve only errors on a length mismatch,
		// which the hierarchy rules out by construction.
		xc, err := m.coarse.Solve(r)
		if err != nil {
			panic(fmt.Sprintf("solve: AMG coarse solve: %v", err))
		}
		copy(x, xc)
		return
	}
	lv := &m.levels[l]
	n := lv.a.N
	// Pre-smooth from the zero vector: x = ω·D⁻¹·r.
	for i := 0; i < n; i++ {
		x[i] = amgOmega * lv.invD[i] * r[i]
	}
	// Residual: res = r − A·x.
	res := s.res[l]
	lv.a.MulVec(res, x)
	for i := 0; i < n; i++ {
		res[i] = r[i] - res[i]
	}
	// Restrict (Pᵀ): per-aggregate sum, accumulated in fine-node order.
	rc := s.rhs[l]
	for i := range rc {
		rc[i] = 0
	}
	for i := 0; i < n; i++ {
		rc[lv.agg[i]] += res[i]
	}
	// Coarse-grid correction.
	xc := s.sol[l]
	m.cycle(l+1, xc, rc, s)
	// Prolong (P) and correct: x += P·xc.
	for i := 0; i < n; i++ {
		x[i] += xc[lv.agg[i]]
	}
	// Post-smooth: x += ω·D⁻¹·(r − A·x). Mirroring the pre-smooth keeps
	// the cycle symmetric, which CG requires.
	lv.a.MulVec(res, x)
	for i := 0; i < n; i++ {
		x[i] += amgOmega * lv.invD[i] * (r[i] - res[i])
	}
}
