package solve

import (
	"math"

	"pdn3d/internal/par"
	"pdn3d/internal/sparse"
)

// Kernel sharding thresholds. Systems below kernelMinN run the plain
// serial loops; at or above it, reductions switch to a fixed block
// partition (kernelBlock entries per block, partial sums combined in block
// order) executed on a bounded worker pool. Because the partition depends
// only on the vector length — never on the worker count — every result is
// bit-for-bit identical for any -workers setting, including 1.
const (
	kernelMinN  = 8192
	kernelBlock = 4096
)

// kernels bundles the BLAS-1/SpMV primitives of one solver instance with
// its worker budget.
type kernels struct {
	workers int
}

func (k kernels) sharded(n int) bool { return n >= kernelMinN }

// dot computes a·b.
func (k kernels) dot(a, b []float64) float64 {
	n := len(a)
	if !k.sharded(n) {
		return dot(a, b)
	}
	partial := make([]float64, (n+kernelBlock-1)/kernelBlock)
	par.Blocks(k.workers, n, kernelBlock, func(blk, lo, hi int) {
		var s float64
		for i := lo; i < hi; i++ {
			s += a[i] * b[i]
		}
		partial[blk] = s
	})
	var s float64
	for _, p := range partial {
		s += p
	}
	return s
}

// norm2 computes ‖a‖₂.
func (k kernels) norm2(a []float64) float64 { return math.Sqrt(k.dot(a, a)) }

// axpy computes y += alpha·x.
func (k kernels) axpy(y []float64, alpha float64, x []float64) {
	n := len(y)
	if !k.sharded(n) {
		axpy(y, alpha, x)
		return
	}
	par.Blocks(k.workers, n, kernelBlock, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			y[i] += alpha * x[i]
		}
	})
}

// axpyNormSq fuses the residual update r += alpha·ap with the squared-norm
// accumulation Σ r'² in a single pass, eliminating the separate norm2(r)
// sweep every CG iteration needs for its convergence check.
func (k kernels) axpyNormSq(y []float64, alpha float64, x []float64) float64 {
	n := len(y)
	if !k.sharded(n) {
		var s float64
		for i := range y {
			y[i] += alpha * x[i]
			s += y[i] * y[i]
		}
		return s
	}
	partial := make([]float64, (n+kernelBlock-1)/kernelBlock)
	par.Blocks(k.workers, n, kernelBlock, func(blk, lo, hi int) {
		var s float64
		for i := lo; i < hi; i++ {
			y[i] += alpha * x[i]
			s += y[i] * y[i]
		}
		partial[blk] = s
	})
	var s float64
	for _, p := range partial {
		s += p
	}
	return s
}

// xpby computes p = z + beta·p (the CG direction update).
func (k kernels) xpby(p []float64, beta float64, z []float64) {
	n := len(p)
	if !k.sharded(n) {
		for i := range p {
			p[i] = z[i] + beta*p[i]
		}
		return
	}
	par.Blocks(k.workers, n, kernelBlock, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			p[i] = z[i] + beta*p[i]
		}
	})
}

// mulVec computes y = A·x, sharding rows over the worker pool for large
// systems.
func (k kernels) mulVec(a *sparse.CSR, y, x []float64) {
	if !k.sharded(a.N) {
		a.MulVec(y, x)
		return
	}
	a.MulVecPar(y, x, k.workers, kernelBlock)
}
