// Package solve provides the linear solvers behind the R-Mesh IR-drop
// engine: a Jacobi-preconditioned conjugate-gradient solver for the large
// sparse SPD conductance systems (the production path, standing in for the
// paper's HSPICE runs), and a dense Cholesky factorization used as the
// golden reference on small systems (standing in for Cadence EPS in the
// Figure 4 style validation).
package solve

import (
	"errors"
	"fmt"
	"math"

	"pdn3d/internal/sparse"
)

// CGOptions tunes the conjugate-gradient solver.
type CGOptions struct {
	// Tol is the relative residual target ‖r‖/‖b‖. Zero selects 1e-10.
	Tol float64
	// MaxIter caps the iteration count. Zero selects 10·n.
	MaxIter int
}

// CGStats reports how a CG solve went.
type CGStats struct {
	Iterations int
	Residual   float64 // final relative residual
	Converged  bool
}

// ErrNotConverged is wrapped in the error returned when CG exhausts its
// iteration budget above tolerance.
var ErrNotConverged = errors.New("solve: CG did not converge")

// CG solves A·x = b for SPD A with Jacobi (diagonal) preconditioning and
// returns the solution with convergence statistics. A zero right-hand side
// short-circuits to the zero vector.
func CG(a *sparse.CSR, b []float64, opt CGOptions) ([]float64, CGStats, error) {
	n := a.N
	if len(b) != n {
		return nil, CGStats{}, fmt.Errorf("solve: rhs length %d != matrix dim %d", len(b), n)
	}
	tol := opt.Tol
	if tol <= 0 {
		tol = 1e-10
	}
	maxIter := opt.MaxIter
	if maxIter <= 0 {
		maxIter = 10 * n
	}

	normB := norm2(b)
	x := make([]float64, n)
	if normB == 0 {
		return x, CGStats{Converged: true}, nil
	}

	// Jacobi preconditioner M = diag(A).
	invD := a.Diag()
	for i, d := range invD {
		if d <= 0 {
			return nil, CGStats{}, fmt.Errorf("solve: non-positive diagonal %g at row %d (matrix not SPD)", d, i)
		}
		invD[i] = 1 / d
	}

	r := make([]float64, n)
	copy(r, b) // x = 0 so r = b
	z := make([]float64, n)
	hadamard(z, invD, r)
	p := make([]float64, n)
	copy(p, z)
	ap := make([]float64, n)

	rz := dot(r, z)
	stats := CGStats{}
	for k := 0; k < maxIter; k++ {
		a.MulVec(ap, p)
		pap := dot(p, ap)
		if pap <= 0 {
			return nil, stats, fmt.Errorf("solve: p'Ap = %g <= 0 at iteration %d (matrix not SPD)", pap, k)
		}
		alpha := rz / pap
		axpy(x, alpha, p)
		axpy(r, -alpha, ap)
		stats.Iterations = k + 1
		stats.Residual = norm2(r) / normB
		if stats.Residual <= tol {
			stats.Converged = true
			return x, stats, nil
		}
		hadamard(z, invD, r)
		rzNew := dot(r, z)
		beta := rzNew / rz
		rz = rzNew
		for i := range p {
			p[i] = z[i] + beta*p[i]
		}
	}
	return x, stats, fmt.Errorf("%w after %d iterations (residual %.3e, tol %.3e)",
		ErrNotConverged, stats.Iterations, stats.Residual, tol)
}

func dot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

func norm2(a []float64) float64 { return math.Sqrt(dot(a, a)) }

// axpy computes y += alpha*x in place.
func axpy(y []float64, alpha float64, x []float64) {
	for i := range y {
		y[i] += alpha * x[i]
	}
}

// hadamard computes z = d .* r elementwise.
func hadamard(z, d, r []float64) {
	for i := range z {
		z[i] = d[i] * r[i]
	}
}
