// Package solve provides the linear solvers behind the R-Mesh IR-drop
// engine. Every method lives behind the Solver interface and is selected
// through a registry (see solver.go): conjugate gradients with Jacobi or
// IC(0) preconditioning for the large sparse SPD conductance systems (the
// production paths, standing in for the paper's HSPICE runs), and a dense
// Cholesky factorization used as the golden reference on small systems
// (standing in for Cadence EPS in the Figure 4 style validation). The hot
// BLAS-1/SpMV kernels are sharded across a bounded worker pool for large
// systems (see kernels.go); sharding is deterministic, so results do not
// depend on the worker count.
package solve

import (
	"errors"
	"fmt"
	"math"

	"pdn3d/internal/obs"
	"pdn3d/internal/sparse"
)

// CGOptions tunes an iterative solve.
type CGOptions struct {
	// Tol is the relative residual target ‖r‖/‖b‖. Zero selects 1e-10.
	Tol float64
	// MaxIter caps the iteration count. Zero selects 10·n.
	MaxIter int
	// Cancel, when non-nil, is polled once per iteration; a non-nil
	// return aborts the solve with that error wrapped. This is how
	// per-request context cancellation reaches the iteration loop:
	// callers set Cancel = ctx.Err so an abandoned request stops burning
	// CPU at the next iteration boundary instead of running to
	// convergence. Cancellation never changes the values a completed
	// solve returns.
	Cancel func() error
	// Span, when non-nil, is the request-trace span covering this solve:
	// the CG core annotates it with the iteration count, final relative
	// residual, and convergence outcome, so per-request traces attribute
	// latency to solver work. The caller owns the span's End. Tracing
	// never changes the values a solve returns.
	Span *obs.TraceSpan
	// X0, when non-nil, warm-starts the iteration from the given guess
	// instead of the zero vector — the payoff when consecutive solves
	// differ only slightly (a value sweep over one topology, or adjacent
	// memory states). The guess is copied, never mutated. A warm solve
	// converges to the same tolerance as a cold one but follows a
	// different floating-point trajectory, so callers that promise
	// byte-identical outputs must leave X0 nil. Direct methods ignore it.
	X0 []float64
	// Rec, when non-nil, is the flight recorder for this solve: the CG
	// core feeds it the per-iteration α/β coefficients and residual
	// trajectory and classifies the termination; the registry solvers
	// stamp the method and preconditioner identity. The caller owns the
	// recorder's Commit (enforced by the obscontract analyzer). Recording
	// never changes the values a solve returns, and nothing recorded is
	// wall-clock-derived — the captured shapes are identical for any
	// worker count.
	Rec *obs.SolveRecorder
}

// CGStats reports how a solve went.
type CGStats struct {
	Iterations int
	Residual   float64 // final relative residual
	Converged  bool
	// Precond names the preconditioner that actually ran ("ic0",
	// "jacobi", "amg"; empty for direct methods and for callers driving
	// the CG core directly). It is set by the registry solvers and by
	// PCG — not inside the CG core — so a solve that silently swapped
	// preconditioners at setup is visible to traces and the diff harness.
	Precond string
	// Fallback reports that the method's preferred preconditioner broke
	// down at setup and a substitute ran instead (IC(0) → Jacobi).
	Fallback bool
}

// DegenerateDiagonalError reports a zero, negative, NaN, or missing
// diagonal entry in a conductance system — the signature of a degenerate
// mesh where a node has lost every path to a supply (e.g. 100% TSV
// failure). Solvers return it from setup instead of dividing by the bad
// diagonal and propagating NaN voltages.
type DegenerateDiagonalError struct {
	Node  int
	Value float64 // the stored diagonal; 0 when the entry is missing entirely
}

func (e *DegenerateDiagonalError) Error() string {
	if e.Value == 0 {
		return fmt.Sprintf("solve: degenerate diagonal at node %d: zero or missing entry (node has no conductance path)", e.Node)
	}
	return fmt.Sprintf("solve: degenerate diagonal at node %d: %g (matrix not SPD)", e.Node, e.Value)
}

// ErrNotConverged is wrapped in the error returned when CG exhausts its
// iteration budget above tolerance.
var ErrNotConverged = errors.New("solve: CG did not converge")

// Preconditioner approximates the action of A⁻¹: Apply computes
// z = M⁻¹·r. Implementations must be safe for concurrent Apply calls on
// distinct vectors after construction.
type Preconditioner interface {
	Apply(z, r []float64)
}

// Jacobi is the diagonal (Jacobi) preconditioner M = diag(A).
type Jacobi struct {
	invD []float64
}

// NewJacobi builds the Jacobi preconditioner. A zero, negative, NaN, or
// missing diagonal (CSR.Diag reports missing entries as 0) yields a typed
// *DegenerateDiagonalError naming the node instead of a divide-by-zero
// that would surface as NaN voltages much later.
func NewJacobi(a *sparse.CSR) (*Jacobi, error) {
	invD, err := invDiag(a)
	if err != nil {
		return nil, err
	}
	return &Jacobi{invD: invD}, nil
}

// invDiag extracts 1/diag(A), failing with a typed error on any diagonal
// a preconditioner must not divide by. The !(d > 0) form also rejects NaN.
func invDiag(a *sparse.CSR) ([]float64, error) {
	invD := a.Diag()
	for i, d := range invD {
		if !(d > 0) {
			return nil, &DegenerateDiagonalError{Node: i, Value: d}
		}
		invD[i] = 1 / d
	}
	return invD, nil
}

// Apply computes z = diag(A)⁻¹ · r.
func (j *Jacobi) Apply(z, r []float64) { hadamard(z, j.invD, r) }

// CG solves A·x = b for SPD A with Jacobi (diagonal) preconditioning and
// returns the solution with convergence statistics. A zero right-hand side
// short-circuits to the zero vector.
func CG(a *sparse.CSR, b []float64, opt CGOptions) ([]float64, CGStats, error) {
	pre, err := NewJacobi(a)
	if err != nil {
		return nil, CGStats{}, err
	}
	return pcg(a, pre, b, opt, kernels{workers: 1})
}

// pcg is the shared preconditioned conjugate-gradient core behind every
// CG-family solver. The residual norm for the convergence check is
// accumulated in the same pass that updates the residual (k.axpyNormSq)
// rather than recomputed with a separate sweep.
func pcg(a *sparse.CSR, pre Preconditioner, b []float64, opt CGOptions, k kernels) ([]float64, CGStats, error) {
	n := a.N
	if len(b) != n {
		return nil, CGStats{}, fmt.Errorf("solve: rhs length %d != matrix dim %d", len(b), n)
	}
	tol := opt.Tol
	if tol <= 0 {
		tol = 1e-10
	}
	maxIter := opt.MaxIter
	if maxIter <= 0 {
		maxIter = 10 * n
	}

	stats := CGStats{}
	termination := obs.TermError
	if opt.Rec != nil {
		opt.Rec.Begin(n)
		// Deferred for the same reason as the span annotation below: every
		// exit leaves the recorder carrying the true final story, and the
		// recorder upgrades maxiter to stagnated when the residual had
		// long stopped improving.
		defer func() {
			opt.Rec.Finish(stats.Iterations, stats.Residual, stats.Converged, termination)
		}()
	}
	if opt.Span != nil {
		// Deferred so every exit — converged, exhausted, canceled —
		// leaves the trace span carrying the true iteration story. The
		// annotated fields are deterministic for any worker count
		// (sharded kernels are bit-identical by contract).
		defer func() {
			opt.Span.Annotate(
				obs.A("iterations", stats.Iterations),
				obs.A("residual", stats.Residual),
				obs.A("converged", stats.Converged))
		}()
	}

	normB := k.norm2(b)
	x := make([]float64, n)
	if normB == 0 {
		stats.Converged = true
		termination = obs.TermConverged
		return x, stats, nil
	}

	r := make([]float64, n)
	if opt.X0 != nil {
		if len(opt.X0) != n {
			return nil, stats, fmt.Errorf("solve: warm-start guess length %d != matrix dim %d", len(opt.X0), n)
		}
		// Warm start: r = b − A·x0. When the guess already meets the
		// tolerance (a sweep point nearly identical to the previous one)
		// the solve finishes with zero iterations. The early return exists
		// only on this path — the cold path below is untouched, keeping
		// its results bit-for-bit identical to the pre-warm-start solver.
		copy(x, opt.X0)
		if opt.Rec != nil {
			// The seed norm costs one extra reduction, so only recorded
			// solves pay for it.
			opt.Rec.Warm(k.norm2(x))
		}
		k.mulVec(a, r, x)
		k.xpby(r, -1, b)
		if stats.Residual = k.norm2(r) / normB; stats.Residual <= tol {
			stats.Converged = true
			termination = obs.TermConverged
			return x, stats, nil
		}
	} else {
		copy(r, b) // x = 0 so r = b
	}
	z := make([]float64, n)
	pre.Apply(z, r)
	p := make([]float64, n)
	copy(p, z)
	ap := make([]float64, n)

	rz := k.dot(r, z)
	for it := 0; it < maxIter; it++ {
		if opt.Cancel != nil {
			if err := opt.Cancel(); err != nil {
				termination = obs.TermCancelled
				return nil, stats, fmt.Errorf("solve: canceled at iteration %d: %w", it, err)
			}
		}
		k.mulVec(a, ap, p)
		pap := k.dot(p, ap)
		if pap <= 0 {
			return nil, stats, fmt.Errorf("solve: p'Ap = %g <= 0 at iteration %d (matrix not SPD)", pap, it)
		}
		alpha := rz / pap
		k.axpy(x, alpha, p)
		rNormSq := k.axpyNormSq(r, -alpha, ap)
		stats.Iterations = it + 1
		stats.Residual = math.Sqrt(rNormSq) / normB
		opt.Rec.RecordIter(alpha, stats.Residual)
		if stats.Residual <= tol {
			stats.Converged = true
			termination = obs.TermConverged
			return x, stats, nil
		}
		pre.Apply(z, r)
		rzNew := k.dot(r, z)
		beta := rzNew / rz
		rz = rzNew
		k.xpby(p, beta, z)
		opt.Rec.RecordBeta(beta)
	}
	termination = obs.TermMaxIter
	return x, stats, fmt.Errorf("%w after %d iterations (residual %.3e, tol %.3e)",
		ErrNotConverged, stats.Iterations, stats.Residual, tol)
}

func dot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

func norm2(a []float64) float64 { return math.Sqrt(dot(a, a)) }

// axpy computes y += alpha*x in place.
func axpy(y []float64, alpha float64, x []float64) {
	for i := range y {
		y[i] += alpha * x[i]
	}
}

// hadamard computes z = d .* r elementwise.
func hadamard(z, d, r []float64) {
	for i := range z {
		z[i] = d[i] * r[i]
	}
}
