package solve

import (
	"math"
	"math/rand"
	"testing"

	"pdn3d/internal/sparse"
)

// grid2D builds the 2D grid Laplacian with one supply tie — the canonical
// PDN-like SPD system used across the solver tests and benchmarks.
func grid2D(nx, ny int) *sparse.CSR {
	b := sparse.NewBuilder(nx * ny)
	idx := func(i, j int) int { return j*nx + i }
	for j := 0; j < ny; j++ {
		for i := 0; i < nx; i++ {
			if i+1 < nx {
				b.AddConductance(idx(i, j), idx(i+1, j), 1)
			}
			if j+1 < ny {
				b.AddConductance(idx(i, j), idx(i, j+1), 1)
			}
		}
	}
	b.AddToGround(0, 10)
	return b.Compress()
}

func TestRegistryListsBuiltins(t *testing.T) {
	have := map[string]bool{}
	for _, m := range Methods() {
		have[m] = true
	}
	for _, want := range []string{MethodCGIC0, MethodCGJacobi, MethodCholesky} {
		if !have[want] {
			t.Errorf("method %q not registered (have %v)", want, Methods())
		}
	}
}

func TestNewRejectsUnknownMethod(t *testing.T) {
	if _, err := New(ladder(4, 1, 1), Options{Method: "hspice"}); err == nil {
		t.Error("want error for unknown method")
	}
}

func TestNewDefaultsToIC0(t *testing.T) {
	s, err := New(ladder(8, 1, 1), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s.Method() != MethodCGIC0 {
		t.Errorf("default method = %q, want %q", s.Method(), MethodCGIC0)
	}
}

// All registered methods must agree on the same system within the
// validation tolerance used by internal/irdrop (dense cross-checks pass at
// <1e-7 V); this is the solver-level half of that guarantee.
func TestAllMethodsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	a := randomSPD(60, rng)
	b := make([]float64, 60)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	ref, err := DenseSolve(a, b)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range Methods() {
		s, err := New(a, Options{Method: m})
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		x, st, err := s.Solve(b, CGOptions{Tol: 1e-12})
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		if !st.Converged {
			t.Errorf("%s: not converged", m)
		}
		for i := range x {
			if math.Abs(x[i]-ref[i]) > 1e-7*(1+math.Abs(ref[i])) {
				t.Fatalf("%s: x[%d] = %g vs reference %g", m, i, x[i], ref[i])
			}
		}
	}
}

// SolversAreReusable: one factorization, many right-hand sides.
func TestSolverReusableAcrossRHS(t *testing.T) {
	a := grid2D(20, 20)
	s, err := New(a, Options{Method: MethodCGIC0})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 5; trial++ {
		b := make([]float64, a.N)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		x, _, err := s.Solve(b, CGOptions{Tol: 1e-10})
		if err != nil {
			t.Fatal(err)
		}
		ax := make([]float64, a.N)
		a.MulVec(ax, x)
		for i := range ax {
			if math.Abs(ax[i]-b[i]) > 1e-6 {
				t.Fatalf("trial %d: residual %g at %d", trial, ax[i]-b[i], i)
			}
		}
	}
}

// referenceCG is the pre-refactor loop with its separate norm2(r)
// recomputation each iteration, kept verbatim as the regression oracle for
// the fused residual-norm tracking.
func referenceCG(a *sparse.CSR, b []float64, opt CGOptions) ([]float64, CGStats, error) {
	n := a.N
	tol := opt.Tol
	if tol <= 0 {
		tol = 1e-10
	}
	maxIter := opt.MaxIter
	if maxIter <= 0 {
		maxIter = 10 * n
	}
	normB := norm2(b)
	x := make([]float64, n)
	if normB == 0 {
		return x, CGStats{Converged: true}, nil
	}
	invD := a.Diag()
	for i, d := range invD {
		invD[i] = 1 / d
	}
	r := make([]float64, n)
	copy(r, b)
	z := make([]float64, n)
	hadamard(z, invD, r)
	p := make([]float64, n)
	copy(p, z)
	ap := make([]float64, n)
	rz := dot(r, z)
	stats := CGStats{}
	for k := 0; k < maxIter; k++ {
		a.MulVec(ap, p)
		pap := dot(p, ap)
		alpha := rz / pap
		axpy(x, alpha, p)
		axpy(r, -alpha, ap)
		stats.Iterations = k + 1
		stats.Residual = norm2(r) / normB
		if stats.Residual <= tol {
			stats.Converged = true
			return x, stats, nil
		}
		hadamard(z, invD, r)
		rzNew := dot(r, z)
		beta := rzNew / rz
		rz = rzNew
		for i := range p {
			p[i] = z[i] + beta*p[i]
		}
	}
	return x, stats, ErrNotConverged
}

// The fused residual-norm update must not change convergence behavior at
// all: same iteration count, same final residual, same solution bits.
func TestFusedNormIdenticalConvergence(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 8; trial++ {
		n := 30 + rng.Intn(120)
		a := randomSPD(n, rng)
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		want, wantSt, errW := referenceCG(a, b, CGOptions{Tol: 1e-10})
		got, gotSt, errG := CG(a, b, CGOptions{Tol: 1e-10})
		if (errW == nil) != (errG == nil) {
			t.Fatalf("trial %d: error mismatch: %v vs %v", trial, errW, errG)
		}
		if wantSt.Iterations != gotSt.Iterations {
			t.Fatalf("trial %d: iterations %d vs reference %d", trial, gotSt.Iterations, wantSt.Iterations)
		}
		if wantSt.Residual != gotSt.Residual {
			t.Fatalf("trial %d: residual %g vs reference %g (must be identical)", trial, gotSt.Residual, wantSt.Residual)
		}
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("trial %d: x[%d] = %g vs reference %g (must be bit-identical)", trial, i, got[i], want[i])
			}
		}
	}
	// Also on the grid system, where CG runs many iterations.
	a := grid2D(40, 40)
	b := make([]float64, a.N)
	b[a.N-1] = 0.1
	_, wantSt, _ := referenceCG(a, b, CGOptions{Tol: 1e-10})
	_, gotSt, _ := CG(a, b, CGOptions{Tol: 1e-10})
	if wantSt != gotSt {
		t.Fatalf("grid stats %+v vs reference %+v", gotSt, wantSt)
	}
}

// Above the sharding threshold, the deterministic block reduction must
// produce bit-identical solutions for every worker count.
func TestShardedKernelsDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("large system")
	}
	a := grid2D(96, 96) // 9216 nodes >= kernelMinN
	if a.N < kernelMinN {
		t.Fatalf("test system too small: %d < %d", a.N, kernelMinN)
	}
	b := make([]float64, a.N)
	b[a.N-1] = 0.1
	b[0] = -0.05
	var ref []float64
	var refSt CGStats
	for _, workers := range []int{1, 2, 7} {
		s, err := New(a, Options{Method: MethodCGIC0, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		x, st, err := s.Solve(b, CGOptions{Tol: 1e-10})
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref, refSt = x, st
			continue
		}
		if st != refSt {
			t.Fatalf("workers=%d: stats %+v vs %+v", workers, st, refSt)
		}
		for i := range x {
			if x[i] != ref[i] {
				t.Fatalf("workers=%d: x[%d] differs (must be bit-identical)", workers, i)
			}
		}
	}
}

func TestCholeskySolverReportsResidual(t *testing.T) {
	a := ladder(12, 2, 5)
	s, err := New(a, Options{Method: MethodCholesky})
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, 12)
	b[11] = 1
	_, st, err := s.Solve(b, CGOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !st.Converged {
		t.Error("direct solve must report convergence")
	}
	if st.Residual > 1e-10 {
		t.Errorf("direct solve residual %g too large", st.Residual)
	}
}
