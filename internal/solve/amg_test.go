package solve

import (
	"errors"
	"math"
	"testing"

	"pdn3d/internal/sparse"
)

// AMG on a mesh-sized grid must agree with the dense reference and
// converge in far fewer iterations than Jacobi CG.
func TestAMGSolvesGridAccurately(t *testing.T) {
	a := grid2D(40, 40)
	b := make([]float64, a.N)
	b[0] = 1
	b[a.N-1] = -0.5
	b[a.N/2] = 0.25

	s, err := New(a, Options{Method: MethodCGAMG})
	if err != nil {
		t.Fatal(err)
	}
	x, st, err := s.Solve(b, CGOptions{Tol: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	if !st.Converged {
		t.Fatal("cg-amg did not converge")
	}
	if st.Precond != "amg" || st.Fallback {
		t.Errorf("stats should name the amg preconditioner, got %+v", st)
	}

	ax := make([]float64, a.N)
	a.MulVec(ax, x)
	for i := range ax {
		if d := math.Abs(ax[i] - b[i]); d > 1e-9 {
			t.Fatalf("residual entry %d = %g too large", i, d)
		}
	}

	j, err := New(a, Options{Method: MethodCGJacobi})
	if err != nil {
		t.Fatal(err)
	}
	_, jst, err := j.Solve(b, CGOptions{Tol: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	if st.Iterations*2 > jst.Iterations {
		t.Errorf("cg-amg took %d iterations vs cg-jacobi %d; multigrid should cut the count at least 2x",
			st.Iterations, jst.Iterations)
	}
}

// The hierarchy must actually coarsen on systems above the dense cutoff,
// and building it twice must give identical aggregates (determinism).
func TestAMGHierarchyDeterministic(t *testing.T) {
	a := grid2D(50, 30) // 1500 nodes > amgCoarseMax
	m1, err := NewAMG(a)
	if err != nil {
		t.Fatal(err)
	}
	if m1.Levels() == 0 {
		t.Fatalf("no coarsening on n=%d (coarse cutoff %d)", a.N, amgCoarseMax)
	}
	if m1.CoarseN() > amgCoarseMax {
		t.Fatalf("coarse level n=%d above cutoff %d", m1.CoarseN(), amgCoarseMax)
	}
	m2, err := NewAMG(a)
	if err != nil {
		t.Fatal(err)
	}
	if m1.Levels() != m2.Levels() || m1.CoarseN() != m2.CoarseN() {
		t.Fatalf("hierarchy shape differs across builds: %d/%d vs %d/%d",
			m1.Levels(), m1.CoarseN(), m2.Levels(), m2.CoarseN())
	}
	for l := range m1.levels {
		for i, v := range m1.levels[l].agg {
			if m2.levels[l].agg[i] != v {
				t.Fatalf("level %d aggregate of node %d differs: %d vs %d", l, i, m2.levels[l].agg[i], v)
			}
		}
		for i, v := range m1.levels[l].a.Val {
			if math.Float64bits(m2.levels[l].a.Val[i]) != math.Float64bits(v) {
				t.Fatalf("level %d operator value %d differs bitwise", l, i)
			}
		}
	}
}

// One V-cycle is a fixed linear operator; CG additionally requires it to
// be symmetric: <M⁻¹u, v> == <u, M⁻¹v> for all u, v.
func TestAMGApplyIsSymmetricOperator(t *testing.T) {
	a := grid2D(30, 25)
	m, err := NewAMG(a)
	if err != nil {
		t.Fatal(err)
	}
	n := a.N
	u := make([]float64, n)
	v := make([]float64, n)
	for i := 0; i < n; i++ {
		u[i] = math.Sin(float64(3*i + 1))
		v[i] = math.Cos(float64(2*i + 5))
	}
	mu := make([]float64, n)
	mv := make([]float64, n)
	m.Apply(mu, u)
	m.Apply(mv, v)
	lhs := dot(mu, v)
	rhs := dot(u, mv)
	if d := math.Abs(lhs - rhs); d > 1e-9*(1+math.Abs(lhs)) {
		t.Fatalf("V-cycle not symmetric: <Mu,v>=%g vs <u,Mv>=%g", lhs, rhs)
	}
	// And reapplying on the same input must reproduce the result exactly
	// (pooled scratch must not leak state).
	mu2 := make([]float64, n)
	m.Apply(mu2, u)
	for i := range mu {
		if math.Float64bits(mu[i]) != math.Float64bits(mu2[i]) {
			t.Fatalf("Apply not reproducible at %d", i)
		}
	}
}

// degenerateMatrix returns a 6-node path system where node idx carries
// the given diagonal value (bypassing Builder's zero-skip via direct CSR
// construction when needed).
func degenerateMatrix(idx int, diag float64) *sparse.CSR {
	b := sparse.NewBuilder(6)
	for i := 0; i < 5; i++ {
		b.AddConductance(i, i+1, 1)
	}
	b.AddToGround(0, 2)
	m := b.Compress()
	for q := m.RowPtr[idx]; q < m.RowPtr[idx+1]; q++ {
		if int(m.Col[q]) == idx {
			m.Val[q] = diag
		}
	}
	return m
}

// A zero, negative, or NaN diagonal must yield the typed error naming the
// node — never a silent 1/0 or 1/NaN that turns into NaN voltages. The
// NaN case is the regression: the pre-fix check (d <= 0) let NaN through.
func TestDegenerateDiagonalTypedError(t *testing.T) {
	for _, tc := range []struct {
		name string
		diag float64
	}{
		{"zero", 0},
		{"negative", -3},
		{"nan", math.NaN()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			const node = 3
			a := degenerateMatrix(node, tc.diag)
			for _, build := range []struct {
				name string
				fn   func() error
			}{
				{"jacobi", func() error { _, err := NewJacobi(a); return err }},
				{"amg", func() error { _, err := NewAMG(a); return err }},
			} {
				err := build.fn()
				if err == nil {
					t.Fatalf("%s: degenerate diagonal accepted", build.name)
				}
				var dde *DegenerateDiagonalError
				if !errors.As(err, &dde) {
					t.Fatalf("%s: want *DegenerateDiagonalError, got %v", build.name, err)
				}
				if dde.Node != node {
					t.Errorf("%s: error names node %d, want %d", build.name, dde.Node, node)
				}
			}
		})
	}
}

// A matrix with a structurally missing diagonal entry (CSR.Diag reports
// 0) must be rejected the same way.
func TestMissingDiagonalTypedError(t *testing.T) {
	b := sparse.NewBuilder(3)
	b.Add(0, 0, 2)
	b.Add(2, 2, 2)
	b.Add(0, 2, -1)
	b.Add(2, 0, -1)
	// Node 1 never receives a diagonal stamp: a floating node, as an
	// imported SPICE deck with a current source into an unconnected node
	// would produce.
	a := b.Compress()
	_, err := NewJacobi(a)
	var dde *DegenerateDiagonalError
	if !errors.As(err, &dde) {
		t.Fatalf("want *DegenerateDiagonalError, got %v", err)
	}
	if dde.Node != 1 || dde.Value != 0 {
		t.Errorf("error = %+v, want node 1 value 0", dde)
	}
}

// The cg-ic0 registry solver and standalone PCG must report which
// preconditioner actually ran, and count IC(0) fallbacks.
func TestPrecondReportedInStats(t *testing.T) {
	a := grid2D(12, 12)
	b := make([]float64, a.N)
	b[7] = 1

	s, err := New(a, Options{Method: MethodCGIC0})
	if err != nil {
		t.Fatal(err)
	}
	_, st, err := s.Solve(b, CGOptions{Tol: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	if st.Precond != "ic0" || st.Fallback {
		t.Errorf("healthy cg-ic0 stats = %+v, want precond ic0 without fallback", st)
	}

	_, st, err = PCG(a, b, CGOptions{Tol: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	if st.Precond != "ic0" || st.Fallback {
		t.Errorf("healthy PCG stats = %+v, want precond ic0 without fallback", st)
	}
}

// Reordered must hand back solutions (and accept warm starts) in the
// original node ordering while the inner solver runs on the permuted
// system.
func TestReorderedSolverRoundTrip(t *testing.T) {
	b := sparse.NewBuilder(30 * 20)
	idx := func(i, j int) int { return j*30 + i }
	for j := 0; j < 20; j++ {
		for i := 0; i < 30; i++ {
			if i+1 < 30 {
				b.AddConductance(idx(i, j), idx(i+1, j), 1+0.1*float64(i))
			}
			if j+1 < 20 {
				b.AddConductance(idx(i, j), idx(i, j+1), 2)
			}
		}
	}
	b.AddToGround(5, 4)
	p := b.Freeze()
	a := p.NewCSR()
	p.Scatter(a.Val, b.RawVals())
	perm := p.Permutation()
	pa := a.Permute(perm)

	rhs := make([]float64, a.N)
	for i := range rhs {
		rhs[i] = math.Sin(float64(i) * 0.7)
	}

	direct, err := New(a, Options{Method: MethodCholesky})
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := direct.Solve(rhs, CGOptions{})
	if err != nil {
		t.Fatal(err)
	}

	inner, err := New(pa, Options{Method: MethodCholesky})
	if err != nil {
		t.Fatal(err)
	}
	got, st, err := Reordered(inner, perm).Solve(rhs, CGOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !st.Converged {
		t.Fatal("reordered solve not converged")
	}
	for i := range want {
		if d := math.Abs(got[i] - want[i]); d > 1e-12*(1+math.Abs(want[i])) {
			t.Fatalf("x[%d] = %g vs unpermuted %g", i, got[i], want[i])
		}
	}

	// Warm start passes through the permutation: seeding with the exact
	// solution must converge instantly on an iterative method.
	innerCG, err := New(pa, Options{Method: MethodCGAMG})
	if err != nil {
		t.Fatal(err)
	}
	_, st, err = Reordered(innerCG, perm).Solve(rhs, CGOptions{Tol: 1e-9, X0: want})
	if err != nil {
		t.Fatal(err)
	}
	if st.Iterations != 0 {
		t.Errorf("exact warm start took %d iterations, want 0", st.Iterations)
	}
}
