package solve

import (
	"errors"
	"strconv"
	"testing"

	"pdn3d/internal/obs"
)

// solveSpanAttrs runs one traced CG solve and returns the attributes the
// core annotated onto the span.
func solveSpanAttrs(t *testing.T, opt CGOptions) (CGStats, map[string]string, error) {
	t.Helper()
	a := ladder(50, 2.0, 5.0)
	rhs := make([]float64, 50)
	rhs[49] = 1
	tr := obs.NewTrace("")
	sp := tr.Span("solve")
	opt.Span = sp
	_, st, err := CG(a, rhs, opt)
	sp.End()
	snap := tr.Snapshot()
	if len(snap.Spans) != 1 {
		t.Fatalf("recorded %d spans, want 1", len(snap.Spans))
	}
	return st, snap.Spans[0].Attrs, err
}

func TestCGAnnotatesSpan(t *testing.T) {
	st, attrs, err := solveSpanAttrs(t, CGOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := attrs["iterations"]; got != strconv.Itoa(st.Iterations) {
		t.Fatalf("span iterations = %q, stats say %d", got, st.Iterations)
	}
	if attrs["converged"] != "true" {
		t.Fatalf("span converged = %q, want true", attrs["converged"])
	}
	res, perr := strconv.ParseFloat(attrs["residual"], 64)
	if perr != nil || res != st.Residual {
		t.Fatalf("span residual = %q, stats say %g", attrs["residual"], st.Residual)
	}
}

func TestCGAnnotatesSpanOnFailure(t *testing.T) {
	// One iteration on a 50-node ladder cannot converge at 1e-12.
	st, attrs, err := solveSpanAttrs(t, CGOptions{Tol: 1e-12, MaxIter: 1})
	if !errors.Is(err, ErrNotConverged) {
		t.Fatalf("err = %v, want ErrNotConverged", err)
	}
	if attrs["converged"] != "false" || attrs["iterations"] != strconv.Itoa(st.Iterations) {
		t.Fatalf("failure span attrs = %v (stats %+v)", attrs, st)
	}
}

func TestCGNilSpanUnchangedResults(t *testing.T) {
	a := ladder(50, 2.0, 5.0)
	rhs := make([]float64, 50)
	rhs[49] = 1
	xPlain, stPlain, err := CG(a, rhs, CGOptions{})
	if err != nil {
		t.Fatal(err)
	}
	tr := obs.NewTrace("")
	sp := tr.Span("solve")
	xTraced, stTraced, err := CG(a, rhs, CGOptions{Span: sp})
	sp.End()
	if err != nil {
		t.Fatal(err)
	}
	if stPlain != stTraced {
		t.Fatalf("tracing changed stats: %+v vs %+v", stPlain, stTraced)
	}
	for i := range xPlain {
		if xPlain[i] != xTraced[i] {
			t.Fatalf("tracing changed solution at %d: %g vs %g", i, xPlain[i], xTraced[i])
		}
	}
}
