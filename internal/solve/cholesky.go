package solve

import (
	"fmt"
	"math"

	"pdn3d/internal/sparse"
)

// Cholesky is a dense lower-triangular Cholesky factorization A = L·Lᵀ.
// It is the exact reference solver used to validate the CG path (Figure 4
// style R-Mesh vs. golden comparison); its O(n³) cost restricts it to small
// meshes.
type Cholesky struct {
	n int
	l [][]float64 // lower triangle, row i holds entries 0..i
}

// NewCholesky factorizes the SPD matrix A given in CSR form.
func NewCholesky(a *sparse.CSR) (*Cholesky, error) {
	n := a.N
	l := make([][]float64, n)
	dense := a.Dense()
	for i := 0; i < n; i++ {
		l[i] = make([]float64, i+1)
		for j := 0; j <= i; j++ {
			s := dense[i][j]
			for k := 0; k < j; k++ {
				s -= l[i][k] * l[j][k]
			}
			if i == j {
				if s <= 0 {
					return nil, fmt.Errorf("solve: Cholesky pivot %g <= 0 at row %d (matrix not SPD)", s, i)
				}
				l[i][j] = math.Sqrt(s)
			} else {
				l[i][j] = s / l[j][j]
			}
		}
	}
	return &Cholesky{n: n, l: l}, nil
}

// Solve returns x with A·x = b using the precomputed factorization.
func (c *Cholesky) Solve(b []float64) ([]float64, error) {
	if len(b) != c.n {
		return nil, fmt.Errorf("solve: rhs length %d != matrix dim %d", len(b), c.n)
	}
	// Forward substitution L·y = b.
	y := make([]float64, c.n)
	for i := 0; i < c.n; i++ {
		s := b[i]
		for k := 0; k < i; k++ {
			s -= c.l[i][k] * y[k]
		}
		y[i] = s / c.l[i][i]
	}
	// Backward substitution Lᵀ·x = y.
	x := make([]float64, c.n)
	for i := c.n - 1; i >= 0; i-- {
		s := y[i]
		for k := i + 1; k < c.n; k++ {
			s -= c.l[k][i] * x[k]
		}
		x[i] = s / c.l[i][i]
	}
	return x, nil
}

// DenseSolve is a one-shot helper: factorize and solve.
func DenseSolve(a *sparse.CSR, b []float64) ([]float64, error) {
	c, err := NewCholesky(a)
	if err != nil {
		return nil, err
	}
	return c.Solve(b)
}
