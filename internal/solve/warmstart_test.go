package solve

import (
	"errors"
	"math"
	"strings"
	"testing"

	"pdn3d/internal/obs"
)

// warmSystem is a mesh-like SPD system with a nontrivial solution.
func warmSystem(t *testing.T) ([]float64, []float64) {
	t.Helper()
	a := grid2D(20, 20)
	b := make([]float64, a.N)
	b[a.N-1] = 1
	b[a.N/2] = 0.5
	x, st, err := CG(a, b, CGOptions{Tol: 1e-10})
	if err != nil || !st.Converged {
		t.Fatalf("cold reference solve: %v (converged=%v)", err, st.Converged)
	}
	return b, x
}

// TestWarmStartZeroGuessMatchesColdBitwise: X0 set to the zero vector
// follows the exact arithmetic of the nil-X0 path (A·0 is exactly zero),
// so the two must agree bit for bit — the guard that adding warm-start
// support left the cold trajectory untouched.
func TestWarmStartZeroGuessMatchesColdBitwise(t *testing.T) {
	a := grid2D(20, 20)
	b := make([]float64, a.N)
	b[a.N-1] = 1
	cold, cst, err := CG(a, b, CGOptions{Tol: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	warm, wst, err := CG(a, b, CGOptions{Tol: 1e-10, X0: make([]float64, a.N)})
	if err != nil {
		t.Fatal(err)
	}
	if cst.Iterations != wst.Iterations {
		t.Errorf("iterations %d vs %d", cst.Iterations, wst.Iterations)
	}
	for i := range cold {
		if math.Float64bits(cold[i]) != math.Float64bits(warm[i]) {
			t.Fatalf("x[%d] = %x vs %x", i, math.Float64bits(cold[i]), math.Float64bits(warm[i]))
		}
	}
}

// TestWarmStartExactGuessConvergesImmediately: seeding with the solution
// itself must finish in zero iterations.
func TestWarmStartExactGuessConvergesImmediately(t *testing.T) {
	a := grid2D(20, 20)
	b, x := warmSystem(t)
	got, st, err := CG(a, b, CGOptions{Tol: 1e-9, X0: x})
	if err != nil {
		t.Fatal(err)
	}
	if !st.Converged || st.Iterations != 0 {
		t.Errorf("exact guess: iterations=%d converged=%v, want 0/true", st.Iterations, st.Converged)
	}
	for i := range got {
		if got[i] != x[i] {
			t.Fatalf("exact guess mutated at %d: %g vs %g", i, got[i], x[i])
		}
	}
}

// TestWarmStartNearbyGuessConvergesFaster: a slightly perturbed solution
// must converge to the same tolerance in fewer iterations than cold, and
// must not mutate the caller's guess.
func TestWarmStartNearbyGuessConvergesFaster(t *testing.T) {
	a := grid2D(20, 20)
	b, x := warmSystem(t)
	guess := make([]float64, len(x))
	saved := make([]float64, len(x))
	for i := range x {
		guess[i] = x[i] * (1 + 1e-6*float64(i%7))
	}
	copy(saved, guess)
	_, cold, err := CG(a, b, CGOptions{Tol: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	got, warm, err := CG(a, b, CGOptions{Tol: 1e-10, X0: guess})
	if err != nil {
		t.Fatal(err)
	}
	if !warm.Converged {
		t.Fatal("warm solve did not converge")
	}
	if warm.Iterations >= cold.Iterations {
		t.Errorf("warm iterations %d not below cold %d", warm.Iterations, cold.Iterations)
	}
	for i := range guess {
		if guess[i] != saved[i] {
			t.Fatalf("X0 mutated at %d", i)
		}
	}
	// Same tolerance: the warm answer matches the cold trajectory's answer
	// to solver accuracy even though the float paths differ.
	coldX, _, err := CG(a, b, CGOptions{Tol: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if math.Abs(got[i]-coldX[i]) > 1e-7 {
			t.Fatalf("warm/cold disagree at %d: %g vs %g", i, got[i], coldX[i])
		}
	}
}

// TestWarmStartLengthMismatch: a wrong-sized guess is an error, not a
// silent cold start.
func TestWarmStartLengthMismatch(t *testing.T) {
	a := grid2D(4, 4)
	b := make([]float64, a.N)
	b[0] = 1
	if _, _, err := CG(a, b, CGOptions{X0: make([]float64, a.N-1)}); err == nil {
		t.Error("want error for short X0")
	}
}

// TestWarmStartCounter: registry-built CG solvers count warm-started
// solves under solve.<method>.warm_starts; direct Cholesky ignores X0.
func TestWarmStartCounter(t *testing.T) {
	reg := obs.NewRegistry()
	a := grid2D(8, 8)
	b := make([]float64, a.N)
	b[a.N-1] = 1
	s, err := New(a, Options{Method: MethodCGIC0, Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	x, _, err := s.Solve(b, CGOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Solve(b, CGOptions{X0: x}); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if got := snap.Counters["solve.cg-ic0.warm_starts"]; got != 1 {
		t.Errorf("warm_starts = %d, want 1 (one of two solves was seeded)", got)
	}

	ch, err := New(a, Options{Method: MethodCholesky, Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	xc, st, err := ch.Solve(b, CGOptions{X0: x})
	if err != nil {
		t.Fatal(err)
	}
	if !st.Converged {
		t.Error("cholesky not converged")
	}
	for i := range xc {
		if math.Abs(xc[i]-x[i]) > 1e-7 {
			t.Fatalf("cholesky with X0 diverges from CG at %d", i)
		}
	}
	for name := range snap.Counters {
		if strings.Contains(name, "cholesky.warm_starts") && snap.Counters[name] != 0 {
			t.Errorf("cholesky counted a warm start: %s = %d", name, snap.Counters[name])
		}
	}
}

// TestWarmStartCancelPublishesNothing: a warm-started solve that is
// cancelled mid-flight must return a nil vector and leave the caller's
// X0 untouched — the solver never hands back a partially converged
// iterate that an upstream warm-start cache could mistake for a
// solution.
func TestWarmStartCancelPublishesNothing(t *testing.T) {
	a := grid2D(20, 20)
	b, x := warmSystem(t)
	guess := make([]float64, len(x))
	saved := make([]float64, len(x))
	for i := range x {
		guess[i] = x[i] * (1 + 1e-2*float64(i%5))
	}
	copy(saved, guess)
	stop := errors.New("request abandoned")
	calls := 0
	cancel := func() error {
		calls++
		if calls > 2 {
			return stop
		}
		return nil
	}
	got, _, err := CG(a, b, CGOptions{Tol: 1e-12, X0: guess, Cancel: cancel})
	if !errors.Is(err, stop) {
		t.Fatalf("err = %v, want wrapped cancellation cause", err)
	}
	if got != nil {
		t.Error("cancelled warm solve returned a partial iterate; want nil")
	}
	for i := range guess {
		if math.Float64bits(guess[i]) != math.Float64bits(saved[i]) {
			t.Fatalf("X0 mutated at %d during cancelled solve", i)
		}
	}
}
