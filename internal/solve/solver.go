package solve

import (
	"fmt"
	"sort"
	"sync"

	"pdn3d/internal/obs"
	"pdn3d/internal/sparse"
)

// Solver solves A·x = b for one fixed matrix bound at construction, and is
// reusable — and safe for concurrent use — across right-hand sides. Any
// per-matrix setup (preconditioner factorization, dense factorization)
// happens once in the factory, which is what makes LUT builds and
// design-space sweeps with thousands of right-hand sides tractable.
type Solver interface {
	// Method returns the registry name the solver was built under.
	Method() string
	// Solve returns x with A·x = b, with per-call tuning for the
	// iterative methods (direct methods ignore opt).
	Solve(b []float64, opt CGOptions) ([]float64, CGStats, error)
}

// Options selects and tunes a solver built through the registry.
type Options struct {
	// Method is the registry name: "cg-ic0", "cg-jacobi", or "cholesky"
	// (plus anything registered by tests or future backends). Empty
	// selects DefaultMethod.
	Method string
	// Workers bounds the worker pool the BLAS-1/SpMV kernels shard
	// across on large systems. <= 0 selects GOMAXPROCS. Results are
	// identical for every value (deterministic sharding).
	Workers int
	// CGOptions is the default per-call tuning passed to Solve by
	// callers that hold an Options rather than separate knobs.
	CGOptions
	// Obs, when non-nil, receives per-method solver metrics (solve and
	// iteration counts, iteration histogram, max residual, setup and
	// preconditioner-apply time) under "solve.<method>.*". Instrumented
	// and uninstrumented solves produce identical results.
	Obs *obs.Registry
}

// Method names built in to the registry.
const (
	// MethodCGIC0 is IC(0)-preconditioned CG — the production default.
	MethodCGIC0 = "cg-ic0"
	// MethodCGJacobi is Jacobi-preconditioned CG — the robust fallback.
	MethodCGJacobi = "cg-jacobi"
	// MethodCGAMG is CG preconditioned by an aggregation-based algebraic
	// multigrid V-cycle (see amg.go). Callers that hold an rmesh model
	// additionally run it on the RCM-reordered system.
	MethodCGAMG = "cg-amg"
	// MethodCholesky is the dense exact factorization — the golden
	// reference for small systems (O(n³)).
	MethodCholesky = "cholesky"
)

// Preconditioner names reported in CGStats.Precond.
const (
	precondIC0    = "ic0"
	precondJacobi = "jacobi"
	precondAMG    = "amg"
)

// UsesReordering reports whether a method benefits from solving the
// RCM-reordered system. Only cg-amg opts in: the existing methods keep
// their byte-pinned outputs, and reordering the system changes the
// floating-point trajectory of every iterative solve.
func UsesReordering(method string) bool { return method == MethodCGAMG }

// DefaultMethod is used when Options.Method is empty.
const DefaultMethod = MethodCGIC0

// Factory builds a Solver for one matrix.
type Factory func(a *sparse.CSR, opt Options) (Solver, error)

var (
	regMu    sync.RWMutex
	registry = map[string]Factory{}
)

// Register adds a solver factory under the given method name, replacing
// any previous registration.
func Register(method string, f Factory) {
	regMu.Lock()
	defer regMu.Unlock()
	registry[method] = f
}

// Methods lists the registered method names, sorted.
func Methods() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, 0, len(registry))
	for m := range registry {
		out = append(out, m)
	}
	sort.Strings(out)
	return out
}

// New builds a solver for the matrix using the method named in opt
// (DefaultMethod when empty).
func New(a *sparse.CSR, opt Options) (Solver, error) {
	method := opt.Method
	if method == "" {
		method = DefaultMethod
	}
	regMu.RLock()
	f, ok := registry[method]
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("solve: unknown method %q (registered: %v)", method, Methods())
	}
	return f(a, opt)
}

func init() {
	Register(MethodCGJacobi, func(a *sparse.CSR, opt Options) (Solver, error) {
		m := newSolverMetrics(opt.Obs, MethodCGJacobi)
		stop := m.setup.Start()
		pre, err := NewJacobi(a)
		stop()
		if err != nil {
			return nil, err
		}
		return newCGSolver(MethodCGJacobi, a, pre, opt, m, precondJacobi, false), nil
	})
	Register(MethodCGIC0, func(a *sparse.CSR, opt Options) (Solver, error) {
		// IC(0) of an SPD matrix can still break down; mirror the PCG
		// fallback and degrade to Jacobi scaling. The swap is recorded in
		// the solve.ic_fallbacks counter and in every CGStats this solver
		// returns — a silent preconditioner substitution once hid solver
		// regressions from traces and the diff harness.
		m := newSolverMetrics(opt.Obs, MethodCGIC0)
		stop := m.setup.Start()
		precond, fallback := precondIC0, false
		var pre Preconditioner
		ic, err := NewIC(a)
		if err == nil {
			pre = ic
		} else {
			precond, fallback = precondJacobi, true
			opt.Obs.Counter("solve.ic_fallbacks").Add(1)
			if pre, err = NewJacobi(a); err != nil {
				stop()
				return nil, err
			}
		}
		stop()
		return newCGSolver(MethodCGIC0, a, pre, opt, m, precond, fallback), nil
	})
	Register(MethodCGAMG, func(a *sparse.CSR, opt Options) (Solver, error) {
		m := newSolverMetrics(opt.Obs, MethodCGAMG)
		stop := m.setup.Start()
		pre, err := NewAMG(a)
		stop()
		if err != nil {
			return nil, err
		}
		return newCGSolver(MethodCGAMG, a, pre, opt, m, precondAMG, false), nil
	})
	Register(MethodCholesky, func(a *sparse.CSR, opt Options) (Solver, error) {
		m := newSolverMetrics(opt.Obs, MethodCholesky)
		stop := m.setup.Start()
		c, err := NewCholesky(a)
		stop()
		if err != nil {
			return nil, err
		}
		return &cholSolver{a: a, c: c, k: kernels{workers: opt.Workers}, m: m}, nil
	})
}

// cgSolver is a preconditioned-CG method bound to one matrix. precond
// names the preconditioner that was actually built (which can differ from
// the method's preferred one — see the cg-ic0 fallback), and fallback
// records that substitution; both are stamped into every CGStats returned.
type cgSolver struct {
	method   string
	a        *sparse.CSR
	pre      Preconditioner
	k        kernels
	m        solverMetrics
	precond  string
	fallback bool
}

func newCGSolver(method string, a *sparse.CSR, pre Preconditioner, opt Options, m solverMetrics, precond string, fallback bool) *cgSolver {
	if opt.Obs != nil {
		pre = timedPre{pre: pre, t: m.apply}
	}
	return &cgSolver{method: method, a: a, pre: pre, k: kernels{workers: opt.Workers}, m: m, precond: precond, fallback: fallback}
}

func (s *cgSolver) Method() string { return s.method }

func (s *cgSolver) Solve(b []float64, opt CGOptions) ([]float64, CGStats, error) {
	if opt.X0 != nil {
		s.m.warmStarts.Add(1)
	}
	// Stamp the solver identity before the solve so even a cancelled or
	// failed record names the method and the preconditioner that really
	// ran (fallback included).
	opt.Rec.SetSolver(s.method, s.precond, s.fallback)
	stop := s.m.solveTime.Start()
	x, stats, err := pcg(s.a, s.pre, b, opt, s.k)
	stop()
	stats.Precond = s.precond
	stats.Fallback = s.fallback
	if opt.Span != nil {
		opt.Span.Annotate(obs.A("precond", s.precond))
		if s.fallback {
			opt.Span.Annotate(obs.A("precond_fallback", true))
		}
	}
	s.m.record(stats, err)
	return x, stats, err
}

// cholSolver wraps the dense factorization behind the Solver interface.
type cholSolver struct {
	a *sparse.CSR
	c *Cholesky
	k kernels
	m solverMetrics
}

func (s *cholSolver) Method() string { return MethodCholesky }

func (s *cholSolver) Solve(b []float64, opt CGOptions) ([]float64, CGStats, error) {
	// A direct factorization gains nothing from a starting guess, so
	// opt.X0 is ignored — exact solves are trivially "warm".
	// The dense triangular solves have no iteration boundary to poll, so
	// cancellation is honored only before the work starts. A recorded
	// direct solve carries no iteration trajectory and no condition
	// estimate — just identity, residual, and termination.
	opt.Rec.Begin(s.a.N)
	opt.Rec.SetSolver(MethodCholesky, "", false)
	if opt.Cancel != nil {
		if err := opt.Cancel(); err != nil {
			opt.Rec.Finish(0, 0, false, obs.TermCancelled)
			return nil, CGStats{}, fmt.Errorf("solve: canceled: %w", err)
		}
	}
	stop := s.m.solveTime.Start()
	x, err := s.c.Solve(b)
	stop()
	if err != nil {
		s.m.record(CGStats{}, err)
		opt.Rec.Finish(0, 0, false, obs.TermError)
		return nil, CGStats{}, err
	}
	// Report the true relative residual so direct solves carry honest
	// stats; one SpMV is noise next to the O(n³) factorization.
	stats := CGStats{Converged: true}
	if normB := s.k.norm2(b); normB > 0 {
		r := make([]float64, s.a.N)
		s.k.mulVec(s.a, r, x)
		s.k.axpy(r, -1, b)
		stats.Residual = s.k.norm2(r) / normB
	}
	s.m.record(stats, nil)
	opt.Rec.Finish(0, stats.Residual, true, obs.TermConverged)
	return x, stats, nil
}
