package solve

import (
	"pdn3d/internal/obs"
)

// iterBounds is the fixed bucket layout for per-solve iteration counts.
// Fixed bounds are what keep the bucket tallies deterministic across
// worker counts (see the obs determinism contract).
var iterBounds = []float64{1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000}

// solverMetrics is the per-method instrument set. The zero value (from a
// nil registry) has nil metrics throughout, and every obs recording method
// is a no-op on nil, so uninstrumented solves pay only nil checks.
type solverMetrics struct {
	solves     *obs.Counter
	warmStarts *obs.Counter
	iterations *obs.Counter
	iterHist   *obs.Histogram
	residual   *obs.Gauge
	errors     *obs.Counter
	setup      *obs.Timer
	apply      *obs.Timer
	solveTime  *obs.Timer
}

// newSolverMetrics roots one method's metrics at "solve.<method>".
func newSolverMetrics(r *obs.Registry, method string) solverMetrics {
	if r == nil {
		return solverMetrics{}
	}
	p := "solve." + method
	return solverMetrics{
		solves:     r.Counter(p + ".solves"),
		warmStarts: r.Counter(p + ".warm_starts"),
		iterations: r.Counter(p + ".iterations_total"),
		iterHist:   r.Histogram(p+".iterations", iterBounds),
		residual:   r.Gauge(p + ".residual_max"),
		errors:     r.Counter(p + ".errors"),
		setup:      r.Timer(p + ".setup_time"),
		apply:      r.Timer(p + ".precond_apply"),
		solveTime:  r.Timer(p + ".solve_time"),
	}
}

// record books one finished solve. The residual gauge holds the maximum
// over all solves — order-independent, so deterministic under concurrency.
func (m solverMetrics) record(st CGStats, err error) {
	m.solves.Add(1)
	m.iterations.Add(int64(st.Iterations))
	m.iterHist.Observe(float64(st.Iterations))
	m.residual.SetMax(st.Residual)
	if err != nil {
		m.errors.Add(1)
	}
}

// timedPre times every preconditioner application. Factories only wrap
// when a registry is present, so uninstrumented solves skip the layer.
type timedPre struct {
	pre Preconditioner
	t   *obs.Timer
}

func (p timedPre) Apply(z, r []float64) {
	stop := p.t.Start()
	p.pre.Apply(z, r)
	stop()
}
