package solve

import (
	"fmt"
	"testing"

	"pdn3d/internal/obs"
)

// Benchmark systems are 2D grid Laplacians with one supply tie — the same
// stencil structure the R-Mesh nodal systems have. Sizes track the paper's
// operating range: ~1k nodes (one die's coarse mesh), ~10k (full stack),
// ~100k (fine-pitch stack).
var benchSizes = []struct {
	name   string
	nx, ny int
}{
	{"n1k", 32, 32},     // 1024 nodes
	{"n10k", 100, 100},  // 10000 nodes
	{"n100k", 316, 316}, // 99856 nodes
}

func benchCG(b *testing.B, method string) {
	for _, sz := range benchSizes {
		b.Run(sz.name, func(b *testing.B) {
			a := grid2D(sz.nx, sz.ny)
			s, err := New(a, Options{Method: method, Workers: 1})
			if err != nil {
				b.Fatal(err)
			}
			rhs := make([]float64, a.N)
			rhs[a.N-1] = 0.1
			rhs[a.N/2] = 0.05
			b.ReportAllocs()
			b.ResetTimer()
			var iters int
			for i := 0; i < b.N; i++ {
				_, st, err := s.Solve(rhs, CGOptions{Tol: 1e-8})
				if err != nil {
					b.Fatal(err)
				}
				iters = st.Iterations
			}
			b.ReportMetric(float64(iters), "iters/solve")
		})
	}
}

func BenchmarkCG_Jacobi(b *testing.B) { benchCG(b, MethodCGJacobi) }

func BenchmarkCG_IC0(b *testing.B) { benchCG(b, MethodCGIC0) }

// BenchmarkCG_AMG tracks the multigrid-preconditioned path. Its
// iters/solve metric feeds BENCH_solver.json and the CI iteration guard:
// AMG's near-size-independent iteration counts versus cg-ic0's growth are
// the committed evidence for the preconditioner's payoff at scale.
func BenchmarkCG_AMG(b *testing.B) { benchCG(b, MethodCGAMG) }

// BenchmarkCG_AMG_Recorded is BenchmarkCG_AMG with the flight recorder
// attached. The spread between the two is the recorder's overhead; the
// budget is ≤2% time and ≤8 allocs/op versus the unrecorded run.
func BenchmarkCG_AMG_Recorded(b *testing.B) {
	buf := obs.NewSolveBuffer(obs.DefaultSolveBufferCap)
	for _, sz := range benchSizes {
		b.Run(sz.name, func(b *testing.B) {
			a := grid2D(sz.nx, sz.ny)
			s, err := New(a, Options{Method: MethodCGAMG, Workers: 1})
			if err != nil {
				b.Fatal(err)
			}
			rhs := make([]float64, a.N)
			rhs[a.N-1] = 0.1
			rhs[a.N/2] = 0.05
			b.ReportAllocs()
			b.ResetTimer()
			var iters int
			for i := 0; i < b.N; i++ {
				rec := buf.StartSolveRecord()
				_, st, err := s.Solve(rhs, CGOptions{Tol: 1e-8, Rec: rec})
				rec.Commit()
				if err != nil {
					b.Fatal(err)
				}
				iters = st.Iterations
			}
			b.ReportMetric(float64(iters), "iters/solve")
		})
	}
}

// BenchmarkAMGSetup isolates the hierarchy build (aggregation + Galerkin
// products + coarse factorization) the Solver interface amortizes.
func BenchmarkAMGSetup(b *testing.B) {
	for _, sz := range benchSizes {
		b.Run(sz.name, func(b *testing.B) {
			a := grid2D(sz.nx, sz.ny)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := NewAMG(a); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkIC0Factorization isolates the one-time setup cost the Solver
// interface amortizes across right-hand sides.
func BenchmarkIC0Factorization(b *testing.B) {
	for _, sz := range benchSizes {
		b.Run(sz.name, func(b *testing.B) {
			a := grid2D(sz.nx, sz.ny)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := NewIC(a); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSpMV tracks the raw kernel across worker counts (deterministic
// sharding means the numbers, not the bits, are the only difference).
func BenchmarkSpMV(b *testing.B) {
	a := grid2D(316, 316)
	x := make([]float64, a.N)
	y := make([]float64, a.N)
	for i := range x {
		x[i] = float64(i%7) - 3
	}
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers%d", workers), func(b *testing.B) {
			k := kernels{workers: workers}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				k.mulVec(a, y, x)
			}
		})
	}
}
