package solve

import (
	"errors"
	"testing"

	"pdn3d/internal/obs"
)

// recordedSolve runs one solve with a fresh recorder and returns both
// stories — the stats the solver reported and the record it committed.
func recordedSolve(t *testing.T, method string, rhs []float64, opt CGOptions) (CGStats, obs.SolveRecord, error) {
	t.Helper()
	a := grid2D(16, 16)
	s, err := New(a, Options{Method: method, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	buf := obs.NewSolveBuffer(4)
	rec := buf.StartSolveRecord()
	opt.Rec = rec
	_, stats, serr := s.Solve(rhs, opt)
	return stats, rec.Commit(), serr
}

func benchRHS(n int) []float64 {
	rhs := make([]float64, n)
	rhs[n-1] = 0.1
	rhs[n/2] = 0.05
	return rhs
}

func TestRecorderConvergedSolve(t *testing.T) {
	stats, rec, err := recordedSolve(t, MethodCGIC0, benchRHS(256), CGOptions{Tol: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	if rec.N != 256 || rec.Method != MethodCGIC0 || rec.Precond != precondIC0 || rec.Fallback {
		t.Fatalf("identity fields wrong: %+v", rec)
	}
	if rec.Iterations != stats.Iterations || rec.Residual != stats.Residual || !rec.Converged {
		t.Fatalf("record disagrees with stats: rec=%+v stats=%+v", rec, stats)
	}
	if rec.Termination != obs.TermConverged {
		t.Fatalf("termination = %q, want converged", rec.Termination)
	}
	// A converged exit leaves one fewer β than α: the final iteration
	// returns at the convergence check before computing β.
	if len(rec.Alphas) != stats.Iterations || len(rec.Betas) != stats.Iterations-1 {
		t.Fatalf("coefficient shape: %d alphas, %d betas for %d iterations",
			len(rec.Alphas), len(rec.Betas), stats.Iterations)
	}
	if len(rec.Residuals) == 0 || rec.Residuals[len(rec.Residuals)-1] != stats.Residual {
		t.Fatalf("residual history %v does not end at final residual %g", rec.Residuals, stats.Residual)
	}
	if rec.CondEst <= 1 {
		t.Fatalf("cond_est = %g, want > 1 on a grid Laplacian", rec.CondEst)
	}
	if rec.Warm {
		t.Fatal("cold solve marked warm")
	}
}

func TestRecorderMaxIterAndStagnation(t *testing.T) {
	stats, rec, err := recordedSolve(t, MethodCGJacobi, benchRHS(256), CGOptions{Tol: 1e-30, MaxIter: 5})
	if !errors.Is(err, ErrNotConverged) {
		t.Fatalf("err = %v, want ErrNotConverged", err)
	}
	if rec.Termination != obs.TermMaxIter {
		t.Fatalf("termination = %q, want maxiter (budget too small, still improving)", rec.Termination)
	}
	// A maxiter exit computes β after the final convergence check, so the
	// counts match.
	if len(rec.Alphas) != stats.Iterations || len(rec.Betas) != stats.Iterations {
		t.Fatalf("coefficient shape: %d alphas, %d betas for %d iterations",
			len(rec.Alphas), len(rec.Betas), stats.Iterations)
	}

}

// thrashPre is a deliberately broken preconditioner: it changes between
// iterations (boosting alternating coordinates by 1e6), which destroys
// CG's conjugacy and pins the residual oscillating at a floor it never
// improves past — the stall signature the stagnation classifier exists
// to name. A healthy SPD solve's recursive residual decreases to
// underflow and never plateaus, so this is the honest way to reach the
// stagnated exit through the real iteration loop.
type thrashPre struct{ k int }

func (f *thrashPre) Apply(z, r []float64) {
	f.k++
	for i := range z {
		z[i] = r[i] * (1 + 1e6*float64((i+f.k)%2))
	}
}

func TestRecorderStagnatedSolve(t *testing.T) {
	a := grid2D(16, 16)
	buf := obs.NewSolveBuffer(1)
	rec := buf.StartSolveRecord()
	_, _, err := pcg(a, &thrashPre{}, benchRHS(a.N), CGOptions{Tol: 1e-10, MaxIter: 1000, Rec: rec}, kernels{workers: 1})
	if !errors.Is(err, ErrNotConverged) {
		t.Fatalf("err = %v, want ErrNotConverged", err)
	}
	if r := rec.Commit(); r.Termination != obs.TermStagnated {
		t.Fatalf("termination = %q, want stagnated (residual oscillating at its floor)", r.Termination)
	}
}

func TestRecorderCancelledSolve(t *testing.T) {
	cancelled := errors.New("ctx done")
	calls := 0
	_, rec, err := recordedSolve(t, MethodCGJacobi, benchRHS(256), CGOptions{
		Cancel: func() error {
			calls++
			if calls > 3 {
				return cancelled
			}
			return nil
		},
	})
	if !errors.Is(err, cancelled) {
		t.Fatalf("err = %v, want wrapped cancellation", err)
	}
	if rec.Termination != obs.TermCancelled {
		t.Fatalf("termination = %q, want cancelled", rec.Termination)
	}
	if rec.Iterations != 3 {
		t.Fatalf("iterations = %d, want 3 (cancelled at the 4th poll)", rec.Iterations)
	}
}

func TestRecorderWarmStart(t *testing.T) {
	// Solve cold first, then warm-start from the exact solution: the warm
	// record reports the seed norm and a zero-iteration converged exit.
	a := grid2D(16, 16)
	s, err := New(a, Options{Method: MethodCGIC0, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	rhs := benchRHS(a.N)
	x, _, err := s.Solve(rhs, CGOptions{Tol: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	buf := obs.NewSolveBuffer(1)
	rec := buf.StartSolveRecord()
	if _, _, err := s.Solve(rhs, CGOptions{Tol: 1e-10, X0: x, Rec: rec}); err != nil {
		t.Fatal(err)
	}
	r := rec.Commit()
	if !r.Warm || r.WarmSeedNorm <= 0 {
		t.Fatalf("warm fields: %+v", r)
	}
	if r.Iterations != 0 || r.Termination != obs.TermConverged {
		t.Fatalf("warm exact-seed solve: %+v, want 0 iterations converged", r)
	}
}

func TestRecorderCholesky(t *testing.T) {
	stats, rec, err := recordedSolve(t, MethodCholesky, benchRHS(256), CGOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Method != MethodCholesky || rec.N != 256 {
		t.Fatalf("identity fields wrong: %+v", rec)
	}
	if !rec.Converged || rec.Termination != obs.TermConverged || rec.Residual != stats.Residual {
		t.Fatalf("final stats wrong: rec=%+v stats=%+v", rec, stats)
	}
	if len(rec.Alphas) != 0 || len(rec.Betas) != 0 || rec.CondEst != 0 {
		t.Fatalf("direct solve must carry no trajectory: %+v", rec)
	}
}

// TestRecorderShapeWorkerIndependent pins the determinism contract the
// serve-layer tests rely on: the sharded kernels are bit-identical for
// any worker count, so the recorded trajectory is too.
func TestRecorderShapeWorkerIndependent(t *testing.T) {
	run := func(workers int) obs.SolveRecord {
		a := grid2D(24, 24)
		s, err := New(a, Options{Method: MethodCGAMG, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		buf := obs.NewSolveBuffer(1)
		rec := buf.StartSolveRecord()
		if _, _, err := s.Solve(benchRHS(a.N), CGOptions{Tol: 1e-10, Rec: rec}); err != nil {
			t.Fatal(err)
		}
		return rec.Commit()
	}
	r1, r8 := run(1), run(8)
	if r1.Iterations != r8.Iterations || r1.Residual != r8.Residual || r1.CondEst != r8.CondEst {
		t.Fatalf("scalar shape differs across workers:\n1: %+v\n8: %+v", r1, r8)
	}
	for name, pair := range map[string][2][]float64{
		"residuals": {r1.Residuals, r8.Residuals},
		"alphas":    {r1.Alphas, r8.Alphas},
		"betas":     {r1.Betas, r8.Betas},
	} {
		a, b := pair[0], pair[1]
		if len(a) != len(b) {
			t.Fatalf("%s length differs across workers: %d vs %d", name, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s[%d] differs across workers: %g vs %g", name, i, a[i], b[i])
			}
		}
	}
}
