package solve

import (
	"fmt"

	"pdn3d/internal/sparse"
)

// Reordered wraps a solver that was built on the symmetrically permuted
// system B = Pᵀ·A·P (B[i][j] = A[perm[i]][perm[j]], perm[new] = old) so it
// presents the original node ordering to callers: right-hand sides and
// warm-start guesses are permuted on the way in, solutions are
// inverse-permuted on the way out. Algebraically B·(Pᵀx) = Pᵀb is the same
// system, so the wrapped solve is exact with respect to the original —
// only the floating-point trajectory of an iterative method changes.
//
// perm is captured by reference and must not be mutated afterwards; the
// rmesh topology layer hands over a private copy.
func Reordered(inner Solver, perm []int32) Solver {
	return &reordered{inner: inner, perm: perm}
}

type reordered struct {
	inner Solver
	perm  []int32
}

func (s *reordered) Method() string { return s.inner.Method() }

func (s *reordered) Solve(b []float64, opt CGOptions) ([]float64, CGStats, error) {
	n := len(s.perm)
	if len(b) != n {
		return nil, CGStats{}, fmt.Errorf("solve: rhs length %d != permutation length %d", len(b), n)
	}
	pb := make([]float64, n)
	sparse.PermuteVec(pb, b, s.perm)
	if opt.X0 != nil {
		if len(opt.X0) != n {
			return nil, CGStats{}, fmt.Errorf("solve: warm-start guess length %d != permutation length %d", len(opt.X0), n)
		}
		px := make([]float64, n)
		sparse.PermuteVec(px, opt.X0, s.perm)
		opt.X0 = px
	}
	xp, stats, err := s.inner.Solve(pb, opt)
	if err != nil || xp == nil {
		return nil, stats, err
	}
	x := make([]float64, n)
	sparse.InvPermuteVec(x, xp, s.perm)
	return x, stats, nil
}
