package solve

import (
	"fmt"
	"math"

	"pdn3d/internal/sparse"
)

// ICPreconditioner is a zero-fill incomplete Cholesky factorization
// M = L·Lᵀ of an SPD matrix, used to precondition CG. On the R-Mesh
// conductance systems it typically cuts the iteration count several-fold
// versus Jacobi scaling.
type ICPreconditioner struct {
	n      int
	rowPtr []int32 // CSR of the strictly-lower triangle of L
	col    []int32
	val    []float64
	diag   []float64 // diagonal of L
}

// NewIC builds an IC(0) factorization of a. If a pivot collapses (the
// incomplete factorization of an SPD matrix can still break down), the
// factorization restarts with a progressively larger diagonal shift
// α·diag(A); it gives up after a few attempts.
func NewIC(a *sparse.CSR) (*ICPreconditioner, error) {
	shifts := []float64{0, 1e-3, 1e-2, 1e-1, 0.5}
	var err error
	for _, s := range shifts {
		var p *ICPreconditioner
		p, err = newICShifted(a, s)
		if err == nil {
			return p, nil
		}
	}
	return nil, fmt.Errorf("solve: IC(0) breakdown persists: %w", err)
}

func newICShifted(a *sparse.CSR, shift float64) (*ICPreconditioner, error) {
	n := a.N
	p := &ICPreconditioner{
		n:      n,
		rowPtr: make([]int32, n+1),
		diag:   make([]float64, n),
	}
	// Strictly-lower pattern of A (CSR rows are column-sorted).
	for i := 0; i < n; i++ {
		for q := a.RowPtr[i]; q < a.RowPtr[i+1]; q++ {
			if int(a.Col[q]) < i {
				p.col = append(p.col, a.Col[q])
				p.val = append(p.val, a.Val[q])
			}
		}
		p.rowPtr[i+1] = int32(len(p.col))
	}
	// Row-major up-looking factorization restricted to the pattern.
	// For each row i: L[i][j] = (A[i][j] - Σ_k L[i][k]·L[j][k]) / L[j][j]
	// over shared k < j, then the diagonal.
	for i := 0; i < n; i++ {
		for q := p.rowPtr[i]; q < p.rowPtr[i+1]; q++ {
			j := int(p.col[q])
			s := p.val[q]
			// Intersect row i and row j patterns (both column-sorted).
			qi, qj := p.rowPtr[i], p.rowPtr[j]
			for qi < q && qj < p.rowPtr[j+1] {
				ci, cj := p.col[qi], p.col[qj]
				switch {
				case ci == cj:
					s -= p.val[qi] * p.val[qj]
					qi++
					qj++
				case ci < cj:
					qi++
				default:
					qj++
				}
			}
			p.val[q] = s / p.diag[j]
		}
		// Diagonal: A[i][i]·(1+shift) − Σ L[i][k]².
		d := a.At(i, i) * (1 + shift)
		for q := p.rowPtr[i]; q < p.rowPtr[i+1]; q++ {
			d -= p.val[q] * p.val[q]
		}
		if d <= 0 || math.IsNaN(d) {
			return nil, fmt.Errorf("solve: IC(0) pivot %g at row %d (shift %g)", d, i, shift)
		}
		p.diag[i] = math.Sqrt(d)
	}
	return p, nil
}

// Apply computes z = M⁻¹ r via forward then backward substitution.
func (p *ICPreconditioner) Apply(z, r []float64) {
	// Forward: L·y = r.
	for i := 0; i < p.n; i++ {
		s := r[i]
		for q := p.rowPtr[i]; q < p.rowPtr[i+1]; q++ {
			s -= p.val[q] * z[p.col[q]]
		}
		z[i] = s / p.diag[i]
	}
	// Backward: Lᵀ·z = y (in place, traversing rows in reverse and
	// scattering into earlier entries).
	for i := p.n - 1; i >= 0; i-- {
		z[i] /= p.diag[i]
		zi := z[i]
		for q := p.rowPtr[i]; q < p.rowPtr[i+1]; q++ {
			z[p.col[q]] -= p.val[q] * zi
		}
	}
}

// PCG solves A·x = b with IC(0) preconditioning. It falls back to the
// Jacobi-preconditioned CG when the factorization breaks down; the swap is
// not silent — the returned CGStats carry Precond = "jacobi" and
// Fallback = true so callers can see which preconditioner actually ran.
func PCG(a *sparse.CSR, b []float64, opt CGOptions) ([]float64, CGStats, error) {
	pre, err := NewIC(a)
	if err != nil {
		x, st, cgErr := CG(a, b, opt)
		st.Precond = precondJacobi
		st.Fallback = true
		return x, st, cgErr
	}
	x, st, err := PCGWith(a, pre, b, opt)
	st.Precond = precondIC0
	return x, st, err
}

// PCGWith runs preconditioned CG with a previously-built preconditioner —
// the fast path when many right-hand sides share one matrix (LUT builds,
// design-space sampling).
func PCGWith(a *sparse.CSR, pre Preconditioner, b []float64, opt CGOptions) ([]float64, CGStats, error) {
	return pcg(a, pre, b, opt, kernels{workers: 1})
}
