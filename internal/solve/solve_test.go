package solve

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"pdn3d/internal/sparse"
)

// ladder builds the conductance matrix of an n-node resistor ladder where
// node 0 ties to the supply through gTie and neighbours couple through g.
func ladder(n int, g, gTie float64) *sparse.CSR {
	b := sparse.NewBuilder(n)
	b.AddToGround(0, gTie)
	for i := 0; i+1 < n; i++ {
		b.AddConductance(i, i+1, g)
	}
	return b.Compress()
}

// randomSPD builds a random well-conditioned conductance-style SPD matrix.
func randomSPD(n int, rng *rand.Rand) *sparse.CSR {
	b := sparse.NewBuilder(n)
	for i := 0; i < n; i++ {
		b.AddToGround(i, 0.1+rng.Float64())
	}
	for k := 0; k < 4*n; k++ {
		i, j := rng.Intn(n), rng.Intn(n)
		if i != j {
			b.AddConductance(i, j, rng.Float64()+0.01)
		}
	}
	return b.Compress()
}

func TestCGSolvesLadderExactly(t *testing.T) {
	// Ladder with unit current injected at the far end: voltage drop
	// accumulates 1/g per segment plus 1/gTie at the tie.
	n := 10
	g, gTie := 2.0, 5.0
	a := ladder(n, g, gTie)
	rhs := make([]float64, n)
	rhs[n-1] = 1 // 1 A into the last node
	x, st, err := CG(a, rhs, CGOptions{})
	if err != nil {
		t.Fatalf("CG: %v", err)
	}
	if !st.Converged {
		t.Fatal("CG did not report convergence")
	}
	for i := 0; i < n; i++ {
		want := 1/gTie + float64(i)/g
		if math.Abs(x[i]-want) > 1e-8 {
			t.Errorf("x[%d] = %.10f, want %.10f", i, x[i], want)
		}
	}
}

func TestCGZeroRHS(t *testing.T) {
	a := ladder(5, 1, 1)
	x, st, err := CG(a, make([]float64, 5), CGOptions{})
	if err != nil || !st.Converged {
		t.Fatalf("zero rhs: err=%v converged=%v", err, st.Converged)
	}
	for i, v := range x {
		if v != 0 {
			t.Errorf("x[%d] = %g, want 0", i, v)
		}
	}
	if st.Iterations != 0 {
		t.Errorf("iterations = %d, want 0", st.Iterations)
	}
}

func TestCGDimensionMismatch(t *testing.T) {
	a := ladder(5, 1, 1)
	if _, _, err := CG(a, make([]float64, 4), CGOptions{}); err == nil {
		t.Error("want dimension error")
	}
}

func TestCGRejectsSingular(t *testing.T) {
	// A floating ladder (no ground tie) is singular: the zero diagonal of
	// an isolated node, or stagnation, must surface as an error.
	b := sparse.NewBuilder(3)
	b.AddConductance(0, 1, 1)
	// node 2 isolated: zero diagonal
	a := b.Compress()
	rhs := []float64{1, -1, 0}
	if _, _, err := CG(a, rhs, CGOptions{MaxIter: 50}); err == nil {
		t.Error("want error for singular system")
	}
}

func TestCGNotConvergedError(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randomSPD(50, rng)
	rhs := make([]float64, 50)
	for i := range rhs {
		rhs[i] = rng.NormFloat64()
	}
	_, _, err := CG(a, rhs, CGOptions{MaxIter: 1, Tol: 1e-14})
	if !errors.Is(err, ErrNotConverged) {
		t.Errorf("err = %v, want ErrNotConverged", err)
	}
}

func TestCholeskyMatchesCG(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 10; trial++ {
		n := 5 + rng.Intn(40)
		a := randomSPD(n, rng)
		rhs := make([]float64, n)
		for i := range rhs {
			rhs[i] = rng.NormFloat64()
		}
		xc, err := DenseSolve(a, rhs)
		if err != nil {
			t.Fatalf("DenseSolve: %v", err)
		}
		xg, _, err := CG(a, rhs, CGOptions{Tol: 1e-12})
		if err != nil {
			t.Fatalf("CG: %v", err)
		}
		for i := range xc {
			if math.Abs(xc[i]-xg[i]) > 1e-6*(1+math.Abs(xc[i])) {
				t.Fatalf("trial %d: x[%d]: chol %g vs cg %g", trial, i, xc[i], xg[i])
			}
		}
	}
}

func TestCholeskyResidualIsTiny(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + int(nRaw)%30
		a := randomSPD(n, rng)
		rhs := make([]float64, n)
		for i := range rhs {
			rhs[i] = rng.NormFloat64()
		}
		x, err := DenseSolve(a, rhs)
		if err != nil {
			return false
		}
		ax := make([]float64, n)
		a.MulVec(ax, x)
		for i := range ax {
			if math.Abs(ax[i]-rhs[i]) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	b := sparse.NewBuilder(2)
	b.Add(0, 0, -1)
	b.Add(1, 1, 1)
	if _, err := NewCholesky(b.Compress()); err == nil {
		t.Error("want error for indefinite matrix")
	}
}

func TestCholeskySolveDimensionMismatch(t *testing.T) {
	c, err := NewCholesky(ladder(4, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Solve(make([]float64, 3)); err == nil {
		t.Error("want dimension error")
	}
}

// Monotone physics property: adding extra conductance anywhere in a grounded
// network can only lower (or keep) every node voltage under the same loads.
func TestMoreMetalNeverRaisesVoltage(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 8
		base := sparse.NewBuilder(n)
		extra := sparse.NewBuilder(n)
		base.AddToGround(0, 1)
		extra.AddToGround(0, 1)
		for i := 0; i+1 < n; i++ {
			g := 0.5 + rng.Float64()
			base.AddConductance(i, i+1, g)
			extra.AddConductance(i, i+1, g)
		}
		// Strengthen one random link in the "extra" network.
		i, j := rng.Intn(n), rng.Intn(n)
		if i == j {
			extra.AddToGround(i, 1)
		} else {
			extra.AddConductance(i, j, 2)
		}
		rhs := make([]float64, n)
		for i := range rhs {
			rhs[i] = rng.Float64() // non-negative loads
		}
		xb, _, err1 := CG(base.Compress(), rhs, CGOptions{Tol: 1e-12})
		xe, _, err2 := CG(extra.Compress(), rhs, CGOptions{Tol: 1e-12})
		if err1 != nil || err2 != nil {
			return false
		}
		for k := range xb {
			if xe[k] > xb[k]+1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestPCGMatchesCG(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 10; trial++ {
		n := 20 + rng.Intn(60)
		a := randomSPD(n, rng)
		rhs := make([]float64, n)
		for i := range rhs {
			rhs[i] = rng.NormFloat64()
		}
		xp, sp, err := PCG(a, rhs, CGOptions{Tol: 1e-11})
		if err != nil {
			t.Fatalf("PCG: %v", err)
		}
		xc, sc, err := CG(a, rhs, CGOptions{Tol: 1e-11})
		if err != nil {
			t.Fatalf("CG: %v", err)
		}
		for i := range xp {
			if math.Abs(xp[i]-xc[i]) > 1e-6*(1+math.Abs(xc[i])) {
				t.Fatalf("trial %d: x[%d]: pcg %g vs cg %g", trial, i, xp[i], xc[i])
			}
		}
		if !sp.Converged || !sc.Converged {
			t.Fatal("convergence flags")
		}
	}
}

func TestPCGConvergesFasterOnMesh(t *testing.T) {
	// A 2D grid Laplacian with one tie: the canonical PDN-like system.
	nx, ny := 40, 40
	b := sparse.NewBuilder(nx * ny)
	idx := func(i, j int) int { return j*nx + i }
	for j := 0; j < ny; j++ {
		for i := 0; i < nx; i++ {
			if i+1 < nx {
				b.AddConductance(idx(i, j), idx(i+1, j), 1)
			}
			if j+1 < ny {
				b.AddConductance(idx(i, j), idx(i, j+1), 1)
			}
		}
	}
	b.AddToGround(0, 10)
	a := b.Compress()
	rhs := make([]float64, a.N)
	rhs[a.N-1] = 0.1
	_, sCG, err := CG(a, rhs, CGOptions{Tol: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	_, sPCG, err := PCG(a, rhs, CGOptions{Tol: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	if sPCG.Iterations >= sCG.Iterations {
		t.Errorf("IC(0) PCG took %d iterations, Jacobi CG %d — expected a reduction",
			sPCG.Iterations, sCG.Iterations)
	}
	t.Logf("mesh 40x40: CG %d iters, PCG %d iters", sCG.Iterations, sPCG.Iterations)
}

func TestICApplyIsSPDAction(t *testing.T) {
	// M⁻¹ must be symmetric positive definite: check x'M⁻¹x > 0 and
	// symmetry via random probes.
	rng := rand.New(rand.NewSource(5))
	a := randomSPD(40, rng)
	pre, err := NewIC(a)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, 40)
	y := make([]float64, 40)
	mx := make([]float64, 40)
	my := make([]float64, 40)
	for trial := 0; trial < 20; trial++ {
		for i := range x {
			x[i] = rng.NormFloat64()
			y[i] = rng.NormFloat64()
		}
		pre.Apply(mx, x)
		pre.Apply(my, y)
		if dot(x, mx) <= 0 {
			t.Fatal("M^-1 not positive definite")
		}
		if math.Abs(dot(y, mx)-dot(x, my)) > 1e-8*(1+math.Abs(dot(y, mx))) {
			t.Fatal("M^-1 not symmetric")
		}
	}
}

// Cancellation is polled at iteration boundaries: a Cancel that trips
// after k iterations aborts with the cause wrapped; a nil / never-firing
// Cancel changes nothing.
func TestCGCancel(t *testing.T) {
	a := ladder(200, 1, 1)
	b := make([]float64, 200)
	b[199] = 1

	cause := errors.New("deadline exceeded")
	calls := 0
	_, stats, err := CG(a, b, CGOptions{Cancel: func() error {
		calls++
		if calls > 3 {
			return cause
		}
		return nil
	}})
	if !errors.Is(err, cause) {
		t.Fatalf("canceled solve returned %v, want wrapped %v", err, cause)
	}
	if stats.Converged {
		t.Error("canceled solve claims convergence")
	}

	// A cancel hook that never fires must not perturb the solution.
	plain, _, err := CG(a, b, CGOptions{})
	if err != nil {
		t.Fatal(err)
	}
	hooked, _, err := CG(a, b, CGOptions{Cancel: func() error { return nil }})
	if err != nil {
		t.Fatal(err)
	}
	for i := range plain {
		if plain[i] != hooked[i] {
			t.Fatalf("cancel hook changed the solution at %d: %g vs %g", i, plain[i], hooked[i])
		}
	}
}

// The dense path honors a pre-tripped Cancel before factorized solves.
func TestCholeskyCancel(t *testing.T) {
	a := ladder(16, 1, 1)
	s, err := New(a, Options{Method: MethodCholesky})
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, 16)
	b[15] = 1
	cause := errors.New("client went away")
	if _, _, err := s.Solve(b, CGOptions{Cancel: func() error { return cause }}); !errors.Is(err, cause) {
		t.Fatalf("Solve = %v, want wrapped %v", err, cause)
	}
	if _, _, err := s.Solve(b, CGOptions{}); err != nil {
		t.Fatalf("uncanceled solve failed: %v", err)
	}
}
