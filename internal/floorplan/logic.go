package floorplan

import (
	"fmt"

	"pdn3d/internal/geom"
)

// T2Spec parameterizes the OpenSPARC-T2-like host logic die.
type T2Spec struct {
	// W, H are the die dimensions in mm (paper: 9.0 x 8.0).
	W, H float64
	// Cores is the core count (T2: 8).
	Cores int
}

// DefaultT2 matches the Table 1 host logic die.
func DefaultT2() T2Spec { return T2Spec{W: 9.0, H: 8.0, Cores: 8} }

// T2Die builds the host logic floorplan: two rows of cores along the top
// and bottom die edges, a center band of L2 cache banks, and a crossbar /
// SoC uncore block in the very middle. This mirrors the published
// OpenSPARC T2 arrangement closely enough for PDN purposes: core hotspots
// near the edges, cache in the middle.
func T2Die(spec T2Spec) (*Floorplan, error) {
	if spec.Cores%2 != 0 || spec.Cores <= 0 {
		return nil, fmt.Errorf("floorplan: T2 core count %d must be positive and even", spec.Cores)
	}
	const coreH = 2.2
	f := &Floorplan{
		Name:    "t2",
		Outline: geom.R(0, 0, spec.W, spec.H),
	}
	perRow := spec.Cores / 2
	coreW := spec.W / float64(perRow)
	for i := 0; i < perRow; i++ {
		x := float64(i) * coreW
		f.Blocks = append(f.Blocks,
			Block{Name: fmt.Sprintf("core%d", i), Kind: Core, Bank: -1,
				Rect: geom.R(x, 0, coreW, coreH)},
			Block{Name: fmt.Sprintf("core%d", perRow+i), Kind: Core, Bank: -1,
				Rect: geom.R(x, spec.H-coreH, coreW, coreH)},
		)
	}
	// Center band: L2 banks flank a central crossbar.
	bandY := coreH
	bandH := spec.H - 2*coreH
	xbarW := spec.W * 0.22
	cacheW := (spec.W - xbarW) / 2
	f.Blocks = append(f.Blocks,
		Block{Name: "l2.left", Kind: Cache, Bank: -1,
			Rect: geom.R(0, bandY, cacheW, bandH)},
		Block{Name: "xbar", Kind: Uncore, Bank: -1,
			Rect: geom.R(cacheW, bandY, xbarW, bandH)},
		Block{Name: "l2.right", Kind: Cache, Bank: -1,
			Rect: geom.R(cacheW+xbarW, bandY, cacheW, bandH)},
	)
	if err := f.Validate(); err != nil {
		return nil, err
	}
	return f, nil
}

// HMCLogicSpec parameterizes the HMC controller logic die.
type HMCLogicSpec struct {
	// W, H are the die dimensions in mm (paper: 8.8 x 6.4).
	W, H float64
	// Vaults is the vault controller count (HMC: 16).
	Vaults int
}

// DefaultHMCLogic matches the Table 1 HMC logic die.
func DefaultHMCLogic() HMCLogicSpec { return HMCLogicSpec{W: 8.8, H: 6.4, Vaults: 16} }

// HMCLogicDie builds the HMC controller die: a grid of vault controllers in
// the center (under the DRAM vaults) and SerDes/PHY strips along the left
// and right edges where the interposer links leave the cube.
func HMCLogicDie(spec HMCLogicSpec) (*Floorplan, error) {
	if spec.Vaults%4 != 0 || spec.Vaults <= 0 {
		return nil, fmt.Errorf("floorplan: HMC vault count %d must be a positive multiple of 4", spec.Vaults)
	}
	const serdesW = 0.9
	f := &Floorplan{
		Name:    "hmclogic",
		Outline: geom.R(0, 0, spec.W, spec.H),
	}
	f.Blocks = append(f.Blocks,
		Block{Name: "serdes.left", Kind: Uncore, Bank: -1,
			Rect: geom.R(0, 0, serdesW, spec.H)},
		Block{Name: "serdes.right", Kind: Uncore, Bank: -1,
			Rect: geom.R(spec.W-serdesW, 0, serdesW, spec.H)},
	)
	cols := spec.Vaults / 4
	rows := 4
	vw := (spec.W - 2*serdesW) / float64(cols)
	vh := spec.H / float64(rows)
	for c := 0; c < cols; c++ {
		for r := 0; r < rows; r++ {
			v := c*rows + r
			f.Blocks = append(f.Blocks, Block{
				Name: fmt.Sprintf("vault%d", v), Kind: Core, Bank: -1,
				Rect: geom.R(serdesW+float64(c)*vw, float64(r)*vh, vw, vh),
			})
		}
	}
	if err := f.Validate(); err != nil {
		return nil, err
	}
	return f, nil
}
