package floorplan

import (
	"math"
	"strings"
	"testing"

	"pdn3d/internal/geom"
)

func TestDDR3DieDefault(t *testing.T) {
	f, err := DDR3Die(DefaultDDR3())
	if err != nil {
		t.Fatalf("DDR3Die: %v", err)
	}
	if f.NumBanks != 8 {
		t.Fatalf("NumBanks = %d, want 8", f.NumBanks)
	}
	if got := len(f.KindBlocks(BankArray)); got != 8 {
		t.Errorf("bank arrays = %d, want 8", got)
	}
	if got := len(f.KindBlocks(RowDecoder)); got != 8 {
		t.Errorf("row decoders = %d, want 8", got)
	}
	if len(f.KindBlocks(Peripheral)) != 1 || len(f.KindBlocks(ColumnPath)) != 2 {
		t.Error("missing peripheral / column-path strips")
	}
	if w, h := f.Outline.W(), f.Outline.H(); w != 6.8 || h != 6.7 {
		t.Errorf("outline %gx%g, want 6.8x6.7", w, h)
	}
}

func TestDDR3BankLookup(t *testing.T) {
	f, _ := DDR3Die(DefaultDDR3())
	for b := 0; b < 8; b++ {
		r, err := f.BankArrayRect(b)
		if err != nil {
			t.Fatalf("BankArrayRect(%d): %v", b, err)
		}
		if r.Empty() {
			t.Errorf("bank %d rect empty", b)
		}
		if got := len(f.BankBlocks(b)); got != 2 {
			t.Errorf("bank %d owns %d blocks, want 2 (array + rowdec)", b, got)
		}
	}
	if _, err := f.BankArrayRect(99); err == nil {
		t.Error("BankArrayRect(99): want error")
	}
}

func TestDDR3TopBankTouchesDieTop(t *testing.T) {
	f, _ := DDR3Die(DefaultDDR3())
	r, _ := f.BankArrayRect(7)
	if math.Abs(r.Y1-f.Outline.Y1) > 1e-9 {
		t.Errorf("top bank ends at y=%g, want die top %g", r.Y1, f.Outline.Y1)
	}
	r0, _ := f.BankArrayRect(0)
	if r0.Y0 != 0 {
		t.Errorf("bottom bank starts at y=%g, want 0", r0.Y0)
	}
}

func TestDDR3SymmetricAboutVerticalAxis(t *testing.T) {
	// F2F mating requires the PDN-relevant layout to be mirror symmetric:
	// every bank array must have a mirror partner (paper §4.2).
	f, _ := DDR3Die(DefaultDDR3())
	m := f.MirrorX()
	for b := 0; b < f.NumBanks; b++ {
		r, _ := m.BankArrayRect(b)
		found := false
		for bb := 0; bb < f.NumBanks; bb++ {
			o, _ := f.BankArrayRect(bb)
			if rectApprox(r, o) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("mirrored bank %d %v has no partner in original layout", b, r)
		}
	}
}

func TestDDR3RejectsBadBankCount(t *testing.T) {
	for _, n := range []int{0, -4, 3, 6} {
		if _, err := DDR3Die(DDR3Spec{W: 6.8, H: 6.7, Banks: n}); err == nil {
			t.Errorf("Banks=%d: want error", n)
		}
	}
}

func TestWideIODieDefault(t *testing.T) {
	f, err := WideIODie(DefaultWideIO())
	if err != nil {
		t.Fatalf("WideIODie: %v", err)
	}
	if f.NumBanks != 16 {
		t.Fatalf("NumBanks = %d, want 16", f.NumBanks)
	}
	// JEDEC center bump field must sit at the die center.
	var bump Block
	for _, bl := range f.Blocks {
		if bl.Kind == TSVRegion {
			bump = bl
		}
	}
	if bump.Name == "" {
		t.Fatal("no center bump field")
	}
	c, dc := bump.Rect.Center(), f.Outline.Center()
	if math.Abs(c.X-dc.X) > 1e-9 || math.Abs(c.Y-dc.Y) > 1e-9 {
		t.Errorf("bump field center %v, want die center %v", c, dc)
	}
	if _, err := WideIODie(WideIOSpec{W: 7.2, H: 7.2, Banks: 8}); err == nil {
		t.Error("Banks=8: want error")
	}
}

func TestHMCDieDefault(t *testing.T) {
	f, err := HMCDie(DefaultHMC())
	if err != nil {
		t.Fatalf("HMCDie: %v", err)
	}
	if f.NumBanks != 32 {
		t.Fatalf("NumBanks = %d, want 32", f.NumBanks)
	}
	alleys := f.KindBlocks(TSVRegion)
	if len(alleys) != 7 {
		t.Errorf("TSV alleys = %d, want 7 (between 8 bank columns)", len(alleys))
	}
	if _, err := HMCDie(HMCSpec{W: 7.2, H: 6.4, Banks: 16}); err == nil {
		t.Error("Banks=16: want error")
	}
}

func TestT2DieDefault(t *testing.T) {
	f, err := T2Die(DefaultT2())
	if err != nil {
		t.Fatalf("T2Die: %v", err)
	}
	if got := len(f.KindBlocks(Core)); got != 8 {
		t.Errorf("cores = %d, want 8", got)
	}
	if got := len(f.KindBlocks(Cache)); got != 2 {
		t.Errorf("cache blocks = %d, want 2", got)
	}
	if got := len(f.KindBlocks(Uncore)); got != 1 {
		t.Errorf("uncore blocks = %d, want 1", got)
	}
	if _, err := T2Die(T2Spec{W: 9, H: 8, Cores: 3}); err == nil {
		t.Error("Cores=3: want error")
	}
}

func TestHMCLogicDieDefault(t *testing.T) {
	f, err := HMCLogicDie(DefaultHMCLogic())
	if err != nil {
		t.Fatalf("HMCLogicDie: %v", err)
	}
	if got := len(f.KindBlocks(Core)); got != 16 {
		t.Errorf("vault controllers = %d, want 16", got)
	}
	if _, err := HMCLogicDie(HMCLogicSpec{W: 8.8, H: 6.4, Vaults: 6}); err == nil {
		t.Error("Vaults=6: want error")
	}
}

func TestAllDefaultFloorplansValidate(t *testing.T) {
	build := []func() (*Floorplan, error){
		func() (*Floorplan, error) { return DDR3Die(DefaultDDR3()) },
		func() (*Floorplan, error) { return WideIODie(DefaultWideIO()) },
		func() (*Floorplan, error) { return HMCDie(DefaultHMC()) },
		func() (*Floorplan, error) { return T2Die(DefaultT2()) },
		func() (*Floorplan, error) { return HMCLogicDie(DefaultHMCLogic()) },
	}
	for _, mk := range build {
		f, err := mk()
		if err != nil {
			t.Fatal(err)
		}
		if err := f.Validate(); err != nil {
			t.Errorf("%s: %v", f.Name, err)
		}
		// Mirrored copies must also validate (F2F mask mirroring).
		if err := f.MirrorX().Validate(); err != nil {
			t.Errorf("%s mirrored: %v", f.Name, err)
		}
	}
}

func TestValidateCatchesEscapesAndOverlaps(t *testing.T) {
	f, _ := DDR3Die(DefaultDDR3())
	bad := *f
	bad.Blocks = append([]Block(nil), f.Blocks...)
	bad.Blocks[3].Rect = bad.Blocks[3].Rect.Translate(geom.Pt(f.Outline.W(), 0))
	if err := bad.Validate(); err == nil || !strings.Contains(err.Error(), "escapes") {
		t.Errorf("escape: err = %v", err)
	}

	dup := *f
	dup.Blocks = append([]Block(nil), f.Blocks...)
	for i, bl := range dup.Blocks {
		if bl.Kind == BankArray && bl.Bank == 1 {
			r0, _ := f.BankArrayRect(0)
			dup.Blocks[i].Rect = r0
		}
	}
	if err := dup.Validate(); err == nil || !strings.Contains(err.Error(), "overlaps") {
		t.Errorf("overlap: err = %v", err)
	}
}

func TestBlockKindString(t *testing.T) {
	kinds := []BlockKind{BankArray, RowDecoder, ColumnPath, Peripheral, TSVRegion, Core, Cache, Uncore}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "" || seen[s] {
			t.Errorf("kind %d: bad or duplicate string %q", k, s)
		}
		seen[s] = true
	}
	if !strings.Contains(BlockKind(200).String(), "200") {
		t.Error("unknown kind should include numeric value")
	}
}

func rectApprox(a, b geom.Rect) bool {
	const eps = 1e-9
	return math.Abs(a.X0-b.X0) < eps && math.Abs(a.Y0-b.Y0) < eps &&
		math.Abs(a.X1-b.X1) < eps && math.Abs(a.Y1-b.Y1) < eps
}
