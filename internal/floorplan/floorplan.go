// Package floorplan generates the block-level die floorplans the platform
// analyzes: DDR3, Wide I/O and HMC DRAM dies built from bank arrays,
// row/column decoders and peripheral/IO strips, plus the OpenSPARC-T2-like
// host logic die. The floorplans drive both the power-map rasterization and
// the PDN layout generation (TSV regions, pad locations).
//
// Layouts are deliberately symmetric about the die's vertical center line:
// the paper's F2F bonding flow relies on DRAM PDN symmetry so that a
// mirrored die mates with an unmirrored one without re-design (§4.2).
package floorplan

import (
	"fmt"

	"pdn3d/internal/geom"
)

// BlockKind classifies a floorplan block for power assignment and legality
// checks.
type BlockKind uint8

const (
	// BankArray is a DRAM bank's cell array.
	BankArray BlockKind = iota
	// RowDecoder is the row-decoder strip serving one bank.
	RowDecoder
	// ColumnPath is the column decoder + sense-amp datapath strip.
	ColumnPath
	// Peripheral is the center control/IO/pad strip of a DRAM die.
	Peripheral
	// TSVRegion is silicon reserved for TSVs (center or distributed styles).
	TSVRegion
	// Core is a processor core on the logic die.
	Core
	// Cache is an L2 cache bank on the logic die.
	Cache
	// Uncore is crossbar/SoC/misc logic on the logic die.
	Uncore
)

func (k BlockKind) String() string {
	switch k {
	case BankArray:
		return "bank"
	case RowDecoder:
		return "rowdec"
	case ColumnPath:
		return "colpath"
	case Peripheral:
		return "periph"
	case TSVRegion:
		return "tsv"
	case Core:
		return "core"
	case Cache:
		return "cache"
	case Uncore:
		return "uncore"
	default:
		return fmt.Sprintf("BlockKind(%d)", uint8(k))
	}
}

// Block is one placed floorplan block.
type Block struct {
	Name string
	Kind BlockKind
	Rect geom.Rect
	// Bank is the bank index this block belongs to, or -1 for shared
	// blocks (peripheral strips, TSV regions, logic blocks).
	Bank int
}

// Floorplan is a complete block-level die floorplan.
type Floorplan struct {
	Name    string
	Outline geom.Rect
	Blocks  []Block
	// NumBanks is the number of DRAM banks (0 for logic dies).
	NumBanks int
}

// BankBlocks returns all blocks belonging to bank b.
func (f *Floorplan) BankBlocks(b int) []Block {
	var out []Block
	for _, bl := range f.Blocks {
		if bl.Bank == b {
			out = append(out, bl)
		}
	}
	return out
}

// BankArrayRect returns the cell-array rectangle of bank b.
func (f *Floorplan) BankArrayRect(b int) (geom.Rect, error) {
	for _, bl := range f.Blocks {
		if bl.Bank == b && bl.Kind == BankArray {
			return bl.Rect, nil
		}
	}
	return geom.Rect{}, fmt.Errorf("floorplan %s: no bank array for bank %d", f.Name, b)
}

// SharedBlocks returns blocks not owned by a specific bank.
func (f *Floorplan) SharedBlocks() []Block {
	var out []Block
	for _, bl := range f.Blocks {
		if bl.Bank < 0 {
			out = append(out, bl)
		}
	}
	return out
}

// KindBlocks returns all blocks of the given kind.
func (f *Floorplan) KindBlocks(k BlockKind) []Block {
	var out []Block
	for _, bl := range f.Blocks {
		if bl.Kind == k {
			out = append(out, bl)
		}
	}
	return out
}

// Validate checks that every block lies inside the outline, that bank
// arrays do not overlap each other, and that bank indexing is dense.
func (f *Floorplan) Validate() error {
	if f.Outline.Empty() {
		return fmt.Errorf("floorplan %s: empty outline", f.Name)
	}
	banksSeen := map[int]bool{}
	var arrays []geom.Rect
	for _, bl := range f.Blocks {
		in := f.Outline.Intersect(bl.Rect)
		if bl.Rect.Area() > 0 && in.Area() < bl.Rect.Area()*(1-1e-9) {
			return fmt.Errorf("floorplan %s: block %s %v escapes outline %v",
				f.Name, bl.Name, bl.Rect, f.Outline)
		}
		if bl.Kind == BankArray {
			if bl.Bank < 0 {
				return fmt.Errorf("floorplan %s: bank array %s without bank index", f.Name, bl.Name)
			}
			banksSeen[bl.Bank] = true
			for _, other := range arrays {
				// Tolerate sub-epsilon slivers from float rounding at
				// touching bank edges.
				if other.Intersect(bl.Rect).Area() > 1e-9 {
					return fmt.Errorf("floorplan %s: bank array %s overlaps another array", f.Name, bl.Name)
				}
			}
			arrays = append(arrays, bl.Rect)
		}
	}
	if len(banksSeen) != f.NumBanks {
		return fmt.Errorf("floorplan %s: %d bank arrays, want %d", f.Name, len(banksSeen), f.NumBanks)
	}
	for b := 0; b < f.NumBanks; b++ {
		if !banksSeen[b] {
			return fmt.Errorf("floorplan %s: bank index %d missing", f.Name, b)
		}
	}
	return nil
}

// MirrorX returns a copy of the floorplan mirrored about the die's vertical
// center line, modelling the mask-mirroring used for F2F mates.
func (f *Floorplan) MirrorX() *Floorplan {
	axis := f.Outline.Center().X
	out := &Floorplan{
		Name:     f.Name + "/mirrored",
		Outline:  f.Outline,
		NumBanks: f.NumBanks,
		Blocks:   make([]Block, len(f.Blocks)),
	}
	for i, bl := range f.Blocks {
		bl.Rect = bl.Rect.MirrorX(axis)
		out.Blocks[i] = bl
	}
	return out
}
