package floorplan

import (
	"fmt"

	"pdn3d/internal/geom"
)

// DDR3Spec parameterizes the stacked-DDR3 DRAM die of Table 1.
type DDR3Spec struct {
	// W, H are the die dimensions in mm (paper: 6.8 x 6.7).
	W, H float64
	// Banks is the bank count (paper: 8, laid out 2 columns x 4 rows).
	Banks int
}

// DefaultDDR3 matches the Table 1 stacked-DDR3 die.
func DefaultDDR3() DDR3Spec { return DDR3Spec{W: 6.8, H: 6.7, Banks: 8} }

// DDR3Die builds the stacked-DDR3 die floorplan: two bank columns separated
// by a center column-path strip, a center horizontal peripheral/IO strip,
// and a row-decoder sliver on the inner edge of every bank.
func DDR3Die(spec DDR3Spec) (*Floorplan, error) {
	if spec.Banks%4 != 0 || spec.Banks <= 0 {
		return nil, fmt.Errorf("floorplan: DDR3 bank count %d must be a positive multiple of 4", spec.Banks)
	}
	const (
		colStripW = 0.50 // center vertical column-path strip
		periphH   = 0.70 // center horizontal peripheral/IO strip
		rowDecW   = 0.30 // per-bank row-decoder sliver
	)
	f := &Floorplan{
		Name:     "ddr3",
		Outline:  geom.R(0, 0, spec.W, spec.H),
		NumBanks: spec.Banks,
	}
	cx := spec.W / 2
	cy := spec.H / 2
	f.Blocks = append(f.Blocks,
		Block{Name: "periph", Kind: Peripheral, Bank: -1,
			Rect: geom.R(0, cy-periphH/2, spec.W, periphH)},
		Block{Name: "colpath.bot", Kind: ColumnPath, Bank: -1,
			Rect: geom.R(cx-colStripW/2, 0, colStripW, cy-periphH/2)},
		Block{Name: "colpath.top", Kind: ColumnPath, Bank: -1,
			Rect: geom.R(cx-colStripW/2, cy+periphH/2, colStripW, cy-periphH/2)},
	)

	rows := spec.Banks / 2
	halfW := (spec.W - colStripW) / 2
	arrW := halfW - rowDecW
	bankH := (spec.H - periphH) / float64(rows)
	for b := 0; b < spec.Banks; b++ {
		col := b % 2 // 0 = left, 1 = right
		row := b / 2 // 0 = bottom ... rows-1 = top
		y := float64(row) * bankH
		if float64(row) >= float64(rows)/2 {
			y += periphH // banks above the center strip shift up
		}
		var arrX, decX float64
		if col == 0 {
			arrX = 0
			decX = arrW
		} else {
			arrX = cx + colStripW/2 + rowDecW
			decX = cx + colStripW/2
		}
		f.Blocks = append(f.Blocks,
			Block{Name: fmt.Sprintf("bank%d.array", b), Kind: BankArray, Bank: b,
				Rect: geom.R(arrX, y, arrW, bankH)},
			Block{Name: fmt.Sprintf("bank%d.rowdec", b), Kind: RowDecoder, Bank: b,
				Rect: geom.R(decX, y, rowDecW, bankH)},
		)
	}
	if err := f.Validate(); err != nil {
		return nil, err
	}
	return f, nil
}

// WideIOSpec parameterizes the Wide I/O DRAM die of Table 1.
type WideIOSpec struct {
	// W, H are the die dimensions in mm (paper: 7.2 x 7.2).
	W, H float64
	// Banks is the bank count (paper: 16, four per channel quadrant).
	Banks int
}

// DefaultWideIO matches the Table 1 Wide I/O die.
func DefaultWideIO() WideIOSpec { return WideIOSpec{W: 7.2, H: 7.2, Banks: 16} }

// WideIODie builds the Wide I/O die: four channel quadrants of four banks
// each around a center cross of peripheral strips. The JEDEC-mandated
// center micro-bump/TSV field occupies the middle of the horizontal strip.
func WideIODie(spec WideIOSpec) (*Floorplan, error) {
	if spec.Banks != 16 {
		return nil, fmt.Errorf("floorplan: Wide I/O bank count %d must be 16 (4 channels x 4 banks)", spec.Banks)
	}
	const (
		periphH   = 0.80 // center horizontal strip holding the bump field
		colStripW = 0.60 // center vertical strip
		rowDecW   = 0.25
		bumpW     = 2.40 // JEDEC center bump field width
	)
	f := &Floorplan{
		Name:     "wideio",
		Outline:  geom.R(0, 0, spec.W, spec.H),
		NumBanks: spec.Banks,
	}
	cx, cy := spec.W/2, spec.H/2
	f.Blocks = append(f.Blocks,
		Block{Name: "periph", Kind: Peripheral, Bank: -1,
			Rect: geom.R(0, cy-periphH/2, spec.W, periphH)},
		Block{Name: "bumps", Kind: TSVRegion, Bank: -1,
			Rect: geom.R(cx-bumpW/2, cy-periphH/2, bumpW, periphH)},
		Block{Name: "colpath.bot", Kind: ColumnPath, Bank: -1,
			Rect: geom.R(cx-colStripW/2, 0, colStripW, cy-periphH/2)},
		Block{Name: "colpath.top", Kind: ColumnPath, Bank: -1,
			Rect: geom.R(cx-colStripW/2, cy+periphH/2, colStripW, cy-periphH/2)},
	)
	// Quadrants: channel q = 0..3 (SW, SE, NW, NE), banks 4q..4q+3 inside
	// as a 2x2 grid; the row decoder faces the center vertical strip.
	halfW := (spec.W - colStripW) / 2
	halfH := (spec.H - periphH) / 2
	bankW := (halfW - rowDecW) / 2
	bankH := halfH / 2
	for q := 0; q < 4; q++ {
		left := q%2 == 0
		bottom := q/2 == 0
		var x0, y0 float64
		if left {
			x0 = 0
		} else {
			x0 = cx + colStripW/2
		}
		if bottom {
			y0 = 0
		} else {
			y0 = cy + periphH/2
		}
		// Row decoder sliver on the quadrant's inner vertical edge.
		decX := x0 + bankW*2
		if !left {
			decX = x0
			x0 += rowDecW
		}
		f.Blocks = append(f.Blocks, Block{
			Name: fmt.Sprintf("ch%d.rowdec", q), Kind: RowDecoder, Bank: -1,
			Rect: geom.R(decX, y0, rowDecW, halfH),
		})
		for i := 0; i < 4; i++ {
			b := 4*q + i
			bx := x0 + float64(i%2)*bankW
			by := y0 + float64(i/2)*bankH
			f.Blocks = append(f.Blocks, Block{
				Name: fmt.Sprintf("bank%d.array", b), Kind: BankArray, Bank: b,
				Rect: geom.R(bx, by, bankW, bankH),
			})
		}
	}
	if err := f.Validate(); err != nil {
		return nil, err
	}
	return f, nil
}

// HMCSpec parameterizes the HMC DRAM die of Table 1.
type HMCSpec struct {
	// W, H are the die dimensions in mm (paper: 7.2 x 6.4).
	W, H float64
	// Banks is the bank count (paper: 32, two per vault per die).
	Banks int
}

// DefaultHMC matches the Table 1 HMC DRAM die.
func DefaultHMC() HMCSpec { return HMCSpec{W: 7.2, H: 6.4, Banks: 32} }

// HMCDie builds the HMC DRAM die: an 8x4 bank grid with vertical TSV
// alleys between bank columns (the "distributed TSV" style places PG TSVs
// in these alleys) and a center horizontal peripheral strip.
func HMCDie(spec HMCSpec) (*Floorplan, error) {
	if spec.Banks != 32 {
		return nil, fmt.Errorf("floorplan: HMC bank count %d must be 32", spec.Banks)
	}
	const (
		periphH = 0.60
		alleyW  = 0.20 // TSV alley between bank columns
		cols    = 8
		rows    = 4
	)
	f := &Floorplan{
		Name:     "hmc",
		Outline:  geom.R(0, 0, spec.W, spec.H),
		NumBanks: spec.Banks,
	}
	cy := spec.H / 2
	f.Blocks = append(f.Blocks, Block{
		Name: "periph", Kind: Peripheral, Bank: -1,
		Rect: geom.R(0, cy-periphH/2, spec.W, periphH),
	})
	bankW := (spec.W - float64(cols-1)*alleyW) / float64(cols)
	bankH := (spec.H - periphH) / float64(rows)
	for c := 0; c < cols; c++ {
		x := float64(c) * (bankW + alleyW)
		if c > 0 {
			f.Blocks = append(f.Blocks, Block{
				Name: fmt.Sprintf("alley%d", c), Kind: TSVRegion, Bank: -1,
				Rect: geom.R(x-alleyW, 0, alleyW, spec.H),
			})
		}
		for r := 0; r < rows; r++ {
			y := float64(r) * bankH
			if r >= rows/2 {
				y += periphH
			}
			b := c*rows + r
			f.Blocks = append(f.Blocks, Block{
				Name: fmt.Sprintf("bank%d.array", b), Kind: BankArray, Bank: b,
				Rect: geom.R(x, y, bankW, bankH),
			})
		}
	}
	if err := f.Validate(); err != nil {
		return nil, err
	}
	return f, nil
}
