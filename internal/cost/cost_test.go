package cost

import (
	"math"
	"testing"
	"testing/quick"

	"pdn3d/internal/floorplan"
	"pdn3d/internal/pdn"
	"pdn3d/internal/tech"
)

func baseSpec(t *testing.T) *pdn.Spec {
	t.Helper()
	fp, err := floorplan.DDR3Die(floorplan.DefaultDDR3())
	if err != nil {
		t.Fatal(err)
	}
	return &pdn.Spec{
		Name: "t", NumDRAM: 4, DRAM: fp, DRAMTech: tech.DRAM20(1.5),
		Usage:    map[string]float64{"M2": 0.10, "M3": 0.20},
		Bonding:  pdn.F2B,
		TSVStyle: pdn.EdgeTSV,
		TSVCount: 33,
	}
}

func TestTable8Ranges(t *testing.T) {
	// Table 8: each term's cost range at its input range endpoints.
	m := Default()
	cases := []struct {
		mut  func(*pdn.Spec)
		term func(Terms) float64
		want float64
	}{
		{func(s *pdn.Spec) { s.Usage["M2"] = 0.10 }, func(x Terms) float64 { return x.M2 }, 0.025},
		{func(s *pdn.Spec) { s.Usage["M2"] = 0.20 }, func(x Terms) float64 { return x.M2 }, 0.050},
		{func(s *pdn.Spec) { s.Usage["M3"] = 0.10 }, func(x Terms) float64 { return x.M3 }, 0.025},
		{func(s *pdn.Spec) { s.Usage["M3"] = 0.40 }, func(x Terms) float64 { return x.M3 }, 0.100},
		{func(s *pdn.Spec) { s.TSVCount = 15 }, func(x Terms) float64 { return x.TSV }, 0.0775},
		{func(s *pdn.Spec) { s.TSVCount = 480 }, func(x Terms) float64 { return x.TSV }, 0.438},
	}
	for i, c := range cases {
		s := baseSpec(t)
		c.mut(s)
		terms, err := m.Of(s)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if got := c.term(terms); math.Abs(got-c.want) > 0.005 {
			t.Errorf("case %d: term = %.4f, want ~%.4f (Table 8)", i, got, c.want)
		}
	}
}

func TestOptionAdders(t *testing.T) {
	m := Default()
	s := baseSpec(t)
	base, err := m.Total(s)
	if err != nil {
		t.Fatal(err)
	}
	wb := baseSpec(t)
	wb.WireBond = true
	tot, _ := m.Total(wb)
	if math.Abs(tot-base-0.03) > 1e-9 {
		t.Errorf("wire bond adder = %.4f, want 0.03", tot-base)
	}
	rl := baseSpec(t)
	rl.RDL = pdn.RDLInterface
	tot, _ = m.Total(rl)
	if math.Abs(tot-base-0.05) > 1e-9 {
		t.Errorf("RDL adder = %.4f, want 0.05", tot-base)
	}
	f2f := baseSpec(t)
	f2f.Bonding = pdn.F2F
	tot, _ = m.Total(f2f)
	if math.Abs(tot-base-0.015) > 1e-9 {
		t.Errorf("F2F premium = %.4f, want 0.015 (0.06 vs 0.045)", tot-base)
	}
}

func TestLocationCosts(t *testing.T) {
	m := Default()
	center := baseSpec(t)
	center.TSVStyle = pdn.CenterTSV
	edge := baseSpec(t)
	dist := baseSpec(t)
	dist.TSVStyle = pdn.DistributedTSV
	tc, _ := m.Of(center)
	te, _ := m.Of(edge)
	td, _ := m.Of(dist)
	if tc.Location != 0 {
		t.Errorf("center location cost = %g, want 0", tc.Location)
	}
	if math.Abs(te.Location-0.5*te.TSV) > 1e-12 {
		t.Errorf("edge location cost = %g, want 0.5 x TSV cost %g", te.Location, te.TSV)
	}
	if math.Abs(td.Location-td.TSV) > 1e-12 {
		t.Errorf("distributed location cost = %g, want TSV cost %g", td.Location, td.TSV)
	}
}

func TestBaselineCostNearPaper(t *testing.T) {
	// Table 9: the off-chip stacked DDR3 baseline costs 0.35.
	m := Default()
	tot, err := m.Total(baseSpec(t))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(tot-0.35) > 0.02 {
		t.Errorf("baseline cost = %.3f, want ~0.35 (Table 9)", tot)
	}
}

func TestIRCostEndpoints(t *testing.T) {
	if got := IRCost(30, 0.35, 0); math.Abs(got-0.35) > 1e-12 {
		t.Errorf("alpha=0: %g, want pure cost", got)
	}
	if got := IRCost(30, 0.35, 1); math.Abs(got-30) > 1e-12 {
		t.Errorf("alpha=1: %g, want pure IR", got)
	}
	if !math.IsInf(IRCost(0, 0.35, 0.5), 1) {
		t.Error("non-positive IR should give +Inf")
	}
}

func TestIRCostMonotone(t *testing.T) {
	f := func(irRaw, costRaw, aRaw float64) bool {
		ir := 1 + math.Mod(math.Abs(irRaw), 100)
		c := 0.1 + math.Mod(math.Abs(costRaw), 2)
		a := math.Mod(math.Abs(aRaw), 1)
		return IRCost(ir*1.1, c, a) >= IRCost(ir, c, a)-1e-12 &&
			IRCost(ir, c*1.1, a) >= IRCost(ir, c, a)-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestRDLAllCostsMore(t *testing.T) {
	m := Default()
	ifc := baseSpec(t)
	ifc.RDL = pdn.RDLInterface
	all := baseSpec(t)
	all.RDL = pdn.RDLAll
	ti, _ := m.Total(ifc)
	ta, _ := m.Total(all)
	if ta <= ti {
		t.Errorf("RDL-all %.3f should cost more than interface RDL %.3f", ta, ti)
	}
}
