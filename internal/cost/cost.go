// Package cost implements the paper's Table 8 cost-estimation model: every
// design/packaging option contributes a normalized cost term, proportional
// to its input except the TSV count, which enters through a square root.
package cost

import (
	"fmt"
	"math"

	"pdn3d/internal/pdn"
)

// Model holds the Table 8 coefficients. Costs are dimensionless.
type Model struct {
	// M2PerUsage and M3PerUsage multiply the layer VDD usage fractions
	// (10-20 % -> 0.025-0.05 and 10-40 % -> 0.025-0.10 in Table 8).
	M2PerUsage, M3PerUsage float64
	// TSVSqrt multiplies sqrt(count) (15-480 -> 0.078-0.44).
	TSVSqrt float64
	// Dedicated is the dedicated-TSV adder (0.06).
	Dedicated float64
	// BondF2B and BondF2F are the bonding-style costs (0.045 / 0.06).
	BondF2B, BondF2F float64
	// RDLCost is the per-design RDL adder (0.05).
	RDLCost float64
	// WireBond is the backside wire-bonding adder (0.03).
	WireBond float64
	// EdgeTSVFactor and DistributedTSVFactor scale the TSV cost for the
	// location styles: center is free, edge adds 0.5x the TSV cost
	// (keep-out zones on both dies), distributed adds 1.0x.
	EdgeTSVFactor, DistributedTSVFactor float64
	// Base is a fixed packaging/assembly cost floor; calibrated so the
	// Table 9 baseline configurations land at the paper's cost figures.
	Base float64
}

// Default returns the Table 8 model.
func Default() *Model {
	return &Model{
		M2PerUsage:           0.25,  // 0.10..0.20 -> 0.025..0.05
		M3PerUsage:           0.25,  // 0.10..0.40 -> 0.025..0.10
		TSVSqrt:              0.020, // sqrt(15)=3.87 -> 0.078, sqrt(480)=21.9 -> 0.44
		Dedicated:            0.06,
		BondF2B:              0.045,
		BondF2F:              0.06,
		RDLCost:              0.05,
		WireBond:             0.03,
		EdgeTSVFactor:        0.5,
		DistributedTSVFactor: 1.0,
		Base:                 0.06,
	}
}

// Terms itemizes a design's cost.
type Terms struct {
	M2, M3, TSV, Location, Dedicated, Bonding, RDL, Wire, Base float64
}

// Total sums the terms.
func (t Terms) Total() float64 {
	return t.M2 + t.M3 + t.TSV + t.Location + t.Dedicated + t.Bonding + t.RDL + t.Wire + t.Base
}

// Of itemizes the cost of a design specification.
func (m *Model) Of(s *pdn.Spec) (Terms, error) {
	var t Terms
	t.Base = m.Base
	t.M2 = m.M2PerUsage * s.Usage["M2"]
	t.M3 = m.M3PerUsage * s.Usage["M3"]
	if s.TSVCount < 0 {
		return t, fmt.Errorf("cost: negative TSV count %d", s.TSVCount)
	}
	t.TSV = m.TSVSqrt * math.Sqrt(float64(s.TSVCount))
	switch s.TSVStyle {
	case pdn.CenterTSV:
		t.Location = 0
	case pdn.EdgeTSV:
		t.Location = m.EdgeTSVFactor * t.TSV
	case pdn.DistributedTSV:
		t.Location = m.DistributedTSVFactor * t.TSV
	default:
		return t, fmt.Errorf("cost: unknown TSV style %v", s.TSVStyle)
	}
	if s.DedicatedTSV {
		t.Dedicated = m.Dedicated
	}
	if s.Bonding == pdn.F2F {
		t.Bonding = m.BondF2F
	} else {
		t.Bonding = m.BondF2B
	}
	if s.RDL != pdn.RDLNone {
		t.RDL = m.RDLCost
		if s.RDL == pdn.RDLAll {
			// One RDL per DRAM die instead of a single interface layer.
			t.RDL = m.RDLCost * float64(s.NumDRAM) / 2
		}
	}
	if s.WireBond {
		t.Wire = m.WireBond
	}
	return t, nil
}

// Total is a convenience wrapper returning just the summed cost.
func (m *Model) Total(s *pdn.Spec) (float64, error) {
	t, err := m.Of(s)
	if err != nil {
		return 0, err
	}
	return t.Total(), nil
}

// IRCost combines an IR drop (in mV, as the paper's tables report) with a
// cost via the paper's Equation (1): IR-cost = IR^alpha * Cost^(1-alpha).
// alpha = 0 optimizes cost alone, alpha = 1 IR drop alone.
func IRCost(irMV, cost, alpha float64) float64 {
	if irMV <= 0 || cost <= 0 {
		return math.Inf(1)
	}
	return math.Pow(irMV, alpha) * math.Pow(cost, 1-alpha)
}
