package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPointArithmetic(t *testing.T) {
	p, q := Pt(1, 2), Pt(3, -4)
	if got := p.Add(q); got != Pt(4, -2) {
		t.Errorf("Add = %v, want (4,-2)", got)
	}
	if got := p.Sub(q); got != Pt(-2, 6) {
		t.Errorf("Sub = %v, want (-2,6)", got)
	}
	if got := p.Scale(2); got != Pt(2, 4) {
		t.Errorf("Scale = %v, want (2,4)", got)
	}
}

func TestPointDist(t *testing.T) {
	if d := Pt(0, 0).Dist(Pt(3, 4)); math.Abs(d-5) > 1e-12 {
		t.Errorf("Dist = %g, want 5", d)
	}
	if d := Pt(1, 1).ManhattanDist(Pt(-2, 3)); math.Abs(d-5) > 1e-12 {
		t.Errorf("ManhattanDist = %g, want 5", d)
	}
}

func TestRectBasics(t *testing.T) {
	r := R(1, 2, 3, 4)
	if r.W() != 3 || r.H() != 4 {
		t.Fatalf("W,H = %g,%g want 3,4", r.W(), r.H())
	}
	if r.Area() != 12 {
		t.Errorf("Area = %g, want 12", r.Area())
	}
	if c := r.Center(); c != Pt(2.5, 4) {
		t.Errorf("Center = %v, want (2.5,4)", c)
	}
	if r.Empty() {
		t.Error("non-empty rect reported empty")
	}
	if !(Rect{}).Empty() {
		t.Error("zero rect should be empty")
	}
}

func TestRectFromCorners(t *testing.T) {
	r := RectFromCorners(Pt(3, 4), Pt(1, 2))
	if r != (Rect{1, 2, 3, 4}) {
		t.Errorf("RectFromCorners = %v", r)
	}
}

func TestRectContains(t *testing.T) {
	r := R(0, 0, 2, 2)
	cases := []struct {
		p        Point
		in, inCl bool
	}{
		{Pt(1, 1), true, true},
		{Pt(0, 0), true, true},
		{Pt(2, 2), false, true},
		{Pt(2.0001, 1), false, false},
		{Pt(-0.1, 1), false, false},
	}
	for _, c := range cases {
		if got := r.Contains(c.p); got != c.in {
			t.Errorf("Contains(%v) = %v, want %v", c.p, got, c.in)
		}
		if got := r.ContainsClosed(c.p); got != c.inCl {
			t.Errorf("ContainsClosed(%v) = %v, want %v", c.p, got, c.inCl)
		}
	}
}

func TestRectIntersect(t *testing.T) {
	a := R(0, 0, 4, 4)
	b := R(2, 2, 4, 4)
	got := a.Intersect(b)
	if got != (Rect{2, 2, 4, 4}) {
		t.Errorf("Intersect = %v", got)
	}
	if !a.Overlaps(b) {
		t.Error("Overlaps = false, want true")
	}
	c := R(10, 10, 1, 1)
	if !a.Intersect(c).Empty() {
		t.Error("disjoint intersect should be empty")
	}
	if a.Overlaps(c) {
		t.Error("disjoint Overlaps = true")
	}
	// Touching edges share no interior area.
	d := R(4, 0, 2, 4)
	if a.Overlaps(d) {
		t.Error("edge-touching rects should not overlap")
	}
}

func TestRectInsetTranslateMirror(t *testing.T) {
	r := R(1, 1, 4, 2)
	if got := r.Inset(0.5); got != (Rect{1.5, 1.5, 4.5, 2.5}) {
		t.Errorf("Inset = %v", got)
	}
	if got := r.Translate(Pt(1, -1)); got != (Rect{2, 0, 6, 2}) {
		t.Errorf("Translate = %v", got)
	}
	if got := r.MirrorX(3); got != (Rect{1, 1, 5, 3}) {
		t.Errorf("MirrorX = %v", got)
	}
	if got := r.MirrorY(2); got != (Rect{1, 1, 5, 3}) {
		t.Errorf("MirrorY = %v", got)
	}
}

func TestMirrorPreservesArea(t *testing.T) {
	f := func(x, y, w, h, axis float64) bool {
		x, y, axis = norm(x), norm(y), norm(axis)
		w, h = math.Abs(norm(w))+0.01, math.Abs(norm(h))+0.01
		r := R(x, y, w, h)
		mx := r.MirrorX(axis)
		my := r.MirrorY(axis)
		return approx(mx.Area(), r.Area()) && approx(my.Area(), r.Area()) &&
			approx(mx.MirrorX(axis).X0, r.X0) && approx(my.MirrorY(axis).Y0, r.Y0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestIntersectIsCommutativeAndContained(t *testing.T) {
	f := func(ax, ay, aw, ah, bx, by, bw, bh float64) bool {
		a := R(norm(ax), norm(ay), math.Abs(norm(aw))+0.01, math.Abs(norm(ah))+0.01)
		b := R(norm(bx), norm(by), math.Abs(norm(bw))+0.01, math.Abs(norm(bh))+0.01)
		ab, ba := a.Intersect(b), b.Intersect(a)
		if ab != ba {
			return false
		}
		if ab.Empty() {
			return true
		}
		return ab.Area() <= a.Area()+1e-9 && ab.Area() <= b.Area()+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// norm squashes arbitrary quick-generated floats into a tame range.
func norm(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return math.Mod(v, 100)
}

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-9 }
