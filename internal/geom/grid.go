package geom

import "fmt"

// Grid is a uniform 2-D grid of nodes covering a rectangular outline.
// Node (i, j) with 0 <= i < NX, 0 <= j < NY sits at
//
//	(Outline.X0 + i*Pitch, Outline.Y0 + j*Pitch)
//
// subject to clamping of the last row/column to the outline boundary when
// the outline size is not an exact multiple of the pitch. The grid is the
// spatial skeleton of every resistive mesh layer.
type Grid struct {
	Outline Rect
	Pitch   float64
	NX, NY  int
}

// NewGrid builds a grid over outline with the given node pitch. The grid
// always includes nodes on all four outline edges; interior spacing is
// uniform and no larger than pitch.
func NewGrid(outline Rect, pitch float64) (Grid, error) {
	if outline.Empty() {
		return Grid{}, fmt.Errorf("geom: grid outline %v is empty", outline)
	}
	if pitch <= 0 {
		return Grid{}, fmt.Errorf("geom: grid pitch %g must be positive", pitch)
	}
	nx := int(outline.W()/pitch+0.5) + 1
	ny := int(outline.H()/pitch+0.5) + 1
	if nx < 2 {
		nx = 2
	}
	if ny < 2 {
		ny = 2
	}
	return Grid{Outline: outline, Pitch: pitch, NX: nx, NY: ny}, nil
}

// MustGrid is NewGrid for statically-valid arguments; it panics on error.
func MustGrid(outline Rect, pitch float64) Grid {
	g, err := NewGrid(outline, pitch)
	if err != nil {
		panic(err)
	}
	return g
}

// N returns the total node count NX*NY.
func (g Grid) N() int { return g.NX * g.NY }

// StepX returns the actual horizontal node spacing.
func (g Grid) StepX() float64 { return g.Outline.W() / float64(g.NX-1) }

// StepY returns the actual vertical node spacing.
func (g Grid) StepY() float64 { return g.Outline.H() / float64(g.NY-1) }

// Index maps grid coordinates to the linear node index.
func (g Grid) Index(i, j int) int { return j*g.NX + i }

// Coords maps a linear node index back to grid coordinates.
func (g Grid) Coords(idx int) (i, j int) { return idx % g.NX, idx / g.NX }

// Pos returns the physical location of node (i, j).
func (g Grid) Pos(i, j int) Point {
	return Point{
		X: g.Outline.X0 + float64(i)*g.StepX(),
		Y: g.Outline.Y0 + float64(j)*g.StepY(),
	}
}

// Nearest returns the grid coordinates of the node closest to p, clamped to
// the grid bounds.
func (g Grid) Nearest(p Point) (i, j int) {
	i = int((p.X-g.Outline.X0)/g.StepX() + 0.5)
	j = int((p.Y-g.Outline.Y0)/g.StepY() + 0.5)
	i = clamp(i, 0, g.NX-1)
	j = clamp(j, 0, g.NY-1)
	return i, j
}

// NearestIndex returns the linear index of the node closest to p.
func (g Grid) NearestIndex(p Point) int {
	i, j := g.Nearest(p)
	return g.Index(i, j)
}

// NodesIn returns the linear indices of all grid nodes whose position lies
// inside r (closed on all edges). Nodes are returned in row-major order.
func (g Grid) NodesIn(r Rect) []int {
	i0u := ceilDiv(r.X0-g.Outline.X0, g.StepX())
	i1u := floorDiv(r.X1-g.Outline.X0, g.StepX())
	j0u := ceilDiv(r.Y0-g.Outline.Y0, g.StepY())
	j1u := floorDiv(r.Y1-g.Outline.Y0, g.StepY())
	if i1u < 0 || i0u > g.NX-1 || j1u < 0 || j0u > g.NY-1 {
		return nil // rect lies entirely outside the grid
	}
	i0 := clamp(i0u, 0, g.NX-1)
	i1 := clamp(i1u, 0, g.NX-1)
	j0 := clamp(j0u, 0, g.NY-1)
	j1 := clamp(j1u, 0, g.NY-1)
	if i1 < i0 || j1 < j0 {
		// The rect is thinner than a grid cell: fall back to the node
		// nearest the rect center so small blocks still receive load.
		if r.Empty() || !g.Outline.Overlaps(r) {
			return nil
		}
		return []int{g.NearestIndex(r.Center())}
	}
	out := make([]int, 0, (i1-i0+1)*(j1-j0+1))
	for j := j0; j <= j1; j++ {
		for i := i0; i <= i1; i++ {
			out = append(out, g.Index(i, j))
		}
	}
	return out
}

// EdgeNodes returns the indices of nodes lying on the grid boundary.
func (g Grid) EdgeNodes() []int {
	out := make([]int, 0, 2*g.NX+2*g.NY)
	for i := 0; i < g.NX; i++ {
		out = append(out, g.Index(i, 0), g.Index(i, g.NY-1))
	}
	for j := 1; j < g.NY-1; j++ {
		out = append(out, g.Index(0, j), g.Index(g.NX-1, j))
	}
	return out
}

const gridEps = 1e-9

func ceilDiv(x, step float64) int {
	v := x / step
	n := int(v)
	if v-float64(n) > gridEps {
		n++
	}
	return n
}

func floorDiv(x, step float64) int {
	v := x / step
	n := int(v)
	if float64(n)-v > gridEps {
		n--
	}
	return n
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
