// Package geom provides the 2-D geometry primitives used by the floorplan,
// PDN layout, and resistive-mesh builders: points, rectangles, and uniform
// grids with rasterization helpers.
//
// All coordinates are in millimetres (see internal/units). The origin of a
// die is its lower-left corner; x grows to the right, y grows upward.
package geom

import (
	"fmt"
	"math"
)

// Point is a 2-D location in mm.
type Point struct {
	X, Y float64
}

// Pt is shorthand for Point{x, y}.
func Pt(x, y float64) Point { return Point{x, y} }

// Add returns p + q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns p - q.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Scale returns p scaled by s.
func (p Point) Scale(s float64) Point { return Point{p.X * s, p.Y * s} }

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 {
	return math.Hypot(p.X-q.X, p.Y-q.Y)
}

// ManhattanDist returns the L1 distance between p and q.
func (p Point) ManhattanDist(q Point) float64 {
	return math.Abs(p.X-q.X) + math.Abs(p.Y-q.Y)
}

func (p Point) String() string { return fmt.Sprintf("(%.3f,%.3f)", p.X, p.Y) }

// Rect is an axis-aligned rectangle [X0,X1) x [Y0,Y1) in mm.
type Rect struct {
	X0, Y0, X1, Y1 float64
}

// R builds a rectangle from its lower-left corner and size.
func R(x, y, w, h float64) Rect { return Rect{x, y, x + w, y + h} }

// RectFromCorners builds a rectangle from two opposite corners in any order.
func RectFromCorners(a, b Point) Rect {
	return Rect{
		X0: math.Min(a.X, b.X), Y0: math.Min(a.Y, b.Y),
		X1: math.Max(a.X, b.X), Y1: math.Max(a.Y, b.Y),
	}
}

// W returns the rectangle width.
func (r Rect) W() float64 { return r.X1 - r.X0 }

// H returns the rectangle height.
func (r Rect) H() float64 { return r.Y1 - r.Y0 }

// Area returns the rectangle area in mm².
func (r Rect) Area() float64 { return r.W() * r.H() }

// Center returns the rectangle's center point.
func (r Rect) Center() Point { return Point{(r.X0 + r.X1) / 2, (r.Y0 + r.Y1) / 2} }

// Empty reports whether the rectangle has non-positive width or height.
func (r Rect) Empty() bool { return r.X1 <= r.X0 || r.Y1 <= r.Y0 }

// Contains reports whether p lies inside r (half-open on the high edges).
func (r Rect) Contains(p Point) bool {
	return p.X >= r.X0 && p.X < r.X1 && p.Y >= r.Y0 && p.Y < r.Y1
}

// ContainsClosed reports whether p lies inside r including all edges.
func (r Rect) ContainsClosed(p Point) bool {
	return p.X >= r.X0 && p.X <= r.X1 && p.Y >= r.Y0 && p.Y <= r.Y1
}

// Intersect returns the intersection of r and s (possibly empty).
func (r Rect) Intersect(s Rect) Rect {
	out := Rect{
		X0: math.Max(r.X0, s.X0), Y0: math.Max(r.Y0, s.Y0),
		X1: math.Min(r.X1, s.X1), Y1: math.Min(r.Y1, s.Y1),
	}
	if out.Empty() {
		return Rect{}
	}
	return out
}

// Overlaps reports whether r and s share any interior area.
func (r Rect) Overlaps(s Rect) bool { return !r.Intersect(s).Empty() }

// Inset shrinks the rectangle by d on every side. A negative d grows it.
func (r Rect) Inset(d float64) Rect {
	return Rect{r.X0 + d, r.Y0 + d, r.X1 - d, r.Y1 - d}
}

// Translate shifts the rectangle by the vector p.
func (r Rect) Translate(p Point) Rect {
	return Rect{r.X0 + p.X, r.Y0 + p.Y, r.X1 + p.X, r.Y1 + p.Y}
}

// MirrorX mirrors the rectangle about the vertical line x = axis.
func (r Rect) MirrorX(axis float64) Rect {
	return Rect{2*axis - r.X1, r.Y0, 2*axis - r.X0, r.Y1}
}

// MirrorY mirrors the rectangle about the horizontal line y = axis.
func (r Rect) MirrorY(axis float64) Rect {
	return Rect{r.X0, 2*axis - r.Y1, r.X1, 2*axis - r.Y0}
}

func (r Rect) String() string {
	return fmt.Sprintf("[%.3f,%.3f %.3fx%.3f]", r.X0, r.Y0, r.W(), r.H())
}
