package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewGridErrors(t *testing.T) {
	if _, err := NewGrid(Rect{}, 0.1); err == nil {
		t.Error("empty outline: want error")
	}
	if _, err := NewGrid(R(0, 0, 1, 1), 0); err == nil {
		t.Error("zero pitch: want error")
	}
	if _, err := NewGrid(R(0, 0, 1, 1), -1); err == nil {
		t.Error("negative pitch: want error")
	}
}

func TestGridDimensions(t *testing.T) {
	g := MustGrid(R(0, 0, 1.0, 0.5), 0.1)
	if g.NX != 11 || g.NY != 6 {
		t.Fatalf("NX,NY = %d,%d want 11,6", g.NX, g.NY)
	}
	if g.N() != 66 {
		t.Errorf("N = %d want 66", g.N())
	}
	if !approx(g.StepX(), 0.1) || !approx(g.StepY(), 0.1) {
		t.Errorf("steps = %g,%g want 0.1", g.StepX(), g.StepY())
	}
}

func TestGridNonMultiplePitchClamps(t *testing.T) {
	// 1.0 mm outline with 0.3 mm pitch: 4 nodes, spacing 1/3.
	g := MustGrid(R(0, 0, 1, 1), 0.3)
	if g.NX != 4 {
		t.Fatalf("NX = %d want 4", g.NX)
	}
	last := g.Pos(g.NX-1, 0)
	if !approx(last.X, 1.0) {
		t.Errorf("last node x = %g, want exactly outline edge 1.0", last.X)
	}
}

func TestGridMinimumTwoNodes(t *testing.T) {
	g := MustGrid(R(0, 0, 0.01, 0.01), 1.0)
	if g.NX < 2 || g.NY < 2 {
		t.Errorf("NX,NY = %d,%d; want >= 2 each", g.NX, g.NY)
	}
}

func TestGridIndexRoundTrip(t *testing.T) {
	g := MustGrid(R(0, 0, 1, 1), 0.25)
	for j := 0; j < g.NY; j++ {
		for i := 0; i < g.NX; i++ {
			ii, jj := g.Coords(g.Index(i, j))
			if ii != i || jj != j {
				t.Fatalf("round trip (%d,%d) -> (%d,%d)", i, j, ii, jj)
			}
		}
	}
}

func TestGridNearest(t *testing.T) {
	g := MustGrid(R(0, 0, 1, 1), 0.5) // 3x3 nodes
	cases := []struct {
		p    Point
		i, j int
	}{
		{Pt(0, 0), 0, 0},
		{Pt(0.24, 0.24), 0, 0},
		{Pt(0.26, 0.26), 1, 1},
		{Pt(1, 1), 2, 2},
		{Pt(5, 5), 2, 2},   // clamped
		{Pt(-5, -5), 0, 0}, // clamped
		{Pt(0.5, 0.9), 1, 2},
	}
	for _, c := range cases {
		i, j := g.Nearest(c.p)
		if i != c.i || j != c.j {
			t.Errorf("Nearest(%v) = (%d,%d), want (%d,%d)", c.p, i, j, c.i, c.j)
		}
	}
}

func TestGridNodesIn(t *testing.T) {
	g := MustGrid(R(0, 0, 1, 1), 0.5) // 3x3 nodes at 0, .5, 1
	all := g.NodesIn(R(0, 0, 1, 1))
	if len(all) != 9 {
		t.Fatalf("full-rect NodesIn = %d nodes, want 9", len(all))
	}
	corner := g.NodesIn(Rect{0.4, 0.4, 1.1, 1.1})
	if len(corner) != 4 {
		t.Fatalf("corner NodesIn = %d nodes, want 4", len(corner))
	}
	// A sliver narrower than a cell still yields the nearest node.
	sliver := g.NodesIn(Rect{0.6, 0.6, 0.65, 0.65})
	if len(sliver) != 1 {
		t.Fatalf("sliver NodesIn = %d nodes, want 1", len(sliver))
	}
	if sliver[0] != g.Index(1, 1) {
		t.Errorf("sliver node = %d, want center node %d", sliver[0], g.Index(1, 1))
	}
	if got := g.NodesIn(Rect{5, 5, 6, 6}); got != nil {
		t.Errorf("outside NodesIn = %v, want nil", got)
	}
}

func TestGridEdgeNodes(t *testing.T) {
	g := MustGrid(R(0, 0, 1, 1), 0.25) // 5x5
	edges := g.EdgeNodes()
	if len(edges) != 16 {
		t.Fatalf("edge count = %d, want 16", len(edges))
	}
	seen := map[int]bool{}
	for _, idx := range edges {
		if seen[idx] {
			t.Fatalf("duplicate edge node %d", idx)
		}
		seen[idx] = true
		i, j := g.Coords(idx)
		if i != 0 && i != g.NX-1 && j != 0 && j != g.NY-1 {
			t.Errorf("node (%d,%d) is not on the boundary", i, j)
		}
	}
}

func TestGridNearestInverseOfPos(t *testing.T) {
	g := MustGrid(R(-1, 2, 3.3, 2.2), 0.2)
	f := func(iRaw, jRaw uint16) bool {
		i := int(iRaw) % g.NX
		j := int(jRaw) % g.NY
		gi, gj := g.Nearest(g.Pos(i, j))
		return gi == i && gj == j
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestGridNodesInMatchesBruteForce(t *testing.T) {
	g := MustGrid(R(0, 0, 2, 1.4), 0.2)
	f := func(x0, y0, w, h float64) bool {
		r := R(math.Mod(math.Abs(x0), 2), math.Mod(math.Abs(y0), 1.4),
			math.Mod(math.Abs(w), 2)+0.05, math.Mod(math.Abs(h), 1.4)+0.05)
		got := g.NodesIn(r)
		want := map[int]bool{}
		for j := 0; j < g.NY; j++ {
			for i := 0; i < g.NX; i++ {
				if r.ContainsClosed(g.Pos(i, j)) {
					want[g.Index(i, j)] = true
				}
			}
		}
		if len(want) == 0 {
			// Sliver fallback: accept a single nearest node.
			return len(got) <= 1
		}
		if len(got) != len(want) {
			return false
		}
		for _, idx := range got {
			if !want[idx] {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 300}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
