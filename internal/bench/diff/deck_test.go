package diff

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"pdn3d/internal/solve"
	"pdn3d/internal/spice"
)

// goodDeck is a well-formed 2×3 resistor grid with two supply ties and
// two loads, in the WriteNetlist dialect.
const goodDeck = `* imported sram pg grid
VDD vdd 0 DC 1.1
R0 n0 n1 2.5
R1 n1 n2 2.5
R2 n3 n4 2.5
R3 n4 n5 2.5
R4 n0 n3 1.25
R5 n1 n4 1.25
R6 n2 n5 1.25
RT0 vdd n0 0.5
RT1 vdd n5 0.5
I0 n2 0 DC 0.004
I1 n4 0 DC 0.002
.op
.end
`

// floatingDeck references node n5 from a load card but never wires it
// (or n3, n4) into the resistor network, so the rebuilt system has empty
// rows — a degenerate diagonal every iterative setup must reject with a
// typed error rather than dividing by zero.
const floatingDeck = `* deck with floating nodes
VDD vdd 0 DC 1.0
R0 n0 n1 1
R1 n1 n2 1
RT0 vdd n0 0.5
I0 n5 0 DC 0.001
.end
`

const malformedDeck = `* truncated resistor card
VDD vdd 0 DC 1.0
R0 n0 n1
.end
`

func writeDeck(t *testing.T, dir, name, body string) string {
	t.Helper()
	p := filepath.Join(dir, name)
	if err := os.WriteFile(p, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestCheckDeckGood(t *testing.T) {
	p := writeDeck(t, t.TempDir(), "good.sp", goodDeck)
	rep, err := CheckDeck(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Title != "imported sram pg grid" || rep.Nodes != 6 {
		t.Fatalf("report header = %q / %d nodes", rep.Title, rep.Nodes)
	}
	if rep.Oracle != solve.MethodCholesky {
		t.Fatalf("oracle = %q, want dense cholesky for a 6-node deck", rep.Oracle)
	}
	if want := len(solve.Methods()); len(rep.Runs) != want {
		t.Fatalf("got %d runs, want one per registered method (%d)", len(rep.Runs), want)
	}
	if rep.MaxRelErr > OracleRelTol {
		t.Fatalf("max rel err %g exceeds oracle bound %g", rep.MaxRelErr, OracleRelTol)
	}
	seen := map[string]Run{}
	for _, r := range rep.Runs {
		seen[r.Method] = r
		if r.Fallback {
			t.Errorf("%s: unexpected preconditioner fallback on a healthy deck", r.Method)
		}
	}
	if r := seen[solve.MethodCGAMG]; r.Precond != "amg" {
		t.Fatalf("cg-amg run reported precond %q", r.Precond)
	}
}

func TestCheckDeckParseError(t *testing.T) {
	p := writeDeck(t, t.TempDir(), "bad.sp", malformedDeck)
	_, err := CheckDeck(p, Options{})
	var fe *FileError
	if !errors.As(err, &fe) {
		t.Fatalf("error %v is not a *FileError", err)
	}
	if fe.Stage != StageParse || fe.File != p {
		t.Fatalf("FileError = %+v, want parse stage for %s", fe, p)
	}
	var pe *spice.ParseError
	if !errors.As(err, &pe) || pe.Line != 3 {
		t.Fatalf("cause %v does not unwrap to the line-3 ParseError", err)
	}
}

func TestCheckDeckFloatingNodeSurfacesTypedError(t *testing.T) {
	p := writeDeck(t, t.TempDir(), "floating.sp", floatingDeck)
	// Force the cross-check oracle (cg-ic0) so the failure exercises the
	// iterative setup path: IC(0) breaks down on the empty rows, the
	// Jacobi fallback then rejects the zero diagonal with the typed error.
	_, err := CheckDeck(p, Options{OracleMaxN: 1})
	var fe *FileError
	if !errors.As(err, &fe) {
		t.Fatalf("error %v is not a *FileError", err)
	}
	if fe.Stage != StageSolve {
		t.Fatalf("stage = %q, want solve", fe.Stage)
	}
	var de *solve.DegenerateDiagonalError
	if !errors.As(err, &de) {
		t.Fatalf("cause %v does not unwrap to a DegenerateDiagonalError", err)
	}
	if de.Node != 3 || de.Value != 0 {
		t.Fatalf("degenerate node = %d (value %g), want first empty row 3", de.Node, de.Value)
	}
}

func TestCheckDecksPartitionsOutcomes(t *testing.T) {
	dir := t.TempDir()
	writeDeck(t, dir, "a_good.sp", goodDeck)
	writeDeck(t, dir, "b_bad.sp", malformedDeck)
	reps, fails, err := CheckDecks(filepath.Join(dir, "*.sp"), Options{
		Methods: []string{solve.MethodCholesky, solve.MethodCGAMG}})
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != 1 || len(fails) != 1 {
		t.Fatalf("got %d reports / %d failures, want 1 / 1", len(reps), len(fails))
	}
	if filepath.Base(reps[0].File) != "a_good.sp" {
		t.Fatalf("report for %s", reps[0].File)
	}
	if filepath.Base(fails[0].File) != "b_bad.sp" || fails[0].Stage != StageParse {
		t.Fatalf("failure = %+v", fails[0])
	}
	if fails[0].Msg == "" {
		t.Fatal("FileError.Msg not mirrored for the JSON report")
	}

	if _, _, err := CheckDecks(filepath.Join(dir, "*.cir"), Options{}); err == nil {
		t.Fatal("empty glob did not error")
	}
}
