package diff_test

import (
	"math"
	"testing"

	"pdn3d/internal/bench/diff"
	"pdn3d/internal/bench/gen"
	"pdn3d/internal/obs"
	"pdn3d/internal/solve"
)

// condOracleRelTol is the documented accuracy band of the CG-Lanczos
// condition estimate: within 10% of the dense eigenvalue oracle on
// oracle-sized meshes. Lanczos Ritz values approach the extreme
// eigenvalues from inside the spectrum, so the estimate reads slightly
// low; 10% bounds that bias at solver tolerance (DESIGN.md §5i).
const condOracleRelTol = 0.10

// TestCondEstimateMatchesDenseOracle pins the flight recorder's
// CG-Lanczos condition estimate against DenseCond on the smallest corpus
// mesh: Jacobi-preconditioned CG sees the Jacobi-scaled operator, and
// its recorded estimate must land within condOracleRelTol of the
// operator's true κ₂.
func TestCondEstimateMatchesDenseOracle(t *testing.T) {
	specs, err := gen.Corpus()
	if err != nil {
		t.Fatal(err)
	}
	var spec *gen.Spec
	for _, s := range specs {
		if s.Name == "grid0-ddr3" {
			spec = s
			break
		}
	}
	if spec == nil {
		t.Fatal("corpus is missing grid0-ddr3")
	}
	inst, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	m, rhs, err := diff.Assemble(inst)
	if err != nil {
		t.Fatal(err)
	}
	if m.N() > diff.DefaultOracleMaxN {
		t.Fatalf("grid0-ddr3 has %d nodes, above the %d oracle cap", m.N(), diff.DefaultOracleMaxN)
	}

	exact, err := diff.DenseCond(m.Matrix)
	if err != nil {
		t.Fatal(err)
	}
	if exact <= 1 {
		t.Fatalf("dense κ = %g, want > 1 for a non-trivial mesh", exact)
	}

	buf := obs.NewSolveBuffer(1)
	rec := buf.StartSolveRecord()
	_, _, err = m.Solve(rhs, solve.Options{
		Method:    solve.MethodCGJacobi,
		CGOptions: solve.CGOptions{Tol: diff.DefaultTol, Rec: rec},
	})
	rec.Commit()
	if err != nil {
		t.Fatal(err)
	}
	recent, _, _ := buf.Snapshot()
	if len(recent) != 1 {
		t.Fatalf("%d records committed, want 1", len(recent))
	}
	est := recent[0].CondEst
	if est <= 0 {
		t.Fatalf("recorded cond_est = %g, want > 0", est)
	}
	if rel := math.Abs(est-exact) / exact; rel > condOracleRelTol {
		t.Errorf("CG-Lanczos κ = %.6g vs dense oracle %.6g: rel err %.3f above %.2f",
			est, exact, rel, condOracleRelTol)
	}
}

// TestCheckRecordsConvergenceColumns: the harness report's runs must
// carry the flight-recorder columns — a condition estimate and a
// converged termination for every iterative run, and a termination
// without an estimate for the direct oracle method.
func TestCheckRecordsConvergenceColumns(t *testing.T) {
	rep, err := diff.Check(&gen.Spec{Name: "cols", Base: "ddr3-off", Pitch: 1.0, Seed: 1},
		diff.Options{SkipRoundTrip: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rep.Runs {
		if r.Termination != obs.TermConverged {
			t.Errorf("%s (warm=%v): termination = %q, want %q", r.Method, r.Warm, r.Termination, obs.TermConverged)
		}
		if r.Method == solve.MethodCholesky {
			if r.CondEst != 0 {
				t.Errorf("cholesky run carries cond_est %g, want 0 (no CG trajectory)", r.CondEst)
			}
			continue
		}
		// Warm runs may converge in so few iterations that the Lanczos
		// tridiagonal is degenerate; cold runs must always estimate.
		if !r.Warm && r.CondEst <= 1 {
			t.Errorf("%s cold run cond_est = %g, want > 1", r.Method, r.CondEst)
		}
	}
}
