package diff

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"pdn3d/internal/solve"
	"pdn3d/internal/spice"
)

// This file extends the differential harness to externally-supplied SPICE
// decks (SRAM/DRAM power-grid netlists in the WriteNetlist dialect):
// every deck on disk is parsed through internal/spice, rebuilt into its
// nodal system, and battered against the same oracle/cross-check regime
// as the synthetic corpus. Import failures are typed per file so a batch
// run reports exactly which deck broke and at which stage.

// Deck-import stages, in pipeline order.
const (
	StageOpen   = "open"   // reading the file
	StageParse  = "parse"  // spice.Parse
	StageSystem = "system" // Netlist.System (nodal assembly)
	StageSolve  = "solve"  // solver setup or solve (degenerate systems land here)
)

// FileError is a typed per-file import failure: which deck, which stage
// of the import pipeline, and the underlying cause (unwrappable, so
// errors.As reaches spice.ParseError or solve.DegenerateDiagonalError).
type FileError struct {
	File  string `json:"file"`
	Stage string `json:"stage"`
	Err   error  `json:"-"`
	// Msg mirrors Err for the JSON report.
	Msg string `json:"error"`
}

func (e *FileError) Error() string {
	return fmt.Sprintf("diff: deck %s: %s: %v", e.File, e.Stage, e.Err)
}

func (e *FileError) Unwrap() error { return e.Err }

func fileErr(file, stage string, err error) *FileError {
	return &FileError{File: file, Stage: stage, Err: err, Msg: err.Error()}
}

// DeckReport is the differential outcome for one imported deck. It
// mirrors MeshReport minus the legs that need a live rmesh model (restamp
// replay, warm seeds from a perturbed sibling): an external deck is a
// standalone system, so every run is cold.
type DeckReport struct {
	File   string `json:"file"`
	Title  string `json:"title,omitempty"`
	Nodes  int    `json:"nodes"`
	NNZ    int    `json:"nnz"`
	Oracle string `json:"oracle"`
	Runs   []Run  `json:"runs"`
	// MaxRelErr is the worst RelErr over Runs.
	MaxRelErr float64 `json:"max_rel_err"`
}

// CheckDeck imports one SPICE deck from disk and runs every requested
// solver against the oracle (dense Cholesky when the system is small
// enough, cross-check against the default method otherwise). Any failure
// is returned as a *FileError naming the pipeline stage.
func CheckDeck(path string, opt Options) (*DeckReport, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fileErr(path, StageOpen, err)
	}
	defer f.Close()
	nl, err := spice.Parse(f)
	if err != nil {
		return nil, fileErr(path, StageParse, err)
	}
	a, rhs, err := nl.System()
	if err != nil {
		return nil, fileErr(path, StageSystem, err)
	}
	rep := &DeckReport{File: path, Title: nl.Title, Nodes: a.N, NNZ: a.NNZ()}

	tol := opt.tol()
	cg := solve.CGOptions{Tol: tol}
	dense := a.N <= opt.oracleMaxN()
	var ref []float64
	refMethod := solve.MethodCholesky
	if dense {
		rep.Oracle = solve.MethodCholesky
	} else {
		refMethod = solve.DefaultMethod
		rep.Oracle = "cross:" + solve.DefaultMethod
	}
	s, err := solve.New(a, solve.Options{Method: refMethod, Workers: opt.Workers})
	if err != nil {
		return nil, fileErr(path, StageSolve, err)
	}
	ref, _, err = s.Solve(rhs, cg)
	if err != nil {
		return nil, fileErr(path, StageSolve, err)
	}

	for _, method := range opt.methods() {
		if method == solve.MethodCholesky && !dense {
			continue
		}
		s, err := solve.New(a, solve.Options{Method: method, Workers: opt.Workers})
		if err != nil {
			return nil, fileErr(path, StageSolve, fmt.Errorf("%s: %w", method, err))
		}
		x, stats, err := s.Solve(rhs, cg)
		if err != nil {
			return nil, fileErr(path, StageSolve, fmt.Errorf("%s: %w", method, err))
		}
		run := Run{
			Method:     method,
			Iterations: stats.Iterations,
			Residual:   stats.Residual,
			Precond:    stats.Precond,
			Fallback:   stats.Fallback,
			RelErr:     RelErr(x, ref),
		}
		rep.Runs = append(rep.Runs, run)
		if run.RelErr > rep.MaxRelErr {
			rep.MaxRelErr = run.RelErr
		}
	}
	return rep, nil
}

// CheckDecks expands a glob, imports every matching deck, and partitions
// the outcomes: reports for decks that pass, typed errors for decks that
// fail at any stage. The returned error is non-nil only when the glob
// itself is invalid or matches nothing — per-deck failures are data, not
// an abort, so one corrupt deck cannot hide the report for the rest.
func CheckDecks(pattern string, opt Options) ([]*DeckReport, []*FileError, error) {
	paths, err := filepath.Glob(pattern)
	if err != nil {
		return nil, nil, fmt.Errorf("diff: bad import glob %q: %w", pattern, err)
	}
	if len(paths) == 0 {
		return nil, nil, fmt.Errorf("diff: import glob %q matches no files", pattern)
	}
	sort.Strings(paths)
	var reps []*DeckReport
	var fails []*FileError
	for _, p := range paths {
		rep, err := CheckDeck(p, opt)
		if err != nil {
			var fe *FileError
			if !errors.As(err, &fe) {
				fe = fileErr(p, StageOpen, err)
			}
			fails = append(fails, fe)
			continue
		}
		reps = append(reps, rep)
	}
	return reps, fails, nil
}
