package diff_test

import (
	"testing"

	"pdn3d/internal/bench/diff"
	"pdn3d/internal/bench/gen"
	"pdn3d/internal/solve"
)

// TestCorpusDifferential is the acceptance gate of the benchmark corpus:
// every committed golden mesh is small enough for the dense Cholesky
// oracle, every registered solver (cold and warm) must agree with the
// oracle within OracleRelTol, restamping must be bit-exact, and the SPICE
// netlist round trip must reproduce the exact sparsity pattern with
// voltages inside RoundTripVoltTol.
func TestCorpusDifferential(t *testing.T) {
	specs, err := gen.Corpus()
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range specs {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			t.Parallel()
			rep, err := diff.Check(s, diff.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if rep.Oracle != solve.MethodCholesky {
				t.Errorf("oracle is %q — corpus mesh has %d nodes, above the dense cap; shrink the entry",
					rep.Oracle, rep.Nodes)
			}
			if rep.MaxRelErr > diff.OracleRelTol {
				t.Errorf("solver disagreement %.3e above the %.0e oracle bound", rep.MaxRelErr, diff.OracleRelTol)
			}
			if !rep.RestampExact {
				t.Error("restamped matrix not bit-identical to full build")
			}
			// Every registered method ran cold and warm.
			if want := 2 * len(solve.Methods()); len(rep.Runs) != want {
				t.Errorf("%d solver runs, want %d (cold+warm per method)", len(rep.Runs), want)
			}
			for _, r := range rep.Runs {
				if r.RelErr > diff.OracleRelTol {
					t.Errorf("%s (warm=%v): rel err %.3e above %.0e", r.Method, r.Warm, r.RelErr, diff.OracleRelTol)
				}
			}
			rt := rep.RoundTrip
			if rt == nil {
				t.Fatal("round-trip leg missing")
			}
			if !rt.StructEqual {
				t.Error("re-parsed netlist has a different sparsity pattern")
			}
			if rt.MaxValRelDiff > diff.RoundTripVoltTol {
				t.Errorf("matrix value drift %.3e above %.0e", rt.MaxValRelDiff, diff.RoundTripVoltTol)
			}
			if rt.MaxRHSRelDiff > diff.RoundTripVoltTol {
				t.Errorf("rhs drift %.3e above %.0e", rt.MaxRHSRelDiff, diff.RoundTripVoltTol)
			}
			if rt.VoltRelErr > diff.RoundTripVoltTol {
				t.Errorf("round-trip voltage error %.3e above %.0e", rt.VoltRelErr, diff.RoundTripVoltTol)
			}
		})
	}
}

// TestSizedSweep cross-checks the iterative solvers on the on-the-fly
// meshes above the dense-oracle regime. Long mode only: the largest mesh
// tops 12k nodes.
func TestSizedSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("sized sweep runs in long mode only")
	}
	for _, base := range []string{"ddr3-off", "hmc"} {
		for level := 0; level < gen.SizedLevels(); level++ {
			s, err := gen.Sized(base, level)
			if err != nil {
				t.Fatal(err)
			}
			t.Run(s.Name, func(t *testing.T) {
				t.Parallel()
				rep, err := diff.Check(s, diff.Options{})
				if err != nil {
					t.Fatal(err)
				}
				if rep.Nodes <= diff.DefaultOracleMaxN {
					t.Errorf("sized mesh has only %d nodes — not exercising the cross-check regime", rep.Nodes)
				}
				// Cross-check bound: iterative solvers against each other at
				// DefaultTol. Same tolerance story as the oracle bound.
				if rep.MaxRelErr > diff.OracleRelTol {
					t.Errorf("cross-check disagreement %.3e above %.0e", rep.MaxRelErr, diff.OracleRelTol)
				}
				if !rep.RestampExact {
					t.Error("restamped matrix not bit-identical to full build")
				}
				if rep.RoundTrip == nil || !rep.RoundTrip.StructEqual {
					t.Error("netlist round trip lost the sparsity pattern")
				}
			})
		}
	}
}

// TestRelErr pins the harness's error metric.
func TestRelErr(t *testing.T) {
	cases := []struct {
		x, ref []float64
		want   float64
	}{
		{[]float64{1, 2}, []float64{1, 2}, 0},
		{[]float64{1.5, 2}, []float64{1, 2}, 0.25},
		{[]float64{0, 0}, []float64{0, 0}, 0},
	}
	for _, c := range cases {
		if got := diff.RelErr(c.x, c.ref); got != c.want {
			t.Errorf("RelErr(%v, %v) = %g, want %g", c.x, c.ref, got, c.want)
		}
	}
	if got := diff.RelErr([]float64{1}, []float64{0}); got <= 1e300 {
		t.Errorf("nonzero vs zero reference = %g, want +Inf", got)
	}
}

// FuzzDifferentialSolve drives the full differential suite over the
// generator's knob space: any reachable small design must keep every
// solver within the oracle bound and restamp bit-exactly. Inputs that
// don't expand to a valid design are skipped — the fuzzer's job is to
// find a mesh the solvers disagree on, not to exercise validation.
func FuzzDifferentialSolve(f *testing.F) {
	// Seeds mirror corpus families: base grid, TSV styles, failures, rails.
	f.Add(uint8(0), uint8(0), uint8(0), uint8(0), uint16(100), uint16(0), uint64(1))
	f.Add(uint8(3), uint8(1), uint8(0), uint8(0), uint16(100), uint16(64), uint64(4))
	f.Add(uint8(3), uint8(3), uint8(0), uint8(0), uint16(100), uint16(384), uint64(6))
	f.Add(uint8(0), uint8(0), uint8(0), uint8(33), uint16(100), uint16(0), uint64(8))
	f.Add(uint8(1), uint8(0), uint8(2), uint8(0), uint16(100), uint16(0), uint64(11))
	f.Add(uint8(2), uint8(0), uint8(1), uint8(10), uint16(90), uint16(128), uint64(42))
	bases := []string{"ddr3-off", "ddr3-on", "wideio", "hmc"}
	styles := []string{"", "C", "E", "D"}
	f.Fuzz(func(t *testing.T, base, style, rails, failCenti uint8, pitchCenti, count uint16, seed uint64) {
		s := &gen.Spec{
			Name: "fuzz",
			Base: bases[int(base)%len(bases)],
			// Pitch in [0.9, 2.17]mm keeps every mesh inside the dense-oracle
			// regime so the fuzz iteration stays fast.
			Pitch:    0.9 + float64(pitchCenti%128)/100,
			TSVStyle: styles[int(style)%len(styles)],
			TSVCount: int(count) % 512,
			FailRate: float64(failCenti%90) / 100,
			Rails:    int(rails) % 3,
			Seed:     seed,
		}
		rep, err := diff.Check(s, diff.Options{SkipRoundTrip: true})
		if err != nil {
			if _, berr := s.Build(); berr != nil {
				t.Skip() // invalid knob combination, not a solver bug
			}
			t.Fatal(err)
		}
		// Looser than the corpus's OracleRelTol: forward error grows with
		// the condition number, and the fuzzer deliberately reaches badly
		// conditioned designs (e.g. heavy TSV failure on center placement)
		// that the curated corpus excludes. 100× headroom still catches any
		// genuine solver defect. See DESIGN.md §5g.
		const fuzzRelTol = 100 * diff.OracleRelTol
		if rep.MaxRelErr > fuzzRelTol {
			t.Errorf("solver disagreement %.3e above %.0e on %+v", rep.MaxRelErr, fuzzRelTol, *s)
		}
		if !rep.RestampExact {
			t.Errorf("restamp not bit-exact on %+v", *s)
		}
	})
}
