// Package diff is the differential solver harness: it expands corpus
// entries (internal/bench/gen) into meshes and batters every solver in
// the solve registry against a shared oracle. On small systems the oracle
// is the dense Cholesky factorization; on systems too large to factor
// densely the solvers cross-check each other against the default method.
// Each mesh additionally re-proves two standing bit-exactness claims —
// a restamped matrix is identical to a full build, and warm-started
// solves agree with cold ones — and round-trips through the SPICE
// netlist interchange (internal/spice), so a solver regression, a stamp
// regression, or an interchange regression all surface as one failing
// differential report.
package diff

import (
	"bytes"
	"fmt"
	"math"

	"pdn3d/internal/bench/gen"
	"pdn3d/internal/irdrop"
	"pdn3d/internal/memstate"
	"pdn3d/internal/obs"
	"pdn3d/internal/powermap"
	"pdn3d/internal/rmesh"
	"pdn3d/internal/solve"
	"pdn3d/internal/sparse"
	"pdn3d/internal/spice"
)

// DefaultOracleMaxN is the largest system the dense Cholesky oracle
// factorizes; larger meshes fall back to solver cross-checking.
const DefaultOracleMaxN = 2000

// DefaultTol is the iterative-solver relative-residual target the
// harness solves to. It sits well below OracleRelTol so the comparison
// measures solver agreement, not the convergence threshold.
const DefaultTol = 1e-13

// OracleRelTol is the documented agreement bound: every registry solver
// must match the dense Cholesky oracle within this ∞-norm relative error
// on oracle-sized meshes (see DESIGN.md §5g for the tolerance policy).
const OracleRelTol = 1e-9

// RoundTripVoltTol is the documented netlist round-trip bound: voltages
// of the re-parsed system must match the original mesh's within this
// ∞-norm relative error. It is looser than OracleRelTol because each
// resistance line carries one reciprocal rounding (g → 1/g → text → g′).
const RoundTripVoltTol = 1e-8

// Options tunes a differential check. The zero value is ready to use.
type Options struct {
	// Methods lists the solver methods to check; nil selects every
	// registered method (solve.Methods()).
	Methods []string
	// Workers bounds the solver kernels' worker pool (<= 0: GOMAXPROCS).
	Workers int
	// Tol is the iterative relative-residual target; 0 selects DefaultTol.
	Tol float64
	// OracleMaxN caps the dense-oracle system size; 0 selects
	// DefaultOracleMaxN. The dense method is skipped entirely above it.
	OracleMaxN int
	// SkipRoundTrip disables the SPICE netlist round-trip leg (the fuzz
	// target exercises it separately on a tighter budget).
	SkipRoundTrip bool
}

func (o Options) tol() float64 {
	if o.Tol > 0 {
		return o.Tol
	}
	return DefaultTol
}

func (o Options) oracleMaxN() int {
	if o.OracleMaxN > 0 {
		return o.OracleMaxN
	}
	return DefaultOracleMaxN
}

func (o Options) methods() []string {
	if len(o.Methods) > 0 {
		return o.Methods
	}
	return solve.Methods()
}

// Run is one solver execution against the reference solution.
type Run struct {
	// Method is the registry name of the solver.
	Method string `json:"method"`
	// Warm reports whether the solve was seeded with a nearby solution.
	Warm bool `json:"warm"`
	// Iterations and Residual are the solver's own convergence story.
	Iterations int     `json:"iterations"`
	Residual   float64 `json:"residual"`
	// Precond names the preconditioner the solver reported actually
	// running (CGStats.Precond; empty for direct methods), and Fallback
	// marks a setup-time substitution (IC(0) breakdown → Jacobi). The
	// harness surfaces both so a silent preconditioner swap shows up as a
	// diff in the committed snapshot.
	Precond  string `json:"precond,omitempty"`
	Fallback bool   `json:"fallback,omitempty"`
	// RelErr is the ∞-norm relative error against the mesh's reference
	// solution.
	RelErr float64 `json:"rel_err"`
	// CondEst is the CG-Lanczos condition estimate of the preconditioned
	// operator, captured from the solve flight recorder (0 for direct
	// methods and degenerate trajectories), and Termination is the
	// recorder's exit classification. Both are committed into the
	// convergence snapshot so a conditioning or termination regression
	// diffs like any other column.
	CondEst     float64 `json:"cond_est,omitempty"`
	Termination string  `json:"termination,omitempty"`
}

// RoundTrip reports the SPICE netlist round-trip leg of a mesh check.
type RoundTrip struct {
	// StructEqual reports whether parse(WriteNetlist(m)) reproduced the
	// exact CSR sparsity pattern of the originating matrix.
	StructEqual bool `json:"struct_equal"`
	// MaxValRelDiff is the worst per-entry relative difference between
	// the original and re-parsed matrix values.
	MaxValRelDiff float64 `json:"max_val_rel_diff"`
	// MaxRHSRelDiff is the worst per-entry relative difference between
	// the original and re-parsed right-hand sides.
	MaxRHSRelDiff float64 `json:"max_rhs_rel_diff"`
	// VoltRelErr is the ∞-norm relative error between node voltages of
	// the re-parsed system and the original, solved with the same method.
	VoltRelErr float64 `json:"volt_rel_err"`
}

// MeshReport is the differential outcome for one corpus mesh.
type MeshReport struct {
	Name  string `json:"name"`
	Nodes int    `json:"nodes"`
	NNZ   int    `json:"nnz"`
	// Oracle names the reference: "cholesky" for the dense exact oracle,
	// "cross:<method>" when the mesh is too large to factor densely.
	Oracle string `json:"oracle"`
	// Runs lists every solver execution (cold and warm) and its error
	// against the reference.
	Runs []Run `json:"runs"`
	// MaxRelErr is the worst RelErr over Runs.
	MaxRelErr float64 `json:"max_rel_err"`
	// RestampExact reports that a value-restamped matrix reproduced the
	// full build bit for bit — both for the mesh's own spec and for a
	// value-perturbed sibling.
	RestampExact bool `json:"restamp_exact"`
	// RoundTrip is the netlist interchange leg (nil when skipped).
	RoundTrip *RoundTrip `json:"round_trip,omitempty"`
}

// Check expands one corpus entry and runs the full differential suite on
// it: every registered solver cold and warm against the mesh's reference
// solution, restamp-vs-full-build bit equality, and the SPICE round trip.
func Check(s *gen.Spec, opt Options) (*MeshReport, error) {
	inst, err := s.Build()
	if err != nil {
		return nil, err
	}
	m, rhs, err := Assemble(inst)
	if err != nil {
		return nil, err
	}
	rep := &MeshReport{Name: s.Name, Nodes: m.N(), NNZ: m.Matrix.NNZ()}

	restampExact, warmSeed, err := restampCheck(inst, m)
	if err != nil {
		return nil, err
	}
	rep.RestampExact = restampExact

	// Reference solution: dense Cholesky on oracle-sized systems, the
	// default iterative method otherwise.
	tol := opt.tol()
	cg := solve.CGOptions{Tol: tol}
	var ref []float64
	dense := m.N() <= opt.oracleMaxN()
	if dense {
		rep.Oracle = solve.MethodCholesky
		x, _, err := m.Solve(rhs, solve.Options{Method: solve.MethodCholesky, Workers: opt.Workers})
		if err != nil {
			return nil, fmt.Errorf("diff %s: oracle: %w", s.Name, err)
		}
		ref = x
	} else {
		rep.Oracle = "cross:" + solve.DefaultMethod
		x, _, err := m.Solve(rhs, solve.Options{Method: solve.DefaultMethod, Workers: opt.Workers, CGOptions: cg})
		if err != nil {
			return nil, fmt.Errorf("diff %s: cross-check reference: %w", s.Name, err)
		}
		ref = x
	}

	// Every checked run records into a harness-local flight-recorder
	// buffer so its condition estimate and termination class land in the
	// report alongside the error columns.
	buf := obs.NewSolveBuffer(1)
	for _, method := range opt.methods() {
		if method == solve.MethodCholesky && !dense {
			continue // O(n³) dense factorization above the oracle cap
		}
		for _, warm := range []bool{false, true} {
			o := cg
			if warm {
				o.X0 = warmSeed
			}
			rec := buf.StartSolveRecord()
			o.Rec = rec
			x, stats, err := m.Solve(rhs, solve.Options{Method: method, Workers: opt.Workers, CGOptions: o})
			rec.Commit()
			if err != nil {
				return nil, fmt.Errorf("diff %s: %s (warm=%v): %w", s.Name, method, warm, err)
			}
			run := Run{
				Method:     method,
				Warm:       warm,
				Iterations: stats.Iterations,
				Residual:   stats.Residual,
				Precond:    stats.Precond,
				Fallback:   stats.Fallback,
				RelErr:     RelErr(x, ref),
			}
			if recent, _, _ := buf.Snapshot(); len(recent) > 0 {
				run.CondEst = recent[0].CondEst
				run.Termination = recent[0].Termination
			}
			rep.Runs = append(rep.Runs, run)
			if run.RelErr > rep.MaxRelErr {
				rep.MaxRelErr = run.RelErr
			}
		}
	}

	if !opt.SkipRoundTrip {
		rt, err := roundTrip(m, rhs, opt)
		if err != nil {
			return nil, fmt.Errorf("diff %s: round trip: %w", s.Name, err)
		}
		rep.RoundTrip = rt
	}
	return rep, nil
}

// Assemble expands an instance into its mesh and loaded right-hand side
// (ties plus the instance's memory-state loads).
func Assemble(inst *gen.Instance) (*rmesh.Model, []float64, error) {
	var logicPower *powermap.LogicModel
	if inst.Spec.OnLogic {
		logicPower = inst.Bench.LogicPower
	}
	a, err := irdrop.New(inst.Spec, inst.Bench.DRAMPower, logicPower)
	if err != nil {
		return nil, nil, err
	}
	st, err := memstate.FromCounts(inst.Counts, memstate.WorstCaseEdge(inst.Spec.DRAM.NumBanks))
	if err != nil {
		return nil, nil, err
	}
	rhs, err := a.LoadedRHS(st, inst.IO)
	if err != nil {
		return nil, nil, err
	}
	return a.Model, rhs, nil
}

// restampCheck re-proves the two-phase mesh pipeline's bit-exactness
// claim on this mesh: restamping the same spec over the frozen topology,
// and restamping a value-perturbed sibling, must both reproduce the
// matrices a cold rmesh.Build produces bit for bit. It returns the
// perturbed sibling's solution as the warm-start seed for the warm runs —
// a genuinely nearby but non-identical guess, the value-sweep scenario.
func restampCheck(inst *gen.Instance, m *rmesh.Model) (bool, []float64, error) {
	spec := inst.Spec
	same, err := m.Topology().NewModel(spec)
	if err != nil {
		return false, nil, err
	}
	exact := bitsEqual(m.Matrix.Val, same.Matrix.Val)

	// Value-only perturbation: scale every metal usage down 20% (always
	// validates — usages only shrink) without touching the topology key.
	pg := *inst.Gen
	if pg.UsageScale == 0 {
		pg.UsageScale = 1
	}
	pg.UsageScale *= 0.8
	pinst, err := pg.Build()
	if err != nil {
		return false, nil, err
	}
	full, err := rmesh.Build(pinst.Spec)
	if err != nil {
		return false, nil, err
	}
	restamped, err := m.Topology().NewModel(pinst.Spec)
	if err != nil {
		return false, nil, err
	}
	exact = exact && bitsEqual(full.Matrix.Val, restamped.Matrix.Val)

	prhs, err := pinstRHS(pinst, full)
	if err != nil {
		return false, nil, err
	}
	seed, _, err := full.Solve(prhs, solve.Options{CGOptions: solve.CGOptions{Tol: 1e-10}})
	if err != nil {
		return false, nil, err
	}
	return exact, seed, nil
}

// pinstRHS loads the perturbed sibling's right-hand side onto its own
// mesh (the tie conductances changed with the values).
func pinstRHS(inst *gen.Instance, m *rmesh.Model) ([]float64, error) {
	st, err := memstate.FromCounts(inst.Counts, memstate.WorstCaseEdge(inst.Spec.DRAM.NumBanks))
	if err != nil {
		return nil, err
	}
	rhs := m.BaseRHS()
	for d := 0; d < inst.Spec.NumDRAM; d++ {
		var banks []int
		if d < len(st.Dies) {
			banks = st.Dies[d]
		}
		loads, err := inst.Bench.DRAMPower.Loads(inst.Spec.DRAM, banks, inst.IO)
		if err != nil {
			return nil, err
		}
		if err := m.AddDRAMLoads(rhs, d, loads); err != nil {
			return nil, err
		}
	}
	if inst.Spec.OnLogic && inst.Bench.LogicPower != nil {
		loads, err := inst.Bench.LogicPower.Loads(inst.Spec.Logic)
		if err != nil {
			return nil, err
		}
		if err := m.AddLogicLoads(rhs, loads); err != nil {
			return nil, err
		}
	}
	return rhs, nil
}

// roundTrip writes the mesh as a SPICE deck, re-parses it, and compares
// structure, values, and solved voltages against the original.
func roundTrip(m *rmesh.Model, rhs []float64, opt Options) (*RoundTrip, error) {
	var buf bytes.Buffer
	if err := spice.WriteNetlist(&buf, m, rhs, m.Spec.Name); err != nil {
		return nil, err
	}
	nl, err := spice.Parse(&buf)
	if err != nil {
		return nil, err
	}
	a2, rhs2, err := nl.System()
	if err != nil {
		return nil, err
	}
	rt := &RoundTrip{StructEqual: sparse.StructureEqual(m.Matrix, a2)}
	if !rt.StructEqual {
		return rt, nil // value comparison is meaningless across structures
	}
	for i := range m.Matrix.Val {
		if d := relDiff(m.Matrix.Val[i], a2.Val[i]); d > rt.MaxValRelDiff {
			rt.MaxValRelDiff = d
		}
	}
	for i := range rhs {
		if d := relDiff(rhs[i], rhs2[i]); d > rt.MaxRHSRelDiff {
			rt.MaxRHSRelDiff = d
		}
	}
	cg := solve.CGOptions{Tol: opt.tol()}
	x1, _, err := m.Solve(rhs, solve.Options{Workers: opt.Workers, CGOptions: cg})
	if err != nil {
		return nil, err
	}
	s2, err := solve.New(a2, solve.Options{Workers: opt.Workers})
	if err != nil {
		return nil, err
	}
	x2, _, err := s2.Solve(rhs2, cg)
	if err != nil {
		return nil, err
	}
	rt.VoltRelErr = RelErr(x2, x1)
	return rt, nil
}

// RelErr is the harness's error metric: the ∞-norm of (x − ref) relative
// to the ∞-norm of ref. Zero reference with nonzero x reports +Inf.
func RelErr(x, ref []float64) float64 {
	var num, den float64
	for i := range ref {
		if d := math.Abs(x[i] - ref[i]); d > num {
			num = d
		}
		if a := math.Abs(ref[i]); a > den {
			den = a
		}
	}
	if num == 0 {
		return 0
	}
	return num / den
}

// relDiff is the symmetric per-entry relative difference; two exact
// zeros compare equal.
func relDiff(a, b float64) float64 {
	d := math.Abs(a - b)
	if d == 0 {
		return 0
	}
	den := math.Abs(a)
	if bb := math.Abs(b); bb > den {
		den = bb
	}
	return d / den
}

// bitsEqual reports whether two float slices are identical bit for bit.
func bitsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}
