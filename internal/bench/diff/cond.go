package diff

// Dense condition-number oracle for the flight recorder's CG-Lanczos
// estimate. Jacobi-preconditioned CG traverses the spectrum of M⁻¹A with
// M = diag(A), which is similar to the symmetrized D^{-1/2}·A·D^{-1/2};
// DenseCond computes that operator's κ₂ with a cyclic Jacobi rotation
// eigensolver — a method entirely independent of the Lanczos machinery
// it validates, and robust to the clustered extreme eigenvalues that
// stall power iteration on these meshes. The O(n³)-per-sweep cost
// restricts it to the same regime as the dense solution oracle.

import (
	"fmt"
	"math"

	"pdn3d/internal/sparse"
)

// condMaxSweeps bounds the Jacobi eigensolver; convergence is quadratic
// once rotations lock in, so real meshes finish in well under ten sweeps.
const condMaxSweeps = 50

// DenseCond computes the spectral condition number λmax/λmin of the
// Jacobi-scaled operator D^{-1/2}·A·D^{-1/2} for the SPD matrix a. The
// rotation schedule is fixed, so the result is deterministic.
func DenseCond(a *sparse.CSR) (float64, error) {
	d := a.Diag()
	s := make([]float64, a.N)
	for i, v := range d {
		if v <= 0 {
			return 0, fmt.Errorf("diff: diagonal entry %d is %g, matrix not SPD", i, v)
		}
		s[i] = 1 / math.Sqrt(v)
	}
	dense := make([][]float64, a.N)
	buf := make([]float64, a.N*a.N)
	for i := range dense {
		dense[i] = buf[i*a.N : (i+1)*a.N]
		for p := a.RowPtr[i]; p < a.RowPtr[i+1]; p++ {
			dense[i][a.Col[p]] = a.Val[p] * s[i] * s[a.Col[p]]
		}
	}
	lmin, lmax, err := jacobiEigenExtremes(dense)
	if err != nil {
		return 0, err
	}
	if lmin <= 0 {
		return 0, fmt.Errorf("diff: eigensolver produced λmin %g <= 0 for an SPD operator", lmin)
	}
	return lmax / lmin, nil
}

// jacobiEigenExtremes diagonalizes the symmetric dense matrix a in place
// with cyclic Jacobi rotations and returns its extreme eigenvalues.
func jacobiEigenExtremes(a [][]float64) (lmin, lmax float64, err error) {
	n := len(a)
	if n == 0 {
		return 0, 0, fmt.Errorf("diff: empty matrix")
	}
	for sweep := 0; sweep < condMaxSweeps; sweep++ {
		var off, diag float64
		for i := 0; i < n; i++ {
			diag += a[i][i] * a[i][i]
			for j := i + 1; j < n; j++ {
				off += a[i][j] * a[i][j]
			}
		}
		// Eigenvalues move by at most the off-diagonal Frobenius norm
		// (Weyl), so a 1e-9-relative residual leaves κ orders of magnitude
		// more accurate than the 10% band the harness certifies.
		if off <= 1e-18*(diag+off) {
			lmin, lmax = a[0][0], a[0][0]
			for i := 1; i < n; i++ {
				lmin = math.Min(lmin, a[i][i])
				lmax = math.Max(lmax, a[i][i])
			}
			return lmin, lmax, nil
		}
		// Early sweeps only rotate entries above a sweep-relative
		// threshold; late sweeps annihilate entries already negligible
		// against their diagonal — both standard cyclic-Jacobi
		// accelerations (they drop work, never accuracy).
		thresh := 0.0
		if sweep < 3 {
			thresh = 0.2 * off / float64(n*n)
		}
		for p := 0; p < n; p++ {
			rowp := a[p]
			for q := p + 1; q < n; q++ {
				apq := rowp[q]
				if apq == 0 {
					continue
				}
				//pdnlint:ignore floateq deliberate rounding test: the entry is annihilated only when adding it cannot change the diagonal in float64
				if g := 100 * math.Abs(apq); sweep > 3 &&
					math.Abs(a[p][p])+g == math.Abs(a[p][p]) &&
					math.Abs(a[q][q])+g == math.Abs(a[q][q]) {
					rowp[q], a[q][p] = 0, 0
					continue
				}
				if apq*apq <= thresh {
					continue
				}
				// Stable rotation angle: t = tan θ from the smaller root.
				theta := (a[q][q] - a[p][p]) / (2 * apq)
				t := 1 / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				if theta < 0 {
					t = -t
				}
				c := 1 / math.Sqrt(t*t+1)
				sn := t * c
				rowq := a[q]
				a[p][p] -= t * apq
				a[q][q] += t * apq
				rowp[q], rowq[p] = 0, 0
				for i := 0; i < n; i++ {
					if i == p || i == q {
						continue
					}
					aip, aiq := rowp[i], rowq[i]
					rowp[i] = c*aip - sn*aiq
					rowq[i] = sn*aip + c*aiq
					a[i][p] = rowp[i]
					a[i][q] = rowq[i]
				}
			}
		}
	}
	return 0, 0, fmt.Errorf("diff: Jacobi eigensolver did not converge in %d sweeps", condMaxSweeps)
}
