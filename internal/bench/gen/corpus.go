package gen

import (
	"bytes"
	"embed"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

//go:embed corpus/*.json
var corpusFS embed.FS

// Canonical returns the committed benchmark corpus: one entry per
// (family, escalation level), every family anchored to a paper benchmark.
// Entries are small enough that the dense Cholesky oracle covers all of
// them in `go test` — the committed corpus is the regression floor, and
// Sized provides the on-the-fly large meshes above it. The serialized
// goldens under corpus/ must match this list byte for byte (pinned by
// TestCorpusGoldensMatchCanonical; regenerate with `pdnbench -regen`).
func Canonical() []*Spec {
	return []*Spec{
		// grid family: escalating mesh resolution on the off-chip stack.
		{Name: "grid0-ddr3", Base: "ddr3-off", Pitch: 1.0, Seed: 1},
		{Name: "grid1-ddr3", Base: "ddr3-off", Pitch: 0.8, Seed: 2},
		{Name: "grid2-ddr3", Base: "ddr3-off", Pitch: 0.6, Seed: 3},
		// tsv family: placement styles and counts on the HMC stack.
		{Name: "tsv0-hmc-center", Base: "hmc", Pitch: 1.0, TSVStyle: "C", TSVCount: 64, Seed: 4},
		{Name: "tsv1-hmc-edge", Base: "hmc", Pitch: 1.0, TSVStyle: "E", TSVCount: 384, Seed: 5},
		{Name: "tsv2-hmc-dist", Base: "hmc", Pitch: 1.0, TSVStyle: "D", TSVCount: 384, Seed: 6},
		// fail family: seeded TSV failure patterns.
		{Name: "fail0-ddr3", Base: "ddr3-off", Pitch: 1.0, FailRate: 0.1, Seed: 7},
		{Name: "fail1-ddr3", Base: "ddr3-off", Pitch: 1.0, FailRate: 0.33, Seed: 8, Counts: []int{1, 0, 0, 2}},
		// bond/rdl family: stacking and redistribution variants.
		{Name: "bond0-ddr3-f2f", Base: "ddr3-off", Pitch: 1.0, Bonding: "F2F", Seed: 9},
		{Name: "rdl0-ddr3", Base: "ddr3-off", Pitch: 1.0, RDL: "interface", TSVStyle: "C", Seed: 10},
		// rail family: supply-network coupling (stand-alone vs. on-logic).
		{Name: "rail0-ddr3-on", Base: "ddr3-on", Pitch: 1.0, Rails: 2, Seed: 11},
		{Name: "rail1-wideio", Base: "wideio", Pitch: 1.0, Rails: 2, Seed: 12},
		{Name: "rail2-ddr3-split", Base: "ddr3-on", Pitch: 1.0, Rails: 1, Seed: 13},
	}
}

// sizedPitches are the on-the-fly escalation levels above the committed
// corpus; level i selects sizedPitches[i] mm.
var sizedPitches = []float64{0.4, 0.3, 0.2}

// SizedLevels is the number of on-the-fly escalation levels.
func SizedLevels() int { return len(sizedPitches) }

// Sized returns the on-the-fly large mesh of one escalation level for a
// base benchmark. These are not committed: they exist to push the solvers
// past the dense-oracle regime (cross-check territory) in long test mode
// and `pdnbench -long`.
func Sized(base string, level int) (*Spec, error) {
	if level < 0 || level >= len(sizedPitches) {
		return nil, fmt.Errorf("gen: sized level %d out of [0, %d)", level, len(sizedPitches))
	}
	return &Spec{
		Name:  fmt.Sprintf("sized%d-%s", level, base),
		Base:  base,
		Pitch: sizedPitches[level],
		Seed:  uint64(100 + level),
	}, nil
}

// Corpus parses the committed golden corpus files in name order. The
// decoder rejects unknown fields, so a format drift between the goldens
// and the Spec schema fails loudly instead of silently ignoring knobs.
func Corpus() ([]*Spec, error) {
	entries, err := corpusFS.ReadDir("corpus")
	if err != nil {
		return nil, fmt.Errorf("gen: reading embedded corpus: %w", err)
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		names = append(names, e.Name())
	}
	sort.Strings(names)
	specs := make([]*Spec, 0, len(names))
	for _, name := range names {
		data, err := corpusFS.ReadFile("corpus/" + name)
		if err != nil {
			return nil, err
		}
		s, err := Decode(data)
		if err != nil {
			return nil, fmt.Errorf("gen: corpus/%s: %w", name, err)
		}
		specs = append(specs, s)
	}
	return specs, nil
}

// Decode parses one corpus entry, rejecting unknown fields.
func Decode(data []byte) (*Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	s := &Spec{}
	if err := dec.Decode(s); err != nil {
		return nil, err
	}
	return s, nil
}

// Encode serializes one corpus entry in the committed golden form:
// two-space indented JSON with a trailing newline.
func Encode(s *Spec) ([]byte, error) {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// WriteCorpus serializes the canonical corpus into dir, one
// "<name>.json" per entry, and removes stale .json files no longer in
// the canonical list. `pdnbench -regen` calls this against the source
// tree; the embedded goldens pin the result.
func WriteCorpus(dir string) error {
	keep := map[string]bool{}
	for _, s := range Canonical() {
		data, err := Encode(s)
		if err != nil {
			return err
		}
		name := s.Name + ".json"
		keep[name] = true
		if err := os.WriteFile(filepath.Join(dir, name), data, 0o644); err != nil {
			return err
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	for _, e := range entries {
		if !keep[e.Name()] && filepath.Ext(e.Name()) == ".json" {
			if err := os.Remove(filepath.Join(dir, e.Name())); err != nil {
				return err
			}
		}
	}
	return nil
}
