// Package gen deterministically generates the synthetic PDN benchmark
// corpus — the SRAM-PG-style escalating mesh families the differential
// solver harness (internal/bench/diff) batters every registered solver
// with. A corpus entry is a small declarative Spec (JSON-serializable,
// committed under corpus/) that expands into a fully analyzable design:
// one of the four paper benchmarks perturbed along one escalation axis —
// mesh size (pitch), TSV pattern, seeded TSV failures, stacking style, or
// rail coupling (stand-alone DRAM vs. DRAM+logic). Everything is seeded:
// the same Spec always expands to the identical pdn.Spec, bit for bit,
// with no wall-clock or global-RNG input.
package gen

import (
	"fmt"
	"math"

	"pdn3d/internal/bench3d"
	"pdn3d/internal/pdn"
)

// Spec declares one synthetic benchmark mesh. The zero value of every
// optional field means "inherit from the base benchmark".
type Spec struct {
	// Name is the unique corpus identifier (also the expanded pdn.Spec
	// name, so cache keys of distinct corpus entries never collide).
	Name string `json:"name"`
	// Base names the bench3d paper benchmark the entry perturbs:
	// "ddr3-off", "ddr3-on", "wideio", or "hmc".
	Base string `json:"base"`
	// Pitch overrides the R-Mesh node pitch in mm (the mesh-size axis;
	// smaller pitch, more nodes). 0 inherits the base pitch.
	Pitch float64 `json:"pitch_mm,omitempty"`
	// TSVStyle overrides the PG TSV placement ("C", "E", "D").
	TSVStyle string `json:"tsv_style,omitempty"`
	// TSVCount overrides the PG TSV count per interface.
	TSVCount int `json:"tsv_count,omitempty"`
	// Bonding overrides the stacking style ("F2B", "F2F").
	Bonding string `json:"bonding,omitempty"`
	// RDL overrides redistribution-layer insertion ("none", "interface",
	// "all").
	RDL string `json:"rdl,omitempty"`
	// FailRate marks this fraction of the PG TSVs as failed opens, chosen
	// by the seeded PRNG. At least one TSV always survives.
	FailRate float64 `json:"tsv_fail_rate,omitempty"`
	// Seed drives every random choice of the expansion (currently the
	// failed-TSV sample). Two Specs differing only in Seed are distinct
	// designs when FailRate > 0.
	Seed uint64 `json:"seed"`
	// UsageScale scales every PDN metal usage (the value-only axis: it
	// changes conductance magnitudes but not the mesh topology, so it is
	// the knob the restamp/warm-start differential checks sweep). 0 means
	// 1.0.
	UsageScale float64 `json:"usage_scale,omitempty"`
	// Rails selects the supply-network coupling: 0 inherits the base,
	// 1 strips the logic die (single-rail stand-alone stack), 2 requires
	// the base's coupled DRAM+logic networks.
	Rails int `json:"rails,omitempty"`
	// Counts is the analyzed memory state as per-die active-bank counts.
	// Empty inherits the base default (0-0-0-2).
	Counts []int `json:"counts,omitempty"`
	// IO is the per-die I/O activity in (0, 1]. 0 inherits the base.
	IO float64 `json:"io,omitempty"`
}

// Instance is an expanded corpus entry: the concrete design plus the
// power models and memory state needed to assemble its load vector.
type Instance struct {
	// Gen is the declarative spec the instance expanded from.
	Gen *Spec
	// Spec is the concrete design.
	Spec *pdn.Spec
	// Bench is the base paper benchmark (power models, default state).
	Bench *bench3d.Benchmark
	// Counts is the effective memory state.
	Counts []int
	// IO is the effective per-die I/O activity.
	IO float64
}

// Build expands the declarative spec into a validated design instance.
// The expansion is a pure function of the Spec value.
func (s *Spec) Build() (*Instance, error) {
	if s.Name == "" {
		return nil, fmt.Errorf("gen: spec has no name")
	}
	b, err := bench3d.ByName(s.Base)
	if err != nil {
		return nil, fmt.Errorf("gen %s: %w", s.Name, err)
	}
	spec := b.Spec.Clone()
	spec.Name = s.Name
	if s.Pitch != 0 {
		spec.MeshPitch = s.Pitch
	}
	if s.TSVStyle != "" {
		style, err := pdn.ParseTSVLocation(s.TSVStyle)
		if err != nil {
			return nil, fmt.Errorf("gen %s: %w", s.Name, err)
		}
		spec.TSVStyle = style
	}
	if s.TSVCount != 0 {
		spec.TSVCount = s.TSVCount
	}
	if s.Bonding != "" {
		bond, err := pdn.ParseBonding(s.Bonding)
		if err != nil {
			return nil, fmt.Errorf("gen %s: %w", s.Name, err)
		}
		spec.Bonding = bond
	}
	if s.RDL != "" {
		rdl, err := pdn.ParseRDL(s.RDL)
		if err != nil {
			return nil, fmt.Errorf("gen %s: %w", s.Name, err)
		}
		spec.RDL = rdl
	}
	inst := &Instance{Gen: s, Spec: spec, Bench: b, Counts: b.DefaultCounts, IO: b.DefaultIO}
	switch s.Rails {
	case 0, 2:
		if s.Rails == 2 && !spec.OnLogic {
			return nil, fmt.Errorf("gen %s: rails=2 needs an on-logic base, %s is stand-alone", s.Name, s.Base)
		}
	case 1:
		spec.OnLogic = false
		spec.Logic = nil
		spec.LogicTech = nil
		spec.LogicUsage = nil
		spec.DedicatedTSV = false
		spec.AlignTSV = false
	default:
		return nil, fmt.Errorf("gen %s: rails %d out of range [0, 2]", s.Name, s.Rails)
	}
	if s.UsageScale != 0 {
		if s.UsageScale < 0 {
			return nil, fmt.Errorf("gen %s: negative usage scale %g", s.Name, s.UsageScale)
		}
		spec.Usage = scaleUsage(spec.Usage, s.UsageScale)
		spec.LogicUsage = scaleUsage(spec.LogicUsage, s.UsageScale)
	}
	if s.FailRate != 0 {
		if s.FailRate < 0 || s.FailRate >= 1 {
			return nil, fmt.Errorf("gen %s: TSV failure rate %g out of [0, 1)", s.Name, s.FailRate)
		}
		spec.FailedTSVs = failTSVs(spec.TSVCount, s.FailRate, s.Seed)
	}
	if len(s.Counts) > 0 {
		inst.Counts = s.Counts
	}
	if s.IO != 0 {
		if s.IO < 0 || s.IO > 1 {
			return nil, fmt.Errorf("gen %s: I/O activity %g out of (0, 1]", s.Name, s.IO)
		}
		inst.IO = s.IO
	}
	if err := spec.Validate(); err != nil {
		return nil, fmt.Errorf("gen %s: expanded design invalid: %w", s.Name, err)
	}
	return inst, nil
}

// scaleUsage returns a copy of u with every usage multiplied by s. Writes
// into the fresh map are order-independent, so map iteration is safe here.
func scaleUsage(u map[string]float64, s float64) map[string]float64 {
	if u == nil {
		return nil
	}
	out := make(map[string]float64, len(u))
	for k, v := range u {
		out[k] = v * s
	}
	return out
}

// failTSVs deterministically samples round(rate·count) distinct TSV
// indices via a seeded splitmix64 partial Fisher-Yates shuffle, always
// leaving at least one TSV alive.
func failTSVs(count int, rate float64, seed uint64) map[int]bool {
	k := int(math.Round(rate * float64(count)))
	if k >= count {
		k = count - 1
	}
	if k <= 0 {
		return nil
	}
	idx := make([]int, count)
	for i := range idx {
		idx[i] = i
	}
	state := seed
	failed := make(map[int]bool, k)
	for i := 0; i < k; i++ {
		j := i + int(splitmix64(&state)%uint64(count-i))
		idx[i], idx[j] = idx[j], idx[i]
		failed[idx[i]] = true
	}
	return failed
}

// splitmix64 is the stateless-seedable PRNG behind every random choice in
// this package: identical output on every platform and Go release, unlike
// math/rand's generator, which is not covered by the compatibility
// promise for cross-version stream stability.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
