package gen

import (
	"bytes"
	"reflect"
	"testing"
	"testing/quick"

	"pdn3d/internal/speckey"
)

// TestCanonicalNamesUnique: corpus names are file names and cache keys —
// duplicates would silently drop goldens.
func TestCanonicalNamesUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, s := range Canonical() {
		if seen[s.Name] {
			t.Errorf("duplicate canonical name %q", s.Name)
		}
		seen[s.Name] = true
	}
}

// TestCanonicalAllBuild: every committed corpus entry expands into a
// validated design.
func TestCanonicalAllBuild(t *testing.T) {
	for _, s := range Canonical() {
		if _, err := s.Build(); err != nil {
			t.Errorf("%s: %v", s.Name, err)
		}
	}
}

// TestCorpusGoldensMatchCanonical pins the committed golden files to the
// canonical list byte for byte: same entries, same serialized form.
// Regenerate with `go run ./cmd/pdnbench -regen` after editing Canonical.
func TestCorpusGoldensMatchCanonical(t *testing.T) {
	canon := Canonical()
	specs, err := Corpus()
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != len(canon) {
		t.Fatalf("corpus has %d goldens, canonical list has %d (run pdnbench -regen)", len(specs), len(canon))
	}
	byName := map[string]*Spec{}
	for _, s := range canon {
		byName[s.Name] = s
	}
	for _, got := range specs {
		want, ok := byName[got.Name]
		if !ok {
			t.Errorf("golden %q not in the canonical list (stale file; run pdnbench -regen)", got.Name)
			continue
		}
		gb, err := Encode(got)
		if err != nil {
			t.Fatal(err)
		}
		wb, err := Encode(want)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(gb, wb) {
			t.Errorf("golden %q drifted from canonical:\n got %s\nwant %s", got.Name, gb, wb)
		}
	}
}

// TestDecodeRejectsUnknownFields: schema drift between goldens and Spec
// must fail loudly.
func TestDecodeRejectsUnknownFields(t *testing.T) {
	if _, err := Decode([]byte(`{"name": "x", "base": "ddr3-off", "tsv_rate": 2}`)); err == nil {
		t.Error("want error for unknown field, got nil")
	}
}

// TestBuildDeterministic: the expansion is a pure function of the Spec
// value — two Builds of the same entry yield identical designs (same
// speckey fingerprint, same failed-TSV sample).
func TestBuildDeterministic(t *testing.T) {
	for _, s := range Canonical() {
		a, err := s.Build()
		if err != nil {
			t.Fatal(err)
		}
		b, err := s.Build()
		if err != nil {
			t.Fatal(err)
		}
		ka := speckey.Spec(a.Spec, a.Spec.OnLogic)
		kb := speckey.Spec(b.Spec, b.Spec.OnLogic)
		if ka != kb {
			t.Errorf("%s: two Builds produced different speckeys", s.Name)
		}
		if !reflect.DeepEqual(a.Spec.FailedTSVs, b.Spec.FailedTSVs) {
			t.Errorf("%s: failed-TSV sample not deterministic", s.Name)
		}
		if !reflect.DeepEqual(a.Counts, b.Counts) || a.IO != b.IO {
			t.Errorf("%s: state expansion not deterministic", s.Name)
		}
	}
}

// TestFailTSVs: the seeded sample has exactly round(rate·count) members,
// always leaves a survivor, stays in range, and is seed-stable.
func TestFailTSVs(t *testing.T) {
	got := failTSVs(100, 0.25, 42)
	if len(got) != 25 {
		t.Errorf("rate 0.25 of 100: %d failed, want 25", len(got))
	}
	for i := range got {
		if i < 0 || i >= 100 {
			t.Errorf("failed index %d out of range", i)
		}
	}
	if again := failTSVs(100, 0.25, 42); !reflect.DeepEqual(got, again) {
		t.Error("same seed produced a different sample")
	}
	if other := failTSVs(100, 0.25, 43); reflect.DeepEqual(got, other) {
		t.Error("different seeds produced the identical sample (suspicious)")
	}
	// Saturating rate still leaves one TSV alive.
	if full := failTSVs(8, 0.99, 7); len(full) != 7 {
		t.Errorf("near-1 rate on 8 TSVs failed %d, want 7 (one survivor)", len(full))
	}
	if none := failTSVs(8, 0.01, 7); none != nil {
		t.Errorf("rate rounding to zero should fail no TSVs, got %d", len(none))
	}
}

// TestSpecKeyFramingInjective is the property behind every cache key in
// the system: speckey's length-prefixed framing is injective, so no pair
// of field tuples can collide. testing/quick drives random tuples; the
// table pins the classic delimiter-absorption counterexamples that
// naive "a|b" joining gets wrong.
func TestSpecKeyFramingInjective(t *testing.T) {
	frame := func(a, b string) string {
		var k speckey.Builder
		k.Str(a)
		k.Str(b)
		return k.String()
	}
	prop := func(a1, b1, a2, b2 string) bool {
		same := a1 == a2 && b1 == b2
		return (frame(a1, b1) == frame(a2, b2)) == same
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
	adversarial := [][4]string{
		{"a", "bc", "ab", "c"},
		{"", "ab", "ab", ""},
		{"1:a", "", "", "1:a"},
		{"2:", "x", "2", ":x"},
	}
	for _, c := range adversarial {
		if frame(c[0], c[1]) == frame(c[2], c[3]) {
			t.Errorf("framing collision: (%q,%q) vs (%q,%q)", c[0], c[1], c[2], c[3])
		}
	}
}

// TestSpecKeyInjectiveAcrossFamily: within the generator's spec family —
// same corpus name, one knob perturbed at a time — two entries may share
// a speckey.Spec fingerprint only if they expand to the identical design
// (some overrides are no-ops when they match the base default). A key
// collision between materially different designs means some generator
// knob is invisible to the cache key, i.e. two different meshes would
// share cached results.
func TestSpecKeyInjectiveAcrossFamily(t *testing.T) {
	base := Spec{Name: "family", Base: "ddr3-off", Pitch: 1.0, Seed: 1}
	family := []Spec{base}
	perturb := func(f func(*Spec)) {
		s := base
		f(&s)
		family = append(family, s)
	}
	perturb(func(s *Spec) { s.Pitch = 0.8 })
	perturb(func(s *Spec) { s.Pitch = 0.6 })
	perturb(func(s *Spec) { s.TSVStyle = "C" })
	perturb(func(s *Spec) { s.TSVStyle = "E" })
	perturb(func(s *Spec) { s.TSVStyle = "D" })
	perturb(func(s *Spec) { s.TSVCount = 64 })
	perturb(func(s *Spec) { s.TSVCount = 96 })
	perturb(func(s *Spec) { s.Bonding = "F2F" })
	perturb(func(s *Spec) { s.RDL = "interface" })
	perturb(func(s *Spec) { s.RDL = "all" })
	perturb(func(s *Spec) { s.FailRate = 0.1 })
	perturb(func(s *Spec) { s.FailRate = 0.2 })
	perturb(func(s *Spec) { s.FailRate = 0.1; s.Seed = 2 })
	perturb(func(s *Spec) { s.UsageScale = 0.9 })
	perturb(func(s *Spec) { s.UsageScale = 0.8 })

	type entry struct {
		gen  Spec
		inst *Instance
	}
	keys := map[string]entry{}
	distinct := 0
	for _, s := range family {
		s := s
		inst, err := s.Build()
		if err != nil {
			t.Fatalf("%+v: %v", s, err)
		}
		key := speckey.Spec(inst.Spec, inst.Spec.OnLogic)
		if prev, ok := keys[key]; ok {
			if !reflect.DeepEqual(prev.inst.Spec, inst.Spec) {
				t.Errorf("speckey collision between materially distinct designs:\n  %+v\n  %+v", prev.gen, s)
			}
			continue
		}
		distinct++
		keys[key] = entry{gen: s, inst: inst}
	}
	// Sanity: the family genuinely exercises the key — most perturbations
	// must produce distinct designs, or the test is vacuous.
	if distinct < len(family)-3 {
		t.Errorf("only %d of %d family members are distinct designs; perturbations are not material", distinct, len(family))
	}
}
