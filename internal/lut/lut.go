// Package lut builds the IR-drop look-up table at the heart of the paper's
// IR-drop-aware read policies (§5.2): for every memory state (per-die
// active-bank counts) and a set of per-die I/O activity levels, the maximum
// IR drop is pre-computed with the R-Mesh engine and stored for O(1)
// queries by the memory controller.
package lut

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"pdn3d/internal/irdrop"
	"pdn3d/internal/memstate"
	"pdn3d/internal/par"
)

// ErrNotCovered is the sentinel every MaxIR miss wraps: the queried
// (state, io) point lies outside the built grid. Callers branch with
// errors.Is(err, ErrNotCovered) — the memory controller to stay
// conservative, the analysis server to answer HTTP 422 — and recover the
// offending point through errors.As with *NotCoveredError.
var ErrNotCovered = errors.New("lut: point not covered")

// NotCoveredError is a typed MaxIR miss carrying the offending key.
type NotCoveredError struct {
	// Counts is the queried per-die count vector.
	Counts []int
	// IO is the queried per-die I/O activity.
	IO float64
	// Reason says which axis fell outside the table.
	Reason string
}

func (e *NotCoveredError) Error() string {
	return fmt.Sprintf("lut: %v@%g not covered: %s", e.Counts, e.IO, e.Reason)
}

// Unwrap ties every miss to the ErrNotCovered sentinel.
func (e *NotCoveredError) Unwrap() error { return ErrNotCovered }

func notCovered(counts []int, io float64, format string, args ...interface{}) error {
	return &NotCoveredError{
		Counts: append([]int(nil), counts...),
		IO:     io,
		Reason: fmt.Sprintf(format, args...),
	}
}

// Table is an immutable IR-drop look-up table.
type Table struct {
	// Dies is the DRAM die count of the design.
	Dies int
	// MaxPerDie is the largest per-die active bank count covered
	// (2 for interleaving read, §2.3).
	MaxPerDie int
	// IOLevels are the covered per-die I/O activity levels, ascending.
	IOLevels []float64

	entries map[string]float64 // key -> max IR in volts
}

// DefaultIOLevels covers the paper's Table 5 activity points. With the
// shared zero-bubble bus, per-die activity is 1/k for k active dies, so
// these levels cover stacks of up to four dies exactly.
func DefaultIOLevels() []float64 { return []float64{0.25, 0.5, 1.0} }

// Build pre-computes the table with the given analyzer using one worker
// per CPU. The analyzer's design defines the die and bank counts; states
// use the worst-case edge placement like the paper's Table 5.
func Build(a *irdrop.Analyzer, maxPerDie int, ioLevels []float64) (*Table, error) {
	return BuildWith(a, maxPerDie, ioLevels, 0)
}

// BuildWith is Build with an explicit worker budget (<= 0 selects
// GOMAXPROCS). Design points fan out across the pool; the table contents
// are identical for every worker count.
func BuildWith(a *irdrop.Analyzer, maxPerDie int, ioLevels []float64, workers int) (*Table, error) {
	if maxPerDie < 1 {
		return nil, fmt.Errorf("lut: maxPerDie %d must be >= 1", maxPerDie)
	}
	if len(ioLevels) == 0 {
		return nil, fmt.Errorf("lut: no IO levels")
	}
	levels := append([]float64(nil), ioLevels...)
	sort.Float64s(levels)
	for _, io := range levels {
		if io <= 0 || io > 1 {
			return nil, fmt.Errorf("lut: IO level %g out of (0,1]", io)
		}
	}
	dies := a.Spec().NumDRAM
	t := &Table{
		Dies:      dies,
		MaxPerDie: maxPerDie,
		IOLevels:  levels,
		entries:   make(map[string]float64),
	}
	// Enumerate all count vectors, then fan the solves out across the
	// worker pool: each solve only reads the shared conductance matrix,
	// and Analyze is safe for concurrent use. Each design point writes its
	// own result slot, so no channels or locks are needed.
	var states [][]int
	counts := make([]int, dies)
	var rec func(d int)
	rec = func(d int) {
		if d == dies {
			states = append(states, append([]int(nil), counts...))
			return
		}
		for c := 0; c <= maxPerDie; c++ {
			counts[d] = c
			rec(d + 1)
		}
		counts[d] = 0
	}
	rec(0)

	irs := make([][]float64, len(states))
	err := par.Sweep(workers, len(states), func(i int) error {
		irs[i] = make([]float64, len(levels))
		for li, io := range levels {
			r, err := a.AnalyzeCounts(states[i], io)
			if err != nil {
				return err
			}
			irs[i][li] = r.MaxIR
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i, c := range states {
		for li, io := range levels {
			t.entries[key(c, io)] = irs[i][li]
		}
	}
	return t, nil
}

// FromPoints assembles a table from explicit grid points — the inverse of
// Points — for loading precomputed tables and for tests that need a table
// with known contents without running solves.
func FromPoints(dies, maxPerDie int, ioLevels []float64, pts []Point) (*Table, error) {
	if dies < 1 {
		return nil, fmt.Errorf("lut: dies %d must be >= 1", dies)
	}
	if maxPerDie < 1 {
		return nil, fmt.Errorf("lut: maxPerDie %d must be >= 1", maxPerDie)
	}
	if len(ioLevels) == 0 {
		return nil, fmt.Errorf("lut: no IO levels")
	}
	levels := append([]float64(nil), ioLevels...)
	sort.Float64s(levels)
	for _, io := range levels {
		if io <= 0 || io > 1 {
			return nil, fmt.Errorf("lut: IO level %g out of (0,1]", io)
		}
	}
	t := &Table{
		Dies:      dies,
		MaxPerDie: maxPerDie,
		IOLevels:  levels,
		entries:   make(map[string]float64, len(pts)),
	}
	for _, p := range pts {
		if len(p.Counts) != dies {
			return nil, fmt.Errorf("lut: point %v has %d dies, table covers %d", p.Counts, len(p.Counts), dies)
		}
		t.entries[key(p.Counts, p.IO)] = p.MaxIR
	}
	return t, nil
}

// Entries returns the number of stored (state, io) points.
func (t *Table) Entries() int { return len(t.entries) }

// MaxIR returns the maximum IR drop in volts for the given per-die counts
// at per-die I/O activity io. The io is rounded UP to the nearest covered
// level (conservative for constraint checks). A point outside the built
// grid — mismatched die count, a count above MaxPerDie, io above the top
// covered level — returns a *NotCoveredError wrapping ErrNotCovered.
func (t *Table) MaxIR(counts []int, io float64) (float64, error) {
	if len(counts) != t.Dies {
		return 0, notCovered(counts, io, "%d dies, table covers %d", len(counts), t.Dies)
	}
	for d, c := range counts {
		if c < 0 || c > t.MaxPerDie {
			return 0, notCovered(counts, io, "count %d on die %d outside [0,%d]", c, d+1, t.MaxPerDie)
		}
	}
	if top := t.IOLevels[len(t.IOLevels)-1]; io > top+1e-12 {
		return 0, notCovered(counts, io, "activity %g above the top covered level %g", io, top)
	}
	level := t.IOLevels[len(t.IOLevels)-1]
	for i := len(t.IOLevels) - 1; i >= 0; i-- {
		if t.IOLevels[i] >= io-1e-12 {
			level = t.IOLevels[i]
		} else {
			break
		}
	}
	v, ok := t.entries[key(counts, level)]
	if !ok {
		return 0, notCovered(counts, io, "no entry at covered level %g", level)
	}
	return v, nil
}

// Point is one stored (state, io) grid point.
type Point struct {
	// Counts is the per-die active-bank vector.
	Counts []int
	// IO is the per-die I/O activity level.
	IO float64
	// MaxIR is the stored maximum IR drop in volts.
	MaxIR float64
}

// Points returns every stored grid point in deterministic order
// (lexicographic states, then ascending I/O levels) — the /v1/lut dump
// format, byte-identical across worker counts and runs.
func (t *Table) Points() []Point {
	out := make([]Point, 0, len(t.entries))
	for _, counts := range memstate.EnumerateCounts(t.Dies, t.MaxPerDie) {
		for _, io := range t.IOLevels {
			v, ok := t.entries[key(counts, io)]
			if !ok {
				continue
			}
			out = append(out, Point{Counts: append([]int(nil), counts...), IO: io, MaxIR: v})
		}
	}
	return out
}

// WorstIR returns the largest IR drop stored in the table.
func (t *Table) WorstIR() float64 {
	var mx float64
	for _, v := range t.entries {
		if v > mx {
			mx = v
		}
	}
	return mx
}

func key(counts []int, io float64) string {
	var sb strings.Builder
	for i, c := range counts {
		if i > 0 {
			sb.WriteByte('-')
		}
		sb.WriteString(strconv.Itoa(c))
	}
	fmt.Fprintf(&sb, "@%.4f", io)
	return sb.String()
}
