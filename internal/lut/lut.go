// Package lut builds the IR-drop look-up table at the heart of the paper's
// IR-drop-aware read policies (§5.2): for every memory state (per-die
// active-bank counts) and a set of per-die I/O activity levels, the maximum
// IR drop is pre-computed with the R-Mesh engine and stored for O(1)
// queries by the memory controller.
package lut

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"pdn3d/internal/irdrop"
	"pdn3d/internal/par"
)

// Table is an immutable IR-drop look-up table.
type Table struct {
	// Dies is the DRAM die count of the design.
	Dies int
	// MaxPerDie is the largest per-die active bank count covered
	// (2 for interleaving read, §2.3).
	MaxPerDie int
	// IOLevels are the covered per-die I/O activity levels, ascending.
	IOLevels []float64

	entries map[string]float64 // key -> max IR in volts
}

// DefaultIOLevels covers the paper's Table 5 activity points. With the
// shared zero-bubble bus, per-die activity is 1/k for k active dies, so
// these levels cover stacks of up to four dies exactly.
func DefaultIOLevels() []float64 { return []float64{0.25, 0.5, 1.0} }

// Build pre-computes the table with the given analyzer using one worker
// per CPU. The analyzer's design defines the die and bank counts; states
// use the worst-case edge placement like the paper's Table 5.
func Build(a *irdrop.Analyzer, maxPerDie int, ioLevels []float64) (*Table, error) {
	return BuildWith(a, maxPerDie, ioLevels, 0)
}

// BuildWith is Build with an explicit worker budget (<= 0 selects
// GOMAXPROCS). Design points fan out across the pool; the table contents
// are identical for every worker count.
func BuildWith(a *irdrop.Analyzer, maxPerDie int, ioLevels []float64, workers int) (*Table, error) {
	if maxPerDie < 1 {
		return nil, fmt.Errorf("lut: maxPerDie %d must be >= 1", maxPerDie)
	}
	if len(ioLevels) == 0 {
		return nil, fmt.Errorf("lut: no IO levels")
	}
	levels := append([]float64(nil), ioLevels...)
	sort.Float64s(levels)
	for _, io := range levels {
		if io <= 0 || io > 1 {
			return nil, fmt.Errorf("lut: IO level %g out of (0,1]", io)
		}
	}
	dies := a.Spec().NumDRAM
	t := &Table{
		Dies:      dies,
		MaxPerDie: maxPerDie,
		IOLevels:  levels,
		entries:   make(map[string]float64),
	}
	// Enumerate all count vectors, then fan the solves out across the
	// worker pool: each solve only reads the shared conductance matrix,
	// and Analyze is safe for concurrent use. Each design point writes its
	// own result slot, so no channels or locks are needed.
	var states [][]int
	counts := make([]int, dies)
	var rec func(d int)
	rec = func(d int) {
		if d == dies {
			states = append(states, append([]int(nil), counts...))
			return
		}
		for c := 0; c <= maxPerDie; c++ {
			counts[d] = c
			rec(d + 1)
		}
		counts[d] = 0
	}
	rec(0)

	irs := make([][]float64, len(states))
	err := par.Sweep(workers, len(states), func(i int) error {
		irs[i] = make([]float64, len(levels))
		for li, io := range levels {
			r, err := a.AnalyzeCounts(states[i], io)
			if err != nil {
				return err
			}
			irs[i][li] = r.MaxIR
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i, c := range states {
		for li, io := range levels {
			t.entries[key(c, io)] = irs[i][li]
		}
	}
	return t, nil
}

// Entries returns the number of stored (state, io) points.
func (t *Table) Entries() int { return len(t.entries) }

// MaxIR returns the maximum IR drop in volts for the given per-die counts
// at per-die I/O activity io. The io is rounded UP to the nearest covered
// level (conservative for constraint checks); counts above MaxPerDie or a
// mismatched die count return an error.
func (t *Table) MaxIR(counts []int, io float64) (float64, error) {
	if len(counts) != t.Dies {
		return 0, fmt.Errorf("lut: %d dies, table covers %d", len(counts), t.Dies)
	}
	for _, c := range counts {
		if c < 0 || c > t.MaxPerDie {
			return 0, fmt.Errorf("lut: count %d outside [0,%d]", c, t.MaxPerDie)
		}
	}
	level := t.IOLevels[len(t.IOLevels)-1]
	for i := len(t.IOLevels) - 1; i >= 0; i-- {
		if t.IOLevels[i] >= io-1e-12 {
			level = t.IOLevels[i]
		} else {
			break
		}
	}
	v, ok := t.entries[key(counts, level)]
	if !ok {
		return 0, fmt.Errorf("lut: missing entry for %v@%g", counts, level)
	}
	return v, nil
}

// WorstIR returns the largest IR drop stored in the table.
func (t *Table) WorstIR() float64 {
	var mx float64
	for _, v := range t.entries {
		if v > mx {
			mx = v
		}
	}
	return mx
}

func key(counts []int, io float64) string {
	var sb strings.Builder
	for i, c := range counts {
		if i > 0 {
			sb.WriteByte('-')
		}
		sb.WriteString(strconv.Itoa(c))
	}
	fmt.Fprintf(&sb, "@%.4f", io)
	return sb.String()
}
