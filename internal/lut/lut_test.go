package lut

import (
	"errors"
	"math"
	"reflect"
	"sync"
	"testing"

	"pdn3d/internal/bench3d"
	"pdn3d/internal/irdrop"
)

var (
	sharedOnce     sync.Once
	sharedAnalyzer *irdrop.Analyzer
	sharedTable    *Table
	sharedErr      error
)

func coarseAnalyzer(t testing.TB) *irdrop.Analyzer {
	t.Helper()
	sharedSetup(t)
	return sharedAnalyzer
}

// sharedTableFor builds the default table once; the expensive 243 solves
// dominate this package's test time otherwise.
func sharedTableFor(t testing.TB) *Table {
	t.Helper()
	sharedSetup(t)
	return sharedTable
}

func sharedSetup(t testing.TB) {
	t.Helper()
	sharedOnce.Do(func() {
		b, err := bench3d.StackedDDR3Off()
		if err != nil {
			sharedErr = err
			return
		}
		spec := b.Spec.Clone()
		spec.MeshPitch = 0.6
		sharedAnalyzer, sharedErr = irdrop.New(spec, b.DRAMPower, nil)
		if sharedErr != nil {
			return
		}
		sharedTable, sharedErr = Build(sharedAnalyzer, 2, DefaultIOLevels())
	})
	if sharedErr != nil {
		t.Fatal(sharedErr)
	}
}

func TestBuildCoversAllStates(t *testing.T) {
	table := sharedTableFor(t)
	if want := 81 * 3; table.Entries() != want {
		t.Fatalf("entries = %d, want %d (3^4 states x 3 IO levels)", table.Entries(), want)
	}
	if table.Dies != 4 || table.MaxPerDie != 2 {
		t.Errorf("table geometry %d dies / %d max, want 4/2", table.Dies, table.MaxPerDie)
	}
}

func TestLookupMonotoneInBanksAndIO(t *testing.T) {
	table := sharedTableFor(t)
	v1, err := table.MaxIR([]int{0, 0, 0, 1}, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := table.MaxIR([]int{0, 0, 0, 2}, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if v2 <= v1 {
		t.Errorf("two banks (%.2f mV) should exceed one (%.2f mV)", v2*1000, v1*1000)
	}
	lo, _ := table.MaxIR([]int{0, 0, 0, 2}, 0.25)
	hi, _ := table.MaxIR([]int{0, 0, 0, 2}, 1.0)
	if hi <= lo {
		t.Errorf("IR at 100%% IO (%.2f) should exceed 25%% (%.2f)", hi*1000, lo*1000)
	}
}

func TestLookupRoundsIOUp(t *testing.T) {
	table := sharedTableFor(t)
	// 1/3 is not a level: must round UP to 0.5 (conservative).
	third, err := table.MaxIR([]int{2, 2, 2, 0}, 1.0/3)
	if err != nil {
		t.Fatal(err)
	}
	half, err := table.MaxIR([]int{2, 2, 2, 0}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(third-half) > 1e-15 {
		t.Errorf("io=1/3 lookup %.4f should equal the 0.5 level %.4f", third, half)
	}
	// Above the top level clamps to the top level.
	top, _ := table.MaxIR([]int{0, 0, 0, 2}, 1.0)
	over, err := table.MaxIR([]int{0, 0, 0, 2}, 0.999999)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(over-top) > 1e-15 {
		t.Error("io just under 1.0 should use the 1.0 level")
	}
}

// Every miss path is a typed *NotCoveredError wrapping ErrNotCovered and
// carrying the offending key, so callers can branch (HTTP 422, policy
// miss counters) and report the point without string matching.
func TestLookupErrorsAreTyped(t *testing.T) {
	table := sharedTableFor(t)
	tests := []struct {
		name   string
		counts []int
		io     float64
	}{
		{"wrong die count", []int{0, 0, 0}, 1.0},
		{"count above MaxPerDie", []int{0, 0, 0, 3}, 1.0},
		{"negative count", []int{0, 0, 0, -1}, 1.0},
		{"io above top level", []int{0, 0, 0, 2}, 1.5},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			_, err := table.MaxIR(tc.counts, tc.io)
			if err == nil {
				t.Fatal("want error")
			}
			if !errors.Is(err, ErrNotCovered) {
				t.Fatalf("error %v does not wrap ErrNotCovered", err)
			}
			var nce *NotCoveredError
			if !errors.As(err, &nce) {
				t.Fatalf("error %v is not a *NotCoveredError", err)
			}
			if !reflect.DeepEqual(nce.Counts, tc.counts) || nce.IO != tc.io {
				t.Errorf("error key = %v@%g, want %v@%g", nce.Counts, nce.IO, tc.counts, tc.io)
			}
		})
	}
}

// Points dumps the grid deterministically: lexicographic states, ascending
// IO levels, full coverage.
func TestPointsDeterministicAndComplete(t *testing.T) {
	table := sharedTableFor(t)
	pts := table.Points()
	if len(pts) != table.Entries() {
		t.Fatalf("Points returned %d entries, table has %d", len(pts), table.Entries())
	}
	for i := 1; i < len(pts); i++ {
		a, b := pts[i-1], pts[i]
		cmp := 0
		for d := range a.Counts {
			if a.Counts[d] != b.Counts[d] {
				cmp = a.Counts[d] - b.Counts[d]
				break
			}
		}
		if cmp > 0 || (cmp == 0 && a.IO >= b.IO) {
			t.Fatalf("points out of order at %d: %v@%g then %v@%g", i, a.Counts, a.IO, b.Counts, b.IO)
		}
	}
	for _, p := range pts {
		v, err := table.MaxIR(p.Counts, p.IO)
		if err != nil || v != p.MaxIR {
			t.Fatalf("point %v@%g disagrees with MaxIR: %g vs %g (%v)", p.Counts, p.IO, p.MaxIR, v, err)
		}
	}
}

func TestBuildValidation(t *testing.T) {
	a := coarseAnalyzer(t)
	if _, err := Build(a, 0, DefaultIOLevels()); err == nil {
		t.Error("maxPerDie 0: want error")
	}
	if _, err := Build(a, 2, nil); err == nil {
		t.Error("no IO levels: want error")
	}
	if _, err := Build(a, 2, []float64{0, 0.5}); err == nil {
		t.Error("IO level 0: want error")
	}
	if _, err := Build(a, 2, []float64{0.5, 1.5}); err == nil {
		t.Error("IO level > 1: want error")
	}
}

func TestWorstIRIsFullActivity(t *testing.T) {
	table := sharedTableFor(t)
	worst := table.WorstIR()
	if worst <= 0 {
		t.Fatal("worst IR must be positive")
	}
	full, err := table.MaxIR([]int{2, 2, 2, 2}, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if worst < full {
		t.Errorf("worst %.4f below the 2-2-2-2@100%% entry %.4f", worst, full)
	}
}
