// Package suppress implements the //pdnlint:ignore directive shared by
// every pdnlint analyzer.
//
// A directive has the form
//
//	//pdnlint:ignore <analyzer> <reason>
//
// and suppresses diagnostics of the named analyzer on a target range:
// the directive's own line when the comment trails code, or — when the
// comment stands alone — the statement or declaration beginning on the
// next line, however many lines it spans (so a directive above a
// multi-line call or composite literal waives diagnostics anywhere
// inside it). The reason is mandatory — a suppression with no
// justification is itself a finding. Directives that suppress nothing
// (stale after a refactor, or naming an unknown analyzer) are reported
// by the unusedsuppress check so dead waivers cannot accumulate.
package suppress

import (
	"go/ast"
	"go/token"
	"strings"
)

// Prefix starts every suppression directive.
const Prefix = "//pdnlint:ignore"

// Directive is one parsed //pdnlint:ignore comment.
type Directive struct {
	// Pos is the comment's position, used when reporting the directive
	// itself (malformed, stale, or unknown-analyzer findings).
	Pos token.Pos
	// Analyzer is the analyzer name the directive waives.
	Analyzer string
	// Reason is the justification text. Empty marks a malformed
	// directive; malformed directives never suppress anything.
	Reason string
	// File is the file name the directive appears in.
	File string
	// TargetLine is the first line whose diagnostics the directive
	// waives.
	TargetLine int
	// TargetEnd is the last waived line, inclusive. It equals TargetLine
	// except for standalone directives preceding a multi-line statement
	// or declaration, where it is the line the statement ends on.
	TargetEnd int
	// Used records whether the directive suppressed at least one
	// diagnostic in this run.
	Used bool
}

// ParseFile extracts the directives of one parsed file. src is the
// file's source, used to decide whether a directive trails code on its
// line (target = same line) or stands alone (target = next line).
func ParseFile(fset *token.FileSet, f *ast.File, src []byte) []*Directive {
	var out []*Directive
	lines := strings.Split(string(src), "\n")
	for _, group := range f.Comments {
		for _, c := range group.List {
			if !strings.HasPrefix(c.Text, Prefix) {
				continue
			}
			pos := fset.Position(c.Pos())
			d := &Directive{
				Pos:        c.Pos(),
				File:       pos.Filename,
				TargetLine: pos.Line,
			}
			rest := strings.TrimPrefix(c.Text, Prefix)
			// A directive only counts if the prefix is the whole
			// comment word ("//pdnlint:ignoreX" is not a directive).
			if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
				continue
			}
			// Strip an analysistest expectation sharing the comment, so
			// fixtures can pair a directive with a // want on one line.
			if i := strings.Index(rest, "// want "); i >= 0 {
				rest = rest[:i]
			}
			fields := strings.Fields(rest)
			if len(fields) >= 1 {
				d.Analyzer = fields[0]
			}
			if len(fields) >= 2 {
				d.Reason = strings.Join(fields[1:], " ")
			}
			d.TargetEnd = d.TargetLine
			if standsAlone(lines, pos.Line, pos.Column) {
				d.TargetLine = pos.Line + 1
				d.TargetEnd = statementEnd(fset, f, d.TargetLine)
			}
			out = append(out, d)
		}
	}
	return out
}

// standsAlone reports whether only whitespace precedes column col on
// 1-based line number line.
func standsAlone(lines []string, line, col int) bool {
	if line-1 < 0 || line-1 >= len(lines) {
		return false
	}
	prefix := lines[line-1]
	if col-1 < len(prefix) {
		prefix = prefix[:col-1]
	}
	return strings.TrimSpace(prefix) == ""
}

// statementEnd returns the last line of the outermost statement,
// declaration, or spec that starts on the given line, or line itself if
// none does. Pre-order traversal guarantees the first node whose start
// line matches is the outermost one, so a directive above
//
//	reg.Counter(
//		"bad name",
//	)
//
// covers all three lines.
func statementEnd(fset *token.FileSet, f *ast.File, line int) int {
	end := line
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil || end > line {
			return false
		}
		switch n.(type) {
		case ast.Stmt, ast.Decl, ast.Spec:
			if fset.Position(n.Pos()).Line == line {
				if e := fset.Position(n.End()).Line; e > end {
					end = e
				}
				return false
			}
		}
		return true
	})
	return end
}

// Match finds the directive (if any) that suppresses a diagnostic of the
// named analyzer at file:line, marking it used. Malformed directives
// (missing reason) never match.
func Match(dirs []*Directive, analyzer, file string, line int) *Directive {
	for _, d := range dirs {
		if d.Analyzer == analyzer && d.Reason != "" && d.File == file && line >= d.TargetLine && line <= d.TargetEnd {
			d.Used = true
			return d
		}
	}
	return nil
}
