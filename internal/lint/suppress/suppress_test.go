package suppress_test

import (
	"go/parser"
	"go/token"
	"testing"

	"pdn3d/internal/lint/suppress"
)

const src = `package p

func a() {
	x := 1 //pdnlint:ignore floateq trailing comment waives its own line
	_ = x
	//pdnlint:ignore walltime standalone comment waives the next line
	y := 2
	_ = y
	//pdnlint:ignore rawgo stripped tail // want "never seen"
	z := 3
	_ = z
	//pdnlint:ignore seededrand
	w := 4
	_ = w
	//pdnlint:ignoreX not a directive at all
}
`

func parse(t *testing.T) (*token.FileSet, []*suppress.Directive) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return fset, suppress.ParseFile(fset, f, []byte(src))
}

func TestParseFile(t *testing.T) {
	_, dirs := parse(t)
	want := []struct {
		analyzer, reason string
		target           int
	}{
		{"floateq", "trailing comment waives its own line", 4},
		{"walltime", "standalone comment waives the next line", 7},
		{"rawgo", "stripped tail", 10},
		{"seededrand", "", 13}, // malformed: no reason
	}
	if len(dirs) != len(want) {
		t.Fatalf("got %d directives, want %d: %+v", len(dirs), len(want), dirs)
	}
	for i, w := range want {
		d := dirs[i]
		if d.Analyzer != w.analyzer || d.Reason != w.reason || d.TargetLine != w.target {
			t.Errorf("directive %d = {%s %q line %d}, want {%s %q line %d}",
				i, d.Analyzer, d.Reason, d.TargetLine, w.analyzer, w.reason, w.target)
		}
	}
}

func TestMatch(t *testing.T) {
	_, dirs := parse(t)

	if d := suppress.Match(dirs, "floateq", "p.go", 4); d == nil {
		t.Error("trailing directive did not match its own line")
	} else if !d.Used {
		t.Error("matched directive not marked used")
	}
	if suppress.Match(dirs, "floateq", "p.go", 5) != nil {
		t.Error("trailing directive matched the following line")
	}
	if suppress.Match(dirs, "walltime", "p.go", 7) == nil {
		t.Error("standalone directive did not match the next line")
	}
	if suppress.Match(dirs, "walltime", "p.go", 6) != nil {
		t.Error("standalone directive matched its own line")
	}
	if suppress.Match(dirs, "rawgo", "other.go", 10) != nil {
		t.Error("directive matched a different file")
	}
	if suppress.Match(dirs, "seededrand", "p.go", 13) != nil {
		t.Error("malformed directive (no reason) suppressed a diagnostic")
	}
}

const multiSrc = `package p

func a(xs []float64) bool {
	//pdnlint:ignore floateq the tolerance ladder is compared exactly by design
	eq := xs[0] == 0.5 ||
		xs[1] == 0.25 ||
		xs[2] == 0.125
	return eq
}

func b() int {
	x := 1 //pdnlint:ignore walltime trailing form covers one line only
	return x
}
`

// TestMatchMultiLineStatement checks that a standalone directive covers
// the whole statement that starts on the next line, not just its first
// line: analyzers report at the operand's position, which for a wrapped
// expression can be lines below the statement opener.
func TestMatchMultiLineStatement(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", multiSrc, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	dirs := suppress.ParseFile(fset, f, []byte(multiSrc))
	if len(dirs) != 2 {
		t.Fatalf("got %d directives, want 2", len(dirs))
	}
	if d := dirs[0]; d.TargetLine != 5 || d.TargetEnd != 7 {
		t.Fatalf("standalone directive covers %d..%d, want 5..7 (the full statement)", d.TargetLine, d.TargetEnd)
	}
	for line := 5; line <= 7; line++ {
		if suppress.Match(dirs, "floateq", "p.go", line) == nil {
			t.Errorf("line %d of the wrapped statement is not covered", line)
		}
	}
	if suppress.Match(dirs, "floateq", "p.go", 8) != nil {
		t.Error("directive leaked past the end of the statement")
	}
	if d := dirs[1]; d.TargetLine != 12 || d.TargetEnd != 12 {
		t.Errorf("trailing directive covers %d..%d, want exactly its own line 12", d.TargetLine, d.TargetEnd)
	}
}
