// Package dataflow is the intra-procedural analysis substrate under
// pdnlint's dataflow-aware analyzers (lockbalance, obscontract,
// ctxflow). It provides a CFG-lite — per-function basic blocks over
// go/ast statements, successors following structured control flow — and
// a generic forward worklist solver that runs a transfer function to
// fixpoint over it. The graph is deliberately modest: no expression
// -level nodes, no branch-condition sensitivity, panics ignored. That is
// enough to answer the questions the suite asks ("is this mutex
// definitely held here", "is this span still open at this return") with
// must/may precision and without false paths through straight-line
// code.
package dataflow

import (
	"go/ast"
	"go/token"
)

// Block is one basic block: statements executed in order, then a
// transfer of control to one of Succs. The synthetic exit block has no
// nodes; falling off the end of a function, and every return, reaches
// it.
type Block struct {
	// Nodes are the statements of the block in execution order. If,
	// for, switch, and select headers contribute their init/condition
	// statements to the block that evaluates them; the composite
	// statement node itself (e.g. *ast.SelectStmt, *ast.RangeStmt) is
	// also present, marking the point where the header's own effect
	// (channel operation, iteration) happens.
	Nodes []ast.Node
	// Succs are the possible control-flow successors.
	Succs []*Block
	// Index is the block's position in Graph.Blocks (deterministic
	// construction order).
	Index int
}

// Graph is one function body's control-flow graph.
type Graph struct {
	Blocks []*Block
	// Entry receives control on function entry.
	Entry *Block
	// Exit is the synthetic sink: returns, gotos the builder cannot
	// resolve, and the fall-off-the-end path all lead here.
	Exit *Block
}

// Build constructs the CFG of a function body. A nil body (declarations
// without bodies) yields a graph whose entry is the exit.
func Build(body *ast.BlockStmt) *Graph {
	g := &Graph{}
	b := &builder{g: g}
	g.Exit = b.newBlock() // index 0, filled with edges as returns appear
	g.Entry = b.newBlock()
	b.cur = g.Entry
	if body != nil {
		b.stmts(body.List)
	}
	// Fall off the end: implicit return.
	b.edge(b.cur, g.Exit)
	return g
}

// loopFrame tracks where break and continue jump inside one loop,
// switch, or select; label is set when the statement is labeled.
type loopFrame struct {
	label      string
	breakTo    *Block
	continueTo *Block // nil for switch/select frames
	isLoop     bool
}

type builder struct {
	g      *Graph
	cur    *Block
	frames []*loopFrame
	// pendingLabel names the label attached to the next loop/switch/
	// select statement.
	pendingLabel string
}

func (b *builder) newBlock() *Block {
	blk := &Block{Index: len(b.g.Blocks)}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

func (b *builder) edge(from, to *Block) {
	for _, s := range from.Succs {
		if s == to {
			return
		}
	}
	from.Succs = append(from.Succs, to)
}

func (b *builder) stmts(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

// takeLabel consumes the pending label for the statement that owns it.
func (b *builder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

func (b *builder) push(f *loopFrame) { b.frames = append(b.frames, f) }
func (b *builder) pop()              { b.frames = b.frames[:len(b.frames)-1] }

// frameFor resolves a break/continue target: the innermost matching
// frame, or the one carrying the label.
func (b *builder) frameFor(label string, needLoop bool) *loopFrame {
	for i := len(b.frames) - 1; i >= 0; i-- {
		f := b.frames[i]
		if needLoop && !f.isLoop {
			continue
		}
		if label == "" || f.label == label {
			return f
		}
	}
	return nil
}

func (b *builder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmts(s.List)

	case *ast.LabeledStmt:
		b.pendingLabel = s.Label.Name
		b.stmt(s.Stmt)
		b.pendingLabel = ""

	case *ast.ReturnStmt:
		b.cur.Nodes = append(b.cur.Nodes, s)
		b.edge(b.cur, b.g.Exit)
		b.cur = b.newBlock() // anything after is dead code

	case *ast.BranchStmt:
		b.branch(s)

	case *ast.IfStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.cur.Nodes = append(b.cur.Nodes, s) // marks condition evaluation
		cond := b.cur
		after := b.newBlock()
		then := b.newBlock()
		b.edge(cond, then)
		b.cur = then
		b.stmts(s.Body.List)
		b.edge(b.cur, after)
		if s.Else != nil {
			els := b.newBlock()
			b.edge(cond, els)
			b.cur = els
			b.stmt(s.Else)
			b.edge(b.cur, after)
		} else {
			b.edge(cond, after)
		}
		b.cur = after

	case *ast.ForStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.stmt(s.Init)
		}
		head := b.newBlock()
		body := b.newBlock()
		post := b.newBlock()
		after := b.newBlock()
		b.edge(b.cur, head)
		b.edge(head, body)
		if s.Cond != nil {
			head.Nodes = append(head.Nodes, s) // condition evaluation point
			b.edge(head, after)
		}
		b.push(&loopFrame{label: label, breakTo: after, continueTo: post, isLoop: true})
		b.cur = body
		b.stmts(s.Body.List)
		b.edge(b.cur, post)
		b.cur = post
		if s.Post != nil {
			b.stmt(s.Post)
		}
		b.edge(b.cur, head)
		b.pop()
		b.cur = after

	case *ast.RangeStmt:
		label := b.takeLabel()
		head := b.newBlock()
		body := b.newBlock()
		after := b.newBlock()
		head.Nodes = append(head.Nodes, s) // iteration variable assignment
		b.edge(b.cur, head)
		b.edge(head, body)
		b.edge(head, after)
		b.push(&loopFrame{label: label, breakTo: after, continueTo: head, isLoop: true})
		b.cur = body
		b.stmts(s.Body.List)
		b.edge(b.cur, head)
		b.pop()
		b.cur = after

	case *ast.SwitchStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.cur.Nodes = append(b.cur.Nodes, s)
		b.caseClauses(label, s.Body.List)

	case *ast.TypeSwitchStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.cur.Nodes = append(b.cur.Nodes, s) // includes the Assign
		b.caseClauses(label, s.Body.List)

	case *ast.SelectStmt:
		label := b.takeLabel()
		b.cur.Nodes = append(b.cur.Nodes, s) // the blocking point
		b.caseClauses(label, s.Body.List)

	default:
		// Plain statements: assign, expr, send, inc/dec, defer, go,
		// decl, empty. All effects happen in order within the block.
		b.cur.Nodes = append(b.cur.Nodes, s)
	}
}

// caseClauses wires the clause bodies of a switch or select: every
// clause is entered from the header block, every clause exit reaches
// the after block, and fallthrough chains switch clauses together.
func (b *builder) caseClauses(label string, clauses []ast.Stmt) {
	head := b.cur
	after := b.newBlock()
	b.push(&loopFrame{label: label, breakTo: after})
	hasDefault := false
	blocks := make([]*Block, len(clauses))
	var bodies [][]ast.Stmt
	for i, c := range clauses {
		blocks[i] = b.newBlock()
		b.edge(head, blocks[i])
		switch c := c.(type) {
		case *ast.CaseClause:
			if c.List == nil {
				hasDefault = true
			}
			bodies = append(bodies, c.Body)
		case *ast.CommClause:
			if c.Comm == nil {
				hasDefault = true
			} else {
				blocks[i].Nodes = append(blocks[i].Nodes, c.Comm)
			}
			bodies = append(bodies, c.Body)
		}
	}
	for i := range blocks {
		b.cur = blocks[i]
		b.stmts(bodies[i])
		if ft := fallthroughTarget(bodies[i]); ft && i+1 < len(blocks) {
			b.edge(b.cur, blocks[i+1])
		} else {
			b.edge(b.cur, after)
		}
	}
	// A switch with no default (or an empty clause list) can skip every
	// clause. A select with no default cannot skip — but modeling the
	// extra edge only widens may-states, so it stays for uniformity.
	if !hasDefault || len(clauses) == 0 {
		b.edge(head, after)
	}
	b.pop()
	b.cur = after
}

// HeaderOnly returns the sub-nodes of n that execute at n's position in
// its block. Composite control-flow statements appear in the block that
// evaluates their header, but their nested bodies live in other blocks;
// a transfer function that walked the whole node would attribute nested
// effects to the header. For those statements only the header
// expressions are returned (a select returns none — the node itself is
// the blocking marker; its comm statements live in the clause blocks).
// Any other node executes wholly in place and is returned as-is.
func HeaderOnly(n ast.Node) []ast.Node {
	switch n := n.(type) {
	case *ast.IfStmt:
		return []ast.Node{n.Cond}
	case *ast.ForStmt:
		if n.Cond != nil {
			return []ast.Node{n.Cond}
		}
		return nil
	case *ast.RangeStmt:
		return []ast.Node{n.X}
	case *ast.SwitchStmt:
		if n.Tag != nil {
			return []ast.Node{n.Tag}
		}
		return nil
	case *ast.TypeSwitchStmt:
		return []ast.Node{n.Assign}
	case *ast.SelectStmt:
		return nil
	default:
		return []ast.Node{n}
	}
}

// InspectHeader applies f to every node in the executed-here portion of
// n (see HeaderOnly), in source order.
func InspectHeader(n ast.Node, f func(ast.Node) bool) {
	for _, h := range HeaderOnly(n) {
		ast.Inspect(h, f)
	}
}

// fallthroughTarget reports whether a clause body ends in fallthrough.
func fallthroughTarget(body []ast.Stmt) bool {
	if len(body) == 0 {
		return false
	}
	br, ok := body[len(body)-1].(*ast.BranchStmt)
	return ok && br.Tok == token.FALLTHROUGH
}

func (b *builder) branch(s *ast.BranchStmt) {
	label := ""
	if s.Label != nil {
		label = s.Label.Name
	}
	switch s.Tok {
	case token.BREAK:
		if f := b.frameFor(label, false); f != nil {
			b.edge(b.cur, f.breakTo)
		} else {
			b.edge(b.cur, b.g.Exit)
		}
		b.cur = b.newBlock()
	case token.CONTINUE:
		if f := b.frameFor(label, true); f != nil && f.continueTo != nil {
			b.edge(b.cur, f.continueTo)
		} else {
			b.edge(b.cur, b.g.Exit)
		}
		b.cur = b.newBlock()
	case token.GOTO:
		// Unstructured; the builder gives up and routes to exit, which
		// keeps analyses sound for the code this module allows (rawgo
		// culture: no gotos in the tree).
		b.edge(b.cur, b.g.Exit)
		b.cur = b.newBlock()
	case token.FALLTHROUGH:
		// Edge added by caseClauses; nothing to do here.
	}
}

// maxForwardIterations bounds the worklist so a non-monotone transfer
// function cannot hang the linter; 64 visits per block is far beyond
// any lattice height the suite uses.
const maxForwardIterations = 64

// Forward runs a forward dataflow analysis to fixpoint and returns the
// IN state of every reachable block. entry seeds the entry block; meet
// joins states at control-flow merges (intersection for must-analyses,
// union for may-analyses); equal detects convergence; transfer applies
// one node's effect and must treat its input as immutable (return a
// fresh value when anything changes).
func Forward[S any](g *Graph, entry S, meet func(S, S) S, equal func(S, S) bool, transfer func(S, ast.Node) S) map[*Block]S {
	in := map[*Block]S{g.Entry: entry}
	visits := map[*Block]int{}
	work := []*Block{g.Entry}
	for len(work) > 0 {
		blk := work[0]
		work = work[1:]
		if visits[blk]++; visits[blk] > maxForwardIterations {
			continue
		}
		out := in[blk]
		for _, n := range blk.Nodes {
			out = transfer(out, n)
		}
		for _, succ := range blk.Succs {
			prev, seen := in[succ]
			next := out
			if seen {
				next = meet(prev, out)
				if equal(prev, next) {
					continue
				}
			}
			in[succ] = next
			work = append(work, succ)
		}
	}
	return in
}

// EachNodeState replays the transfer function through one block,
// calling visit with the state in force immediately before each node.
// Analyzers use it after Forward to inspect the state at specific
// program points (a blocking call, a return).
func EachNodeState[S any](blk *Block, in S, transfer func(S, ast.Node) S, visit func(n ast.Node, before S)) S {
	st := in
	for _, n := range blk.Nodes {
		visit(n, st)
		st = transfer(st, n)
	}
	return st
}
