package dataflow

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Derived computes the flow-insensitive closure of value derivation
// inside body: starting from the seed objects, a variable becomes
// derived when it is assigned an expression that mentions (uses) an
// already-derived object and keep accepts the variable. Iterated to
// fixpoint, so chains like
//
//	fctx := obs.WithSpan(ctx, sp)
//	cctx, cancel := context.WithTimeout(fctx, d)
//
// mark fctx and cctx derived from ctx. Flow-insensitivity
// over-approximates (an assignment later in the function derives the
// variable everywhere), which is the safe direction for "does the
// request context reach this call" checks: a value wrongly considered
// derived can only hide a finding on an exotic reassignment pattern,
// never invent one.
func Derived(info *types.Info, body ast.Node, seeds []types.Object, keep func(obj types.Object) bool) map[types.Object]bool {
	derived := map[types.Object]bool{}
	for _, s := range seeds {
		if s != nil {
			derived[s] = true
		}
	}
	mentions := func(e ast.Expr) bool {
		found := false
		ast.Inspect(e, func(n ast.Node) bool {
			if found {
				return false
			}
			if id, ok := n.(*ast.Ident); ok {
				if obj := info.Uses[id]; obj != nil && derived[obj] {
					found = true
				}
			}
			return true
		})
		return found
	}
	lhsObj := func(e ast.Expr) types.Object {
		id, ok := e.(*ast.Ident)
		if !ok {
			return nil
		}
		if obj := info.Defs[id]; obj != nil {
			return obj
		}
		return info.Uses[id]
	}
	mark := func(e ast.Expr) bool {
		obj := lhsObj(e)
		if obj == nil || derived[obj] || (keep != nil && !keep(obj)) {
			return false
		}
		derived[obj] = true
		return true
	}
	for changed := true; changed; {
		changed = false
		ast.Inspect(body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				if n.Tok != token.ASSIGN && n.Tok != token.DEFINE {
					return true
				}
				if len(n.Lhs) == len(n.Rhs) {
					for i, rhs := range n.Rhs {
						if mentions(rhs) && mark(n.Lhs[i]) {
							changed = true
						}
					}
				} else if len(n.Rhs) == 1 && mentions(n.Rhs[0]) {
					// Tuple assignment: every eligible LHS derives.
					for _, lhs := range n.Lhs {
						if mark(lhs) {
							changed = true
						}
					}
				}
			case *ast.ValueSpec:
				for _, rhs := range n.Values {
					if !mentions(rhs) {
						continue
					}
					for _, name := range n.Names {
						if mark(name) {
							changed = true
						}
					}
				}
			}
			return true
		})
	}
	return derived
}
