package dataflow

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"sort"
	"strings"
	"testing"
)

// parseBody parses src as a file and returns the body of the function
// named fn along with the fileset.
func parseBody(t *testing.T, src, fn string) (*token.FileSet, *ast.BlockStmt) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == fn {
			return fset, fd.Body
		}
	}
	t.Fatalf("function %s not found", fn)
	return nil, nil
}

// collectCalls lists the callee names appearing in a block's nodes, in
// order, for structural assertions.
func collectCalls(blk *Block) []string {
	var names []string
	for _, n := range blk.Nodes {
		InspectHeader(n, func(n ast.Node) bool {
			if c, ok := n.(*ast.CallExpr); ok {
				if id, ok := c.Fun.(*ast.Ident); ok {
					names = append(names, id.Name)
				}
			}
			return true
		})
	}
	return names
}

func allCalls(g *Graph) []string {
	var names []string
	for _, blk := range g.Blocks {
		names = append(names, collectCalls(blk)...)
	}
	sort.Strings(names)
	return names
}

// reachable walks successor edges from entry.
func reachable(g *Graph) map[*Block]bool {
	seen := map[*Block]bool{}
	var walk func(*Block)
	walk = func(b *Block) {
		if seen[b] {
			return
		}
		seen[b] = true
		for _, s := range b.Succs {
			walk(s)
		}
	}
	walk(g.Entry)
	return seen
}

func TestBuildStraightLine(t *testing.T) {
	_, body := parseBody(t, `package p
func f() { a(); b(); c() }
func a(); func b(); func c()`, "f")
	g := Build(body)
	if g.Entry == g.Exit {
		t.Fatal("entry should not be exit for a non-empty body")
	}
	got := collectCalls(g.Entry)
	if strings.Join(got, ",") != "a,b,c" {
		t.Fatalf("entry block calls = %v, want [a b c]", got)
	}
	if len(g.Entry.Succs) != 1 || g.Entry.Succs[0] != g.Exit {
		t.Fatalf("entry should fall through to exit, got succs %v", g.Entry.Succs)
	}
}

func TestBuildIfElse(t *testing.T) {
	_, body := parseBody(t, `package p
func f(x bool) {
	a()
	if x {
		b()
	} else {
		c()
	}
	d()
}
func a(); func b(); func c(); func d()`, "f")
	g := Build(body)
	seen := reachable(g)
	if !seen[g.Exit] {
		t.Fatal("exit unreachable")
	}
	// The condition block must have two successors (then, else) and no
	// direct edge to the merge block.
	cond := g.Entry
	if len(cond.Succs) != 2 {
		t.Fatalf("cond block succs = %d, want 2", len(cond.Succs))
	}
	// Both arms must reach the block containing d().
	var merge *Block
	for _, blk := range g.Blocks {
		for _, c := range collectCalls(blk) {
			if c == "d" {
				merge = blk
			}
		}
	}
	if merge == nil {
		t.Fatal("no block contains d()")
	}
	for _, arm := range cond.Succs {
		found := false
		for _, s := range arm.Succs {
			if s == merge {
				found = true
			}
		}
		if !found {
			t.Fatalf("arm %d does not reach merge", arm.Index)
		}
	}
}

func TestBuildIfNoElse(t *testing.T) {
	_, body := parseBody(t, `package p
func f(x bool) {
	if x {
		return
	}
	b()
}
func b()`, "f")
	g := Build(body)
	// cond has an edge around the then-arm straight to the after block.
	cond := g.Entry
	foundAfter := false
	for _, s := range cond.Succs {
		if len(collectCalls(s)) == 1 && collectCalls(s)[0] == "b" {
			foundAfter = true
		}
	}
	if !foundAfter {
		t.Fatal("if without else must edge from cond to after block")
	}
}

func TestBuildForLoop(t *testing.T) {
	_, body := parseBody(t, `package p
func f(n int) {
	for i := 0; i < n; i++ {
		if i == 3 {
			break
		}
		if i == 1 {
			continue
		}
		body()
	}
	after()
}
func body(); func after()`, "f")
	g := Build(body)
	seen := reachable(g)
	if !seen[g.Exit] {
		t.Fatal("exit unreachable through loop")
	}
	calls := allCalls(g)
	want := []string{"after", "body"}
	if strings.Join(calls, ",") != strings.Join(want, ",") {
		t.Fatalf("calls = %v, want %v", calls, want)
	}
	// The loop must contain a back edge: some reachable block has a
	// successor with a smaller index that is not the exit.
	back := false
	for blk := range seen {
		for _, s := range blk.Succs {
			if s.Index < blk.Index && s != g.Exit {
				back = true
			}
		}
	}
	if !back {
		t.Fatal("no back edge found in for loop")
	}
}

func TestBuildRangeAndSelect(t *testing.T) {
	_, body := parseBody(t, `package p
func f(xs []int, ch chan int) {
	for _, x := range xs {
		_ = x
	}
	select {
	case v := <-ch:
		_ = v
	default:
	}
}`, "f")
	g := Build(body)
	if !reachable(g)[g.Exit] {
		t.Fatal("exit unreachable")
	}
	// The range and select statements must appear as header nodes.
	var haveRange, haveSelect bool
	for _, blk := range g.Blocks {
		for _, n := range blk.Nodes {
			switch n.(type) {
			case *ast.RangeStmt:
				haveRange = true
			case *ast.SelectStmt:
				haveSelect = true
			}
		}
	}
	if !haveRange || !haveSelect {
		t.Fatalf("header nodes missing: range=%v select=%v", haveRange, haveSelect)
	}
}

func TestBuildSwitchFallthrough(t *testing.T) {
	_, body := parseBody(t, `package p
func f(x int) {
	switch x {
	case 1:
		a()
		fallthrough
	case 2:
		b()
	default:
		c()
	}
}
func a(); func b(); func c()`, "f")
	g := Build(body)
	// Find the blocks holding a() and b(); a's block must edge to b's.
	var ablk, bblk *Block
	for _, blk := range g.Blocks {
		for _, c := range collectCalls(blk) {
			switch c {
			case "a":
				ablk = blk
			case "b":
				bblk = blk
			}
		}
	}
	if ablk == nil || bblk == nil {
		t.Fatal("case blocks not found")
	}
	linked := false
	for _, s := range ablk.Succs {
		if s == bblk {
			linked = true
		}
	}
	if !linked {
		t.Fatal("fallthrough edge missing between case 1 and case 2")
	}
}

// TestForwardMustAnalysis runs a gen/kill fixpoint tracking whether
// lock() has definitely been called (must-analysis, intersection meet)
// and checks the state at each return.
func TestForwardMustAnalysis(t *testing.T) {
	_, body := parseBody(t, `package p
func f(x bool) {
	lock()
	if x {
		unlock()
		return
	}
	use()
	unlock()
}
func lock(); func unlock(); func use()`, "f")
	g := Build(body)

	type state struct{ held bool }
	callName := func(n ast.Node) string {
		var name string
		InspectHeader(n, func(n ast.Node) bool {
			if c, ok := n.(*ast.CallExpr); ok {
				if id, ok := c.Fun.(*ast.Ident); ok {
					name = id.Name
				}
			}
			return true
		})
		return name
	}
	transfer := func(s state, n ast.Node) state {
		switch callName(n) {
		case "lock":
			return state{held: true}
		case "unlock":
			return state{held: false}
		}
		return s
	}
	meet := func(a, b state) state { return state{held: a.held && b.held} }
	equal := func(a, b state) bool { return a == b }

	in := Forward(g, state{}, meet, equal, transfer)

	// At every edge into Exit the lock must be released: replay each
	// predecessor block and check its out-state.
	for _, blk := range g.Blocks {
		st, ok := in[blk]
		if !ok {
			continue // unreachable
		}
		out := EachNodeState(blk, st, transfer, func(ast.Node, state) {})
		for _, s := range blk.Succs {
			if s == g.Exit && out.held {
				t.Fatalf("block %d reaches exit with lock held", blk.Index)
			}
		}
	}

	// And at use() the lock must be held.
	for _, blk := range g.Blocks {
		st, ok := in[blk]
		if !ok {
			continue
		}
		EachNodeState(blk, st, transfer, func(n ast.Node, before state) {
			if callName(n) == "use" && !before.held {
				t.Fatal("use() reached without lock held")
			}
		})
	}
}

// TestForwardLoopConvergence checks the solver terminates and merges
// states around a loop whose body conditionally changes the state.
func TestForwardLoopConvergence(t *testing.T) {
	_, body := parseBody(t, `package p
func f(n int) {
	for i := 0; i < n; i++ {
		gen()
	}
	sink()
}
func gen(); func sink()`, "f")
	g := Build(body)

	// May-analysis: has gen() possibly run? (union meet)
	transfer := func(s bool, n ast.Node) bool {
		got := false
		InspectHeader(n, func(n ast.Node) bool {
			if c, ok := n.(*ast.CallExpr); ok {
				if id, ok := c.Fun.(*ast.Ident); ok && id.Name == "gen" {
					got = true
				}
			}
			return true
		})
		return s || got
	}
	in := Forward(g, false, func(a, b bool) bool { return a || b }, func(a, b bool) bool { return a == b }, transfer)

	// The block containing sink() must see may-state true (loop may have
	// executed) — union meet keeps the generated bit.
	for _, blk := range g.Blocks {
		for _, c := range collectCalls(blk) {
			if c == "sink" {
				if !in[blk] {
					t.Fatal("sink block should see gen-may-have-run = true")
				}
			}
		}
	}
	if _, ok := in[g.Exit]; !ok {
		t.Fatal("exit has no in-state; solver did not reach it")
	}
}

func TestBuildNilBody(t *testing.T) {
	g := Build(nil)
	if len(g.Entry.Succs) != 1 || g.Entry.Succs[0] != g.Exit {
		t.Fatal("nil body should produce entry -> exit")
	}
}

func TestDerived(t *testing.T) {
	fset := token.NewFileSet()
	src := `package p
import "context"
func with(ctx context.Context) context.Context { return ctx }
func f(ctx context.Context) {
	a := with(ctx)
	b, cancel := context.WithCancel(a)
	defer cancel()
	c := context.Background()
	_ = b
	_ = c
}`
	f, err := parser.ParseFile(fset, "x.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Defs:  map[*ast.Ident]types.Object{},
		Uses:  map[*ast.Ident]types.Object{},
		Types: map[ast.Expr]types.TypeAndValue{},
	}
	conf := types.Config{Importer: importer.Default()}
	pkg, err := conf.Check("p", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	_ = pkg

	var fn *ast.FuncDecl
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == "f" {
			fn = fd
		}
	}
	ctxObj := info.Defs[fn.Type.Params.List[0].Names[0]]
	if ctxObj == nil {
		t.Fatal("ctx param object not found")
	}
	derived := Derived(info, fn.Body, []types.Object{ctxObj}, nil)

	lookup := func(name string) types.Object {
		for id, obj := range info.Defs {
			if id.Name == name && obj != nil && obj.Parent() != nil {
				return obj
			}
		}
		return nil
	}
	for _, name := range []string{"a", "b"} {
		obj := lookup(name)
		if obj == nil {
			t.Fatalf("object %s not found", name)
		}
		if !derived[obj] {
			t.Errorf("%s should be derived from ctx", name)
		}
	}
	if obj := lookup("c"); obj != nil && derived[obj] {
		t.Error("c (context.Background) must not be derived")
	}
	// cancel derives too (tuple assignment) — that is the documented
	// over-approximation and is fine for ctxflow, which filters by type.
}
