// Package par stands in for the real internal/par: the one place
// allowed to start goroutines.
package par

// Pool is exempt by import path.
func Pool(workers int, f func()) {
	for i := 0; i < workers; i++ {
		go f()
	}
}
