package a

// spawnInTest is exempt: tests may spawn goroutines to provoke races.
func spawnInTest(f func()) {
	go f()
}
