package a

// spawn launches an unbounded goroutine and must be flagged.
func spawn(f func()) {
	go f() // want `bare go statement`
}

// waived carries a justified suppression.
func waived(f func()) {
	//pdnlint:ignore rawgo one-shot fire-and-forget logger, bounded by construction
	go f()
}

// call is plain synchronous code.
func call(f func()) {
	f()
}
