package rawgo_test

import (
	"testing"

	"pdn3d/internal/lint/analysis"
	"pdn3d/internal/lint/analysistest"
	"pdn3d/internal/lint/rawgo"
)

func TestRawgo(t *testing.T) {
	analysistest.Run(t, "testdata", []*analysis.Analyzer{rawgo.Analyzer}, "a", "internal/par")
}
