// Package rawgo forbids bare `go` statements outside the sanctioned
// concurrency layer. All production concurrency flows through
// internal/par's bounded worker pools (Sweep, Blocks, Group), which is
// what makes worker-count-independent determinism and prompt
// cancellation auditable in one place. Test files are exempt: tests
// legitimately spawn goroutines to provoke races and exercise the pool
// itself.
package rawgo

import (
	"go/ast"
	"strings"

	"pdn3d/internal/lint/analysis"
)

// Analyzer is the rawgo check.
var Analyzer = &analysis.Analyzer{
	Name: "rawgo",
	Doc: "flags go statements outside internal/par and _test.go files, " +
		"enforcing bounded-pool-only concurrency",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if strings.HasSuffix(pass.Path, "internal/par") {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if !pass.IsTestFile(gs.Pos()) {
				pass.Reportf(gs.Go,
					"bare go statement; route concurrency through internal/par (Sweep/Blocks/Group) so pools stay bounded and deterministic")
			}
			return true
		})
	}
	return nil
}
