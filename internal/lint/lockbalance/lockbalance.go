// Package lockbalance checks mutex discipline with an intra-procedural
// must/may dataflow over each function's CFG:
//
//   - every sync.Mutex/RWMutex Lock (and RLock) is released on every
//     return path, either by a matching Unlock on the path or by a
//     deferred Unlock registered before the return,
//   - no Unlock without a lock possibly held, and no Lock of a mutex
//     already definitely held (self-deadlock),
//   - no call to a blocking operation — a channel send/receive, a
//     select without default, sync.WaitGroup.Wait, sync.Cond.Wait,
//     time.Sleep, or any function known to block — while a mutex is
//     definitely held. "Known to block" travels as a fact on the
//     function object, computed transitively: par.Sweep blocks because
//     it waits on a channel, a solver entry that fans out through par
//     blocks because Sweep does, and a serve handler that called either
//     under a cache mutex would hold up every other request.
//
// Locks are named by the receiver expression ("r.mu", "g.mu"), so the
// analysis is syntactic about identity and sound only within one
// function — which matches how this codebase uses mutexes: acquire and
// release in the same function or via defer. Read locks are tracked
// separately ("r.mu[r]"). Test files are exempt (tests provoke
// contention on purpose).
package lockbalance

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"pdn3d/internal/lint/analysis"
	"pdn3d/internal/lint/dataflow"
)

// Analyzer is the lockbalance check.
var Analyzer = &analysis.Analyzer{
	Name: "lockbalance",
	Doc: "checks Lock/Unlock pairing on every return path, defer discipline, " +
		"and that no blocking operation (channel op, select, WaitGroup.Wait, " +
		"known-blocking callee) runs while a mutex is held",
	Run:       run,
	UsesFacts: true,
}

// BlockingFact marks a function that can block: it performs a channel
// operation, waits on a WaitGroup/Cond, sleeps, or calls a function
// that does.
type BlockingFact struct{}

// AFact implements analysis.Fact.
func (*BlockingFact) AFact() {}

func run(pass *analysis.Pass) error {
	exportBlocking(pass)
	for _, f := range pass.Files {
		if analysis.IsTestFilename(pass.Fset.Position(f.Pos()).Filename) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					checkFunc(pass, n.Body)
				}
			case *ast.FuncLit:
				checkFunc(pass, n.Body)
			}
			return true
		})
	}
	return nil
}

// exportBlocking computes which of this package's functions block,
// iterating to a fixpoint so same-package call chains converge, and
// exports a BlockingFact for each. Facts for imported packages already
// exist because the runner analyzes packages in dependency order.
func exportBlocking(pass *analysis.Pass) {
	type decl struct {
		obj  *types.Func
		body *ast.BlockStmt
	}
	var decls []decl
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fn, ok := d.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			obj, ok := pass.TypesInfo.Defs[fn.Name].(*types.Func)
			if !ok {
				continue
			}
			decls = append(decls, decl{obj, fn.Body})
		}
	}
	for changed := true; changed; {
		changed = false
		for _, d := range decls {
			var fact BlockingFact
			if pass.ImportObjectFact(d.obj, &fact) {
				continue
			}
			if bodyBlocks(pass, d.body) {
				pass.ExportObjectFact(d.obj, &BlockingFact{})
				changed = true
			}
		}
	}
}

// bodyBlocks reports whether executing body can block the calling
// goroutine. Function literals and go statements spawn or defer work
// elsewhere and do not block this body directly; a select with a
// default clause is a non-blocking poll, including its communication
// expressions.
func bodyBlocks(pass *analysis.Pass, body ast.Node) bool {
	blocks := false
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		if blocks || n == nil {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit, *ast.GoStmt:
			return false
		case *ast.SelectStmt:
			if selectHasDefault(n) {
				// Poll: comm clauses cannot block, but their bodies
				// still run.
				for _, c := range n.Body.List {
					if cc, ok := c.(*ast.CommClause); ok {
						for _, s := range cc.Body {
							ast.Inspect(s, walk)
						}
					}
				}
				return false
			}
			blocks = true
			return false
		case *ast.SendStmt:
			blocks = true
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				blocks = true
				return false
			}
		case *ast.RangeStmt:
			if tv, ok := pass.TypesInfo.Types[n.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					blocks = true
					return false
				}
			}
		case *ast.CallExpr:
			if callBlocks(pass, n) {
				blocks = true
				return false
			}
		}
		return true
	}
	ast.Inspect(body, walk)
	return blocks
}

func selectHasDefault(s *ast.SelectStmt) bool {
	for _, c := range s.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

// callBlocks reports whether a call is to a known-blocking function:
// sync.WaitGroup.Wait, sync.Cond.Wait, time.Sleep, or any function
// carrying a BlockingFact.
func callBlocks(pass *analysis.Pass, call *ast.CallExpr) bool {
	fn := analysis.CalleeFunc(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	switch fn.Pkg().Path() {
	case "time":
		return fn.Name() == "Sleep"
	case "sync":
		return fn.Name() == "Wait" // WaitGroup.Wait, Cond.Wait
	}
	var fact BlockingFact
	return pass.ImportObjectFact(fn, &fact)
}

// lockOp classifies one sync lock/unlock call.
type lockOp struct {
	key     string // receiver expression + "[r]" for read locks
	acquire bool
	pos     token.Pos
}

// lockCall resolves call as a sync.Mutex/RWMutex lock operation.
func lockCall(info *types.Info, call *ast.CallExpr) (lockOp, bool) {
	fn := analysis.CalleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return lockOp{}, false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return lockOp{}, false
	}
	key := types.ExprString(sel.X)
	switch fn.Name() {
	case "Lock":
		return lockOp{key: key, acquire: true, pos: call.Pos()}, true
	case "Unlock":
		return lockOp{key: key, acquire: false, pos: call.Pos()}, true
	case "RLock":
		return lockOp{key: key + "[r]", acquire: true, pos: call.Pos()}, true
	case "RUnlock":
		return lockOp{key: key + "[r]", acquire: false, pos: call.Pos()}, true
	}
	return lockOp{}, false
}

// lockState is the dataflow state: must (locks definitely held, with
// the earliest acquisition position for reporting), may (locks possibly
// held), and deferred (unlocks definitely registered via defer).
type lockState struct {
	must     map[string]token.Pos
	may      map[string]bool
	deferred map[string]bool
}

func (s lockState) clone() lockState {
	out := lockState{
		must:     make(map[string]token.Pos, len(s.must)),
		may:      make(map[string]bool, len(s.may)),
		deferred: make(map[string]bool, len(s.deferred)),
	}
	for k, v := range s.must {
		out.must[k] = v
	}
	for k := range s.may {
		out.may[k] = true
	}
	for k := range s.deferred {
		out.deferred[k] = true
	}
	return out
}

func meetLocks(a, b lockState) lockState {
	out := lockState{must: map[string]token.Pos{}, may: map[string]bool{}, deferred: map[string]bool{}}
	for k, p := range a.must {
		if q, ok := b.must[k]; ok {
			if q < p {
				p = q
			}
			out.must[k] = p
		}
	}
	for k := range a.may {
		out.may[k] = true
	}
	for k := range b.may {
		out.may[k] = true
	}
	for k := range a.deferred {
		if b.deferred[k] {
			out.deferred[k] = true
		}
	}
	return out
}

func equalLocks(a, b lockState) bool {
	if len(a.must) != len(b.must) || len(a.may) != len(b.may) || len(a.deferred) != len(b.deferred) {
		return false
	}
	for k := range a.must {
		if _, ok := b.must[k]; !ok {
			return false
		}
	}
	for k := range a.may {
		if !b.may[k] {
			return false
		}
	}
	for k := range a.deferred {
		if !b.deferred[k] {
			return false
		}
	}
	return true
}

// nodeOps extracts the lock operations and deferred unlocks one CFG
// node performs, in order. Function literals and go statements run on
// other goroutines (or later); their lock ops are not this node's.
func nodeOps(info *types.Info, n ast.Node) (ops []lockOp, defUnlocks []string, defLockPos map[string]token.Pos) {
	for _, h := range dataflow.HeaderOnly(n) {
		if d, ok := h.(*ast.DeferStmt); ok {
			if op, ok := lockCall(info, d.Call); ok {
				if op.acquire {
					// defer mu.Lock() is almost certainly a typo'd
					// unlock; surface it as an acquisition so the
					// held-at-return check fires.
					if defLockPos == nil {
						defLockPos = map[string]token.Pos{}
					}
					defLockPos[op.key] = op.pos
				} else {
					defUnlocks = append(defUnlocks, op.key)
				}
			}
			continue
		}
		ast.Inspect(h, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.FuncLit, *ast.GoStmt, *ast.DeferStmt:
				return false
			case *ast.CallExpr:
				if op, ok := lockCall(info, m); ok {
					ops = append(ops, op)
				}
			}
			return true
		})
	}
	return ops, defUnlocks, defLockPos
}

// checkFunc runs the lock dataflow over one function body.
func checkFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	info := pass.TypesInfo
	g := dataflow.Build(body)
	comms := commStmts(body)

	transfer := func(s lockState, n ast.Node) lockState {
		ops, defUnlocks, defLocks := nodeOps(info, n)
		if len(ops) == 0 && len(defUnlocks) == 0 && len(defLocks) == 0 {
			return s
		}
		out := s.clone()
		for _, op := range ops {
			if op.acquire {
				out.must[op.key] = op.pos
				out.may[op.key] = true
			} else {
				delete(out.must, op.key)
				delete(out.may, op.key)
			}
		}
		for _, k := range defUnlocks {
			out.deferred[k] = true
		}
		for k, p := range defLocks {
			out.must[k] = p
			out.may[k] = true
		}
		return out
	}

	entry := lockState{must: map[string]token.Pos{}, may: map[string]bool{}, deferred: map[string]bool{}}
	in := dataflow.Forward(g, entry, meetLocks, equalLocks, transfer)

	leaked := map[string]token.Pos{}
	for _, blk := range g.Blocks {
		st, ok := in[blk]
		if !ok {
			continue
		}
		out := dataflow.EachNodeState(blk, st, transfer, func(n ast.Node, before lockState) {
			reportAtNode(pass, n, before, comms)
		})
		for _, succ := range blk.Succs {
			if succ != g.Exit {
				continue
			}
			for k, p := range out.must {
				if out.deferred[k] {
					continue
				}
				if prev, dup := leaked[k]; !dup || p < prev {
					leaked[k] = p
				}
			}
		}
	}
	keys := make([]string, 0, len(leaked))
	for k := range leaked {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		pass.Reportf(leaked[k], "%s is locked here but not unlocked on every return path (add a defer or unlock before returning)", displayKey(k))
	}
}

// commStmts collects the comm statements of every select clause in
// body. They appear as their own CFG nodes, but the blocking semantics
// belong to the enclosing select (whose header Build already places as
// a node) — a chosen comm op is ready by definition, so it must not be
// double-counted as an independent blocking point.
func commStmts(body ast.Node) map[ast.Node]bool {
	comms := map[ast.Node]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		if sel, ok := n.(*ast.SelectStmt); ok {
			for _, cl := range sel.Body.List {
				if cc, ok := cl.(*ast.CommClause); ok && cc.Comm != nil {
					comms[cc.Comm] = true
				}
			}
		}
		return true
	})
	return comms
}

// reportAtNode emits the point diagnostics for one CFG node given the
// state in force immediately before it.
func reportAtNode(pass *analysis.Pass, n ast.Node, before lockState, comms map[ast.Node]bool) {
	info := pass.TypesInfo
	ops, _, _ := nodeOps(info, n)
	held := before.clone()
	for _, op := range ops {
		if op.acquire {
			if _, dup := held.must[op.key]; dup {
				pass.Reportf(op.pos, "%s is locked while already held; this deadlocks", displayKey(op.key))
			}
			held.must[op.key] = op.pos
			held.may[op.key] = true
		} else {
			if !held.may[op.key] {
				pass.Reportf(op.pos, "%s is unlocked but cannot be held here", displayKey(op.key))
			}
			delete(held.must, op.key)
			delete(held.may, op.key)
		}
	}
	if len(before.must) == 0 || comms[n] {
		return
	}
	if pos, blocking := blockingPoint(pass, n); blocking {
		keys := make([]string, 0, len(before.must))
		for k := range before.must {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			pass.Reportf(pos, "blocking operation while %s is held; release the lock first or move the blocking work out", displayKey(k))
		}
	}
}

// blockingPoint reports whether node n itself blocks, and where.
func blockingPoint(pass *analysis.Pass, n ast.Node) (token.Pos, bool) {
	switch s := n.(type) {
	case *ast.SelectStmt:
		if !selectHasDefault(s) {
			return s.Pos(), true
		}
		return token.NoPos, false
	case *ast.RangeStmt:
		if tv, ok := pass.TypesInfo.Types[s.X]; ok {
			if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
				return s.Pos(), true
			}
		}
		return token.NoPos, false
	}
	pos := token.NoPos
	for _, h := range dataflow.HeaderOnly(n) {
		ast.Inspect(h, func(m ast.Node) bool {
			if pos != token.NoPos {
				return false
			}
			switch m := m.(type) {
			case *ast.FuncLit, *ast.GoStmt, *ast.DeferStmt:
				return false
			case *ast.SendStmt:
				pos = m.Pos()
				return false
			case *ast.UnaryExpr:
				if m.Op == token.ARROW {
					pos = m.Pos()
					return false
				}
			case *ast.CallExpr:
				if callBlocks(pass, m) {
					pos = m.Pos()
					return false
				}
			}
			return true
		})
	}
	return pos, pos != token.NoPos
}

// displayKey renders a lock key for humans ("r.mu", "r.mu (read)").
func displayKey(k string) string {
	if len(k) > 3 && k[len(k)-3:] == "[r]" {
		return k[:len(k)-3] + " (read lock)"
	}
	return k
}
