package lockbalance_test

import (
	"testing"

	"pdn3d/internal/lint/analysis"
	"pdn3d/internal/lint/analysistest"
	"pdn3d/internal/lint/lockbalance"
)

func TestLockbalance(t *testing.T) {
	analysistest.Run(t, "testdata", []*analysis.Analyzer{lockbalance.Analyzer}, "a", "b")
}
