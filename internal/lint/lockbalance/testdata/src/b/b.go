// Package b exercises the cross-package BlockingFact: a.Wait parks on a
// channel, and that fact must travel to importing packages.
package b

import (
	"sync"

	"a"
)

type T struct {
	mu sync.Mutex
}

// bad calls a blocking function from package a while holding the lock.
func (t *T) bad(ch chan struct{}) {
	t.mu.Lock()
	a.Wait(ch) // want `blocking operation while t\.mu is held`
	t.mu.Unlock()
}

// good releases before parking.
func (t *T) good(ch chan struct{}) {
	t.mu.Lock()
	t.mu.Unlock()
	a.Wait(ch)
}
