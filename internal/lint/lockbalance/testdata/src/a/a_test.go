// Test files are exempt: tests may hold locks across assertions.
package a

import "testing"

func TestExempt(t *testing.T) {
	var s S
	s.mu.Lock()
	_ = s.n
}
