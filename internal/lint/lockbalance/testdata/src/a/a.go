// Package a exercises lockbalance: must-held tracking of sync.Mutex /
// sync.RWMutex pairs plus blocking operations under a held lock.
package a

import "sync"

type S struct {
	mu sync.Mutex
	n  int
}

// leak forgets the unlock on the early return.
func (s *S) leak(x bool) {
	s.mu.Lock() // want `s\.mu is locked here but not unlocked on every return path`
	if x {
		return
	}
	s.mu.Unlock()
}

// balanced releases on both paths.
func (s *S) balanced(x bool) {
	s.mu.Lock()
	if x {
		s.mu.Unlock()
		return
	}
	s.n++
	s.mu.Unlock()
}

// deferred is the idiomatic clean shape.
func (s *S) deferred() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n
}

// double re-acquires a non-reentrant mutex.
func (s *S) double() {
	s.mu.Lock()
	s.mu.Lock() // want `s\.mu is locked while already held; this deadlocks`
	s.mu.Unlock()
}

// spurious releases a lock that cannot be held.
func (s *S) spurious() {
	s.mu.Unlock() // want `s\.mu is unlocked but cannot be held here`
}

// blockingHeld parks on a channel receive with the mutex held.
func (s *S) blockingHeld(ch chan int) {
	s.mu.Lock()
	<-ch // want `blocking operation while s\.mu is held`
	s.mu.Unlock()
}

// blockingFree moves the channel send outside the critical section.
func (s *S) blockingFree(ch chan int) {
	s.mu.Lock()
	v := s.n
	s.mu.Unlock()
	ch <- v
}

// nonBlockingSelect is clean: a select with a default never parks.
func (s *S) nonBlockingSelect(ch chan int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case v := <-ch:
		s.n = v
	default:
	}
}

type R struct {
	mu sync.RWMutex
	m  map[string]int
}

// readLeak tracks read locks under their own key.
func (r *R) readLeak(k string) int {
	r.mu.RLock() // want `r\.mu \(read lock\) is locked here but not unlocked on every return path`
	return r.m[k]
}

// readBalanced is the clean RLock shape.
func (r *R) readBalanced(k string) int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.m[k]
}

// Wait is an exported helper that parks; callers in other packages
// learn this through the exported BlockingFact.
func Wait(ch chan struct{}) {
	<-ch
}

// transitive reaches a blocking operation through a same-package call.
func (s *S) transitive(ch chan struct{}) {
	s.mu.Lock()
	Wait(ch) // want `blocking operation while s\.mu is held`
	s.mu.Unlock()
}

// waived documents an intentional park under the lock.
func (s *S) waived(ch chan int) {
	s.mu.Lock()
	//pdnlint:ignore lockbalance startup handshake holds the init lock by design
	<-ch
	s.mu.Unlock()
}
