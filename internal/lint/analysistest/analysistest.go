// Package analysistest runs pdnlint analyzers over fixture packages and
// checks their diagnostics against // want expectations, in the style
// of golang.org/x/tools/go/analysis/analysistest (which the
// zero-dependency module cannot vendor).
//
// Fixtures live under <testdata>/src/<pkg>/ and are plain Go packages.
// A line that should trigger a diagnostic carries a trailing
// expectation comment holding one quoted regular expression per
// expected diagnostic:
//
//	rand.Float64() // want `unseeded`
//
// Both backquoted and double-quoted forms are accepted. Expectations
// match any analyzer in the suite under test; a run fails if a
// diagnostic has no matching expectation on its line or an expectation
// matches no diagnostic.
package analysistest

import (
	"fmt"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"pdn3d/internal/lint"
	"pdn3d/internal/lint/analysis"
	"pdn3d/internal/lint/load"
)

// Run loads the fixture packages named by pkgs from testdata/src,
// applies the analyzers (suppression directives included, exactly as in
// CI), and reports expectation mismatches through t.
func Run(t *testing.T, testdata string, analyzers []*analysis.Analyzer, pkgs ...string) {
	t.Helper()
	prog, err := load.LoadDir(filepath.Join(testdata, "src"), pkgs...)
	if err != nil {
		t.Fatalf("loading fixtures: %v", err)
	}
	findings, err := lint.Run(prog, analyzers)
	if err != nil {
		t.Fatalf("running analyzers: %v", err)
	}

	want := map[string][]*expectation{}
	var files []string
	for _, pkg := range prog.Packages {
		names := make([]string, 0, len(pkg.Src))
		for name := range pkg.Src {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			exps, err := parseExpectations(name, pkg.Src[name])
			if err != nil {
				t.Fatalf("%v", err)
			}
			want[name] = append(want[name], exps...)
			files = append(files, name)
		}
	}

	for _, f := range findings {
		if !claim(want[f.Pos.Filename], f.Pos.Line, f.Message) {
			t.Errorf("unexpected diagnostic: %s", f)
		}
	}
	for _, name := range files {
		for _, e := range want[name] {
			if !e.matched {
				t.Errorf("%s:%d: no diagnostic matching %q", e.file, e.line, e.re)
			}
		}
	}
}

// expectation is one quoted pattern from a // want comment.
type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

// claim marks the first unmatched expectation on the line whose pattern
// matches message, reporting whether one existed.
func claim(exps []*expectation, line int, message string) bool {
	for _, e := range exps {
		if e.line == line && !e.matched && e.re.MatchString(message) {
			e.matched = true
			return true
		}
	}
	return false
}

const marker = "// want "

// parseExpectations scans raw source for // want comments. Scanning
// text rather than the comment AST lets an expectation share a line
// with a //pdnlint:ignore directive (two // comments cannot otherwise
// coexist on one line).
func parseExpectations(file string, src []byte) ([]*expectation, error) {
	var out []*expectation
	for i, line := range strings.Split(string(src), "\n") {
		at := strings.Index(line, marker)
		if at < 0 {
			continue
		}
		rest := strings.TrimSpace(line[at+len(marker):])
		pats, err := quotedPatterns(rest)
		if err != nil || len(pats) == 0 {
			return nil, fmt.Errorf("%s:%d: malformed // want comment (%v)", file, i+1, err)
		}
		for _, p := range pats {
			re, err := regexp.Compile(p)
			if err != nil {
				return nil, fmt.Errorf("%s:%d: bad expectation regexp: %v", file, i+1, err)
			}
			out = append(out, &expectation{file: file, line: i + 1, re: re})
		}
	}
	return out, nil
}

// quotedPatterns splits `"re" "re2"` / “ `re` “ sequences.
func quotedPatterns(s string) ([]string, error) {
	var out []string
	for s = strings.TrimSpace(s); s != ""; s = strings.TrimSpace(s) {
		switch s[0] {
		case '`':
			end := strings.IndexByte(s[1:], '`')
			if end < 0 {
				return nil, fmt.Errorf("unterminated backquote")
			}
			out = append(out, s[1:1+end])
			s = s[end+2:]
		case '"':
			end := 0
			for j := 1; j < len(s); j++ {
				if s[j] == '\\' {
					j++
				} else if s[j] == '"' {
					end = j
					break
				}
			}
			if end == 0 {
				return nil, fmt.Errorf("unterminated quote")
			}
			p, err := strconv.Unquote(s[:end+1])
			if err != nil {
				return nil, err
			}
			out = append(out, p)
			s = s[end+1:]
		default:
			return nil, fmt.Errorf("expected quoted regexp, got %q", s)
		}
	}
	return out, nil
}
