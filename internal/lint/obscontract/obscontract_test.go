package obscontract_test

import (
	"testing"

	"pdn3d/internal/lint/analysis"
	"pdn3d/internal/lint/analysistest"
	"pdn3d/internal/lint/obscontract"
)

func TestObscontract(t *testing.T) {
	analysistest.Run(t, "testdata", []*analysis.Analyzer{obscontract.Analyzer}, "internal/obs", "a", "b")
}
