// Package a exercises obscontract: metric naming, kind stability,
// counter monotonicity, and span End discipline.
package a

import (
	"errors"

	"internal/obs"
)

var errFail = errors.New("fail")

// Register exercises the name and kind rules; package b imports it so
// the MetricsFact crosses the package boundary in dependency order.
func Register(r *obs.Registry) {
	r.Counter("serve.hits")
	r.Counter("serve.hits")  // get-or-create with the same kind: allowed
	r.Counter("Serve Hits!") // want `metric name "Serve Hits!" does not match`
	r.Gauge("serve.hits")    // want `metric "serve.hits" already registered as a counter in this package`
	r.Counter("jobs.done").Add(1)
	r.Counter("jobs.done").Add(-1) // want `Counter\.Add\(-1\): counters are monotonic`
}

// leak forgets the End on the error path.
func leak(t *obs.Trace, fail bool) error {
	sp := t.Span("solve") // want `span sp is not ended on every return path`
	if fail {
		return errFail
	}
	sp.End()
	return nil
}

// deferred is the idiomatic clean shape.
func deferred(t *obs.Trace, fail bool) error {
	sp := t.Span("solve")
	defer sp.End()
	if fail {
		return errFail
	}
	return nil
}

// handoff transfers the End obligation to the callee.
func handoff(t *obs.Trace) {
	sp := t.Span("solve")
	consume(sp)
}

func consume(s *obs.TraceSpan) { s.End() }

// child tracks spans from TraceSpan.Child too.
func child(t *obs.Trace) {
	sp := t.Span("solve")
	defer sp.End()
	c := sp.Child("inner")
	c.Annotate("k", "v")
	c.End()
}

// childLeak leaves the child open on one path.
func childLeak(t *obs.Trace, fail bool) error {
	sp := t.Span("solve")
	defer sp.End()
	c := sp.Child("inner") // want `span c is not ended on every return path`
	if fail {
		return errFail
	}
	c.End()
	return nil
}

// recorderLeak forgets the Commit on the error path — the record (and
// the failed solve it describes) would silently vanish from /debug/solves.
func recorderLeak(b *obs.SolveBuffer, fail bool) error {
	rec := b.StartSolveRecord() // want `solve recorder rec is not committed on every return path`
	if fail {
		return errFail
	}
	rec.Commit()
	return nil
}

// recorderCommitted commits on both paths; RecordIter neither closes
// nor escapes the recorder.
func recorderCommitted(b *obs.SolveBuffer, fail bool) error {
	rec := b.StartSolveRecord()
	rec.RecordIter(1, 0.5)
	rec.Commit()
	if fail {
		return errFail
	}
	return nil
}

// recorderDeferred is the idiomatic clean shape.
func recorderDeferred(b *obs.SolveBuffer, fail bool) error {
	rec := b.StartSolveRecord()
	defer rec.Commit()
	if fail {
		return errFail
	}
	return nil
}

// recorderHandoff transfers the Commit obligation to the callee.
func recorderHandoff(b *obs.SolveBuffer) {
	rec := b.StartSolveRecord()
	commitRec(rec)
}

func commitRec(r *obs.SolveRecorder) { r.Commit() }

// waived shows the escape hatch covering a multi-line statement: the
// directive suppresses the finding on the argument line below it.
func waived(r *obs.Registry) {
	//pdnlint:ignore obscontract legacy dashboard name kept for continuity
	r.Counter(
		"Legacy Name",
	)
}
