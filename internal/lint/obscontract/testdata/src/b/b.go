// Package b exercises the cross-package MetricsFact: kind conflicts
// with package a surface here at lint time instead of panicking at
// runtime.
package b

import (
	"internal/obs"

	"a"
)

func register(r *obs.Registry) {
	a.Register(r)
	r.Gauge("jobs.done")    // want `metric "jobs.done" already registered as a counter in a; registering it as a gauge would panic at runtime`
	r.Counter("serve.hits") // same kind as in a: allowed
}
