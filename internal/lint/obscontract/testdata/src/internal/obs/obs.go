// Package obs is a minimal mirror of pdn3d/internal/obs for fixture
// type-checking: obscontract matches the receiver types by name and the
// package by its "internal/obs" path suffix, so this stand-in triggers
// the same checks as the real package.
package obs

// Registry mirrors the metric registry.
type Registry struct{}

// Counter mirrors the monotonic counter.
type Counter struct{}

// Gauge mirrors the gauge.
type Gauge struct{}

// Histogram mirrors the histogram.
type Histogram struct{}

// Timer mirrors the timer.
type Timer struct{}

func (r *Registry) Counter(name string) *Counter { return &Counter{} }

func (r *Registry) Gauge(name string) *Gauge { return &Gauge{} }

func (r *Registry) InfoGauge(name string) *Gauge { return &Gauge{} }

func (r *Registry) Histogram(name string, bounds []float64) *Histogram { return &Histogram{} }

func (r *Registry) Timer(name string) *Timer { return &Timer{} }

// Add mirrors Counter.Add.
func (c *Counter) Add(n int64) {}

// Set mirrors Gauge.Set.
func (g *Gauge) Set(v float64) {}

// Trace mirrors the request trace.
type Trace struct{}

// TraceSpan mirrors one span of a trace.
type TraceSpan struct{}

func (t *Trace) Span(name string) *TraceSpan { return &TraceSpan{} }

func (s *TraceSpan) Child(name string) *TraceSpan { return &TraceSpan{} }

func (s *TraceSpan) End() {}

func (s *TraceSpan) Annotate(k, v string) {}

// SolveBuffer mirrors the solve flight-record buffer.
type SolveBuffer struct{}

// SolveRecorder mirrors the per-solve recorder.
type SolveRecorder struct{}

func (b *SolveBuffer) StartSolveRecord() *SolveRecorder { return &SolveRecorder{} }

func (r *SolveRecorder) RecordIter(alpha, res float64) {}

func (r *SolveRecorder) Commit() {}
