// Package obscontract machine-checks the observability layer's
// conventions, which the exporters and dashboards depend on but the
// compiler cannot see:
//
//   - metric names are constant strings matching [a-z0-9_.]+ (the
//     Prometheus exporter sanitizes anything else lossily),
//   - a metric name keeps one kind module-wide — registering "x" as a
//     Counter in one package and a Gauge in another panics at runtime
//     (Registry.get's kind check) and this analyzer catches it at lint
//     time via package facts; within one package, re-registering the
//     same name with the same kind is the get-or-create idiom and is
//     allowed,
//   - Counter.Add never takes a negative constant (counters are
//     monotonic; use a Gauge for deltas),
//   - a span obtained from Trace.Span or TraceSpan.Child is ended on
//     every return path — a forward may-analysis over the function's
//     CFG; handing the span to another function, storing it, or
//     returning it transfers the obligation and ends tracking,
//   - a solve recorder obtained from SolveBuffer.StartSolveRecord is
//     committed on every return path — the same may-analysis, closing
//     on Commit instead of End. An uncommitted recorder silently drops
//     the solve from /debug/solves, which is exactly the record a
//     failed or cancelled solve needs.
//
// Test files are exempt: tests deliberately provoke the runtime panics
// these rules prevent.
package obscontract

import (
	"go/ast"
	"go/constant"
	"go/types"
	"regexp"
	"strings"

	"pdn3d/internal/lint/analysis"
	"pdn3d/internal/lint/dataflow"
)

// Analyzer is the obscontract check.
var Analyzer = &analysis.Analyzer{
	Name: "obscontract",
	Doc: "enforces obs conventions: metric names match [a-z0-9_.]+ and keep " +
		"one kind module-wide, counters never Add negative constants, " +
		"every span from Trace.Span/TraceSpan.Child is ended on all return paths, " +
		"and every recorder from SolveBuffer.StartSolveRecord is committed on all return paths",
	Run:       run,
	UsesFacts: true,
}

// MetricsFact records, per package, the kind each constant metric name
// was registered with, so cross-package kind conflicts surface at lint
// time instead of as a runtime panic.
type MetricsFact struct {
	// Kinds maps metric name to kind ("counter", "gauge", "histogram",
	// "timer").
	Kinds map[string]string
}

// AFact implements analysis.Fact.
func (*MetricsFact) AFact() {}

// registryKinds maps Registry method names to the kind they register.
var registryKinds = map[string]string{
	"Counter":       "counter",
	"Gauge":         "gauge",
	"InfoGauge":     "gauge",
	"Histogram":     "histogram",
	"InfoHistogram": "histogram",
	"Timer":         "timer",
}

var nameRE = regexp.MustCompile(`^[a-z0-9_.]+$`)

// isObsPath reports whether pkgPath is the observability package (or a
// fixture mirror of it).
func isObsPath(pkgPath string) bool {
	return pkgPath == "internal/obs" || strings.HasSuffix(pkgPath, "/internal/obs")
}

// obsMethod resolves call to a method of the named receiver type
// declared in the obs package, returning the method or nil.
func obsMethod(info *types.Info, call *ast.CallExpr, recvType string) *types.Func {
	fn := analysis.CalleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil || !isObsPath(fn.Pkg().Path()) {
		return nil
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Name() != recvType {
		return nil
	}
	return fn
}

// constString extracts e's constant string value.
func constString(info *types.Info, e ast.Expr) (string, bool) {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

func run(pass *analysis.Pass) error {
	kinds := map[string]string{}
	for _, f := range pass.Files {
		if analysis.IsTestFilename(pass.Fset.Position(f.Pos()).Filename) {
			continue
		}
		checkMetrics(pass, f, kinds)
		for _, decl := range f.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok && fn.Body != nil {
				checkSpans(pass, fn)
			}
		}
	}
	if len(kinds) > 0 {
		pass.ExportPackageFact(&MetricsFact{Kinds: kinds})
	}
	return nil
}

// checkMetrics validates registration calls and Counter.Add arguments
// in one file, accumulating this package's name->kind table.
func checkMetrics(pass *analysis.Pass, f *ast.File, kinds map[string]string) {
	info := pass.TypesInfo
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if fn := obsMethod(info, call, "Registry"); fn != nil {
			if kind, isReg := registryKinds[fn.Name()]; isReg && len(call.Args) > 0 {
				checkRegistration(pass, call, kind, kinds)
			}
			return true
		}
		if fn := obsMethod(info, call, "Counter"); fn != nil && fn.Name() == "Add" && len(call.Args) == 1 {
			if tv, ok := info.Types[call.Args[0]]; ok && tv.Value != nil && tv.Value.Kind() == constant.Int {
				if v, ok := constant.Int64Val(tv.Value); ok && v < 0 {
					pass.Reportf(call.Args[0].Pos(),
						"Counter.Add(%d): counters are monotonic; use a Gauge for values that go down", v)
				}
			}
		}
		return true
	})
}

func checkRegistration(pass *analysis.Pass, call *ast.CallExpr, kind string, kinds map[string]string) {
	name, ok := constString(pass.TypesInfo, call.Args[0])
	if !ok {
		// Dynamically built names (per-endpoint metrics) are validated
		// at runtime by the registry; the static contract covers
		// constants only.
		return
	}
	if !nameRE.MatchString(name) {
		pass.Reportf(call.Args[0].Pos(),
			"metric name %q does not match [a-z0-9_.]+; the exporter would sanitize it lossily", name)
	}
	if prev, seen := kinds[name]; seen && prev != kind {
		pass.Reportf(call.Args[0].Pos(),
			"metric %q already registered as a %s in this package; registering it as a %s would panic at runtime", name, prev, kind)
		return
	}
	for _, pf := range pass.AllPackageFacts() {
		if pf.Package == pass.Pkg {
			continue
		}
		mf, ok := pf.Fact.(*MetricsFact)
		if !ok {
			continue
		}
		if prev, seen := mf.Kinds[name]; seen && prev != kind {
			pass.Reportf(call.Args[0].Pos(),
				"metric %q already registered as a %s in %s; registering it as a %s would panic at runtime",
				name, prev, pf.Package.Path(), kind)
			return
		}
	}
	if _, seen := kinds[name]; !seen {
		kinds[name] = kind
	}
}

// spanState is the may-analysis state for checkSpans: the set of spans
// (by object) that may still be open, each mapped to its creation
// position for reporting.
type spanState map[types.Object]ast.Expr

// checkSpans verifies every span this function creates is ended (or
// handed off) on every path to return.
func checkSpans(pass *analysis.Pass, fn *ast.FuncDecl) {
	info := pass.TypesInfo
	g := dataflow.Build(fn.Body)

	meet := func(a, b spanState) spanState {
		if len(a) == 0 {
			return b
		}
		if len(b) == 0 {
			return a
		}
		out := make(spanState, len(a)+len(b))
		for k, v := range a {
			out[k] = v
		}
		for k, v := range b {
			if _, ok := out[k]; !ok {
				out[k] = v
			}
		}
		return out
	}
	equal := func(a, b spanState) bool {
		if len(a) != len(b) {
			return false
		}
		for k := range a {
			if _, ok := b[k]; !ok {
				return false
			}
		}
		return true
	}
	transfer := func(s spanState, n ast.Node) spanState {
		opens, closes := spanEffects(info, n)
		if len(opens) == 0 && len(closes) == 0 {
			return s
		}
		out := make(spanState, len(s)+len(opens))
		for k, v := range s {
			out[k] = v
		}
		for _, c := range closes {
			delete(out, c)
		}
		for obj, at := range opens {
			out[obj] = at
		}
		return out
	}

	in := dataflow.Forward(g, spanState{}, meet, equal, transfer)
	leaked := map[types.Object]ast.Expr{}
	for _, blk := range g.Blocks {
		st, ok := in[blk]
		if !ok {
			continue
		}
		out := dataflow.EachNodeState(blk, st, transfer, func(ast.Node, spanState) {})
		for _, succ := range blk.Succs {
			if succ != g.Exit {
				continue
			}
			for obj, at := range out {
				if _, dup := leaked[obj]; !dup {
					leaked[obj] = at
				}
			}
		}
	}
	for obj, at := range leaked {
		if isRecorderObj(obj) {
			pass.Reportf(at.Pos(),
				"solve recorder %s is not committed on every return path; call Commit (or defer it) before returning", obj.Name())
			continue
		}
		pass.Reportf(at.Pos(),
			"span %s is not ended on every return path; call End (or defer it) before returning", obj.Name())
	}
}

// isRecorderObj reports whether obj is a *obs.SolveRecorder local — the
// tracked kind that closes on Commit rather than End.
func isRecorderObj(obj types.Object) bool {
	t := obj.Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "SolveRecorder" &&
		named.Obj().Pkg() != nil && isObsPath(named.Obj().Pkg().Path())
}

// isSpanConstructor reports whether e creates a tracked obligation: a
// span from Trace.Span or TraceSpan.Child, or a solve recorder from
// SolveBuffer.StartSolveRecord.
func isSpanConstructor(info *types.Info, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	if fn := obsMethod(info, call, "Trace"); fn != nil && fn.Name() == "Span" {
		return true
	}
	if fn := obsMethod(info, call, "TraceSpan"); fn != nil && fn.Name() == "Child" {
		return true
	}
	if fn := obsMethod(info, call, "SolveBuffer"); fn != nil && fn.Name() == "StartSolveRecord" {
		return true
	}
	return false
}

// localVar resolves id to a function-local variable object.
func localVar(info *types.Info, id *ast.Ident) types.Object {
	obj := info.Defs[id]
	if obj == nil {
		obj = info.Uses[id]
	}
	if v, ok := obj.(*types.Var); ok && !v.IsField() && v.Pkg() != nil && v.Parent() != v.Pkg().Scope() {
		return v
	}
	return nil
}

// spanEffects computes, for one CFG node, the spans it opens (local var
// := constructor call) and the spans it closes. A span closes when End
// is called on it, when a defer will End it, or when the value escapes
// this function's custody: passed as an argument, returned, stored, or
// captured by a function literal — whoever receives it owns the End.
func spanEffects(info *types.Info, n ast.Node) (opens map[types.Object]ast.Expr, closes []types.Object) {
	for _, h := range dataflow.HeaderOnly(n) {
		ast.Inspect(h, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.AssignStmt:
				for i, rhs := range m.Rhs {
					if len(m.Lhs) == len(m.Rhs) && isSpanConstructor(info, rhs) {
						id, ok := m.Lhs[i].(*ast.Ident)
						if !ok {
							continue
						}
						if obj := localVar(info, id); obj != nil {
							if opens == nil {
								opens = map[types.Object]ast.Expr{}
							}
							opens[obj] = rhs
						}
						continue
					}
					// Aliasing or storing a tracked span (s2 := s,
					// x.f = s) hands off the End obligation.
					closes = append(closes, escapedSpans(info, rhs)...)
				}
			case *ast.CallExpr:
				// s.End() closes a span, r.Commit() a recorder. Other
				// method calls on the receiver (Annotate, Child, Dur,
				// RecordIter) neither close nor escape it. Any use of a
				// tracked value in argument position escapes it.
				if sel, ok := ast.Unparen(m.Fun).(*ast.SelectorExpr); ok {
					if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
						if obj := localVar(info, id); obj != nil {
							if sel.Sel.Name == "End" || sel.Sel.Name == "Commit" {
								closes = append(closes, obj)
							}
							for _, arg := range m.Args {
								closes = append(closes, escapedSpans(info, arg)...)
							}
							return false
						}
					}
				}
				for _, arg := range m.Args {
					closes = append(closes, escapedSpans(info, arg)...)
				}
				return true
			case *ast.ReturnStmt:
				for _, res := range m.Results {
					closes = append(closes, escapedSpans(info, res)...)
				}
			case *ast.FuncLit:
				// A closure capturing the span takes over (or shares)
				// the End obligation; stop tracking. The literal's own
				// spans are its own function's problem.
				ast.Inspect(m.Body, func(k ast.Node) bool {
					if id, ok := k.(*ast.Ident); ok {
						if obj := localVar(info, id); obj != nil {
							closes = append(closes, obj)
						}
					}
					return true
				})
				return false
			}
			return true
		})
	}
	return opens, closes
}

// escapedSpans lists local variables mentioned anywhere in e — used for
// argument, return, and store positions, where a mention hands the span
// (and its End obligation) to someone else.
func escapedSpans(info *types.Info, e ast.Expr) []types.Object {
	var out []types.Object
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return true // captures handled by the FuncLit case above
		}
		if id, ok := n.(*ast.Ident); ok {
			if obj := localVar(info, id); obj != nil {
				out = append(out, obj)
			}
		}
		return true
	})
	return out
}
