// Package mapiter flags map iteration whose order can leak into
// results. Go randomizes map iteration order on purpose, so a `for
// range` over a map that appends to a slice or prints as it goes
// produces a different ordering every run — a direct violation of the
// solver stack's bit-identical-results contract (same inputs, any
// worker count, same bytes out). The loop is accepted when a later
// statement in the same block re-establishes a deterministic order by
// sorting, which covers the common collect-then-sort idiom:
//
//	for k := range m {
//		keys = append(keys, k) // ok: sorted below
//	}
//	sort.Strings(keys)
package mapiter

import (
	"go/ast"
	"go/types"

	"pdn3d/internal/lint/analysis"
)

// Analyzer is the mapiter check.
var Analyzer = &analysis.Analyzer{
	Name: "mapiter",
	Doc: "flags for-range over a map that appends or prints in iteration order " +
		"without a following sort, guarding the bit-identical-results contract",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			list := stmtList(n)
			for i, stmt := range list {
				rs, ok := stmt.(*ast.RangeStmt)
				if !ok || !isMap(pass.TypesInfo.Types[rs.X].Type) {
					continue
				}
				what := orderSensitiveUse(pass, rs.Body)
				if what == "" || sortedLater(pass, list[i+1:]) {
					continue
				}
				pass.Reportf(rs.For,
					"map iteration %s in randomized key order; sort the keys (or the result) to keep output deterministic",
					what)
			}
			return true
		})
	}
	return nil
}

// stmtList returns the statement list of any node that carries one.
func stmtList(n ast.Node) []ast.Stmt {
	switch n := n.(type) {
	case *ast.BlockStmt:
		return n.List
	case *ast.CaseClause:
		return n.Body
	case *ast.CommClause:
		return n.Body
	}
	return nil
}

func isMap(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// orderSensitiveUse reports how the loop body makes iteration order
// observable: "appends" for slice appends, "prints" for output calls.
// It returns "" for order-insensitive bodies (aggregation, building
// another map, deletes).
func orderSensitiveUse(pass *analysis.Pass, body *ast.BlockStmt) string {
	what := ""
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
			if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok {
				switch b.Name() {
				case "append":
					what = "appends"
				case "print", "println":
					if what == "" {
						what = "prints"
					}
				}
				return true
			}
		}
		if fn := analysis.CalleeFunc(pass.TypesInfo, call); fn != nil && fn.Pkg() != nil {
			if fn.Pkg().Path() == "fmt" && isOutputFunc(fn.Name()) && what == "" {
				what = "prints"
			}
		}
		return true
	})
	return what
}

func isOutputFunc(name string) bool {
	switch name {
	case "Print", "Printf", "Println", "Fprint", "Fprintf", "Fprintln":
		return true
	}
	return false
}

// sortedLater reports whether any following statement in the block calls
// into package sort or slices, which re-establishes a deterministic
// order for whatever the loop accumulated.
func sortedLater(pass *analysis.Pass, rest []ast.Stmt) bool {
	for _, stmt := range rest {
		found := false
		ast.Inspect(stmt, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if fn := analysis.CalleeFunc(pass.TypesInfo, call); fn != nil && fn.Pkg() != nil {
				switch fn.Pkg().Path() {
				case "sort", "slices":
					found = true
				}
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}
