package mapiter_test

import (
	"testing"

	"pdn3d/internal/lint/analysis"
	"pdn3d/internal/lint/analysistest"
	"pdn3d/internal/lint/mapiter"
)

func TestMapiter(t *testing.T) {
	analysistest.Run(t, "testdata", []*analysis.Analyzer{mapiter.Analyzer}, "a")
}
