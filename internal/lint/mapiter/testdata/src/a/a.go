package a

import (
	"fmt"
	"sort"
)

// appendNoSort leaks map order into the returned slice.
func appendNoSort(m map[string]int) []string {
	var keys []string
	for k := range m { // want `map iteration appends in randomized key order`
		keys = append(keys, k)
	}
	return keys
}

// appendThenSort is the sanctioned collect-then-sort idiom.
func appendThenSort(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// printsUnsorted emits output in map order.
func printsUnsorted(m map[string]int) {
	for k, v := range m { // want `map iteration prints in randomized key order`
		fmt.Println(k, v)
	}
}

// aggregate is order-insensitive and must not be flagged.
func aggregate(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// sliceRange ranges over a slice, which iterates in index order.
func sliceRange(s []int) []int {
	var out []int
	for _, v := range s {
		out = append(out, v)
	}
	return out
}

// waived carries a justified suppression.
func waived(m map[string]int) []string {
	var keys []string
	//pdnlint:ignore mapiter keys feed a set membership probe, order is irrelevant
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}

// appendFilteredThenSort mirrors the speckey.Builder.Support idiom: a
// conditional append inside the loop is still order-sensitive, but the
// trailing sort re-establishes determinism.
func appendFilteredThenSort(m map[string]float64) []string {
	var keys []string
	for k, v := range m {
		if v != 0 {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return keys
}

// appendFilteredNoSort is the same filter loop without the sort.
func appendFilteredNoSort(m map[string]float64) []string {
	var keys []string
	for k, v := range m { // want `map iteration appends in randomized key order`
		if v != 0 {
			keys = append(keys, k)
		}
	}
	return keys
}
