package frozenmut_test

import (
	"testing"

	"pdn3d/internal/lint/analysis"
	"pdn3d/internal/lint/analysistest"
	"pdn3d/internal/lint/frozenmut"
)

func TestFrozenmut(t *testing.T) {
	analysistest.Run(t, "testdata", []*analysis.Analyzer{frozenmut.Analyzer}, "a", "b")
}
