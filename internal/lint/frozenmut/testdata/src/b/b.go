// Package b imports the frozen type: the FrozenFact must travel across
// the package boundary, and retention of internal slices is checked
// only outside the declaring package.
package b

import "a"

type holder struct {
	vals []int
}

var global []int

// mutate writes a field of an imported frozen value.
func mutate(f *a.Frozen) {
	f.Vals = nil // want `write to field Vals of frozen type Frozen; values are immutable after construction`
}

// mutateView writes an element through a slice view of the internals.
func mutateView(f *a.Frozen) {
	s := f.View()
	s[0] = 9 // want `element write through a slice view of frozen type Frozen \(s aliases its internals\)`
}

// retain aliases internals into longer-lived homes.
func retain(f *a.Frozen, h *holder) {
	h.vals = f.View() // want `retaining an internal slice of frozen type Frozen outside its package; copy it instead of aliasing`
	global = f.View() // want `retaining an internal slice of frozen type Frozen in package variable global; copy it instead of aliasing`
}

// readOnly holds a view in a local and only reads: clean.
func readOnly(f *a.Frozen) int {
	s := f.View()
	if len(s) == 0 {
		return 0
	}
	return s[0]
}

// fresh constructs its own value; populating it is construction.
func fresh() *a.Frozen {
	f := &a.Frozen{}
	f.Vals = []int{1, 2}
	return f
}

// waived documents a deliberate exception.
func waived(f *a.Frozen) {
	//pdnlint:ignore frozenmut scratch copy is discarded before publication
	f.Vals = nil
}
