// Package a declares a frozen type and exercises frozenmut inside the
// declaring package: construction is allowed, mutation is not.
package a

// Frozen is an immutable container once built.
//
//pdnlint:frozen
type Frozen struct {
	Vals []int
	n    int
}

// New is the builder: writes through a freshly constructed value are
// construction, not mutation.
func New(vals []int) *Frozen {
	f := &Frozen{}
	f.Vals = append([]int(nil), vals...)
	f.n = len(vals)
	return f
}

// Len reads are always fine.
func (f *Frozen) Len() int { return f.n }

// View returns an internal slice; callers must treat it as read-only.
func (f *Frozen) View() []int { return f.Vals }

// mutate writes a field of a value it did not construct.
func mutate(f *Frozen) {
	f.n = 3 // want `write to field n of frozen type Frozen; values are immutable after construction`
}

// mutateElem writes an element through a frozen field.
func mutateElem(f *Frozen) {
	f.Vals[0] = 1 // want `element write through field Vals of frozen type Frozen`
}

// rebuild constructs via new(): still fresh, still clean.
func rebuild() *Frozen {
	f := new(Frozen)
	f.n = 0
	return f
}
