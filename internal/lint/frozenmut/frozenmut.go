// Package frozenmut enforces the //pdnlint:frozen immutability
// contract. A type whose declaration doc carries the directive (e.g.
// sparse.Pattern, rmesh.Topology) promises that values are immutable
// once constructed: downstream code may share them freely across
// goroutines and cache keys may hash their contents. The analyzer
// rejects
//
//   - writes to fields of a frozen value (x.f = v, x.f += v, x.f++),
//   - element writes through a frozen value's slices, whether reached
//     via a field (x.col[i] = v) or a slice-returning method
//     (s := x.Rows(); s[0] = v),
//   - retention of such slices outside the declaring package — storing
//     one into a struct field, map/slice element, or package variable
//     aliases internals the frozen contract says nobody else mutates.
//
// The one exception is construction: a value the current function
// freshly created (x := &T{...}, new(T), or a composite literal) may be
// populated field by field before it is published — the builder pattern
// sparse.Builder.Freeze and rmesh build on. The frozen marker travels
// as a fact on the type's object, so packages that only import the type
// see the same contract the declaring package declared.
package frozenmut

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"pdn3d/internal/lint/analysis"
)

// Analyzer is the frozenmut check.
var Analyzer = &analysis.Analyzer{
	Name: "frozenmut",
	Doc: "flags mutation of //pdnlint:frozen types: field writes, element " +
		"writes through their slices, and retention of their internal " +
		"slices outside the declaring package",
	Run:       run,
	UsesFacts: true,
}

// FrozenFact marks a type name whose declaration carries
// //pdnlint:frozen.
type FrozenFact struct{}

// AFact implements analysis.Fact.
func (*FrozenFact) AFact() {}

// directive is the doc-comment line that freezes a type.
const directive = "//pdnlint:frozen"

func run(pass *analysis.Pass) error {
	exportFrozen(pass)
	for _, f := range pass.Files {
		checkFile(pass, f)
	}
	return nil
}

// exportFrozen scans type declarations for the frozen directive and
// publishes a FrozenFact for each marked type.
func exportFrozen(pass *analysis.Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				if !hasDirective(ts.Doc) && !(len(gd.Specs) == 1 && hasDirective(gd.Doc)) {
					continue
				}
				if obj := pass.TypesInfo.Defs[ts.Name]; obj != nil {
					pass.ExportObjectFact(obj, &FrozenFact{})
				}
			}
		}
	}
}

func hasDirective(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if strings.TrimSpace(c.Text) == directive {
			return true
		}
	}
	return false
}

// frozenName returns the named type behind t (unwrapping pointers) if
// it carries a FrozenFact, else nil.
func frozenName(pass *analysis.Pass, t types.Type) *types.TypeName {
	if t == nil {
		return nil
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	obj := named.Obj()
	if obj == nil {
		return nil
	}
	var fact FrozenFact
	if !pass.ImportObjectFact(obj, &fact) {
		return nil
	}
	return obj
}

// checkFile walks one file's functions; each function gets its own
// fresh-value and frozen-view sets.
func checkFile(pass *analysis.Pass, f *ast.File) {
	for _, decl := range f.Decls {
		fn, ok := decl.(*ast.FuncDecl)
		if !ok || fn.Body == nil {
			continue
		}
		checkFunc(pass, fn)
	}
}

func checkFunc(pass *analysis.Pass, fn *ast.FuncDecl) {
	info := pass.TypesInfo
	fresh := freshLocals(info, fn.Body)
	views := frozenViews(pass, fn.Body, fresh)

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				checkWrite(pass, lhs, fresh, views)
			}
			if n.Tok == token.ASSIGN || n.Tok == token.DEFINE {
				checkRetention(pass, n, fresh)
			}
		case *ast.IncDecStmt:
			checkWrite(pass, n.X, fresh, views)
		case *ast.UnaryExpr:
			// &x.f on a frozen value is not a write, but taking the
			// address of a field is the doorway to one; leave reads and
			// addresses alone — the write itself will be caught wherever
			// it happens if it stays in typed code.
		}
		return true
	})
}

// freshLocals collects local variables bound to values this function
// constructed itself: x := &T{...}, x := T{...}, x := new(T). Writes
// through them are construction, not mutation.
func freshLocals(info *types.Info, body ast.Node) map[types.Object]bool {
	fresh := map[types.Object]bool{}
	isFreshExpr := func(e ast.Expr) bool {
		switch e := ast.Unparen(e).(type) {
		case *ast.CompositeLit:
			return true
		case *ast.UnaryExpr:
			_, lit := ast.Unparen(e.X).(*ast.CompositeLit)
			return e.Op == token.AND && lit
		case *ast.CallExpr:
			if id := funIdent(e); id != nil && id.Name == "new" {
				_, builtin := info.Uses[id].(*types.Builtin)
				return builtin
			}
		}
		return false
	}
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			if !isFreshExpr(rhs) {
				continue
			}
			if id, ok := as.Lhs[i].(*ast.Ident); ok {
				if obj := info.Defs[id]; obj != nil {
					fresh[obj] = true
				} else if obj := info.Uses[id]; obj != nil {
					fresh[obj] = true
				}
			}
		}
		return true
	})
	return fresh
}

func funIdent(call *ast.CallExpr) *ast.Ident {
	id, _ := ast.Unparen(call.Fun).(*ast.Ident)
	return id
}

// frozenViews collects locals aliasing a frozen value's internal
// slices: s := x.col (field of frozen, slice-typed) or s := x.Rows()
// (slice-returning method on frozen receiver). Element writes through
// them mutate the frozen value.
func frozenViews(pass *analysis.Pass, body ast.Node, fresh map[types.Object]bool) map[types.Object]*types.TypeName {
	info := pass.TypesInfo
	views := map[types.Object]*types.TypeName{}
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			owner := viewOrigin(pass, rhs, fresh)
			if owner == nil {
				continue
			}
			if id, ok := as.Lhs[i].(*ast.Ident); ok {
				if obj := info.Defs[id]; obj != nil {
					views[obj] = owner
				} else if obj := info.Uses[id]; obj != nil {
					views[obj] = owner
				}
			}
		}
		return true
	})
	return views
}

// viewOrigin reports the frozen type whose internals e aliases, if any:
// a slice-typed field selector on a non-fresh frozen value, or a
// slice-returning method call with a frozen receiver.
func viewOrigin(pass *analysis.Pass, e ast.Expr, fresh map[types.Object]bool) *types.TypeName {
	info := pass.TypesInfo
	e = ast.Unparen(e)
	if tv, ok := info.Types[e]; !ok || !isSliceType(tv.Type) {
		return nil
	}
	switch e := e.(type) {
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[e]; ok && sel.Kind() == types.FieldVal {
			if owner := frozenName(pass, info.Types[e.X].Type); owner != nil && !isFreshExpr(info, e.X, fresh) {
				return owner
			}
		}
	case *ast.CallExpr:
		if sel, ok := ast.Unparen(e.Fun).(*ast.SelectorExpr); ok {
			if owner := frozenName(pass, info.Types[sel.X].Type); owner != nil && !isFreshExpr(info, sel.X, fresh) {
				return owner
			}
		}
	}
	return nil
}

func isSliceType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Slice)
	return ok
}

// isFreshExpr reports whether e is (or selects from) a variable the
// current function constructed itself.
func isFreshExpr(info *types.Info, e ast.Expr, fresh map[types.Object]bool) bool {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			obj := info.Uses[x]
			if obj == nil {
				obj = info.Defs[x]
			}
			return obj != nil && fresh[obj]
		case *ast.SelectorExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		default:
			return false
		}
	}
}

// checkWrite reports a mutation if lhs writes into a frozen value.
func checkWrite(pass *analysis.Pass, lhs ast.Expr, fresh map[types.Object]bool, views map[types.Object]*types.TypeName) {
	info := pass.TypesInfo
	switch lhs := ast.Unparen(lhs).(type) {
	case *ast.SelectorExpr:
		sel, ok := info.Selections[lhs]
		if !ok || sel.Kind() != types.FieldVal {
			return
		}
		owner := frozenName(pass, info.Types[lhs.X].Type)
		if owner == nil || isFreshExpr(info, lhs.X, fresh) {
			return
		}
		pass.Reportf(lhs.Pos(), "write to field %s of frozen type %s; values are immutable after construction",
			lhs.Sel.Name, owner.Name())
	case *ast.IndexExpr:
		// x.col[i] = v — element write through a frozen value's field.
		if selX, ok := ast.Unparen(lhs.X).(*ast.SelectorExpr); ok {
			if sel, ok := info.Selections[selX]; ok && sel.Kind() == types.FieldVal {
				owner := frozenName(pass, info.Types[selX.X].Type)
				if owner != nil && !isFreshExpr(info, selX.X, fresh) {
					pass.Reportf(lhs.Pos(), "element write through field %s of frozen type %s",
						selX.Sel.Name, owner.Name())
					return
				}
			}
		}
		// s[i] = v where s aliases frozen internals.
		if id, ok := ast.Unparen(lhs.X).(*ast.Ident); ok {
			obj := info.Uses[id]
			if obj == nil {
				obj = info.Defs[id]
			}
			if owner := views[obj]; owner != nil {
				pass.Reportf(lhs.Pos(), "element write through a slice view of frozen type %s (%s aliases its internals)",
					owner.Name(), id.Name)
			}
		}
	}
}

// checkRetention reports, outside the declaring package, stores that
// retain a frozen value's internal slice somewhere longer-lived than a
// local: a struct field, a map or slice element, or a package variable.
func checkRetention(pass *analysis.Pass, as *ast.AssignStmt, fresh map[types.Object]bool) {
	info := pass.TypesInfo
	if len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i, rhs := range as.Rhs {
		owner := viewOrigin(pass, rhs, fresh)
		if owner == nil || owner.Pkg() == pass.Pkg {
			continue
		}
		switch lhs := ast.Unparen(as.Lhs[i]).(type) {
		case *ast.SelectorExpr, *ast.IndexExpr:
			pass.Reportf(as.Lhs[i].Pos(), "retaining an internal slice of frozen type %s outside its package; copy it instead of aliasing",
				owner.Name())
		case *ast.Ident:
			if obj := info.Uses[lhs]; obj != nil {
				if v, ok := obj.(*types.Var); ok && v.Parent() == pass.Pkg.Scope() {
					pass.Reportf(as.Lhs[i].Pos(), "retaining an internal slice of frozen type %s in package variable %s; copy it instead of aliasing",
						owner.Name(), lhs.Name)
				}
			}
		}
	}
}
