package a

import "time"

// wrongName misspells the analyzer, so the waiver never engages: the
// directive is reported AND the original diagnostic still fires.
func wrongName() time.Time {
	//pdnlint:ignore waltime typo in analyzer name // want `suppression names unknown analyzer "waltime"`
	return time.Now() // want `time.Now\(\) in library code`
}
