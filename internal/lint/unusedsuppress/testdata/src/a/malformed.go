package a

import "time"

// malformed omits the mandatory reason; a waiver with no justification
// suppresses nothing.
func malformed() time.Time {
	//pdnlint:ignore walltime // want `malformed suppression`
	return time.Now() // want `time.Now\(\) in library code`
}
