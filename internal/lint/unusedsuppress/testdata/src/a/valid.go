package a

import "time"

// validWaiver suppresses a real walltime diagnostic, so the directive
// is used and produces no finding of its own.
func validWaiver() time.Time {
	//pdnlint:ignore walltime fixture exercises a live, justified waiver
	return time.Now()
}
