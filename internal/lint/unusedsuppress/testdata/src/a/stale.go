package a

// stale waives a diagnostic that no longer exists — the time.Now() this
// directive once covered was refactored away.
//
//pdnlint:ignore walltime covered a timing call removed long ago // want `unused suppression: no walltime diagnostic`
func stale() int {
	return 1
}
