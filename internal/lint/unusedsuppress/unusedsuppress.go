// Package unusedsuppress validates //pdnlint:ignore directives. A
// suppression is a standing waiver of an invariant; once the code it
// waived is refactored away the directive must go too, or the waiver
// silently widens. This check reports directives that are malformed
// (missing the mandatory reason), name an analyzer that does not exist,
// or no longer match any diagnostic.
//
// Unlike the other checks this one needs to see every analyzer's
// diagnostics after suppression matching, so its logic lives in the
// runner (internal/lint.Run); the Analyzer here is the name under which
// those findings are reported and has no Run of its own.
package unusedsuppress

import "pdn3d/internal/lint/analysis"

// Analyzer is the unusedsuppress check, implemented by the lint runner.
var Analyzer = &analysis.Analyzer{
	Name: "unusedsuppress",
	Doc: "reports //pdnlint:ignore directives that are malformed, name an " +
		"unknown analyzer, or no longer suppress any diagnostic",
	Run: nil,
}
