package unusedsuppress_test

import (
	"testing"

	"pdn3d/internal/lint"
	"pdn3d/internal/lint/analysistest"
)

// TestUnusedsuppress runs the full suite: the unusedsuppress check is
// implemented by the runner and needs the other analyzers' diagnostics
// to decide which directives are live.
func TestUnusedsuppress(t *testing.T) {
	analysistest.Run(t, "testdata", lint.Suite(), "a")
}
