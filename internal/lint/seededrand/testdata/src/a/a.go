package a

import "math/rand"

// global draws from the process-global source and must be flagged.
func global() float64 {
	return rand.Float64() // want `math/rand.Float64 draws from the unseeded process-global source`
}

// globalIntn is another top-level convenience call.
func globalIntn() int {
	return rand.Intn(10) // want `math/rand.Intn draws from the unseeded process-global source`
}

// seeded is the sanctioned per-use generator.
func seeded(seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	return rng.Float64()
}

// waived carries a justified suppression.
func waived() int {
	//pdnlint:ignore seededrand jitter for a retry backoff, reproducibility not needed
	return rand.Intn(100)
}
