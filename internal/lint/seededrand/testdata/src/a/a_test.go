package a

import "math/rand"

// globalInTest is still flagged: unseeded streams make tests flaky.
func globalInTest() float64 {
	return rand.Float64() // want `math/rand.Float64 draws from the unseeded process-global source`
}
