// Package seededrand forbids the global math/rand generators. Workload
// synthesis and test-matrix generation must be reproducible run to run,
// so every random stream needs an explicit, auditable seed:
//
//	rng := rand.New(rand.NewSource(seed))
//
// Top-level convenience calls (rand.Float64, rand.Intn, …) draw from the
// shared process-global source, whose sequence depends on whatever else
// consumed it — and in math/rand/v2 cannot be seeded at all. The check
// applies to tests too: a test that flakes only on some interleavings of
// the global stream is the least reproducible kind.
package seededrand

import (
	"go/ast"
	"go/types"

	"pdn3d/internal/lint/analysis"
)

// Analyzer is the seededrand check.
var Analyzer = &analysis.Analyzer{
	Name: "seededrand",
	Doc: "flags top-level math/rand functions (rand.Float64, rand.Intn, …); " +
		"use an explicitly seeded rand.New(rand.NewSource(seed))",
	Run: run,
}

// constructors are the package-level functions that build or feed
// explicitly seeded generators; they are the remedy, not the disease.
var constructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := analysis.CalleeFunc(pass.TypesInfo, call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			path := fn.Pkg().Path()
			if path != "math/rand" && path != "math/rand/v2" {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
				return true // methods on *rand.Rand are the seeded path
			}
			if constructors[fn.Name()] {
				return true
			}
			pass.Reportf(call.Pos(),
				"%s.%s draws from the unseeded process-global source; use rand.New(rand.NewSource(seed)) for reproducible streams",
				path, fn.Name())
			return true
		})
	}
	return nil
}
