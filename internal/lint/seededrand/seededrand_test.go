package seededrand_test

import (
	"testing"

	"pdn3d/internal/lint/analysis"
	"pdn3d/internal/lint/analysistest"
	"pdn3d/internal/lint/seededrand"
)

func TestSeededrand(t *testing.T) {
	analysistest.Run(t, "testdata", []*analysis.Analyzer{seededrand.Analyzer}, "a")
}
