// Package a exercises ctxflow: context propagation from a function's
// own context parameter to every context-accepting callee.
package a

import (
	"context"
	"time"
)

func callee(ctx context.Context) error { return nil }

func plain() {}

// drops passes a fresh root context where the caller's should flow.
func drops(ctx context.Context) {
	callee(context.Background()) // want `context.Background\(\) inside a function that has a context parameter`
	plain()
}

// stored reports both the root-context construction and its use.
func stored(ctx context.Context) {
	c2 := context.TODO() // want `context.TODO\(\) inside a function that has a context parameter`
	callee(c2)           // want `call to callee drops the caller's context`
}

// forwards is clean: the context and values derived from it flow on.
func forwards(ctx context.Context) {
	callee(ctx)
	c, cancel := context.WithTimeout(ctx, time.Second)
	defer cancel()
	callee(c)
}

// noParam is clean: without a context parameter there is nothing to
// propagate, so constructing a root context is legitimate.
func noParam() {
	callee(context.Background())
}

func runWorker(f func(context.Context) error) {
	_ = f(context.Background())
}

// handler is clean: the closure's own context parameter is the origin
// inside the closure, and the enclosing function (no context parameter)
// is not penalized for the worker it spawns.
func handler() {
	runWorker(func(wctx context.Context) error {
		return callee(wctx)
	})
}

// captured is clean: the closure forwards a context derived in the
// enclosing scope.
func captured(ctx context.Context) {
	c, cancel := context.WithCancel(ctx)
	defer cancel()
	runWorker(func(wctx context.Context) error {
		return callee(c)
	})
}

// waived shows the escape hatch on a multi-line call: the directive
// covers every line of the statement below it.
func waived(ctx context.Context) {
	//pdnlint:ignore ctxflow detached audit write must survive request cancellation
	_ = callee(
		context.Background(),
	)
}
