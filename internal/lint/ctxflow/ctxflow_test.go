package ctxflow_test

import (
	"testing"

	"pdn3d/internal/lint/analysis"
	"pdn3d/internal/lint/analysistest"
	"pdn3d/internal/lint/ctxflow"
)

func TestCtxflow(t *testing.T) {
	analysistest.Run(t, "testdata", []*analysis.Analyzer{ctxflow.Analyzer}, "a")
}
