// Package ctxflow keeps request cancellation intact across the call
// stack. A function that takes a context.Context must hand that context
// (or a value derived from it — obs.WithSpan, context.WithTimeout, and
// friends) to every callee that accepts one. Passing
// context.Background() or context.TODO() instead silently detaches the
// callee from the caller's deadline, which is exactly the bug class
// that would let a cancelled HTTP request keep a CG solve running:
// serve → irdrop → solve stays cancellable only if every hop forwards
// ctx. Functions without a context parameter are left alone (they are
// entry points or pure computation), as are test files.
package ctxflow

import (
	"go/ast"
	"go/types"
	"sort"

	"pdn3d/internal/lint/analysis"
	"pdn3d/internal/lint/dataflow"
)

// Analyzer is the ctxflow check.
var Analyzer = &analysis.Analyzer{
	Name: "ctxflow",
	Doc: "flags functions that take a context.Context but call a " +
		"context-accepting callee with context.Background()/TODO() or a " +
		"context not derived from their own",
	Run: run,
}

// isCtxType reports whether t is context.Context.
func isCtxType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// ctxParams returns the objects of ft's context.Context parameters.
func ctxParams(info *types.Info, ft *ast.FuncType) []types.Object {
	var out []types.Object
	if ft.Params == nil {
		return nil
	}
	for _, field := range ft.Params.List {
		for _, name := range field.Names {
			if obj := info.Defs[name]; obj != nil && isCtxType(obj.Type()) {
				out = append(out, obj)
			}
		}
	}
	return out
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || pass.IsTestFile(fn.Pos()) {
				continue
			}
			checkScope(pass, fn.Body, ctxParams(pass.TypesInfo, fn.Type))
		}
	}
	return nil
}

// checkScope checks one function scope's statements against the
// contexts in scope there: the function's own context parameters plus
// any captured from enclosing functions. Nested function literals are
// their own scopes — a handler without a context parameter is not
// penalized for the workers it spawns with theirs, and a worker closure
// is checked against both its parameter and any captured context.
func checkScope(pass *analysis.Pass, body *ast.BlockStmt, seeds []types.Object) {
	info := pass.TypesInfo
	inScope := seeds
	if len(seeds) > 0 {
		derived := dataflow.Derived(info, body, seeds, func(obj types.Object) bool {
			// Only context-typed variables can carry the derivation;
			// this keeps e.g. a cancel func or an error assigned
			// alongside a derived ctx from widening the set.
			return isCtxType(obj.Type())
		})
		checkCalls(pass, body, derived)
		// Everything derived here is a valid origin for nested scopes
		// too — a closure may capture fctx rather than ctx itself.
		inScope = make([]types.Object, 0, len(derived))
		for obj := range derived {
			inScope = append(inScope, obj)
		}
		sort.Slice(inScope, func(i, j int) bool { return inScope[i].Pos() < inScope[j].Pos() })
	}
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			checkScope(pass, lit.Body, append(append([]types.Object{}, inScope...), ctxParams(info, lit.Type)...))
			return false
		}
		return true
	})
}

// checkCalls reports context misuse in body's own statements, skipping
// nested function literals (checked as their own scopes).
func checkCalls(pass *analysis.Pass, body *ast.BlockStmt, derived map[types.Object]bool) {
	info := pass.TypesInfo
	mentionsDerived := func(e ast.Expr) bool {
		found := false
		ast.Inspect(e, func(n ast.Node) bool {
			if found {
				return false
			}
			if id, ok := n.(*ast.Ident); ok {
				if obj := info.Uses[id]; obj != nil && derived[obj] {
					found = true
				}
			}
			return true
		})
		return found
	}

	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if analysis.IsPkgFunc(info, call, "context", "Background") ||
			analysis.IsPkgFunc(info, call, "context", "TODO") {
			pass.Reportf(call.Pos(),
				"%s inside a function that has a context parameter; derive from it instead so cancellation propagates",
				types.ExprString(call.Fun)+"()")
			return true
		}
		callee := analysis.CalleeFunc(info, call)
		if callee == nil {
			return true
		}
		sig, ok := callee.Type().(*types.Signature)
		if !ok {
			return true
		}
		for i := 0; i < sig.Params().Len() && i < len(call.Args); i++ {
			if !isCtxType(sig.Params().At(i).Type()) {
				continue
			}
			arg := call.Args[i]
			if mentionsDerived(arg) {
				continue
			}
			// Background/TODO as the argument is already reported above
			// (the inner CallExpr is visited by this same Inspect).
			if inner, ok := ast.Unparen(arg).(*ast.CallExpr); ok {
				if analysis.IsPkgFunc(info, inner, "context", "Background") ||
					analysis.IsPkgFunc(info, inner, "context", "TODO") {
					continue
				}
			}
			pass.Reportf(arg.Pos(),
				"call to %s drops the caller's context; pass a context derived from this function's context parameter",
				callee.Name())
		}
		return true
	})
}
