package baseline_test

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"pdn3d/internal/lint/baseline"
)

const sample = `# pdnlint baseline
frozenmut	internal/a/a.go	write to field n of frozen type T; values are immutable after construction

lockbalance	internal/b/b.go	m.mu is locked here but not unlocked on every return path (add a defer or unlock before returning)
`

func TestParse(t *testing.T) {
	s, err := baseline.Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2 (comments and blanks must not count)", s.Len())
	}
	if !s.Match("frozenmut", "internal/a/a.go", "write to field n of frozen type T; values are immutable after construction") {
		t.Error("entry did not match its own key")
	}
	if s.Match("frozenmut", "internal/a/a.go", "some other message") {
		t.Error("matched with a different message")
	}
	if s.Match("mapiter", "internal/a/a.go", "write to field n of frozen type T; values are immutable after construction") {
		t.Error("matched with a different analyzer")
	}
}

func TestParseMalformed(t *testing.T) {
	for _, bad := range []string{
		"frozenmut internal/a/a.go space separated\n",
		"frozenmut\tinternal/a/a.go\n",
		"\tinternal/a/a.go\tmessage\n",
	} {
		if _, err := baseline.Parse(strings.NewReader(bad)); err == nil {
			t.Errorf("Parse accepted malformed line %q", bad)
		}
	}
}

func TestStale(t *testing.T) {
	s, err := baseline.Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	s.Match("lockbalance", "internal/b/b.go", "m.mu is locked here but not unlocked on every return path (add a defer or unlock before returning)")
	stale := s.Stale()
	if len(stale) != 1 || stale[0].Analyzer != "frozenmut" || stale[0].Line != 2 {
		t.Fatalf("Stale = %+v, want the line-2 frozenmut entry", stale)
	}
}

func TestLoadFileMissing(t *testing.T) {
	s, err := baseline.LoadFile(filepath.Join(t.TempDir(), "no.baseline"))
	if err != nil {
		t.Fatalf("LoadFile on a missing path: %v", err)
	}
	if s.Len() != 0 {
		t.Errorf("missing baseline yielded %d entries", s.Len())
	}
}

func TestFormatRoundTrip(t *testing.T) {
	rows := [][3]string{
		{"walltime", "z.go", "later file"},
		{"floateq", "a.go", "first file"},
		{"ctxflow", "a.go", "same file, analyzer tie-break"},
	}
	var buf bytes.Buffer
	if err := baseline.Format(&buf, rows); err != nil {
		t.Fatalf("Format: %v", err)
	}
	lines := strings.Split(strings.TrimSuffix(buf.String(), "\n"), "\n")
	want := []string{
		"ctxflow\ta.go\tsame file, analyzer tie-break",
		"floateq\ta.go\tfirst file",
		"walltime\tz.go\tlater file",
	}
	for i := range want {
		if lines[i] != want[i] {
			t.Errorf("line %d = %q, want %q", i, lines[i], want[i])
		}
	}
	s, err := baseline.Parse(&buf)
	if err != nil {
		t.Fatalf("Parse of Format output: %v", err)
	}
	if s.Len() != len(rows) {
		t.Errorf("round trip kept %d of %d entries", s.Len(), len(rows))
	}
}
