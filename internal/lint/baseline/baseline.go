// Package baseline implements the lint.baseline file that lets a new
// analyzer land before every pre-existing finding is fixed. The file is
// a line-oriented allowlist checked into the repository root:
//
//	# comment
//	<analyzer>\t<path>\t<message>
//
// where <path> is the finding's file slash-separated and relative to
// the module root. A finding matching an entry (analyzer, path, and
// message all equal) is demoted out of the run's failing set; line
// numbers are deliberately not part of the key so unrelated edits above
// a baselined finding do not resurrect it. Entries that match nothing
// are reported by the runner so the file only ever shrinks.
package baseline

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
)

// Entry is one allowlisted finding.
type Entry struct {
	// Analyzer, Path, and Message form the match key. Path is
	// slash-separated, relative to the module root.
	Analyzer string
	Path     string
	Message  string
	// Line is the baseline file line the entry came from, for stale
	// -entry reports.
	Line int
	// Used records whether the entry matched a finding this run.
	Used bool
}

// Set holds the parsed baseline.
type Set struct {
	entries []*Entry
	byKey   map[[3]string][]*Entry
}

// Parse reads a baseline from r. Blank lines and lines starting with
// '#' are ignored; every other line must have exactly three tab
// -separated fields.
func Parse(r io.Reader) (*Set, error) {
	s := &Set{byKey: map[[3]string][]*Entry{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" || strings.HasPrefix(strings.TrimSpace(line), "#") {
			continue
		}
		fields := strings.Split(line, "\t")
		if len(fields) != 3 {
			return nil, fmt.Errorf("baseline line %d: want 3 tab-separated fields (analyzer, path, message), got %d", lineNo, len(fields))
		}
		e := &Entry{Analyzer: fields[0], Path: fields[1], Message: fields[2], Line: lineNo}
		if e.Analyzer == "" || e.Path == "" || e.Message == "" {
			return nil, fmt.Errorf("baseline line %d: empty field", lineNo)
		}
		s.entries = append(s.entries, e)
		s.byKey[key(e.Analyzer, e.Path, e.Message)] = append(s.byKey[key(e.Analyzer, e.Path, e.Message)], e)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("baseline: %v", err)
	}
	return s, nil
}

// LoadFile parses the baseline at path. A missing file is not an error:
// it yields an empty set, so repositories without a baseline need no
// placeholder.
func LoadFile(path string) (*Set, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return &Set{byKey: map[[3]string][]*Entry{}}, nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()
	s, err := Parse(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	return s, nil
}

func key(analyzer, path, message string) [3]string {
	return [3]string{analyzer, path, message}
}

// Match reports whether the finding (analyzer, relPath, message) is
// baselined, marking the matching entry used.
func (s *Set) Match(analyzer, relPath, message string) bool {
	if s == nil {
		return false
	}
	entries := s.byKey[key(analyzer, relPath, message)]
	if len(entries) == 0 {
		return false
	}
	for _, e := range entries {
		e.Used = true
	}
	return true
}

// Len returns the number of entries.
func (s *Set) Len() int {
	if s == nil {
		return 0
	}
	return len(s.entries)
}

// Stale returns the entries that matched no finding, ordered by their
// line in the baseline file.
func (s *Set) Stale() []*Entry {
	if s == nil {
		return nil
	}
	var out []*Entry
	for _, e := range s.entries {
		if !e.Used {
			out = append(out, e)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Line < out[j].Line })
	return out
}

// Format renders findings as baseline lines (analyzer, path, message,
// tab-separated, sorted) — the format Parse accepts — so a baseline can
// be regenerated mechanically from a run's output.
func Format(w io.Writer, rows [][3]string) error {
	sorted := append([][3]string(nil), rows...)
	sort.Slice(sorted, func(i, j int) bool {
		a, b := sorted[i], sorted[j]
		if a[1] != b[1] {
			return a[1] < b[1]
		}
		if a[0] != b[0] {
			return a[0] < b[0]
		}
		return a[2] < b[2]
	})
	for _, r := range sorted {
		if _, err := fmt.Fprintf(w, "%s\t%s\t%s\n", r[0], r[1], r[2]); err != nil {
			return err
		}
	}
	return nil
}
