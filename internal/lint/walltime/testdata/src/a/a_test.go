package a

import "time"

// stampInTest is exempt.
func stampInTest() time.Time {
	return time.Now()
}
