package a

import "time"

// stamp reads the wall clock in library code and must be flagged.
func stamp() time.Time {
	return time.Now() // want `time.Now\(\) in library code`
}

// waived carries a justified suppression.
func waived() time.Time {
	//pdnlint:ignore walltime harness timing, reported beside results and never folded in
	return time.Now()
}

// elapsed takes the instant as an argument, keeping the clock at the edge.
func elapsed(start, end time.Time) time.Duration {
	return end.Sub(start)
}
