// Command app stands in for a CLI entry point, where progress timing is
// allowed.
package main

import "time"

func main() {
	_ = time.Now()
}
