package walltime_test

import (
	"testing"

	"pdn3d/internal/lint/analysis"
	"pdn3d/internal/lint/analysistest"
	"pdn3d/internal/lint/walltime"
)

func TestWalltime(t *testing.T) {
	analysistest.Run(t, "testdata", []*analysis.Analyzer{walltime.Analyzer}, "a", "cmd/app")
}
