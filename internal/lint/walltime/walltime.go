// Package walltime keeps wall-clock reads out of result paths. A
// time.Now() in analysis code is either dead weight or — worse — a
// timestamp that leaks into cache keys, reports, or generated tables,
// breaking run-to-run byte identity. CLI entry points under cmd/ may
// time themselves for progress reporting, and test files are exempt;
// deliberate timing inside validation harnesses carries a
// //pdnlint:ignore walltime waiver with its justification.
package walltime

import (
	"go/ast"

	"pdn3d/internal/lint/analysis"
)

// Analyzer is the walltime check.
var Analyzer = &analysis.Analyzer{
	Name: "walltime",
	Doc: "flags time.Now() outside cmd/ and _test.go files, " +
		"keeping wall-clock time out of result paths",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if analysis.PathHasSegment(pass.Path, "cmd") {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if analysis.IsPkgFunc(pass.TypesInfo, call, "time", "Now") && !pass.IsTestFile(call.Pos()) {
				pass.Reportf(call.Pos(),
					"time.Now() in library code; wall-clock time must not reach result paths (cmd/ and tests are exempt)")
			}
			return true
		})
	}
	return nil
}
