package lint_test

import (
	"bytes"
	"encoding/json"
	"go/token"
	"path/filepath"
	"strings"
	"testing"

	"pdn3d/internal/lint"
	"pdn3d/internal/lint/baseline"
	"pdn3d/internal/lint/load"
)

func TestSuite(t *testing.T) {
	suite := lint.Suite()
	if len(suite) != 10 {
		t.Fatalf("suite has %d analyzers, want 10", len(suite))
	}
	seen := map[string]bool{}
	for _, a := range suite {
		if a.Name == "" || a.Doc == "" {
			t.Errorf("analyzer %+v missing name or doc", a)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
		if a.Run == nil && a.Name != "unusedsuppress" {
			t.Errorf("analyzer %q has no Run and is not runner-implemented", a.Name)
		}
	}
	for _, name := range []string{"ctxflow", "lockbalance", "frozenmut", "obscontract"} {
		if !seen[name] {
			t.Errorf("suite is missing %s", name)
		}
	}
}

// TestRepoIsClean is the in-tree mirror of the CI lint gate: the whole
// module must pass its own analyzer suite. Any new violation fails
// `go test ./...` even where CI is not running.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping whole-tree lint in -short mode")
	}
	prog, err := lint.Load("../..", "./...")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	findings, err := lint.Run(prog, lint.Suite())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
}

// TestFindingString pins the file:line:col output format CI greps.
func TestFindingString(t *testing.T) {
	prog, err := lint.Load("../..", "./internal/lint/suppress")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	findings, err := lint.Run(prog, lint.Suite())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for _, f := range findings {
		s := f.String()
		if !strings.Contains(s, ".go:") || !strings.HasSuffix(s, "("+f.Analyzer+")") {
			t.Errorf("malformed finding rendering: %q", s)
		}
	}
}

// TestSortFindings pins the deterministic report order: file, then
// line, then column, then analyzer, then message. Two analyzers
// reporting the same position must tie-break alphabetically, never by
// execution order.
func TestSortFindings(t *testing.T) {
	mk := func(analyzer, file string, line, col int, msg string) lint.Finding {
		return lint.Finding{Analyzer: analyzer, Pos: token.Position{Filename: file, Line: line, Column: col}, Message: msg}
	}
	findings := []lint.Finding{
		mk("walltime", "b.go", 1, 1, "m"),
		mk("walltime", "a.go", 9, 2, "m"),
		mk("floateq", "a.go", 9, 2, "m"),
		mk("floateq", "a.go", 9, 1, "m"),
		mk("floateq", "a.go", 2, 7, "m"),
		mk("floateq", "a.go", 9, 2, "a message sorting first"),
	}
	lint.SortFindings(findings)
	var got []string
	for _, f := range findings {
		got = append(got, f.String())
	}
	want := []string{
		"a.go:2:7: m (floateq)",
		"a.go:9:1: m (floateq)",
		"a.go:9:2: a message sorting first (floateq)",
		"a.go:9:2: m (floateq)",
		"a.go:9:2: m (walltime)",
		"b.go:1:1: m (walltime)",
	}
	if strings.Join(got, "\n") != strings.Join(want, "\n") {
		t.Errorf("sorted order:\n%s\nwant:\n%s", strings.Join(got, "\n"), strings.Join(want, "\n"))
	}
}

// loadSev loads the fixture package with one walltime and one floateq
// violation at known positions.
func loadSev(t *testing.T) *load.Program {
	t.Helper()
	prog, err := load.LoadDir(filepath.Join("testdata", "src"), "sev")
	if err != nil {
		t.Fatalf("LoadDir: %v", err)
	}
	return prog
}

func analyzers(t *testing.T, findings []lint.Finding) []string {
	t.Helper()
	var out []string
	for _, f := range findings {
		out = append(out, f.Analyzer)
	}
	return out
}

func TestSeverityOverrides(t *testing.T) {
	prog := loadSev(t)

	findings, err := lint.RunWith(prog, lint.Suite(), lint.Options{})
	if err != nil {
		t.Fatalf("RunWith: %v", err)
	}
	if got := analyzers(t, findings); strings.Join(got, ",") != "walltime,floateq" {
		t.Fatalf("default run found %v, want [walltime floateq]", got)
	}
	if lint.ErrorCount(findings) != 2 {
		t.Errorf("ErrorCount = %d, want 2", lint.ErrorCount(findings))
	}

	warned, err := lint.RunWith(prog, lint.Suite(), lint.Options{
		Severity: map[string]lint.Severity{"walltime": lint.SeverityWarn},
	})
	if err != nil {
		t.Fatalf("RunWith warn: %v", err)
	}
	if len(warned) != 2 {
		t.Fatalf("warn override dropped findings: %v", warned)
	}
	if warned[0].Severity != lint.SeverityWarn || warned[1].Severity != lint.SeverityError {
		t.Errorf("severities = %s, %s; want warn, error", warned[0].Severity, warned[1].Severity)
	}
	if lint.ErrorCount(warned) != 1 {
		t.Errorf("ErrorCount with one warn = %d, want 1", lint.ErrorCount(warned))
	}

	off, err := lint.RunWith(prog, lint.Suite(), lint.Options{
		Severity: map[string]lint.Severity{"walltime": lint.SeverityOff},
	})
	if err != nil {
		t.Fatalf("RunWith off: %v", err)
	}
	if got := analyzers(t, off); strings.Join(got, ",") != "floateq" {
		t.Errorf("off override left %v, want [floateq]", got)
	}

	if _, err := lint.RunWith(prog, lint.Suite(), lint.Options{
		Severity: map[string]lint.Severity{"nosuch": lint.SeverityWarn},
	}); err == nil {
		t.Error("severity override for an unknown analyzer was accepted")
	}
}

func TestBaseline(t *testing.T) {
	prog := loadSev(t)
	root, err := filepath.Abs(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}

	all, err := lint.RunWith(prog, lint.Suite(), lint.Options{})
	if err != nil {
		t.Fatalf("RunWith: %v", err)
	}
	if len(all) != 2 {
		t.Fatalf("fixture produced %d findings, want 2", len(all))
	}

	// Baseline the walltime finding plus one stale entry.
	text := "# test baseline\n" +
		"walltime\t" + lint.RelPath(root, all[0].Pos.Filename) + "\t" + all[0].Message + "\n" +
		"walltime\tsev/other.go\tnever matches\n"
	set, err := baseline.Parse(strings.NewReader(text))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	findings, err := lint.RunWith(prog, lint.Suite(), lint.Options{
		Baseline: set, BaselinePath: "lint.baseline", Root: root,
	})
	if err != nil {
		t.Fatalf("RunWith baseline: %v", err)
	}
	if got := analyzers(t, findings); strings.Join(got, ",") != "floateq,baseline" {
		t.Fatalf("baselined run found %v, want [floateq baseline]", got)
	}
	stale := findings[1]
	if stale.Pos.Filename != "lint.baseline" || stale.Pos.Line != 3 {
		t.Errorf("stale entry reported at %s:%d, want lint.baseline:3", stale.Pos.Filename, stale.Pos.Line)
	}
	if !strings.Contains(stale.Message, "stale baseline entry") {
		t.Errorf("stale message = %q", stale.Message)
	}
}

func TestWriteJSON(t *testing.T) {
	prog := loadSev(t)
	root, err := filepath.Abs(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	findings, err := lint.RunWith(prog, lint.Suite(), lint.Options{
		Severity: map[string]lint.Severity{"walltime": lint.SeverityWarn},
	})
	if err != nil {
		t.Fatalf("RunWith: %v", err)
	}

	var buf bytes.Buffer
	if err := lint.WriteJSON(&buf, findings, root); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var decoded []struct {
		Analyzer string `json:"analyzer"`
		File     string `json:"file"`
		Line     int    `json:"line"`
		Col      int    `json:"col"`
		Severity string `json:"severity"`
		Message  string `json:"message"`
	}
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(decoded) != 2 {
		t.Fatalf("decoded %d findings, want 2", len(decoded))
	}
	if decoded[0].Analyzer != "walltime" || decoded[0].Severity != "warn" {
		t.Errorf("first finding = %+v, want a walltime warn", decoded[0])
	}
	if decoded[0].File != "sev/sev.go" {
		t.Errorf("file = %q, want the root-relative slash form sev/sev.go", decoded[0].File)
	}
	if decoded[0].Line == 0 || decoded[0].Col == 0 || decoded[0].Message == "" {
		t.Errorf("missing position or message: %+v", decoded[0])
	}

	buf.Reset()
	if err := lint.WriteJSON(&buf, nil, root); err != nil {
		t.Fatalf("WriteJSON empty: %v", err)
	}
	if strings.TrimSpace(buf.String()) != "[]" {
		t.Errorf("empty run rendered %q, want []", buf.String())
	}
}
