package lint_test

import (
	"strings"
	"testing"

	"pdn3d/internal/lint"
)

func TestSuite(t *testing.T) {
	suite := lint.Suite()
	if len(suite) != 6 {
		t.Fatalf("suite has %d analyzers, want 6", len(suite))
	}
	seen := map[string]bool{}
	for _, a := range suite {
		if a.Name == "" || a.Doc == "" {
			t.Errorf("analyzer %+v missing name or doc", a)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
		if a.Run == nil && a.Name != "unusedsuppress" {
			t.Errorf("analyzer %q has no Run and is not runner-implemented", a.Name)
		}
	}
}

// TestRepoIsClean is the in-tree mirror of the CI lint gate: the whole
// module must pass its own analyzer suite. Any new violation fails
// `go test ./...` even where CI is not running.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping whole-tree lint in -short mode")
	}
	prog, err := lint.Load("../..", "./...")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	findings, err := lint.Run(prog, lint.Suite())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
}

// TestFindingString pins the file:line:col output format CI greps.
func TestFindingString(t *testing.T) {
	prog, err := lint.Load("../..", "./internal/lint/suppress")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	findings, err := lint.Run(prog, lint.Suite())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for _, f := range findings {
		s := f.String()
		if !strings.Contains(s, ".go:") || !strings.HasSuffix(s, "("+f.Analyzer+")") {
			t.Errorf("malformed finding rendering: %q", s)
		}
	}
}
