package floateq_test

import (
	"testing"

	"pdn3d/internal/lint/analysis"
	"pdn3d/internal/lint/analysistest"
	"pdn3d/internal/lint/floateq"
)

func TestFloateq(t *testing.T) {
	analysistest.Run(t, "testdata", []*analysis.Analyzer{floateq.Analyzer}, "a")
}
