// Package floateq flags == and != between floating-point expressions in
// non-test code. Accumulated rounding makes exact float equality a
// latent bug in analysis paths (the paper's validation discipline is
// tolerance-based: 1.3 % vs. EPS, RMSE < 0.135, never exact match); use
// the epsilon helpers in internal/units instead. Comparison against an
// exact zero constant is allowed — guarding a division or detecting an
// unset value with `v == 0` is well-defined.
package floateq

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"

	"pdn3d/internal/lint/analysis"
)

// Analyzer is the floateq check.
var Analyzer = &analysis.Analyzer{
	Name: "floateq",
	Doc: "flags ==/!= on floating-point operands outside tests " +
		"(zero-constant comparisons allowed); use units.ApproxEqual",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		if analysis.IsTestFilename(pass.Fset.Position(f.Pos()).Filename) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			x := pass.TypesInfo.Types[be.X]
			y := pass.TypesInfo.Types[be.Y]
			if !isFloat(x.Type) && !isFloat(y.Type) {
				return true
			}
			if isZeroConst(x.Value) || isZeroConst(y.Value) {
				return true
			}
			pass.Reportf(be.OpPos,
				"floating-point %s comparison; use units.ApproxEqual (rounding makes exact equality unreliable)", be.Op)
			return true
		})
	}
	return nil
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

func isZeroConst(v constant.Value) bool {
	return v != nil && (v.Kind() == constant.Int || v.Kind() == constant.Float) && constant.Sign(v) == 0
}
