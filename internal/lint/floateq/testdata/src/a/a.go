package a

// eq compares floats exactly and must be flagged.
func eq(a, b float64) bool {
	return a == b // want `floating-point == comparison`
}

// neq is the != form.
func neq(a, b float32) bool {
	return a != b // want `floating-point != comparison`
}

// mixedConst compares against a nonzero constant.
func mixedConst(a float64) bool {
	return a == 0.5 // want `floating-point == comparison`
}

// zeroGuard compares against an exact zero constant, which is allowed.
func zeroGuard(a float64) bool {
	return a == 0
}

// zeroFloatGuard uses the spelled-out zero literal.
func zeroFloatGuard(a float64) bool {
	return a != 0.0
}

// ints compares integers; not a float comparison.
func ints(a, b int) bool {
	return a == b
}

// waived carries a justified suppression.
func waived(a, b float64) bool {
	//pdnlint:ignore floateq comparing interned table keys that are copied, never recomputed
	return a == b
}

// zeroSkipStamp mirrors the rmesh stamp recorders: an early return on an
// exact-zero conductance replicates sparse.Builder's skip rule and is a
// well-defined zero-constant comparison.
func zeroSkipStamp(g float64, sink func(float64)) {
	if g == 0 {
		return
	}
	sink(g)
	sink(-g)
}

// residualCheck compares two computed floats and must be flagged even
// inside a guard clause.
func residualCheck(res, prev float64) bool {
	if res == prev { // want `floating-point == comparison`
		return true
	}
	return false
}
