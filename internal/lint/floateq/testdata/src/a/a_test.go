package a

// eqInTest is exempt: tests may compare floats they just constructed.
func eqInTest(a, b float64) bool {
	return a == b
}
