// Package lint is the pdnlint runner: it drives the project's analyzer
// suite over type-checked packages in dependency order (so cross
// -package facts flow from defining package to importer), applies
// //pdnlint:ignore suppression directives and the lint.baseline
// allowlist, and implements the unusedsuppress check that keeps those
// waivers honest. cmd/pdnlint is the CLI front end;
// internal/lint/analysistest reuses the same runner so fixtures see
// exactly the CI behavior.
package lint

import (
	"encoding/json"
	"fmt"
	"go/token"
	"io"
	"path/filepath"
	"sort"

	"pdn3d/internal/lint/analysis"
	"pdn3d/internal/lint/baseline"
	"pdn3d/internal/lint/ctxflow"
	"pdn3d/internal/lint/floateq"
	"pdn3d/internal/lint/frozenmut"
	"pdn3d/internal/lint/load"
	"pdn3d/internal/lint/lockbalance"
	"pdn3d/internal/lint/mapiter"
	"pdn3d/internal/lint/obscontract"
	"pdn3d/internal/lint/rawgo"
	"pdn3d/internal/lint/seededrand"
	"pdn3d/internal/lint/suppress"
	"pdn3d/internal/lint/unusedsuppress"
	"pdn3d/internal/lint/walltime"
)

// Suite returns the full pdnlint analyzer suite in reporting order.
func Suite() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		mapiter.Analyzer,
		rawgo.Analyzer,
		floateq.Analyzer,
		seededrand.Analyzer,
		walltime.Analyzer,
		ctxflow.Analyzer,
		lockbalance.Analyzer,
		frozenmut.Analyzer,
		obscontract.Analyzer,
		unusedsuppress.Analyzer,
	}
}

// Load type-checks the packages matching patterns for analysis; it is a
// thin re-export of internal/lint/load.Load so drivers depend on one
// package.
func Load(dir string, patterns ...string) (*load.Program, error) {
	return load.Load(dir, patterns...)
}

// Severity classifies how a finding gates the run.
type Severity string

const (
	// SeverityError findings fail the run (exit status 1).
	SeverityError Severity = "error"
	// SeverityWarn findings are printed but do not fail the run.
	SeverityWarn Severity = "warn"
	// SeverityOff disables an analyzer entirely (accepted only as an
	// override; no finding ever carries it).
	SeverityOff Severity = "off"
)

// ParseSeverity validates a severity override value.
func ParseSeverity(s string) (Severity, error) {
	switch Severity(s) {
	case SeverityError, SeverityWarn, SeverityOff:
		return Severity(s), nil
	}
	return "", fmt.Errorf("invalid severity %q (want error, warn, or off)", s)
}

// Finding is one unsuppressed diagnostic.
type Finding struct {
	// Analyzer names the check that produced the finding.
	Analyzer string
	// Pos locates the finding.
	Pos token.Position
	// Message describes the violation.
	Message string
	// Severity is SeverityError unless overridden per analyzer.
	Severity Severity
}

// String renders the finding in the conventional file:line:col form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s (%s)", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Message, f.Analyzer)
}

// Options tunes one runner invocation. The zero value runs every
// analyzer at SeverityError with no baseline.
type Options struct {
	// Severity overrides per-analyzer gating: error (default), warn, or
	// off. An analyzer set to off does not run at all, and its
	// suppression directives are exempt from the unusedsuppress audit.
	Severity map[string]Severity
	// Baseline, when non-nil, drops findings matching the allowlist and
	// reports entries that matched nothing (analyzer "baseline") so the
	// file only shrinks. Matching uses paths relative to Root.
	Baseline *baseline.Set
	// BaselinePath names the baseline file in stale-entry findings.
	BaselinePath string
	// Root is the directory baseline paths (and WriteJSON paths) are
	// relative to; empty means paths are used as recorded.
	Root string
}

// Run executes the given analyzers over every package of prog with
// default options. See RunWith.
func Run(prog *load.Program, analyzers []*analysis.Analyzer) ([]Finding, error) {
	return RunWith(prog, analyzers, Options{})
}

// RunWith executes the given analyzers over every package of prog in
// dependency order, sharing one fact store so facts exported while
// analyzing a package are visible to passes over its importers. It then
// filters diagnostics through //pdnlint:ignore directives and the
// baseline, and — when the suite includes unusedsuppress — reports
// directives that suppressed nothing. Findings are sorted by position,
// then analyzer, then message, so output is deterministic (the linter
// holds itself to the contract it enforces).
func RunWith(prog *load.Program, analyzers []*analysis.Analyzer, opts Options) ([]Finding, error) {
	known := map[string]bool{}
	off := map[string]bool{}
	checkSuppress := false
	for _, a := range analyzers {
		known[a.Name] = true
		if a.Name == unusedsuppress.Analyzer.Name {
			checkSuppress = true
		}
	}
	for name, sev := range opts.Severity {
		if !known[name] {
			return nil, fmt.Errorf("lint: severity override for unknown analyzer %q", name)
		}
		if sev == SeverityOff {
			off[name] = true
		}
	}

	store := analysis.NewFactStore()
	var findings []Finding
	var directives []*suppress.Directive
	for _, pkg := range prog.DependencyOrder() {
		var dirs []*suppress.Directive
		for _, f := range pkg.Files {
			name := prog.Fset.Position(f.Pos()).Filename
			if src, ok := pkg.Src[name]; ok {
				dirs = append(dirs, suppress.ParseFile(prog.Fset, f, src)...)
			}
		}
		directives = append(directives, dirs...)

		for _, a := range analyzers {
			if a.Run == nil || off[a.Name] {
				continue
			}
			pass := &analysis.Pass{
				Analyzer:  a,
				Path:      pkg.ImportPath,
				Fset:      prog.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
			}
			store.Bind(pass)
			var diags []analysis.Diagnostic
			pass.Report = func(d analysis.Diagnostic) { diags = append(diags, d) }
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("lint: %s on %s: %v", a.Name, pkg.ImportPath, err)
			}
			sev := SeverityError
			if s, ok := opts.Severity[a.Name]; ok {
				sev = s
			}
			for _, d := range diags {
				pos := prog.Fset.Position(d.Pos)
				if suppress.Match(dirs, a.Name, pos.Filename, pos.Line) != nil {
					continue
				}
				findings = append(findings, Finding{Analyzer: a.Name, Pos: pos, Message: d.Message, Severity: sev})
			}
		}
	}

	if checkSuppress && !off[unusedsuppress.Analyzer.Name] {
		findings = append(findings, auditDirectives(prog.Fset, directives, known, off)...)
	}

	if opts.Baseline != nil {
		findings = applyBaseline(findings, opts)
	}

	SortFindings(findings)
	return findings, nil
}

// SortFindings orders findings by (file, line, column, analyzer,
// message) — the deterministic output order every driver emits.
// Analyzer execution order never leaks into reports: two analyzers
// hitting the same position tie-break alphabetically.
func SortFindings(findings []Finding) {
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}

// applyBaseline drops baselined findings and appends a stale-entry
// finding for every allowlist line that matched nothing.
func applyBaseline(findings []Finding, opts Options) []Finding {
	kept := findings[:0]
	for _, f := range findings {
		if opts.Baseline.Match(f.Analyzer, RelPath(opts.Root, f.Pos.Filename), f.Message) {
			continue
		}
		kept = append(kept, f)
	}
	path := opts.BaselinePath
	if path == "" {
		path = "lint.baseline"
	}
	for _, e := range opts.Baseline.Stale() {
		kept = append(kept, Finding{
			Analyzer: "baseline",
			Pos:      token.Position{Filename: path, Line: e.Line, Column: 1},
			Message:  fmt.Sprintf("stale baseline entry: no %s finding %q in %s", e.Analyzer, e.Message, e.Path),
			Severity: SeverityError,
		})
	}
	return kept
}

// ErrorCount reports how many findings gate the run (severity error).
func ErrorCount(findings []Finding) int {
	n := 0
	for _, f := range findings {
		if f.Severity != SeverityWarn {
			n++
		}
	}
	return n
}

// RelPath renders path relative to root with forward slashes — the form
// baseline entries and JSON output use. Paths outside root (or when
// root is empty) pass through unchanged apart from slash normalization.
func RelPath(root, path string) string {
	if root != "" {
		if rel, err := filepath.Rel(root, path); err == nil && rel != ".." && !filepath.IsAbs(rel) &&
			!(len(rel) > 2 && rel[:3] == ".."+string(filepath.Separator)) {
			path = rel
		}
	}
	return filepath.ToSlash(path)
}

// jsonFinding is the -json wire form of one finding; the field set is
// part of the CLI contract (CI uploads it as an artifact).
type jsonFinding struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Severity string `json:"severity"`
	Message  string `json:"message"`
}

// WriteJSON renders findings as a JSON array (one object per finding,
// paths relative to root) followed by a newline. An empty run writes
// "[]" so consumers can always json-decode the artifact.
func WriteJSON(w io.Writer, findings []Finding, root string) error {
	out := make([]jsonFinding, 0, len(findings))
	for _, f := range findings {
		sev := f.Severity
		if sev == "" {
			sev = SeverityError
		}
		out = append(out, jsonFinding{
			Analyzer: f.Analyzer,
			File:     RelPath(root, f.Pos.Filename),
			Line:     f.Pos.Line,
			Col:      f.Pos.Column,
			Severity: string(sev),
			Message:  f.Message,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// auditDirectives produces the unusedsuppress findings for one run.
// Directives naming an analyzer disabled by a severity override are
// skipped — they had no chance to match.
func auditDirectives(fset *token.FileSet, dirs []*suppress.Directive, known, off map[string]bool) []Finding {
	name := unusedsuppress.Analyzer.Name
	var out []Finding
	for _, d := range dirs {
		pos := fset.Position(d.Pos)
		switch {
		case d.Analyzer == "" || d.Reason == "":
			out = append(out, Finding{Analyzer: name, Pos: pos, Severity: SeverityError,
				Message: "malformed suppression; the form is //pdnlint:ignore <analyzer> <reason>"})
		case !known[d.Analyzer]:
			out = append(out, Finding{Analyzer: name, Pos: pos, Severity: SeverityError,
				Message: fmt.Sprintf("suppression names unknown analyzer %q", d.Analyzer)})
		case off[d.Analyzer]:
			// Disabled this run; the directive could not have matched.
		case !d.Used:
			out = append(out, Finding{Analyzer: name, Pos: pos, Severity: SeverityError,
				Message: fmt.Sprintf("unused suppression: no %s diagnostic on line %d", d.Analyzer, d.TargetLine)})
		}
	}
	return out
}
