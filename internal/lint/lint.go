// Package lint is the pdnlint runner: it drives the project's analyzer
// suite over type-checked packages, applies //pdnlint:ignore
// suppression directives, and implements the unusedsuppress check that
// keeps those directives honest. cmd/pdnlint is the CLI front end;
// internal/lint/analysistest reuses the same runner so fixtures see
// exactly the CI behavior.
package lint

import (
	"fmt"
	"go/token"
	"sort"

	"pdn3d/internal/lint/analysis"
	"pdn3d/internal/lint/floateq"
	"pdn3d/internal/lint/load"
	"pdn3d/internal/lint/mapiter"
	"pdn3d/internal/lint/rawgo"
	"pdn3d/internal/lint/seededrand"
	"pdn3d/internal/lint/suppress"
	"pdn3d/internal/lint/unusedsuppress"
	"pdn3d/internal/lint/walltime"
)

// Suite returns the full pdnlint analyzer suite in reporting order.
func Suite() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		mapiter.Analyzer,
		rawgo.Analyzer,
		floateq.Analyzer,
		seededrand.Analyzer,
		walltime.Analyzer,
		unusedsuppress.Analyzer,
	}
}

// Load type-checks the packages matching patterns for analysis; it is a
// thin re-export of internal/lint/load.Load so drivers depend on one
// package.
func Load(dir string, patterns ...string) (*load.Program, error) {
	return load.Load(dir, patterns...)
}

// Finding is one unsuppressed diagnostic.
type Finding struct {
	// Analyzer names the check that produced the finding.
	Analyzer string
	// Pos locates the finding.
	Pos token.Position
	// Message describes the violation.
	Message string
}

// String renders the finding in the conventional file:line:col form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s (%s)", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Message, f.Analyzer)
}

// Run executes the given analyzers over every package of prog, filters
// diagnostics through //pdnlint:ignore directives, and — when the suite
// includes unusedsuppress — reports directives that suppressed nothing.
// Findings are sorted by position, then analyzer, then message, so
// output is deterministic (the linter holds itself to the contract it
// enforces).
func Run(prog *load.Program, analyzers []*analysis.Analyzer) ([]Finding, error) {
	known := map[string]bool{}
	checkSuppress := false
	for _, a := range analyzers {
		known[a.Name] = true
		if a.Name == unusedsuppress.Analyzer.Name {
			checkSuppress = true
		}
	}

	var findings []Finding
	var directives []*suppress.Directive
	for _, pkg := range prog.Packages {
		var dirs []*suppress.Directive
		for _, f := range pkg.Files {
			name := prog.Fset.Position(f.Pos()).Filename
			if src, ok := pkg.Src[name]; ok {
				dirs = append(dirs, suppress.ParseFile(prog.Fset, f, src)...)
			}
		}
		directives = append(directives, dirs...)

		for _, a := range analyzers {
			if a.Run == nil {
				continue
			}
			pass := &analysis.Pass{
				Analyzer:  a,
				Path:      pkg.ImportPath,
				Fset:      prog.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
			}
			var diags []analysis.Diagnostic
			pass.Report = func(d analysis.Diagnostic) { diags = append(diags, d) }
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("lint: %s on %s: %v", a.Name, pkg.ImportPath, err)
			}
			for _, d := range diags {
				pos := prog.Fset.Position(d.Pos)
				if suppress.Match(dirs, a.Name, pos.Filename, pos.Line) != nil {
					continue
				}
				findings = append(findings, Finding{Analyzer: a.Name, Pos: pos, Message: d.Message})
			}
		}
	}

	if checkSuppress {
		findings = append(findings, auditDirectives(prog.Fset, directives, known)...)
	}

	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return findings, nil
}

// auditDirectives produces the unusedsuppress findings for one run.
func auditDirectives(fset *token.FileSet, dirs []*suppress.Directive, known map[string]bool) []Finding {
	name := unusedsuppress.Analyzer.Name
	var out []Finding
	for _, d := range dirs {
		pos := fset.Position(d.Pos)
		switch {
		case d.Analyzer == "" || d.Reason == "":
			out = append(out, Finding{Analyzer: name, Pos: pos,
				Message: "malformed suppression; the form is //pdnlint:ignore <analyzer> <reason>"})
		case !known[d.Analyzer]:
			out = append(out, Finding{Analyzer: name, Pos: pos,
				Message: fmt.Sprintf("suppression names unknown analyzer %q", d.Analyzer)})
		case !d.Used:
			out = append(out, Finding{Analyzer: name, Pos: pos,
				Message: fmt.Sprintf("unused suppression: no %s diagnostic on line %d", d.Analyzer, d.TargetLine)})
		}
	}
	return out
}
