// Package sev is a runner fixture carrying one walltime and one floateq
// violation at known positions, used by the lint package's own tests to
// exercise severity overrides, baselines, and JSON output.
package sev

import "time"

// Drift reads the wall clock and compares floats exactly.
func Drift(a, b float64) bool {
	t := time.Now()
	_ = t
	return a == b
}
