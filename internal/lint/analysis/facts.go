package analysis

import (
	"go/types"
	"reflect"
	"sort"
)

// A Fact is a datum one analyzer attaches to a program object (or a
// whole package) for downstream passes to consume: "this type is
// frozen", "this function blocks". Facts mirror the shape of
// golang.org/x/tools/go/analysis facts — a pointer to a struct with the
// marker method — but need no serialization: the pdnlint loader
// type-checks the whole module in one process, so facts flow through an
// in-memory store threaded by the runner, which analyzes packages in
// dependency order so a fact is always exported before any dependent
// package can ask for it.
type Fact interface {
	// AFact marks the type as a fact. It is never called.
	AFact()
}

// ObjectFact is one (object, fact) pair from the store.
type ObjectFact struct {
	Object types.Object
	Fact   Fact
}

// PackageFact is one (package, fact) pair from the store.
type PackageFact struct {
	Package *types.Package
	Fact    Fact
}

// FactStore holds the facts of one runner invocation, shared by every
// (analyzer, package) pass. Facts are namespaced by analyzer, so two
// analyzers can attach facts of the same Go type without collision. The
// store is not safe for concurrent use; the runner drives passes
// sequentially.
type FactStore struct {
	objects  map[factKey]Fact
	packages map[pkgFactKey]Fact
}

type factKey struct {
	analyzer string
	obj      types.Object
	typ      reflect.Type
}

type pkgFactKey struct {
	analyzer string
	pkg      *types.Package
	typ      reflect.Type
}

// NewFactStore returns an empty store.
func NewFactStore() *FactStore {
	return &FactStore{
		objects:  map[factKey]Fact{},
		packages: map[pkgFactKey]Fact{},
	}
}

func factType(f Fact) reflect.Type {
	t := reflect.TypeOf(f)
	if t == nil || t.Kind() != reflect.Ptr {
		panic("analysis: fact must be a pointer to a struct")
	}
	return t
}

// exportObject records fact for obj under the analyzer's namespace,
// replacing any previous fact of the same concrete type.
func (s *FactStore) exportObject(analyzer string, obj types.Object, fact Fact) {
	if obj == nil {
		panic("analysis: ExportObjectFact on nil object")
	}
	s.objects[factKey{analyzer, obj, factType(fact)}] = fact
}

// importObject copies the stored fact of fact's concrete type for obj
// into *fact, reporting whether one existed.
func (s *FactStore) importObject(analyzer string, obj types.Object, fact Fact) bool {
	if obj == nil {
		return false
	}
	stored, ok := s.objects[factKey{analyzer, obj, factType(fact)}]
	if !ok {
		return false
	}
	reflect.ValueOf(fact).Elem().Set(reflect.ValueOf(stored).Elem())
	return true
}

// exportPackage records fact for pkg under the analyzer's namespace.
func (s *FactStore) exportPackage(analyzer string, pkg *types.Package, fact Fact) {
	if pkg == nil {
		panic("analysis: ExportPackageFact outside a package")
	}
	s.packages[pkgFactKey{analyzer, pkg, factType(fact)}] = fact
}

// importPackage copies pkg's stored fact of fact's concrete type into
// *fact, reporting whether one existed.
func (s *FactStore) importPackage(analyzer string, pkg *types.Package, fact Fact) bool {
	if pkg == nil {
		return false
	}
	stored, ok := s.packages[pkgFactKey{analyzer, pkg, factType(fact)}]
	if !ok {
		return false
	}
	reflect.ValueOf(fact).Elem().Set(reflect.ValueOf(stored).Elem())
	return true
}

// allPackageFacts returns every package fact of the analyzer, sorted by
// package path so iteration is deterministic.
func (s *FactStore) allPackageFacts(analyzer string) []PackageFact {
	var out []PackageFact
	for k, f := range s.packages {
		if k.analyzer == analyzer {
			out = append(out, PackageFact{Package: k.pkg, Fact: f})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Package.Path() < out[j].Package.Path() })
	return out
}

// Bind wires a Pass's fact methods to this store under the pass's
// analyzer namespace. The runner calls it once per pass; analyzers only
// see the Pass-level API.
func (s *FactStore) Bind(p *Pass) {
	name := p.Analyzer.Name
	p.exportObjectFact = func(obj types.Object, fact Fact) { s.exportObject(name, obj, fact) }
	p.importObjectFact = func(obj types.Object, fact Fact) bool { return s.importObject(name, obj, fact) }
	p.exportPackageFact = func(fact Fact) { s.exportPackage(name, p.Pkg, fact) }
	p.importPackageFact = func(pkg *types.Package, fact Fact) bool { return s.importPackage(name, pkg, fact) }
	p.allPackageFacts = func() []PackageFact { return s.allPackageFacts(name) }
}
