package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

func sprintf(format string, args ...any) string {
	return fmt.Sprintf(format, args...)
}

// IsTestFilename reports whether name (a full path or base name) is a Go
// test file.
func IsTestFilename(name string) bool {
	return strings.HasSuffix(name, "_test.go")
}

// PathHasSegment reports whether importPath contains seg as a complete
// "/"-separated segment (e.g. PathHasSegment("pdn3d/cmd/irsim", "cmd")).
func PathHasSegment(importPath, seg string) bool {
	for _, s := range strings.Split(importPath, "/") {
		if s == seg {
			return true
		}
	}
	return false
}

// CalleeFunc resolves the called package-level function or method of a
// call expression, or nil if the callee is not a declared function (a
// builtin, a function literal, a conversion, or a function-typed
// variable).
func CalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// IsPkgFunc reports whether call invokes the package-level function
// pkgPath.name (not a method, and not a value of function type).
func IsPkgFunc(info *types.Info, call *ast.CallExpr, pkgPath, name string) bool {
	fn := CalleeFunc(info, call)
	if fn == nil || fn.Name() != name || fn.Pkg() == nil || fn.Pkg().Path() != pkgPath {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}
