// Package analysis defines the analyzer interface for pdnlint, the
// project's static-analysis suite. It mirrors the shape of
// golang.org/x/tools/go/analysis (Analyzer / Pass / Diagnostic) so the
// suite can migrate onto the upstream multichecker if that dependency is
// ever vendored, but it is implemented entirely on the standard library:
// the container image pins the module to a zero-dependency go.mod, so the
// loader and runner (internal/lint/load, internal/lint) stand in for
// go/packages and the upstream driver.
package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one named check. Analyzers are stateless; all
// per-package state flows through the Pass.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //pdnlint:ignore suppression directives. It must be a valid
	// identifier.
	Name string
	// Doc is a one-paragraph description of the invariant the analyzer
	// guards, shown by `pdnlint -help`.
	Doc string
	// Run inspects a single package and reports diagnostics via
	// pass.Report. A nil Run marks a driver-implemented analyzer (the
	// unusedsuppress check, which needs visibility across the whole
	// suite's diagnostics and so lives in the runner).
	Run func(*Pass) error
	// UsesFacts marks an analyzer that exports or imports facts. The
	// runner analyzes packages in dependency order either way; the flag
	// documents the dependency and lets drivers warn when such an
	// analyzer runs over a package subset (facts from unanalyzed
	// dependencies are silently absent).
	UsesFacts bool
}

// Pass carries one package's syntax and type information to an analyzer.
type Pass struct {
	// Analyzer is the check being run.
	Analyzer *Analyzer
	// Path is the package's import path. For test fixtures loaded from an
	// analysistest testdata tree it is the directory path relative to
	// testdata/src (e.g. "a" or "cmd/app").
	Path string
	// Fset maps token positions for all Files.
	Fset *token.FileSet
	// Files is the package's parsed syntax, including in-package
	// _test.go files.
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// TypesInfo records types, constant values, and uses for Files.
	TypesInfo *types.Info
	// Report delivers one diagnostic to the driver.
	Report func(Diagnostic)

	// Fact plumbing, bound by the runner via FactStore.Bind. Nil in a
	// pass constructed without a store (facts silently disabled):
	// exports are dropped and imports report absence.
	exportObjectFact  func(obj types.Object, fact Fact)
	importObjectFact  func(obj types.Object, fact Fact) bool
	exportPackageFact func(fact Fact)
	importPackageFact func(pkg *types.Package, fact Fact) bool
	allPackageFacts   func() []PackageFact
}

// ExportObjectFact attaches fact to obj for downstream passes of the
// same analyzer. The runner analyzes packages in dependency order, so a
// fact exported while analyzing obj's declaring package is visible to
// every pass over a package that imports it.
func (p *Pass) ExportObjectFact(obj types.Object, fact Fact) {
	if p.exportObjectFact != nil {
		p.exportObjectFact(obj, fact)
	}
}

// ImportObjectFact copies the fact of fact's concrete type attached to
// obj into *fact, reporting whether one was found.
func (p *Pass) ImportObjectFact(obj types.Object, fact Fact) bool {
	return p.importObjectFact != nil && p.importObjectFact(obj, fact)
}

// ExportPackageFact attaches fact to the package under analysis.
func (p *Pass) ExportPackageFact(fact Fact) {
	if p.exportPackageFact != nil {
		p.exportPackageFact(fact)
	}
}

// ImportPackageFact copies pkg's fact of fact's concrete type into
// *fact, reporting whether one was found.
func (p *Pass) ImportPackageFact(pkg *types.Package, fact Fact) bool {
	return p.importPackageFact != nil && p.importPackageFact(pkg, fact)
}

// AllPackageFacts lists every package fact this analyzer has exported
// so far, sorted by package path.
func (p *Pass) AllPackageFacts() []PackageFact {
	if p.allPackageFacts == nil {
		return nil
	}
	return p.allPackageFacts()
}

// Diagnostic is one finding at a source position.
type Diagnostic struct {
	// Pos is the primary position of the finding.
	Pos token.Pos
	// Message describes the violation and the expected remedy.
	Message string
}

// Reportf constructs and reports a Diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: sprintf(format, args...)})
}

// IsTestFile reports whether pos lies in a _test.go file. Several
// analyzers relax their invariant inside tests (tests may spawn bare
// goroutines to provoke races, compare floats they just constructed,
// and so on).
func (p *Pass) IsTestFile(pos token.Pos) bool {
	return IsTestFilename(p.Fset.Position(pos).Filename)
}
