// Package analysis defines the analyzer interface for pdnlint, the
// project's static-analysis suite. It mirrors the shape of
// golang.org/x/tools/go/analysis (Analyzer / Pass / Diagnostic) so the
// suite can migrate onto the upstream multichecker if that dependency is
// ever vendored, but it is implemented entirely on the standard library:
// the container image pins the module to a zero-dependency go.mod, so the
// loader and runner (internal/lint/load, internal/lint) stand in for
// go/packages and the upstream driver.
package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one named check. Analyzers are stateless; all
// per-package state flows through the Pass.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //pdnlint:ignore suppression directives. It must be a valid
	// identifier.
	Name string
	// Doc is a one-paragraph description of the invariant the analyzer
	// guards, shown by `pdnlint -help`.
	Doc string
	// Run inspects a single package and reports diagnostics via
	// pass.Report. A nil Run marks a driver-implemented analyzer (the
	// unusedsuppress check, which needs visibility across the whole
	// suite's diagnostics and so lives in the runner).
	Run func(*Pass) error
}

// Pass carries one package's syntax and type information to an analyzer.
type Pass struct {
	// Analyzer is the check being run.
	Analyzer *Analyzer
	// Path is the package's import path. For test fixtures loaded from an
	// analysistest testdata tree it is the directory path relative to
	// testdata/src (e.g. "a" or "cmd/app").
	Path string
	// Fset maps token positions for all Files.
	Fset *token.FileSet
	// Files is the package's parsed syntax, including in-package
	// _test.go files.
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// TypesInfo records types, constant values, and uses for Files.
	TypesInfo *types.Info
	// Report delivers one diagnostic to the driver.
	Report func(Diagnostic)
}

// Diagnostic is one finding at a source position.
type Diagnostic struct {
	// Pos is the primary position of the finding.
	Pos token.Pos
	// Message describes the violation and the expected remedy.
	Message string
}

// Reportf constructs and reports a Diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: sprintf(format, args...)})
}

// IsTestFile reports whether pos lies in a _test.go file. Several
// analyzers relax their invariant inside tests (tests may spawn bare
// goroutines to provoke races, compare floats they just constructed,
// and so on).
func (p *Pass) IsTestFile(pos token.Pos) bool {
	return IsTestFilename(p.Fset.Position(pos).Filename)
}
