package load_test

import (
	"go/token"
	"strings"
	"testing"

	"pdn3d/internal/lint/load"
)

// TestLoadModulePackage type-checks a real module package through the
// go-list-backed loader, test files included.
func TestLoadModulePackage(t *testing.T) {
	prog, err := load.Load("../../..", "./internal/units")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(prog.Packages) != 1 {
		t.Fatalf("got %d packages, want 1", len(prog.Packages))
	}
	pkg := prog.Packages[0]
	if pkg.ImportPath != "pdn3d/internal/units" {
		t.Errorf("ImportPath = %q", pkg.ImportPath)
	}
	if pkg.Types == nil || pkg.Types.Scope().Lookup("ApproxEqual") == nil {
		t.Error("package scope is missing ApproxEqual")
	}
	var haveTest bool
	for _, f := range pkg.Files {
		name := prog.Fset.Position(f.Pos()).Filename
		if strings.HasSuffix(name, "_test.go") {
			haveTest = true
		}
		if _, ok := pkg.Src[name]; !ok {
			t.Errorf("no source retained for root file %s", name)
		}
	}
	if !haveTest {
		t.Error("in-package test files were not loaded")
	}
	if pkg.Info == nil || len(pkg.Info.Uses) == 0 {
		t.Error("type info not populated")
	}
}

// TestLoadXTest checks that external test packages come back as
// separate roots.
func TestLoadXTest(t *testing.T) {
	prog, err := load.Load("../../..", "./internal/lint/suppress")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	var paths []string
	for _, p := range prog.Packages {
		paths = append(paths, p.ImportPath)
	}
	want := []string{"pdn3d/internal/lint/suppress", "pdn3d/internal/lint/suppress_test"}
	if strings.Join(paths, ",") != strings.Join(want, ",") {
		t.Errorf("packages = %v, want %v", paths, want)
	}
}

// TestLoadBadPattern surfaces go list failures as errors.
func TestLoadBadPattern(t *testing.T) {
	if _, err := load.Load("../../..", "./does/not/exist"); err == nil {
		t.Error("Load succeeded on a nonexistent pattern")
	}
}

// TestPositionsResolve guards the FileSet plumbing: every file's
// position must map back to a real name.
func TestPositionsResolve(t *testing.T) {
	prog, err := load.Load("../../..", "./internal/units")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	for _, pkg := range prog.Packages {
		for _, f := range pkg.Files {
			if pos := prog.Fset.Position(f.Pos()); pos.Filename == "" || pos == (token.Position{}) {
				t.Errorf("unresolvable position for a file in %s", pkg.ImportPath)
			}
		}
	}
}
