package load_test

import (
	"go/token"
	"strings"
	"testing"

	"pdn3d/internal/lint/load"
)

// TestLoadModulePackage type-checks a real module package through the
// go-list-backed loader, test files included.
func TestLoadModulePackage(t *testing.T) {
	prog, err := load.Load("../../..", "./internal/units")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(prog.Packages) != 1 {
		t.Fatalf("got %d packages, want 1", len(prog.Packages))
	}
	pkg := prog.Packages[0]
	if pkg.ImportPath != "pdn3d/internal/units" {
		t.Errorf("ImportPath = %q", pkg.ImportPath)
	}
	if pkg.Types == nil || pkg.Types.Scope().Lookup("ApproxEqual") == nil {
		t.Error("package scope is missing ApproxEqual")
	}
	var haveTest bool
	for _, f := range pkg.Files {
		name := prog.Fset.Position(f.Pos()).Filename
		if strings.HasSuffix(name, "_test.go") {
			haveTest = true
		}
		if _, ok := pkg.Src[name]; !ok {
			t.Errorf("no source retained for root file %s", name)
		}
	}
	if !haveTest {
		t.Error("in-package test files were not loaded")
	}
	if pkg.Info == nil || len(pkg.Info.Uses) == 0 {
		t.Error("type info not populated")
	}
}

// TestLoadXTest checks that external test packages come back as
// separate roots.
func TestLoadXTest(t *testing.T) {
	prog, err := load.Load("../../..", "./internal/lint/suppress")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	var paths []string
	for _, p := range prog.Packages {
		paths = append(paths, p.ImportPath)
	}
	want := []string{"pdn3d/internal/lint/suppress", "pdn3d/internal/lint/suppress_test"}
	if strings.Join(paths, ",") != strings.Join(want, ",") {
		t.Errorf("packages = %v, want %v", paths, want)
	}
}

// TestLoadXTestTypeChecked is the regression test for external test
// packages as analysis roots: speckey and rmesh both keep xtest files,
// and the `<path>_test` roots must come back fully type-checked with
// source retained (analyzers parse directives out of Src) — not as the
// comment-stripped skeletons dependency packages get.
func TestLoadXTestTypeChecked(t *testing.T) {
	prog, err := load.Load("../../..", "./internal/speckey", "./internal/rmesh")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	roots := map[string]bool{}
	for _, p := range prog.Packages {
		roots[p.ImportPath] = true
	}
	for _, want := range []string{
		"pdn3d/internal/speckey", "pdn3d/internal/speckey_test",
		"pdn3d/internal/rmesh", "pdn3d/internal/rmesh_test",
	} {
		if !roots[want] {
			t.Errorf("missing root %s (have %v)", want, roots)
		}
	}
	for _, p := range prog.Packages {
		if !strings.HasSuffix(p.ImportPath, "_test") {
			continue
		}
		if p.Types == nil || p.Info == nil || len(p.Info.Uses) == 0 {
			t.Errorf("%s: xtest package not type-checked", p.ImportPath)
			continue
		}
		haveComments := false
		for _, f := range p.Files {
			name := prog.Fset.Position(f.Pos()).Filename
			if !strings.HasSuffix(name, "_test.go") {
				t.Errorf("%s: non-test file %s in xtest package", p.ImportPath, name)
			}
			if _, ok := p.Src[name]; !ok {
				t.Errorf("%s: no source retained for %s", p.ImportPath, name)
			}
			if len(f.Comments) > 0 {
				haveComments = true
			}
		}
		if !haveComments {
			t.Errorf("%s: comments stripped from every root file (ParseComments lost)", p.ImportPath)
		}
	}
}

// TestLoadBadPattern surfaces go list failures as errors.
func TestLoadBadPattern(t *testing.T) {
	if _, err := load.Load("../../..", "./does/not/exist"); err == nil {
		t.Error("Load succeeded on a nonexistent pattern")
	}
}

// TestPositionsResolve guards the FileSet plumbing: every file's
// position must map back to a real name.
func TestPositionsResolve(t *testing.T) {
	prog, err := load.Load("../../..", "./internal/units")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	for _, pkg := range prog.Packages {
		for _, f := range pkg.Files {
			if pos := prog.Fset.Position(f.Pos()); pos.Filename == "" || pos == (token.Position{}) {
				t.Errorf("unresolvable position for a file in %s", pkg.ImportPath)
			}
		}
	}
}
