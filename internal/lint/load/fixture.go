package load

import (
	"fmt"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// LoadDir type-checks analysistest fixture packages. srcRoot is a
// testdata "src" directory; each pkgPath names a package by its
// directory relative to srcRoot (e.g. "a", "cmd/app"). Fixture packages
// may import each other by those relative paths and may import standard
// library or module packages, which are resolved with `go list` run from
// the enclosing module (found by walking up from srcRoot to a go.mod).
func LoadDir(srcRoot string, pkgPaths ...string) (*Program, error) {
	abs, err := filepath.Abs(srcRoot)
	if err != nil {
		return nil, err
	}
	modDir, err := moduleRoot(abs)
	if err != nil {
		return nil, err
	}
	ld := &loader{
		fset:        token.NewFileSet(),
		dir:         modDir,
		meta:        map[string]*listPkg{},
		built:       map[string]*Package{},
		building:    map[string]bool{},
		roots:       map[string]bool{},
		fixtureRoot: abs,
	}
	prog := &Program{Fset: ld.fset}
	for _, path := range pkgPaths {
		pkg, err := ld.pkg(path)
		if err != nil {
			return nil, err
		}
		prog.Packages = append(prog.Packages, pkg)
	}
	return prog, nil
}

// fixturePkg builds the package at the fixture directory srcRoot/path,
// or returns nil if no such directory exists (the import is external).
func (ld *loader) fixturePkg(path string) (*Package, error) {
	if ld.fixtureRoot == "" || !fs.ValidPath(path) {
		return nil, nil
	}
	dir := filepath.Join(ld.fixtureRoot, filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var files []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			files = append(files, e.Name())
		}
	}
	if len(files) == 0 {
		return nil, nil
	}
	sort.Strings(files)
	ld.roots[path] = true // retain comments and sources for expectations
	return ld.check(path, dir, files)
}

// moduleRoot walks up from dir to the directory containing go.mod.
func moduleRoot(dir string) (string, error) {
	for d := dir; ; {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("load: no go.mod above %s", dir)
		}
		d = parent
	}
}

// fetchMeta resolves an import path that was absent from the initial
// `go list` closure (e.g. a standard-library package imported only by a
// fixture) by listing it and its dependencies from the module directory.
func (ld *loader) fetchMeta(path string) error {
	pkgs, err := goList(ld.dir, []string{path})
	if err != nil {
		return err
	}
	for _, p := range pkgs {
		if ld.meta[p.ImportPath] == nil {
			ld.meta[p.ImportPath] = p
		}
	}
	if ld.meta[path] == nil {
		return fmt.Errorf("load: go list did not resolve import %q", path)
	}
	return nil
}
