// Package load type-checks Go packages for pdnlint without any
// dependency outside the standard library. It shells out to `go list`
// for build-system metadata (package directories, build-constraint
// filtered file lists, import graphs) and then parses and type-checks
// every package from source with go/parser and go/types, resolving
// imports lazily in dependency order. This replaces
// golang.org/x/tools/go/packages, which the zero-dependency module
// cannot vendor.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one type-checked package ready for analysis.
type Package struct {
	// ImportPath is the package's import path (or, for analysistest
	// fixtures, its directory relative to the testdata src root).
	ImportPath string
	// Dir is the directory holding the package's sources.
	Dir string
	// Files is the parsed syntax, comments included. For root packages
	// it includes in-package _test.go files.
	Files []*ast.File
	// Types and Info hold the go/types results for Files.
	Types *types.Package
	Info  *types.Info
	// Src maps each file name (as recorded in the FileSet) to its
	// source bytes, used for suppression-directive column checks and
	// the analysistest expectation scanner.
	Src map[string][]byte
}

// Program is a load result: the root packages requested for analysis,
// sharing one FileSet.
type Program struct {
	Fset     *token.FileSet
	Packages []*Package
}

// DependencyOrder returns the program's packages sorted so every
// package appears after all program packages it imports (directly or
// transitively). Analyzer runners that thread facts between packages
// depend on this: a fact exported while analyzing a package must exist
// before any importer's pass asks for it. External test packages
// ("<path>_test") order after the packages they import, including their
// own package under test. Ties keep the original Packages order, so the
// result is deterministic.
func (p *Program) DependencyOrder() []*Package {
	byTypes := make(map[*types.Package]*Package, len(p.Packages))
	for _, pkg := range p.Packages {
		byTypes[pkg.Types] = pkg
	}
	seen := make(map[*Package]bool, len(p.Packages))
	out := make([]*Package, 0, len(p.Packages))
	var visit func(*Package)
	visit = func(pkg *Package) {
		if seen[pkg] {
			return
		}
		seen[pkg] = true
		for _, imp := range pkg.Types.Imports() {
			if dep := byTypes[imp]; dep != nil {
				visit(dep)
			}
		}
		out = append(out, pkg)
	}
	for _, pkg := range p.Packages {
		visit(pkg)
	}
	return out
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath   string
	Dir          string
	Name         string
	Standard     bool
	DepOnly      bool
	GoFiles      []string
	TestGoFiles  []string
	XTestGoFiles []string
	Imports      []string
	TestImports  []string
	XTestImports []string
	Error        *struct{ Err string }
}

const listFields = "-json=ImportPath,Dir,Name,Standard,DepOnly,GoFiles,TestGoFiles,XTestGoFiles,Imports,TestImports,XTestImports,Error"

// goList runs `go list -e -deps` in dir for the given patterns and
// decodes the JSON package stream.
func goList(dir string, patterns []string) ([]*listPkg, error) {
	args := append([]string{"list", "-e", "-deps", listFields, "--"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	// Type-checking happens from source, so cgo variants of standard
	// library files (which reference cgo-generated _C_* identifiers)
	// cannot be checked; disable cgo so go list selects the pure-Go
	// file sets instead. The module itself uses no cgo.
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	dec := json.NewDecoder(&stdout)
	var pkgs []*listPkg
	for {
		p := new(listPkg)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// loader lazily type-checks packages against go list metadata.
type loader struct {
	fset     *token.FileSet
	dir      string              // module directory for follow-up go list calls
	meta     map[string]*listPkg // import path -> metadata
	built    map[string]*Package // import path -> completed package
	building map[string]bool     // cycle detection
	roots    map[string]bool     // import paths whose test files join the package
	// fixtureRoot, when set, is an analysistest testdata/src directory
	// consulted before go list metadata (see LoadDir).
	fixtureRoot string
}

// Load type-checks the packages matching patterns (resolved by `go list`
// in dir) plus, transitively, everything they import. Root packages are
// checked with their in-package test files, and external test packages
// (package foo_test) are returned as additional roots named
// "<path>_test".
func Load(dir string, patterns ...string) (*Program, error) {
	pkgs, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	ld := &loader{
		fset:     token.NewFileSet(),
		dir:      dir,
		meta:     map[string]*listPkg{},
		built:    map[string]*Package{},
		building: map[string]bool{},
		roots:    map[string]bool{},
	}
	var rootPaths []string
	for _, p := range pkgs {
		ld.meta[p.ImportPath] = p
		if !p.DepOnly && !p.Standard {
			ld.roots[p.ImportPath] = true
			rootPaths = append(rootPaths, p.ImportPath)
		}
	}
	if len(rootPaths) == 0 {
		return nil, fmt.Errorf("go list %s: no packages matched", strings.Join(patterns, " "))
	}
	if err := ld.ensureTestDeps(rootPaths); err != nil {
		return nil, err
	}
	prog := &Program{Fset: ld.fset}
	for _, path := range rootPaths {
		pkg, err := ld.pkg(path)
		if err != nil {
			return nil, err
		}
		prog.Packages = append(prog.Packages, pkg)
		xt, err := ld.xtestPkg(path)
		if err != nil {
			return nil, err
		}
		if xt != nil {
			prog.Packages = append(prog.Packages, xt)
		}
	}
	return prog, nil
}

// ensureTestDeps closes the metadata map over test-only imports: `go
// list -deps` (without -test) omits packages imported only by _test.go
// files, so fetch the missing ones with follow-up list calls.
func (ld *loader) ensureTestDeps(rootPaths []string) error {
	for {
		missing := map[string]bool{}
		for _, root := range rootPaths {
			m := ld.meta[root]
			for _, imps := range [][]string{m.TestImports, m.XTestImports} {
				for _, imp := range imps {
					if imp != "C" && imp != "unsafe" && ld.meta[imp] == nil {
						missing[imp] = true
					}
				}
			}
		}
		if len(missing) == 0 {
			return nil
		}
		var paths []string
		for p := range missing {
			paths = append(paths, p)
		}
		sort.Strings(paths)
		pkgs, err := goList(ld.dir, paths)
		if err != nil {
			return err
		}
		for _, p := range pkgs {
			if ld.meta[p.ImportPath] == nil {
				ld.meta[p.ImportPath] = p
			}
		}
		for _, p := range paths {
			if ld.meta[p] == nil {
				return fmt.Errorf("load: go list did not resolve test import %q", p)
			}
		}
	}
}

// Import implements types.Importer by type-checking path on demand.
func (ld *loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	pkg, err := ld.pkg(path)
	if err != nil {
		return nil, err
	}
	return pkg.Types, nil
}

// pkg returns the type-checked package for an import path, building it
// (and its imports, recursively) on first use.
func (ld *loader) pkg(path string) (*Package, error) {
	if pkg := ld.built[path]; pkg != nil {
		return pkg, nil
	}
	if ld.building[path] {
		return nil, fmt.Errorf("load: import cycle through %q (a test file of one root imports another root that imports it back; pdnlint's loader does not split test variants)", path)
	}
	ld.building[path] = true
	fixture, err := ld.fixturePkg(path)
	delete(ld.building, path)
	if err != nil {
		return nil, err
	}
	if fixture != nil {
		ld.built[path] = fixture
		return fixture, nil
	}
	m := ld.meta[path]
	if m == nil {
		// Standard-library packages spell imports of their vendored
		// dependencies without the prefix (`golang.org/x/...`), but
		// `go list -deps` reports those packages under `vendor/...`.
		if v := ld.meta["vendor/"+path]; v != nil {
			ld.meta[path] = v
			m = v
		} else if err := ld.fetchMeta(path); err != nil {
			return nil, err
		} else {
			m = ld.meta[path]
		}
	}
	if m.Error != nil {
		return nil, fmt.Errorf("load: %s: %s", path, m.Error.Err)
	}
	ld.building[path] = true
	defer delete(ld.building, path)

	files := m.GoFiles
	if ld.roots[path] {
		files = append(append([]string{}, m.GoFiles...), m.TestGoFiles...)
	}
	pkg, err := ld.check(path, m.Dir, files)
	if err != nil {
		return nil, err
	}
	ld.built[path] = pkg
	return pkg, nil
}

// xtestPkg builds the external test package (package foo_test) for a
// root, or returns nil if the root has none.
func (ld *loader) xtestPkg(path string) (*Package, error) {
	m := ld.meta[path]
	if m == nil || len(m.XTestGoFiles) == 0 {
		return nil, nil
	}
	return ld.check(path+"_test", m.Dir, m.XTestGoFiles)
}

// check parses and type-checks one package from the named files in dir.
// Comments are retained only for root packages — analyzers and the
// suppression scanner never see dependency syntax.
func (ld *loader) check(path, dir string, fileNames []string) (*Package, error) {
	mode := parser.SkipObjectResolution
	isRoot := ld.roots[path] || strings.HasSuffix(path, "_test") && ld.roots[strings.TrimSuffix(path, "_test")]
	if isRoot {
		mode |= parser.ParseComments
	}
	pkg := &Package{ImportPath: path, Dir: dir, Src: map[string][]byte{}}
	for _, name := range fileNames {
		full := filepath.Join(dir, name)
		src, err := os.ReadFile(full)
		if err != nil {
			return nil, fmt.Errorf("load: %v", err)
		}
		f, err := parser.ParseFile(ld.fset, full, src, mode)
		if err != nil {
			return nil, fmt.Errorf("load: parsing %s: %v", full, err)
		}
		pkg.Files = append(pkg.Files, f)
		if isRoot {
			pkg.Src[full] = src
		}
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Uses:       map[*ast.Ident]types.Object{},
		Defs:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := &types.Config{
		Importer: ld,
		Sizes:    types.SizesFor("gc", "amd64"),
		Error:    func(error) {}, // collect the first error via Check's return
	}
	tpkg, err := conf.Check(path, ld.fset, pkg.Files, info)
	if err != nil {
		return nil, fmt.Errorf("load: type-checking %s: %v", path, err)
	}
	pkg.Types = tpkg
	pkg.Info = info
	return pkg, nil
}
