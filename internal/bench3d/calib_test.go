package bench3d

import (
	"testing"

	"pdn3d/internal/irdrop"
	"pdn3d/internal/pdn"
)

// TestCalibrationTargets exercises the two anchor points the reproduction
// is calibrated on plus the headline §3.1 coupling numbers, with loose
// tolerances (the tight per-table comparisons live in internal/exp).
func TestCalibrationTargets(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration solve is slow")
	}
	offB, err := StackedDDR3Off()
	if err != nil {
		t.Fatal(err)
	}
	a, err := irdrop.New(offB.Spec, offB.DRAMPower, nil)
	if err != nil {
		t.Fatal(err)
	}
	r, err := a.AnalyzeCounts(offB.DefaultCounts, offB.DefaultIO)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("off-chip baseline: %.2f mV (paper 30.03)", r.MaxIRmV())
	if r.MaxIRmV() < 24 || r.MaxIRmV() > 36 {
		t.Errorf("off-chip baseline %.2f mV outside 30.03 +/- 20%%", r.MaxIRmV())
	}

	// Stand-alone logic noise: on-chip benchmark with an idle DRAM stack
	// approximates the T2 alone (§3.1: 50.05 mV logic noise).
	onB, err := StackedDDR3On()
	if err != nil {
		t.Fatal(err)
	}
	onSpec := onB.Spec.Clone()
	onSpec.DedicatedTSV = false
	aOn, err := irdrop.New(onSpec, onB.DRAMPower, onB.LogicPower)
	if err != nil {
		t.Fatal(err)
	}
	rOn, err := aOn.AnalyzeCounts(onB.DefaultCounts, onB.DefaultIO)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("on-chip coupled DRAM: %.2f mV (paper 64.41), logic: %.2f mV (paper 50.05)",
		rOn.MaxIRmV(), rOn.LogicIRmV())
	if rOn.LogicIRmV() < 38 || rOn.LogicIRmV() > 63 {
		t.Errorf("logic noise %.2f mV outside 50.05 +/- 25%%", rOn.LogicIRmV())
	}
	if rOn.MaxIRmV() < 48 || rOn.MaxIRmV() > 81 {
		t.Errorf("coupled on-chip DRAM IR %.2f mV outside 64.41 +/- 25%%", rOn.MaxIRmV())
	}

	// Dedicated TSVs decouple the PDNs: IR returns near the off-chip value
	// (paper: 31.18 mV).
	rDed, err := irdrop.New(onB.Spec, onB.DRAMPower, onB.LogicPower)
	if err != nil {
		t.Fatal(err)
	}
	rd, err := rDed.AnalyzeCounts(onB.DefaultCounts, onB.DefaultIO)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("on-chip dedicated: %.2f mV (paper 31.18)", rd.MaxIRmV())
	if rd.MaxIRmV() < 24 || rd.MaxIRmV() > 39 {
		t.Errorf("dedicated on-chip %.2f mV outside 31.18 +/- 25%%", rd.MaxIRmV())
	}

	// F2F headline: off-chip 0-0-0-2 drops from ~30 to ~17 mV (-42.8%).
	f2f := offB.Spec.Clone()
	f2f.Bonding = pdn.F2F
	aF, err := irdrop.New(f2f, offB.DRAMPower, nil)
	if err != nil {
		t.Fatal(err)
	}
	rf, err := aF.AnalyzeCounts(offB.DefaultCounts, offB.DefaultIO)
	if err != nil {
		t.Fatal(err)
	}
	red := (r.MaxIR - rf.MaxIR) / r.MaxIR * 100
	t.Logf("off-chip F2F: %.2f mV (-%.1f%%; paper 17.18, -42.8%%)", rf.MaxIRmV(), red)
	if red < 25 || red > 60 {
		t.Errorf("F2F reduction %.1f%% outside 42.8 +/- ~15 points", red)
	}
}

func TestAllBenchmarksBuild(t *testing.T) {
	bs, err := All()
	if err != nil {
		t.Fatal(err)
	}
	if len(bs) != 4 {
		t.Fatalf("benchmarks = %d, want 4", len(bs))
	}
	for _, b := range bs {
		if err := b.Spec.Validate(); err != nil {
			t.Errorf("%s: %v", b.Name, err)
		}
		if err := b.DRAMPower.Validate(); err != nil {
			t.Errorf("%s power: %v", b.Name, err)
		}
		if b.Spec.OnLogic && b.LogicPower == nil {
			t.Errorf("%s: on-chip benchmark without logic power", b.Name)
		}
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"ddr3-off", "ddr3-on", "wideio", "hmc"} {
		b, err := ByName(name)
		if err != nil {
			t.Errorf("ByName(%s): %v", name, err)
			continue
		}
		if b.Name != name {
			t.Errorf("ByName(%s).Name = %s", name, b.Name)
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("unknown name: want error")
	}
}

func TestSpacesSane(t *testing.T) {
	bs, err := All()
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range bs {
		s := b.Space
		if s.M2Range[0] > s.M2Range[1] || s.M3Range[0] > s.M3Range[1] || s.TSVRange[0] > s.TSVRange[1] {
			t.Errorf("%s: inverted range in space %+v", b.Name, s)
		}
		if len(s.Locations) == 0 {
			t.Errorf("%s: no TSV locations", b.Name)
		}
	}
	w, _ := WideIO()
	if w.Space.TSVRange != [2]int{160, 160} {
		t.Error("Wide I/O TSV count must be fixed at 160")
	}
	h, _ := HMC()
	found := false
	for _, l := range h.Space.Locations {
		if l == pdn.DistributedTSV {
			found = true
		}
	}
	if !found {
		t.Error("HMC must allow distributed TSVs")
	}
}
