// Package bench3d defines the four 3D DRAM benchmarks of the paper's
// Table 1 — off-chip stacked DDR3, on-chip stacked DDR3, Wide I/O, and
// HMC — as ready-to-analyze designs: baseline pdn.Spec (the Table 9
// "Baseline" rows), power models, host logic die, default memory state,
// and per-benchmark design-space constraints for the co-optimizer.
//
// The package also centralizes the calibration: all absolute electrical
// constants are chosen so the off-chip stacked-DDR3 baseline reproduces the
// paper's 30.03 mV maximum IR drop and the stand-alone T2 die its 50.05 mV
// supply noise; every other number in the reproduction follows from the
// shared physics.
package bench3d

import (
	"fmt"

	"pdn3d/internal/floorplan"
	"pdn3d/internal/pdn"
	"pdn3d/internal/powermap"
	"pdn3d/internal/tech"
)

// Benchmark is one fully-specified 3D DRAM design point.
type Benchmark struct {
	// Name is the benchmark identifier: "ddr3-off", "ddr3-on", "wideio",
	// "hmc".
	Name string
	// Spec is the baseline design (Table 9 "Baseline" row).
	Spec *pdn.Spec
	// DRAMPower is the DRAM die power model.
	DRAMPower *powermap.DRAMModel
	// LogicPower is the host logic power model (nil off-chip).
	LogicPower *powermap.LogicModel
	// DefaultCounts is the default memory state (0-0-0-2: zero-bubble
	// interleaving read on the top die, §2.2).
	DefaultCounts []int
	// DefaultIO is the default per-die I/O activity.
	DefaultIO float64
	// Space is the co-optimization design space (Table 8 input ranges
	// with the per-benchmark restrictions of §6.1).
	Space Space
	// Channels is the independent memory channel count (Table 1: one for
	// stacked DDR3, four for Wide I/O, sixteen for HMC).
	Channels int
	// ChannelOf maps (die, bank) to a channel; nil means bank%Channels.
	ChannelOf func(die, bank int) int
}

// Space bounds the design space for one benchmark.
type Space struct {
	// M2Range and M3Range bound the layer VDD usages.
	M2Range, M3Range [2]float64
	// TSVRange bounds the PG TSV count; equal endpoints pin it (Wide I/O
	// fixes 160 by specification).
	TSVRange [2]int
	// Locations lists the allowed TSV placement styles.
	Locations []pdn.TSVLocation
	// EdgeNeedsRDL forces RDL with edge TSVs (Wide I/O: JEDEC requires
	// center PG pumps, so edge TSVs only work with an interface RDL).
	EdgeNeedsRDL bool
}

// T2PowerMW is the host logic die's calibrated total power: it produces the
// paper's 50.05 mV stand-alone T2 supply noise with the baseline logic PDN.
const T2PowerMW = t2PowerMW

// StackedDDR3Off returns the off-chip (stand-alone) stacked DDR3 benchmark.
func StackedDDR3Off() (*Benchmark, error) {
	fp, err := floorplan.DDR3Die(floorplan.DefaultDDR3())
	if err != nil {
		return nil, err
	}
	spec := &pdn.Spec{
		Name:     "ddr3-off",
		NumDRAM:  4,
		DRAM:     fp,
		DRAMTech: tech.DRAM20(1.5),
		Usage:    map[string]float64{"M2": 0.10, "M3": 0.20},
		Bonding:  pdn.F2B,
		TSVStyle: pdn.EdgeTSV,
		TSVCount: 33,
	}
	return &Benchmark{
		Name:          "ddr3-off",
		Spec:          spec,
		DRAMPower:     powermap.StackedDDR3Power(),
		DefaultCounts: []int{0, 0, 0, 2},
		DefaultIO:     1.0,
		Space:         ddr3Space(),
		Channels:      1,
	}, nil
}

// StackedDDR3On returns the on-chip stacked DDR3 benchmark: the same stack
// mounted on the T2 host. The Table 9 baseline uses dedicated TSVs.
func StackedDDR3On() (*Benchmark, error) {
	b, err := StackedDDR3Off()
	if err != nil {
		return nil, err
	}
	lf, err := floorplan.T2Die(floorplan.DefaultT2())
	if err != nil {
		return nil, err
	}
	spec := b.Spec
	spec.Name = "ddr3-on"
	spec.OnLogic = true
	spec.Logic = lf
	spec.LogicTech = tech.Logic28(1.5)
	spec.LogicUsage = map[string]float64{"M1": 0.10, "M6": 0.30}
	spec.DedicatedTSV = true
	return &Benchmark{
		Name:          "ddr3-on",
		Spec:          spec,
		DRAMPower:     b.DRAMPower,
		LogicPower:    powermap.T2Power(T2PowerMW),
		DefaultCounts: []int{0, 0, 0, 2},
		DefaultIO:     1.0,
		Space:         ddr3Space(),
		Channels:      1,
	}, nil
}

// WideIO returns the Wide I/O benchmark: a 1.2 V mobile stack mounted on
// the host processor with the JEDEC center bump field. Baseline (Table 9):
// edge TSVs with the mandatory interface RDL and dedicated TSVs.
func WideIO() (*Benchmark, error) {
	fp, err := floorplan.WideIODie(floorplan.DefaultWideIO())
	if err != nil {
		return nil, err
	}
	lf, err := floorplan.T2Die(floorplan.DefaultT2())
	if err != nil {
		return nil, err
	}
	spec := &pdn.Spec{
		Name:         "wideio",
		NumDRAM:      4,
		DRAM:         fp,
		DRAMTech:     tech.DRAM20(1.2),
		Usage:        map[string]float64{"M2": 0.10, "M3": 0.20},
		OnLogic:      true,
		Logic:        lf,
		LogicTech:    tech.Logic28(1.2),
		LogicUsage:   map[string]float64{"M1": 0.10, "M6": 0.30},
		Bonding:      pdn.F2B,
		TSVStyle:     pdn.EdgeTSV,
		TSVCount:     160,
		RDL:          pdn.RDLInterface,
		DedicatedTSV: true,
	}
	return &Benchmark{
		Name:          "wideio",
		Spec:          spec,
		DRAMPower:     powermap.WideIOPower(),
		LogicPower:    powermap.T2Power(T2PowerMW * 0.64), // 1.2 V host burns proportionally less
		DefaultCounts: []int{0, 0, 0, 2},
		DefaultIO:     1.0,
		Space: Space{
			M2Range:      [2]float64{0.10, 0.20},
			M3Range:      [2]float64{0.10, 0.40},
			TSVRange:     [2]int{160, 160}, // fixed by specification (§6.1)
			Locations:    []pdn.TSVLocation{pdn.CenterTSV, pdn.EdgeTSV},
			EdgeNeedsRDL: true,
		},
		Channels:  4,
		ChannelOf: func(die, bank int) int { return bank / 4 }, // quadrant channels
	}, nil
}

// HMC returns the hybrid memory cube benchmark: a high-power 1.2 V stack on
// its own controller die, communicating through an interposer. Distributed
// TSVs are available between the banks (§6.1).
func HMC() (*Benchmark, error) {
	fp, err := floorplan.HMCDie(floorplan.DefaultHMC())
	if err != nil {
		return nil, err
	}
	lf, err := floorplan.HMCLogicDie(floorplan.DefaultHMCLogic())
	if err != nil {
		return nil, err
	}
	spec := &pdn.Spec{
		Name:         "hmc",
		NumDRAM:      4,
		DRAM:         fp,
		DRAMTech:     tech.DRAM20(1.2),
		Usage:        map[string]float64{"M2": 0.10, "M3": 0.20},
		OnLogic:      true,
		Logic:        lf,
		LogicTech:    tech.Logic28(1.2),
		LogicUsage:   map[string]float64{"M1": 0.10, "M6": 0.30},
		Bonding:      pdn.F2B,
		TSVStyle:     pdn.EdgeTSV,
		TSVCount:     384,
		DedicatedTSV: true,
	}
	return &Benchmark{
		Name:          "hmc",
		Spec:          spec,
		DRAMPower:     powermap.HMCPower(),
		LogicPower:    powermap.HMCLogicPower(hmcLogicPowerMW),
		DefaultCounts: []int{0, 0, 0, 2},
		DefaultIO:     1.0,
		Space: Space{
			M2Range:   [2]float64{0.10, 0.20},
			M3Range:   [2]float64{0.10, 0.40},
			TSVRange:  [2]int{160, 480}, // >= 160 for supply current (§6.1)
			Locations: []pdn.TSVLocation{pdn.CenterTSV, pdn.EdgeTSV, pdn.DistributedTSV},
		},
		Channels:  16,
		ChannelOf: func(die, bank int) int { return bank / 2 }, // vault channels
	}, nil
}

func ddr3Space() Space {
	return Space{
		M2Range:   [2]float64{0.10, 0.20},
		M3Range:   [2]float64{0.10, 0.40},
		TSVRange:  [2]int{15, 480},
		Locations: []pdn.TSVLocation{pdn.CenterTSV, pdn.EdgeTSV},
	}
}

// All returns all four benchmarks in the paper's Table 9 order.
func All() ([]*Benchmark, error) {
	offB, err := StackedDDR3Off()
	if err != nil {
		return nil, err
	}
	onB, err := StackedDDR3On()
	if err != nil {
		return nil, err
	}
	w, err := WideIO()
	if err != nil {
		return nil, err
	}
	h, err := HMC()
	if err != nil {
		return nil, err
	}
	return []*Benchmark{offB, onB, w, h}, nil
}

// ByName returns the named benchmark.
func ByName(name string) (*Benchmark, error) {
	switch name {
	case "ddr3-off":
		return StackedDDR3Off()
	case "ddr3-on":
		return StackedDDR3On()
	case "wideio":
		return WideIO()
	case "hmc":
		return HMC()
	default:
		return nil, fmt.Errorf("bench3d: unknown benchmark %q (want ddr3-off, ddr3-on, wideio, hmc)", name)
	}
}
