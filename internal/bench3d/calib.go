package bench3d

// Calibration constants. The reproduction cannot use the authors' testbed
// (Samsung 20nm power maps, HSPICE decks, full T2 netlist), so two scalar
// calibration targets anchor the absolute scale, both taken from the paper
// itself:
//
//  1. the off-chip stacked DDR3 baseline (M2 10 %, M3 20 %, 33 edge TSVs,
//     F2B) must show ~30.03 mV maximum IR under the default 0-0-0-2 state
//     at 100 % I/O activity, and
//  2. the stand-alone T2 logic die must show ~50.05 mV supply noise.
//
// Target 1 is met by the DRAM technology constants in internal/tech
// (sheet resistances vs. layer usage); target 2 by the total logic power
// below against the logic technology constants. Everything else in the
// reproduction is left to the physics.
const (
	// t2PowerMW is the T2-like host total power (1.5 V, 28nm, 8 cores).
	t2PowerMW = 8800

	// hmcLogicPowerMW is the HMC controller die total power; the SerDes
	// links and 16 vault controllers make it a hot die, but smaller than
	// the full T2.
	hmcLogicPowerMW = 9000
)
