// Package opt implements the paper's cross-domain co-optimization (§6):
// for one benchmark it samples the continuous design axes (M2/M3 usage, TSV
// count) per categorical option combo (TSV location, dedicated TSVs,
// bonding style, RDL, wire bonding), fits a regression IR-drop model per
// combo (standing in for the paper's MATLAB regression), searches the full
// space for the minimum IR-cost = IR^α · Cost^(1−α), and verifies winners
// with the R-Mesh engine (the paper's "Matlab" vs. "R-Mesh" columns).
package opt

import (
	"fmt"
	"math"
	"sync/atomic"

	"pdn3d/internal/bench3d"
	"pdn3d/internal/cost"
	"pdn3d/internal/irdrop"
	"pdn3d/internal/obs"
	"pdn3d/internal/par"
	"pdn3d/internal/pdn"
	"pdn3d/internal/regress"
	"pdn3d/internal/units"
)

// Candidate is one point in the design space.
type Candidate struct {
	// M2, M3 are the layer VDD usage fractions.
	M2, M3 float64
	// TC is the PG TSV count.
	TC int
	// TL is the TSV location style.
	TL pdn.TSVLocation
	// TD adds dedicated via-last TSVs (on-chip designs only).
	TD bool
	// BD is the bonding style.
	BD pdn.Bonding
	// RL inserts the interface RDL.
	RL bool
	// WB adds backside wire bonding.
	WB bool
}

// Apply produces a spec for the candidate based on the benchmark baseline.
func (c Candidate) Apply(base *pdn.Spec) *pdn.Spec {
	s := base.Clone()
	s.Usage["M2"] = c.M2
	s.Usage["M3"] = c.M3
	s.TSVCount = c.TC
	s.TSVStyle = c.TL
	s.DedicatedTSV = c.TD && s.OnLogic
	s.Bonding = c.BD
	if c.RL {
		s.RDL = pdn.RDLInterface
	} else {
		s.RDL = pdn.RDLNone
	}
	s.WireBond = c.WB
	return s
}

func (c Candidate) String() string {
	yn := func(b bool) string {
		if b {
			return "Y"
		}
		return "N"
	}
	return fmt.Sprintf("M2=%.0f%% M3=%.0f%% TC=%d TL=%s TD=%s BD=%s RL=%s WB=%s",
		c.M2*100, c.M3*100, c.TC, c.TL, yn(c.TD), c.BD, yn(c.RL), yn(c.WB))
}

// combo is the categorical part of a candidate.
type combo struct {
	TL pdn.TSVLocation
	TD bool
	BD pdn.Bonding
	RL bool
	WB bool
}

func (c combo) key() string {
	return fmt.Sprintf("%s|%v|%s|%v|%v", c.TL, c.TD, c.BD, c.RL, c.WB)
}

// Optimizer runs the co-optimization for one benchmark.
type Optimizer struct {
	// Bench is the benchmark under optimization.
	Bench *bench3d.Benchmark
	// Cost is the cost model (nil selects cost.Default).
	Cost *cost.Model
	// MeshPitch overrides the R-Mesh pitch for the sampling solves.
	MeshPitch float64
	// ContinuousSamples is the per-axis sample count for the regression
	// training set (0 selects 3).
	ContinuousSamples int
	// GridSteps is the per-axis resolution of the prediction-space search
	// (0 selects 9).
	GridSteps int
	// Workers bounds the sampling worker pool (<= 0 selects GOMAXPROCS).
	Workers int
	// Solver selects the nodal solver method ("" = the default).
	Solver string
	// Obs, when non-nil, receives sampling metrics: the mesh/solver
	// instrumentation of every R-Mesh evaluation plus a span around the
	// model fit. Optimization results are identical either way.
	Obs *obs.Registry

	fits map[string]*regress.Fit
	// FitRMSE and FitR2 summarize the worst fit across combos, the
	// figures the paper quotes (RMSE < 0.135, R² > 0.999).
	FitRMSE, FitR2 float64

	solves atomic.Int64
}

// SolveCount reports the R-Mesh evaluations spent on sampling so far.
func (o *Optimizer) SolveCount() int { return int(o.solves.Load()) }

func (o *Optimizer) costModel() *cost.Model {
	if o.Cost != nil {
		return o.Cost
	}
	return cost.Default()
}

func (o *Optimizer) samplesPerAxis() int {
	if o.ContinuousSamples > 0 {
		return o.ContinuousSamples
	}
	return 3
}

func (o *Optimizer) gridSteps() int {
	if o.GridSteps > 0 {
		return o.GridSteps
	}
	return 9
}

// combos enumerates the valid categorical combinations for the benchmark's
// design space.
func (o *Optimizer) combos() []combo {
	sp := o.Bench.Space
	var tds []bool
	if o.Bench.Spec.OnLogic {
		tds = []bool{false, true}
	} else {
		tds = []bool{false}
	}
	var out []combo
	for _, tl := range sp.Locations {
		for _, td := range tds {
			for _, bd := range []pdn.Bonding{pdn.F2B, pdn.F2F} {
				if bd == pdn.F2F && o.Bench.Spec.NumDRAM%2 != 0 {
					continue
				}
				for _, rl := range []bool{false, true} {
					if sp.EdgeNeedsRDL && tl == pdn.EdgeTSV && !rl {
						continue // Wide I/O: edge TSVs require the RDL (§6.1)
					}
					for _, wb := range []bool{false, true} {
						out = append(out, combo{TL: tl, TD: td, BD: bd, RL: rl, WB: wb})
					}
				}
			}
		}
	}
	return out
}

// measure runs the R-Mesh on one candidate and returns its worst-case max
// IR in mV. The worst state differs by bonding (§5.1): F2B peaks at
// 0-0-0-2 with full I/O, while F2F's PDN sharing makes the intra-pair
// overlapping 0-0-2-2 state (50 % I/O per die) the worst case; both states
// are evaluated and the maximum taken.
func (o *Optimizer) measure(c Candidate) (float64, error) {
	spec := c.Apply(o.Bench.Spec)
	if o.MeshPitch > 0 {
		spec.MeshPitch = o.MeshPitch
	}
	var logic = o.Bench.LogicPower
	if !spec.OnLogic {
		logic = nil
	}
	a, err := irdrop.NewObs(spec, o.Bench.DRAMPower, logic, o.Obs)
	if err != nil {
		return 0, err
	}
	a.Opts.Method = o.Solver
	n := spec.NumDRAM
	worst := 0.0
	states := [][]int{topDie(n, 2)}
	ios := []float64{o.Bench.DefaultIO}
	if n >= 2 {
		states = append(states, topTwoDies(n, 2))
		ios = append(ios, 0.5)
	}
	for i, counts := range states {
		r, err := a.AnalyzeCounts(counts, ios[i])
		if err != nil {
			return 0, err
		}
		o.solves.Add(1)
		if r.MaxIRmV() > worst {
			worst = r.MaxIRmV()
		}
	}
	return worst, nil
}

func topDie(n, banks int) []int {
	c := make([]int, n)
	c[n-1] = banks
	return c
}

func topTwoDies(n, banks int) []int {
	c := make([]int, n)
	c[n-1], c[n-2] = banks, banks
	return c
}

// features maps the continuous axes to the regression feature vector. IR
// drop scales like resistance, so reciprocal usages and a saturating TSV
// term describe it well; log-response keeps the model multiplicative.
func features(m2, m3 float64, tc int) []float64 {
	s := math.Sqrt(float64(tc))
	return []float64{
		1,
		1 / m2,
		1 / m3,
		1 / (m2 * m3),
		1 / s,
		1 / float64(tc),
	}
}

// axisSamples spreads n samples over [lo, hi] inclusive.
func axisSamples(lo, hi float64, n int) []float64 {
	if n == 1 || units.SameValue(hi, lo) {
		return []float64{lo}
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = lo + (hi-lo)*float64(i)/float64(n-1)
	}
	return out
}

// FitModels samples the design space and fits one regression per
// categorical combo, fanning combos across the worker pool (every combo's
// samples use an independent analyzer, so they parallelize cleanly). It
// must run before Best.
func (o *Optimizer) FitModels() error {
	defer o.Obs.Span("opt/fit-models", obs.A("bench", o.Bench.Name))()
	sp := o.Bench.Space
	n := o.samplesPerAxis()
	m2s := axisSamples(sp.M2Range[0], sp.M2Range[1], n)
	m3s := axisSamples(sp.M3Range[0], sp.M3Range[1], n)
	tcs := tcSamples(sp.TSVRange, n+1)

	combos := o.combos()
	fits := make([]*regress.Fit, len(combos))
	err := par.Sweep(o.Workers, len(combos), func(ci int) error {
		cb := combos[ci]
		var samples []regress.Sample
		for _, m2 := range m2s {
			for _, m3 := range m3s {
				for _, tc := range tcs {
					cand := Candidate{M2: m2, M3: m3, TC: tc,
						TL: cb.TL, TD: cb.TD, BD: cb.BD, RL: cb.RL, WB: cb.WB}
					ir, err := o.measure(cand)
					if err != nil {
						return fmt.Errorf("opt: sampling %v: %w", cand, err)
					}
					samples = append(samples, regress.Sample{
						X: features(m2, m3, tc),
						Y: math.Log(ir),
					})
				}
			}
		}
		fit, err := regress.LeastSquares(samples)
		if err != nil {
			return fmt.Errorf("opt: fitting combo %s: %w", cb.key(), err)
		}
		fits[ci] = fit
		return nil
	})
	if err != nil {
		return err
	}
	o.fits = map[string]*regress.Fit{}
	o.FitRMSE = 0
	o.FitR2 = 1
	for ci, cb := range combos {
		fit := fits[ci]
		o.fits[cb.key()] = fit
		// Track worst-case quality in mV-comparable units: convert the
		// log-space RMSE to a relative error and scale by the combo's
		// median response.
		if fit.RMSE > o.FitRMSE {
			o.FitRMSE = fit.RMSE
		}
		if fit.R2 < o.FitR2 {
			o.FitR2 = fit.R2
		}
	}
	return nil
}

// tcSamples picks TSV-count samples, geometrically spaced because the IR
// response saturates.
func tcSamples(r [2]int, n int) []int {
	if r[0] == r[1] {
		return []int{r[0]}
	}
	lo, hi := float64(r[0]), float64(r[1])
	out := make([]int, 0, n)
	seen := map[int]bool{}
	for i := 0; i < n; i++ {
		v := int(lo*math.Pow(hi/lo, float64(i)/float64(n-1)) + 0.5)
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	return out
}

// GridSize returns the number of distinct design points the fitted models
// cover in a Best search — the brute-force equivalent count.
func (o *Optimizer) GridSize() int {
	sp := o.Bench.Space
	g := o.gridSteps()
	tcs := len(tcSamples(sp.TSVRange, g))
	m2 := g
	if units.SameValue(sp.M2Range[0], sp.M2Range[1]) {
		m2 = 1
	}
	m3 := g
	if units.SameValue(sp.M3Range[0], sp.M3Range[1]) {
		m3 = 1
	}
	return len(o.combos()) * m2 * m3 * tcs
}

// Result is one optimized design point.
type Result struct {
	// Alpha is the IR-cost exponent used.
	Alpha float64
	// Cand is the winning candidate.
	Cand Candidate
	// PredIRmV is the regression model's prediction ("Matlab" column).
	PredIRmV float64
	// MeasIRmV is the R-Mesh verification ("R-Mesh" column).
	MeasIRmV float64
	// Cost is the Table 8 cost.
	Cost float64
}

// Best searches the whole design space with the fitted models for the
// minimum IR-cost at the given alpha and verifies the winner on the R-Mesh.
func (o *Optimizer) Best(alpha float64) (*Result, error) {
	if o.fits == nil {
		return nil, fmt.Errorf("opt: FitModels must run first")
	}
	if alpha < 0 || alpha > 1 {
		return nil, fmt.Errorf("opt: alpha %g out of [0,1]", alpha)
	}
	sp := o.Bench.Space
	g := o.gridSteps()
	m2s := axisSamples(sp.M2Range[0], sp.M2Range[1], g)
	m3s := axisSamples(sp.M3Range[0], sp.M3Range[1], g)
	tcs := tcSamples(sp.TSVRange, g)
	cm := o.costModel()

	best := Result{Alpha: alpha}
	bestScore := math.Inf(1)
	for _, cb := range o.combos() {
		fit := o.fits[cb.key()]
		for _, m2 := range m2s {
			for _, m3 := range m3s {
				for _, tc := range tcs {
					cand := Candidate{M2: m2, M3: m3, TC: tc,
						TL: cb.TL, TD: cb.TD, BD: cb.BD, RL: cb.RL, WB: cb.WB}
					irMV := math.Exp(fit.Predict(features(m2, m3, tc)))
					c, err := cm.Total(cand.Apply(o.Bench.Spec))
					if err != nil {
						return nil, err
					}
					score := cost.IRCost(irMV, c, alpha)
					if score < bestScore {
						bestScore = score
						best.Cand = cand
						best.PredIRmV = irMV
						best.Cost = c
					}
				}
			}
		}
	}
	meas, err := o.measure(best.Cand)
	if err != nil {
		return nil, err
	}
	best.MeasIRmV = meas
	return &best, nil
}

// Baseline evaluates the benchmark's baseline configuration in the same
// terms as Best (for Table 9's "Baseline" rows).
func (o *Optimizer) Baseline() (*Result, error) {
	s := o.Bench.Spec
	cand := Candidate{
		M2: s.Usage["M2"], M3: s.Usage["M3"], TC: s.TSVCount,
		TL: s.TSVStyle, TD: s.DedicatedTSV, BD: s.Bonding,
		RL: s.RDL != pdn.RDLNone, WB: s.WireBond,
	}
	meas, err := o.measure(cand)
	if err != nil {
		return nil, err
	}
	c, err := o.costModel().Total(cand.Apply(s))
	if err != nil {
		return nil, err
	}
	return &Result{Cand: cand, PredIRmV: meas, MeasIRmV: meas, Cost: c}, nil
}
