package opt

import (
	"math"
	"sync"
	"testing"

	"pdn3d/internal/bench3d"
	"pdn3d/internal/pdn"
)

var (
	fitOnce sync.Once
	fitOpt  *Optimizer
	fitErr  error
)

// fastOptimizer fits models once for the whole package (coarse mesh,
// minimal sampling) — FitModels is the expensive step.
func fastOptimizer(t testing.TB) *Optimizer {
	t.Helper()
	fitOnce.Do(func() {
		b, err := bench3d.StackedDDR3Off()
		if err != nil {
			fitErr = err
			return
		}
		fitOpt = &Optimizer{
			Bench:             b,
			MeshPitch:         0.6,
			ContinuousSamples: 2,
			GridSteps:         5,
		}
		fitErr = fitOpt.FitModels()
	})
	if fitErr != nil {
		t.Fatal(fitErr)
	}
	return fitOpt
}

func TestCandidateApply(t *testing.T) {
	b, err := bench3d.StackedDDR3On()
	if err != nil {
		t.Fatal(err)
	}
	c := Candidate{M2: 0.15, M3: 0.3, TC: 100, TL: pdn.CenterTSV,
		TD: true, BD: pdn.F2F, RL: true, WB: true}
	s := c.Apply(b.Spec)
	if s.Usage["M2"] != 0.15 || s.Usage["M3"] != 0.3 || s.TSVCount != 100 {
		t.Error("continuous fields not applied")
	}
	if s.TSVStyle != pdn.CenterTSV || s.Bonding != pdn.F2F || !s.DedicatedTSV ||
		s.RDL != pdn.RDLInterface || !s.WireBond {
		t.Error("categorical fields not applied")
	}
	if b.Spec.Usage["M2"] == 0.15 {
		t.Error("Apply must not mutate the baseline")
	}
	// Off-chip: TD is dropped.
	off, _ := bench3d.StackedDDR3Off()
	if c.Apply(off.Spec).DedicatedTSV {
		t.Error("dedicated TSVs must be dropped off-chip")
	}
}

func TestCombosRespectConstraints(t *testing.T) {
	w, err := bench3d.WideIO()
	if err != nil {
		t.Fatal(err)
	}
	o := &Optimizer{Bench: w}
	for _, cb := range o.combos() {
		if cb.TL == pdn.EdgeTSV && !cb.RL {
			t.Errorf("Wide I/O edge TSVs without RDL: %+v", cb)
		}
		if cb.TL == pdn.DistributedTSV {
			t.Errorf("Wide I/O must not offer distributed TSVs: %+v", cb)
		}
	}
	off, _ := bench3d.StackedDDR3Off()
	oOff := &Optimizer{Bench: off}
	for _, cb := range oOff.combos() {
		if cb.TD {
			t.Errorf("off-chip combo with dedicated TSVs: %+v", cb)
		}
	}
}

func TestTCSamplesGeometric(t *testing.T) {
	s := tcSamples([2]int{15, 480}, 4)
	if s[0] != 15 || s[len(s)-1] != 480 {
		t.Errorf("endpoints = %v", s)
	}
	for i := 1; i < len(s); i++ {
		if s[i] <= s[i-1] {
			t.Errorf("not increasing: %v", s)
		}
	}
	if got := tcSamples([2]int{160, 160}, 4); len(got) != 1 || got[0] != 160 {
		t.Errorf("fixed range = %v, want [160]", got)
	}
}

func TestBestRequiresFit(t *testing.T) {
	b, _ := bench3d.StackedDDR3Off()
	o := &Optimizer{Bench: b}
	if _, err := o.Best(0.3); err == nil {
		t.Error("Best before FitModels: want error")
	}
}

func TestBestAlphaRange(t *testing.T) {
	o := fastOptimizer(t)
	if _, err := o.Best(-0.1); err == nil {
		t.Error("alpha < 0: want error")
	}
	if _, err := o.Best(1.1); err == nil {
		t.Error("alpha > 1: want error")
	}
}

func TestAlphaTradeoff(t *testing.T) {
	o := fastOptimizer(t)
	cheap, err := o.Best(0)
	if err != nil {
		t.Fatal(err)
	}
	quality, err := o.Best(1)
	if err != nil {
		t.Fatal(err)
	}
	if cheap.Cost > quality.Cost {
		t.Errorf("alpha=0 cost %.3f should not exceed alpha=1 cost %.3f", cheap.Cost, quality.Cost)
	}
	if quality.MeasIRmV > cheap.MeasIRmV {
		t.Errorf("alpha=1 IR %.2f should not exceed alpha=0 IR %.2f", quality.MeasIRmV, cheap.MeasIRmV)
	}
	// The alpha=0 candidate should be the all-minimum config (paper's
	// Table 9 alpha=0 rows).
	if cheap.Cand.TL != pdn.CenterTSV || cheap.Cand.WB || cheap.Cand.RL {
		t.Errorf("alpha=0 picked non-minimal options: %s", cheap.Cand)
	}
}

func TestModelPredictionsTrackMeasurements(t *testing.T) {
	o := fastOptimizer(t)
	for _, alpha := range []float64{0, 0.5, 1} {
		res, err := o.Best(alpha)
		if err != nil {
			t.Fatal(err)
		}
		relErr := math.Abs(res.PredIRmV-res.MeasIRmV) / res.MeasIRmV
		if relErr > 0.30 {
			t.Errorf("alpha=%g: model %.2f vs R-Mesh %.2f mV (%.0f%% off)",
				alpha, res.PredIRmV, res.MeasIRmV, relErr*100)
		}
	}
}

func TestFitQualityReported(t *testing.T) {
	o := fastOptimizer(t)
	if o.FitRMSE <= 0 || o.FitRMSE > 0.5 {
		t.Errorf("FitRMSE = %g out of plausible range", o.FitRMSE)
	}
	if o.FitR2 < 0.8 || o.FitR2 > 1 {
		t.Errorf("FitR2 = %g out of plausible range", o.FitR2)
	}
	if o.SolveCount() == 0 {
		t.Error("no solves recorded")
	}
	if o.GridSize() <= 0 {
		t.Error("grid size must be positive")
	}
}

func TestBaseline(t *testing.T) {
	o := fastOptimizer(t)
	res, err := o.Baseline()
	if err != nil {
		t.Fatal(err)
	}
	if res.Cand.TL != pdn.EdgeTSV || res.Cand.TC != 33 {
		t.Errorf("baseline candidate = %s", res.Cand)
	}
	if math.Abs(res.Cost-0.35) > 0.03 {
		t.Errorf("baseline cost %.3f, want ~0.35 (Table 9)", res.Cost)
	}
	if res.MeasIRmV < 20 || res.MeasIRmV > 45 {
		t.Errorf("baseline worst-case IR %.2f mV outside plausible band", res.MeasIRmV)
	}
}
