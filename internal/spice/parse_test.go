package spice

import (
	"errors"
	"strconv"
	"strings"
	"testing"

	"pdn3d/internal/solve"
	"pdn3d/internal/sparse"
)

// TestParseRoundTripSmall: the parser reads back everything WriteNetlist
// emits, and the rebuilt nodal system has the exact sparsity pattern of
// the originating model.
func TestParseRoundTripSmall(t *testing.T) {
	a, rhs := testModel(t)
	var sb strings.Builder
	if err := WriteNetlist(&sb, a.Model, rhs, "round trip"); err != nil {
		t.Fatal(err)
	}
	nl, err := Parse(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if nl.Title != "round trip" {
		t.Errorf("title %q, want %q", nl.Title, "round trip")
	}
	if nl.VDD != a.Model.VDD {
		t.Errorf("VDD %g, want %g", nl.VDD, a.Model.VDD)
	}
	if nl.Nodes != a.Model.N() {
		t.Errorf("%d nodes, want %d", nl.Nodes, a.Model.N())
	}
	if len(nl.Ties) != len(a.Model.Ties) {
		t.Errorf("%d ties, want %d", len(nl.Ties), len(a.Model.Ties))
	}
	if len(nl.Branches) == 0 || len(nl.Loads) == 0 {
		t.Fatalf("parsed %d branches and %d loads; want both > 0", len(nl.Branches), len(nl.Loads))
	}
	m2, rhs2, err := nl.System()
	if err != nil {
		t.Fatal(err)
	}
	if !sparse.StructureEqual(a.Model.Matrix, m2) {
		t.Error("rebuilt matrix has a different sparsity pattern")
	}
	if len(rhs2) != len(rhs) {
		t.Fatalf("rebuilt rhs has %d entries, want %d", len(rhs2), len(rhs))
	}
}

// TestParseSolve: the convenience solver on a hand-written 2-node deck
// reproduces the analytic answer.
func TestParseSolve(t *testing.T) {
	deck := `* two-node divider
VDD vdd 0 DC 1.0
RT0 vdd n0 1
R0 n0 n1 1
I0 n1 0 DC 0.1
.op
.end
`
	nl, err := Parse(strings.NewReader(deck))
	if err != nil {
		t.Fatal(err)
	}
	x, st, err := nl.Solve(solve.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !st.Converged {
		t.Error("not converged")
	}
	// 0.1 A through the 1Ω tie: n0 = 1 − 0.1 = 0.9; no current into n1's
	// branch beyond the load: n1 = n0 − 0.1·1 = 0.8.
	if d := x[0] - 0.9; d > 1e-12 || d < -1e-12 {
		t.Errorf("v(n0) = %.15f, want 0.9", x[0])
	}
	if d := x[1] - 0.8; d > 1e-12 || d < -1e-12 {
		t.Errorf("v(n1) = %.15f, want 0.8", x[1])
	}
}

// TestParseErrors: every malformed-deck class is rejected, element-card
// errors carry their 1-based line number, and structural errors (missing
// .end, missing supply) are reported even for otherwise clean decks.
func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, deck string
		wantLine   int // 0: not a *ParseError
	}{
		{"no end card", "* t\nVDD vdd 0 DC 1\nRT0 vdd n0 1\n", 0},
		{"no supply", "* t\nRT0 vdd n0 1\n.end\n", 0},
		{"two supplies", "* t\nVDD vdd 0 DC 1\nVDD2 vdd 0 DC 1\n.end\n", 3},
		{"bad voltage", "* t\nVDD vdd 0 DC zap\n.end\n", 2},
		{"negative voltage", "* t\nVDD vdd 0 DC -1\n.end\n", 2},
		{"unknown card", "* t\nVDD vdd 0 DC 1\nC0 n0 n1 1p\n.end\n", 3},
		{"bad node name", "* t\nVDD vdd 0 DC 1\nR0 x0 n1 1\n.end\n", 3},
		{"negative node", "* t\nVDD vdd 0 DC 1\nR0 n-1 n1 1\n.end\n", 3},
		{"self loop", "* t\nVDD vdd 0 DC 1\nR0 n1 n1 1\n.end\n", 3},
		{"zero resistance", "* t\nVDD vdd 0 DC 1\nR0 n0 n1 0\n.end\n", 3},
		{"negative resistance", "* t\nVDD vdd 0 DC 1\nR0 n0 n1 -5\n.end\n", 3},
		{"inf resistance", "* t\nVDD vdd 0 DC 1\nR0 n0 n1 +Inf\n.end\n", 3},
		{"malformed tie", "* t\nVDD vdd 0 DC 1\nRT0 n0 n1 1\n.end\n", 3},
		{"malformed load", "* t\nVDD vdd 0 DC 1\nI0 n0 DC 1\n.end\n", 3},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Parse(strings.NewReader(c.deck))
			if err == nil {
				t.Fatal("want error, got nil")
			}
			var pe *ParseError
			if c.wantLine > 0 {
				if !errors.As(err, &pe) {
					t.Fatalf("want *ParseError, got %T: %v", err, err)
				}
				if pe.Line != c.wantLine {
					t.Errorf("error on line %d, want %d: %v", pe.Line, c.wantLine, err)
				}
			}
		})
	}
}

// TestSystemRequiresTies: a deck with no supply ties is a singular
// system and must be rejected at rebuild time.
func TestSystemRequiresTies(t *testing.T) {
	deck := "* floating\nVDD vdd 0 DC 1\nR0 n0 n1 1\n.end\n"
	nl, err := Parse(strings.NewReader(deck))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := nl.System(); err == nil {
		t.Error("floating deck: want singular-system error from System")
	}
}

// TestDegenerateBranchError pins the typed error WriteNetlist returns for
// a branch that cannot be expressed as a resistor line — the regression
// for the old behavior of silently skipping it (which emitted a deck that
// was NOT electrically equivalent to the model). The exact message is
// part of the contract: operators grep logs for it.
func TestDegenerateBranchError(t *testing.T) {
	t.Run("tie", func(t *testing.T) {
		a, rhs := testModel(t)
		a.Model.Ties[0].G = 0
		var sb strings.Builder
		err := WriteNetlist(&sb, a.Model, rhs, "degenerate")
		var de *DegenerateBranchError
		if !errors.As(err, &de) {
			t.Fatalf("want *DegenerateBranchError, got %T: %v", err, err)
		}
		if de.N2 != SupplyNode {
			t.Errorf("N2 = %d, want SupplyNode (%d)", de.N2, SupplyNode)
		}
		wantMsg := "spice: degenerate supply tie at n" +
			itoa(de.N1) + ": conductance 0 would emit R=inf"
		if err.Error() != wantMsg {
			t.Errorf("message %q, want %q", err.Error(), wantMsg)
		}
		if sb.Len() != 0 {
			t.Errorf("partial deck written before the error: %d bytes", sb.Len())
		}
	})
	t.Run("branch", func(t *testing.T) {
		a, rhs := testModel(t)
		// Flip one stored off-diagonal to a positive value: the implied
		// branch conductance g = -val becomes negative.
		m := a.Model.Matrix
		flipped := false
		var n1, n2 int
	scan:
		for i := 0; i < m.N; i++ {
			for p := m.RowPtr[i]; p < m.RowPtr[i+1]; p++ {
				if j := int(m.Col[p]); j > i {
					m.Val[p] = 0.001
					n1, n2 = i, j
					flipped = true
					break scan
				}
			}
		}
		if !flipped {
			t.Fatal("test model has no off-diagonal entries")
		}
		var sb strings.Builder
		err := WriteNetlist(&sb, a.Model, rhs, "degenerate")
		var de *DegenerateBranchError
		if !errors.As(err, &de) {
			t.Fatalf("want *DegenerateBranchError, got %T: %v", err, err)
		}
		if de.N1 != n1 || de.N2 != n2 {
			t.Errorf("branch (%d, %d), want (%d, %d)", de.N1, de.N2, n1, n2)
		}
		wantMsg := "spice: degenerate branch n" + itoa(n1) + "-n" + itoa(n2) +
			": conductance -0.001 would emit R=inf"
		if err.Error() != wantMsg {
			t.Errorf("message %q, want %q", err.Error(), wantMsg)
		}
		if sb.Len() != 0 {
			t.Errorf("partial deck written before the error: %d bytes", sb.Len())
		}
	})
}

func itoa(n int) string { return strconv.Itoa(n) }
