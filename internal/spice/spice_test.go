package spice

import (
	"bufio"
	"math"
	"strconv"
	"strings"
	"testing"

	"pdn3d/internal/bench3d"
	"pdn3d/internal/irdrop"
	"pdn3d/internal/memstate"
)

func testModel(t *testing.T) (*irdrop.Analyzer, []float64) {
	t.Helper()
	b, err := bench3d.StackedDDR3Off()
	if err != nil {
		t.Fatal(err)
	}
	spec := irdrop.SingleDie2D(b.Spec.Clone())
	spec.MeshPitch = 1.0 // tiny deck
	a, err := irdrop.New(spec, b.DRAMPower, nil)
	if err != nil {
		t.Fatal(err)
	}
	st := memstate.State{Dies: [][]int{{7, 5}}}
	rhs, err := a.LoadedRHS(st, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	return a, rhs
}

func TestNetlistStructure(t *testing.T) {
	a, rhs := testModel(t)
	var sb strings.Builder
	if err := WriteNetlist(&sb, a.Model, rhs, "unit test"); err != nil {
		t.Fatal(err)
	}
	deck := sb.String()
	if !strings.HasPrefix(deck, "* unit test") {
		t.Error("missing title card")
	}
	for _, want := range []string{"VDD vdd 0 DC 1.5", ".op", ".end"} {
		if !strings.Contains(deck, want) {
			t.Errorf("deck missing %q", want)
		}
	}
	var nR, nT, nI int
	sc := bufio.NewScanner(strings.NewReader(deck))
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "RT"):
			nT++
		case strings.HasPrefix(line, "R"):
			nR++
		case strings.HasPrefix(line, "I"):
			nI++
		}
	}
	if nT != len(a.Model.Ties) {
		t.Errorf("tie resistors = %d, want %d", nT, len(a.Model.Ties))
	}
	if nR == 0 || nI == 0 {
		t.Errorf("deck has %d resistors and %d current sources; want both > 0", nR, nI)
	}
}

// TestNetlistIsElectricallyFaithful re-parses the deck into a nodal system
// and checks that the total load current and tie conductance match the
// model — the invariant an external HSPICE run would rely on.
func TestNetlistIsElectricallyFaithful(t *testing.T) {
	a, rhs := testModel(t)
	var sb strings.Builder
	if err := WriteNetlist(&sb, a.Model, rhs, "check"); err != nil {
		t.Fatal(err)
	}
	var loadSum, tieG float64
	sc := bufio.NewScanner(strings.NewReader(sb.String()))
	for sc.Scan() {
		f := strings.Fields(sc.Text())
		if len(f) < 4 {
			continue
		}
		switch {
		case strings.HasPrefix(f[0], "RT"):
			r, err := strconv.ParseFloat(f[3], 64)
			if err != nil {
				t.Fatalf("bad tie value %q", f[3])
			}
			tieG += 1 / r
		case strings.HasPrefix(f[0], "I") && f[0] != "I":
			v, err := strconv.ParseFloat(f[4], 64)
			if err != nil {
				t.Fatalf("bad current %q in %v", f[4], f)
			}
			loadSum += v
		}
	}
	base := a.Model.BaseRHS()
	var wantLoad float64
	for i := range rhs {
		wantLoad += base[i] - rhs[i]
	}
	if math.Abs(loadSum-wantLoad) > 1e-9 {
		t.Errorf("deck load current %.9f A, want %.9f A", loadSum, wantLoad)
	}
	var wantG float64
	for _, tie := range a.Model.Ties {
		wantG += tie.G
	}
	if math.Abs(tieG-wantG)/wantG > 1e-6 {
		t.Errorf("deck tie conductance %.6f S, want %.6f S", tieG, wantG)
	}
}

func TestNetlistRejectsBadRHS(t *testing.T) {
	a, _ := testModel(t)
	var sb strings.Builder
	if err := WriteNetlist(&sb, a.Model, make([]float64, 3), "bad"); err == nil {
		t.Error("short rhs: want error")
	}
}

func TestNetlistDeterministic(t *testing.T) {
	a, rhs := testModel(t)
	var s1, s2 strings.Builder
	if err := WriteNetlist(&s1, a.Model, rhs, "x"); err != nil {
		t.Fatal(err)
	}
	if err := WriteNetlist(&s2, a.Model, rhs, "x"); err != nil {
		t.Fatal(err)
	}
	if s1.String() != s2.String() {
		t.Error("netlist export must be deterministic")
	}
}
