// Round-trip property tests live in the external test package so they
// can drive the generator (internal/bench/gen) without an import cycle.
package spice_test

import (
	"bytes"
	"math"
	"testing"

	"pdn3d/internal/bench/gen"
	"pdn3d/internal/bench3d"
	"pdn3d/internal/irdrop"
	"pdn3d/internal/memstate"
	"pdn3d/internal/rmesh"
	"pdn3d/internal/solve"
	"pdn3d/internal/sparse"
	"pdn3d/internal/spice"
)

// roundTripVoltTol mirrors diff.RoundTripVoltTol (the diff package cannot
// be imported by name here without dragging the whole harness into every
// spice test run; the bound is documented in DESIGN.md §5g).
const roundTripVoltTol = 1e-8

// assemble expands a generator instance into its mesh and loaded RHS.
func assemble(t *testing.T, inst *gen.Instance) (*rmesh.Model, []float64) {
	t.Helper()
	var logic = inst.Bench.LogicPower
	if !inst.Spec.OnLogic {
		logic = nil
	}
	a, err := irdrop.New(inst.Spec, inst.Bench.DRAMPower, logic)
	if err != nil {
		t.Fatal(err)
	}
	st, err := memstate.FromCounts(inst.Counts, memstate.WorstCaseEdge(inst.Spec.DRAM.NumBanks))
	if err != nil {
		t.Fatal(err)
	}
	rhs, err := a.LoadedRHS(st, inst.IO)
	if err != nil {
		t.Fatal(err)
	}
	return a.Model, rhs
}

// checkRoundTrip writes the model as a deck, re-parses it, and asserts
// the round-trip contract: exact sparsity pattern, near-ulp values, and
// voltages within roundTripVoltTol.
func checkRoundTrip(t *testing.T, m *rmesh.Model, rhs []float64) {
	t.Helper()
	var buf bytes.Buffer
	if err := spice.WriteNetlist(&buf, m, rhs, m.Spec.Name); err != nil {
		t.Fatal(err)
	}
	nl, err := spice.Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	a2, rhs2, err := nl.System()
	if err != nil {
		t.Fatal(err)
	}
	if !sparse.StructureEqual(m.Matrix, a2) {
		t.Fatal("re-parsed matrix has a different sparsity pattern")
	}
	for i := range m.Matrix.Val {
		a, b := m.Matrix.Val[i], a2.Val[i]
		if d := math.Abs(a - b); d != 0 && d/math.Max(math.Abs(a), math.Abs(b)) > 1e-12 {
			t.Fatalf("matrix entry %d drifted: %g vs %g", i, a, b)
		}
	}
	for i := range rhs {
		a, b := rhs[i], rhs2[i]
		if d := math.Abs(a - b); d != 0 && d/math.Max(math.Abs(a), math.Abs(b)) > 1e-12 {
			t.Fatalf("rhs entry %d drifted: %g vs %g", i, a, b)
		}
	}
	cg := solve.CGOptions{Tol: 1e-13}
	x1, _, err := m.Solve(rhs, solve.Options{CGOptions: cg})
	if err != nil {
		t.Fatal(err)
	}
	s2, err := solve.New(a2, solve.Options{})
	if err != nil {
		t.Fatal(err)
	}
	x2, _, err := s2.Solve(rhs2, cg)
	if err != nil {
		t.Fatal(err)
	}
	var num, den float64
	for i := range x1 {
		if d := math.Abs(x2[i] - x1[i]); d > num {
			num = d
		}
		if a := math.Abs(x1[i]); a > den {
			den = a
		}
	}
	if num > roundTripVoltTol*den {
		t.Errorf("round-trip voltage error %.3e above %.0e", num/den, roundTripVoltTol)
	}
}

// TestRoundTripPaperDesigns: the round-trip property holds for all four
// paper benchmarks (meshed at 1mm pitch so the suite stays fast; the
// corpus and pdnbench cover finer pitches).
func TestRoundTripPaperDesigns(t *testing.T) {
	benches, err := bench3d.All()
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range benches {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			t.Parallel()
			s := &gen.Spec{Name: b.Name + "-rt", Base: b.Name, Pitch: 1.0, Seed: 1}
			inst, err := s.Build()
			if err != nil {
				t.Fatal(err)
			}
			m, rhs := assemble(t, inst)
			checkRoundTrip(t, m, rhs)
		})
	}
}

// FuzzNetlistRoundTrip drives the round-trip property across the
// generator's knob space: any reachable design must export to a deck
// that re-parses into the same structure, near-identical values, and
// voltages within tolerance.
func FuzzNetlistRoundTrip(f *testing.F) {
	f.Add(uint8(0), uint16(100), uint16(0), uint64(1))
	f.Add(uint8(1), uint16(100), uint16(50), uint64(2))
	f.Add(uint8(2), uint16(110), uint16(0), uint64(3))
	f.Add(uint8(3), uint16(90), uint16(25), uint64(4))
	bases := []string{"ddr3-off", "ddr3-on", "wideio", "hmc"}
	f.Fuzz(func(t *testing.T, base uint8, pitchCenti, usageCenti uint16, seed uint64) {
		s := &gen.Spec{
			Name:  "fuzz-rt",
			Base:  bases[int(base)%len(bases)],
			Pitch: 0.9 + float64(pitchCenti%128)/100,
			// UsageScale in [0.5, 1.5): sweeps conductance magnitudes, and
			// with them the emitted resistance text, without changing shape.
			UsageScale: 0.5 + float64(usageCenti%100)/100,
			Seed:       seed,
		}
		inst, err := s.Build()
		if err != nil {
			t.Skip() // invalid knob combination
		}
		m, rhs := assemble(t, inst)
		checkRoundTrip(t, m, rhs)
	})
}
