package spice

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"pdn3d/internal/solve"
	"pdn3d/internal/sparse"
)

// Netlist is a parsed DC deck in the dialect WriteNetlist emits: one ideal
// VDD source, two-terminal resistors between mesh nodes ("R… n<i> n<j>"),
// supply ties ("RT… vdd n<i>"), and DC current loads to ground
// ("I… n<i> 0 DC …"). It is the interchange form of the benchmark corpus:
// System rebuilds the folded nodal equations the R-Mesh solver consumes.
type Netlist struct {
	// Title is the first comment card.
	Title string
	// VDD is the ideal supply voltage.
	VDD float64
	// Nodes is the mesh node count (highest node index + 1).
	Nodes int
	// Branches lists the node-to-node resistors in deck order.
	Branches []Branch
	// Ties lists the supply-tie resistors in deck order.
	Ties []Branch
	// Loads lists the DC current loads in deck order.
	Loads []Load
}

// Branch is one resistor line. For entries of Netlist.Ties, N2 is
// SupplyNode (the vdd side).
type Branch struct {
	N1, N2 int
	R      float64 // resistance in ohms, always positive and finite
}

// Load is one DC current source drawing I amperes from Node to ground.
type Load struct {
	Node int
	I    float64
}

// ParseError reports a malformed deck line with its 1-based line number.
type ParseError struct {
	Line int
	Text string
	Msg  string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("spice: line %d: %s: %q", e.Line, e.Msg, e.Text)
}

// Parse reads a DC deck in the WriteNetlist dialect. Comment cards are
// skipped (the first one becomes the title), analysis cards (".op",
// ".print") are ignored, and parsing stops at ".end". Unknown element
// cards, malformed node names, and non-positive or non-finite resistances
// are errors: the parser's job is to certify that a deck rebuilds into
// exactly one well-formed nodal system.
func Parse(r io.Reader) (*Netlist, error) {
	nl := &Netlist{VDD: math.NaN()}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	sawTitle := false
	sawEnd := false
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "*") {
			if !sawTitle {
				nl.Title = strings.TrimSpace(line[1:])
				sawTitle = true
			}
			continue
		}
		sawTitle = true // any element card ends the title region
		if strings.HasPrefix(line, ".") {
			if strings.EqualFold(line, ".end") {
				sawEnd = true
				break
			}
			continue // .op, .print, and other analysis cards
		}
		f := strings.Fields(line)
		bad := func(msg string) error { return &ParseError{Line: lineNo, Text: line, Msg: msg} }
		switch {
		case strings.HasPrefix(f[0], "V"):
			// VDD vdd 0 DC <v>
			if len(f) != 5 || f[1] != "vdd" || f[2] != "0" || !strings.EqualFold(f[3], "DC") {
				return nil, bad("malformed voltage source (want \"VDD vdd 0 DC <v>\")")
			}
			if !math.IsNaN(nl.VDD) {
				return nil, bad("second voltage source (the dialect has exactly one ideal supply)")
			}
			v, err := parseValue(f[4])
			if err != nil || v <= 0 {
				return nil, bad("bad supply voltage")
			}
			nl.VDD = v
		case strings.HasPrefix(f[0], "RT"):
			// RT<k> vdd n<i> <r>
			if len(f) != 4 || f[1] != "vdd" {
				return nil, bad("malformed supply tie (want \"RT<k> vdd n<i> <r>\")")
			}
			n, err := nl.parseNode(f[2])
			if err != nil {
				return nil, bad(err.Error())
			}
			res, err := parseResistance(f[3])
			if err != nil {
				return nil, bad(err.Error())
			}
			nl.Ties = append(nl.Ties, Branch{N1: n, N2: SupplyNode, R: res})
		case strings.HasPrefix(f[0], "R"):
			// R<k> n<i> n<j> <r>
			if len(f) != 4 {
				return nil, bad("malformed resistor (want \"R<k> n<i> n<j> <r>\")")
			}
			n1, err := nl.parseNode(f[1])
			if err != nil {
				return nil, bad(err.Error())
			}
			n2, err := nl.parseNode(f[2])
			if err != nil {
				return nil, bad(err.Error())
			}
			if n1 == n2 {
				return nil, bad("resistor shorts a node to itself")
			}
			res, err := parseResistance(f[3])
			if err != nil {
				return nil, bad(err.Error())
			}
			nl.Branches = append(nl.Branches, Branch{N1: n1, N2: n2, R: res})
		case strings.HasPrefix(f[0], "I"):
			// I<k> n<i> 0 DC <amps>
			if len(f) != 5 || f[2] != "0" || !strings.EqualFold(f[3], "DC") {
				return nil, bad("malformed current load (want \"I<k> n<i> 0 DC <amps>\")")
			}
			n, err := nl.parseNode(f[1])
			if err != nil {
				return nil, bad(err.Error())
			}
			amps, err := parseValue(f[4])
			if err != nil {
				return nil, bad("bad load current")
			}
			nl.Loads = append(nl.Loads, Load{Node: n, I: amps})
		default:
			return nil, bad("unknown element card")
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("spice: reading deck: %w", err)
	}
	if !sawEnd {
		return nil, fmt.Errorf("spice: deck has no .end card")
	}
	if math.IsNaN(nl.VDD) {
		return nil, fmt.Errorf("spice: deck has no VDD supply source")
	}
	return nl, nil
}

// parseNode maps "n<i>" to the node index i, growing the node count.
func (nl *Netlist) parseNode(s string) (int, error) {
	if len(s) < 2 || s[0] != 'n' {
		return 0, fmt.Errorf("bad node name %q (want n<index>)", s)
	}
	n, err := strconv.Atoi(s[1:])
	if err != nil || n < 0 {
		return 0, fmt.Errorf("bad node index %q", s)
	}
	if n+1 > nl.Nodes {
		nl.Nodes = n + 1
	}
	return n, nil
}

func parseValue(s string) (float64, error) {
	v, err := strconv.ParseFloat(s, 64)
	if err != nil || math.IsNaN(v) || math.IsInf(v, 0) {
		return 0, fmt.Errorf("bad numeric value %q", s)
	}
	return v, nil
}

func parseResistance(s string) (float64, error) {
	v, err := parseValue(s)
	if err != nil {
		return 0, err
	}
	if v <= 0 {
		return 0, fmt.Errorf("non-positive resistance %q", s)
	}
	return v, nil
}

// System rebuilds the folded nodal equations of the deck: the SPD
// conductance matrix (ties folded onto the diagonal) and the right-hand
// side (tie injections g·VDD minus load currents). Branch stamps replay
// through the same sparse.Builder the R-Mesh build uses, so the matrix
// structure of a round-tripped model matches the original exactly
// (sparse.StructureEqual) and the values match to reciprocal-rounding ulps.
func (nl *Netlist) System() (*sparse.CSR, []float64, error) {
	if nl.Nodes == 0 {
		return nil, nil, fmt.Errorf("spice: deck references no mesh nodes")
	}
	if len(nl.Ties) == 0 {
		return nil, nil, fmt.Errorf("spice: deck has no supply ties (singular system)")
	}
	b := sparse.NewBuilder(nl.Nodes)
	rhs := make([]float64, nl.Nodes)
	for _, br := range nl.Branches {
		b.AddConductance(br.N1, br.N2, 1/br.R)
	}
	for _, t := range nl.Ties {
		g := 1 / t.R
		b.AddToGround(t.N1, g)
		rhs[t.N1] += g * nl.VDD
	}
	for _, ld := range nl.Loads {
		rhs[ld.Node] -= ld.I
	}
	return b.Compress(), rhs, nil
}

// Solve rebuilds the deck's nodal system and solves it with the method
// selected in opt, returning the node voltage vector.
func (nl *Netlist) Solve(opt solve.Options) ([]float64, solve.CGStats, error) {
	a, rhs, err := nl.System()
	if err != nil {
		return nil, solve.CGStats{}, err
	}
	s, err := solve.New(a, opt)
	if err != nil {
		return nil, solve.CGStats{}, err
	}
	return s.Solve(rhs, opt.CGOptions)
}
