package speckey

import (
	"testing"

	"pdn3d/internal/bench3d"
)

// Length-prefixed framing must keep adjacent fields from absorbing each
// other: "ab"+"c" and "a"+"bc" differ even though their concatenation is
// identical.
func TestBuilderFraming(t *testing.T) {
	var a, b Builder
	a.Str("ab")
	a.Str("c")
	b.Str("a")
	b.Str("bc")
	if a.String() == b.String() {
		t.Fatalf("framing collision: %q", a.String())
	}
}

func TestUsageOrderIndependent(t *testing.T) {
	var a, b Builder
	a.Usage(map[string]float64{"M2": 0.1, "M3": 0.2})
	b.Usage(map[string]float64{"M3": 0.2, "M2": 0.1})
	if a.String() != b.String() {
		t.Fatalf("usage key depends on insertion order: %q vs %q", a.String(), b.String())
	}
}

func TestSpecStableAndLogicSensitive(t *testing.T) {
	bench, err := bench3d.StackedDDR3Off()
	if err != nil {
		t.Fatal(err)
	}
	s := bench.Spec
	if Spec(s, false) != Spec(s.Clone(), false) {
		t.Error("identical specs produced different keys")
	}
	if Spec(s, false) == Spec(s, true) {
		t.Error("withLogic not reflected in the key")
	}
}
