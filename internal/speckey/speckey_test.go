package speckey_test

import (
	"testing"

	"pdn3d/internal/bench3d"
	"pdn3d/internal/speckey"
)

// Length-prefixed framing must keep adjacent fields from absorbing each
// other: "ab"+"c" and "a"+"bc" differ even though their concatenation is
// identical.
func TestBuilderFraming(t *testing.T) {
	var a, b speckey.Builder
	a.Str("ab")
	a.Str("c")
	b.Str("a")
	b.Str("bc")
	if a.String() == b.String() {
		t.Fatalf("framing collision: %q", a.String())
	}
}

func TestUsageOrderIndependent(t *testing.T) {
	var a, b speckey.Builder
	a.Usage(map[string]float64{"M2": 0.1, "M3": 0.2})
	b.Usage(map[string]float64{"M3": 0.2, "M2": 0.1})
	if a.String() != b.String() {
		t.Fatalf("usage key depends on insertion order: %q vs %q", a.String(), b.String())
	}
}

func TestSpecStableAndLogicSensitive(t *testing.T) {
	bench, err := bench3d.StackedDDR3Off()
	if err != nil {
		t.Fatal(err)
	}
	s := bench.Spec
	if speckey.Spec(s, false) != speckey.Spec(s.Clone(), false) {
		t.Error("identical specs produced different keys")
	}
	if speckey.Spec(s, false) == speckey.Spec(s, true) {
		t.Error("withLogic not reflected in the key")
	}
}

// The topology/values split contract: changing only a usage magnitude
// keeps the topology key (the mesh shape is unchanged — the serving layer
// may restamp) while the values key and the full key must both move.
func TestTopologyValuesSplit(t *testing.T) {
	bench, err := bench3d.StackedDDR3On()
	if err != nil {
		t.Fatal(err)
	}
	s := bench.Spec
	v := s.Clone()
	for name := range v.Usage {
		v.Usage[name] *= 0.9
	}
	if speckey.Topology(s) != speckey.Topology(v) {
		t.Error("usage magnitude change altered the topology key")
	}
	if speckey.Values(s, true) == speckey.Values(v, true) {
		t.Error("usage magnitude change not reflected in the values key")
	}
	if speckey.Spec(s, true) == speckey.Spec(v, true) {
		t.Error("usage magnitude change not reflected in the full key")
	}

	// Shape changes must move the topology key.
	shape := s.Clone()
	shape.TSVCount++
	if speckey.Topology(s) == speckey.Topology(shape) {
		t.Error("TSV count change not reflected in the topology key")
	}
	pitch := s.Clone()
	pitch.MeshPitch = 0.7
	if speckey.Topology(s) == speckey.Topology(pitch) {
		t.Error("mesh pitch change not reflected in the topology key")
	}

	// Dropping a layer changes the usage support, hence the shape.
	var dropped string
	sup := s.Clone()
	for name := range sup.Usage {
		dropped = name
		break
	}
	delete(sup.Usage, dropped)
	if speckey.Topology(s) == speckey.Topology(sup) {
		t.Errorf("dropping layer %s from the usage support kept the topology key", dropped)
	}
}

// Support is order-independent and ignores zero entries (a zero-usage
// layer is never built, so it is not part of the shape).
func TestSupportOrderAndZeroes(t *testing.T) {
	var a, b speckey.Builder
	a.Support(map[string]float64{"M2": 0.1, "M3": 0.2, "M4": 0})
	b.Support(map[string]float64{"M3": 0.9, "M2": 0.4})
	if a.String() != b.String() {
		t.Fatalf("support depends on magnitudes, order, or zero entries: %q vs %q", a.String(), b.String())
	}
}

// The full key is the framed concatenation of the two sub-keys, so the
// two-tier cache can never see designs that agree on Spec but disagree on
// Topology or Values.
func TestSpecIsFramedSplit(t *testing.T) {
	bench, err := bench3d.StackedDDR3Off()
	if err != nil {
		t.Fatal(err)
	}
	s := bench.Spec
	var k speckey.Builder
	k.Str(speckey.Topology(s))
	k.Str(speckey.Values(s, false))
	if speckey.Spec(s, false) != k.String() {
		t.Fatal("Spec is not the framed Topology+Values concatenation")
	}
}
