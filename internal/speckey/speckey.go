// Package speckey canonically fingerprints pdn.Spec designs for cache
// keys. One implementation serves every caching layer — the experiment
// runner's analyzer/LUT caches and the serving layer's result cache — so
// the cache-key contract ("distinct designs cannot collide, identical
// designs always hit") is defined in exactly one place.
package speckey

import (
	"sort"
	"strconv"
	"strings"

	"pdn3d/internal/pdn"
)

// Builder assembles an unambiguous cache key: every field is written as
// <len>:<bytes>, so no combination of field values can collide with a
// different combination (unlike delimiter-joined %v formatting, where one
// field's text can absorb the delimiter).
type Builder struct {
	sb strings.Builder
}

// Str appends a length-prefixed string field.
func (k *Builder) Str(s string) {
	k.sb.WriteString(strconv.Itoa(len(s)))
	k.sb.WriteByte(':')
	k.sb.WriteString(s)
}

// Int appends an integer field.
func (k *Builder) Int(v int) { k.Str(strconv.Itoa(v)) }

// Bool appends a boolean field.
func (k *Builder) Bool(v bool) { k.Str(strconv.FormatBool(v)) }

// Float appends the exact value (shortest round-trip form), so specs that
// differ only past some decimal place never share a key.
func (k *Builder) Float(v float64) { k.Str(strconv.FormatFloat(v, 'g', -1, 64)) }

// Usage appends a string-keyed float map in sorted key order.
func (k *Builder) Usage(m map[string]float64) {
	keys := make([]string, 0, len(m))
	for key := range m {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	k.Int(len(keys))
	for _, key := range keys {
		k.Str(key)
		k.Float(m[key])
	}
}

// String returns the assembled key.
func (k *Builder) String() string { return k.sb.String() }

// Support appends the sorted nonzero-keyed support of a string-keyed
// float map — which entries exist, not their magnitudes. Layers with zero
// usage are not built at all, so the support is part of a design's mesh
// shape while the magnitudes are not.
func (k *Builder) Support(m map[string]float64) {
	keys := make([]string, 0, len(m))
	for key, v := range m {
		if v != 0 {
			keys = append(keys, key)
		}
	}
	sort.Strings(keys)
	k.Int(len(keys))
	for _, key := range keys {
		k.Str(key)
	}
}

// Topology fingerprints the spec fields that determine the R-Mesh shape:
// node numbering, layer/via/link structure, and the symbolic CSR pattern.
// Two specs with equal topology keys can share one rmesh.Topology — only
// conductance values differ between them. The metal usage maps contribute
// only their support (which layers exist), never their magnitudes.
func Topology(s *pdn.Spec) string {
	var k Builder
	k.Str(s.Name)
	k.Int(s.NumDRAM)
	k.Support(s.Usage)
	k.Support(s.LogicUsage)
	k.Int(s.TSVCount)
	k.Str(s.TSVStyle.String())
	k.Str(s.Bonding.String())
	k.Str(s.RDL.String())
	k.Bool(s.WireBond)
	k.Bool(s.DedicatedTSV)
	k.Bool(s.AlignTSV)
	k.Int(s.WiresPerDie)
	k.Float(s.EffMeshPitch())
	k.Bool(s.OnLogic)
	failed := make([]int, 0, len(s.FailedTSVs))
	for f := range s.FailedTSVs {
		failed = append(failed, f)
	}
	sort.Ints(failed)
	k.Int(len(failed))
	for _, f := range failed {
		k.Int(f)
	}
	return k.String()
}

// Values fingerprints the spec fields a value-only restamp rewrites: the
// metal usage magnitudes (which set every layer's effective sheet
// resistance) and whether the logic die is analyzed loaded, which changes
// the right-hand side without changing the spec.
func Values(s *pdn.Spec, withLogic bool) string {
	var k Builder
	k.Usage(s.Usage)
	k.Usage(s.LogicUsage)
	k.Bool(withLogic)
	return k.String()
}

// Spec fingerprints every spec field the R-Mesh build and power models
// read, canonically: distinct designs cannot collide, identical designs
// always hit the cache. It is the framed concatenation of the Topology
// and Values keys, so the full key splits cleanly into "which mesh shape"
// and "which conductance values" — the serving layer's two cache tiers.
func Spec(s *pdn.Spec, withLogic bool) string {
	var k Builder
	k.Str(Topology(s))
	k.Str(Values(s, withLogic))
	return k.String()
}
