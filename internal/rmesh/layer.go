// Package rmesh builds the resistive-mesh (R-Mesh) model of a complete 3D
// DRAM power-delivery network from a pdn.Spec: one mesh per PDN metal layer
// per die, via carpets between a die's layers, TSV/bump/F2F/RDL/bond-wire
// connections between dies and to the package supply, and current loads
// rasterized from power maps.
//
// The paper builds the same model for VDD only and solves it with HSPICE;
// here the model is a sparse SPD conductance system solved by
// internal/solve. The ground net is complementary (paper §2.2) and is not
// modelled separately.
package rmesh

import (
	"fmt"

	"pdn3d/internal/geom"
	"pdn3d/internal/tech"
)

// Die identifiers for non-DRAM layers.
const (
	// DieLogic marks layers of the host logic die.
	DieLogic = -1
	// DieInterfaceRDL marks the single interface RDL between supply and
	// the bottom DRAM die.
	DieInterfaceRDL = -2
)

// Layer is one mesh layer: a metal plane of a die (or an RDL) discretized
// on a uniform grid.
type Layer struct {
	// Key is a unique human-readable identifier like "dram0/M2",
	// "logic/M6", "rdl/if", "dram2/RDL".
	Key string
	// Die is the owning die: a DRAM index (0 = bottom), DieLogic, or
	// DieInterfaceRDL.
	Die int
	// Name is the metal layer name within the die.
	Name string
	// Grid is the spatial discretization.
	Grid geom.Grid
	// Offset is the global index of the layer's node (0,0).
	Offset int
	// Dir is the preferred routing direction.
	Dir tech.Direction
	// REff is the effective per-square resistance of the layer's VDD PDN:
	// sheet resistance divided by the area usage.
	REff float64
	// IsLoad marks the layer that receives the die's current loads.
	IsLoad bool
}

// Node returns the global node index of grid coordinates (i, j).
func (l *Layer) Node(i, j int) int { return l.Offset + l.Grid.Index(i, j) }

// NodeAt returns the global node index nearest to point p.
func (l *Layer) NodeAt(p geom.Point) int { return l.Offset + l.Grid.NearestIndex(p) }

// Contains reports whether global node index n belongs to this layer.
func (l *Layer) Contains(n int) bool {
	return n >= l.Offset && n < l.Offset+l.Grid.N()
}

// Pos returns the physical position of global node n (which must belong to
// this layer).
func (l *Layer) Pos(n int) geom.Point {
	i, j := l.Grid.Coords(n - l.Offset)
	return l.Grid.Pos(i, j)
}

func (l *Layer) String() string {
	return fmt.Sprintf("%s[%dx%d @%d]", l.Key, l.Grid.NX, l.Grid.NY, l.Offset)
}
