package rmesh

import (
	"math"
	"testing"

	"pdn3d/internal/memstate"
	"pdn3d/internal/pdn"
	"pdn3d/internal/powermap"
	"pdn3d/internal/solve"
)

// maxIR solves the given spec under 0-0-0-2@100% and returns the maximum
// IR drop.
func maxIR(t *testing.T, spec *pdn.Spec) float64 {
	t.Helper()
	spec.MeshPitch = 0.5
	st, err := memstate.FromCounts([]int{0, 0, 0, 2}, memstate.WorstCaseEdge(8))
	if err != nil {
		t.Fatal(err)
	}
	_, ir := solveState(t, spec, st, 1.0, 0)
	var mx float64
	for _, v := range ir {
		if v > mx {
			mx = v
		}
	}
	return mx
}

// Physics invariant: options that only ADD conductance to a grounded
// resistive network can never raise any node's IR drop. Wire bonding,
// extra aligned TSVs, and extra metal all fall in this class.
func TestAddingConductanceNeverHurts(t *testing.T) {
	base := maxIR(t, offChipSpec(t))

	wb := offChipSpec(t)
	wb.WireBond = true
	if v := maxIR(t, wb); v > base*(1+1e-9) {
		t.Errorf("wire bonding raised IR: %.3f -> %.3f mV", base*1000, v*1000)
	}

	metal := offChipSpec(t)
	metal.Usage["M2"] *= 1.5
	metal.Usage["M3"] *= 1.5
	if v := maxIR(t, metal); v > base*(1+1e-9) {
		t.Errorf("extra metal raised IR: %.3f -> %.3f mV", base*1000, v*1000)
	}

	moreTSV := offChipSpec(t)
	moreTSV.TSVCount = 66 // same style, superset-ish edge pattern
	if v := maxIR(t, moreTSV); v > base*1.02 {
		t.Errorf("doubling TSVs raised IR by more than remesh noise: %.3f -> %.3f mV", base*1000, v*1000)
	}
}

// Superposition: the IR field of two loads equals the sum of the fields of
// each load alone (the system is linear).
func TestSuperposition(t *testing.T) {
	spec := offChipSpec(t)
	spec.MeshPitch = 0.5
	m, err := Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	pm := powermap.StackedDDR3Power()
	solveLoads := func(dies map[int][]int) []float64 {
		rhs := m.BaseRHS()
		for d := 0; d < spec.NumDRAM; d++ {
			loads, err := pm.Loads(spec.DRAM, dies[d], 1.0)
			if err != nil {
				t.Fatal(err)
			}
			if err := m.AddDRAMLoads(rhs, d, loads); err != nil {
				t.Fatal(err)
			}
		}
		v, _, err := m.Solve(rhs, solve.Options{CGOptions: solve.CGOptions{Tol: 1e-11}})
		if err != nil {
			t.Fatal(err)
		}
		return m.IRDrop(v)
	}
	// All dies idle gives the standby field; subtract it to isolate the
	// active-bank increments before comparing superpositions.
	idle := solveLoads(map[int][]int{})
	a := solveLoads(map[int][]int{3: {7}})
	b := solveLoads(map[int][]int{1: {2}})
	both := solveLoads(map[int][]int{3: {7}, 1: {2}})
	for n := range both {
		lhs := both[n] - idle[n]
		rhs := (a[n] - idle[n]) + (b[n] - idle[n])
		if math.Abs(lhs-rhs) > 5e-7 {
			t.Fatalf("superposition violated at node %d: %.3e vs %.3e", n, lhs, rhs)
		}
	}
}

// Reciprocity-flavoured check: scaling all loads by k scales every IR drop
// by k.
func TestLinearityInLoad(t *testing.T) {
	spec := offChipSpec(t)
	spec.MeshPitch = 0.5
	m, err := Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	pm := powermap.StackedDDR3Power()
	loads, err := pm.Loads(spec.DRAM, []int{7, 5}, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	run := func(scale float64) []float64 {
		rhs := m.BaseRHS()
		scaled := make([]powermap.Load, len(loads))
		for i, l := range loads {
			scaled[i] = powermap.Load{Rect: l.Rect, P: l.P * scale}
		}
		if err := m.AddDRAMLoads(rhs, 3, scaled); err != nil {
			t.Fatal(err)
		}
		v, _, err := m.Solve(rhs, solve.Options{CGOptions: solve.CGOptions{Tol: 1e-11}})
		if err != nil {
			t.Fatal(err)
		}
		return m.IRDrop(v)
	}
	one := run(1)
	three := run(3)
	for n := range one {
		if math.Abs(three[n]-3*one[n]) > 1e-6 {
			t.Fatalf("linearity violated at node %d: 3x load gives %.3e, want %.3e", n, three[n], 3*one[n])
		}
	}
}

// The IR drop is maximal somewhere strictly inside the loaded die — never
// negative anywhere, and zero only if there were no loads at all.
func TestIRFieldSanity(t *testing.T) {
	spec := offChipSpec(t)
	spec.MeshPitch = 0.5
	st, _ := memstate.FromCounts([]int{0, 0, 0, 2}, memstate.WorstCaseEdge(8))
	m, ir := solveState(t, spec, st, 1.0, 0)
	var min, max float64 = math.Inf(1), 0
	for _, v := range ir {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	if min < -1e-9 {
		t.Errorf("negative IR drop %.3e (node above VDD)", min)
	}
	if max <= 0 {
		t.Error("no drop anywhere despite loads")
	}
	// The die-3 field must contain the global max (it hosts the load).
	if got := m.DieMaxIR(ir, 3); math.Abs(got-max) > 1e-12 {
		t.Errorf("global max %.4f not on the active die (die3 max %.4f)", max*1000, got*1000)
	}
}
