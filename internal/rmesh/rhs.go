package rmesh

import (
	"fmt"
	"strconv"

	"pdn3d/internal/powermap"
	"pdn3d/internal/solve"
	"pdn3d/internal/sparse"
)

// BaseRHS returns the right-hand side of the folded nodal system with no
// loads attached: every supply tie contributes g·VDD at its node.
func (m *Model) BaseRHS() []float64 {
	rhs := make([]float64, m.n)
	for _, t := range m.Ties {
		rhs[t.Node] += t.G * m.VDD
	}
	return rhs
}

// AddDRAMLoads rasterizes a DRAM die's power loads onto its load layer:
// each load draws P/VDD milliamps spread uniformly over the mesh nodes its
// rectangle covers.
func (m *Model) AddDRAMLoads(rhs []float64, die int, loads []powermap.Load) error {
	l, err := m.DRAMLoadLayer(die)
	if err != nil {
		return err
	}
	return addLoads(rhs, l, loads, m.VDD)
}

// AddLogicLoads rasterizes the logic die's loads onto its load layer.
func (m *Model) AddLogicLoads(rhs []float64, loads []powermap.Load) error {
	l := m.LogicLoadLayer()
	if l == nil {
		return fmt.Errorf("rmesh: design has no logic die")
	}
	return addLoads(rhs, l, loads, m.VDD)
}

func addLoads(rhs []float64, l *Layer, loads []powermap.Load, vdd float64) error {
	for _, ld := range loads {
		if ld.P == 0 {
			continue
		}
		if ld.P < 0 {
			return fmt.Errorf("rmesh: negative load %g mW at %v", ld.P, ld.Rect)
		}
		nodes := l.Grid.NodesIn(ld.Rect)
		if len(nodes) == 0 {
			return fmt.Errorf("rmesh: load rect %v covers no nodes of layer %s", ld.Rect, l.Key)
		}
		// Loads are in mW; the nodal system is SI (V, A, S), so convert.
		iPer := ld.P / 1000 / vdd / float64(len(nodes))
		for _, n := range nodes {
			rhs[l.Offset+n] -= iPer
		}
	}
	return nil
}

// Solver returns the model's solver for the method and worker budget named
// in opt, building it on first use. Construction is deduplicated: when many
// goroutines request the same (method, workers) pair concurrently, exactly
// one factorization runs and the rest share it.
//
// Reordering-aware methods (cg-amg) are built on the RCM-reordered matrix
// and wrapped so callers see the original node ordering: right-hand sides
// and warm-start guesses in, voltages out — all in mesh numbering.
func (m *Model) Solver(opt solve.Options) (solve.Solver, error) {
	method := opt.Method
	if method == "" {
		method = solve.DefaultMethod
	}
	if opt.Obs == nil {
		opt.Obs = m.obs // an instrumented model instruments its solvers
	}
	return m.solvers.Do(method+"/"+strconv.Itoa(opt.Workers), func() (solve.Solver, error) {
		if solve.UsesReordering(method) {
			inner, err := solve.New(m.reorderedMatrix(), opt)
			if err != nil {
				return nil, err
			}
			return solve.Reordered(inner, m.topo.Perm()), nil
		}
		return solve.New(m.Matrix, opt)
	})
}

// reorderedMatrix materializes the RCM-reordered conductance matrix on
// first use by scattering the current stamp stream through the topology's
// permuted pattern. Later restamps keep it in sync (see restamp).
func (m *Model) reorderedMatrix() *sparse.CSR {
	m.permMu.Lock()
	defer m.permMu.Unlock()
	if m.permMatrix == nil {
		pm := m.topo.permPattern.NewCSR()
		m.topo.permPattern.Scatter(pm.Val, m.stampBuf)
		m.permMatrix = pm
	}
	return m.permMatrix
}

// Solve runs the selected solver on the assembled system and returns node
// voltages. The per-matrix setup (IC(0) or dense factorization) is built
// once per (method, workers) pair and shared across right-hand sides and
// goroutines.
func (m *Model) Solve(rhs []float64, opt solve.Options) ([]float64, solve.CGStats, error) {
	defer m.obs.Timer("rmesh.solve_time").Start()()
	s, err := m.Solver(opt)
	if err != nil {
		return nil, solve.CGStats{}, err
	}
	m.obs.Counter("rmesh.solves").Add(1)
	return s.Solve(rhs, opt.CGOptions)
}

// IRDrop converts node voltages to IR drops (VDD − v).
func (m *Model) IRDrop(v []float64) []float64 {
	out := make([]float64, len(v))
	for i, x := range v {
		out[i] = m.VDD - x
	}
	return out
}

// LayerMaxIR returns the maximum IR drop over one layer's nodes.
func (m *Model) LayerMaxIR(ir []float64, l *Layer) float64 {
	var mx float64
	for n := l.Offset; n < l.Offset+l.Grid.N(); n++ {
		if ir[n] > mx {
			mx = ir[n]
		}
	}
	return mx
}

// DieMaxIR returns the maximum IR drop over all layers of DRAM die d.
func (m *Model) DieMaxIR(ir []float64, d int) float64 {
	var mx float64
	for _, l := range m.Layers {
		if l.Die != d {
			continue
		}
		if v := m.LayerMaxIR(ir, l); v > mx {
			mx = v
		}
	}
	return mx
}
