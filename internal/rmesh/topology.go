package rmesh

// Two-phase build: a Topology freezes everything about a mesh that does
// not depend on the metal-usage magnitudes — node numbering, layer grids,
// via/link structure, and the symbolic CSR pattern — so a value-only
// sweep (the co-optimization workload) pays the geometry and the
// O(nnz log nnz) symbolic sort once and then restamps conductance values
// in place per point. The hard contract: a restamped model is
// bit-identical to one built from scratch for the same spec, because the
// restamp replays the exact stamp stream of the full build and the
// pattern merges duplicates in the same order Compress does.

import (
	"fmt"

	"pdn3d/internal/obs"
	"pdn3d/internal/pdn"
	"pdn3d/internal/sparse"
	"pdn3d/internal/speckey"
)

// Topology is the immutable shape of an R-Mesh: everything keyed by
// speckey.Topology — layer structure, node numbering, and the frozen CSR
// pattern — but none of the conductance values. One Topology serves every
// spec that differs from its source only in metal-usage magnitudes (the
// value fields of speckey.Values); NewModel stamps such a spec's values
// into a fresh matrix over the shared pattern. A Topology is safe for
// concurrent use.
//
//pdnlint:frozen
type Topology struct {
	key     string
	pattern *sparse.Pattern
	n       int
	// stamps is the raw stamp-stream length the pattern was frozen from;
	// every restamp must reproduce exactly this many stamps.
	stamps int
	// layers holds the canonical layer set (geometry only; the REff each
	// model carries is recomputed from its own spec).
	layers    []*Layer
	dramLoad  []int // layer index of each DRAM die's load layer
	logicLoad int   // layer index of the logic load layer, -1 off-chip
	// perm is the RCM (reverse Cuthill-McKee) ordering of the mesh graph,
	// perm[new] = old, computed once at freeze time. permPattern is the
	// pattern permuted by it: the same raw stamp stream scatters into the
	// bandwidth-reduced matrix that reordering-aware solvers (cg-amg)
	// consume, so a restamp refreshes both matrices from one stream.
	perm        []int32
	permPattern *sparse.Pattern
}

// Perm returns a copy of the topology's RCM ordering (perm[new] = old).
func (t *Topology) Perm() []int32 {
	out := make([]int32, len(t.perm))
	copy(out, t.perm)
	return out
}

// Key returns the topology's speckey.Topology fingerprint.
func (t *Topology) Key() string { return t.key }

// N returns the node count.
func (t *Topology) N() int { return t.n }

// NNZ returns the stored-entry count of the frozen matrix pattern.
func (t *Topology) NNZ() int { return t.pattern.NNZ() }

// BuildTopology assembles and freezes the topology of a design. The full
// build runs once (geometry, symbolic sort, numeric stamp); the returned
// Topology then mints value-specific models via NewModel without
// repeating the symbolic work.
func BuildTopology(spec *pdn.Spec) (*Topology, error) { return BuildTopologyObs(spec, nil) }

// BuildTopologyObs is BuildTopology with instrumentation (see BuildObs).
func BuildTopologyObs(spec *pdn.Spec, reg *obs.Registry) (*Topology, error) {
	t, _, err := buildBoth(spec, reg)
	return t, err
}

// NewModel stamps spec's conductance values over the frozen topology and
// returns a fully usable Model — bit-identical to Build(spec), but
// skipping geometry construction and the symbolic sort. spec must share
// the topology's speckey.Topology key (same design shape; only metal
// usage magnitudes may differ).
func (t *Topology) NewModel(spec *pdn.Spec) (*Model, error) { return t.NewModelObs(spec, nil) }

// NewModelObs is NewModel with instrumentation: the restamp reports under
// "rmesh.restamps" / "rmesh.restamp_time" rather than the full-build
// metrics, and the model's solver cache reports as in BuildObs.
func (t *Topology) NewModelObs(spec *pdn.Spec, reg *obs.Registry) (*Model, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if k := speckey.Topology(spec); k != t.key {
		return nil, fmt.Errorf("rmesh: spec %q has a different topology than this Topology was frozen from", spec.Name)
	}
	m := &Model{
		Spec:   spec,
		VDD:    spec.DRAMTech.VDD,
		Layers: cloneLayers(t.layers),
		byKey:  make(map[string]*Layer, len(t.layers)),
		n:      t.n,
		topo:   t,
		obs:    reg,
	}
	m.solvers.Hits = reg.Counter("rmesh.solver_cache.hits")
	m.solvers.Misses = reg.Counter("rmesh.solver_cache.misses")
	for _, l := range m.Layers {
		if err := m.applyREff(l); err != nil {
			return nil, err
		}
		m.byKey[l.Key] = l
	}
	m.dramLoad = make([]*Layer, len(t.dramLoad))
	for d, li := range t.dramLoad {
		m.dramLoad[d] = m.Layers[li]
	}
	if t.logicLoad >= 0 {
		m.logicLoad = m.Layers[t.logicLoad]
	}
	m.Matrix = t.pattern.NewCSR()
	m.stampBuf = make([]float64, 0, t.stamps)
	if err := m.restamp(); err != nil {
		return nil, err
	}
	return m, nil
}

// Topology returns the frozen shape the model was built over.
func (m *Model) Topology() *Topology { return m.topo }

// Restamp rewrites the model's conductance values in place for a new
// value-compatible spec: same topology key, different metal-usage
// magnitudes. No matrix memory is allocated — the CSR value array, the
// stamp buffer, and the link/tie slices are all reused — which is what
// makes a 50-point value sweep cheap. The solver cache is reset (its
// factorizations describe the old values). Restamp must not run
// concurrently with Solve or with other Restamp calls on the same model.
func (m *Model) Restamp(spec *pdn.Spec) error {
	if m.topo == nil {
		return fmt.Errorf("rmesh: model has no frozen topology")
	}
	if err := spec.Validate(); err != nil {
		return err
	}
	if k := speckey.Topology(spec); k != m.topo.key {
		return fmt.Errorf("rmesh: spec %q is not value-compatible with the model's topology", spec.Name)
	}
	m.Spec = spec
	for _, l := range m.Layers {
		if err := m.applyREff(l); err != nil {
			return err
		}
	}
	return m.restamp()
}

// restamp replays the full stamp stream with the model's current REff
// values through a valsRecorder and scatters it into the preallocated
// matrix. Ties, Links, and Resistors are rebuilt (their conductances
// change with the values), reusing their backing arrays.
func (m *Model) restamp() error {
	defer m.obs.Timer("rmesh.restamp_time").Start()()
	m.Ties = m.Ties[:0]
	m.Links = m.Links[:0]
	m.Resistors = 0
	rec := &valsRecorder{vals: m.stampBuf[:0]}
	for _, l := range m.Layers {
		m.stampLayer(rec, l)
	}
	m.stampVias(rec)
	if err := m.stampConnections(rec); err != nil {
		return err
	}
	if len(rec.vals) != m.topo.stamps {
		return fmt.Errorf("rmesh: restamp emitted %d stamps, topology froze %d (value change altered the mesh shape)",
			len(rec.vals), m.topo.stamps)
	}
	m.stampBuf = rec.vals
	m.topo.pattern.Scatter(m.Matrix.Val, rec.vals)
	// The reordered matrix, if a reordering-aware solver materialized it,
	// replays the same stream through the permuted pattern. Restamp is
	// documented as never concurrent with Solve, so the unlocked write is
	// safe; reorderedMatrix's lock only serializes concurrent first builds.
	if m.permMatrix != nil {
		m.topo.permPattern.Scatter(m.permMatrix.Val, rec.vals)
	}
	m.solvers.Reset()
	m.obs.Counter("rmesh.restamps").Add(1)
	return nil
}

// applyREff recomputes a layer's effective per-square resistance from the
// model's spec, using the same expressions the full build evaluates so
// restamped conductances are bit-identical to freshly built ones.
func (m *Model) applyREff(l *Layer) error {
	spec := m.Spec
	switch {
	case l.Die == DieInterfaceRDL, l.Die >= 0 && l.Name == spec.DRAMTech.RDL.Name:
		rdl := spec.DRAMTech.RDL
		l.REff = rdl.SheetR / rdl.MaxUsage
	case l.Die == DieLogic:
		u := spec.LogicUsage[l.Name]
		if u == 0 {
			return fmt.Errorf("rmesh: logic layer %s has zero usage in the new spec", l.Name)
		}
		ml, err := spec.LogicTech.Layer(l.Name)
		if err != nil {
			return err
		}
		l.REff = ml.SheetR / u
	default:
		u := spec.Usage[l.Name]
		if u == 0 {
			return fmt.Errorf("rmesh: DRAM layer %s has zero usage in the new spec", l.Name)
		}
		ml, err := spec.DRAMTech.Layer(l.Name)
		if err != nil {
			return err
		}
		l.REff = ml.SheetR / u
	}
	return nil
}

// cloneLayers deep-copies a layer set. Layer holds only value fields
// (geom.Grid included), so a struct copy fully detaches each clone.
func cloneLayers(ls []*Layer) []*Layer {
	out := make([]*Layer, len(ls))
	for i, l := range ls {
		c := *l
		out[i] = &c
	}
	return out
}

// stamper receives the conductance stamp stream of a build. Two
// implementations: *sparse.Builder records coordinates and values (the
// full build), valsRecorder records values only (the restamp, whose
// coordinates are already frozen in the pattern). Both must see the exact
// same stream for the pattern replay to hold.
type stamper interface {
	AddConductance(i, j int, g float64)
	AddToGround(i int, g float64)
}

// valsRecorder mirrors sparse.Builder's stamping behavior — including its
// skip of zero-valued stamps — while recording only values. Any
// divergence from Builder.Add's emission rule would desynchronize the
// stream from the frozen pattern.
type valsRecorder struct {
	vals []float64
}

func (r *valsRecorder) AddConductance(i, j int, g float64) {
	if g == 0 {
		return
	}
	// Builder.AddConductance stamps (i,i,+g) (j,j,+g) (i,j,-g) (j,i,-g);
	// for nonzero g none of the four is skipped.
	r.vals = append(r.vals, g, g, -g, -g)
}

func (r *valsRecorder) AddToGround(i int, g float64) {
	if g == 0 {
		return
	}
	r.vals = append(r.vals, g)
}
