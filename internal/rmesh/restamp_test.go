package rmesh_test

import (
	"math"
	"testing"

	"pdn3d/internal/bench3d"
	"pdn3d/internal/memstate"
	"pdn3d/internal/pdn"
	"pdn3d/internal/rmesh"
	"pdn3d/internal/solve"
)

// coarseOffChip is the off-chip stacked-DDR3 baseline at a coarse pitch,
// so builds and solves finish in milliseconds.
func coarseOffChip(t testing.TB) *pdn.Spec {
	t.Helper()
	b, err := bench3d.StackedDDR3Off()
	if err != nil {
		t.Fatal(err)
	}
	spec := b.Spec.Clone()
	spec.MeshPitch = 0.5
	return spec
}

// loadedRHS builds the benchmark's default-state right-hand side for a
// model, mirroring what the irdrop layer does (which this package cannot
// import).
func loadedRHS(t testing.TB, m *rmesh.Model, b *bench3d.Benchmark) []float64 {
	t.Helper()
	spec := m.Spec
	st, err := memstate.FromCounts(b.DefaultCounts, memstate.WorstCaseEdge(spec.DRAM.NumBanks))
	if err != nil {
		t.Fatal(err)
	}
	rhs := m.BaseRHS()
	for d := 0; d < spec.NumDRAM; d++ {
		var banks []int
		if d < len(st.Dies) {
			banks = st.Dies[d]
		}
		loads, err := b.DRAMPower.Loads(spec.DRAM, banks, b.DefaultIO)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.AddDRAMLoads(rhs, d, loads); err != nil {
			t.Fatal(err)
		}
	}
	if spec.OnLogic {
		loads, err := b.LogicPower.Loads(spec.Logic)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.AddLogicLoads(rhs, loads); err != nil {
			t.Fatal(err)
		}
	}
	return rhs
}

// assertModelsIdentical compares the stamped numerics of two models
// bitwise: matrix values, supply ties, and named links.
func assertModelsIdentical(t *testing.T, full, re *rmesh.Model) {
	t.Helper()
	if full.N() != re.N() {
		t.Fatalf("node count %d vs %d", full.N(), re.N())
	}
	if len(full.Matrix.Val) != len(re.Matrix.Val) {
		t.Fatalf("nnz %d vs %d", len(full.Matrix.Val), len(re.Matrix.Val))
	}
	for i := range full.Matrix.Val {
		if math.Float64bits(full.Matrix.Val[i]) != math.Float64bits(re.Matrix.Val[i]) {
			t.Fatalf("Matrix.Val[%d] = %x vs %x", i,
				math.Float64bits(full.Matrix.Val[i]), math.Float64bits(re.Matrix.Val[i]))
		}
	}
	if len(full.Ties) != len(re.Ties) {
		t.Fatalf("ties %d vs %d", len(full.Ties), len(re.Ties))
	}
	for i := range full.Ties {
		if full.Ties[i] != re.Ties[i] {
			t.Fatalf("Ties[%d] = %+v vs %+v", i, full.Ties[i], re.Ties[i])
		}
	}
	if len(full.Links) != len(re.Links) {
		t.Fatalf("links %d vs %d", len(full.Links), len(re.Links))
	}
	for i := range full.Links {
		if full.Links[i] != re.Links[i] {
			t.Fatalf("Links[%d] = %+v vs %+v", i, full.Links[i], re.Links[i])
		}
	}
	if full.Resistors != re.Resistors {
		t.Fatalf("resistors %d vs %d", full.Resistors, re.Resistors)
	}
}

// assertSolvesIdentical solves both models against the same RHS at the
// given worker count and requires bit-identical node voltages.
func assertSolvesIdentical(t *testing.T, full, re *rmesh.Model, b *bench3d.Benchmark, workers int) {
	t.Helper()
	opts := solve.Options{Workers: workers, CGOptions: solve.CGOptions{Tol: 1e-9, MaxIter: 40000}}
	vFull, _, err := full.Solve(loadedRHS(t, full, b), opts)
	if err != nil {
		t.Fatal(err)
	}
	vRe, _, err := re.Solve(loadedRHS(t, re, b), opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range vFull {
		if math.Float64bits(vFull[i]) != math.Float64bits(vRe[i]) {
			t.Fatalf("workers=%d: v[%d] = %x vs %x", workers, i,
				math.Float64bits(vFull[i]), math.Float64bits(vRe[i]))
		}
	}
}

// scaleUsage returns a value-only variant of the spec: same usage support
// (hence the same topology key), scaled magnitudes.
func scaleUsage(spec *pdn.Spec, f float64) *pdn.Spec {
	s := spec.Clone()
	s.Usage = map[string]float64{}
	for k, v := range spec.Usage {
		s.Usage[k] = v * f
	}
	if len(spec.LogicUsage) > 0 {
		s.LogicUsage = map[string]float64{}
		for k, v := range spec.LogicUsage {
			s.LogicUsage[k] = v * f
		}
	}
	return s
}

// TestRestampBitIdenticalToFullBuild is the two-phase pipeline's hard
// contract: for each paper design, a model minted from a frozen Topology
// (and then restamped to a value-only variant) is bitwise indistinguishable
// from a from-scratch rmesh.Build — matrix values, ties, links, and the solved
// node voltages at both serial and parallel kernel widths.
func TestRestampBitIdenticalToFullBuild(t *testing.T) {
	benches, err := bench3d.All()
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range benches {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			t.Parallel()
			spec := b.Spec.Clone()
			spec.MeshPitch = 0.5
			full, err := rmesh.Build(spec)
			if err != nil {
				t.Fatal(err)
			}
			topo, err := rmesh.BuildTopology(spec)
			if err != nil {
				t.Fatal(err)
			}
			re, err := topo.NewModel(spec)
			if err != nil {
				t.Fatal(err)
			}
			if re.Topology() != topo {
				t.Fatal("minted model does not reference its topology")
			}
			assertModelsIdentical(t, full, re)
			for _, workers := range []int{1, 8} {
				assertSolvesIdentical(t, full, re, b, workers)
			}

			// Value-only variant: restamp in place vs a fresh full build.
			scaled := scaleUsage(spec, 0.9)
			full2, err := rmesh.Build(scaled)
			if err != nil {
				t.Fatal(err)
			}
			if err := re.Restamp(scaled); err != nil {
				t.Fatal(err)
			}
			assertModelsIdentical(t, full2, re)
			for _, workers := range []int{1, 8} {
				assertSolvesIdentical(t, full2, re, b, workers)
			}
		})
	}
}

// TestRestampReusesMatrixMemory guards the value-sweep cost model: a
// restamp must rewrite the preallocated CSR in place, never allocate a
// fresh matrix, and stay under a small fixed allocation budget (key
// strings and the stamp-recorder header — nothing proportional to nnz).
func TestRestampReusesMatrixMemory(t *testing.T) {
	spec := coarseOffChip(t)
	topo, err := rmesh.BuildTopology(spec)
	if err != nil {
		t.Fatal(err)
	}
	m, err := topo.NewModel(spec)
	if err != nil {
		t.Fatal(err)
	}
	matrix := m.Matrix
	val := &m.Matrix.Val[0]
	ties := &m.Ties[0]
	scaled := scaleUsage(spec, 0.9)
	specs := [2]*pdn.Spec{spec, scaled}
	i := 0
	allocs := testing.AllocsPerRun(20, func() {
		i++
		if err := m.Restamp(specs[i%2]); err != nil {
			t.Fatal(err)
		}
	})
	if m.Matrix != matrix {
		t.Error("Restamp replaced the matrix")
	}
	if &m.Matrix.Val[0] != val {
		t.Error("Restamp reallocated the CSR value array")
	}
	if &m.Ties[0] != ties {
		t.Error("Restamp reallocated the tie slice")
	}
	// A fresh matrix would cost O(nnz) allocations worth of floats; the
	// observed steady-state cost is ~60 small allocations (topology-key
	// strings). 200 leaves slack without letting a matrix copy through.
	if allocs > 200 {
		t.Errorf("Restamp allocs/op = %.0f, want <= 200 (no matrix-sized allocations)", allocs)
	}
	t.Logf("Restamp allocs/op = %.0f", allocs)
}

// TestRestampRejectsShapeChange: a spec whose topology key differs (here a
// different TSV count) must be refused by both Restamp and NewModel.
func TestRestampRejectsShapeChange(t *testing.T) {
	spec := coarseOffChip(t)
	topo, err := rmesh.BuildTopology(spec)
	if err != nil {
		t.Fatal(err)
	}
	m, err := topo.NewModel(spec)
	if err != nil {
		t.Fatal(err)
	}
	other := spec.Clone()
	other.TSVCount = 64
	if err := m.Restamp(other); err == nil {
		t.Error("Restamp accepted a TSV-count change")
	}
	if _, err := topo.NewModel(other); err == nil {
		t.Error("NewModel accepted a TSV-count change")
	}
	// The model must still be usable with its original values.
	if err := m.Restamp(spec); err != nil {
		t.Fatalf("model unusable after rejected restamp: %v", err)
	}
}

// TestBuildModelHasTopology: the one-shot rmesh.Build path also carries its
// frozen topology, so callers can upgrade to the two-phase API lazily.
func TestBuildModelHasTopology(t *testing.T) {
	spec := coarseOffChip(t)
	m, err := rmesh.Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	topo := m.Topology()
	if topo == nil {
		t.Fatal("rmesh.Build returned a model without a topology")
	}
	if topo.N() != m.N() {
		t.Errorf("topology N = %d, model N = %d", topo.N(), m.N())
	}
	if topo.NNZ() != len(m.Matrix.Val) {
		t.Errorf("topology NNZ = %d, matrix nnz = %d", topo.NNZ(), len(m.Matrix.Val))
	}
}
