package rmesh

import (
	"testing"

	"pdn3d/internal/pdn"
)

// sweepSpecs returns the value-only sweep the co-optimizer runs: points
// usage magnitudes over a fixed mesh shape.
func sweepSpecs(base *pdn.Spec, points int) []*pdn.Spec {
	out := make([]*pdn.Spec, points)
	for i := range out {
		s := base.Clone()
		f := 0.5 + float64(i)/float64(points)
		s.Usage = map[string]float64{}
		for k, v := range base.Usage {
			s.Usage[k] = v * f
		}
		out[i] = s
	}
	return out
}

func benchSpec(b *testing.B) *pdn.Spec {
	s := offChipSpec(b)
	s.MeshPitch = 0.3 // ~paper-adjacent fidelity without benchmark-length builds
	return s
}

// BenchmarkValueSweepFullBuild is the one-phase baseline: every sweep
// point pays geometry, symbolic sort, and numeric stamp.
func BenchmarkValueSweepFullBuild(b *testing.B) {
	specs := sweepSpecs(benchSpec(b), 50)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, s := range specs {
			if _, err := Build(s); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkValueSweepRestamp is the two-phase pipeline on the same sweep:
// the topology freezes once, every point restamps values in place. The
// acceptance bar for this PR is >= 2x over BenchmarkValueSweepFullBuild.
func BenchmarkValueSweepRestamp(b *testing.B) {
	specs := sweepSpecs(benchSpec(b), 50)
	topo, err := BuildTopology(specs[0])
	if err != nil {
		b.Fatal(err)
	}
	m, err := topo.NewModel(specs[0])
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, s := range specs {
			if err := m.Restamp(s); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkRestamp is the single-point restamp cost — the CI allocation
// guard runs this with -benchmem and fails if allocs/op grows past the
// small fixed budget (a matrix reallocation would blow it by orders of
// magnitude).
func BenchmarkRestamp(b *testing.B) {
	spec := benchSpec(b)
	scaled := sweepSpecs(spec, 2)
	topo, err := BuildTopology(spec)
	if err != nil {
		b.Fatal(err)
	}
	m, err := topo.NewModel(spec)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.Restamp(scaled[i%2]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBuildTopology is the one-time cost the restamp path amortizes.
func BenchmarkBuildTopology(b *testing.B) {
	spec := benchSpec(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BuildTopology(spec); err != nil {
			b.Fatal(err)
		}
	}
}
