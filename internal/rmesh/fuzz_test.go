package rmesh_test

import (
	"math"
	"testing"

	"pdn3d/internal/bench3d"
	"pdn3d/internal/rmesh"
	"pdn3d/internal/solve"
)

// The fuzz targets below exercise two physics invariants of the nodal
// model across perturbed versions of the four paper designs (ddr3-off,
// ddr3-on, wideio, hmc), which seed the corpus. `go test` runs the seed
// corpus only; `go test -fuzz` explores further.

// paperDesign returns a fresh copy of one of the four paper benchmarks
// at the coarse test pitch; the index wraps so any fuzzed byte maps to
// a design.
func paperDesign(t testing.TB, idx uint8) *bench3d.Benchmark {
	t.Helper()
	all, err := bench3d.All()
	if err != nil {
		t.Fatal(err)
	}
	b := all[int(idx)%len(all)]
	b.Spec.MeshPitch = 0.5
	return b
}

func scaledUsage(u map[string]float64, s float64) map[string]float64 {
	out := make(map[string]float64, len(u))
	for k, v := range u {
		out[k] = v * s
	}
	return out
}

// solveDesign builds the design's mesh with PDN metal usage scaled by
// usageScale, activates nBanks banks on the top DRAM die at the given
// I/O activity, and solves. It returns the model, the IR-drop field,
// and the total injected load power in mW. Configurations the spec
// validation rejects (e.g. scaled metal usage above 100 %) skip.
func solveDesign(t *testing.T, b *bench3d.Benchmark, usageScale, io float64, nBanks int) (*rmesh.Model, []float64, float64) {
	t.Helper()
	spec := b.Spec
	spec.Usage = scaledUsage(spec.Usage, usageScale)
	if spec.OnLogic {
		spec.LogicUsage = scaledUsage(spec.LogicUsage, usageScale)
	}
	m, err := rmesh.Build(spec)
	if err != nil {
		t.Skipf("unbuildable fuzz config: %v", err)
	}
	rhs := m.BaseRHS()
	var wantP float64
	for d := 0; d < spec.NumDRAM; d++ {
		var active []int
		if d == spec.NumDRAM-1 {
			for i := 0; i < nBanks; i++ {
				active = append(active, i)
			}
		}
		loads, err := b.DRAMPower.Loads(spec.DRAM, active, io)
		if err != nil {
			t.Skipf("no load placement for fuzz config: %v", err)
		}
		for _, l := range loads {
			wantP += l.P
		}
		if err := m.AddDRAMLoads(rhs, d, loads); err != nil {
			t.Fatal(err)
		}
	}
	if spec.OnLogic && b.LogicPower != nil {
		loads, err := b.LogicPower.Loads(spec.Logic)
		if err != nil {
			t.Fatal(err)
		}
		for _, l := range loads {
			wantP += l.P
		}
		if err := m.AddLogicLoads(rhs, loads); err != nil {
			t.Fatal(err)
		}
	}
	v, _, err := m.Solve(rhs, solve.Options{CGOptions: solve.CGOptions{Tol: 1e-10, MaxIter: 60000}})
	if err != nil {
		t.Fatalf("solve: %v", err)
	}
	return m, m.IRDrop(v), wantP
}

// FuzzKirchhoffConservation checks Kirchhoff's current law at the
// supply boundary: the current entering through the tie conductances
// (sum of G*(VDD - v) over ties) must equal the total injected load
// current, for any design, metal scaling, activity, and bank count.
func FuzzKirchhoffConservation(f *testing.F) {
	for i := 0; i < 4; i++ {
		f.Add(uint8(i), 1.0, 1.0, uint8(2))
	}
	f.Fuzz(func(t *testing.T, design uint8, usageScale, io float64, nBanks uint8) {
		if math.IsNaN(usageScale) || usageScale < 0.25 || usageScale > 4 {
			t.Skip("usage scale outside the physical range")
		}
		if math.IsNaN(io) || io < 0.1 || io > 1 {
			t.Skip("I/O activity outside [0.1, 1]")
		}
		b := paperDesign(t, design)
		m, ir, wantP := solveDesign(t, b, usageScale, io, int(nBanks%4))
		var tieI float64
		for _, tie := range m.Ties {
			tieI += tie.G * ir[tie.Node]
		}
		wantI := wantP / 1000 / m.VDD // mW -> A
		if wantI <= 0 {
			t.Fatalf("no load current injected (total power %.3f mW)", wantP)
		}
		if math.Abs(tieI-wantI) > wantI*1e-3 {
			t.Errorf("%s x%.2f: tie current %.6f A, loads draw %.6f A (conservation violated)",
				b.Name, usageScale, tieI, wantI)
		}
	})
}

// FuzzMaxIRMonotoneInSheetResistance checks that raising the PDN sheet
// resistance never lowers the worst IR drop. Sheet resistance scales as
// 1/usage, so the mesh at usage*1.5 (lower sheet R) must be at least as
// good as the mesh at usage (higher sheet R), for every design.
func FuzzMaxIRMonotoneInSheetResistance(f *testing.F) {
	for i := 0; i < 4; i++ {
		f.Add(uint8(i), 1.0)
	}
	f.Fuzz(func(t *testing.T, design uint8, usageScale float64) {
		if math.IsNaN(usageScale) || usageScale < 0.3 || usageScale > 2 {
			t.Skip("usage scale outside the physical range")
		}
		mx := func(scale float64) float64 {
			b := paperDesign(t, design)
			_, ir, _ := solveDesign(t, b, scale, 1.0, 2)
			var m float64
			for _, v := range ir {
				if v > m {
					m = v
				}
			}
			return m
		}
		highR := mx(usageScale)      // thinner metal, higher sheet resistance
		lowR := mx(usageScale * 1.5) // thicker metal, lower sheet resistance
		if lowR > highR*(1+1e-9) {
			t.Errorf("design %d: lowering sheet resistance raised max IR: %.4f -> %.4f mV",
				design%4, highR*1000, lowR*1000)
		}
	})
}
