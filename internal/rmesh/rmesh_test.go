package rmesh

import (
	"math"
	"testing"

	"pdn3d/internal/floorplan"
	"pdn3d/internal/memstate"
	"pdn3d/internal/pdn"
	"pdn3d/internal/powermap"
	"pdn3d/internal/solve"
	"pdn3d/internal/tech"
)

func offChipSpec(t testing.TB) *pdn.Spec {
	t.Helper()
	fp, err := floorplan.DDR3Die(floorplan.DefaultDDR3())
	if err != nil {
		t.Fatal(err)
	}
	return &pdn.Spec{
		Name:     "ddr3-off",
		NumDRAM:  4,
		DRAM:     fp,
		DRAMTech: tech.DRAM20(1.5),
		Usage:    map[string]float64{"M2": 0.10, "M3": 0.20},
		Bonding:  pdn.F2B,
		TSVStyle: pdn.EdgeTSV,
		TSVCount: 33,
	}
}

func onChipSpec(t testing.TB) *pdn.Spec {
	t.Helper()
	s := offChipSpec(t)
	lf, err := floorplan.T2Die(floorplan.DefaultT2())
	if err != nil {
		t.Fatal(err)
	}
	s.Name = "ddr3-on"
	s.OnLogic = true
	s.Logic = lf
	s.LogicTech = tech.Logic28(1.5)
	s.LogicUsage = map[string]float64{"M1": 0.10, "M6": 0.30}
	return s
}

// solveState builds the model, loads the given state at the given I/O
// activity (plus optional logic power), solves, and returns IR drops.
func solveState(t testing.TB, spec *pdn.Spec, state memstate.State, io float64, logicPower float64) (*Model, []float64) {
	t.Helper()
	m, err := Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	rhs := m.BaseRHS()
	pm := powermap.StackedDDR3Power()
	for d := 0; d < spec.NumDRAM; d++ {
		var banks []int
		if d < len(state.Dies) {
			banks = state.Dies[d]
		}
		loads, err := pm.Loads(spec.DRAM, banks, io)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.AddDRAMLoads(rhs, d, loads); err != nil {
			t.Fatal(err)
		}
	}
	if spec.OnLogic && logicPower > 0 {
		lm := powermap.T2Power(logicPower)
		loads, err := lm.Loads(spec.Logic)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.AddLogicLoads(rhs, loads); err != nil {
			t.Fatal(err)
		}
	}
	v, _, err := m.Solve(rhs, solve.Options{CGOptions: solve.CGOptions{Tol: 1e-9, MaxIter: 40000}})
	if err != nil {
		t.Fatal(err)
	}
	return m, m.IRDrop(v)
}

func defaultState(t testing.TB) memstate.State {
	t.Helper()
	s, err := memstate.FromCounts([]int{0, 0, 0, 2}, memstate.WorstCaseEdge(8))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestBuildOffChip(t *testing.T) {
	m, err := Build(offChipSpec(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Layers) != 8 {
		t.Errorf("layers = %d, want 8 (2 per die x 4 dies)", len(m.Layers))
	}
	if m.N() < 1000 {
		t.Errorf("suspiciously small mesh: %d nodes", m.N())
	}
	if !m.Matrix.IsSymmetric(1e-12) {
		t.Error("conductance matrix must be symmetric")
	}
	if len(m.Ties) != 33 {
		t.Errorf("ties = %d, want 33 (one per landing)", len(m.Ties))
	}
}

func TestOffChipBaselineIRMagnitude(t *testing.T) {
	_, ir := solveState(t, offChipSpec(t), defaultState(t), 1.0, 0)
	var mx float64
	for _, v := range ir {
		if v > mx {
			mx = v
		}
	}
	// Calibration target: paper's off-chip baseline is 30.03 mV. Before
	// final calibration, just require the right order of magnitude and
	// positivity.
	if mx <= 0.001 || mx > 0.5 {
		t.Errorf("max IR = %.4f V, expected tens of millivolts", mx)
	}
	t.Logf("off-chip baseline max IR = %.2f mV", mx*1000)
	for i, v := range ir {
		if v < -1e-6 {
			t.Fatalf("negative IR drop %g at node %d", v, i)
		}
	}
}

func TestCurrentConservation(t *testing.T) {
	// Total current through ties equals total load current.
	spec := offChipSpec(t)
	m, ir := solveState(t, spec, defaultState(t), 1.0, 0)
	var tieI float64
	for _, tie := range m.Ties {
		tieI += tie.G * (m.VDD - (m.VDD - ir[tie.Node])) // g * (VDD - v)
	}
	pm := powermap.StackedDDR3Power()
	wantP := pm.DiePower(2, 1.0) + 3*pm.DiePower(0, 1.0)
	wantI := wantP / 1000 / m.VDD // mW -> A
	if math.Abs(tieI-wantI) > wantI*1e-3 {
		t.Errorf("tie current %.4f A, want %.4f A", tieI, wantI)
	}
}

func TestTopDieWorseThanBottomDie(t *testing.T) {
	spec := offChipSpec(t)
	top, _ := memstate.FromCounts([]int{0, 0, 0, 2}, memstate.WorstCaseEdge(8))
	bot, _ := memstate.FromCounts([]int{2, 0, 0, 0}, memstate.WorstCaseEdge(8))
	m1, ir1 := solveState(t, spec, top, 1.0, 0)
	m2, ir2 := solveState(t, spec, bot, 1.0, 0)
	irTop := m1.DieMaxIR(ir1, 3)
	irBot := m2.DieMaxIR(ir2, 0)
	if irTop <= irBot {
		t.Errorf("top-die activity IR %.2f mV should exceed bottom-die %.2f mV (longer TSV path)",
			irTop*1000, irBot*1000)
	}
	t.Logf("0-0-0-2: %.2f mV, 2-0-0-0: %.2f mV", irTop*1000, irBot*1000)
}

func TestOnChipCouplingRaisesIR(t *testing.T) {
	off := offChipSpec(t)
	_, irOff := solveState(t, off, defaultState(t), 1.0, 0)
	on := onChipSpec(t)
	mOn, irOn := solveState(t, on, defaultState(t), 1.0, 9000)
	var maxOff float64
	for _, v := range irOff {
		if v > maxOff {
			maxOff = v
		}
	}
	var maxOnDRAM float64
	for d := 0; d < 4; d++ {
		if v := mOn.DieMaxIR(irOn, d); v > maxOnDRAM {
			maxOnDRAM = v
		}
	}
	if maxOnDRAM <= maxOff {
		t.Errorf("on-chip DRAM IR %.2f mV should exceed off-chip %.2f mV (logic coupling)",
			maxOnDRAM*1000, maxOff*1000)
	}
	logicIR := mOn.DieMaxIR(irOn, DieLogic)
	t.Logf("off: %.2f mV, on: %.2f mV, logic: %.2f mV", maxOff*1000, maxOnDRAM*1000, logicIR*1000)
}

func TestMoreMetalReducesIR(t *testing.T) {
	base := offChipSpec(t)
	_, ir1 := solveState(t, base, defaultState(t), 1.0, 0)
	dbl := offChipSpec(t)
	dbl.Usage = map[string]float64{"M2": 0.20, "M3": 0.40}
	_, ir2 := solveState(t, dbl, defaultState(t), 1.0, 0)
	mx := func(ir []float64) (m float64) {
		for _, v := range ir {
			if v > m {
				m = v
			}
		}
		return
	}
	m1, m2 := mx(ir1), mx(ir2)
	if m2 >= m1 {
		t.Fatalf("2x metal usage should lower IR: %.2f -> %.2f mV", m1*1000, m2*1000)
	}
	red := (m1 - m2) / m1
	t.Logf("2x PDN metal: %.2f -> %.2f mV (-%.1f%%), paper reports >40%%", m1*1000, m2*1000, red*100)
}
