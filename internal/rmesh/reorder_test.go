package rmesh_test

import (
	"math"
	"sync"
	"testing"

	"pdn3d/internal/bench3d"
	"pdn3d/internal/rmesh"
	"pdn3d/internal/solve"
)

// TestReorderedSolveMatchesUnpermuted locks the RCM correctness contract
// on all four paper designs: solving the symmetrically permuted system
// and inverse-permuting the solution must reproduce the unpermuted
// solution — exactly (≤1e-12) under the dense direct method, and within
// the shared CG tolerance budget for the iterative reordered path
// (cg-amg) versus the unreordered production solver (cg-ic0). The cg-amg
// path must also be bit-identical across worker counts.
func TestReorderedSolveMatchesUnpermuted(t *testing.T) {
	bs, err := bench3d.All()
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range bs {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			spec := b.Spec.Clone()
			// Coarse pitch keeps the dense factorizations small: past
			// ~1500 nodes their ordering-dependent roundoff alone exceeds
			// the 1e-12 gate, which would test O(n³) float noise, not the
			// permutation.
			spec.MeshPitch = 1.0
			m, err := rmesh.Build(spec)
			if err != nil {
				t.Fatal(err)
			}
			rhs := loadedRHS(t, m, b)
			perm := m.Topology().Perm()
			if len(perm) != m.N() {
				t.Fatalf("perm length %d != n %d", len(perm), m.N())
			}

			// Direct half: dense Cholesky on A and on PᵀAP must agree to
			// 1e-12 after inverse permutation.
			if m.N() <= 1500 {
				pa := m.Matrix.Permute(perm)
				sA, err := solve.New(m.Matrix, solve.Options{Method: solve.MethodCholesky})
				if err != nil {
					t.Fatal(err)
				}
				want, _, err := sA.Solve(rhs, solve.CGOptions{})
				if err != nil {
					t.Fatal(err)
				}
				sP, err := solve.New(pa, solve.Options{Method: solve.MethodCholesky})
				if err != nil {
					t.Fatal(err)
				}
				got, _, err := solve.Reordered(sP, perm).Solve(rhs, solve.CGOptions{})
				if err != nil {
					t.Fatal(err)
				}
				for i := range want {
					if d := math.Abs(got[i] - want[i]); d > 1e-12*(1+math.Abs(want[i])) {
						t.Fatalf("cholesky: x[%d] = %g vs unpermuted %g (diff %g)", i, got[i], want[i], d)
					}
				}
			}

			// Iterative half: the model's cg-amg path (reordered inside)
			// versus the unreordered cg-ic0 production solver, both at the
			// same tolerance.
			tol := 1e-12
			ref, refSt, err := m.Solve(rhs, solve.Options{
				Method: solve.MethodCGIC0, CGOptions: solve.CGOptions{Tol: tol}})
			if err != nil {
				t.Fatal(err)
			}
			if !refSt.Converged {
				t.Fatal("cg-ic0 did not converge")
			}
			x1, st1, err := m.Solve(rhs, solve.Options{
				Method: solve.MethodCGAMG, Workers: 1, CGOptions: solve.CGOptions{Tol: tol}})
			if err != nil {
				t.Fatal(err)
			}
			if !st1.Converged || st1.Precond != "amg" {
				t.Fatalf("cg-amg stats = %+v", st1)
			}
			for i := range ref {
				if d := math.Abs(x1[i] - ref[i]); d > 1e-7*(1+math.Abs(ref[i])) {
					t.Fatalf("cg-amg x[%d] = %g vs cg-ic0 %g (diff %g)", i, x1[i], ref[i], d)
				}
			}

			// Worker-count determinism of the reordered path.
			x8, st8, err := m.Solve(rhs, solve.Options{
				Method: solve.MethodCGAMG, Workers: 8, CGOptions: solve.CGOptions{Tol: tol}})
			if err != nil {
				t.Fatal(err)
			}
			if st1 != st8 {
				t.Fatalf("cg-amg stats differ across workers: %+v vs %+v", st1, st8)
			}
			for i := range x1 {
				if math.Float64bits(x1[i]) != math.Float64bits(x8[i]) {
					t.Fatalf("cg-amg x[%d] differs across worker counts (must be bit-identical)", i)
				}
			}
		})
	}
}

// The reordered matrix is materialized lazily on first use; concurrent
// first solves must race neither on the materialization nor on results
// (run under -race to check the lock).
func TestReorderedMatrixConcurrentFirstUse(t *testing.T) {
	b, err := bench3d.StackedDDR3Off()
	if err != nil {
		t.Fatal(err)
	}
	spec := b.Spec.Clone()
	spec.MeshPitch = 0.8
	m, err := rmesh.Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	rhs := loadedRHS(t, m, b)
	const G = 8
	results := make([][]float64, G)
	var wg sync.WaitGroup
	for g := 0; g < G; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			x, _, err := m.Solve(rhs, solve.Options{
				// Distinct worker counts force distinct solver-cache
				// entries, so several goroutines hit reorderedMatrix at
				// once instead of coalescing on one cache key.
				Method: solve.MethodCGAMG, Workers: 1 + g%3,
				CGOptions: solve.CGOptions{Tol: 1e-11}})
			if err != nil {
				t.Error(err)
				return
			}
			results[g] = x
		}()
	}
	wg.Wait()
	for g := 1; g < G; g++ {
		if results[g] == nil || results[0] == nil {
			t.Fatal("missing result")
		}
		for i := range results[0] {
			if math.Float64bits(results[g][i]) != math.Float64bits(results[0][i]) {
				t.Fatalf("goroutine %d: x[%d] differs", g, i)
			}
		}
	}
}

// A restamp must refresh the reordered matrix too: after changing metal
// usage, a cg-amg solve must match a from-scratch build of the new spec.
func TestRestampRefreshesReorderedMatrix(t *testing.T) {
	b, err := bench3d.StackedDDR3Off()
	if err != nil {
		t.Fatal(err)
	}
	spec := b.Spec.Clone()
	spec.MeshPitch = 0.8
	m, err := rmesh.Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	rhs := loadedRHS(t, m, b)
	// Materialize the reordered matrix on the original values.
	if _, _, err := m.Solve(rhs, solve.Options{Method: solve.MethodCGAMG, CGOptions: solve.CGOptions{Tol: 1e-11}}); err != nil {
		t.Fatal(err)
	}

	spec2 := spec.Clone()
	for k, v := range spec2.Usage {
		spec2.Usage[k] = v * 0.7
	}
	if err := m.Restamp(spec2); err != nil {
		t.Fatal(err)
	}
	fresh, err := rmesh.Build(spec2)
	if err != nil {
		t.Fatal(err)
	}
	rhs2 := loadedRHS(t, m, b)
	want, _, err := fresh.Solve(rhs2, solve.Options{Method: solve.MethodCGAMG, CGOptions: solve.CGOptions{Tol: 1e-11}})
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := m.Solve(rhs2, solve.Options{Method: solve.MethodCGAMG, CGOptions: solve.CGOptions{Tol: 1e-11}})
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("restamped cg-amg x[%d] = %g vs fresh build %g (restamp must be bit-identical)", i, got[i], want[i])
		}
	}
}

// Keep the bandwidth payoff visible on every design: the frozen
// topology's permutation must strictly reduce matrix bandwidth.
func TestPermutationReducesBandwidthOnDesigns(t *testing.T) {
	bs, err := bench3d.All()
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range bs {
		spec := b.Spec.Clone()
		spec.MeshPitch = 0.8
		m, err := rmesh.Build(spec)
		if err != nil {
			t.Fatal(err)
		}
		perm := m.Topology().Perm()
		pm := m.Matrix.Permute(perm)
		if got, was := pm.Bandwidth(), m.Matrix.Bandwidth(); got >= was {
			t.Errorf("%s: RCM bandwidth %d not below natural %d", b.Name, got, was)
		}
	}
}
