package rmesh_test

import (
	"fmt"
	"log"

	"pdn3d/internal/floorplan"
	"pdn3d/internal/pdn"
	"pdn3d/internal/rmesh"
	"pdn3d/internal/tech"
)

// A value-only design sweep freezes the mesh shape once and restamps
// conductances per point: BuildTopology pays the geometry and symbolic
// work, NewModel mints a solvable model, and Restamp rewrites the matrix
// values in place for each spec that shares the topology key.
func ExampleModel_Restamp() {
	fp, err := floorplan.DDR3Die(floorplan.DefaultDDR3())
	if err != nil {
		log.Fatal(err)
	}
	spec := &pdn.Spec{
		Name:      "example",
		NumDRAM:   4,
		DRAM:      fp,
		DRAMTech:  tech.DRAM20(1.5),
		Usage:     map[string]float64{"M2": 0.10, "M3": 0.20},
		Bonding:   pdn.F2B,
		TSVStyle:  pdn.EdgeTSV,
		TSVCount:  33,
		MeshPitch: 1.0,
	}

	topo, err := rmesh.BuildTopology(spec)
	if err != nil {
		log.Fatal(err)
	}
	m, err := topo.NewModel(spec)
	if err != nil {
		log.Fatal(err)
	}
	before := m.Matrix.Val[0]

	// Sweep point: same layers and TSVs, doubled metal usage. The shape is
	// unchanged, so the frozen pattern is reused and no matrix is allocated.
	point := spec.Clone()
	point.Usage = map[string]float64{"M2": 0.20, "M3": 0.40}
	if err := m.Restamp(point); err != nil {
		log.Fatal(err)
	}

	fmt.Println("same topology:", m.Topology() == topo)
	fmt.Println("nodes unchanged:", m.N() == topo.N())
	fmt.Println("conductances restamped:", m.Matrix.Val[0] > before)
	// Output:
	// same topology: true
	// nodes unchanged: true
	// conductances restamped: true
}
