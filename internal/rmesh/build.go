package rmesh

import (
	"fmt"
	"sync"

	"pdn3d/internal/geom"
	"pdn3d/internal/obs"
	"pdn3d/internal/par"
	"pdn3d/internal/pdn"
	"pdn3d/internal/solve"
	"pdn3d/internal/sparse"
	"pdn3d/internal/speckey"
	"pdn3d/internal/tech"
)

// Model is the assembled R-Mesh of one design: the conductance matrix with
// the ideal-supply node folded in, plus the bookkeeping to attach loads and
// interpret the solution.
type Model struct {
	// Spec is the design the mesh was built from.
	Spec *pdn.Spec
	// Layers lists all mesh layers in assembly order.
	Layers []*Layer
	// Matrix is the folded conductance matrix (SPD).
	Matrix *sparse.CSR
	// VDD is the supply voltage.
	VDD float64
	// Ties lists every connection to the ideal supply (node, conductance).
	Ties []Tie
	// Links lists the named vertical/packaging branches (TSVs, B2B
	// connections, landings, bond wires) for current-crowding analysis.
	Links []Link
	// Resistors counts the stamped two-terminal resistors (diagnostics;
	// the paper quotes R-Mesh resistor-count reduction vs. extraction).
	Resistors int

	n         int
	byKey     map[string]*Layer
	dramLoad  []*Layer // load layer per DRAM die
	logicLoad *Layer   // nil when off-chip

	// topo is the frozen shape the model was built over; Restamp rewrites
	// Matrix.Val through its pattern. Every model carries one.
	topo *Topology
	// stampBuf is the reusable raw stamp stream (one value per stamp in
	// stamping order); Restamp refills it in place.
	stampBuf []float64

	// permMatrix is the RCM-reordered matrix, materialized lazily on the
	// first reordering-aware solve (cg-amg) and kept in sync by restamp.
	// permMu serializes the first materialization across goroutines.
	permMatrix *sparse.CSR
	permMu     sync.Mutex

	// solvers caches one Solver per (method, workers) so per-matrix setup
	// (IC(0) or dense factorization) happens exactly once per model, even
	// when many goroutines request it concurrently. Restamp resets it: the
	// cached factorizations describe the previous values.
	solvers par.Group[solve.Solver]

	// obs, when non-nil, receives mesh and solver metrics (see BuildObs).
	obs *obs.Registry
}

// Tie is a conductance from a mesh node to the ideal package supply.
type Tie struct {
	Node int
	G    float64
}

// LinkKind classifies a named branch for current-crowding analysis
// (the paper's §3.2 and its current-crowding reference model TSV-level
// current imbalance).
type LinkKind uint8

const (
	// LinkTSV is a PG TSV between stacked dies (F2B interfaces).
	LinkTSV LinkKind = iota
	// LinkB2B is a back-to-back connection between F2F pairs.
	LinkB2B
	// LinkLanding is a supply-entry branch at the stack bottom
	// (package ball or logic-die link, including dedicated TSVs).
	LinkLanding
	// LinkWire is a backside bond wire.
	LinkWire
	// LinkRDL is an RDL attachment branch.
	LinkRDL
)

func (k LinkKind) String() string {
	switch k {
	case LinkTSV:
		return "TSV"
	case LinkB2B:
		return "B2B"
	case LinkLanding:
		return "landing"
	case LinkWire:
		return "wire"
	case LinkRDL:
		return "RDL"
	default:
		return "link"
	}
}

// Link is one named branch. N2 < 0 marks a branch to the ideal supply.
type Link struct {
	Kind LinkKind
	N1   int
	N2   int
	G    float64
}

// Current returns the branch's DC current in amps given the node voltage
// vector (the ideal-supply side sits at VDD).
func (l Link) Current(v []float64, vdd float64) float64 {
	v2 := vdd
	if l.N2 >= 0 {
		v2 = v[l.N2]
	}
	d := v[l.N1] - v2
	if d < 0 {
		d = -d
	}
	return l.G * d
}

// stitchFrac is the fraction of a layer's conductance granted orthogonal to
// its preferred routing direction (strap stitching and PG ring fingers).
const stitchFrac = 0.04

// ringWidth is the solid-metal PG ring width at the die boundary in mm.
const ringWidth = 0.10

// misalignSpreadW is the effective current-spreading width (mm) of the
// lateral detour a misaligned TSV's current takes through the logic die's
// local metal to the nearest C4 (paper §3.2).
const misalignSpreadW = 1.1

// N returns the node count.
func (m *Model) N() int { return m.n }

// Layer returns the layer with the given key.
func (m *Model) Layer(key string) (*Layer, bool) {
	l, ok := m.byKey[key]
	return l, ok
}

// DRAMLoadLayer returns the load layer of DRAM die d (0-based from the
// stack bottom).
func (m *Model) DRAMLoadLayer(d int) (*Layer, error) {
	if d < 0 || d >= len(m.dramLoad) {
		return nil, fmt.Errorf("rmesh: die %d out of range (%d dies)", d, len(m.dramLoad))
	}
	return m.dramLoad[d], nil
}

// LogicLoadLayer returns the logic die's load layer, or nil off-chip.
func (m *Model) LogicLoadLayer() *Layer { return m.logicLoad }

// nodeBounds is the fixed bucket layout for per-model node counts,
// spanning smoke-pitch meshes through full-fidelity stacks.
var nodeBounds = []float64{1e3, 3e3, 1e4, 3e4, 1e5, 3e5, 1e6}

// Build assembles the R-Mesh for the given design.
func Build(spec *pdn.Spec) (*Model, error) { return BuildObs(spec, nil) }

// BuildObs is Build with instrumentation: build and stamp phase timing,
// model/node/resistor counts under "rmesh.*", and solver-cache hit/miss
// counters on the model's per-matrix solver cache. A nil registry
// disables instrumentation; the mesh built is identical either way.
func BuildObs(spec *pdn.Spec, reg *obs.Registry) (*Model, error) {
	_, m, err := buildBoth(spec, reg)
	return m, err
}

// buildBoth runs the full two-phase build in one pass: geometry (layer
// grids and node numbering), the symbolic freeze (CSR pattern), and the
// numeric stamp (conductance values), returning the frozen Topology and
// the first Model over it. Compress and Freeze+Scatter merge duplicate
// stamps in the same order, so the matrix is bit-identical to what the
// one-shot pre-split Build produced.
func buildBoth(spec *pdn.Spec, reg *obs.Registry) (*Topology, *Model, error) {
	defer reg.Timer("rmesh.build_time").Start()()
	if err := spec.Validate(); err != nil {
		return nil, nil, err
	}
	m := &Model{
		Spec:  spec,
		VDD:   spec.DRAMTech.VDD,
		byKey: map[string]*Layer{},
		obs:   reg,
	}
	m.solvers.Hits = reg.Counter("rmesh.solver_cache.hits")
	m.solvers.Misses = reg.Counter("rmesh.solver_cache.misses")
	pitch := spec.EffMeshPitch()

	addLayer := func(key string, die int, name string, outline geom.Rect, dir tech.Direction, rEff float64, isLoad bool) (*Layer, error) {
		grid, err := geom.NewGrid(outline, pitch)
		if err != nil {
			return nil, fmt.Errorf("rmesh: layer %s: %w", key, err)
		}
		l := &Layer{
			Key: key, Die: die, Name: name, Grid: grid,
			Offset: m.n, Dir: dir, REff: rEff, IsLoad: isLoad,
		}
		m.n += grid.N()
		m.Layers = append(m.Layers, l)
		m.byKey[key] = l
		return l, nil
	}

	// --- Logic die layers ---
	if spec.OnLogic {
		for i, name := range orderedLayers(spec.LogicTech) {
			u := spec.LogicUsage[name]
			if u == 0 {
				continue
			}
			ml, err := spec.LogicTech.Layer(name)
			if err != nil {
				return nil, nil, err
			}
			l, err := addLayer("logic/"+name, DieLogic, name, spec.Logic.Outline, ml.Dir, ml.SheetR/u, i == 0)
			if err != nil {
				return nil, nil, err
			}
			if i == 0 {
				m.logicLoad = l
			}
		}
		if m.logicLoad == nil {
			return nil, nil, fmt.Errorf("rmesh: logic die has no load layer")
		}
	}

	// --- Interface RDL ---
	if spec.RDL == pdn.RDLInterface {
		rdl := spec.DRAMTech.RDL
		if _, err := addLayer("rdl/if", DieInterfaceRDL, rdl.Name, spec.DRAM.Outline, rdl.Dir, rdl.SheetR/rdl.MaxUsage, false); err != nil {
			return nil, nil, err
		}
	}

	// --- DRAM dies ---
	m.dramLoad = make([]*Layer, spec.NumDRAM)
	for d := 0; d < spec.NumDRAM; d++ {
		for i, name := range orderedLayers(spec.DRAMTech) {
			u := spec.Usage[name]
			if u == 0 {
				continue
			}
			ml, err := spec.DRAMTech.Layer(name)
			if err != nil {
				return nil, nil, err
			}
			key := fmt.Sprintf("dram%d/%s", d, name)
			l, err := addLayer(key, d, name, spec.DRAM.Outline, ml.Dir, ml.SheetR/u, i == 0)
			if err != nil {
				return nil, nil, err
			}
			if i == 0 {
				m.dramLoad[d] = l
			}
		}
		if m.dramLoad[d] == nil {
			return nil, nil, fmt.Errorf("rmesh: DRAM die %d has no load layer", d)
		}
		if spec.RDL == pdn.RDLAll {
			rdl := spec.DRAMTech.RDL
			key := fmt.Sprintf("dram%d/RDL", d)
			if _, err := addLayer(key, d, rdl.Name, spec.DRAM.Outline, rdl.Dir, rdl.SheetR/rdl.MaxUsage, false); err != nil {
				return nil, nil, err
			}
		}
	}

	// --- Stamp everything ---
	stopStamp := reg.Timer("rmesh.stamp_time").Start()
	b := sparse.NewBuilder(m.n)
	for _, l := range m.Layers {
		m.stampLayer(b, l)
	}
	m.stampVias(b)
	if err := m.stampConnections(b); err != nil {
		stopStamp()
		return nil, nil, err
	}
	pat := b.Freeze()
	m.Matrix = pat.NewCSR()
	pat.Scatter(m.Matrix.Val, b.RawVals())
	stopStamp()
	reg.Counter("rmesh.builds").Add(1)
	reg.Counter("rmesh.nodes_total").Add(int64(m.n))
	reg.Counter("rmesh.resistors_total").Add(int64(m.Resistors))
	reg.Histogram("rmesh.nodes", nodeBounds).Observe(float64(m.n))

	// RCM reordering: computed at freeze time so every model over this
	// topology replays it for free. The permuted pattern shares the raw
	// stamp stream with the natural-order pattern, so restamps keep both
	// matrices in sync from one stream.
	stopPerm := reg.Timer("rmesh.reorder_time").Start()
	perm := pat.Permutation()
	permPat := pat.Permute(perm)
	stopPerm()

	t := &Topology{
		key:         speckey.Topology(spec),
		pattern:     pat,
		n:           m.n,
		stamps:      b.NNZStamps(),
		layers:      cloneLayers(m.Layers),
		logicLoad:   -1,
		perm:        perm,
		permPattern: permPat,
	}
	t.dramLoad = make([]int, len(m.dramLoad))
	for i := range m.Layers {
		for d, dl := range m.dramLoad {
			if m.Layers[i] == dl {
				t.dramLoad[d] = i
			}
		}
		if m.Layers[i] == m.logicLoad && m.logicLoad != nil {
			t.logicLoad = i
		}
	}
	m.topo = t
	m.stampBuf = b.RawVals()
	return t, m, nil
}

// orderedLayers returns the PDN layer names of a technology in stack order
// (bottom/device side first). The first returned layer is the load layer.
func orderedLayers(t *tech.Technology) []string {
	names := make([]string, len(t.Layers))
	for i, l := range t.Layers {
		names[i] = l.Name
	}
	return names
}

// stampLayer adds the intra-layer segment and PG-ring conductances.
func (m *Model) stampLayer(b stamper, l *Layer) {
	g := l.Grid
	sx, sy := g.StepX(), g.StepY()
	// Conductance of one segment along x: stripes of total width u*sy
	// per row pitch carry current over length sx. REff = sheetR/u, so
	// g = sy / (REff * sx).
	gAlongX := sy / (l.REff * sx)
	gAlongY := sx / (l.REff * sy)
	var gx, gy float64
	switch l.Dir {
	case tech.Horizontal:
		gx, gy = gAlongX, gAlongY*stitchFrac
	case tech.Vertical:
		gx, gy = gAlongX*stitchFrac, gAlongY
	default: // omni-directional RDL
		gx, gy = gAlongX, gAlongY
	}
	for j := 0; j < g.NY; j++ {
		for i := 0; i < g.NX; i++ {
			n := l.Node(i, j)
			if i+1 < g.NX {
				b.AddConductance(n, l.Node(i+1, j), gx)
				m.Resistors++
			}
			if j+1 < g.NY {
				b.AddConductance(n, l.Node(i, j+1), gy)
				m.Resistors++
			}
			if l.Dir == tech.OmniDirectional && i+1 < g.NX && j+1 < g.NY {
				// Non-Manhattan RDL routing: diagonal branches.
				diag := 1 / (l.REff * 1.41421356)
				b.AddConductance(n, l.Node(i+1, j+1), diag)
				b.AddConductance(l.Node(i+1, j), l.Node(i, j+1), diag)
				m.Resistors += 2
			}
		}
	}
	// PG ring: solid metal of ringWidth around the boundary, in parallel
	// with the boundary segments. REff*u restores the solid sheet R... the
	// ring is drawn in solid metal, so use sheetR = REff * usage; the
	// usage is unknown here, but REff already folds it in. Approximate the
	// ring with the layer's solid sheet resistance by scaling out a
	// nominal usage is overkill — stamp the ring with REff directly,
	// which under-promises the ring and keeps results conservative.
	gRingX := ringWidth / (l.REff * sx)
	gRingY := ringWidth / (l.REff * sy)
	for i := 0; i+1 < g.NX; i++ {
		b.AddConductance(l.Node(i, 0), l.Node(i+1, 0), gRingX)
		b.AddConductance(l.Node(i, g.NY-1), l.Node(i+1, g.NY-1), gRingX)
		m.Resistors += 2
	}
	for j := 0; j+1 < g.NY; j++ {
		b.AddConductance(l.Node(0, j), l.Node(0, j+1), gRingY)
		b.AddConductance(l.Node(g.NX-1, j), l.Node(g.NX-1, j+1), gRingY)
		m.Resistors += 2
	}
}

// stampVias connects the PDN layers of each die with via arrays at every
// grid node.
func (m *Model) stampVias(b stamper) {
	for i := 0; i+1 < len(m.Layers); i++ {
		lo, hi := m.Layers[i], m.Layers[i+1]
		if lo.Die != hi.Die || lo.Die == DieInterfaceRDL {
			continue
		}
		if hi.Name == m.rdlName() && lo.Die >= 0 {
			continue // die-to-backside-RDL coupling is via TSVs, not vias
		}
		viaR := m.viaRFor(lo.Die)
		g := 1 / viaR
		// Same outline and pitch, so grids are congruent.
		for n := 0; n < lo.Grid.N(); n++ {
			b.AddConductance(lo.Offset+n, hi.Offset+n, g)
			m.Resistors++
		}
	}
}

func (m *Model) rdlName() string { return m.Spec.DRAMTech.RDL.Name }

func (m *Model) viaRFor(die int) float64 {
	if die == DieLogic {
		return m.Spec.LogicTech.ViaR
	}
	return m.Spec.DRAMTech.ViaR
}
