package rmesh

import (
	"strings"
	"testing"

	"pdn3d/internal/pdn"
)

func countLinks(m *Model, k LinkKind) int {
	n := 0
	for _, l := range m.Links {
		if l.Kind == k {
			n++
		}
	}
	return n
}

func TestF2BTopology(t *testing.T) {
	spec := offChipSpec(t)
	m, err := Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	// Three F2B interfaces x 33 TSVs.
	if got := countLinks(m, LinkTSV); got != 3*33 {
		t.Errorf("TSV links = %d, want 99", got)
	}
	if got := countLinks(m, LinkB2B); got != 0 {
		t.Errorf("B2B links = %d in an F2B stack", got)
	}
	if got := countLinks(m, LinkLanding); got != 33 {
		t.Errorf("landing links = %d, want 33", got)
	}
}

func TestF2FTopology(t *testing.T) {
	spec := offChipSpec(t)
	spec.Bonding = pdn.F2F
	m, err := Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	// One B2B interface between the two pairs.
	if got := countLinks(m, LinkB2B); got != 33 {
		t.Errorf("B2B links = %d, want 33", got)
	}
	if got := countLinks(m, LinkTSV); got != 0 {
		t.Errorf("TSV links = %d, want 0 (pairs use F2F carpets)", got)
	}
}

func TestRDLInterfaceTopology(t *testing.T) {
	spec := offChipSpec(t)
	spec.RDL = pdn.RDLInterface
	m, err := Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := m.Layer("rdl/if"); !ok {
		t.Fatal("interface RDL layer missing")
	}
	// RDL links: one per TSV site down to the bottom die.
	if got := countLinks(m, LinkRDL); got != 33 {
		t.Errorf("RDL links = %d, want 33", got)
	}
	// Landings tie into the RDL, not the bottom die.
	rdl, _ := m.Layer("rdl/if")
	for _, tie := range m.Ties {
		if !rdl.Contains(tie.Node) {
			t.Fatalf("tie node %d outside the RDL layer", tie.Node)
		}
	}
}

func TestRDLAllTopology(t *testing.T) {
	spec := offChipSpec(t)
	spec.RDL = pdn.RDLAll
	m, err := Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	rdlLayers := 0
	for _, l := range m.Layers {
		if strings.HasSuffix(l.Key, "/RDL") {
			rdlLayers++
		}
	}
	if rdlLayers != 4 {
		t.Errorf("backside RDL layers = %d, want one per die", rdlLayers)
	}
	// Each of the 3 interfaces splits into TSV (down) + RDL (up) legs.
	if got := countLinks(m, LinkTSV); got != 3*33 {
		t.Errorf("TSV legs = %d, want 99", got)
	}
	if got := countLinks(m, LinkRDL); got != 3*33 {
		t.Errorf("RDL legs = %d, want 99", got)
	}
}

func TestWireBondTopology(t *testing.T) {
	spec := offChipSpec(t)
	spec.WireBond = true
	m, err := Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	want := spec.NumDRAM * spec.EffWiresPerDie()
	if got := countLinks(m, LinkWire); got != want {
		t.Errorf("wire ties = %d, want %d", got, want)
	}
}

func TestDedicatedTSVDecouplesLogic(t *testing.T) {
	spec := onChipSpec(t)
	spec.DedicatedTSV = true
	m, err := Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	// With dedicated TSVs there must be no branch between the logic
	// layers and the DRAM stack: every recorded landing link goes to the
	// supply (N2 < 0).
	logicEnd := 0
	for _, l := range m.Layers {
		if l.Die == DieLogic {
			if end := l.Offset + l.Grid.N(); end > logicEnd {
				logicEnd = end
			}
		}
	}
	if logicEnd == 0 {
		t.Fatal("no logic layers")
	}
	for _, l := range m.Links {
		if l.Kind != LinkLanding {
			continue
		}
		if l.N2 >= 0 {
			t.Fatalf("dedicated design has a landing branch into node %d (expected supply ties only)", l.N2)
		}
		if l.N1 < logicEnd {
			t.Fatalf("dedicated landing attaches inside the logic mesh (node %d)", l.N1)
		}
	}
}

func TestOnChipLandingBridgesLogicAndDRAM(t *testing.T) {
	spec := onChipSpec(t)
	m, err := Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	logicTop := m.logicTopLayer()
	if logicTop == nil {
		t.Fatal("no logic top layer")
	}
	bridges := 0
	for _, l := range m.Links {
		if l.Kind == LinkLanding && l.N2 >= 0 && logicTop.Contains(l.N1) {
			bridges++
		}
	}
	if bridges != spec.TSVCount {
		t.Errorf("logic-to-DRAM landing bridges = %d, want %d", bridges, spec.TSVCount)
	}
}

func TestAlignedRemovesDetour(t *testing.T) {
	mis := onChipSpec(t)
	al := onChipSpec(t)
	al.AlignTSV = true
	mm, err := Build(mis)
	if err != nil {
		t.Fatal(err)
	}
	ma, err := Build(al)
	if err != nil {
		t.Fatal(err)
	}
	// Aligned landings have strictly higher conductance (no detour term).
	var gMis, gAl float64
	for _, l := range mm.Links {
		if l.Kind == LinkLanding {
			gMis += l.G
		}
	}
	for _, l := range ma.Links {
		if l.Kind == LinkLanding {
			gAl += l.G
		}
	}
	if gAl <= gMis {
		t.Errorf("aligned landing conductance %.3f S should exceed misaligned %.3f S", gAl, gMis)
	}
}

func TestLinkKindStrings(t *testing.T) {
	for _, k := range []LinkKind{LinkTSV, LinkB2B, LinkLanding, LinkWire, LinkRDL} {
		if k.String() == "link" {
			t.Errorf("kind %d has no name", k)
		}
	}
	if LinkKind(99).String() != "link" {
		t.Error("unknown kind should fall back to 'link'")
	}
}
