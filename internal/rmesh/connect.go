package rmesh

import (
	"fmt"

	"pdn3d/internal/geom"
	"pdn3d/internal/pdn"
)

// stampConnections wires the dies together and to the package supply:
// C4 ties, TSV stacks, dedicated TSVs, F2F carpets, B2B links, RDL
// attachments and backside bond wires.
func (m *Model) stampConnections(b stamper) error {
	spec := m.Spec
	dt := spec.DRAMTech
	memSites := spec.TSVSites()
	alive := func(k int) bool { return !spec.FailedTSVs[k] }
	aliveSites := make([]geom.Point, 0, len(memSites))
	for k, p := range memSites {
		if alive(k) {
			aliveSites = append(aliveSites, p)
		}
	}

	link := func(kind LinkKind, n1, n2 int, r float64) {
		g := 1 / r
		b.AddConductance(n1, n2, g)
		m.Links = append(m.Links, Link{Kind: kind, N1: n1, N2: n2, G: g})
		m.Resistors++
	}
	tie := func(kind LinkKind, n int, r float64) {
		g := 1 / r
		b.AddToGround(n, g)
		m.Ties = append(m.Ties, Tie{Node: n, G: g})
		m.Links = append(m.Links, Link{Kind: kind, N1: n, N2: -1, G: g})
		m.Resistors++
	}

	top := func(d int) (*Layer, error) {
		names := orderedLayers(dt)
		l, ok := m.Layer(fmt.Sprintf("dram%d/%s", d, names[len(names)-1]))
		if !ok {
			return nil, fmt.Errorf("rmesh: missing top layer for die %d", d)
		}
		return l, nil
	}
	backRDL := func(d int) *Layer {
		l, _ := m.Layer(fmt.Sprintf("dram%d/RDL", d))
		return l
	}

	// The bottom die of an F2F stack faces up, so supply entering its
	// face-level metal from below passes through its own TSVs.
	var bottomExtra float64
	if spec.Bonding == pdn.F2F {
		bottomExtra = dt.PGTSV.R
	}

	top0, err := top(0)
	if err != nil {
		return err
	}

	// bottomEntry resolves where supply current enters the DRAM stack for
	// landing index k: the interface RDL when present, otherwise the
	// bottom die's top metal at the TSV site.
	rdlIf, hasRDLIf := m.Layer("rdl/if")
	var rdlEntries []int
	if hasRDLIf {
		for _, p := range spec.RDLEntrySites() {
			rdlEntries = append(rdlEntries, rdlIf.NodeAt(p))
		}
	}
	bottomEntry := func(k int) (node int, extraR float64) {
		if hasRDLIf {
			return rdlEntries[k], 0
		}
		return top0.NodeAt(memSites[k]), bottomExtra
	}

	// --- Supply into the stack bottom ---
	landings := spec.LandingSites()
	switch {
	case !spec.OnLogic:
		// Off-chip: package balls under every landing site.
		for k := range landings {
			if !alive(k) {
				continue
			}
			n, extra := bottomEntry(k)
			tie(LinkLanding, n, dt.C4.R+extra)
		}
	case spec.DedicatedTSV:
		// Dedicated via-last TSVs feed the stack directly from the
		// package; the logic and DRAM PDNs stay decoupled (§4.1).
		for k := range landings {
			if !alive(k) {
				continue
			}
			n, extra := bottomEntry(k)
			tie(LinkLanding, n, spec.LogicTech.C4.R+spec.LogicTech.DedicatedTSV.R+extra)
		}
	default:
		// Power rises through the logic die's PDN: the PG TSV lands on the
		// thick global straps (top layer) at the landing position and
		// climbs to the DRAM entry, paying the TSV, the micro-bump, and —
		// when misaligned — a lateral detour through the logic *local*
		// metal to the nearest C4 (§3.2).
		logicTop, logicLoad := m.logicTopLayer(), m.logicLoad
		if logicTop == nil || logicLoad == nil {
			return fmt.Errorf("rmesh: on-chip spec without logic layers")
		}
		uLocal := spec.LogicUsage[logicLoad.Name]
		localSheet := logicLoad.REff * uLocal // recover sheet R
		detourPerMM := localSheet / uLocal / misalignSpreadW
		for k, ls := range landings {
			if !alive(k) {
				continue
			}
			n, extra := bottomEntry(k)
			r := dt.PGTSV.R + dt.MicroBump.R + extra + ls.Misalign*detourPerMM
			link(LinkLanding, logicTop.NodeAt(ls.Pos), n, r)
		}
	}

	// --- Logic die package attach ---
	if spec.OnLogic {
		logicTop := m.logicTopLayer()
		for _, p := range spec.C4Sites() {
			// Logic C4s are plentiful and uninteresting for crowding;
			// record them as ties only.
			g := 1 / spec.LogicTech.C4.R
			b.AddToGround(logicTop.NodeAt(p), g)
			m.Ties = append(m.Ties, Tie{Node: logicTop.NodeAt(p), G: g})
			m.Resistors++
		}
	}

	// --- Interface RDL down to the bottom die ---
	if hasRDLIf {
		for k, p := range memSites {
			if !alive(k) {
				continue
			}
			link(LinkRDL, rdlIf.NodeAt(p), top0.NodeAt(p), dt.MicroBump.R+bottomExtra)
		}
	}

	// --- DRAM inter-die interfaces ---
	for i := 0; i+1 < spec.NumDRAM; i++ {
		lo, err := top(i)
		if err != nil {
			return err
		}
		hi, err := top(i + 1)
		if err != nil {
			return err
		}
		if spec.Bonding == pdn.F2F && i%2 == 0 {
			// F2F pair: dense via carpet joins the two face metals at
			// every mesh node — the pair shares a four-layer PDN (§4.2).
			g := 1 / dt.F2FVia.R
			for n := 0; n < lo.Grid.N(); n++ {
				b.AddConductance(lo.Offset+n, hi.Offset+n, g)
				m.Resistors++
			}
			continue
		}
		// F2B interface, or B2B between F2F pairs.
		b2b := spec.Bonding == pdn.F2F
		rTSV, rUp := dt.PGTSV.R, dt.MicroBump.R
		if b2b {
			rUp += dt.PGTSV.R
		}
		if rdl := backRDL(i); rdl != nil {
			// Backside RDL splits the vertical link and adds lateral
			// spreading between the dies.
			for k, p := range memSites {
				if !alive(k) {
					continue
				}
				link(LinkTSV, lo.NodeAt(p), rdl.NodeAt(p), rTSV)
				link(LinkRDL, rdl.NodeAt(p), hi.NodeAt(p), rUp)
			}
			continue
		}
		kind := LinkTSV
		if b2b {
			kind = LinkB2B
		}
		for k, p := range memSites {
			if !alive(k) {
				continue
			}
			link(kind, lo.NodeAt(p), hi.NodeAt(p), rTSV+rUp)
		}
	}

	// --- Backside wire bonding ---
	if spec.WireBond {
		for d := 0; d < spec.NumDRAM; d++ {
			attach := backRDL(d)
			rWire := dt.Wire.R(spec.WireLength(d))
			for _, p := range spec.WireSites() {
				if attach != nil {
					// A backside RDL is thick metal: the pad ties into it
					// directly.
					tie(LinkWire, attach.NodeAt(p), rWire)
					continue
				}
				// Without an RDL the edge pad reaches the die's face
				// metal through the thin backside metallization routed to
				// the nearest TSV landing, then down the TSV (§4.1).
				nearest := nearestSite(p, aliveSites)
				route := p.Dist(nearest) * backsideRoutePerMM
				t, err := top(d)
				if err != nil {
					return err
				}
				tie(LinkWire, t.NodeAt(nearest), rWire+route+dt.PGTSV.R)
			}
		}
	}

	if len(m.Ties) == 0 {
		return fmt.Errorf("rmesh: design has no supply ties")
	}
	return nil
}

// backsideRoutePerMM is the resistance per mm of the thin backside
// metallization that routes a bond pad to the nearest TSV landing (Ω/mm).
const backsideRoutePerMM = 0.35

func nearestSite(p geom.Point, sites []geom.Point) geom.Point {
	best := sites[0]
	bd := p.Dist(best)
	for _, q := range sites[1:] {
		if d := p.Dist(q); d < bd {
			bd, best = d, q
		}
	}
	return best
}

// logicTopLayer returns the logic die's package-facing (global) PDN layer.
func (m *Model) logicTopLayer() *Layer {
	names := orderedLayers(m.Spec.LogicTech)
	for i := len(names) - 1; i >= 0; i-- {
		if l, ok := m.Layer("logic/" + names[i]); ok {
			return l
		}
	}
	return nil
}
