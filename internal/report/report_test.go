package report

import (
	"strings"
	"testing"
)

func TestTableAlignment(t *testing.T) {
	tb := &Table{
		Title:  "demo",
		Header: []string{"name", "value"},
	}
	tb.AddRow("short", 1)
	tb.AddRow("a-much-longer-name", 12.345)
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if lines[0] != "demo" {
		t.Errorf("title line = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "name") {
		t.Errorf("header line = %q", lines[1])
	}
	if !strings.Contains(lines[2], "---") {
		t.Errorf("separator line = %q", lines[2])
	}
	// Value columns line up: "1" and "12.35" start at the same offset.
	i1 := strings.Index(lines[3], "1")
	i2 := strings.Index(lines[4], "12.35")
	if i1 != i2 {
		t.Errorf("columns misaligned: %d vs %d\n%s", i1, i2, out)
	}
}

func TestAddRowFormats(t *testing.T) {
	tb := &Table{}
	tb.AddRow("s", 1.23456, 42, true)
	row := tb.Rows[0]
	if row[0] != "s" || row[1] != "1.23" || row[2] != "42" || row[3] != "true" {
		t.Errorf("row = %v", row)
	}
}

func TestNotesRendered(t *testing.T) {
	tb := &Table{Notes: []string{"hello"}}
	tb.AddRow("x")
	if !strings.Contains(tb.String(), "note: hello") {
		t.Error("notes missing from output")
	}
}

func TestSeriesRendering(t *testing.T) {
	s := &Series{
		Title:  "curves",
		XLabel: "x",
		YLabel: "why",
		Names:  []string{"a", "b"},
		X:      []float64{1, 2},
		Y:      [][]float64{{10, 20}, {30}},
	}
	out := s.String()
	if !strings.Contains(out, "curves") || !strings.Contains(out, "10.000") {
		t.Errorf("series output missing content:\n%s", out)
	}
	// Missing point in curve b renders as "-".
	if !strings.Contains(out, "-") {
		t.Error("short curve should pad with '-'")
	}
	if !strings.Contains(out, "y: why") {
		t.Error("y label note missing")
	}
}

func TestPct(t *testing.T) {
	if got := Pct(100, 70); got != "-30.0%" {
		t.Errorf("Pct = %q, want -30.0%%", got)
	}
	if got := Pct(100, 144.2); got != "+44.2%" {
		t.Errorf("Pct = %q, want +44.2%%", got)
	}
	if got := Pct(0, 5); got != "n/a" {
		t.Errorf("Pct(0, x) = %q, want n/a", got)
	}
}
