// Package report renders experiment results as aligned plain-text tables
// and data series, the formats cmd/tables and the benchmarks print when
// regenerating the paper's tables and figures.
package report

import (
	"fmt"
	"strings"
)

// Table is a titled text table.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	// Notes are printed under the table.
	Notes []string
}

// AddRow appends a row, converting every cell with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	var sb strings.Builder
	if t.Title != "" {
		sb.WriteString(t.Title)
		sb.WriteByte('\n')
	}
	all := make([][]string, 0, len(t.Rows)+1)
	if len(t.Header) > 0 {
		all = append(all, t.Header)
	}
	all = append(all, t.Rows...)
	widths := columnWidths(all)
	writeRow := func(row []string) {
		for i, cell := range row {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(cell)
			if i < len(row)-1 {
				sb.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
			}
		}
		sb.WriteByte('\n')
	}
	if len(t.Header) > 0 {
		writeRow(t.Header)
		total := 0
		for _, w := range widths {
			total += w + 2
		}
		sb.WriteString(strings.Repeat("-", total))
		sb.WriteByte('\n')
	}
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		sb.WriteString("note: ")
		sb.WriteString(n)
		sb.WriteByte('\n')
	}
	return sb.String()
}

func columnWidths(rows [][]string) []int {
	var widths []int
	for _, row := range rows {
		for i, cell := range row {
			if i >= len(widths) {
				widths = append(widths, 0)
			}
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	return widths
}

// Series is a titled set of named curves sharing one x axis — the text
// stand-in for the paper's figures.
type Series struct {
	Title  string
	XLabel string
	YLabel string
	Names  []string
	X      []float64
	Y      [][]float64 // Y[curve][point]
}

// String renders the series as an aligned x/y table, one column per curve.
func (s *Series) String() string {
	t := Table{Title: s.Title}
	t.Header = append([]string{s.XLabel}, s.Names...)
	for i, x := range s.X {
		row := []string{fmt.Sprintf("%g", x)}
		for c := range s.Y {
			if i < len(s.Y[c]) {
				row = append(row, fmt.Sprintf("%.3f", s.Y[c][i]))
			} else {
				row = append(row, "-")
			}
		}
		t.Rows = append(t.Rows, row)
	}
	if s.YLabel != "" {
		t.Notes = append(t.Notes, "y: "+s.YLabel)
	}
	return t.String()
}

// Pct formats a relative change as the paper does ("-30.6%").
func Pct(base, v float64) string {
	if base == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%+.1f%%", (v-base)/base*100)
}
