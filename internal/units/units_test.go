package units

import (
	"math"
	"testing"
)

func TestMilliVolts(t *testing.T) {
	if got := MilliVolts(0.03003); got != "30.03mV" {
		t.Errorf("MilliVolts = %q, want 30.03mV", got)
	}
}

func TestToMilliVolts(t *testing.T) {
	if got := ToMilliVolts(0.024); math.Abs(got-24) > 1e-12 {
		t.Errorf("ToMilliVolts = %g, want 24", got)
	}
}

func TestCurrentMA(t *testing.T) {
	// 220.5 mW at 1.5 V = 147 mA.
	if got := CurrentMA(220.5, 1.5); math.Abs(got-147) > 1e-9 {
		t.Errorf("CurrentMA = %g, want 147", got)
	}
	if got := CurrentMA(100, 0); got != 0 {
		t.Errorf("CurrentMA at 0 V = %g, want 0", got)
	}
}

func TestScaleConstants(t *testing.T) {
	if 1000*Micron != Millimetre {
		t.Error("1000 um != 1 mm")
	}
	if 1000*MilliOhm != Ohm {
		t.Error("1000 mOhm != 1 Ohm")
	}
	if 1000*MilliWatt != Watt {
		t.Error("1000 mW != 1 W")
	}
	if 1000*MilliVolt != Volt {
		t.Error("1000 mV != 1 V")
	}
}
