// Package units defines the physical units and conversion helpers used
// throughout the platform.
//
// Internal canonical units are chosen so that typical 3D-DRAM quantities
// have convenient magnitudes and so that no conversion is needed inside the
// numerical core:
//
//   - length:      millimetres (mm)
//   - resistance:  ohms (Ω)
//   - sheet resistance: ohms per square (Ω/sq)
//   - power:       milliwatts (mW)
//   - voltage:     volts (V)
//   - current:     milliamperes (mA)  — consistent with mW / V
//
// With power in mW and voltage in V, current I = P/V comes out in mA, and
// IR products (mA · Ω) come out in millivolts, which is the unit the paper
// reports all IR-drop results in.
package units

import (
	"fmt"
	"math"
)

// Common scale factors relative to the canonical units.
const (
	// Micron converts micrometres to the canonical length unit (mm).
	Micron = 1e-3
	// Millimetre is the canonical length unit.
	Millimetre = 1.0
	// MilliOhm converts milliohms to the canonical resistance unit (Ω).
	MilliOhm = 1e-3
	// Ohm is the canonical resistance unit.
	Ohm = 1.0
	// MilliWatt is the canonical power unit.
	MilliWatt = 1.0
	// Watt converts watts to the canonical power unit (mW).
	Watt = 1e3
	// Volt is the canonical voltage unit.
	Volt = 1.0
	// MilliVolt converts millivolts to volts.
	MilliVolt = 1e-3
)

// Tol is the default relative tolerance for comparing configuration
// values (voltages, range endpoints, usage fractions). It is far looser
// than one ulp — enough to absorb arithmetic rounding — yet far tighter
// than any physically meaningful difference in the canonical units.
const Tol = 1e-9

// ApproxEqual reports whether a and b agree to within tol, interpreted
// relative to their magnitude (and absolutely for magnitudes below 1).
// It is the sanctioned replacement for raw ==/!= between floats, which
// the floateq analyzer rejects in analysis code.
func ApproxEqual(a, b, tol float64) bool {
	if a == b { //pdnlint:ignore floateq exact-match fast path; also covers equal infinities, where a-b is NaN
		return true
	}
	m := math.Abs(a)
	if bm := math.Abs(b); bm > m {
		m = bm
	}
	if m < 1 {
		m = 1
	}
	return math.Abs(a-b) <= tol*m
}

// SameValue reports whether two configuration values coincide at the
// default tolerance — the common "is this sweep axis collapsed / are
// these knobs the same" test.
func SameValue(a, b float64) bool { return ApproxEqual(a, b, Tol) }

// MilliVolts renders a voltage drop (in V) as a millivolt string with the
// two-decimal precision used in the paper's tables.
func MilliVolts(v float64) string {
	return fmt.Sprintf("%.2fmV", v/MilliVolt)
}

// ToMilliVolts converts a voltage in volts to millivolts.
func ToMilliVolts(v float64) float64 { return v / MilliVolt }

// CurrentMA returns the DC current in mA drawn by a load of p milliwatts
// at v volts.
func CurrentMA(p, v float64) float64 {
	if v == 0 {
		return 0
	}
	return p / v
}
