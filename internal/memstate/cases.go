package memstate

import "fmt"

// PairCase names one of the Figure 8 two-bank interleaving-read placements
// on a DDR3-style 8-bank die (2 columns x 4 rows; bank b sits in column
// b%2, row b/2).
type PairCase string

// The four placements of Figure 8. Case A concentrates both banks in the
// top-right column pair (the worst-case edge placement); case B spreads the
// pair across both columns next to the center peripheral strip; cases C and
// D move the pair progressively further from case A's corner.
const (
	PairA PairCase = "a" // banks 5,7: top rows, right column
	PairB PairCase = "b" // banks 2,3: center row, both columns
	PairC PairCase = "c" // banks 1,3: bottom rows, right column
	PairD PairCase = "d" // banks 0,2: bottom rows, left column (farthest from A)
)

// PairBanks returns the two active banks of the given case.
func PairBanks(c PairCase) ([]int, error) {
	switch c {
	case PairA:
		return []int{5, 7}, nil
	case PairB:
		return []int{2, 3}, nil
	case PairC:
		return []int{1, 3}, nil
	case PairD:
		return []int{0, 2}, nil
	default:
		return nil, fmt.Errorf("memstate: unknown pair case %q", c)
	}
}

// PairState builds a 4-die state from per-die pair cases; an empty case
// string leaves the die idle. Example: PairState("", "", "b", "a") is the
// paper's "0-0-2b-2a" state.
func PairState(cases ...PairCase) (State, error) {
	s := State{Dies: make([][]int, len(cases))}
	for d, c := range cases {
		if c == "" {
			continue
		}
		banks, err := PairBanks(c)
		if err != nil {
			return State{}, fmt.Errorf("die %d: %w", d+1, err)
		}
		s.Dies[d] = banks
	}
	return s, nil
}

// MustPairState is PairState for statically-valid cases; it panics on error.
func MustPairState(cases ...PairCase) State {
	s, err := PairState(cases...)
	if err != nil {
		panic(err)
	}
	return s
}

// IntraPairOverlap reports whether, under F2F pairing of dies (0,1) and
// (2,3), any F2F pair has both dies active with at least one bank in the
// same location (same bank index, since F2F mates mirrored identical
// layouts whose bank positions coincide).
func IntraPairOverlap(s State) bool {
	for p := 0; p+1 < len(s.Dies); p += 2 {
		a, b := s.Dies[p], s.Dies[p+1]
		for _, x := range a {
			for _, y := range b {
				if x == y {
					return true
				}
			}
		}
	}
	return false
}
