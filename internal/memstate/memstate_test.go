package memstate

import (
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestFromCountsAndString(t *testing.T) {
	s, err := FromCounts([]int{0, 0, 0, 2}, WorstCaseEdge(8))
	if err != nil {
		t.Fatalf("FromCounts: %v", err)
	}
	if got := s.String(); got != "0-0-0-2" {
		t.Errorf("String = %q, want 0-0-0-2", got)
	}
	if got := s.TotalActive(); got != 2 {
		t.Errorf("TotalActive = %d, want 2", got)
	}
	if !reflect.DeepEqual(s.Dies[3], []int{7, 5}) {
		t.Errorf("worst-case placement = %v, want [7 5]", s.Dies[3])
	}
}

func TestFromCountsErrors(t *testing.T) {
	if _, err := FromCounts([]int{-1}, WorstCaseEdge(8)); err == nil {
		t.Error("negative count: want error")
	}
	if _, err := FromCounts([]int{9}, WorstCaseEdge(8)); err == nil {
		t.Error("too many banks: want error")
	}
}

func TestActive(t *testing.T) {
	s := MustPairState("", "", "", PairA)
	if !s.Active(3, 5) || !s.Active(3, 7) {
		t.Error("banks 5,7 on die 4 should be active")
	}
	if s.Active(3, 4) || s.Active(0, 5) || s.Active(9, 5) || s.Active(-1, 0) {
		t.Error("inactive/out-of-range banks reported active")
	}
}

func TestParseCounts(t *testing.T) {
	got, err := ParseCounts("0-0-2-2")
	if err != nil {
		t.Fatalf("ParseCounts: %v", err)
	}
	if !reflect.DeepEqual(got, []int{0, 0, 2, 2}) {
		t.Errorf("ParseCounts = %v", got)
	}
	for _, bad := range []string{"", "0-x-0-0", "0--1-0", "1--2", "-1-0-0-0", "0-0-0-", "0-0- -0", "1.5-0-0-0"} {
		if _, err := ParseCounts(bad); err == nil {
			t.Errorf("ParseCounts(%q): want error", bad)
		}
	}
}

func TestParseCountsFor(t *testing.T) {
	got, err := ParseCountsFor("0-0-0-2", 4, 8)
	if err != nil {
		t.Fatalf("ParseCountsFor: %v", err)
	}
	if !reflect.DeepEqual(got, []int{0, 0, 0, 2}) {
		t.Errorf("ParseCountsFor = %v", got)
	}
	tests := []struct {
		name    string
		s       string
		dies    int
		banks   int
		wantErr string
	}{
		{"wrong die count short", "0-0-2", 4, 8, "3 dies, design has 4"},
		{"wrong die count long", "0-0-0-0-2", 4, 8, "5 dies, design has 4"},
		{"count over banks", "0-0-0-9", 4, 8, "exceed 8 banks per die"},
		{"negative", "0-0-0--2", 4, 8, "bad state"},
		{"garbage", "zero-0-0-0", 4, 8, "is not a count"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseCountsFor(tc.s, tc.dies, tc.banks)
			if err == nil {
				t.Fatalf("ParseCountsFor(%q, %d, %d): want error", tc.s, tc.dies, tc.banks)
			}
			if !strings.Contains(err.Error(), "memstate: bad state") {
				t.Errorf("error %q missing the consistent prefix", err)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

func TestParseFormatRoundTrip(t *testing.T) {
	f := func(a, b, c, d uint8) bool {
		counts := []int{int(a % 3), int(b % 3), int(c % 3), int(d % 3)}
		s, err := FromCounts(counts, WorstCaseEdge(8))
		if err != nil {
			return false
		}
		back, err := ParseCounts(s.String())
		return err == nil && reflect.DeepEqual(back, counts)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestKeyIsOrderInsensitiveWithinDie(t *testing.T) {
	a := State{Dies: [][]int{{7, 5}, nil}}
	b := State{Dies: [][]int{{5, 7}, nil}}
	if a.Key() != b.Key() {
		t.Errorf("keys differ: %q vs %q", a.Key(), b.Key())
	}
	c := State{Dies: [][]int{nil, {5, 7}}}
	if a.Key() == c.Key() {
		t.Error("different dies must produce different keys")
	}
}

func TestEnumerateCounts(t *testing.T) {
	all := EnumerateCounts(4, 2)
	if len(all) != 81 {
		t.Fatalf("EnumerateCounts(4,2) = %d states, want 3^4 = 81", len(all))
	}
	seen := map[string]bool{}
	for _, c := range all {
		s, _ := FromCounts(c, WorstCaseEdge(8))
		k := s.String()
		if seen[k] {
			t.Fatalf("duplicate state %s", k)
		}
		seen[k] = true
		for _, n := range c {
			if n < 0 || n > 2 {
				t.Fatalf("count out of range in %v", c)
			}
		}
	}
	if !seen["0-0-0-0"] || !seen["2-2-2-2"] || !seen["0-0-0-2"] {
		t.Error("expected corner states missing")
	}
	if got := EnumerateCounts(0, 2); got != nil {
		t.Error("zero dies should enumerate nothing")
	}
}

func TestPairBanksDistinctAndValid(t *testing.T) {
	seen := map[int]PairCase{}
	for _, c := range []PairCase{PairA, PairB, PairC, PairD} {
		banks, err := PairBanks(c)
		if err != nil {
			t.Fatalf("PairBanks(%s): %v", c, err)
		}
		if len(banks) != 2 || banks[0] == banks[1] {
			t.Errorf("case %s: banks %v, want two distinct", c, banks)
		}
		for _, b := range banks {
			if b < 0 || b > 7 {
				t.Errorf("case %s: bank %d out of 8-bank range", c, b)
			}
		}
		_ = seen
	}
	if _, err := PairBanks("z"); err == nil {
		t.Error("unknown case: want error")
	}
}

func TestIntraPairOverlap(t *testing.T) {
	cases := []struct {
		state   State
		overlap bool
		name    string
	}{
		{MustPairState("", "", PairA, PairA), true, "0-0-2a-2a"},
		{MustPairState("", "", PairB, PairB), true, "0-0-2b-2b"},
		{MustPairState("", PairA, "", PairA), false, "0-2a-0-2a"},
		{MustPairState(PairA, "", "", PairA), false, "2a-0-0-2a"},
		{MustPairState("", "", PairB, PairA), false, "0-0-2b-2a"},
		{MustPairState("", "", PairC, PairA), false, "0-0-2c-2a"},
		{MustPairState("", "", PairD, PairA), false, "0-0-2d-2a"},
	}
	for _, c := range cases {
		if got := IntraPairOverlap(c.state); got != c.overlap {
			t.Errorf("%s: overlap = %v, want %v (Table 4)", c.name, got, c.overlap)
		}
	}
}

func TestBalancedPlacementDistinct(t *testing.T) {
	pl := BalancedPlacement(8)
	for n := 1; n <= 8; n++ {
		banks, err := pl(0, n)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		seen := map[int]bool{}
		for _, b := range banks {
			if b < 0 || b > 7 || seen[b] {
				t.Fatalf("n=%d: bad or duplicate bank %d in %v", n, b, banks)
			}
			seen[b] = true
		}
	}
	if _, err := pl(0, 9); err == nil {
		t.Error("n=9: want error")
	}
}

func TestWorstCasePlacementDistinct(t *testing.T) {
	pl := WorstCaseEdge(8)
	for n := 1; n <= 4; n++ {
		banks, err := pl(0, n)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		seen := map[int]bool{}
		for _, b := range banks {
			if b < 0 || b > 7 || seen[b] {
				t.Fatalf("n=%d: bad or duplicate bank %d in %v", n, b, banks)
			}
			seen[b] = true
		}
	}
}
