// Package memstate represents 3D DRAM memory states — which banks are
// active on which die — in the paper's "R1-R2-R3-R4" notation, along with
// the explicit bank-placement cases of Figure 8 used for the intra-pair
// overlapping study, and state enumeration for the IR-drop look-up table.
package memstate

import (
	"fmt"
	"strconv"
	"strings"
)

// MaxInterleavedBanks is the per-die cap on simultaneously-read banks:
// interleaving mode reads at most two banks per die to avoid overdrawing
// the charge pumps (paper §2.3).
const MaxInterleavedBanks = 2

// State is a memory state: the active bank indices on every die of the
// stack, bottom die (DRAM1) first.
type State struct {
	// Dies[d] lists the active bank indices on die d.
	Dies [][]int
}

// FromCounts builds a state with the given per-die active-bank counts using
// the worst-case placement (paper §5.1: active banks on the die edge) taken
// from the placement function pl. pl(die, n) must return n distinct banks.
func FromCounts(counts []int, pl Placement) (State, error) {
	s := State{Dies: make([][]int, len(counts))}
	for d, n := range counts {
		if n < 0 {
			return State{}, fmt.Errorf("memstate: negative bank count %d on die %d", n, d)
		}
		if n == 0 {
			continue
		}
		banks, err := pl(d, n)
		if err != nil {
			return State{}, err
		}
		if len(banks) != n {
			return State{}, fmt.Errorf("memstate: placement returned %d banks on die %d, want %d", len(banks), d, n)
		}
		s.Dies[d] = banks
	}
	return s, nil
}

// Placement maps (die, count) to explicit active bank indices.
type Placement func(die, count int) ([]int, error)

// WorstCaseEdge returns the paper's default worst-case placement for a die
// with numBanks banks laid out DDR3-style (2 columns x numBanks/2 rows):
// banks are activated from the top die corner inward, concentrating current
// in one region far from the center peripheral strip.
func WorstCaseEdge(numBanks int) Placement {
	return func(die, count int) ([]int, error) {
		if count > numBanks {
			return nil, fmt.Errorf("memstate: %d active banks exceed %d banks per die", count, numBanks)
		}
		// Highest-index banks sit in the top rows of the layout; take
		// them pairwise from the top so two banks land stacked in one
		// column at the die edge.
		banks := make([]int, count)
		for i := 0; i < count; i++ {
			banks[i] = numBanks - 1 - 2*i
			if banks[i] < 0 {
				banks[i] = numBanks - 1 - (2*i+1)%numBanks
			}
		}
		return banks, nil
	}
}

// BalancedPlacement spreads active banks across the layout's columns,
// modelling location-aware scheduling.
func BalancedPlacement(numBanks int) Placement {
	return func(die, count int) ([]int, error) {
		if count > numBanks {
			return nil, fmt.Errorf("memstate: %d active banks exceed %d banks per die", count, numBanks)
		}
		banks := make([]int, count)
		stride := numBanks / max(count, 1)
		if stride == 0 {
			stride = 1
		}
		for i := range banks {
			banks[i] = (i*stride + i) % numBanks
		}
		seen := map[int]bool{}
		next := 0
		for i, b := range banks {
			for seen[b] {
				b = next
				next++
			}
			seen[b] = true
			banks[i] = b
		}
		return banks, nil
	}
}

// Counts returns the per-die active bank counts (the R1..Rn of the paper's
// notation).
func (s State) Counts() []int {
	out := make([]int, len(s.Dies))
	for d, banks := range s.Dies {
		out[d] = len(banks)
	}
	return out
}

// NumDies returns the die count of the state.
func (s State) NumDies() int { return len(s.Dies) }

// TotalActive returns the total number of active banks across all dies.
func (s State) TotalActive() int {
	n := 0
	for _, banks := range s.Dies {
		n += len(banks)
	}
	return n
}

// Active reports whether bank b on die d is active.
func (s State) Active(die, bank int) bool {
	if die < 0 || die >= len(s.Dies) {
		return false
	}
	for _, b := range s.Dies[die] {
		if b == bank {
			return true
		}
	}
	return false
}

// String renders the paper's "R1-R2-R3-R4" notation.
func (s State) String() string {
	parts := make([]string, len(s.Dies))
	for d, banks := range s.Dies {
		parts[d] = strconv.Itoa(len(banks))
	}
	return strings.Join(parts, "-")
}

// Key returns a canonical identity string that includes explicit bank
// placements, usable as a map key.
func (s State) Key() string {
	var sb strings.Builder
	for d, banks := range s.Dies {
		if d > 0 {
			sb.WriteByte('|')
		}
		sorted := append([]int(nil), banks...)
		for i := 1; i < len(sorted); i++ {
			for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
				sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
			}
		}
		for i, b := range sorted {
			if i > 0 {
				sb.WriteByte(',')
			}
			sb.WriteString(strconv.Itoa(b))
		}
	}
	return sb.String()
}

// ParseCounts parses "0-0-0-2" into per-die counts. It rejects malformed
// syntax (empty or non-numeric components, negative counts) but knows
// nothing about the target design; use ParseCountsFor to also enforce the
// die count and per-die bank cap.
func ParseCounts(s string) ([]int, error) {
	parts := strings.Split(s, "-")
	out := make([]int, len(parts))
	for i, p := range parts {
		p = strings.TrimSpace(p)
		if p == "" {
			return nil, fmt.Errorf("memstate: bad state %q: empty count at position %d", s, i+1)
		}
		n, err := strconv.Atoi(p)
		if err != nil {
			return nil, fmt.Errorf("memstate: bad state %q: %q is not a count", s, p)
		}
		if n < 0 {
			return nil, fmt.Errorf("memstate: bad state %q: negative count %d", s, n)
		}
		out[i] = n
	}
	return out, nil
}

// ParseCountsFor parses "R1-R2-...-Rn" and validates it against a design:
// exactly dies components, each in [0, banksPerDie]. Every entry point that
// accepts user state strings — the CLIs and the analysis server — goes
// through this one function, so malformed states fail with one consistent
// "memstate: bad state ..." error format everywhere.
func ParseCountsFor(s string, dies, banksPerDie int) ([]int, error) {
	out, err := ParseCounts(s)
	if err != nil {
		return nil, err
	}
	if len(out) != dies {
		return nil, fmt.Errorf("memstate: bad state %q: %d dies, design has %d", s, len(out), dies)
	}
	for d, n := range out {
		if n > banksPerDie {
			return nil, fmt.Errorf("memstate: bad state %q: %d active banks on die %d exceed %d banks per die", s, n, d+1, banksPerDie)
		}
	}
	return out, nil
}

// EnumerateCounts yields every per-die count vector with entries in
// [0, maxPerDie] for the given die count, in lexicographic order. This is
// the LUT's state axis.
func EnumerateCounts(dies, maxPerDie int) [][]int {
	if dies <= 0 {
		return nil
	}
	total := 1
	for i := 0; i < dies; i++ {
		total *= maxPerDie + 1
	}
	out := make([][]int, 0, total)
	cur := make([]int, dies)
	for {
		out = append(out, append([]int(nil), cur...))
		// Increment little-endian with carry.
		i := dies - 1
		for i >= 0 {
			cur[i]++
			if cur[i] <= maxPerDie {
				break
			}
			cur[i] = 0
			i--
		}
		if i < 0 {
			return out
		}
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
