package regress

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestExactLinearRecovery(t *testing.T) {
	// y = 3 + 2a - 5b is recovered exactly from noise-free samples.
	rng := rand.New(rand.NewSource(1))
	var samples []Sample
	for i := 0; i < 30; i++ {
		a, b := rng.Float64(), rng.Float64()
		samples = append(samples, Sample{X: []float64{1, a, b}, Y: 3 + 2*a - 5*b})
	}
	fit, err := LeastSquares(samples)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{3, 2, -5}
	for i, w := range want {
		if math.Abs(fit.W[i]-w) > 1e-6 {
			t.Errorf("w[%d] = %g, want %g", i, fit.W[i], w)
		}
	}
	if fit.RMSE > 1e-8 {
		t.Errorf("RMSE = %g, want ~0", fit.RMSE)
	}
	if fit.R2 < 0.999999 {
		t.Errorf("R2 = %g, want ~1", fit.R2)
	}
}

func TestNoisyFitQuality(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var samples []Sample
	for i := 0; i < 400; i++ {
		a := rng.Float64() * 10
		samples = append(samples, Sample{
			X: []float64{1, a},
			Y: 1 + 0.5*a + rng.NormFloat64()*0.1,
		})
	}
	fit, err := LeastSquares(samples)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.W[1]-0.5) > 0.02 {
		t.Errorf("slope = %g, want ~0.5", fit.W[1])
	}
	if fit.RMSE > 0.15 {
		t.Errorf("RMSE = %g, want ~0.1", fit.RMSE)
	}
	if fit.R2 < 0.99 {
		t.Errorf("R2 = %g, want > 0.99", fit.R2)
	}
}

func TestErrors(t *testing.T) {
	if _, err := LeastSquares(nil); err == nil {
		t.Error("no samples: want error")
	}
	if _, err := LeastSquares([]Sample{{X: nil, Y: 1}}); err == nil {
		t.Error("empty features: want error")
	}
	bad := []Sample{{X: []float64{1, 2}, Y: 1}, {X: []float64{1}, Y: 2}}
	if _, err := LeastSquares(bad); err == nil {
		t.Error("ragged features: want error")
	}
	under := []Sample{{X: []float64{1, 2, 3}, Y: 1}}
	if _, err := LeastSquares(under); err == nil {
		t.Error("underdetermined: want error")
	}
}

func TestCollinearFeaturesRejectedOrStable(t *testing.T) {
	// Perfectly duplicated features are singular up to the ridge; the fit
	// either errors or returns a finite, accurate predictor.
	var samples []Sample
	for i := 0; i < 10; i++ {
		a := float64(i)
		samples = append(samples, Sample{X: []float64{1, a, a}, Y: 2 * a})
	}
	fit, err := LeastSquares(samples)
	if err != nil {
		return // acceptable: flagged singular
	}
	for i := 0; i < 10; i++ {
		a := float64(i)
		if p := fit.Predict([]float64{1, a, a}); math.Abs(p-2*a) > 1e-3 {
			t.Fatalf("collinear predict(%g) = %g, want %g", a, p, 2*a)
		}
	}
}

// Property: residuals of a least-squares fit are orthogonal to the feature
// columns (the normal equations).
func TestResidualOrthogonality(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var samples []Sample
		for i := 0; i < 50; i++ {
			a, b := rng.NormFloat64(), rng.NormFloat64()
			samples = append(samples, Sample{
				X: []float64{1, a, b},
				Y: rng.NormFloat64() + a - b,
			})
		}
		fit, err := LeastSquares(samples)
		if err != nil {
			return false
		}
		for col := 0; col < 3; col++ {
			var dot float64
			for _, s := range samples {
				dot += (fit.Predict(s.X) - s.Y) * s.X[col]
			}
			if math.Abs(dot) > 1e-6*float64(len(samples)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
