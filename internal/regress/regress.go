// Package regress implements the least-squares regression analysis of the
// paper's §6.1: a polynomial/categorical feature model fitted to sampled
// R-Mesh results so the co-optimizer can evaluate millions of candidate
// designs without solving meshes (the paper reports RMSE < 0.135 and
// R² > 0.999, cutting a 4637-hour brute force to ten hours).
package regress

import (
	"fmt"
	"math"
)

// Sample is one observation: feature vector x and response y.
type Sample struct {
	X []float64
	Y float64
}

// Fit is a fitted linear model y ≈ w·x (callers include a bias feature in
// x when wanted).
type Fit struct {
	// W are the fitted weights.
	W []float64
	// RMSE is the training root-mean-square error.
	RMSE float64
	// R2 is the training coefficient of determination.
	R2 float64
}

// LeastSquares fits w minimizing Σ(w·x − y)² via the normal equations with
// a small ridge term for numerical safety.
func LeastSquares(samples []Sample) (*Fit, error) {
	if len(samples) == 0 {
		return nil, fmt.Errorf("regress: no samples")
	}
	p := len(samples[0].X)
	if p == 0 {
		return nil, fmt.Errorf("regress: empty feature vector")
	}
	for i, s := range samples {
		if len(s.X) != p {
			return nil, fmt.Errorf("regress: sample %d has %d features, want %d", i, len(s.X), p)
		}
	}
	if len(samples) < p {
		return nil, fmt.Errorf("regress: %d samples cannot determine %d weights", len(samples), p)
	}

	// Normal equations: (XᵀX + λI) w = Xᵀy.
	const ridge = 1e-9
	ata := make([][]float64, p)
	for i := range ata {
		ata[i] = make([]float64, p)
		ata[i][i] = ridge
	}
	aty := make([]float64, p)
	for _, s := range samples {
		for i := 0; i < p; i++ {
			aty[i] += s.X[i] * s.Y
			for j := 0; j < p; j++ {
				ata[i][j] += s.X[i] * s.X[j]
			}
		}
	}
	w, err := solveDense(ata, aty)
	if err != nil {
		return nil, err
	}

	fit := &Fit{W: w}
	var mean float64
	for _, s := range samples {
		mean += s.Y
	}
	mean /= float64(len(samples))
	var ssRes, ssTot float64
	for _, s := range samples {
		r := fit.Predict(s.X) - s.Y
		ssRes += r * r
		d := s.Y - mean
		ssTot += d * d
	}
	fit.RMSE = math.Sqrt(ssRes / float64(len(samples)))
	if ssTot > 0 {
		fit.R2 = 1 - ssRes/ssTot
	} else {
		fit.R2 = 1
	}
	return fit, nil
}

// Predict evaluates the model at x.
func (f *Fit) Predict(x []float64) float64 {
	var s float64
	for i, w := range f.W {
		s += w * x[i]
	}
	return s
}

// solveDense solves A·x = b by Gaussian elimination with partial pivoting.
func solveDense(a [][]float64, b []float64) ([]float64, error) {
	n := len(b)
	// Work on copies.
	m := make([][]float64, n)
	for i := range m {
		m[i] = append(append([]float64(nil), a[i]...), b[i])
	}
	for col := 0; col < n; col++ {
		// Pivot.
		piv := col
		for r := col + 1; r < n; r++ {
			if math.Abs(m[r][col]) > math.Abs(m[piv][col]) {
				piv = r
			}
		}
		if math.Abs(m[piv][col]) < 1e-14 {
			return nil, fmt.Errorf("regress: singular normal matrix at column %d", col)
		}
		m[col], m[piv] = m[piv], m[col]
		// Eliminate below.
		for r := col + 1; r < n; r++ {
			f := m[r][col] / m[col][col]
			if f == 0 {
				continue
			}
			for c := col; c <= n; c++ {
				m[r][c] -= f * m[col][c]
			}
		}
	}
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := m[i][n]
		for j := i + 1; j < n; j++ {
			s -= m[i][j] * x[j]
		}
		x[i] = s / m[i][i]
	}
	return x, nil
}
