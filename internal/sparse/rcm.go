package sparse

import (
	"fmt"
	"sort"
)

// This file implements symmetric bandwidth-reducing reordering for the
// frozen mesh patterns: a deterministic reverse Cuthill-McKee (RCM)
// traversal of the pattern's adjacency graph, a symbolic permutation of
// the pattern itself (so a restamp's raw stamp stream scatters straight
// into the reordered matrix), and the numeric/vector permutation helpers
// the solver wrapper needs.
//
// Permutation convention used throughout: perm[new] = old — perm lists
// the original node indices in their new order. The inverse mapping
// iperm[old] = new is derived where needed.

// Permutation computes the reverse Cuthill-McKee ordering of the
// pattern's graph and returns it as perm[new] = old. The traversal is
// fully deterministic: each connected component starts from its
// minimum-degree node (lowest index on ties), and BFS neighbors are
// visited in increasing (degree, index) order. Reversing the
// Cuthill-McKee order concentrates the nonzeros near the diagonal, which
// is what makes the reordered SpMV/triangular kernels cache-friendly.
func (p *Pattern) Permutation() []int32 {
	n := p.n
	deg := make([]int32, n)
	for i := 0; i < n; i++ {
		for q := p.rowPtr[i]; q < p.rowPtr[i+1]; q++ {
			if int(p.col[q]) != i {
				deg[i]++
			}
		}
	}
	perm := make([]int32, 0, n)
	visited := make([]bool, n)
	// Component starts in ascending (degree, index) order: sort once.
	starts := make([]int32, n)
	for i := range starts {
		starts[i] = int32(i)
	}
	sort.Slice(starts, func(a, b int) bool {
		if deg[starts[a]] != deg[starts[b]] {
			return deg[starts[a]] < deg[starts[b]]
		}
		return starts[a] < starts[b]
	})
	nbr := make([]int32, 0, 8)
	for _, s := range starts {
		if visited[s] {
			continue
		}
		// BFS from s; perm doubles as the queue.
		visited[s] = true
		head := len(perm)
		perm = append(perm, s)
		for head < len(perm) {
			u := perm[head]
			head++
			nbr = nbr[:0]
			for q := p.rowPtr[u]; q < p.rowPtr[u+1]; q++ {
				v := p.col[q]
				if v != u && !visited[v] {
					visited[v] = true
					nbr = append(nbr, v)
				}
			}
			// Enqueue in increasing (degree, index) order — the
			// deterministic Cuthill-McKee tie-break.
			sort.Slice(nbr, func(a, b int) bool {
				if deg[nbr[a]] != deg[nbr[b]] {
					return deg[nbr[a]] < deg[nbr[b]]
				}
				return nbr[a] < nbr[b]
			})
			perm = append(perm, nbr...)
		}
	}
	// Reverse: RCM is the Cuthill-McKee order read backwards.
	for i, j := 0, len(perm)-1; i < j; i, j = i+1, j-1 {
		perm[i], perm[j] = perm[j], perm[i]
	}
	return perm
}

// checkPerm validates that perm is a permutation of [0, n).
func checkPerm(perm []int32, n int) {
	if len(perm) != n {
		panic(fmt.Sprintf("sparse: permutation length %d != dimension %d", len(perm), n))
	}
	seen := make([]bool, n)
	for _, v := range perm {
		if v < 0 || int(v) >= n || seen[v] {
			panic(fmt.Sprintf("sparse: invalid permutation entry %d", v))
		}
		seen[v] = true
	}
}

// InvertPerm returns iperm with iperm[perm[i]] = i.
func InvertPerm(perm []int32) []int32 {
	iperm := make([]int32, len(perm))
	for i, v := range perm {
		iperm[v] = int32(i)
	}
	return iperm
}

// PermuteVec gathers src into the permuted ordering: dst[i] =
// src[perm[i]]. dst and src must not alias.
func PermuteVec(dst, src []float64, perm []int32) {
	for i, v := range perm {
		dst[i] = src[v]
	}
}

// InvPermuteVec scatters a permuted-ordering vector back to the original
// ordering: dst[perm[i]] = src[i]. dst and src must not alias.
func InvPermuteVec(dst, src []float64, perm []int32) {
	for i, v := range perm {
		dst[v] = src[i]
	}
}

// Permute returns the symbolic pattern of the symmetrically permuted
// matrix B = Pᵀ·A·P with B[i][j] = A[perm[i]][perm[j]]. The returned
// pattern accepts the exact same raw stamp stream as p: Scatter through
// it fills the reordered matrix directly, and because the duplicate-merge
// order is carried over entry by entry, the reordered values are
// bit-identical to permuting the values of the unpermuted compression.
func (p *Pattern) Permute(perm []int32) *Pattern {
	checkPerm(perm, p.n)
	iperm := InvertPerm(perm)
	// New coordinates of every stored entry, then the entry ranking that
	// sorts them by (row, col) in the new numbering. Entries are unique
	// after merging, so the order is total without a tie-break.
	nnz := len(p.col)
	entryRow := make([]int32, nnz)
	for i := 0; i < p.n; i++ {
		for q := p.rowPtr[i]; q < p.rowPtr[i+1]; q++ {
			entryRow[q] = iperm[i]
		}
	}
	entryCol := make([]int32, nnz)
	for q, c := range p.col {
		entryCol[q] = iperm[c]
	}
	rank := make([]int32, nnz)
	for i := range rank {
		rank[i] = int32(i)
	}
	sort.Slice(rank, func(a, b int) bool {
		ra, rb := rank[a], rank[b]
		if entryRow[ra] != entryRow[rb] {
			return entryRow[ra] < entryRow[rb]
		}
		return entryCol[ra] < entryCol[rb]
	})
	np := &Pattern{
		n:      p.n,
		rowPtr: make([]int32, p.n+1),
		col:    make([]int32, nnz),
		order:  p.order, // same raw stamp stream, same merge order
		slot:   make([]int32, len(p.slot)),
	}
	newSlot := make([]int32, nnz) // old entry -> new entry index
	for newIdx, oldIdx := range rank {
		np.col[newIdx] = entryCol[oldIdx]
		np.rowPtr[entryRow[oldIdx]+1]++
		newSlot[oldIdx] = int32(newIdx)
	}
	for i := 0; i < p.n; i++ {
		np.rowPtr[i+1] += np.rowPtr[i]
	}
	for i, s := range p.slot {
		np.slot[i] = newSlot[s]
	}
	return np
}

// Permute returns the symmetrically permuted matrix B = Pᵀ·A·P with
// B[i][j] = A[perm[i]][perm[j]]. Rows of the result are column-sorted
// like every compressed matrix in this package. The value mapping is a
// pure gather of the stored entries, so permuting and then solving is
// numerically exact with respect to the original matrix.
func (m *CSR) Permute(perm []int32) *CSR {
	checkPerm(perm, m.N)
	iperm := InvertPerm(perm)
	out := &CSR{
		N:      m.N,
		RowPtr: make([]int32, m.N+1),
		Col:    make([]int32, len(m.Col)),
		Val:    make([]float64, len(m.Val)),
	}
	for i := 0; i < m.N; i++ {
		out.RowPtr[i+1] = out.RowPtr[i] + (m.RowPtr[perm[i]+1] - m.RowPtr[perm[i]])
	}
	type ent struct {
		c int32
		v float64
	}
	var row []ent
	for i := 0; i < m.N; i++ {
		o := perm[i]
		row = row[:0]
		for q := m.RowPtr[o]; q < m.RowPtr[o+1]; q++ {
			row = append(row, ent{c: iperm[m.Col[q]], v: m.Val[q]})
		}
		sort.Slice(row, func(a, b int) bool { return row[a].c < row[b].c })
		base := out.RowPtr[i]
		for k, e := range row {
			out.Col[base+int32(k)] = e.c
			out.Val[base+int32(k)] = e.v
		}
	}
	return out
}

// Bandwidth returns the matrix bandwidth max |i - j| over stored entries
// — the quantity RCM reordering minimizes. Diagnostic, used by tests and
// the benchmark trajectory.
func (m *CSR) Bandwidth() int {
	var bw int32
	for i := 0; i < m.N; i++ {
		for q := m.RowPtr[i]; q < m.RowPtr[i+1]; q++ {
			d := int32(i) - m.Col[q]
			if d < 0 {
				d = -d
			}
			if d > bw {
				bw = d
			}
		}
	}
	return int(bw)
}
