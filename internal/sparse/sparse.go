// Package sparse implements the symmetric sparse matrices used by the
// R-Mesh nodal analysis. Conductance matrices are assembled stamp-by-stamp
// into a coordinate builder and compressed to CSR for the iterative solver.
//
// The matrices produced by nodal analysis of a resistor network with at
// least one tie to the (folded) supply node are symmetric positive
// definite, which the conjugate-gradient solver in internal/solve relies on.
package sparse

import (
	"fmt"
	"sort"

	"pdn3d/internal/par"
)

// Builder accumulates symmetric stamps in coordinate form. Only one triangle
// needs to be stamped for off-diagonal entries if the caller uses
// AddConductance; raw Add calls stamp exactly what they are given.
type Builder struct {
	n    int
	rows []int32
	cols []int32
	vals []float64
}

// NewBuilder returns a builder for an n×n matrix.
func NewBuilder(n int) *Builder {
	return &Builder{n: n}
}

// N returns the matrix dimension.
func (b *Builder) N() int { return b.n }

// Add accumulates v into entry (i, j). Duplicate coordinates are summed
// during compression.
func (b *Builder) Add(i, j int, v float64) {
	if i < 0 || i >= b.n || j < 0 || j >= b.n {
		panic(fmt.Sprintf("sparse: Add(%d,%d) out of range for n=%d", i, j, b.n))
	}
	if v == 0 {
		return
	}
	b.rows = append(b.rows, int32(i))
	b.cols = append(b.cols, int32(j))
	b.vals = append(b.vals, v)
}

// AddConductance stamps a two-terminal conductance g between nodes i and j:
// +g on both diagonals, -g on both off-diagonals. It is the fundamental
// operation of nodal analysis.
func (b *Builder) AddConductance(i, j int, g float64) {
	b.Add(i, i, g)
	b.Add(j, j, g)
	b.Add(i, j, -g)
	b.Add(j, i, -g)
}

// AddToGround stamps a conductance g from node i to the folded reference
// node (only the diagonal entry appears in the reduced system).
func (b *Builder) AddToGround(i int, g float64) {
	b.Add(i, i, g)
}

// NNZStamps returns the number of raw stamps accumulated so far (before
// duplicate merging). Useful for capacity diagnostics.
func (b *Builder) NNZStamps() int { return len(b.vals) }

// RawVals returns the raw stamp values in stamp order, aliasing the
// builder's storage. Together with Pattern.Scatter it lets a caller
// compress without re-sorting: Freeze once, then Scatter any stamp stream
// with the same structure.
func (b *Builder) RawVals() []float64 { return b.vals }

// Compress merges duplicates and produces an immutable CSR matrix. It is
// Freeze + NewCSR + Scatter, so one-shot builds and pattern-reusing
// restamps produce bit-identical matrices by construction.
func (b *Builder) Compress() *CSR {
	p := b.Freeze()
	m := p.NewCSR()
	p.Scatter(m.Val, b.vals)
	return m
}

// Pattern is the frozen symbolic structure of a compressed matrix: the CSR
// row pointers and column indices, plus the stamp→slot mapping that merges
// duplicate coordinates. A Pattern is immutable and safe for concurrent
// use; it can Scatter any number of raw stamp streams that follow the same
// stamping order as the builder it was frozen from.
//
//pdnlint:frozen
type Pattern struct {
	n      int
	rowPtr []int32
	col    []int32
	// order lists the raw stamp indices sorted by (row, col) — the exact
	// merge order the one-shot Compress uses, preserved so that summing
	// duplicates during Scatter is bit-identical to Compress.
	order []int32
	// slot[i] is the CSR value slot stamp order[i] merges into.
	slot []int32
}

// Freeze captures the builder's symbolic structure as an immutable
// Pattern. The builder's stamp coordinates — not its values — define the
// pattern: a later stamp stream with the same coordinates in the same
// order can be Scattered through it.
func (b *Builder) Freeze() *Pattern {
	type key struct{ r, c int32 }
	// Sort stamps by (row, col, stamp index). The stamp-index tie-break
	// makes the order total: duplicates of one coordinate always merge in
	// stamping order, no matter how the sort algorithm partitions equal
	// keys. Without it, sort.Slice's unstable equal-key handling decided
	// the float summation order of duplicate stamps — unspecified behavior
	// that the bit-identical Compress/Scatter contract and the byte-pinned
	// golden corpus silently depended on.
	idx := make([]int, len(b.vals))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, c int) bool {
		ia, ic := idx[a], idx[c]
		if b.rows[ia] != b.rows[ic] {
			return b.rows[ia] < b.rows[ic]
		}
		if b.cols[ia] != b.cols[ic] {
			return b.cols[ia] < b.cols[ic]
		}
		return ia < ic
	})

	p := &Pattern{
		n:      b.n,
		rowPtr: make([]int32, b.n+1),
		order:  make([]int32, len(idx)),
		slot:   make([]int32, len(idx)),
	}
	var prev key
	first := true
	for i, t := range idx {
		p.order[i] = int32(t)
		k := key{b.rows[t], b.cols[t]}
		if first || k != prev {
			first = false
			prev = k
			p.col = append(p.col, k.c)
			p.rowPtr[k.r+1]++
		}
		p.slot[i] = int32(len(p.col) - 1)
	}
	for i := 0; i < b.n; i++ {
		p.rowPtr[i+1] += p.rowPtr[i]
	}
	return p
}

// N returns the matrix dimension.
func (p *Pattern) N() int { return p.n }

// NNZ returns the number of stored entries after duplicate merging.
func (p *Pattern) NNZ() int { return len(p.col) }

// Stamps returns the number of raw stamps the pattern was frozen from. A
// stream passed to Scatter must have exactly this length.
func (p *Pattern) Stamps() int { return len(p.order) }

// NewCSR returns a CSR matrix over this pattern with a zero value array.
// The row pointers and column indices are shared with the pattern (and
// with every other CSR made from it) — callers must treat them as
// read-only, which the solver stack already does. Only the value array is
// fresh, so one topology serves many concurrently-solved value sets.
func (p *Pattern) NewCSR() *CSR {
	return &CSR{N: p.n, RowPtr: p.rowPtr, Col: p.col, Val: make([]float64, len(p.col))}
}

// Scatter compresses a raw stamp stream into dst, which must be the value
// array of a CSR made from this pattern (len == NNZ). raw must contain
// exactly Stamps() values in the original stamping order. Duplicates are
// summed in the same order Compress merges them, so the result is
// bit-identical to rebuilding through a Builder with the same stamps.
func (p *Pattern) Scatter(dst, raw []float64) {
	if len(raw) != len(p.order) {
		panic(fmt.Sprintf("sparse: Scatter got %d raw stamps, pattern has %d", len(raw), len(p.order)))
	}
	if len(dst) != len(p.col) {
		panic(fmt.Sprintf("sparse: Scatter dst length %d != pattern nnz %d", len(dst), len(p.col)))
	}
	for i := range dst {
		dst[i] = 0
	}
	for i, t := range p.order {
		dst[p.slot[i]] += raw[t]
	}
}

// CSR is a compressed-sparse-row matrix.
type CSR struct {
	N      int
	RowPtr []int32
	Col    []int32
	Val    []float64
}

// NNZ returns the number of stored entries.
func (m *CSR) NNZ() int { return len(m.Val) }

// MulVec computes y = A·x. y must have length N and is overwritten.
func (m *CSR) MulVec(y, x []float64) {
	if len(x) != m.N || len(y) != m.N {
		panic(fmt.Sprintf("sparse: MulVec dimension mismatch: n=%d len(x)=%d len(y)=%d", m.N, len(x), len(y)))
	}
	m.MulVecRange(y, x, 0, m.N)
}

// MulVecRange computes y[lo:hi] = (A·x)[lo:hi] — the row slab of a
// matrix-vector product. Disjoint slabs touch disjoint parts of y, so
// concurrent calls over a partition of [0, N) are safe; this is the
// sharding primitive behind MulVecPar.
func (m *CSR) MulVecRange(y, x []float64, lo, hi int) {
	for i := lo; i < hi; i++ {
		var s float64
		for p := m.RowPtr[i]; p < m.RowPtr[i+1]; p++ {
			s += m.Val[p] * x[m.Col[p]]
		}
		y[i] = s
	}
}

// MulVecPar computes y = A·x with the rows sharded over at most workers
// goroutines (<= 0 selects GOMAXPROCS). Every row is computed exactly as
// in MulVec, so the result is bit-for-bit identical to the serial product
// for any worker count.
func (m *CSR) MulVecPar(y, x []float64, workers, block int) {
	if len(x) != m.N || len(y) != m.N {
		panic(fmt.Sprintf("sparse: MulVecPar dimension mismatch: n=%d len(x)=%d len(y)=%d", m.N, len(x), len(y)))
	}
	par.Blocks(workers, m.N, block, func(_, lo, hi int) {
		m.MulVecRange(y, x, lo, hi)
	})
}

// Diag extracts the diagonal into a new slice. Missing diagonal entries are
// reported as zero.
func (m *CSR) Diag() []float64 {
	d := make([]float64, m.N)
	for i := 0; i < m.N; i++ {
		for p := m.RowPtr[i]; p < m.RowPtr[i+1]; p++ {
			if int(m.Col[p]) == i {
				d[i] = m.Val[p]
				break
			}
		}
	}
	return d
}

// At returns entry (i, j), zero when not stored. It is O(row nnz) and meant
// for tests and small inspections, not for inner loops.
func (m *CSR) At(i, j int) float64 {
	for p := m.RowPtr[i]; p < m.RowPtr[i+1]; p++ {
		if int(m.Col[p]) == j {
			return m.Val[p]
		}
	}
	return 0
}

// Dense expands the matrix to a dense row-major [][]float64; for tests and
// for the dense validation solver on small systems.
func (m *CSR) Dense() [][]float64 {
	out := make([][]float64, m.N)
	buf := make([]float64, m.N*m.N)
	for i := range out {
		out[i] = buf[i*m.N : (i+1)*m.N]
		for p := m.RowPtr[i]; p < m.RowPtr[i+1]; p++ {
			out[i][m.Col[p]] = m.Val[p]
		}
	}
	return out
}

// StructureEqual reports whether a and b have the same dimension and the
// exact same sparsity pattern (row pointers and column indices), ignoring
// the stored values. Two matrices assembled from the same branch set —
// e.g. an R-Mesh and its re-parsed SPICE netlist — must compare equal
// here even when their values differ by rounding; the differential
// harness uses this as the structural half of its round-trip contract.
func StructureEqual(a, b *CSR) bool {
	if a.N != b.N || len(a.Col) != len(b.Col) {
		return false
	}
	for i := range a.RowPtr {
		if a.RowPtr[i] != b.RowPtr[i] {
			return false
		}
	}
	for i := range a.Col {
		if a.Col[i] != b.Col[i] {
			return false
		}
	}
	return true
}

// IsSymmetric reports whether the matrix is numerically symmetric within
// tol, comparing every stored entry against its transpose partner.
func (m *CSR) IsSymmetric(tol float64) bool {
	for i := 0; i < m.N; i++ {
		for p := m.RowPtr[i]; p < m.RowPtr[i+1]; p++ {
			j := int(m.Col[p])
			d := m.Val[p] - m.At(j, i)
			if d > tol || d < -tol {
				return false
			}
		}
	}
	return true
}
