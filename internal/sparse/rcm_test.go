package sparse

import (
	"math"
	"math/rand"
	"testing"
)

// gridPattern builds the nx×ny 5-point grid Laplacian with a corner tie.
func gridPattern(nx, ny int) (*Builder, *Pattern) {
	b := NewBuilder(nx * ny)
	idx := func(i, j int) int { return j*nx + i }
	for j := 0; j < ny; j++ {
		for i := 0; i < nx; i++ {
			if i+1 < nx {
				b.AddConductance(idx(i, j), idx(i+1, j), 1+0.01*float64(i+j))
			}
			if j+1 < ny {
				b.AddConductance(idx(i, j), idx(i, j+1), 1.5+0.02*float64(i))
			}
		}
	}
	b.AddToGround(0, 10)
	return b, b.Freeze()
}

func TestPermutationIsValidAndDeterministic(t *testing.T) {
	_, p := gridPattern(17, 9)
	perm := p.Permutation()
	checkPerm(perm, p.N()) // panics on an invalid permutation
	again := p.Permutation()
	for i := range perm {
		if perm[i] != again[i] {
			t.Fatalf("Permutation not deterministic at %d: %d vs %d", i, perm[i], again[i])
		}
	}
}

func TestPermutationReducesBandwidth(t *testing.T) {
	// Column-major numbering of a wide grid has bandwidth ~ny·... RCM
	// must do substantially better than the natural ordering here because
	// the natural ordering is deliberately bad: random shuffle.
	b, p := gridPattern(40, 10)
	m := p.NewCSR()
	p.Scatter(m.Val, b.RawVals())

	// Scramble the numbering to a random permutation first, then let RCM
	// recover a banded form.
	rng := rand.New(rand.NewSource(7))
	shuffle := make([]int32, m.N)
	for i := range shuffle {
		shuffle[i] = int32(i)
	}
	rng.Shuffle(len(shuffle), func(i, j int) { shuffle[i], shuffle[j] = shuffle[j], shuffle[i] })
	scrambled := m.Permute(shuffle)

	sb := NewBuilder(scrambled.N)
	for i := 0; i < scrambled.N; i++ {
		for q := scrambled.RowPtr[i]; q < scrambled.RowPtr[i+1]; q++ {
			sb.Add(i, int(scrambled.Col[q]), scrambled.Val[q])
		}
	}
	sp := sb.Freeze()
	perm := sp.Permutation()
	reordered := scrambled.Permute(perm)
	if got, was := reordered.Bandwidth(), scrambled.Bandwidth(); got*4 > was {
		t.Fatalf("RCM bandwidth %d not substantially below scrambled bandwidth %d", got, was)
	}
}

// The permuted matrix must hold exactly the original entries at permuted
// coordinates, and the permuted pattern's Scatter must agree bit for bit
// with permuting the unpermuted compression.
func TestPermuteExactEntriesAndScatterAgreement(t *testing.T) {
	b, p := gridPattern(13, 11)
	m := p.NewCSR()
	p.Scatter(m.Val, b.RawVals())
	perm := p.Permutation()

	pm := m.Permute(perm)
	for i := 0; i < m.N; i++ {
		for q := pm.RowPtr[i]; q < pm.RowPtr[i+1]; q++ {
			oi, oj := perm[i], perm[pm.Col[q]]
			if want := m.At(int(oi), int(oj)); math.Float64bits(pm.Val[q]) != math.Float64bits(want) {
				t.Fatalf("permuted entry (%d,%d) = %g, want original (%d,%d) = %g",
					i, pm.Col[q], pm.Val[q], oi, oj, want)
			}
		}
	}

	pp := p.Permute(perm)
	spm := pp.NewCSR()
	pp.Scatter(spm.Val, b.RawVals())
	if !StructureEqual(pm, spm) {
		t.Fatal("Pattern.Permute structure differs from CSR.Permute")
	}
	for i := range pm.Val {
		if math.Float64bits(pm.Val[i]) != math.Float64bits(spm.Val[i]) {
			t.Fatalf("slot %d: pattern-scatter %g vs csr-permute %g (must be bit-identical)",
				i, spm.Val[i], pm.Val[i])
		}
	}
}

// Solving the permuted system and inverse-permuting must reproduce the
// original solution: B = PᵀAP, B·(Pᵀx) = Pᵀb.
func TestPermuteVecRoundTrip(t *testing.T) {
	_, p := gridPattern(6, 5)
	perm := p.Permutation()
	n := p.N()
	src := make([]float64, n)
	for i := range src {
		src[i] = float64(i) * 1.25
	}
	fwd := make([]float64, n)
	PermuteVec(fwd, src, perm)
	back := make([]float64, n)
	InvPermuteVec(back, fwd, perm)
	for i := range src {
		if src[i] != back[i] {
			t.Fatalf("round trip lost element %d: %g vs %g", i, back[i], src[i])
		}
	}
	iperm := InvertPerm(perm)
	for i, v := range perm {
		if iperm[v] != int32(i) {
			t.Fatalf("InvertPerm broken at %d", i)
		}
	}
}

// MulVec on the permuted system must equal the permuted product of the
// original system (up to nothing — same multiplications, same order per
// row? No: per-row term order changes, so compare within float slack).
func TestPermutedMulVecConsistent(t *testing.T) {
	b, p := gridPattern(9, 7)
	m := p.NewCSR()
	p.Scatter(m.Val, b.RawVals())
	perm := p.Permutation()
	pm := m.Permute(perm)
	n := m.N
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Sin(float64(i))
	}
	px := make([]float64, n)
	PermuteVec(px, x, perm)
	y := make([]float64, n)
	m.MulVec(y, x)
	py := make([]float64, n)
	pm.MulVec(py, px)
	yBack := make([]float64, n)
	InvPermuteVec(yBack, py, perm)
	for i := range y {
		if d := math.Abs(y[i] - yBack[i]); d > 1e-12*(1+math.Abs(y[i])) {
			t.Fatalf("product differs at %d: %g vs %g", i, yBack[i], y[i])
		}
	}
}
