package sparse

import (
	"math"
	"testing"
)

// dupStampBuilder builds a matrix whose stamp stream carries many
// duplicate-coordinate groups with magnitudes chosen so the float sum
// depends on the summation order: per coordinate the sequence
// (+big, +1, −big) sums to 0 in stamp order (big + 1 rounds to big) but
// to 1 when the ±big pair cancels first. The groups are interleaved
// across enough coordinates that an unstable sort visibly reorders
// equal-key runs.
func dupStampBuilder() *Builder {
	const n = 24
	const big = 1e16 // big + 1 == big in float64
	b := NewBuilder(n)
	// Interleave: first pass stamps +big on every coordinate, second pass
	// +1, third pass −big, so each coordinate's duplicates are far apart
	// in the stamp stream.
	coords := make([][2]int, 0, n*3)
	for i := 0; i < n; i++ {
		coords = append(coords, [2]int{i, i})
		if i+1 < n {
			coords = append(coords, [2]int{i, i + 1}, [2]int{i + 1, i})
		}
	}
	for _, c := range coords {
		b.Add(c[0], c[1], big)
	}
	for _, c := range coords {
		b.Add(c[0], c[1], 1)
	}
	for _, c := range coords {
		b.Add(c[0], c[1], -big)
	}
	return b
}

// stampOrderSums accumulates the builder's stamps per coordinate in
// stamp order — the merge order Freeze promises.
func stampOrderSums(b *Builder) map[[2]int32]float64 {
	sums := map[[2]int32]float64{}
	for i := range b.vals {
		k := [2]int32{b.rows[i], b.cols[i]}
		sums[k] += b.vals[i]
	}
	return sums
}

// Regression for the Freeze duplicate-merge order: before the stamp-index
// tie-break, sort.Slice's unstable equal-key handling could merge
// duplicates of one coordinate in an arbitrary order, silently changing
// the float result of the compression. Duplicates must sum in stamp
// order.
func TestFreezeMergesDuplicatesInStampOrder(t *testing.T) {
	b := dupStampBuilder()
	want := stampOrderSums(b)
	m := b.Compress()
	for i := 0; i < m.N; i++ {
		for q := m.RowPtr[i]; q < m.RowPtr[i+1]; q++ {
			k := [2]int32{int32(i), m.Col[q]}
			if got := m.Val[q]; math.Float64bits(got) != math.Float64bits(want[k]) {
				t.Fatalf("entry (%d,%d) = %g, want stamp-order sum %g (duplicate merge order is unstable)",
					i, m.Col[q], got, want[k])
			}
		}
	}
}

// Compress and Freeze+NewCSR+Scatter must stay bit-identical on a stamp
// stream whose duplicate groups are order-sensitive — the contract the
// restamp pipeline builds on.
func TestFreezeScatterBitIdenticalToCompress(t *testing.T) {
	ref := dupStampBuilder().Compress()
	b := dupStampBuilder()
	p := b.Freeze()
	m := p.NewCSR()
	p.Scatter(m.Val, b.RawVals())
	if !StructureEqual(ref, m) {
		t.Fatal("Freeze+Scatter structure differs from Compress")
	}
	for i := range ref.Val {
		if math.Float64bits(ref.Val[i]) != math.Float64bits(m.Val[i]) {
			t.Fatalf("value slot %d: Scatter %g vs Compress %g (must be bit-identical)", i, m.Val[i], ref.Val[i])
		}
	}
	// A second scatter of the same stream through the same pattern must
	// reproduce the values again (restamp replay).
	m2 := p.NewCSR()
	p.Scatter(m2.Val, b.RawVals())
	for i := range m.Val {
		if math.Float64bits(m.Val[i]) != math.Float64bits(m2.Val[i]) {
			t.Fatalf("re-scatter diverged at slot %d", i)
		}
	}
}
