package sparse

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBuilderCompressMergesDuplicates(t *testing.T) {
	b := NewBuilder(3)
	b.Add(0, 0, 1)
	b.Add(0, 0, 2)
	b.Add(1, 2, 5)
	b.Add(1, 2, -1)
	m := b.Compress()
	if m.NNZ() != 2 {
		t.Fatalf("NNZ = %d, want 2", m.NNZ())
	}
	if got := m.At(0, 0); got != 3 {
		t.Errorf("At(0,0) = %g, want 3", got)
	}
	if got := m.At(1, 2); got != 4 {
		t.Errorf("At(1,2) = %g, want 4", got)
	}
	if got := m.At(2, 1); got != 0 {
		t.Errorf("At(2,1) = %g, want 0 (raw Add does not symmetrize)", got)
	}
}

func TestAddConductanceStamp(t *testing.T) {
	b := NewBuilder(2)
	b.AddConductance(0, 1, 2.5)
	m := b.Compress()
	want := [][]float64{{2.5, -2.5}, {-2.5, 2.5}}
	d := m.Dense()
	for i := range want {
		for j := range want[i] {
			if d[i][j] != want[i][j] {
				t.Errorf("entry (%d,%d) = %g, want %g", i, j, d[i][j], want[i][j])
			}
		}
	}
	if !m.IsSymmetric(0) {
		t.Error("conductance stamp must be symmetric")
	}
}

func TestAddToGroundOnlyDiagonal(t *testing.T) {
	b := NewBuilder(2)
	b.AddToGround(1, 4)
	m := b.Compress()
	if m.NNZ() != 1 || m.At(1, 1) != 4 {
		t.Errorf("ground stamp wrong: nnz=%d At(1,1)=%g", m.NNZ(), m.At(1, 1))
	}
}

func TestZeroValueStampsSkipped(t *testing.T) {
	b := NewBuilder(2)
	b.Add(0, 1, 0)
	if b.NNZStamps() != 0 {
		t.Error("zero stamp should be dropped")
	}
}

func TestAddOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("want panic on out-of-range Add")
		}
	}()
	NewBuilder(2).Add(0, 2, 1)
}

func TestMulVecAgainstDense(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(12)
		b := NewBuilder(n)
		for k := 0; k < n*3; k++ {
			b.Add(rng.Intn(n), rng.Intn(n), rng.NormFloat64())
		}
		m := b.Compress()
		d := m.Dense()
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		got := make([]float64, n)
		m.MulVec(got, x)
		for i := 0; i < n; i++ {
			var want float64
			for j := 0; j < n; j++ {
				want += d[i][j] * x[j]
			}
			if math.Abs(got[i]-want) > 1e-10 {
				t.Fatalf("trial %d: y[%d] = %g, want %g", trial, i, got[i], want)
			}
		}
	}
}

func TestMulVecDimensionPanics(t *testing.T) {
	m := NewBuilder(3).Compress()
	defer func() {
		if recover() == nil {
			t.Error("want panic on dimension mismatch")
		}
	}()
	m.MulVec(make([]float64, 2), make([]float64, 3))
}

func TestDiag(t *testing.T) {
	b := NewBuilder(3)
	b.Add(0, 0, 2)
	b.Add(2, 2, 7)
	b.Add(0, 1, 9)
	d := b.Compress().Diag()
	want := []float64{2, 0, 7}
	for i := range want {
		if d[i] != want[i] {
			t.Errorf("diag[%d] = %g, want %g", i, d[i], want[i])
		}
	}
}

// Property: a matrix assembled purely out of AddConductance/AddToGround
// stamps is symmetric and weakly diagonally dominant with non-negative
// diagonal — the structure CG relies on.
func TestConductanceAssemblyProperties(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + int(nRaw)%20
		b := NewBuilder(n)
		for k := 0; k < 4*n; k++ {
			i, j := rng.Intn(n), rng.Intn(n)
			if i == j {
				b.AddToGround(i, rng.Float64()+0.01)
			} else {
				b.AddConductance(i, j, rng.Float64()+0.01)
			}
		}
		m := b.Compress()
		if !m.IsSymmetric(1e-12) {
			return false
		}
		for i := 0; i < n; i++ {
			var off, diag float64
			for p := m.RowPtr[i]; p < m.RowPtr[i+1]; p++ {
				if int(m.Col[p]) == i {
					diag = m.Val[p]
				} else {
					off += math.Abs(m.Val[p])
				}
			}
			if diag < off-1e-12 || diag < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestRowPtrConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	b := NewBuilder(30)
	for k := 0; k < 500; k++ {
		b.AddConductance(rng.Intn(30), rng.Intn(30), rng.Float64())
	}
	m := b.Compress()
	if int(m.RowPtr[m.N]) != m.NNZ() {
		t.Fatalf("RowPtr[N] = %d, want NNZ %d", m.RowPtr[m.N], m.NNZ())
	}
	for i := 0; i < m.N; i++ {
		if m.RowPtr[i] > m.RowPtr[i+1] {
			t.Fatalf("RowPtr not monotone at %d", i)
		}
		// Columns sorted within row.
		for p := m.RowPtr[i] + 1; p < m.RowPtr[i+1]; p++ {
			if m.Col[p-1] >= m.Col[p] {
				t.Fatalf("row %d columns not strictly increasing", i)
			}
		}
	}
}

func TestMulVecParMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	b := NewBuilder(500)
	for i := 0; i < 500; i++ {
		b.AddToGround(i, 0.1+rng.Float64())
	}
	for k := 0; k < 2000; k++ {
		i, j := rng.Intn(500), rng.Intn(500)
		if i != j {
			b.AddConductance(i, j, rng.Float64())
		}
	}
	m := b.Compress()
	x := make([]float64, m.N)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	want := make([]float64, m.N)
	m.MulVec(want, x)
	for _, workers := range []int{1, 2, 8} {
		got := make([]float64, m.N)
		m.MulVecPar(got, x, workers, 64)
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: y[%d] = %g, serial %g (must be bit-identical)", workers, i, got[i], want[i])
			}
		}
	}
}

// buildRandomStamps fills a builder with a deterministic pseudo-random
// stamp stream containing duplicates, negatives, and ground ties.
func buildRandomStamps(n, stamps int) *Builder {
	b := NewBuilder(n)
	seed := uint64(0x9e3779b97f4a7c15)
	next := func() uint64 {
		seed ^= seed << 13
		seed ^= seed >> 7
		seed ^= seed << 17
		return seed
	}
	for k := 0; k < stamps; k++ {
		i := int(next() % uint64(n))
		j := int(next() % uint64(n))
		g := float64(next()%1000)/997 + 0.001
		if i == j {
			b.AddToGround(i, g)
		} else {
			b.AddConductance(i, j, g)
		}
	}
	return b
}

// Freeze+NewCSR+Scatter must be bitwise indistinguishable from Compress:
// same structure, same duplicate-merge order, same values.
func TestPatternScatterMatchesCompress(t *testing.T) {
	b := buildRandomStamps(50, 400)
	want := b.Compress()
	p := b.Freeze()
	m := p.NewCSR()
	p.Scatter(m.Val, b.RawVals())
	if m.N != want.N || m.NNZ() != want.NNZ() {
		t.Fatalf("shape %dx%d nnz=%d, want %dx%d nnz=%d", m.N, m.N, m.NNZ(), want.N, want.N, want.NNZ())
	}
	for i := range want.Val {
		if math.Float64bits(m.Val[i]) != math.Float64bits(want.Val[i]) {
			t.Fatalf("Val[%d] = %x, want %x", i, math.Float64bits(m.Val[i]), math.Float64bits(want.Val[i]))
		}
	}
	for i := 0; i < want.N; i++ {
		for j := 0; j < want.N; j++ {
			if m.At(i, j) != want.At(i, j) {
				t.Fatalf("At(%d,%d) = %g, want %g", i, j, m.At(i, j), want.At(i, j))
			}
		}
	}
}

// A pattern is reusable: scattering a second stamp stream with the same
// coordinates into the same destination must fully overwrite the first.
func TestPatternScatterOverwrites(t *testing.T) {
	b := NewBuilder(3)
	b.AddConductance(0, 1, 2)
	b.AddToGround(0, 5)
	p := b.Freeze()
	m := p.NewCSR()
	p.Scatter(m.Val, b.RawVals())
	first := m.At(0, 0)

	// Same stream shape, halved values.
	b2 := NewBuilder(3)
	b2.AddConductance(0, 1, 1)
	b2.AddToGround(0, 2.5)
	p.Scatter(m.Val, b2.RawVals())
	if m.At(0, 0) != first/2 {
		t.Errorf("second scatter left stale values: At(0,0) = %g, want %g", m.At(0, 0), first/2)
	}
	if m.At(0, 1) != -1 {
		t.Errorf("At(0,1) = %g, want -1", m.At(0, 1))
	}
}

// Stamps/N/NNZ describe the frozen stream; Scatter validates both lengths.
func TestPatternScatterPanicsOnMismatch(t *testing.T) {
	b := NewBuilder(4)
	b.AddConductance(0, 1, 1)
	p := b.Freeze()
	if p.N() != 4 || p.Stamps() != 4 || p.NNZ() != 4 {
		t.Fatalf("pattern shape n=%d stamps=%d nnz=%d, want 4/4/4", p.N(), p.Stamps(), p.NNZ())
	}
	m := p.NewCSR()
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("short raw", func() { p.Scatter(m.Val, make([]float64, 3)) })
	mustPanic("short dst", func() { p.Scatter(make([]float64, 3), make([]float64, 4)) })
}

// NewCSR shares the frozen structure but never the values: two matrices
// minted from one pattern hold independent value arrays.
func TestPatternNewCSRIndependentValues(t *testing.T) {
	b := buildRandomStamps(10, 40)
	p := b.Freeze()
	m1, m2 := p.NewCSR(), p.NewCSR()
	p.Scatter(m1.Val, b.RawVals())
	for _, v := range m2.Val {
		if v != 0 {
			t.Fatal("fresh pattern CSR has nonzero values")
		}
	}
	m2.Val[0] = 42
	if m1.Val[0] == 42 {
		t.Fatal("pattern CSRs share value storage")
	}
}

// StructureEqual compares the symbolic pattern only: same shape with
// different values is equal, any structural drift is not.
func TestStructureEqual(t *testing.T) {
	build := func(stamp func(b *Builder)) *CSR {
		b := NewBuilder(3)
		stamp(b)
		return b.Compress()
	}
	base := func(b *Builder) {
		b.AddConductance(0, 1, 2)
		b.AddConductance(1, 2, 3)
		b.AddToGround(0, 1)
	}
	a := build(base)
	if !StructureEqual(a, a) {
		t.Error("matrix not structure-equal to itself")
	}
	sameShape := build(func(b *Builder) {
		b.AddConductance(0, 1, 7)
		b.AddConductance(1, 2, 11)
		b.AddToGround(0, 5)
	})
	if !StructureEqual(a, sameShape) {
		t.Error("same pattern with different values reported unequal")
	}
	extraBranch := build(func(b *Builder) {
		base(b)
		b.AddConductance(0, 2, 1)
	})
	if StructureEqual(a, extraBranch) {
		t.Error("extra branch not detected")
	}
	smaller := NewBuilder(2)
	smaller.AddConductance(0, 1, 2)
	if StructureEqual(a, smaller.Compress()) {
		t.Error("dimension mismatch not detected")
	}
}
