package sparse

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBuilderCompressMergesDuplicates(t *testing.T) {
	b := NewBuilder(3)
	b.Add(0, 0, 1)
	b.Add(0, 0, 2)
	b.Add(1, 2, 5)
	b.Add(1, 2, -1)
	m := b.Compress()
	if m.NNZ() != 2 {
		t.Fatalf("NNZ = %d, want 2", m.NNZ())
	}
	if got := m.At(0, 0); got != 3 {
		t.Errorf("At(0,0) = %g, want 3", got)
	}
	if got := m.At(1, 2); got != 4 {
		t.Errorf("At(1,2) = %g, want 4", got)
	}
	if got := m.At(2, 1); got != 0 {
		t.Errorf("At(2,1) = %g, want 0 (raw Add does not symmetrize)", got)
	}
}

func TestAddConductanceStamp(t *testing.T) {
	b := NewBuilder(2)
	b.AddConductance(0, 1, 2.5)
	m := b.Compress()
	want := [][]float64{{2.5, -2.5}, {-2.5, 2.5}}
	d := m.Dense()
	for i := range want {
		for j := range want[i] {
			if d[i][j] != want[i][j] {
				t.Errorf("entry (%d,%d) = %g, want %g", i, j, d[i][j], want[i][j])
			}
		}
	}
	if !m.IsSymmetric(0) {
		t.Error("conductance stamp must be symmetric")
	}
}

func TestAddToGroundOnlyDiagonal(t *testing.T) {
	b := NewBuilder(2)
	b.AddToGround(1, 4)
	m := b.Compress()
	if m.NNZ() != 1 || m.At(1, 1) != 4 {
		t.Errorf("ground stamp wrong: nnz=%d At(1,1)=%g", m.NNZ(), m.At(1, 1))
	}
}

func TestZeroValueStampsSkipped(t *testing.T) {
	b := NewBuilder(2)
	b.Add(0, 1, 0)
	if b.NNZStamps() != 0 {
		t.Error("zero stamp should be dropped")
	}
}

func TestAddOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("want panic on out-of-range Add")
		}
	}()
	NewBuilder(2).Add(0, 2, 1)
}

func TestMulVecAgainstDense(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(12)
		b := NewBuilder(n)
		for k := 0; k < n*3; k++ {
			b.Add(rng.Intn(n), rng.Intn(n), rng.NormFloat64())
		}
		m := b.Compress()
		d := m.Dense()
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		got := make([]float64, n)
		m.MulVec(got, x)
		for i := 0; i < n; i++ {
			var want float64
			for j := 0; j < n; j++ {
				want += d[i][j] * x[j]
			}
			if math.Abs(got[i]-want) > 1e-10 {
				t.Fatalf("trial %d: y[%d] = %g, want %g", trial, i, got[i], want)
			}
		}
	}
}

func TestMulVecDimensionPanics(t *testing.T) {
	m := NewBuilder(3).Compress()
	defer func() {
		if recover() == nil {
			t.Error("want panic on dimension mismatch")
		}
	}()
	m.MulVec(make([]float64, 2), make([]float64, 3))
}

func TestDiag(t *testing.T) {
	b := NewBuilder(3)
	b.Add(0, 0, 2)
	b.Add(2, 2, 7)
	b.Add(0, 1, 9)
	d := b.Compress().Diag()
	want := []float64{2, 0, 7}
	for i := range want {
		if d[i] != want[i] {
			t.Errorf("diag[%d] = %g, want %g", i, d[i], want[i])
		}
	}
}

// Property: a matrix assembled purely out of AddConductance/AddToGround
// stamps is symmetric and weakly diagonally dominant with non-negative
// diagonal — the structure CG relies on.
func TestConductanceAssemblyProperties(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + int(nRaw)%20
		b := NewBuilder(n)
		for k := 0; k < 4*n; k++ {
			i, j := rng.Intn(n), rng.Intn(n)
			if i == j {
				b.AddToGround(i, rng.Float64()+0.01)
			} else {
				b.AddConductance(i, j, rng.Float64()+0.01)
			}
		}
		m := b.Compress()
		if !m.IsSymmetric(1e-12) {
			return false
		}
		for i := 0; i < n; i++ {
			var off, diag float64
			for p := m.RowPtr[i]; p < m.RowPtr[i+1]; p++ {
				if int(m.Col[p]) == i {
					diag = m.Val[p]
				} else {
					off += math.Abs(m.Val[p])
				}
			}
			if diag < off-1e-12 || diag < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestRowPtrConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	b := NewBuilder(30)
	for k := 0; k < 500; k++ {
		b.AddConductance(rng.Intn(30), rng.Intn(30), rng.Float64())
	}
	m := b.Compress()
	if int(m.RowPtr[m.N]) != m.NNZ() {
		t.Fatalf("RowPtr[N] = %d, want NNZ %d", m.RowPtr[m.N], m.NNZ())
	}
	for i := 0; i < m.N; i++ {
		if m.RowPtr[i] > m.RowPtr[i+1] {
			t.Fatalf("RowPtr not monotone at %d", i)
		}
		// Columns sorted within row.
		for p := m.RowPtr[i] + 1; p < m.RowPtr[i+1]; p++ {
			if m.Col[p-1] >= m.Col[p] {
				t.Fatalf("row %d columns not strictly increasing", i)
			}
		}
	}
}

func TestMulVecParMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	b := NewBuilder(500)
	for i := 0; i < 500; i++ {
		b.AddToGround(i, 0.1+rng.Float64())
	}
	for k := 0; k < 2000; k++ {
		i, j := rng.Intn(500), rng.Intn(500)
		if i != j {
			b.AddConductance(i, j, rng.Float64())
		}
	}
	m := b.Compress()
	x := make([]float64, m.N)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	want := make([]float64, m.N)
	m.MulVec(want, x)
	for _, workers := range []int{1, 2, 8} {
		got := make([]float64, m.N)
		m.MulVecPar(got, x, workers, 64)
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: y[%d] = %g, serial %g (must be bit-identical)", workers, i, got[i], want[i])
			}
		}
	}
}
