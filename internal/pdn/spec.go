// Package pdn specifies a complete 3D DRAM power-delivery design — the
// design and packaging knobs of the paper's Sections 3 and 4 — and computes
// the physical placements (TSV sites, C4 bump arrays, RDL presence, bond
// wire attach points) that the R-Mesh builder turns into a resistor
// network.
//
// One Spec captures: per-layer PDN metal usage, mounting style (stand-alone
// vs. on a logic die), PG TSV count/location/alignment, dedicated via-last
// TSVs, bonding style (F2B vs. F2F+B2B), RDL options, and backside wire
// bonding.
package pdn

import (
	"fmt"

	"pdn3d/internal/floorplan"
	"pdn3d/internal/tech"
	"pdn3d/internal/units"
)

// TSVLocation is the PG TSV placement style (paper §3.3, Table 8's TL).
type TSVLocation uint8

const (
	// CenterTSV groups all PG TSVs in the die center: the lowest-cost
	// option (no routing blockage on the logic die) but the highest IR.
	CenterTSV TSVLocation = iota
	// EdgeTSV places PG TSV columns along the left/right die edges,
	// shortening supply paths at high keep-out cost.
	EdgeTSV
	// DistributedTSV spreads PG TSVs between banks (HMC style).
	DistributedTSV
)

func (l TSVLocation) String() string {
	switch l {
	case CenterTSV:
		return "C"
	case EdgeTSV:
		return "E"
	case DistributedTSV:
		return "D"
	default:
		return fmt.Sprintf("TSVLocation(%d)", uint8(l))
	}
}

// Bonding is the die stacking style (paper §4.2).
type Bonding uint8

const (
	// F2B is conventional face-to-back stacking: every inter-die
	// interface passes through PG TSVs.
	F2B Bonding = iota
	// F2F flips alternate dies so dies (1,2) and (3,4) bond face-to-face
	// with dense via carpets (sharing their PDNs), while pairs connect
	// back-to-back through TSVs.
	F2F
)

func (b Bonding) String() string {
	if b == F2F {
		return "F2F"
	}
	return "F2B"
}

// RDLOption selects redistribution-layer insertion (paper §3.3).
type RDLOption uint8

const (
	// RDLNone uses no redistribution layer.
	RDLNone RDLOption = iota
	// RDLInterface inserts one thick RDL between the supply source
	// (package or logic die) and the bottom DRAM die; the supply lands in
	// the center and the RDL reroutes laterally to the DRAM TSV sites.
	RDLInterface
	// RDLAll adds a backside RDL to every DRAM die.
	RDLAll
)

func (r RDLOption) String() string {
	switch r {
	case RDLNone:
		return "none"
	case RDLInterface:
		return "interface"
	case RDLAll:
		return "all"
	default:
		return fmt.Sprintf("RDLOption(%d)", uint8(r))
	}
}

// Spec is a complete 3D DRAM PDN design.
type Spec struct {
	// Name labels the design in reports.
	Name string

	// NumDRAM is the DRAM die count (4 in all paper benchmarks).
	NumDRAM int
	// DRAM is the (identical) DRAM die floorplan.
	DRAM *floorplan.Floorplan
	// DRAMTech is the DRAM process/packaging technology.
	DRAMTech *tech.Technology
	// Usage maps DRAM PDN layer name to the VDD area fraction, e.g.
	// {"M2": 0.10, "M3": 0.20} for the paper's baseline.
	Usage map[string]float64

	// OnLogic mounts the DRAM stack on a logic die (on-chip) instead of
	// directly on the package (off-chip / stand-alone).
	OnLogic bool
	// Logic is the host logic floorplan (required when OnLogic).
	Logic *floorplan.Floorplan
	// LogicTech is the logic process technology.
	LogicTech *tech.Technology
	// LogicUsage maps logic PDN layer names to VDD usage.
	LogicUsage map[string]float64

	// Bonding selects F2B or F2F+B2B stacking.
	Bonding Bonding
	// TSVStyle is the PG TSV placement style.
	TSVStyle TSVLocation
	// TSVCount is the PG TSV count per inter-die interface.
	TSVCount int
	// AlignTSV snaps on-chip TSV landings to the nearest C4 bump,
	// eliminating the lateral misalignment detour through the logic die
	// (paper §3.2). Ignored off-chip, where the package substrate routes
	// the bumps under the TSVs anyway.
	AlignTSV bool
	// DedicatedTSV adds via-last power TSVs through the logic die that
	// feed the DRAM stack directly from the package, decoupling the two
	// PDNs (paper §4.1). Only meaningful when OnLogic.
	DedicatedTSV bool
	// RDL selects redistribution-layer insertion.
	RDL RDLOption
	// WireBond adds backside bond wires from every DRAM die edge to the
	// package supply (paper §4.1).
	WireBond bool
	// WiresPerDie is the bond wire count per die (split over the left and
	// right edges). Zero selects the default of 8.
	WiresPerDie int

	// FailedTSVs marks PG TSV indices (into TSVSites) as failed opens:
	// the R-Mesh omits the whole via stack at those sites, including the
	// supply landing, modelling manufacturing or wear-out faults for
	// resilience studies. Must leave at least one TSV alive.
	FailedTSVs map[int]bool

	// MeshPitch is the R-Mesh node pitch in mm. Zero selects 0.2.
	MeshPitch float64
}

// DefaultWiresPerDie is used when Spec.WiresPerDie is zero.
const DefaultWiresPerDie = 8

// DefaultMeshPitch is used when Spec.MeshPitch is zero.
const DefaultMeshPitch = 0.2

// EffWiresPerDie returns the effective bond wire count per die.
func (s *Spec) EffWiresPerDie() int {
	if s.WiresPerDie > 0 {
		return s.WiresPerDie
	}
	return DefaultWiresPerDie
}

// EffMeshPitch returns the effective mesh pitch.
func (s *Spec) EffMeshPitch() float64 {
	if s.MeshPitch > 0 {
		return s.MeshPitch
	}
	return DefaultMeshPitch
}

// Validate checks the specification for completeness and consistency.
func (s *Spec) Validate() error {
	if s.NumDRAM <= 0 {
		return fmt.Errorf("pdn %s: NumDRAM %d must be positive", s.Name, s.NumDRAM)
	}
	if s.Bonding == F2F && s.NumDRAM%2 != 0 {
		return fmt.Errorf("pdn %s: F2F bonding needs an even die count, got %d", s.Name, s.NumDRAM)
	}
	if s.DRAM == nil || s.DRAMTech == nil {
		return fmt.Errorf("pdn %s: DRAM floorplan and technology required", s.Name)
	}
	if err := s.DRAMTech.Validate(); err != nil {
		return err
	}
	if len(s.Usage) == 0 {
		return fmt.Errorf("pdn %s: no DRAM PDN layer usage", s.Name)
	}
	for name, u := range s.Usage {
		l, err := s.DRAMTech.Layer(name)
		if err != nil {
			return fmt.Errorf("pdn %s: %v", s.Name, err)
		}
		if u <= 0 || u > l.MaxUsage+1e-9 {
			return fmt.Errorf("pdn %s: layer %s usage %g out of (0, %g]", s.Name, name, u, l.MaxUsage)
		}
	}
	if s.OnLogic {
		if s.Logic == nil || s.LogicTech == nil {
			return fmt.Errorf("pdn %s: on-chip design needs logic floorplan and technology", s.Name)
		}
		if err := s.LogicTech.Validate(); err != nil {
			return err
		}
		if len(s.LogicUsage) == 0 {
			return fmt.Errorf("pdn %s: no logic PDN layer usage", s.Name)
		}
		for name, u := range s.LogicUsage {
			l, err := s.LogicTech.Layer(name)
			if err != nil {
				return fmt.Errorf("pdn %s: %v", s.Name, err)
			}
			if u <= 0 || u > l.MaxUsage+1e-9 {
				return fmt.Errorf("pdn %s: logic layer %s usage %g out of (0, %g]", s.Name, name, u, l.MaxUsage)
			}
		}
		if !units.SameValue(s.DRAMTech.VDD, s.LogicTech.VDD) {
			return fmt.Errorf("pdn %s: coupled logic and DRAM PDNs need equal VDD (%g vs %g)",
				s.Name, s.LogicTech.VDD, s.DRAMTech.VDD)
		}
		logicArea := s.Logic.Outline
		dramArea := s.DRAM.Outline
		if dramArea.W() > logicArea.W()+1e-9 || dramArea.H() > logicArea.H()+1e-9 {
			return fmt.Errorf("pdn %s: DRAM die %v larger than host logic die %v", s.Name, dramArea, logicArea)
		}
	} else if s.DedicatedTSV {
		return fmt.Errorf("pdn %s: dedicated TSVs only apply to on-chip designs", s.Name)
	}
	if s.TSVCount < 1 {
		return fmt.Errorf("pdn %s: TSV count %d must be >= 1", s.Name, s.TSVCount)
	}
	if s.TSVStyle > DistributedTSV {
		return fmt.Errorf("pdn %s: unknown TSV style %d", s.Name, s.TSVStyle)
	}
	if s.RDL > RDLAll {
		return fmt.Errorf("pdn %s: unknown RDL option %d", s.Name, s.RDL)
	}
	if s.EffMeshPitch() <= 0 || s.EffMeshPitch() > s.DRAM.Outline.W()/4 {
		return fmt.Errorf("pdn %s: mesh pitch %g unreasonable for die width %g",
			s.Name, s.EffMeshPitch(), s.DRAM.Outline.W())
	}
	if len(s.FailedTSVs) > 0 {
		alive := s.TSVCount
		for idx := range s.FailedTSVs {
			if idx < 0 || idx >= s.TSVCount {
				return fmt.Errorf("pdn %s: failed TSV index %d out of range [0,%d)", s.Name, idx, s.TSVCount)
			}
			alive--
		}
		if alive < 1 {
			return fmt.Errorf("pdn %s: all %d TSVs marked failed", s.Name, s.TSVCount)
		}
	}
	return nil
}

// Clone returns a deep-enough copy for mutation of the option fields
// (floorplans and technologies stay shared — they are immutable by
// convention).
func (s *Spec) Clone() *Spec {
	c := *s
	c.Usage = make(map[string]float64, len(s.Usage))
	for k, v := range s.Usage {
		c.Usage[k] = v
	}
	if s.LogicUsage != nil {
		c.LogicUsage = make(map[string]float64, len(s.LogicUsage))
		for k, v := range s.LogicUsage {
			c.LogicUsage[k] = v
		}
	}
	if s.FailedTSVs != nil {
		c.FailedTSVs = make(map[int]bool, len(s.FailedTSVs))
		for k, v := range s.FailedTSVs {
			c.FailedTSVs[k] = v
		}
	}
	return &c
}

// F2FPartner returns the F2F pair partner of die d (0-based), or -1 for
// F2B designs.
func (s *Spec) F2FPartner(d int) int {
	if s.Bonding != F2F {
		return -1
	}
	if d%2 == 0 {
		return d + 1
	}
	return d - 1
}

// SupplyLandsCenter reports whether the supply current enters the stack
// bottom in the die center. That happens when the TSV style is center, or
// when an interface RDL reroutes a center landing to edge/distributed TSVs
// (its whole purpose, paper §3.3 options (c)/(d)).
func (s *Spec) SupplyLandsCenter() bool {
	return s.TSVStyle == CenterTSV || s.RDL == RDLInterface
}
