package pdn

import (
	"math"

	"pdn3d/internal/geom"
)

// edgeInset is the distance from the die edge to TSV/pad columns, leaving
// room for keep-out zones and the seal ring.
const edgeInset = 0.15

// TSVSites returns the PG TSV positions on a DRAM die for the spec's style
// and count. All inter-die interfaces use the same pattern (the dies are
// identical, paper §4.1).
func (s *Spec) TSVSites() []geom.Point {
	return tsvSites(s.DRAM.Outline, s.TSVStyle, s.TSVCount, s.DRAMTech.PGTSV.Pitch)
}

func tsvSites(outline geom.Rect, style TSVLocation, count int, pitch float64) []geom.Point {
	switch style {
	case EdgeTSV:
		return edgeSites(outline, count, pitch)
	case CenterTSV:
		return centerCluster(outline, count, pitch)
	default:
		return uniformSpread(outline.Inset(edgeInset*2), count)
	}
}

// edgeBandFrac is the fraction of the die height the edge TSV columns
// span, centered on the peripheral row: edge TSVs cluster next to the
// center pad row's ends, minimizing pad-to-TSV routing (the arrangement of
// the Kang et al. 8 Gb 3D DDR3 design the paper cites).
const edgeBandFrac = 0.85

// edgeSites splits count sites over the left and right die edges, stacking
// extra columns inward when one column per side cannot hold them at the
// minimum pitch.
func edgeSites(outline geom.Rect, count int, pitch float64) []geom.Point {
	if count <= 0 {
		return nil
	}
	nLeft := (count + 1) / 2
	nRight := count / 2
	span := outline.H() * edgeBandFrac
	y0 := outline.Center().Y - span/2
	maxPerCol := int(span/pitch) + 1
	var out []geom.Point
	side := func(n int, left bool) {
		cols := (n + maxPerCol - 1) / maxPerCol
		if cols == 0 {
			return
		}
		base := n / cols
		extra := n % cols
		for c := 0; c < cols; c++ {
			inCol := base
			if c < extra {
				inCol++
			}
			x := outline.X0 + edgeInset + float64(c)*pitch
			if !left {
				x = outline.X1 - edgeInset - float64(c)*pitch
			}
			for k := 0; k < inCol; k++ {
				y := y0
				if inCol > 1 {
					y += span * float64(k) / float64(inCol-1)
				} else {
					y += span / 2
				}
				out = append(out, geom.Pt(x, y))
			}
		}
	}
	side(nLeft, true)
	side(nRight, false)
	return out
}

// centerBandFrac is the fraction of the die width the center TSV band
// spans: center TSVs sit in rows inside the center peripheral strip (the
// JEDEC Wide I/O bump field has the same shape), not in a point cluster.
const centerBandFrac = 0.20

// centerCluster places count sites in a horizontal band across the die
// center: as many rows as needed at the minimum TSV pitch, spanning
// centerBandFrac of the die width.
func centerCluster(outline geom.Rect, count int, pitch float64) []geom.Point {
	if count <= 0 {
		return nil
	}
	bandW := outline.W() * centerBandFrac
	perRow := int(bandW/pitch) + 1
	if perRow > count {
		perRow = count
	}
	rows := (count + perRow - 1) / perRow
	c := outline.Center()
	out := make([]geom.Point, 0, count)
	for k := 0; k < count; k++ {
		i, j := k%perRow, k/perRow
		inRow := perRow
		if j == rows-1 && count%perRow != 0 {
			inRow = count % perRow
		}
		var x float64
		if inRow > 1 {
			x = c.X - bandW/2 + bandW*float64(i)/float64(inRow-1)
		} else {
			x = c.X
		}
		y := c.Y + (float64(j)-float64(rows-1)/2)*pitch
		out = append(out, geom.Pt(x, y))
	}
	return out
}

// uniformSpread distributes count sites in a near-uniform grid over r,
// matching the rect's aspect ratio.
func uniformSpread(r geom.Rect, count int) []geom.Point {
	if count <= 0 || r.Empty() {
		return nil
	}
	aspect := r.W() / r.H()
	cols := int(math.Round(math.Sqrt(float64(count) * aspect)))
	if cols < 1 {
		cols = 1
	}
	if cols > count {
		cols = count
	}
	rows := (count + cols - 1) / cols
	out := make([]geom.Point, 0, count)
	for k := 0; k < count; k++ {
		i, j := k%cols, k/cols
		var x, y float64
		if cols > 1 {
			x = r.X0 + r.W()*float64(i)/float64(cols-1)
		} else {
			x = r.Center().X
		}
		if rows > 1 {
			y = r.Y0 + r.H()*float64(j)/float64(rows-1)
		} else {
			y = r.Center().Y
		}
		out = append(out, geom.Pt(x, y))
	}
	return out
}

// C4Sites returns the package bump array under the stack's bottom die (the
// logic die for on-chip designs, the bottom DRAM die otherwise).
func (s *Spec) C4Sites() []geom.Point {
	outline := s.DRAM.Outline
	pitch := s.DRAMTech.C4.Pitch
	if s.OnLogic {
		outline = s.Logic.Outline
		pitch = s.LogicTech.C4.Pitch
	}
	r := outline.Inset(edgeInset)
	nx := int(r.W()/pitch) + 1
	ny := int(r.H()/pitch) + 1
	out := make([]geom.Point, 0, nx*ny)
	for j := 0; j < ny; j++ {
		for i := 0; i < nx; i++ {
			out = append(out, geom.Pt(r.X0+float64(i)*pitch, r.Y0+float64(j)*pitch))
		}
	}
	return out
}

// LandingSites returns where the supply current enters the bottom of the
// DRAM stack, together with each site's lateral misalignment distance to
// the nearest package bump (zero when alignment applies).
//
// Off-chip, the package substrate routes bumps freely under the TSV
// pattern, so the landing is the TSV pattern with zero misalignment. An
// interface RDL forces a center landing regardless of TSV style — the RDL
// then reroutes laterally (paper Figure 6 (c)/(d)). On-chip designs without
// AlignTSV place landings at the uniform TSV pitch and pay the detour to
// the nearest C4 through the logic die's local metal (paper §3.2).
func (s *Spec) LandingSites() []LandingSite {
	var pts []geom.Point
	if s.RDL == RDLInterface {
		pts = centerCluster(s.DRAM.Outline, s.TSVCount, s.DRAMTech.PGTSV.Pitch)
	} else {
		pts = s.TSVSites()
	}
	out := make([]LandingSite, len(pts))
	if !s.OnLogic {
		for i, p := range pts {
			out[i] = LandingSite{Pos: p}
		}
		return out
	}
	// On-chip: the DRAM die is centered on the logic die; translate
	// landing points into logic coordinates.
	off := s.logicOffset()
	c4 := s.C4Sites()
	for i, p := range pts {
		lp := p.Add(off)
		nearest := nearestPoint(lp, c4)
		if s.AlignTSV {
			out[i] = LandingSite{Pos: nearest}
		} else {
			out[i] = LandingSite{Pos: lp, Misalign: lp.Dist(nearest)}
		}
	}
	return out
}

// RDLEntrySites returns, in DRAM-die coordinates, the points where the
// supply lands on the interface RDL (a center cluster: the RDL's purpose is
// rerouting a center landing out to the TSV pattern). Its order matches
// LandingSites when RDL == RDLInterface.
func (s *Spec) RDLEntrySites() []geom.Point {
	return centerCluster(s.DRAM.Outline, s.TSVCount, s.DRAMTech.PGTSV.Pitch)
}

// LandingSite is one supply entry point at the bottom of the DRAM stack.
type LandingSite struct {
	// Pos is the site position in bottom-die (logic or package)
	// coordinates.
	Pos geom.Point
	// Misalign is the lateral detour distance in mm from the TSV landing
	// to the nearest C4 bump; current covers it through the logic die's
	// local metal.
	Misalign float64
}

// logicOffset translates DRAM-die coordinates into logic-die coordinates
// (the DRAM stack sits centered on the host die).
func (s *Spec) logicOffset() geom.Point {
	lc := s.Logic.Outline.Center()
	dc := s.DRAM.Outline.Center()
	return lc.Sub(dc)
}

// DRAMOnLogic converts a point in DRAM-die coordinates to logic-die
// coordinates for on-chip designs.
func (s *Spec) DRAMOnLogic(p geom.Point) geom.Point {
	return p.Add(s.logicOffset())
}

func nearestPoint(p geom.Point, pts []geom.Point) geom.Point {
	best := pts[0]
	bd := p.Dist(best)
	for _, q := range pts[1:] {
		if d := p.Dist(q); d < bd {
			bd, best = d, q
		}
	}
	return best
}

// WireSites returns the bond-wire pad positions along the left and right
// edges of a DRAM die (backside pads, paper §4.1).
func (s *Spec) WireSites() []geom.Point {
	n := s.EffWiresPerDie()
	if n <= 0 {
		return nil
	}
	o := s.DRAM.Outline
	nLeft := (n + 1) / 2
	nRight := n / 2
	out := make([]geom.Point, 0, n)
	place := func(cnt int, x float64) {
		for k := 0; k < cnt; k++ {
			y := o.Y0 + edgeInset + (o.H()-2*edgeInset)*(float64(k)+0.5)/float64(cnt)
			out = append(out, geom.Pt(x, y))
		}
	}
	place(nLeft, o.X0+edgeInset/2)
	place(nRight, o.X1-edgeInset/2)
	return out
}

// WireLength returns the bond-wire length in mm for die d (0-based from
// the stack bottom): lower dies sit closer to the substrate, so their
// wires are shorter; each die adds roughly 50 µm of stack height, and the
// lateral run to the package bond finger dominates.
func (s *Spec) WireLength(die int) float64 {
	const lateral = 1.2  // mm to the bond finger
	const perDie = 0.05  // mm of stack height per die
	const baseRise = 0.3 // mm die-attach and loop height
	return lateral + baseRise + perDie*float64(die+1)
}

// DedicatedSites returns the via-last dedicated TSV positions (in logic-die
// coordinates) that feed the DRAM stack directly from the package. They
// mirror the DRAM TSV pattern so each dedicated TSV lands under a DRAM TSV
// stack. Returns nil when the spec has no dedicated TSVs.
func (s *Spec) DedicatedSites() []geom.Point {
	if !s.DedicatedTSV || !s.OnLogic {
		return nil
	}
	pts := s.TSVSites()
	out := make([]geom.Point, len(pts))
	for i, p := range pts {
		out[i] = s.DRAMOnLogic(p)
	}
	return out
}
