package pdn

import (
	"math"
	"strings"
	"testing"

	"pdn3d/internal/floorplan"
	"pdn3d/internal/geom"
	"pdn3d/internal/tech"
)

func testSpec(t *testing.T) *Spec {
	t.Helper()
	fp, err := floorplan.DDR3Die(floorplan.DefaultDDR3())
	if err != nil {
		t.Fatal(err)
	}
	return &Spec{
		Name:     "test",
		NumDRAM:  4,
		DRAM:     fp,
		DRAMTech: tech.DRAM20(1.5),
		Usage:    map[string]float64{"M2": 0.10, "M3": 0.20},
		Bonding:  F2B,
		TSVStyle: EdgeTSV,
		TSVCount: 33,
	}
}

func withLogic(t *testing.T, s *Spec) *Spec {
	t.Helper()
	lf, err := floorplan.T2Die(floorplan.DefaultT2())
	if err != nil {
		t.Fatal(err)
	}
	s.OnLogic = true
	s.Logic = lf
	s.LogicTech = tech.Logic28(1.5)
	s.LogicUsage = map[string]float64{"M1": 0.10, "M6": 0.30}
	return s
}

func TestSpecValidate(t *testing.T) {
	if err := testSpec(t).Validate(); err != nil {
		t.Fatalf("valid off-chip spec rejected: %v", err)
	}
	if err := withLogic(t, testSpec(t)).Validate(); err != nil {
		t.Fatalf("valid on-chip spec rejected: %v", err)
	}
}

func TestSpecValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Spec)
		want string
	}{
		{"zero dies", func(s *Spec) { s.NumDRAM = 0 }, "NumDRAM"},
		{"odd F2F", func(s *Spec) { s.NumDRAM = 3; s.Bonding = F2F }, "even die count"},
		{"no usage", func(s *Spec) { s.Usage = nil }, "usage"},
		{"unknown layer", func(s *Spec) { s.Usage = map[string]float64{"M9": 0.1} }, "M9"},
		{"usage over cap", func(s *Spec) { s.Usage["M2"] = 0.9 }, "out of"},
		{"zero TSVs", func(s *Spec) { s.TSVCount = 0 }, "TSV count"},
		{"dedicated off-chip", func(s *Spec) { s.DedicatedTSV = true }, "dedicated"},
		{"huge pitch", func(s *Spec) { s.MeshPitch = 5 }, "mesh pitch"},
	}
	for _, c := range cases {
		s := testSpec(t)
		c.mut(s)
		err := s.Validate()
		if err == nil {
			t.Errorf("%s: want error", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}

func TestOnChipValidateRejects(t *testing.T) {
	s := withLogic(t, testSpec(t))
	s.LogicTech = tech.Logic28(1.0) // VDD mismatch with 1.5 V DRAM
	if err := s.Validate(); err == nil || !strings.Contains(err.Error(), "VDD") {
		t.Errorf("VDD mismatch: err = %v", err)
	}
	s2 := withLogic(t, testSpec(t))
	s2.LogicUsage = nil
	if err := s2.Validate(); err == nil {
		t.Error("missing logic usage: want error")
	}
}

func TestTSVSitesCountAndBounds(t *testing.T) {
	for _, style := range []TSVLocation{EdgeTSV, CenterTSV, DistributedTSV} {
		for _, count := range []int{1, 15, 33, 160, 480} {
			s := testSpec(t)
			s.TSVStyle = style
			s.TSVCount = count
			sites := s.TSVSites()
			if len(sites) != count {
				t.Errorf("style %v count %d: got %d sites", style, count, len(sites))
			}
			for _, p := range sites {
				if !s.DRAM.Outline.ContainsClosed(p) {
					t.Errorf("style %v: site %v outside die %v", style, p, s.DRAM.Outline)
				}
			}
		}
	}
}

func TestEdgeSitesHugTheEdges(t *testing.T) {
	s := testSpec(t)
	s.TSVStyle = EdgeTSV
	s.TSVCount = 40
	mid := s.DRAM.Outline.Center().X
	for _, p := range s.TSVSites() {
		dEdge := math.Min(p.X-s.DRAM.Outline.X0, s.DRAM.Outline.X1-p.X)
		if dEdge > 1.0 {
			t.Errorf("edge site %v is %.2f mm from the nearest edge", p, dEdge)
		}
		if math.Abs(p.X-mid) < 2.0 {
			t.Errorf("edge site %v too close to die center", p)
		}
	}
}

func TestCenterSitesCluster(t *testing.T) {
	s := testSpec(t)
	s.TSVStyle = CenterTSV
	s.TSVCount = 64
	c := s.DRAM.Outline.Center()
	for _, p := range s.TSVSites() {
		if p.Dist(c) > 1.0 {
			t.Errorf("center site %v is %.2f mm from center", p, p.Dist(c))
		}
	}
}

func TestDistributedSitesSpread(t *testing.T) {
	s := testSpec(t)
	s.TSVStyle = DistributedTSV
	s.TSVCount = 160
	// Quadrant occupancy: all four quadrants must hold sites.
	c := s.DRAM.Outline.Center()
	var q [4]int
	for _, p := range s.TSVSites() {
		idx := 0
		if p.X > c.X {
			idx |= 1
		}
		if p.Y > c.Y {
			idx |= 2
		}
		q[idx]++
	}
	for i, n := range q {
		if n == 0 {
			t.Errorf("quadrant %d has no distributed TSVs", i)
		}
	}
}

func TestTSVSitesDistinct(t *testing.T) {
	for _, style := range []TSVLocation{EdgeTSV, CenterTSV, DistributedTSV} {
		s := testSpec(t)
		s.TSVStyle = style
		s.TSVCount = 100
		seen := map[geom.Point]bool{}
		for _, p := range s.TSVSites() {
			if seen[p] {
				t.Errorf("style %v: duplicate site %v", style, p)
			}
			seen[p] = true
		}
	}
}

func TestC4SitesCoverBottomDie(t *testing.T) {
	s := testSpec(t)
	c4 := s.C4Sites()
	if len(c4) < 100 {
		t.Fatalf("only %d C4 bumps for a 6.8x6.7 die", len(c4))
	}
	on := withLogic(t, testSpec(t))
	c4on := on.C4Sites()
	if len(c4on) < 100 {
		t.Errorf("only %d C4 bumps for a 9.0x8.0 logic die", len(c4on))
	}
	for _, p := range c4on {
		if !on.Logic.Outline.ContainsClosed(p) {
			t.Errorf("C4 %v outside logic die", p)
		}
	}
}

func TestLandingOffChipIsAligned(t *testing.T) {
	s := testSpec(t)
	for _, l := range s.LandingSites() {
		if l.Misalign != 0 {
			t.Errorf("off-chip landing %v has misalignment %g, want 0 (substrate routes)", l.Pos, l.Misalign)
		}
	}
}

func TestLandingOnChipMisalignment(t *testing.T) {
	mis := withLogic(t, testSpec(t))
	var maxMis float64
	for _, l := range mis.LandingSites() {
		if l.Misalign < 0 {
			t.Fatalf("negative misalignment %g", l.Misalign)
		}
		if l.Misalign > maxMis {
			maxMis = l.Misalign
		}
	}
	if maxMis == 0 {
		t.Error("unaligned on-chip design should show some misalignment")
	}
	if maxMis > mis.LogicTech.C4.Pitch {
		t.Errorf("misalignment %g exceeds C4 pitch %g", maxMis, mis.LogicTech.C4.Pitch)
	}

	al := withLogic(t, testSpec(t))
	al.AlignTSV = true
	for _, l := range al.LandingSites() {
		if l.Misalign != 0 {
			t.Errorf("aligned landing still misaligned by %g", l.Misalign)
		}
	}
}

func TestLandingCenterWithInterfaceRDL(t *testing.T) {
	s := testSpec(t)
	s.TSVStyle = EdgeTSV
	s.RDL = RDLInterface
	if !s.SupplyLandsCenter() {
		t.Fatal("interface RDL must force a center landing")
	}
	c := s.DRAM.Outline.Center()
	for _, l := range s.LandingSites() {
		if l.Pos.Dist(c) > 1.0 {
			t.Errorf("RDL-interface landing %v far from center", l.Pos)
		}
	}
}

func TestWireSites(t *testing.T) {
	s := testSpec(t)
	sites := s.WireSites()
	if len(sites) != DefaultWiresPerDie {
		t.Fatalf("wires = %d, want default %d", len(sites), DefaultWiresPerDie)
	}
	for _, p := range sites {
		dEdge := math.Min(p.X-s.DRAM.Outline.X0, s.DRAM.Outline.X1-p.X)
		if dEdge > 0.2 {
			t.Errorf("wire pad %v not at die edge", p)
		}
	}
	s.WiresPerDie = 5
	if got := len(s.WireSites()); got != 5 {
		t.Errorf("wires = %d, want 5", got)
	}
}

func TestWireLengthGrowsUpTheStack(t *testing.T) {
	s := testSpec(t)
	if !(s.WireLength(0) < s.WireLength(3)) {
		t.Error("upper-die wires should be longer")
	}
}

func TestDedicatedSites(t *testing.T) {
	s := testSpec(t)
	if got := s.DedicatedSites(); got != nil {
		t.Error("off-chip spec must have no dedicated sites")
	}
	on := withLogic(t, testSpec(t))
	on.DedicatedTSV = true
	sites := on.DedicatedSites()
	if len(sites) != on.TSVCount {
		t.Fatalf("dedicated sites = %d, want %d", len(sites), on.TSVCount)
	}
	for _, p := range sites {
		if !on.Logic.Outline.ContainsClosed(p) {
			t.Errorf("dedicated site %v outside logic die", p)
		}
	}
}

func TestF2FPartner(t *testing.T) {
	s := testSpec(t)
	if s.F2FPartner(0) != -1 {
		t.Error("F2B design has no F2F partner")
	}
	s.Bonding = F2F
	wants := map[int]int{0: 1, 1: 0, 2: 3, 3: 2}
	for d, w := range wants {
		if got := s.F2FPartner(d); got != w {
			t.Errorf("partner(%d) = %d, want %d", d, got, w)
		}
	}
}

func TestCloneIsolation(t *testing.T) {
	s := withLogic(t, testSpec(t))
	c := s.Clone()
	c.Usage["M2"] = 0.2
	c.LogicUsage["M1"] = 0.25
	c.TSVCount = 99
	if s.Usage["M2"] != 0.10 || s.LogicUsage["M1"] != 0.10 || s.TSVCount != 33 {
		t.Error("Clone leaked mutations into the original")
	}
}

func TestStringers(t *testing.T) {
	if EdgeTSV.String() != "E" || CenterTSV.String() != "C" || DistributedTSV.String() != "D" {
		t.Error("TSVLocation strings")
	}
	if F2B.String() != "F2B" || F2F.String() != "F2F" {
		t.Error("Bonding strings")
	}
	if RDLNone.String() != "none" || RDLInterface.String() != "interface" || RDLAll.String() != "all" {
		t.Error("RDLOption strings")
	}
}
