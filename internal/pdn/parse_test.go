package pdn

import "testing"

func TestParseRoundTrips(t *testing.T) {
	for _, l := range []TSVLocation{CenterTSV, EdgeTSV, DistributedTSV} {
		got, err := ParseTSVLocation(l.String())
		if err != nil || got != l {
			t.Errorf("ParseTSVLocation(%q) = %v, %v", l.String(), got, err)
		}
	}
	for _, b := range []Bonding{F2B, F2F} {
		got, err := ParseBonding(b.String())
		if err != nil || got != b {
			t.Errorf("ParseBonding(%q) = %v, %v", b.String(), got, err)
		}
	}
	for _, r := range []RDLOption{RDLNone, RDLInterface, RDLAll} {
		got, err := ParseRDL(r.String())
		if err != nil || got != r {
			t.Errorf("ParseRDL(%q) = %v, %v", r.String(), got, err)
		}
	}
}

func TestParseCaseAndRejects(t *testing.T) {
	if got, err := ParseTSVLocation(" e "); err != nil || got != EdgeTSV {
		t.Errorf("ParseTSVLocation(\" e \") = %v, %v", got, err)
	}
	if got, err := ParseBonding("f2f"); err != nil || got != F2F {
		t.Errorf("ParseBonding(\"f2f\") = %v, %v", got, err)
	}
	if got, err := ParseRDL("Interface"); err != nil || got != RDLInterface {
		t.Errorf("ParseRDL(\"Interface\") = %v, %v", got, err)
	}
	for _, bad := range []string{"", "X", "F2X", "both"} {
		if _, err := ParseTSVLocation(bad); err == nil {
			t.Errorf("ParseTSVLocation(%q): want error", bad)
		}
		if _, err := ParseBonding(bad); err == nil {
			t.Errorf("ParseBonding(%q): want error", bad)
		}
		if _, err := ParseRDL(bad); err == nil {
			t.Errorf("ParseRDL(%q): want error", bad)
		}
	}
}
