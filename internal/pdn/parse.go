package pdn

import (
	"fmt"
	"strings"
)

// ParseTSVLocation parses a TSV placement style name ("C", "E", "D",
// case-insensitive), mirroring TSVLocation.String.
func ParseTSVLocation(s string) (TSVLocation, error) {
	switch strings.ToUpper(strings.TrimSpace(s)) {
	case "C":
		return CenterTSV, nil
	case "E":
		return EdgeTSV, nil
	case "D":
		return DistributedTSV, nil
	default:
		return 0, fmt.Errorf("pdn: unknown TSV style %q (want C, E, or D)", s)
	}
}

// ParseBonding parses a bonding style name ("F2B" or "F2F",
// case-insensitive), mirroring Bonding.String.
func ParseBonding(s string) (Bonding, error) {
	switch strings.ToUpper(strings.TrimSpace(s)) {
	case "F2B":
		return F2B, nil
	case "F2F":
		return F2F, nil
	default:
		return 0, fmt.Errorf("pdn: unknown bonding %q (want F2B or F2F)", s)
	}
}

// ParseRDL parses an RDL option name ("none", "interface", "all",
// case-insensitive), mirroring RDLOption.String.
func ParseRDL(s string) (RDLOption, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "none":
		return RDLNone, nil
	case "interface":
		return RDLInterface, nil
	case "all":
		return RDLAll, nil
	default:
		return 0, fmt.Errorf("pdn: unknown RDL option %q (want none, interface, or all)", s)
	}
}
