package obs

import (
	"expvar"
	"flag"
	"fmt"
	"os"
)

// CLIFlags carries the standard observability flags shared by the
// command-line tools: -stats, -metrics-out, and -pprof.
type CLIFlags struct {
	Stats      bool
	MetricsOut string
	PprofAddr  string
}

// BindFlags registers the observability flags on fs (usually
// flag.CommandLine) and returns the struct their values land in.
func BindFlags(fs *flag.FlagSet) *CLIFlags {
	f := &CLIFlags{}
	fs.BoolVar(&f.Stats, "stats", false, "print the run summary (spans + metrics) to stderr on exit")
	fs.StringVar(&f.MetricsOut, "metrics-out", "", "write the metrics snapshot as JSON to this file on exit")
	fs.StringVar(&f.PprofAddr, "pprof", "", "serve net/http/pprof and expvar on this address (e.g. localhost:6060)")
	return f
}

// Enabled reports whether any observability output was requested.
func (f *CLIFlags) Enabled() bool {
	return f.Stats || f.MetricsOut != "" || f.PprofAddr != ""
}

// Setup builds the run registry when any flag asks for one (nil
// otherwise — instrumented code paths treat a nil registry as disabled).
// With -pprof it also publishes the registry as the expvar "pdn3d"
// variable and starts the debug HTTP server; errlog receives any server
// failure. Call once per process.
func (f *CLIFlags) Setup(errlog func(format string, args ...interface{})) *Registry {
	if !f.Enabled() {
		return nil
	}
	r := NewRegistry()
	if f.PprofAddr != "" {
		expvar.Publish("pdn3d", r)
		ServeDebug(f.PprofAddr, errlog)
	}
	return r
}

// Finish emits the requested outputs: the JSON snapshot to -metrics-out
// and the human summary to stderr for -stats. Safe on a nil registry.
func (f *CLIFlags) Finish(r *Registry) error {
	if r == nil {
		return nil
	}
	if f.MetricsOut != "" {
		if err := os.WriteFile(f.MetricsOut, r.JSON(), 0o644); err != nil {
			return fmt.Errorf("obs: writing metrics: %w", err)
		}
	}
	if f.Stats {
		fmt.Fprint(os.Stderr, r.Summary())
	}
	return nil
}
