package obs

// Runtime-health sampling: a background poll of runtime/metrics into
// info gauges. Heap size, goroutine count, GC cycles, GC pause p99, and
// scheduler latency p99 are exactly the signals that separate "the solve
// is slow" from "the process is unhealthy" when reading /debug/solves —
// but every one of them depends on run conditions, so they are info
// gauges, excluded from Deterministic() snapshots by construction.

import (
	"runtime/metrics"
	"sync"
	"time"
)

// DefaultHealthInterval is the sampling period when the caller passes a
// non-positive interval to StartHealthSampler.
const DefaultHealthInterval = 5 * time.Second

// healthSamples maps the runtime/metrics names we poll onto registry
// gauge names. Histogram-kind samples are reduced to their p99 and
// reported in milliseconds.
var healthSamples = []struct {
	runtime string
	gauge   string
}{
	{"/memory/classes/heap/objects:bytes", "health.heap_bytes"},
	{"/sched/goroutines:goroutines", "health.goroutines"},
	{"/gc/cycles/total:gc-cycles", "health.gc_cycles"},
	{"/gc/pauses:seconds", "health.gc_pause_p99_ms"},
	{"/sched/latencies:seconds", "health.sched_latency_p99_ms"},
}

// StartHealthSampler polls runtime/metrics every interval into the
// registry's health.* info gauges and returns a stop function (safe to
// call more than once; it blocks until the sampler goroutine exits).
// The first sample is taken synchronously, so the gauges exist and hold
// real values before this returns. interval <= 0 selects
// DefaultHealthInterval. On a nil registry nothing starts and the stop
// function is a no-op.
func (r *Registry) StartHealthSampler(interval time.Duration) (stop func()) {
	if r == nil {
		return func() {}
	}
	if interval <= 0 {
		interval = DefaultHealthInterval
	}
	gauges := make([]*Gauge, len(healthSamples))
	samples := make([]metrics.Sample, len(healthSamples))
	for i, hs := range healthSamples {
		gauges[i] = r.InfoGauge(hs.gauge)
		samples[i].Name = hs.runtime
	}
	sampleHealth(samples, gauges)

	done := make(chan struct{})
	finished := make(chan struct{})
	//pdnlint:ignore rawgo the health sampler is process-lifetime background polling, not bounded analysis work; internal/par pools would block on it
	go func() {
		defer close(finished)
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-done:
				return
			case <-ticker.C:
				sampleHealth(samples, gauges)
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() { close(done) })
		<-finished
	}
}

// sampleHealth reads the runtime metrics and stores them into the
// paired gauges, reducing histogram kinds to p99 milliseconds.
func sampleHealth(samples []metrics.Sample, gauges []*Gauge) {
	metrics.Read(samples)
	for i := range samples {
		switch samples[i].Value.Kind() {
		case metrics.KindUint64:
			gauges[i].Set(float64(samples[i].Value.Uint64()))
		case metrics.KindFloat64:
			gauges[i].Set(samples[i].Value.Float64())
		case metrics.KindFloat64Histogram:
			gauges[i].Set(histP99(samples[i].Value.Float64Histogram()) * 1e3)
		}
	}
}

// histP99 returns the 99th-percentile upper bound of a runtime/metrics
// histogram in the metric's native unit (seconds for the ones we poll).
// Returns 0 for an empty histogram.
func histP99(h *metrics.Float64Histogram) float64 {
	if h == nil {
		return 0
	}
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	thresh := uint64(float64(total) * 0.99)
	if thresh < 1 {
		thresh = 1
	}
	var cum uint64
	for i, c := range h.Counts {
		cum += c
		if cum >= thresh {
			// Bucket i spans (Buckets[i], Buckets[i+1]]; report the upper
			// bound, falling back to the finite lower bound when the p99
			// lands in the +Inf overflow bucket.
			hi := h.Buckets[i+1]
			//pdnlint:ignore floateq exact bit tests: self-compare detects NaN, bound-compare detects a degenerate zero-width bucket
			if hi > 1e18 || hi != hi || hi == h.Buckets[i] {
				return h.Buckets[i]
			}
			return hi
		}
	}
	return h.Buckets[len(h.Buckets)-1]
}
