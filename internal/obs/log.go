package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"sync"
	"time"
)

// Log formats accepted by NewLogger. JSON emits one object per line
// ("JSON lines"); text emits logfmt-style key=value pairs. Both carry
// the same fields in the same order, so the two spellings of one event
// are mechanically convertible.
const (
	LogText = "text"
	LogJSON = "json"
)

// Field is one key/value pair on a structured log record. Values are
// rendered with encoding/json in JSON mode and fmt in text mode, so
// strings, numbers, and bools all round-trip.
type Field struct {
	Key   string
	Value interface{}
}

// F builds a Field.
func F(key string, value interface{}) Field { return Field{Key: key, Value: value} }

// Logger writes structured event records — one line per event — in
// either JSON or text format. It is the single log stream for a serving
// process: operational events (start, drain, shutdown) and per-request
// access records share it, so one pipeline ingests both. Safe for
// concurrent use; a nil *Logger discards everything.
type Logger struct {
	mu   sync.Mutex
	w    io.Writer
	json bool
}

// NewLogger builds a logger writing to w in the given format (LogJSON
// or LogText; "" selects text).
func NewLogger(w io.Writer, format string) (*Logger, error) {
	switch format {
	case LogJSON:
		return &Logger{w: w, json: true}, nil
	case LogText, "":
		return &Logger{w: w}, nil
	default:
		return nil, fmt.Errorf("obs: unknown log format %q (want %q or %q)", format, LogText, LogJSON)
	}
}

// Event writes one record: a wall-clock timestamp, the event name, and
// the fields in the given order. No-op on nil.
func (l *Logger) Event(event string, fields ...Field) {
	if l == nil {
		return
	}
	ts := now().UTC().Format(time.RFC3339Nano)
	var sb strings.Builder
	if l.json {
		sb.WriteString(`{"ts":`)
		writeJSONValue(&sb, ts)
		sb.WriteString(`,"event":`)
		writeJSONValue(&sb, event)
		for _, f := range fields {
			sb.WriteByte(',')
			writeJSONValue(&sb, f.Key)
			sb.WriteByte(':')
			writeJSONValue(&sb, f.Value)
		}
		sb.WriteString("}\n")
	} else {
		sb.WriteString("ts=")
		sb.WriteString(ts)
		sb.WriteString(" event=")
		sb.WriteString(textValue(event))
		for _, f := range fields {
			sb.WriteByte(' ')
			sb.WriteString(f.Key)
			sb.WriteByte('=')
			sb.WriteString(textValue(f.Value))
		}
		sb.WriteByte('\n')
	}
	l.mu.Lock()
	io.WriteString(l.w, sb.String())
	l.mu.Unlock()
}

// writeJSONValue marshals v; a value that cannot marshal (should not
// happen with the scalar fields loggers carry) degrades to its fmt
// spelling rather than dropping the record.
func writeJSONValue(sb *strings.Builder, v interface{}) {
	b, err := json.Marshal(v)
	if err != nil {
		b, _ = json.Marshal(fmt.Sprint(v))
	}
	sb.Write(b)
}

// textValue renders v for the text format, quoting anything with
// spaces, quotes, or '=' so records stay splittable on spaces.
func textValue(v interface{}) string {
	s := fmt.Sprint(v)
	if strings.ContainsAny(s, " \"=\t\n") || s == "" {
		return fmt.Sprintf("%q", s)
	}
	return s
}
