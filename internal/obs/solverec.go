package obs

// The solve flight recorder: a bounded, allocation-frugal per-solve
// record of how an iterative solve actually went — the decimated
// residual trajectory, the CG α/β coefficients (which define the Lanczos
// tridiagonal and therefore a free condition-number estimate), the
// preconditioner that really ran, the warm-start seed, and a classified
// termination reason. SolveBuffer retains finished records the way
// TraceBuffer retains traces: the N most recent plus the N
// worst-by-iterations, each bounded, so a long-running server holds a
// fixed amount of solve forensics no matter how much traffic it serves.
//
// Everything a record carries is derived from the solver's deterministic
// kernels, so for one workload the record shapes (residual histories,
// coefficients, κ estimates, termination reasons) are byte-identical at
// any worker count; only the record and trace IDs are run-local.
// Schema and decimation policy are documented in DESIGN.md §5i.

import (
	"math"
	"strconv"
	"sync"
	"sync/atomic"
)

// Termination reasons a SolveRecord can carry. The CG core reports
// converged/maxiter/cancelled/error; the recorder upgrades a maxiter
// exit to stagnated when the best residual is old news (see
// stagnationWindow).
const (
	// TermConverged: the solve met its relative-residual tolerance.
	TermConverged = "converged"
	// TermMaxIter: the iteration budget ran out while the residual was
	// still making progress.
	TermMaxIter = "maxiter"
	// TermCancelled: the caller's Cancel hook aborted the solve.
	TermCancelled = "cancelled"
	// TermStagnated: the budget ran out AND the residual had not
	// improved for at least stagnationWindow iterations — the signature
	// of an ill-conditioned or near-singular system, as opposed to a
	// budget merely set too low.
	TermStagnated = "stagnated"
	// TermError: the solve failed structurally (non-SPD pivot, dense
	// factorization error) rather than by running out of budget.
	TermError = "error"
)

const (
	// DefaultSolveBufferCap bounds each SolveBuffer retention class when
	// the size knob is unset.
	DefaultSolveBufferCap = 64
	// SolveResidualCap bounds the decimated residual history per record.
	// When the ring fills, every other retained sample is dropped and
	// the sampling stride doubles, so arbitrarily long solves keep a
	// fixed-size, log-thinned trajectory without reallocating.
	SolveResidualCap = 128
	// SolveCoeffCap bounds the α/β capture per record. Lanczos Ritz
	// extremes converge long before CG does, so a κ estimate from the
	// first SolveCoeffCap coefficients of a longer solve stays useful;
	// the record marks the truncation.
	SolveCoeffCap = 1024
	// stagnationWindow is how many iterations the best residual must be
	// stale for a maxiter exit to classify as stagnated.
	stagnationWindow = 50
)

// SolveRecord is one finished solve shaped for JSON export
// (/debug/solves). Field names are a compatibility contract; see
// DESIGN.md §5i.
type SolveRecord struct {
	// ID identifies the record within its buffer ("s-<n>").
	ID string `json:"solve_id"`
	// TraceID links the solve to the request trace that ran it
	// (/debug/requests?id=), when one was active.
	TraceID string `json:"trace_id,omitempty"`
	// Method is the registry name of the solver ("cg-ic0", "cg-amg", …).
	Method string `json:"method,omitempty"`
	// Precond names the preconditioner that actually ran; Fallback marks
	// a setup-time substitution (IC(0) breakdown → Jacobi).
	Precond  string `json:"precond,omitempty"`
	Fallback bool   `json:"fallback,omitempty"`
	// N is the system dimension.
	N int `json:"n"`
	// Iterations, Residual, Converged are the solver's own final story.
	Iterations int     `json:"iterations"`
	Residual   float64 `json:"residual"`
	Converged  bool    `json:"converged"`
	// Termination classifies the exit: converged, maxiter, cancelled,
	// stagnated, or error. Empty when the solve never reached the
	// iteration loop.
	Termination string `json:"termination,omitempty"`
	// CondEst estimates κ(M⁻¹A) — the condition number of the
	// preconditioned operator — from the Lanczos tridiagonal the CG α/β
	// define. 0 means no estimate (direct method, zero-iteration solve).
	CondEst float64 `json:"cond_est,omitempty"`
	// Warm marks a warm-started solve; WarmSeedNorm is ‖x₀‖₂.
	Warm         bool    `json:"warm,omitempty"`
	WarmSeedNorm float64 `json:"warm_seed_norm,omitempty"`
	// Residuals is the decimated relative-residual history: one sample
	// every ResidualStride iterations (approximately — the stride doubles
	// each time the ring fills, and already-retained samples keep their
	// original spacing).
	ResidualStride int       `json:"residual_stride,omitempty"`
	Residuals      []float64 `json:"residuals,omitempty"`
	// Alphas and Betas are the CG coefficients, capped at SolveCoeffCap
	// each; Truncated marks that the cap was hit.
	Alphas    []float64 `json:"alphas,omitempty"`
	Betas     []float64 `json:"betas,omitempty"`
	Truncated bool      `json:"coeffs_truncated,omitempty"`
}

// SolveRecorder captures one solve in flight. Obtain one from
// SolveBuffer.StartSolveRecord, hand it to the solver via
// CGOptions.Rec, and Commit it when the solve returns — on every path;
// the obscontract analyzer enforces the pairing. All methods are
// nil-safe, so an absent recorder costs the solver two nil checks per
// iteration and nothing else.
//
// A recorder is single-solve, single-goroutine state: it allocates its
// buffers once at Start (one backing array sliced into views) and never
// again until Commit snapshots them.
type SolveRecorder struct {
	buf  *SolveBuffer
	rec  SolveRecord
	done bool

	residuals []float64 // decimated history ring (view of backing)
	alphas    []float64 // α per iteration (view)
	betas     []float64 // β per iteration (view)
	stride    int       // current residual sampling stride
	sinceKeep int       // iterations since the last retained sample
	bestRes   float64   // best relative residual seen
	sinceBest int       // iterations since bestRes improved
}

// StartSolveRecord begins recording one solve. A nil buffer returns a
// nil recorder, on which every method (Commit included) is a no-op —
// the disabled path needs no conditionals.
func (b *SolveBuffer) StartSolveRecord() *SolveRecorder {
	if b == nil {
		return nil
	}
	r := &SolveRecorder{buf: b, stride: 1, bestRes: math.Inf(1)}
	backing := make([]float64, SolveResidualCap+2*SolveCoeffCap)
	r.residuals = backing[0:0:SolveResidualCap]
	r.alphas = backing[SolveResidualCap : SolveResidualCap : SolveResidualCap+SolveCoeffCap]
	r.betas = backing[SolveResidualCap+SolveCoeffCap : SolveResidualCap+SolveCoeffCap]
	return r
}

// Begin stamps the system dimension at the start of the solve. No-op on
// nil.
func (r *SolveRecorder) Begin(n int) {
	if r == nil {
		return
	}
	r.rec.N = n
}

// SetSolver stamps the method and preconditioner identity, including a
// setup-time fallback substitution. No-op on nil.
func (r *SolveRecorder) SetSolver(method, precond string, fallback bool) {
	if r == nil {
		return
	}
	r.rec.Method = method
	r.rec.Precond = precond
	r.rec.Fallback = fallback
}

// SetTrace links the record to a request trace. No-op on nil.
func (r *SolveRecorder) SetTrace(id string) {
	if r == nil {
		return
	}
	r.rec.TraceID = id
}

// Warm marks the solve warm-started from a seed with the given 2-norm.
// No-op on nil.
func (r *SolveRecorder) Warm(seedNorm float64) {
	if r == nil {
		return
	}
	r.rec.Warm = true
	r.rec.WarmSeedNorm = seedNorm
}

// RecordIter captures one CG iteration: the step length α and the
// relative residual after the update. Allocation-free. No-op on nil.
func (r *SolveRecorder) RecordIter(alpha, relres float64) {
	if r == nil {
		return
	}
	if len(r.alphas) < cap(r.alphas) {
		r.alphas = append(r.alphas, alpha)
	} else {
		r.rec.Truncated = true
	}
	if relres < r.bestRes {
		r.bestRes = relres
		r.sinceBest = 0
	} else {
		r.sinceBest++
	}
	r.sinceKeep++
	if r.sinceKeep < r.stride {
		return
	}
	r.sinceKeep = 0
	if len(r.residuals) == cap(r.residuals) {
		// Ring full: keep every other retained sample in place and
		// double the stride. Early samples end up sparser than the
		// current stride — fine for a trajectory plot, and it keeps the
		// whole history inside one fixed allocation.
		half := len(r.residuals) / 2
		for i := 0; i < half; i++ {
			r.residuals[i] = r.residuals[2*i]
		}
		r.residuals = r.residuals[:half]
		r.stride *= 2
	}
	r.residuals = append(r.residuals, relres)
}

// RecordBeta captures the β of an iteration that continued past its
// convergence check. Allocation-free. No-op on nil.
func (r *SolveRecorder) RecordBeta(beta float64) {
	if r == nil {
		return
	}
	if len(r.betas) < cap(r.betas) {
		r.betas = append(r.betas, beta)
	} else {
		r.rec.Truncated = true
	}
}

// Finish stamps the solve's final stats and classifies the termination:
// a maxiter exit whose best residual is at least stagnationWindow
// iterations old becomes stagnated. No-op on nil.
func (r *SolveRecorder) Finish(iterations int, residual float64, converged bool, termination string) {
	if r == nil {
		return
	}
	r.rec.Iterations = iterations
	r.rec.Residual = residual
	r.rec.Converged = converged
	if termination == TermMaxIter && r.sinceBest >= stagnationWindow {
		termination = TermStagnated
	}
	r.rec.Termination = termination
}

// Commit finalizes the record — snapshots the captured buffers, computes
// the condition estimate, assigns the record ID — adds it to the buffer,
// and returns it. Only the first Commit takes effect; later calls return
// the committed record without re-adding it. Returns the zero record on
// nil.
func (r *SolveRecorder) Commit() SolveRecord {
	if r == nil {
		return SolveRecord{}
	}
	if r.done {
		return r.rec
	}
	r.done = true
	rec := r.rec
	rec.CondEst = CondFromLanczos(r.alphas, r.betas)
	rec.ResidualStride = r.stride
	nr, na := len(r.residuals), len(r.alphas)
	// One combined allocation for all three exported slices; the views
	// are capacity-capped so appends by a consumer cannot alias.
	snap := make([]float64, 0, nr+na+len(r.betas))
	snap = append(snap, r.residuals...)
	snap = append(snap, r.alphas...)
	snap = append(snap, r.betas...)
	rec.Residuals = snap[:nr:nr]
	rec.Alphas = snap[nr : nr+na : nr+na]
	rec.Betas = snap[nr+na:]
	if nr == 0 {
		rec.ResidualStride = 0
	}
	rec.ID = "s-" + strconv.FormatInt(r.buf.seq.Add(1), 10)
	r.rec = rec
	r.buf.Add(rec)
	return rec
}

// CondFromLanczos estimates the condition number of the (preconditioned)
// operator a CG solve iterated on, for free, from its α/β coefficients:
// they define the Lanczos tridiagonal T with
//
//	d₁ = 1/α₁,  dₖ = 1/αₖ + βₖ₋₁/αₖ₋₁,  eₖ = √βₖ/αₖ,
//
// whose extreme eigenvalues (computed here by Sturm-sequence bisection
// inside the Gershgorin bounds) are the Ritz approximations of the
// operator's spectrum edges; κ ≈ λmax/λmin. Ritz extremes converge from
// the inside, so the estimate approaches the true κ from below as the
// solve runs — accurate to a few percent once CG has converged, and an
// underestimate when the solve was cut short. Returns 0 (no estimate)
// for fewer than one iteration or a degenerate tridiagonal.
//
// The arithmetic is a fixed sequential recurrence over deterministic
// inputs, so the estimate is identical at any worker count.
func CondFromLanczos(alphas, betas []float64) float64 {
	m := len(alphas)
	if m > len(betas)+1 {
		m = len(betas) + 1 // need β₁..βₘ₋₁ for an m×m T
	}
	if m == 0 || !(alphas[0] > 0) {
		return 0
	}
	if m == 1 {
		return 1 // T is 1×1: a single Ritz value, κ estimate is trivial
	}
	buf := make([]float64, 2*m-1)
	d, e := buf[:m], buf[m:]
	d[0] = 1 / alphas[0]
	for k := 1; k < m; k++ {
		if !(alphas[k] > 0) || !(betas[k-1] >= 0) {
			return 0
		}
		d[k] = 1/alphas[k] + betas[k-1]/alphas[k-1]
		e[k-1] = math.Sqrt(betas[k-1]) / alphas[k-1]
	}
	// Gershgorin interval containing every eigenvalue of T.
	lo, hi := math.Inf(1), math.Inf(-1)
	for i := 0; i < m; i++ {
		radius := 0.0
		if i > 0 {
			radius += math.Abs(e[i-1])
		}
		if i < m-1 {
			radius += math.Abs(e[i])
		}
		if d[i]-radius < lo {
			lo = d[i] - radius
		}
		if d[i]+radius > hi {
			hi = d[i] + radius
		}
	}
	if !(hi > lo) {
		return 1 // all eigenvalues coincide
	}
	lmin := sturmBisect(d, e, lo, hi, 1)
	lmax := sturmBisect(d, e, lo, hi, m)
	if !(lmin > 0) || !(lmax > 0) || lmax < lmin {
		return 0
	}
	return lmax / lmin
}

// sturmBisect finds the k-th smallest eigenvalue of the symmetric
// tridiagonal (d, e) by bisection on the Sturm negcount: the boundary
// between negcount < k and negcount >= k.
func sturmBisect(d, e []float64, lo, hi float64, k int) float64 {
	for i := 0; i < 128 && hi-lo > 1e-14*math.Max(math.Abs(lo), math.Abs(hi)); i++ {
		mid := lo + (hi-lo)/2
		if sturmNegcount(d, e, mid) >= k {
			hi = mid
		} else {
			lo = mid
		}
	}
	return lo + (hi-lo)/2
}

// sturmNegcount returns the number of eigenvalues of the symmetric
// tridiagonal (d, e) strictly below x, via the LDLᵀ pivot sign count.
func sturmNegcount(d, e []float64, x float64) int {
	const pivmin = 1e-300
	count := 0
	q := d[0] - x
	if q < 0 {
		count++
	}
	for i := 1; i < len(d); i++ {
		if math.Abs(q) < pivmin {
			q = -pivmin
		}
		q = d[i] - x - e[i-1]*e[i-1]/q
		if q < 0 {
			count++
		}
	}
	return count
}

// SolveBuffer retains finished solve records for post-hoc inspection
// (/debug/solves): a ring of the N most recent plus the N
// worst-by-iterations seen, each bounded, mirroring TraceBuffer. Safe
// for concurrent use; nil disables retention (and recording — see
// StartSolveRecord).
type SolveBuffer struct {
	// IterHist and CondHist, when non-nil, receive every committed
	// record's iteration count and condition estimate (the latter only
	// when an estimate exists). The serving layer points these at
	// deterministic registry histograms so the convergence distribution
	// reaches /metrics and the Prometheus exposition. Set before first
	// use.
	IterHist *Histogram
	CondHist *Histogram

	mu     sync.Mutex
	cap    int
	recent []SolveRecord // ring; next is the oldest once full
	next   int
	worst  []SolveRecord // sorted by Iterations descending, len <= cap
	added  int64
	seq    atomic.Int64
}

// NewSolveBuffer builds a buffer retaining n recent and n
// worst-by-iterations records (n <= 0 selects DefaultSolveBufferCap).
func NewSolveBuffer(n int) *SolveBuffer {
	if n <= 0 {
		n = DefaultSolveBufferCap
	}
	return &SolveBuffer{cap: n}
}

// Add records one finished solve. Commit calls this; use it directly
// only when constructing records by hand (tests). No-op on nil.
func (b *SolveBuffer) Add(rec SolveRecord) {
	if b == nil {
		return
	}
	b.IterHist.Observe(float64(rec.Iterations))
	if rec.CondEst > 0 {
		b.CondHist.Observe(rec.CondEst)
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.added++
	if len(b.recent) < b.cap {
		b.recent = append(b.recent, rec)
	} else {
		b.recent[b.next] = rec
		b.next = (b.next + 1) % b.cap
	}
	if len(b.worst) < b.cap {
		b.worst = append(b.worst, rec)
	} else if rec.Iterations > b.worst[len(b.worst)-1].Iterations {
		b.worst[len(b.worst)-1] = rec
	} else {
		return
	}
	// Restore descending order: bubble the inserted tail entry up.
	for i := len(b.worst) - 1; i > 0 && b.worst[i].Iterations > b.worst[i-1].Iterations; i-- {
		b.worst[i], b.worst[i-1] = b.worst[i-1], b.worst[i]
	}
}

// Snapshot returns the retained records: recent newest-first, worst in
// descending iteration count, and the total number ever added. Safe on
// nil.
func (b *SolveBuffer) Snapshot() (recent, worst []SolveRecord, added int64) {
	if b == nil {
		return nil, nil, 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	recent = make([]SolveRecord, 0, len(b.recent))
	// The ring's next slot holds the oldest entry once full (and stays 0
	// while filling), so the newest entry sits just before it; walk
	// backwards from there.
	for i := 0; i < len(b.recent); i++ {
		recent = append(recent, b.recent[(b.next-1-i+2*len(b.recent))%len(b.recent)])
	}
	worst = append([]SolveRecord(nil), b.worst...)
	return recent, worst, b.added
}

// Find returns the retained record with the given solve ID — or, when no
// solve ID matches, the most recent record linked to the given trace ID,
// so a trace from /debug/requests leads straight to its solve. Safe on
// nil.
func (b *SolveBuffer) Find(id string) (SolveRecord, bool) {
	if b == nil {
		return SolveRecord{}, false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	for i := range b.recent {
		if b.recent[i].ID == id {
			return b.recent[i], true
		}
	}
	for i := range b.worst {
		if b.worst[i].ID == id {
			return b.worst[i], true
		}
	}
	var hit SolveRecord
	var hitSeq int64 = -1
	for _, list := range [][]SolveRecord{b.recent, b.worst} {
		for i := range list {
			if list[i].TraceID == id {
				if seq := solveSeq(list[i].ID); seq > hitSeq {
					hit, hitSeq = list[i], seq
				}
			}
		}
	}
	if hitSeq >= 0 {
		return hit, true
	}
	return SolveRecord{}, false
}

// solveSeq parses the numeric part of a record ID for recency ordering.
func solveSeq(id string) int64 {
	if len(id) < 3 || id[0] != 's' || id[1] != '-' {
		return -1
	}
	n, err := strconv.ParseInt(id[2:], 10, 64)
	if err != nil {
		return -1
	}
	return n
}
