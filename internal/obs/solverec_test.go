package obs

import (
	"encoding/json"
	"fmt"
	"math"
	"testing"
)

func TestSolveRecorderNilSafe(t *testing.T) {
	var b *SolveBuffer
	r := b.StartSolveRecord()
	if r != nil {
		t.Fatalf("nil buffer must hand out a nil recorder, got %v", r)
	}
	r.Begin(10)
	r.SetSolver("cg-ic0", "ic0", false)
	r.SetTrace("t-1")
	r.Warm(1.5)
	r.RecordIter(0.5, 1e-3)
	r.RecordBeta(0.25)
	r.Finish(1, 1e-3, true, TermConverged)
	if rec := r.Commit(); rec.ID != "" {
		t.Fatalf("nil recorder Commit must return the zero record, got %+v", rec)
	}
	b.Add(SolveRecord{})
	if _, _, added := b.Snapshot(); added != 0 {
		t.Fatalf("nil buffer Snapshot added = %d, want 0", added)
	}
	if _, ok := b.Find("s-1"); ok {
		t.Fatal("nil buffer Find must miss")
	}
}

func TestSolveRecorderBasicCommit(t *testing.T) {
	b := NewSolveBuffer(4)
	r := b.StartSolveRecord()
	r.Begin(100)
	r.SetSolver("cg-ic0", "ic0", true)
	r.SetTrace("trace-abc")
	r.Warm(2.0)
	r.RecordIter(0.5, 1e-1)
	r.RecordBeta(0.25)
	r.RecordIter(0.4, 1e-9)
	r.Finish(2, 1e-9, true, TermConverged)
	rec := r.Commit()

	if rec.ID == "" || rec.TraceID != "trace-abc" || rec.Method != "cg-ic0" ||
		rec.Precond != "ic0" || !rec.Fallback || rec.N != 100 {
		t.Fatalf("identity fields wrong: %+v", rec)
	}
	if rec.Iterations != 2 || rec.Residual != 1e-9 || !rec.Converged || rec.Termination != TermConverged {
		t.Fatalf("final stats wrong: %+v", rec)
	}
	if !rec.Warm || rec.WarmSeedNorm != 2.0 {
		t.Fatalf("warm fields wrong: %+v", rec)
	}
	if want := []float64{0.5, 0.4}; len(rec.Alphas) != 2 || rec.Alphas[0] != want[0] || rec.Alphas[1] != want[1] {
		t.Fatalf("alphas = %v, want %v", rec.Alphas, want)
	}
	if len(rec.Betas) != 1 || rec.Betas[0] != 0.25 {
		t.Fatalf("betas = %v, want [0.25]", rec.Betas)
	}
	if len(rec.Residuals) != 2 || rec.ResidualStride != 1 {
		t.Fatalf("residuals = %v stride %d, want 2 samples at stride 1", rec.Residuals, rec.ResidualStride)
	}
	if rec.CondEst <= 0 {
		t.Fatalf("cond_est = %g, want positive", rec.CondEst)
	}

	// Commit is idempotent: the second call returns the same record and
	// does not re-add to the buffer.
	rec2 := r.Commit()
	if rec2.ID != rec.ID {
		t.Fatalf("second Commit returned a different record: %q vs %q", rec2.ID, rec.ID)
	}
	if _, _, added := b.Snapshot(); added != 1 {
		t.Fatalf("added = %d after double Commit, want 1", added)
	}

	// The exported record must marshal cleanly (no Inf/NaN).
	if _, err := json.Marshal(rec); err != nil {
		t.Fatalf("record does not marshal: %v", err)
	}
}

func TestSolveRecorderDecimation(t *testing.T) {
	b := NewSolveBuffer(1)
	r := b.StartSolveRecord()
	r.Begin(10)
	const iters = 5000
	for i := 0; i < iters; i++ {
		r.RecordIter(0.5, 1.0/float64(i+1))
		r.RecordBeta(0.25)
	}
	r.Finish(iters, 1.0/iters, false, TermMaxIter)
	rec := r.Commit()

	if len(rec.Residuals) > SolveResidualCap {
		t.Fatalf("residual history %d exceeds cap %d", len(rec.Residuals), SolveResidualCap)
	}
	if rec.ResidualStride < 2 || rec.ResidualStride&(rec.ResidualStride-1) != 0 {
		t.Fatalf("stride %d: want a power of two > 1 after decimation", rec.ResidualStride)
	}
	// Decimation keeps samples in recording order.
	for i := 1; i < len(rec.Residuals); i++ {
		if rec.Residuals[i] >= rec.Residuals[i-1] {
			t.Fatalf("residual order broken at %d: %g >= %g", i, rec.Residuals[i], rec.Residuals[i-1])
		}
	}
	if len(rec.Alphas) != SolveCoeffCap || len(rec.Betas) != SolveCoeffCap || !rec.Truncated {
		t.Fatalf("coeff capture: %d alphas, %d betas, truncated=%v; want caps %d and truncated",
			len(rec.Alphas), len(rec.Betas), rec.Truncated, SolveCoeffCap)
	}
}

func TestSolveRecorderAllocs(t *testing.T) {
	b := NewSolveBuffer(8)
	allocs := testing.AllocsPerRun(20, func() {
		r := b.StartSolveRecord()
		r.Begin(100)
		r.SetSolver("cg-amg", "amg", false)
		for i := 0; i < 400; i++ {
			r.RecordIter(0.5, 1.0/float64(i+1))
			r.RecordBeta(0.25)
		}
		r.Finish(400, 1.0/400, true, TermConverged)
		r.Commit()
	})
	// Recorder struct + backing array at Start; snapshot + cond scratch +
	// ID string at Commit; buffer growth is amortized away by reuse.
	if allocs > 8 {
		t.Fatalf("recorded solve costs %.0f allocs, budget 8", allocs)
	}
}

func TestSolveRecorderStagnation(t *testing.T) {
	// Residual stops improving long before the budget runs out →
	// stagnated.
	b := NewSolveBuffer(1)
	r := b.StartSolveRecord()
	r.Begin(10)
	for i := 0; i < 20; i++ {
		r.RecordIter(0.5, 1.0/float64(i+1)) // improving
	}
	for i := 0; i < stagnationWindow+5; i++ {
		r.RecordIter(0.5, 0.1) // flat
	}
	r.Finish(20+stagnationWindow+5, 0.1, false, TermMaxIter)
	if rec := r.Commit(); rec.Termination != TermStagnated {
		t.Fatalf("termination = %q, want %q", rec.Termination, TermStagnated)
	}

	// Still improving at the budget → plain maxiter.
	r2 := b.StartSolveRecord()
	r2.Begin(10)
	for i := 0; i < 200; i++ {
		r2.RecordIter(0.5, 1.0/float64(i+1))
	}
	r2.Finish(200, 1.0/200, false, TermMaxIter)
	if rec := r2.Commit(); rec.Termination != TermMaxIter {
		t.Fatalf("termination = %q, want %q", rec.Termination, TermMaxIter)
	}

	// Converged exits never reclassify.
	r3 := b.StartSolveRecord()
	r3.Begin(10)
	for i := 0; i < stagnationWindow+5; i++ {
		r3.RecordIter(0.5, 0.1)
	}
	r3.Finish(stagnationWindow+5, 1e-9, true, TermConverged)
	if rec := r3.Commit(); rec.Termination != TermConverged {
		t.Fatalf("termination = %q, want %q", rec.Termination, TermConverged)
	}
}

func TestSolveBufferRetention(t *testing.T) {
	b := NewSolveBuffer(3)
	// Iteration counts chosen so the worst set (90, 80, 70) differs from
	// the recent set (the last three added).
	iters := []int{10, 90, 20, 80, 30, 70, 40}
	for i, n := range iters {
		b.Add(SolveRecord{ID: fmt.Sprintf("s-%d", i+1), Iterations: n})
	}
	recent, worst, added := b.Snapshot()
	if added != int64(len(iters)) {
		t.Fatalf("added = %d, want %d", added, len(iters))
	}
	wantRecent := []string{"s-7", "s-6", "s-5"} // newest first
	for i, id := range wantRecent {
		if recent[i].ID != id {
			t.Fatalf("recent[%d] = %q, want %q (recent=%v)", i, recent[i].ID, id, ids(recent))
		}
	}
	wantWorst := []int{90, 80, 70} // descending iterations
	for i, n := range wantWorst {
		if worst[i].Iterations != n {
			t.Fatalf("worst[%d] = %d iterations, want %d (worst=%v)", i, worst[i].Iterations, n, ids(worst))
		}
	}
}

func ids(recs []SolveRecord) []string {
	out := make([]string, len(recs))
	for i := range recs {
		out[i] = recs[i].ID
	}
	return out
}

func TestSolveBufferFind(t *testing.T) {
	b := NewSolveBuffer(2)
	b.Add(SolveRecord{ID: "s-1", TraceID: "tr-a", Iterations: 5})
	b.Add(SolveRecord{ID: "s-2", TraceID: "tr-a", Iterations: 9})
	b.Add(SolveRecord{ID: "s-3", TraceID: "tr-b", Iterations: 1})

	if rec, ok := b.Find("s-2"); !ok || rec.Iterations != 9 {
		t.Fatalf("Find(s-2) = %+v, %v", rec, ok)
	}
	// s-1 was evicted from recent (cap 2) but survives in worst? cap 2
	// worst keeps {9, 5}. So s-1 is findable via the worst list.
	if rec, ok := b.Find("s-1"); !ok || rec.Iterations != 5 {
		t.Fatalf("Find(s-1) via worst list = %+v, %v", rec, ok)
	}
	// Trace lookup returns the most recent record for the trace.
	if rec, ok := b.Find("tr-a"); !ok || rec.ID != "s-2" {
		t.Fatalf("Find(tr-a) = %+v, %v; want s-2", rec, ok)
	}
	if _, ok := b.Find("nope"); ok {
		t.Fatal("Find(nope) must miss")
	}
}

func TestSolveBufferHistograms(t *testing.T) {
	reg := NewRegistry()
	b := NewSolveBuffer(2)
	b.IterHist = reg.Histogram("solve.iterations", []float64{10, 100})
	b.CondHist = reg.Histogram("solve.cond_est", []float64{10, 1000})
	b.Add(SolveRecord{ID: "s-1", Iterations: 50, CondEst: 500})
	b.Add(SolveRecord{ID: "s-2", Iterations: 5}) // no estimate
	if n := b.IterHist.Count(); n != 2 {
		t.Fatalf("iteration histogram count = %d, want 2", n)
	}
	if n := b.CondHist.Count(); n != 1 {
		t.Fatalf("cond histogram count = %d, want 1 (zero estimates skipped)", n)
	}
}

func TestCondFromLanczosKnownTridiagonal(t *testing.T) {
	// alphas = [1, 0.5], betas = [0.25] define
	//   T = [ 1    0.5  ]
	//       [ 0.5  2.25 ]
	// whose eigenvalues are (3.25 ± sqrt(1.25² + 4·0.25²·…))/2 — computed
	// here in closed form for a 2×2 symmetric matrix.
	a, bdiag, c := 1.0, 2.25, 0.5
	tr, det := a+bdiag, a*bdiag-c*c
	disc := math.Sqrt(tr*tr - 4*det)
	lmax, lmin := (tr+disc)/2, (tr-disc)/2
	want := lmax / lmin

	got := CondFromLanczos([]float64{1, 0.5}, []float64{0.25})
	if math.Abs(got-want)/want > 1e-10 {
		t.Fatalf("CondFromLanczos = %.12g, want %.12g", got, want)
	}
}

func TestCondFromLanczosDiagonal(t *testing.T) {
	// β = 0 decouples the tridiagonal: T = diag(1/α₀, 1/α₁).
	got := CondFromLanczos([]float64{1, 0.25}, []float64{0})
	if want := 4.0; math.Abs(got-want)/want > 1e-10 {
		t.Fatalf("CondFromLanczos = %.12g, want %g", got, want)
	}
}

func TestCondFromLanczosDegenerate(t *testing.T) {
	cases := []struct {
		name   string
		alphas []float64
		betas  []float64
		want   float64
	}{
		{"empty", nil, nil, 0},
		{"single", []float64{0.5}, nil, 1},
		{"single-with-beta", []float64{0.5}, []float64{0.1}, 1},
		{"negative-alpha", []float64{-1, 0.5}, []float64{0.25}, 0},
		{"zero-alpha", []float64{0, 0.5}, []float64{0.25}, 0},
		{"nan-alpha", []float64{math.NaN(), 0.5}, []float64{0.25}, 0},
		{"negative-beta", []float64{1, 0.5}, []float64{-0.25}, 0},
	}
	for _, c := range cases {
		if got := CondFromLanczos(c.alphas, c.betas); got != c.want {
			t.Errorf("%s: CondFromLanczos = %g, want %g", c.name, got, c.want)
		}
	}
	// Degenerate results must stay JSON-marshalable (never Inf).
	rec := SolveRecord{CondEst: CondFromLanczos([]float64{0}, nil)}
	if _, err := json.Marshal(rec); err != nil {
		t.Fatalf("degenerate estimate breaks marshaling: %v", err)
	}
}

func TestCondFromLanczosUsesPrefixOnTruncation(t *testing.T) {
	// More betas than alphas-1 (maxiter exit shape) must not panic and
	// must use the consistent prefix.
	got := CondFromLanczos([]float64{1, 0.5}, []float64{0.25, 0.5, 0.75})
	if got <= 0 {
		t.Fatalf("CondFromLanczos = %g, want positive", got)
	}
}
