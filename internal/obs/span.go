package obs

import (
	"fmt"
	"sort"
	"time"
)

// Attr is one key/value annotation on a span.
type Attr struct {
	Key, Value string
}

// A formats any value into an Attr.
func A(key string, value interface{}) Attr {
	return Attr{Key: key, Value: fmt.Sprint(value)}
}

// spanRecord is one completed span, with times relative to the registry
// start so traces from one run compose on a single axis.
type spanRecord struct {
	name  string
	attrs []Attr
	start time.Duration
	dur   time.Duration
}

// Span opens a named span and returns the function that closes and
// records it. Attrs may describe the stage (design name, node count,
// fidelity). Spans are wall-clock-derived and never part of the
// deterministic snapshot. Safe (and a no-op) on a nil registry.
func (r *Registry) Span(name string, attrs ...Attr) func() {
	if r == nil {
		return func() {}
	}
	start := now()
	return func() {
		end := now()
		r.addSpan(spanRecord{
			name:  name,
			attrs: attrs,
			start: start.Sub(r.start),
			dur:   end.Sub(start),
		})
	}
}

// spanRecords returns a copy of the recorded spans ordered by start time
// (concurrent spans end — and so are appended — in scheduler order;
// start order is the stable axis a human reads a trace on).
func (r *Registry) spanRecords() []spanRecord {
	r.mu.Lock()
	out := append([]spanRecord(nil), r.spans...)
	r.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].start != out[j].start {
			return out[i].start < out[j].start
		}
		return out[i].name < out[j].name
	})
	return out
}
