package obs

import (
	"encoding/json"
	"regexp"
	"strings"
	"testing"
)

func TestLoggerJSONLines(t *testing.T) {
	var sb strings.Builder
	l, err := NewLogger(&sb, LogJSON)
	if err != nil {
		t.Fatal(err)
	}
	l.Event("request",
		F("trace_id", "deadbeef"),
		F("status", 200),
		F("dur_ms", 1.5),
		F("converged", true),
		F("note", `quote " and \ slash`))
	line := sb.String()
	if !strings.HasSuffix(line, "\n") || strings.Count(line, "\n") != 1 {
		t.Fatalf("event is not exactly one line: %q", line)
	}
	var rec map[string]interface{}
	if err := json.Unmarshal([]byte(line), &rec); err != nil {
		t.Fatalf("log line is not valid JSON: %v\n%s", err, line)
	}
	if rec["event"] != "request" || rec["trace_id"] != "deadbeef" {
		t.Fatalf("record = %v", rec)
	}
	if rec["status"] != float64(200) || rec["dur_ms"] != 1.5 || rec["converged"] != true {
		t.Fatalf("typed fields mangled: %v", rec)
	}
	if rec["note"] != `quote " and \ slash` {
		t.Fatalf("string escaping broken: %q", rec["note"])
	}
	if _, ok := rec["ts"]; !ok {
		t.Fatalf("record missing ts: %v", rec)
	}
	// Field order is part of the schema: ts, event, then caller order.
	if !regexp.MustCompile(`^\{"ts":"[^"]+","event":"request","trace_id":`).MatchString(line) {
		t.Fatalf("field order not preserved: %s", line)
	}
}

func TestLoggerTextFormat(t *testing.T) {
	var sb strings.Builder
	l, err := NewLogger(&sb, LogText)
	if err != nil {
		t.Fatal(err)
	}
	l.Event("start", F("addr", "127.0.0.1:8080"), F("msg", "has spaces"), F("n", 3))
	line := strings.TrimSuffix(sb.String(), "\n")
	if !strings.HasPrefix(line, "ts=") {
		t.Fatalf("text line does not lead with ts=: %q", line)
	}
	for _, want := range []string{" event=start", " addr=127.0.0.1:8080", ` msg="has spaces"`, " n=3"} {
		if !strings.Contains(line, want) {
			t.Fatalf("text line missing %q: %q", want, line)
		}
	}
}

func TestLoggerRejectsUnknownFormatAndNilIsSafe(t *testing.T) {
	if _, err := NewLogger(&strings.Builder{}, "yaml"); err == nil {
		t.Fatalf("NewLogger accepted unknown format")
	}
	if l, err := NewLogger(&strings.Builder{}, ""); err != nil || l == nil {
		t.Fatalf("empty format should select text: %v", err)
	}
	var nl *Logger
	nl.Event("ignored", F("k", "v")) // must not panic
}

// promLine matches one valid line of the Prometheus text exposition
// format v0.0.4: a comment, a sample (optionally labeled), or blank.
var promLine = regexp.MustCompile(`^(# (TYPE|HELP) [a-zA-Z_:][a-zA-Z0-9_:]* .*|[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? [0-9eE.+-]+|[+-]?Inf|[[:space:]]*)$`)

func TestPromTextExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("serve.analyze.requests").Add(7)
	r.Gauge("irdrop.max_ir_v").Set(0.042)
	r.Histogram("solve.iters", []float64{10, 100}).Observe(5)
	r.Histogram("solve.iters", nil).Observe(50)
	r.Timer("solve.time").Start()()
	text := string(r.PromText())

	for _, line := range strings.Split(text, "\n") {
		if strings.Contains(line, `le="+Inf"`) {
			continue // +Inf label is legal but not matched by the simple sample regex
		}
		if !promLine.MatchString(line) {
			t.Fatalf("invalid exposition line %q in:\n%s", line, text)
		}
	}
	for _, want := range []string{
		"# TYPE serve_analyze_requests counter",
		"serve_analyze_requests 7",
		"# TYPE irdrop_max_ir_v gauge",
		"irdrop_max_ir_v 0.042",
		"# TYPE solve_iters histogram",
		`solve_iters_bucket{le="10"} 1`,
		`solve_iters_bucket{le="100"} 2`,
		`solve_iters_bucket{le="+Inf"} 2`,
		"solve_iters_sum 55",
		"solve_iters_count 2",
		"# TYPE solve_time_seconds summary",
		"solve_time_seconds_count 1",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("exposition missing %q:\n%s", want, text)
		}
	}
	if nilText := (*Registry)(nil).PromText(); len(nilText) != 0 {
		t.Fatalf("nil registry PromText = %q, want empty", nilText)
	}
}

func TestPromNameSanitization(t *testing.T) {
	for in, want := range map[string]string{
		"serve.analyze.latency_ms": "serve_analyze_latency_ms",
		"3d.stack":                 "_3d_stack",
		"a:b-c d":                  "a:b_c_d",
	} {
		if got := promName(in); got != want {
			t.Fatalf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}
