// Package obs is the observability layer of the analysis stack: a
// stdlib-only, concurrency-safe metrics registry (counters, gauges,
// histograms with fixed deterministic bucket bounds, duration timers)
// plus a per-run trace of named spans. Registries export an
// expvar-compatible JSON snapshot and a human -stats summary.
//
// Determinism contract: for one workload, every counter value, gauge
// maximum, and histogram bucket tally is identical for any worker count.
// Wall-clock-derived metrics (timers, spans, metrics created with
// nondeterministic intent) are the explicit exception and are stripped by
// Snapshot.Deterministic, which is what the cross-worker regression tests
// compare byte for byte. To keep that auditable, this package is the one
// sanctioned wall-clock consumer in library code — the single time.Now
// call below carries the repo's only blessed walltime waiver.
//
// Every metric accessor and recording method is nil-safe: a nil *Registry
// hands out nil metrics, and recording on a nil metric is a no-op, so
// instrumented hot paths need no conditionals around an absent registry.
package obs

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// now is the single blessed wall-clock read behind every timer and span.
func now() time.Time {
	//pdnlint:ignore walltime obs is the one sanctioned wall-clock consumer; durations are stripped from deterministic snapshots by design
	return time.Now()
}

// DefaultSpanCap bounds a registry's retained spans: once full, the
// oldest span is overwritten and the "obs.spans_dropped" counter
// increments, so a long-running process (pdnserve) holds a fixed amount
// of span data no matter how long it serves.
const DefaultSpanCap = 4096

// Registry is a named-metric registry plus a span trace for one run.
// All methods are safe for concurrent use; the nil registry is a valid
// disabled registry. Span storage is a bounded ring (DefaultSpanCap,
// tunable with SetSpanCap); drops are counted in "obs.spans_dropped".
type Registry struct {
	mu       sync.Mutex
	metrics  map[string]interface{}
	spans    []spanRecord // ring once len == spanCap; spanNext is the oldest
	spanCap  int
	spanNext int
	start    time.Time

	// dropped counts spans overwritten by the ring; kept as a direct
	// field because the recording path already holds mu and must not
	// re-enter the metric lookup.
	dropped *Counter
}

// NewRegistry returns an empty registry; its creation time anchors the
// relative span timestamps.
func NewRegistry() *Registry {
	r := &Registry{metrics: map[string]interface{}{}, spanCap: DefaultSpanCap, start: now()}
	r.dropped = r.Counter("obs.spans_dropped")
	return r
}

// SetSpanCap bounds the span ring at n (minimum 1). Shrinking below the
// current count drops the oldest spans, counting them as dropped. Safe
// on nil.
func (r *Registry) SetSpanCap(n int) {
	if r == nil {
		return
	}
	if n < 1 {
		n = 1
	}
	r.mu.Lock()
	if len(r.spans) > n {
		// Linearize the ring oldest-first, then keep the newest n.
		lin := make([]spanRecord, 0, len(r.spans))
		for i := 0; i < len(r.spans); i++ {
			lin = append(lin, r.spans[(r.spanNext+i)%len(r.spans)])
		}
		drop := len(lin) - n
		r.spans = append([]spanRecord(nil), lin[drop:]...)
		r.dropped.Add(int64(drop))
	}
	r.spanCap = n
	r.spanNext = 0
	r.mu.Unlock()
}

// addSpan records one completed span into the bounded ring.
func (r *Registry) addSpan(rec spanRecord) {
	r.mu.Lock()
	if len(r.spans) < r.spanCap {
		r.spans = append(r.spans, rec)
	} else {
		r.spans[r.spanNext] = rec
		r.spanNext = (r.spanNext + 1) % r.spanCap
		r.dropped.Add(1)
	}
	r.mu.Unlock()
}

// get returns the metric registered under name, creating it with mk on
// first use. A name maps to exactly one metric kind for the lifetime of
// the registry; a kind mismatch panics (programmer error, caught by the
// package's own tests).
func (r *Registry) get(name string, mk func() interface{}) interface{} {
	r.mu.Lock()
	defer r.mu.Unlock()
	m, ok := r.metrics[name]
	if !ok {
		m = mk()
		r.metrics[name] = m
	}
	return m
}

// Counter returns the monotonically increasing counter with the given
// name, creating it on first use. Returns nil on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	m := r.get(name, func() interface{} { return &Counter{} })
	c, ok := m.(*Counter)
	if !ok {
		panic("obs: metric " + name + " already registered with a different kind")
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. Gauges carry
// one float64; use SetMax from concurrent recorders so the stored value
// (a maximum over a deterministic multiset) stays worker-count-
// independent. Returns nil on a nil registry.
func (r *Registry) Gauge(name string) *Gauge { return r.gauge(name, false) }

// InfoGauge is Gauge for values that legitimately depend on run
// conditions (worker counts, utilization ratios). Info gauges are
// excluded from the deterministic snapshot. Returns nil on a nil
// registry.
func (r *Registry) InfoGauge(name string) *Gauge { return r.gauge(name, true) }

func (r *Registry) gauge(name string, info bool) *Gauge {
	if r == nil {
		return nil
	}
	m := r.get(name, func() interface{} { return &Gauge{info: info} })
	g, ok := m.(*Gauge)
	if !ok {
		panic("obs: metric " + name + " already registered with a different kind")
	}
	return g
}

// Histogram returns the named histogram, creating it on first use with
// the given bucket upper bounds (ascending; a final +Inf overflow bucket
// is implicit). Bounds are fixed at creation, which is what keeps bucket
// tallies deterministic. Returns nil on a nil registry.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	return r.histogram(name, bounds, false)
}

// InfoHistogram is Histogram for observations that legitimately depend
// on run conditions — request latencies, queue waits — whose bucket
// tallies therefore cannot join the deterministic snapshot. Returns nil
// on a nil registry.
func (r *Registry) InfoHistogram(name string, bounds []float64) *Histogram {
	return r.histogram(name, bounds, true)
}

func (r *Registry) histogram(name string, bounds []float64, info bool) *Histogram {
	if r == nil {
		return nil
	}
	m := r.get(name, func() interface{} { return newHistogram(bounds, info) })
	h, ok := m.(*Histogram)
	if !ok {
		panic("obs: metric " + name + " already registered with a different kind")
	}
	return h
}

// Timer returns the named duration accumulator, creating it on first
// use. Timers are wall-clock-derived and therefore excluded from the
// deterministic snapshot. Returns nil on a nil registry.
func (r *Registry) Timer(name string) *Timer {
	if r == nil {
		return nil
	}
	m := r.get(name, func() interface{} { return &Timer{} })
	t, ok := m.(*Timer)
	if !ok {
		panic("obs: metric " + name + " already registered with a different kind")
	}
	return t
}

// names returns the registered metric names, sorted.
func (r *Registry) names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.metrics))
	for name := range r.metrics {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Counter is a concurrency-safe monotonic counter.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n. No-op on nil.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a concurrency-safe float64 cell.
type Gauge struct {
	bits atomic.Uint64
	info bool
}

// Set stores v, overwriting the previous value. Last writer wins, so
// concurrent recorders with distinct values should use SetMax instead.
// No-op on nil.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// SetMax raises the gauge to v if v exceeds the stored value. The result
// is the maximum over all recorded values, independent of recording
// order — safe for concurrent sweeps. No-op on nil.
func (g *Gauge) SetMax(v float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if v <= math.Float64frombits(old) {
			return
		}
		if g.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Add shifts the gauge by delta (negative to decrease) — the in-flight
// counter pattern. Order-dependent only in transient values; use on
// info gauges. No-op on nil.
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the stored value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts observations into fixed buckets. Bucket i tallies
// observations v with v <= Bounds[i] (and > Bounds[i-1]); the final
// bucket is the +Inf overflow. The observation sum is tracked for the
// summary but excluded from the deterministic snapshot (float addition
// order depends on scheduling).
type Histogram struct {
	bounds  []float64
	buckets []atomic.Int64
	count   atomic.Int64
	sumBits atomic.Uint64
	info    bool
}

func newHistogram(bounds []float64, info bool) *Histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, buckets: make([]atomic.Int64, len(b)+1), info: info}
}

// Observe records one value. No-op on nil.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the total number of observations (0 on nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Bucket returns the tally of bucket i (0 on nil).
func (h *Histogram) Bucket(i int) int64 {
	if h == nil {
		return 0
	}
	return h.buckets[i].Load()
}

// Timer accumulates durations: call count and total time, plus the
// maximum single observation.
type Timer struct {
	count   atomic.Int64
	totalNS atomic.Int64
	maxNS   atomic.Int64
}

// Start begins one timed section and returns the stop function that
// records it. Safe (and a no-op) on a nil timer.
func (t *Timer) Start() func() {
	if t == nil {
		return func() {}
	}
	start := now()
	return func() { t.Observe(now().Sub(start)) }
}

// Observe records one duration directly. No-op on nil.
func (t *Timer) Observe(d time.Duration) {
	if t == nil {
		return
	}
	t.count.Add(1)
	t.totalNS.Add(int64(d))
	for {
		old := t.maxNS.Load()
		if int64(d) <= old {
			return
		}
		if t.maxNS.CompareAndSwap(old, int64(d)) {
			return
		}
	}
}

// Total returns the accumulated duration (0 on nil).
func (t *Timer) Total() time.Duration {
	if t == nil {
		return 0
	}
	return time.Duration(t.totalNS.Load())
}

// Count returns the number of recorded sections (0 on nil).
func (t *Timer) Count() int64 {
	if t == nil {
		return 0
	}
	return t.count.Load()
}
